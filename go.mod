module configwall

go 1.24
