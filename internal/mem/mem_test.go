package mem_test

import (
	"strings"
	"testing"
	"testing/quick"

	"configwall/internal/mem"
)

func TestRoundTripWidths(t *testing.T) {
	m := mem.New(1 << 12)
	m.Write8(0x10, 0xab)
	if got := m.Read8(0x10); got != 0xab {
		t.Errorf("Read8 = %#x, want 0xab", got)
	}
	m.Write16(0x20, 0xbeef)
	if got := m.Read16(0x20); got != 0xbeef {
		t.Errorf("Read16 = %#x, want 0xbeef", got)
	}
	m.Write32(0x30, 0xdeadbeef)
	if got := m.Read32(0x30); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x, want 0xdeadbeef", got)
	}
	m.Write64(0x40, 0x0123456789abcdef)
	if got := m.Read64(0x40); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := mem.New(64)
	m.Write32(0, 0x04030201)
	for i, want := range []uint8{1, 2, 3, 4} {
		if got := m.Read8(uint64(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
}

func TestSignedRoundTripProperty(t *testing.T) {
	m := mem.New(1 << 12)
	prop := func(v int64, widthSel uint8) bool {
		width := []int{8, 16, 32, 64}[widthSel%4]
		m.WriteSigned(128, width, v)
		got := m.ReadSigned(128, width)
		// The read value must equal v truncated then sign-extended.
		want := v << (64 - uint(width)) >> (64 - uint(width))
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTrafficCounters(t *testing.T) {
	m := mem.New(64)
	m.Write64(0, 1)
	m.Write8(8, 1)
	m.Read32(0)
	m.Read16(0)
	if m.BytesWritten != 9 {
		t.Errorf("BytesWritten = %d, want 9", m.BytesWritten)
	}
	if m.BytesRead != 6 {
		t.Errorf("BytesRead = %d, want 6", m.BytesRead)
	}
	m.ResetCounters()
	if m.BytesRead != 0 || m.BytesWritten != 0 {
		t.Error("counters not reset")
	}
}

// TestReset: every write path — checked accessors of all widths, including
// ones straddling a 64 KiB dirty-tracking page boundary, and writes through
// Region views — must be undone by Reset, restoring the all-zero initial
// state and clearing the traffic counters.
func TestReset(t *testing.T) {
	const page = 1 << 16
	m := mem.New(4 * page)
	m.Write8(5, 0xab)
	m.Write16(page-1, 0xbeef)           // straddles pages 0 and 1
	m.Write32(2*page-2, 0xdeadbeef)     // straddles pages 1 and 2
	m.Write64(3*page-4, 0x0123456789ab) // straddles pages 2 and 3
	m.WriteSigned(3*page+100, 32, -1)
	r := m.Region(page+100, 2*page) // multi-page view, written directly
	r[0], r[len(r)-1] = 0x11, 0x22

	m.Reset()
	for _, addr := range []uint64{5, page - 1, page, 2*page - 2, 2 * page, 3*page - 4, 3 * page, 3*page + 100, page + 100, 3*page + 99} {
		if got := m.Read8(addr); got != 0 {
			t.Errorf("after Reset, mem[%#x] = %#x, want 0", addr, got)
		}
	}
	if m.BytesWritten != 0 {
		t.Errorf("after Reset, BytesWritten = %d, want 0 (Read8 checks above count reads only)", m.BytesWritten)
	}

	// A second cycle on the same memory must behave identically (dirty
	// flags were cleared, not leaked).
	m.Write8(7, 0x99)
	m.Reset()
	if got := m.Read8(7); got != 0 {
		t.Errorf("second Reset left mem[7] = %#x", got)
	}
}

// TestResetPartialTailPage: the last page of a non-page-aligned memory is
// shorter than the tracking granularity; Reset must clear it without
// running past the end.
func TestResetPartialTailPage(t *testing.T) {
	m := mem.New(1<<16 + 128) // one full page plus a 128-byte tail
	m.Write8(1<<16+100, 0xee)
	m.Reset()
	if got := m.Read8(1<<16 + 100); got != 0 {
		t.Errorf("tail page not cleared: %#x", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := mem.New(16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	m.Read64(12) // crosses the end
}

// TestAddressOverflowPanics is the regression test for the bounds-check
// wraparound bug: for addresses near 2^64, addr+n overflows to a small
// value, so the naive `addr+n > size` comparison let wild accesses through
// to the raw slice (a confusing runtime panic at best, and a check that
// reads as sound while it is not). The overflow-safe check must reject
// these with the package's own out-of-bounds panic.
func TestAddressOverflowPanics(t *testing.T) {
	cases := []struct {
		name   string
		access func(m *mem.Memory)
	}{
		{"Read64 near 2^64", func(m *mem.Memory) { m.Read64(^uint64(0) - 3) }},
		{"Write64 near 2^64", func(m *mem.Memory) { m.Write64(^uint64(0)-3, 1) }},
		{"Read8 at 2^64-1", func(m *mem.Memory) { m.Read8(^uint64(0)) }},
		{"Read32 wrapping exactly to 0", func(m *mem.Memory) { m.Read32(^uint64(0) - 3) }},
		{"Region with wrapping length", func(m *mem.Memory) { m.Region(8, ^uint64(0)) }},
		{"Region at wrapping base", func(m *mem.Memory) { m.Region(^uint64(0)-3, 8) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mem.New(16)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic on wrapping out-of-bounds access")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "out of bounds") {
					t.Fatalf("want the mem package's own bounds panic, got %v", r)
				}
			}()
			tc.access(m)
		})
	}
}

func TestRegion(t *testing.T) {
	m := mem.New(64)
	m.Write8(10, 0xab)
	m.ResetCounters()

	r := m.Region(8, 8)
	if len(r) != 8 || r[2] != 0xab {
		t.Fatalf("Region view wrong: len=%d contents=% x", len(r), r)
	}
	// The view is live: writes through it are visible to checked reads.
	r[0] = 0x7f
	if got := m.Read8(8); got != 0x7f {
		t.Errorf("write through Region not visible: got %#x", got)
	}
	// Region itself must not touch the traffic counters...
	if m.BytesRead != 1 {
		t.Errorf("BytesRead = %d, want 1 (only the checked Read8)", m.BytesRead)
	}
	// ...AddTraffic accounts them in bulk.
	m.AddTraffic(100, 200)
	if m.BytesRead != 101 || m.BytesWritten != 200 {
		t.Errorf("after AddTraffic: read=%d written=%d, want 101/200", m.BytesRead, m.BytesWritten)
	}
	// The view is capped: appending cannot clobber adjacent memory.
	_ = append(r[:8:8], 0xee)
	if got := m.Read8(16); got != 0 {
		t.Errorf("append through Region view clobbered memory: %#x", got)
	}
}

func TestRegionOutOfBoundsPanics(t *testing.T) {
	m := mem.New(16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds Region")
		}
	}()
	m.Region(12, 8)
}

func TestSize(t *testing.T) {
	if got := mem.New(4096).Size(); got != 4096 {
		t.Errorf("Size = %d, want 4096", got)
	}
}

func TestSnapshot(t *testing.T) {
	m := mem.New(64)
	m.Write8(3, 0xab)
	m.Write8(10, 0xcd)
	m.ResetCounters()

	snap := m.Snapshot(2, 12)
	if len(snap) != 10 {
		t.Fatalf("snapshot length = %d, want 10", len(snap))
	}
	if snap[1] != 0xab || snap[8] != 0xcd {
		t.Errorf("snapshot contents wrong: % x", snap)
	}
	if m.BytesRead != 0 {
		t.Errorf("Snapshot counted %d bytes read; it must not touch the traffic counters", m.BytesRead)
	}
	// The snapshot is a copy, not a view.
	snap[1] = 0
	if m.Read8(3) != 0xab {
		t.Error("mutating the snapshot changed memory")
	}
}

func TestSnapshotOutOfBoundsPanics(t *testing.T) {
	m := mem.New(16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds snapshot")
		}
	}()
	m.Snapshot(8, 32)
}
