// Package mem provides the byte-addressable simulated main memory shared by
// the host CPU and the accelerator models. All accesses are little-endian.
// Traffic counters feed the memory axis of the combined roofline (paper
// Eq. 5).
package mem

import (
	"encoding/binary"
	"fmt"
)

// pageShift sets the dirty-tracking granularity: 64 KiB pages keep the
// bitmap tiny (1024 flags for a 64 MiB arena) while letting Reset skip the
// untouched bulk of a large memory.
const (
	pageShift = 16
	pageSize  = 1 << pageShift
)

// Memory is a flat little-endian byte-addressable memory.
type Memory struct {
	data []byte

	// dirty flags pages that may have been written since New or the last
	// Reset; Reset zeroes only those. The write accessors mark it, and
	// Region marks its whole span because the returned view is writable.
	dirty []bool

	// BytesRead and BytesWritten count all traffic, host and accelerator.
	BytesRead    uint64
	BytesWritten uint64
}

// New allocates a memory of the given size in bytes.
func New(size int) *Memory {
	return &Memory{
		data:  make([]byte, size),
		dirty: make([]bool, (size+pageSize-1)>>pageShift),
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Snapshot copies the byte range [from, to) without touching the traffic
// counters. The differential-test oracle uses it to compare the final memory
// state of two simulations of the same program.
func (m *Memory) Snapshot(from, to uint64) []byte {
	if from > to || to > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: snapshot [%#x, %#x) out of bounds (size %#x)", from, to, len(m.data)))
	}
	out := make([]byte, to-from)
	copy(out, m.data[from:to])
	return out
}

// ResetCounters zeroes the traffic counters.
func (m *Memory) ResetCounters() {
	m.BytesRead, m.BytesWritten = 0, 0
}

// Reset restores the memory to its initial all-zero state and clears the
// traffic counters, zeroing only the pages written (or exposed through a
// Region view) since construction or the previous Reset. It is the
// reset-not-reallocate primitive behind pooled execution contexts:
// resetting a lightly-used 64 MiB arena touches kilobytes, not megabytes.
func (m *Memory) Reset() {
	for p, d := range m.dirty {
		if !d {
			continue
		}
		lo := p << pageShift
		hi := lo + pageSize
		if hi > len(m.data) {
			hi = len(m.data)
		}
		clear(m.data[lo:hi])
		m.dirty[p] = false
	}
	m.BytesRead, m.BytesWritten = 0, 0
}

// mark flags the (at most two, for n <= pageSize) pages overlapping the
// write [addr, addr+n). Branch-free and tiny so the write accessors stay
// within the compiler's inlining budget; callers have already bounds-checked
// [addr, addr+n) and guarantee n > 0.
func (m *Memory) mark(addr, n uint64) {
	m.dirty[addr>>pageShift] = true
	m.dirty[(addr+n-1)>>pageShift] = true
}

// check panics unless [addr, addr+n) lies inside memory. The comparison is
// overflow-safe: for addresses near 2^64, addr+n wraps around zero, so the
// naive `addr+n > size` test would wave wild accesses through — instead the
// remaining room size-addr is compared against n, which cannot wrap because
// addr <= size is established first.
func (m *Memory) check(addr, n uint64) {
	if size := uint64(len(m.data)); addr > size || n > size-addr {
		m.boundsPanic(addr, n)
	}
}

// boundsPanic is kept out of check so check (and the accessors calling it)
// stays within the compiler's inlining budget — the simulator engines sit
// in these accessors for every host load and store.
//
//go:noinline
func (m *Memory) boundsPanic(addr, n uint64) {
	panic(fmt.Sprintf("mem: access [%#x, %#x) out of bounds (size %#x)", addr, addr+n, len(m.data)))
}

// Region returns a direct view of [addr, addr+n) after a single
// overflow-safe bounds check. It is the fast-path accessor for the
// simulator engines and the accelerator models: one check and one slice
// header replace n checked per-byte accesses.
//
// Region does NOT touch the traffic counters — callers that hoist row
// accesses must account their modeled traffic in bulk with AddTraffic so
// the per-access counter semantics of the checked accessors are preserved
// exactly.
func (m *Memory) Region(addr, n uint64) []byte {
	m.check(addr, n)
	if n > 0 {
		for p, last := addr>>pageShift, (addr+n-1)>>pageShift; p <= last; p++ {
			m.dirty[p] = true
		}
	}
	return m.data[addr : addr+n : addr+n]
}

// AddTraffic adds modeled traffic to the counters in bulk. Fast paths that
// bypass the checked per-access methods (Region views) use it to keep
// BytesRead/BytesWritten byte-identical to the equivalent sequence of
// checked accesses.
func (m *Memory) AddTraffic(read, written uint64) {
	m.BytesRead += read
	m.BytesWritten += written
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) uint8 {
	m.check(addr, 1)
	m.BytesRead++
	return m.data[addr]
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v uint8) {
	m.check(addr, 1)
	m.mark(addr, 1)
	m.BytesWritten++
	m.data[addr] = v
}

// Read16 loads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint64) uint16 {
	m.check(addr, 2)
	m.BytesRead += 2
	return binary.LittleEndian.Uint16(m.data[addr:])
}

// Write16 stores a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) {
	m.check(addr, 2)
	m.mark(addr, 2)
	m.BytesWritten += 2
	binary.LittleEndian.PutUint16(m.data[addr:], v)
}

// Read32 loads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	m.check(addr, 4)
	m.BytesRead += 4
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// Write32 stores a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	m.check(addr, 4)
	m.mark(addr, 4)
	m.BytesWritten += 4
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// Read64 loads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	m.check(addr, 8)
	m.BytesRead += 8
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// Write64 stores a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	m.check(addr, 8)
	m.mark(addr, 8)
	m.BytesWritten += 8
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// ReadSigned loads a sign-extended value of width bits (8, 16, 32 or 64).
func (m *Memory) ReadSigned(addr uint64, width int) int64 {
	switch width {
	case 8:
		return int64(int8(m.Read8(addr)))
	case 16:
		return int64(int16(m.Read16(addr)))
	case 32:
		return int64(int32(m.Read32(addr)))
	case 64:
		return int64(m.Read64(addr))
	}
	panic(fmt.Sprintf("mem: unsupported width %d", width))
}

// WriteSigned stores the low width bits of v (8, 16, 32 or 64).
func (m *Memory) WriteSigned(addr uint64, width int, v int64) {
	switch width {
	case 8:
		m.Write8(addr, uint8(v))
	case 16:
		m.Write16(addr, uint16(v))
	case 32:
		m.Write32(addr, uint32(v))
	case 64:
		m.Write64(addr, uint64(v))
	default:
		panic(fmt.Sprintf("mem: unsupported width %d", width))
	}
}
