package difftest

// Automatic test-case shrinking: given a module that diverges, greedily
// apply structure-removing edits (delete a launch block, a loop, a branch;
// unwrap a loop body; drop a configuration field group; unchain a setup)
// and keep each edit whose result still reproduces a divergence of the same
// kind on the same pipeline. Every edit works on a fresh clone, so a
// rejected candidate never corrupts the current witness, and edits that
// would make the *baseline* fail (e.g. dropping a required address group)
// are rejected by the same predicate.

import (
	"configwall/internal/core"
	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
	"configwall/internal/irgen"
)

// ShrinkBudget bounds the number of candidate evaluations per shrink; each
// evaluation compiles and co-simulates the candidate through every checked
// pipeline, so the budget also bounds shrink latency.
const ShrinkBudget = 2000

// ShrinkResult reports a completed shrink.
type ShrinkResult struct {
	// Module is the smallest witness found (a clone; the input is intact).
	Module *ir.Module
	// Steps counts accepted edits, Attempts all evaluated candidates.
	Steps, Attempts int
	// Ops is the op count of the minimized module.
	Ops int
}

// Shrink minimizes prog.Module while a divergence with want's kind and
// pipeline keeps reproducing under opts. The inputs (buffers, scalar) stay
// fixed — they are derived from the seed, not the module.
func Shrink(t core.Target, prog irgen.Program, want Divergence, opts Options) ShrinkResult {
	reproduces := func(m *ir.Module) bool {
		rep := CheckModule(t, m, prog, opts)
		if rep.Invalid {
			return false
		}
		for _, d := range rep.Divergences {
			if d.Kind == want.Kind && d.Pipeline == want.Pipeline {
				return true
			}
		}
		return false
	}

	cur := prog.Module.Clone()
	res := ShrinkResult{}
	ctx := newShrinkCtx(prog.Accel)
	for {
		applied := false
		for _, e := range ctx.enumerateEdits(cur) {
			if res.Attempts >= ShrinkBudget {
				applied = false
				break
			}
			res.Attempts++
			cand, ok := ctx.applyEdit(cur, e)
			if !ok {
				continue
			}
			if ir.Verify(cand) != nil {
				continue
			}
			if reproduces(cand) {
				cur = cand
				res.Steps++
				applied = true
				break
			}
		}
		if !applied {
			break
		}
	}
	res.Module = cur
	res.Ops = ir.CountOps(cur)
	return res
}

// editKind enumerates shrink edits, tried in this order: structural
// deletions first (big wins), then field-level reductions.
type editKind int

const (
	editDeleteOp editKind = iota // erase a result-less op subtree (loop/if/store/await)
	editUnwrapLoop
	editDeleteLaunch // launch with unused token
	editDeleteSetup
	editDropField
	editUnchain
)

type edit struct {
	kind editKind
	idx  int // pre-order op index in the module
	arg  int // field index for editDropField (anchor of its group)
}

// shrinkCtx carries the generator contract the shrinker must preserve:
// on bit-packed interfaces fields sharing one configuration instruction
// must be dropped together, or the chain-less baseline lowering would pack
// zeros into the orphaned sibling slots and the "divergence" the shrinker
// chases would be a generator-contract artifact, not the original bug.
type shrinkCtx struct {
	// siblings maps a field name to every field of its group (itself
	// included); fields without a profile entry map to themselves.
	siblings map[string][]string
}

func newShrinkCtx(accel string) *shrinkCtx {
	ctx := &shrinkCtx{siblings: map[string][]string{}}
	prof, err := irgen.ProfileFor(accel)
	if err != nil {
		return ctx
	}
	for _, grp := range prof.Groups {
		names := make([]string, len(grp.Fields))
		for i, f := range grp.Fields {
			names[i] = f.Name
		}
		for _, n := range names {
			ctx.siblings[n] = names
		}
	}
	return ctx
}

// groupOf returns the whole group of a field (at minimum the field itself).
func (ctx *shrinkCtx) groupOf(field string) []string {
	if g, ok := ctx.siblings[field]; ok {
		return g
	}
	return []string{field}
}

// opIndex assigns pre-order indices; clones of the same module walk
// identically, so an index found during enumeration addresses the same op
// in a fresh clone.
func opAt(m *ir.Module, idx int) *ir.Op {
	var found *ir.Op
	n := 0
	m.Walk(func(o *ir.Op) {
		if n == idx {
			found = o
		}
		n++
	})
	return found
}

// enumerateEdits lists the candidate edits for the current witness,
// structural deletions before local reductions.
func (ctx *shrinkCtx) enumerateEdits(m *ir.Module) []edit {
	var structural, local []edit
	n := 0
	m.Walk(func(o *ir.Op) {
		idx := n
		n++
		switch o.Name() {
		case "scf.for":
			if o.NumResults() == 0 {
				structural = append(structural, edit{kind: editDeleteOp, idx: idx})
			}
			structural = append(structural, edit{kind: editUnwrapLoop, idx: idx})
		case "scf.if":
			if o.NumResults() == 0 {
				structural = append(structural, edit{kind: editDeleteOp, idx: idx})
			}
		case "memref.store", accfg.OpAwait:
			structural = append(structural, edit{kind: editDeleteOp, idx: idx})
		case accfg.OpLaunch:
			if o.Result(0).NumUses() == 0 {
				structural = append(structural, edit{kind: editDeleteLaunch, idx: idx})
			}
		case accfg.OpSetup:
			s, _ := accfg.AsSetup(o)
			local = append(local, edit{kind: editDeleteSetup, idx: idx})
			if s.HasInState() {
				local = append(local, edit{kind: editUnchain, idx: idx})
			}
			// One drop candidate per field *group* present: the first
			// member field anchors the edit, and applyEdit removes the
			// whole group (group-atomicity contract).
			seen := map[string]bool{}
			for fi, name := range s.FieldNames() {
				anchor := ctx.groupOf(name)[0]
				if seen[anchor] {
					continue
				}
				seen[anchor] = true
				local = append(local, edit{kind: editDropField, idx: idx, arg: fi})
			}
		}
	})
	return append(structural, local...)
}

// applyEdit clones m and applies e; ok=false when the edit does not apply
// to the addressed op (e.g. a setup whose state is still needed).
func (ctx *shrinkCtx) applyEdit(m *ir.Module, e edit) (*ir.Module, bool) {
	clone := m.Clone()
	op := opAt(clone, e.idx)
	if op == nil {
		return nil, false
	}
	switch e.kind {
	case editDeleteOp:
		for _, r := range op.Results() {
			if r.NumUses() > 0 {
				return nil, false
			}
		}
		op.Erase()
	case editUnwrapLoop:
		if op.Name() != "scf.for" || op.NumResults() != 0 {
			return nil, false
		}
		unwrapLoop(op)
	case editDeleteLaunch:
		if op.Name() != accfg.OpLaunch || op.Result(0).NumUses() > 0 {
			return nil, false
		}
		op.Erase()
	case editDeleteSetup:
		s, ok := accfg.AsSetup(op)
		if !ok {
			return nil, false
		}
		switch {
		case s.State().NumUses() == 0:
			op.Erase()
		case s.HasInState():
			in := s.InState()
			s.State().ReplaceAllUsesWith(in)
			op.Erase()
		default:
			return nil, false
		}
	case editDropField:
		s, ok := accfg.AsSetup(op)
		if !ok {
			return nil, false
		}
		names := s.FieldNames()
		if e.arg >= len(names) {
			return nil, false
		}
		removed := false
		for _, sibling := range ctx.groupOf(names[e.arg]) {
			removed = s.RemoveField(sibling) || removed
		}
		if !removed {
			return nil, false
		}
	case editUnchain:
		s, ok := accfg.AsSetup(op)
		if !ok || !s.HasInState() {
			return nil, false
		}
		s.ClearInState()
	}
	gcDeadPure(clone)
	return clone, true
}

// unwrapLoop splices one copy of the loop body in place of the loop, with
// the induction variable bound to the lower bound (the loop carries no
// results in generated programs).
func unwrapLoop(loop *ir.Op) {
	body := loop.Region(0).Block()
	yield := body.Last()
	mapping := map[*ir.Value]*ir.Value{body.Arg(0): loop.Operand(0)}
	b := ir.Before(loop)
	for o := body.First(); o != nil && o != yield; o = o.Next() {
		b.Insert(o.Clone(mapping))
	}
	loop.Erase()
}

// gcDeadPure erases pure ops whose results are all unused, iterating to a
// fixpoint so whole addressing chains disappear with the setup that
// consumed them.
func gcDeadPure(m *ir.Module) {
	for {
		var dead []*ir.Op
		m.Walk(func(o *ir.Op) {
			if !ir.IsPure(o) {
				return
			}
			if o.NumRegions() > 0 || o.NumResults() == 0 {
				return
			}
			for _, r := range o.Results() {
				if r.NumUses() > 0 {
					return
				}
			}
			dead = append(dead, o)
		})
		if len(dead) == 0 {
			return
		}
		for _, o := range dead {
			if o.Block() != nil {
				o.Erase()
			}
		}
	}
}
