package difftest_test

import (
	"fmt"
	"reflect"
	"testing"

	"configwall/internal/core"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/difftest"
	"configwall/internal/ir"
	"configwall/internal/irgen"
)

func targetAndProfile(t *testing.T, name string) (core.Target, irgen.Profile) {
	t.Helper()
	tgt, err := core.LookupTarget(name)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := irgen.ProfileFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return tgt, prof
}

// TestOracleCleanSweep is the in-tree slice of the acceptance run: a seeded
// batch of generated programs per target must produce zero divergences and
// zero invalid programs across every registered optimization pipeline. The
// full 500-program campaign runs as the CI cwfuzz smoke.
func TestOracleCleanSweep(t *testing.T) {
	const programs = 40
	for _, name := range core.TargetNames() {
		tgt, prof := targetAndProfile(t, name)
		for i := 0; i < programs; i++ {
			seed := irgen.DeriveSeed(1, name, i)
			prog, err := irgen.Generate(prof, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			rep := difftest.Check(tgt, prog, difftest.Options{})
			if rep.Invalid {
				t.Errorf("%s seed %d: baseline invalid: %s", name, seed, rep.InvalidReason)
			}
			for _, d := range rep.Divergences {
				t.Errorf("%s seed %d: %s", name, seed, d)
			}
		}
	}
}

// TestCheckDeterministic: checking the same program twice yields an
// identical report — the property behind byte-identical campaign reports.
func TestCheckDeterministic(t *testing.T) {
	for _, name := range core.TargetNames() {
		tgt, prof := targetAndProfile(t, name)
		prog, err := irgen.Generate(prof, irgen.DeriveSeed(7, name, 3))
		if err != nil {
			t.Fatal(err)
		}
		a := difftest.Check(tgt, prog, difftest.Options{})
		b := difftest.Check(tgt, prog, difftest.Options{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: reports differ between identical checks:\n%+v\n%+v", name, a, b)
		}
	}
}

// misdirectOutput is the injected "broken pass": it rewires the output
// address of the program's initial full setup to the A-input address, a
// minimal model of a pass corrupting one configuration field. The first
// launch then scribbles over the A matrix, a persistent corruption no later
// launch can mask. The oracle must catch it and the shrinker must reduce
// the witness.
func misdirectOutput(accelFieldA, accelFieldB string) func(*ir.Module) error {
	return func(m *ir.Module) error {
		var done bool
		m.Walk(func(op *ir.Op) {
			s, ok := accfg.AsSetup(op)
			if !ok || done {
				return
			}
			a := s.FieldValue(accelFieldA)
			b := s.FieldValue(accelFieldB)
			if a == nil || b == nil {
				return
			}
			base := 0
			if s.HasInState() {
				base = 1
			}
			for i, name := range s.FieldNames() {
				if name == accelFieldB {
					s.Op.SetOperand(base+i, a)
					done = true
					return
				}
			}
		})
		if !done {
			return fmt.Errorf("mutation found no setup with both %s and %s", accelFieldA, accelFieldB)
		}
		return nil
	}
}

// TestMutationCaughtAndShrunk: an intentionally broken pipeline must be
// detected as a divergence, and the shrinker must produce a strictly
// smaller module that still reproduces it.
func TestMutationCaughtAndShrunk(t *testing.T) {
	cases := []struct {
		target string
		fieldA string
		fieldB string
	}{
		{"gemmini", "A", "C"},
		{"opengemm", "ptr_a", "ptr_c"},
	}
	for _, tc := range cases {
		t.Run(tc.target, func(t *testing.T) {
			tgt, prof := targetAndProfile(t, tc.target)
			prog, err := irgen.Generate(prof, irgen.DeriveSeed(2, tc.target, 11))
			if err != nil {
				t.Fatal(err)
			}
			opts := difftest.Options{
				Pipelines: []core.Pipeline{core.DedupOnly},
				Mutate:    misdirectOutput(tc.fieldA, tc.fieldB),
			}
			rep := difftest.Check(tgt, prog, opts)
			if rep.Invalid {
				t.Fatalf("baseline invalid: %s", rep.InvalidReason)
			}
			if !rep.Diverged() {
				t.Fatal("oracle missed the injected mutation")
			}
			want := rep.Divergences[0]
			if want.Kind != difftest.KindMemory && want.Kind != difftest.KindLaunchEffect {
				t.Fatalf("unexpected divergence kind for a corrupted address: %s", want)
			}

			before := ir.CountOps(prog.Module)
			sh := difftest.Shrink(tgt, prog, want, opts)
			if sh.Ops >= before {
				t.Fatalf("shrinker made no progress: %d -> %d ops (steps %d, attempts %d)", before, sh.Ops, sh.Steps, sh.Attempts)
			}
			// The minimized witness must still reproduce the same divergence.
			min := difftest.CheckModule(tgt, sh.Module, prog, opts)
			found := false
			for _, d := range min.Divergences {
				if d.Kind == want.Kind && d.Pipeline == want.Pipeline {
					found = true
				}
			}
			if !found {
				t.Fatalf("minimized module no longer reproduces %s:\n%s", want, ir.PrintModule(sh.Module))
			}
			// And it must still be a well-formed, replayable module.
			if err := ir.Verify(sh.Module); err != nil {
				t.Fatalf("minimized module does not verify: %v", err)
			}
			t.Logf("%s: shrank %d -> %d ops in %d steps (%d attempts)", tc.target, before, sh.Ops, sh.Steps, sh.Attempts)
		})
	}
}

// bumpConstField models a miscompile the static checker can *prove*: it
// finds a setup field whose value is an arith.constant used only by setup
// ops (so the event structure cannot change) and bumps the constant. The
// abstract comparison then sees Const-vs-Const on a launch-observed field.
func bumpConstField() func(*ir.Module) error {
	return func(m *ir.Module) error {
		var done bool
		m.Walk(func(op *ir.Op) {
			s, ok := accfg.AsSetup(op)
			if !ok || done {
				return
			}
			for _, name := range s.FieldNames() {
				v := s.FieldValue(name)
				def := v.DefiningOp()
				if def == nil || def.Name() != arith.OpConstant {
					continue
				}
				onlySetups := true
				for _, u := range v.Uses() {
					if _, ok := accfg.AsSetup(u.Op); !ok {
						onlySetups = false
						break
					}
				}
				if !onlySetups {
					continue
				}
				val, _ := arith.ConstantValue(v)
				def.SetAttr("value", ir.IntAttr(val+1))
				done = true
				return
			}
		})
		if !done {
			return fmt.Errorf("mutation found no setup-only constant field")
		}
		return nil
	}
}

// TestStaticPreOracleSkipsSim: a provably miscompiled pipeline is rejected
// by the static pre-oracle without co-simulation (KindStatic, SimSkipped),
// while audit mode still co-simulates and must agree with the dynamic
// verdict; StaticOff records no verdicts at all.
func TestStaticPreOracleSkipsSim(t *testing.T) {
	tgt, prof := targetAndProfile(t, "gemmini")
	prog, err := irgen.Generate(prof, irgen.DeriveSeed(4, "gemmini", 9))
	if err != nil {
		t.Fatal(err)
	}
	base := difftest.Options{
		Pipelines: []core.Pipeline{core.DedupOnly},
		Mutate:    bumpConstField(),
	}

	pre := base
	pre.Static = difftest.StaticPreOracle
	rep := difftest.Check(tgt, prog, pre)
	if rep.Invalid {
		t.Fatalf("baseline invalid: %s", rep.InvalidReason)
	}
	if len(rep.Static) != 1 || !rep.Static[0].Rejected || !rep.Static[0].SimSkipped {
		t.Fatalf("pre-oracle static outcome not a sim-skipping reject: %+v", rep.Static)
	}
	if len(rep.Divergences) != 1 || rep.Divergences[0].Kind != difftest.KindStatic {
		t.Fatalf("expected exactly one static-reject divergence, got %+v", rep.Divergences)
	}

	audit := base
	audit.Static = difftest.StaticAudit
	rep = difftest.Check(tgt, prog, audit)
	if len(rep.Static) != 1 || !rep.Static[0].Rejected || rep.Static[0].SimSkipped {
		t.Fatalf("audit static outcome not a co-simulated reject: %+v", rep.Static)
	}
	if rep.Static[0].Disagree {
		t.Fatalf("static reject must agree with the dynamic oracle: %+v", rep)
	}
	if !rep.Diverged() {
		t.Fatal("audit mode lost the dynamic divergence")
	}

	off := base
	off.Static = difftest.StaticOff
	rep = difftest.Check(tgt, prog, off)
	if len(rep.Static) != 0 {
		t.Fatalf("StaticOff still produced verdicts: %+v", rep.Static)
	}
	if !rep.Diverged() {
		t.Fatal("dynamic oracle missed the mutation with the checker off")
	}
}

// TestMetamorphicCountersHold: on the paper-shaped workload programs the
// dedup pipelines must strictly reduce configuration traffic, which the
// oracle asserts as an invariant rather than a statistic.
func TestMetamorphicCountersHold(t *testing.T) {
	for _, name := range core.TargetNames() {
		tgt, prof := targetAndProfile(t, name)
		prog, err := irgen.Generate(prof, irgen.DeriveSeed(3, name, 5))
		if err != nil {
			t.Fatal(err)
		}
		rep := difftest.Check(tgt, prog, difftest.Options{Pipelines: []core.Pipeline{core.DedupOnly}})
		if rep.Invalid || rep.Diverged() {
			t.Fatalf("%s: unexpected result: %+v", name, rep)
		}
	}
}
