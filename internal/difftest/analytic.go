package difftest

// Analytic-bounds invariant: the calibrated analytical prediction tier
// (internal/analytic) documents a held-out error band at calibration
// time; this file re-checks that band against the live simulator and
// turns violations into campaign divergences. cwfuzz runs it as a
// standing phase — a prediction drifting out of band means the model,
// the simulator, or the calibration hygiene changed without a refit.

import (
	"context"
	"fmt"

	"configwall/internal/analytic"
	"configwall/internal/core"
)

// AnalyticDivergences converts a calibration report's band violations
// into divergences: one KindAnalyticBounds entry per out-of-band
// held-out cell, plus one per target whose geomean error exceeds the
// band. An empty slice means the model honors its documented band.
func AnalyticDivergences(rep *analytic.Report) []Divergence {
	var out []Divergence
	for _, tr := range rep.Targets {
		for _, c := range tr.Violations(rep.Band) {
			out = append(out, Divergence{
				Kind:     KindAnalyticBounds,
				Pipeline: c.Exp.Pipeline,
				Detail: fmt.Sprintf("%s: predicted %.0f cycles, simulated %.0f (error %.1f%% > per-cell band %.0f%%)",
					c.Exp, c.Predicted, c.Actual, 100*c.Err, 100*rep.Band.PerCell),
			})
		}
		if tr.GeomeanErr > rep.Band.Geomean {
			out = append(out, Divergence{
				Kind: KindAnalyticBounds,
				Detail: fmt.Sprintf("%s: held-out geomean cycle error %.1f%% > band %.0f%% over %d cells",
					tr.Target, 100*tr.GeomeanErr, 100*rep.Band.Geomean, len(tr.Cells)),
			})
		}
	}
	return out
}

// CheckAnalyticBounds calibrates the analytical tier against the real
// simulator under spec and validates the held-out error band, returning
// the fitted model, the per-cell report, and any band violations as
// divergences. The whole check is deterministic in spec.Seed: the same
// seed always exercises the same held-out cells against the same fits.
func CheckAnalyticBounds(ctx context.Context, r *core.Runner, spec analytic.Spec) (*analytic.Model, *analytic.Report, []Divergence, error) {
	model, rep, err := analytic.Calibrate(ctx, r, spec)
	if err != nil {
		return nil, nil, nil, err
	}
	return model, rep, AnalyticDivergences(rep), nil
}
