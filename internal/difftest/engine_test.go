package difftest

// Internal tests for the simulator-engine cross-check: equalExecutions is
// the comparison at the heart of the standing fuzz invariant, so its
// discrimination is pinned directly.

import (
	"strings"
	"testing"

	"configwall/internal/accel"
	"configwall/internal/core"
	"configwall/internal/irgen"
	"configwall/internal/sim"
	"configwall/internal/trace"
)

func cleanExecution() Execution {
	return Execution{
		Counters: sim.Counters{Cycles: 100, HostInstrs: 40, HostCycles: 80},
		Launches: []accel.Launch{{Ops: 512, Cycles: 30}},
		Mem:      []byte{1, 2, 3},
		TraceSummary: trace.Summary{
			HostExec: 70, HostConfig: 10, AccelBusy: 30,
		},
	}
}

func TestEqualExecutionsDiscrimination(t *testing.T) {
	if err := equalExecutions(cleanExecution(), cleanExecution(), "fast"); err != nil {
		t.Fatalf("identical executions reported unequal: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Execution)
		want   string
	}{
		{"counters", func(e *Execution) { e.Cycles++ }, "counters"},
		{"launch count", func(e *Execution) { e.Launches = nil }, "launch count"},
		{"launch effect", func(e *Execution) { e.Launches[0].Ops++ }, "launch 0"},
		{"memory", func(e *Execution) { e.Mem[1] ^= 0xff }, "memory at 0x1"},
		{"trace summary", func(e *Execution) { e.TraceSummary.HostExec-- }, "trace summary"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast := cleanExecution()
			tc.mutate(&fast)
			err := equalExecutions(cleanExecution(), fast, "fast")
			if err == nil {
				t.Fatal("divergent executions reported equal")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the divergent observable %q", err, tc.want)
			}
		})
	}
}

// TestEngineCrossCheckIsStanding: the default Options run every pipeline's
// compiled program on both engines — provable from the outside because
// trace recording (and therefore a non-empty base TraceSummary) happens
// exactly when the cross-check path is taken, and because a seeded
// campaign slice across both targets stays divergence-free.
func TestEngineCrossCheckIsStanding(t *testing.T) {
	for _, targetName := range core.TargetNames() {
		prof, err := irgen.ProfileFor(targetName)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := core.LookupTarget(targetName)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			seed := irgen.DeriveSeed(11, targetName, i)
			prog, err := irgen.Generate(prof, seed)
			if err != nil {
				t.Fatal(err)
			}
			rep := Check(tgt, prog, Options{})
			if rep.Invalid {
				t.Fatalf("%s seed %d: invalid baseline: %s", targetName, seed, rep.InvalidReason)
			}
			if rep.Diverged() {
				t.Fatalf("%s seed %d: divergences with engine cross-check on: %v", targetName, seed, rep.Divergences)
			}
			if rep.Base.TraceSummary == (trace.Summary{}) {
				t.Fatalf("%s seed %d: base trace summary empty — cross-check path did not record", targetName, seed)
			}
		}
	}
}

// TestSkipEngineCrossCheck: the opt-out must still produce a full report.
func TestSkipEngineCrossCheck(t *testing.T) {
	prof, err := irgen.ProfileFor("opengemm")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := core.LookupTarget("opengemm")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Generate(prof, irgen.DeriveSeed(11, "opengemm", 0))
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(tgt, prog, Options{SkipEngineCrossCheck: true})
	if rep.Invalid || rep.Diverged() {
		t.Fatalf("clean program failed with cross-check disabled: %+v", rep)
	}
	// The opt-out must actually take the cheap path: no trace recording.
	if rep.Base.TraceSummary != (trace.Summary{}) {
		t.Errorf("TraceSummary populated with cross-check disabled: %+v", rep.Base.TraceSummary)
	}
}
