// Package difftest is the differential-verification oracle behind cmd/cwfuzz
// and the corpus regression tests: it lowers, compiles and co-simulates one
// generated accfg module (internal/irgen) through the Baseline pipeline and
// every optimization pipeline, then asserts that the optimized executions
// are observationally identical to the baseline —
//
//   - the final memory image (buffer arena and everything below the stack)
//     is byte-identical,
//   - the accelerator performed the identical sequence of launch effects
//     (same launch count, same ops and busy cycles per launch, in order),
//   - the IR verified cleanly after every pass (PassManager.VerifyEach),
//
// plus the paper's metamorphic claims —
//
//   - optimized pipelines never write more configuration traffic than the
//     baseline (except overlap software-pipelining on concurrent-config
//     hardware, whose loop prologue adds one bounded static setup), and
//   - optimized pipelines never run slower than the baseline (again modulo
//     a bounded allowance for overlap's prologue and dead final-iteration
//     staging writes on tiny jobs),
//
// plus the simulator's own engine-equivalence invariant (DESIGN.md §6, §8) —
//
//   - every compiled program (baseline and each optimized pipeline)
//     executes identically on every registered simulator engine: the
//     reference interpreter, the predecoded fast engine and the
//     block-compiled engine must produce the same Counters, the same
//     final memory image, the same summarized trace and the same
//     launch effects.
//
// A failing case is a Divergence; the shrinker (shrink.go) reduces the
// module while the divergence reproduces.
package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"configwall/internal/accel"
	"configwall/internal/analysis"
	"configwall/internal/codegen"
	"configwall/internal/core"
	"configwall/internal/ir"
	"configwall/internal/irgen"
	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
	"configwall/internal/trace"
)

// Simulation arena: generated programs are tiny, so the oracle uses a 1 MiB
// memory (snapshot cost matters at campaign scale). Buffers sit from
// bufferBase; codegen statics follow; spill frames live at stackBase and are
// excluded from comparison (register allocation differs across pipelines).
const (
	memorySize = 1 << 20
	bufferBase = 0x1000
	stackBase  = 0xF0000
	maxInstrs  = 1 << 24
)

// Kind classifies a divergence.
type Kind int

// Divergence kinds, ordered roughly by detection stage.
const (
	KindNone Kind = iota
	// KindPipelineError: a pass or the between-pass verifier failed.
	KindPipelineError
	// KindCompileError: codegen rejected the optimized module.
	KindCompileError
	// KindSimError: the optimized binary faulted (bad device config,
	// out-of-range pc, instruction limit) while the baseline ran clean.
	KindSimError
	// KindMemory: final memory images differ.
	KindMemory
	// KindLaunchCount: the accelerator launched a different number of jobs.
	KindLaunchCount
	// KindLaunchEffect: some job performed different work (ops/cycles).
	KindLaunchEffect
	// KindConfigWrites: the optimized pipeline wrote more configuration
	// traffic than the baseline.
	KindConfigWrites
	// KindCycles: the optimized pipeline ran slower than allowed.
	KindCycles
	// KindEngine: an optimized simulator engine (fast or compiled)
	// disagreed with the reference engine on the same compiled program
	// (counters, final memory or summarized trace) — a simulator bug,
	// not a compiler bug.
	KindEngine
	// KindStatic: the static config-state checker proved the optimized
	// pre-lowering module diverges from the original program's intent; in
	// pre-oracle mode the case is reported without co-simulation.
	KindStatic
	// KindStaticBounds: the simulator's counters fell below the static
	// lower bounds (launch count / configuration writes) of the very module
	// that was executed — the analysis and the machine disagree about the
	// program.
	KindStaticBounds
	// KindStaticDisagree: the static verdict and the dynamic oracle
	// contradict each other — a proved-equivalent pipeline diverged
	// semantically, or a statically rejected one co-simulated clean.
	KindStaticDisagree
	// KindAnalyticBounds: the calibrated analytical prediction tier
	// (internal/analytic) missed the simulator by more than its
	// documented held-out error band — the model, the simulator, or the
	// calibration hygiene has silently drifted.
	KindAnalyticBounds
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPipelineError:
		return "pipeline-error"
	case KindCompileError:
		return "compile-error"
	case KindSimError:
		return "sim-error"
	case KindMemory:
		return "memory-mismatch"
	case KindLaunchCount:
		return "launch-count"
	case KindLaunchEffect:
		return "launch-effect"
	case KindConfigWrites:
		return "config-write-regression"
	case KindCycles:
		return "cycle-regression"
	case KindEngine:
		return "engine-divergence"
	case KindStatic:
		return "static-reject"
	case KindStaticBounds:
		return "static-bounds"
	case KindStaticDisagree:
		return "static-disagree"
	case KindAnalyticBounds:
		return "analytic-bounds"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Divergence is one observed base/optimized disagreement.
type Divergence struct {
	Kind     Kind
	Pipeline core.Pipeline
	Detail   string
}

func (d Divergence) String() string {
	return fmt.Sprintf("[%s/%s] %s", d.Pipeline, d.Kind, d.Detail)
}

// Execution captures everything the oracle compares about one run.
type Execution struct {
	sim.Counters
	// Launches is the ordered launch-effect sequence.
	Launches []accel.Launch
	// Mem is the final [0, stackBase) memory image.
	Mem []byte
	// TraceSummary aggregates the recorded timeline per segment kind.
	TraceSummary trace.Summary
	// ProgramInstrs is the compiled program size.
	ProgramInstrs int
}

// Options tunes a check.
type Options struct {
	// Pipelines to compare against Baseline; nil selects every registered
	// optimization pipeline (dedup, overlap, all).
	Pipelines []core.Pipeline
	// PipelineFor overrides pass-pipeline construction (nil uses
	// Target.PassPipeline). Tests inject broken pipelines through it.
	PipelineFor func(t core.Target, p core.Pipeline) *ir.PassManager
	// Mutate, when set, is applied to the cloned module of every
	// *optimization* pipeline before its passes run — the hook the
	// mutation tests use to model an intentionally broken pass.
	Mutate func(m *ir.Module) error
	// CycleSlack returns the allowed optimized-cycle excess over base for
	// overlap pipelines on concurrent-configuration targets; nil selects
	// DefaultCycleSlack. Non-overlap pipelines always get zero slack.
	CycleSlack func(baseCycles uint64) uint64
	// SkipEngineCrossCheck disables the standing simulator-engine
	// equivalence invariant: by default every compiled program (baseline
	// and each optimized pipeline) runs on every registered engine —
	// reference, fast and compiled — and any disagreement in Counters,
	// final memory or the summarized trace is reported as a KindEngine
	// divergence.
	SkipEngineCrossCheck bool
	// Static selects how the static config-state checker participates in
	// the oracle; the zero value is StaticPreOracle.
	Static StaticMode
}

// StaticMode selects the static checker's role in a check.
type StaticMode int

const (
	// StaticPreOracle (the default) statically compares every optimized
	// pipeline's pre-lowering module against the original program first: a
	// proved divergence is reported as KindStatic without co-simulation
	// (the proof is the witness); accepted modules proceed to the dynamic
	// oracle, whose semantic outcome is then cross-checked against the
	// static verdict (KindStaticDisagree on contradiction).
	StaticPreOracle StaticMode = iota
	// StaticAudit always co-simulates, then cross-checks the static
	// verdict against the dynamic outcome — including for statically
	// rejected cases, where the dynamic oracle must agree.
	StaticAudit
	// StaticOff disables the static checker entirely.
	StaticOff
)

// StaticOutcome records the static verdict for one pipeline of one check.
type StaticOutcome struct {
	Pipeline core.Pipeline
	// Verdict is the rendered analysis verdict ("reject: ...",
	// "accept (proved)", "accept (inconclusive: ...)").
	Verdict  string
	Rejected bool
	Proved   bool
	// SimSkipped marks pre-oracle rejects that never co-simulated.
	SimSkipped bool
	// Disagree marks contradictions with the dynamic oracle.
	Disagree bool
}

// DefaultCycleSlack bounds the overhead software pipelining may add on
// concurrent-configuration hardware: the loop prologue setup plus the dead
// final-iteration staging writes are static, bounded work that only pays
// off when jobs outlast configuration streams — on the fuzzer's deliberately
// tiny jobs it can lose a little. A real scheduling regression shows up far
// above base/4 + 512 on these programs.
func DefaultCycleSlack(baseCycles uint64) uint64 { return baseCycles/4 + 512 }

// CorpusName renders the canonical corpus file name for a program, and
// ParseCorpusName inverts it: "<accelerator>-s<seed>.ir". cwfuzz writes
// minimized witnesses under this convention and the corpus regression test
// replays them; both sides share these helpers so the format cannot drift.
func CorpusName(accel string, seed int64) string {
	return fmt.Sprintf("%s-s%d.ir", accel, seed)
}

// ParseCorpusName splits a corpus file base name into accelerator and seed;
// ok is false for names outside the convention (including trailing garbage
// after the seed).
func ParseCorpusName(name string) (accel string, seed int64, ok bool) {
	base, found := strings.CutSuffix(name, ".ir")
	if !found {
		return "", 0, false
	}
	i := strings.LastIndex(base, "-s")
	if i < 1 { // also rejects an empty accelerator name
		return "", 0, false
	}
	seed, err := strconv.ParseInt(base[i+2:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return base[:i], seed, true
}

// Replay re-checks one corpus module file against the exact inputs that
// exposed it: the accelerator and seed come from the file name, the module
// from its contents. Both the cwfuzz -replay flag and the corpus
// regression test go through here, so replay semantics cannot drift.
func Replay(path string, opts Options) (Report, error) {
	accel, seed, ok := ParseCorpusName(filepath.Base(path))
	if !ok {
		return Report{}, fmt.Errorf("difftest: corpus file %q must be named <accel>-s<seed>.ir", path)
	}
	tgt, err := core.LookupTarget(accel)
	if err != nil {
		return Report{}, err
	}
	prof, err := irgen.ProfileFor(accel)
	if err != nil {
		return Report{}, err
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		return Report{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := ir.Verify(m); err != nil {
		return Report{}, fmt.Errorf("%s does not verify: %w", path, err)
	}
	bufs, p := irgen.InputsFor(prof, seed)
	prog := irgen.Program{Accel: accel, Seed: seed, Module: m, Buffers: bufs, P: p}
	return Check(tgt, prog, opts), nil
}

// OptimizationPipelines lists the registered non-baseline pipelines.
func OptimizationPipelines() []core.Pipeline {
	var out []core.Pipeline
	for _, p := range core.Pipelines {
		if p != core.Baseline {
			out = append(out, p)
		}
	}
	return out
}

// hasOverlap reports whether the pipeline schedules configuration overlap.
func hasOverlap(p core.Pipeline) bool {
	return p == core.OverlapOnly || p == core.AllOptimizations
}

// Report is the outcome of checking one program.
type Report struct {
	Target string
	Seed   int64
	// Invalid marks programs whose *baseline* failed to compile or run —
	// the oracle then has no reference; campaigns count these separately
	// and treat any occurrence as a failure of the generator contract.
	Invalid       bool
	InvalidReason string
	// Base carries the baseline execution for metamorphic context.
	Base Execution
	// Divergences lists every base/optimized disagreement found.
	Divergences []Divergence
	// Static lists the static checker's verdict per pipeline (empty when
	// Options.Static is StaticOff).
	Static []StaticOutcome
}

// Diverged reports whether any pipeline disagreed with the baseline.
func (r Report) Diverged() bool { return len(r.Divergences) > 0 }

// Check generates nothing: it takes a ready program and compares Baseline
// against every requested pipeline.
func Check(t core.Target, prog irgen.Program, opts Options) Report {
	return CheckModule(t, prog.Module, prog, opts)
}

// CheckModule is Check with an explicit module (the shrinker calls it with
// reduced clones while keeping the program's inputs).
func CheckModule(t core.Target, m *ir.Module, prog irgen.Program, opts Options) Report {
	rep := Report{Target: t.Name, Seed: prog.Seed}
	pipelineFor := opts.PipelineFor
	if pipelineFor == nil {
		pipelineFor = func(t core.Target, p core.Pipeline) *ir.PassManager { return t.PassPipeline(p) }
	}
	pipelines := opts.Pipelines
	if pipelines == nil {
		pipelines = OptimizationPipelines()
	}
	slack := opts.CycleSlack
	if slack == nil {
		slack = DefaultCycleSlack
	}

	crossCheck := !opts.SkipEngineCrossCheck
	static := opts.Static != StaticOff
	var baseSum *analysis.Summary
	if static {
		baseSum = analysis.Explore(m)
	}

	baseFinal, basePre, kind, err := runPasses(m, pipelineFor(t, core.Baseline), nil)
	var base Execution
	if err == nil {
		base, kind, err = executeCompiled(t, baseFinal, prog, crossCheck)
	}
	if err != nil {
		if kind != KindEngine {
			rep.Invalid = true
			rep.InvalidReason = fmt.Sprintf("baseline %s: %v", kind, err)
			return rep
		}
		// The reference run succeeded and stays authoritative; the fast
		// engine disagreeing with it is a divergence in its own right.
		rep.Divergences = append(rep.Divergences, Divergence{Kind: kind, Pipeline: core.Baseline, Detail: err.Error()})
	}
	rep.Base = base
	if static {
		if d := boundsViolation(core.Baseline, basePre, base); d != nil {
			rep.Divergences = append(rep.Divergences, *d)
		}
	}

	for _, p := range pipelines {
		final, preLower, kind, err := runPasses(m, pipelineFor(t, p), opts.Mutate)
		if err != nil {
			rep.Divergences = append(rep.Divergences, Divergence{Kind: kind, Pipeline: p, Detail: err.Error()})
			continue
		}

		// Static verdict first: in pre-oracle mode a proved divergence is
		// its own witness and the case never co-simulates; anything the
		// analysis accepted (or audit mode) proceeds to the dynamic oracle,
		// whose semantic outcome is cross-checked against the verdict.
		var out *StaticOutcome
		if static {
			v := analysis.CompareSummaries(baseSum, analysis.Explore(preLower))
			rep.Static = append(rep.Static, StaticOutcome{
				Pipeline: p, Verdict: v.String(), Rejected: v.Rejected(), Proved: v.Proved(),
			})
			out = &rep.Static[len(rep.Static)-1]
			if out.Rejected && opts.Static == StaticPreOracle {
				out.SimSkipped = true
				rep.Divergences = append(rep.Divergences, Divergence{Kind: KindStatic, Pipeline: p, Detail: v.String()})
				continue
			}
		}

		exec, kind, err := executeCompiled(t, final, prog, crossCheck)
		if err != nil {
			rep.Divergences = append(rep.Divergences, Divergence{Kind: kind, Pipeline: p, Detail: err.Error()})
			if kind != KindEngine {
				continue
			}
			// Engine divergences leave the reference execution intact:
			// still compare it against the baseline below.
		}
		semantic := compare(t, p, base, exec, slack)
		rep.Divergences = append(rep.Divergences, semantic...)

		if out != nil {
			if d := boundsViolation(p, preLower, exec); d != nil {
				rep.Divergences = append(rep.Divergences, *d)
			}
			dynDiverged := hasSemanticDivergence(semantic)
			switch {
			case out.Rejected && !dynDiverged:
				out.Disagree = true
				rep.Divergences = append(rep.Divergences, Divergence{Kind: KindStaticDisagree, Pipeline: p,
					Detail: fmt.Sprintf("statically rejected but co-simulated clean: %s", out.Verdict)})
			case out.Proved && dynDiverged:
				out.Disagree = true
				rep.Divergences = append(rep.Divergences, Divergence{Kind: KindStaticDisagree, Pipeline: p,
					Detail: fmt.Sprintf("statically proved equivalent but diverged dynamically (%s)", semantic[0].Kind)})
			}
		}
	}
	return rep
}

// boundsViolation checks one execution against the static lower bounds of
// the very pre-lowering module that was executed: the machine may never do
// less work than the analysis proved unavoidable.
func boundsViolation(p core.Pipeline, preLower *ir.Module, exec Execution) *Divergence {
	b := analysis.StaticBounds(preLower)
	if len(exec.Launches) < b.MinLaunches || exec.ConfigInstrs < uint64(b.MinConfigInstrs) {
		return &Divergence{Kind: KindStaticBounds, Pipeline: p,
			Detail: fmt.Sprintf("executed %d launches / %d config instrs, static lower bounds %d / %d",
				len(exec.Launches), exec.ConfigInstrs, b.MinLaunches, b.MinConfigInstrs)}
	}
	return nil
}

// hasSemanticDivergence reports whether the dynamic oracle observed a true
// behavioral difference (as opposed to a metamorphic or engine finding) —
// the outcomes the static verdict speaks to.
func hasSemanticDivergence(divs []Divergence) bool {
	for _, d := range divs {
		switch d.Kind {
		case KindMemory, KindLaunchCount, KindLaunchEffect:
			return true
		}
	}
	return false
}

// Execute clones m, runs the pass pipeline, compiles and simulates it with
// the program's inputs, returning the observation. On failure the Kind
// reports which stage failed. With crossCheck set, the compiled program
// additionally runs on every non-reference simulator engine (fast and
// compiled), and any disagreement with the reference observation
// (Counters, final memory, summarized trace, launch effects) returns a
// KindEngine error alongside the still valid reference Execution.
func Execute(t core.Target, m *ir.Module, prog irgen.Program, pm *ir.PassManager, mutate func(*ir.Module) error, crossCheck bool) (Execution, Kind, error) {
	clone, _, kind, err := runPasses(m, pm, mutate)
	if err != nil {
		return Execution{}, kind, err
	}
	return executeCompiled(t, clone, prog, crossCheck)
}

// runPasses clones m, applies the optional mutation and runs the pipeline.
// Alongside the final module it returns the pre-lowering snapshot — the
// module as it stood entering the first lower-* pass (or the final module
// when the pipeline never lowers): the last point where accfg launches are
// still visible to the static checker.
func runPasses(m *ir.Module, pm *ir.PassManager, mutate func(*ir.Module) error) (final, preLower *ir.Module, kind Kind, err error) {
	clone := m.Clone()
	if mutate != nil {
		if err := mutate(clone); err != nil {
			return nil, nil, KindPipelineError, fmt.Errorf("mutate: %w", err)
		}
	}
	prev := pm.CheckEach
	pm.CheckEach = func(pass string, before, after *ir.Module) error {
		if preLower == nil && strings.HasPrefix(pass, "lower-") {
			preLower = before
		}
		if prev != nil {
			return prev(pass, before, after)
		}
		return nil
	}
	err = pm.Run(clone)
	pm.CheckEach = prev
	if err != nil {
		return nil, nil, KindPipelineError, err
	}
	if preLower == nil {
		preLower = clone
	}
	return clone, preLower, KindNone, nil
}

// executeCompiled compiles and simulates one already-optimized module.
func executeCompiled(t core.Target, clone *ir.Module, prog irgen.Program, crossCheck bool) (Execution, Kind, error) {
	bases := make([]uint64, len(prog.Buffers))
	next := uint64(bufferBase)
	for i, buf := range prog.Buffers {
		bases[i] = next
		next += (buf.Bytes + 63) &^ 63
	}
	if next >= stackBase {
		return Execution{}, KindCompileError, fmt.Errorf("difftest: buffer arena exceeds simulated memory")
	}

	compiled, _, err := codegen.Compile(clone, "main", codegen.Options{StaticBase: next})
	if err != nil {
		return Execution{}, KindCompileError, err
	}

	// Trace recording is only needed for the summarized-trace comparison
	// between engines; the plain oracle path skips its cost.
	ref, err := simulate(t, prog, compiled, bases, sim.EngineRef, crossCheck)
	if err != nil {
		return Execution{}, KindSimError, err
	}
	if crossCheck {
		for _, eng := range sim.Engines {
			if eng == sim.EngineRef {
				continue
			}
			alt, err := simulate(t, prog, compiled, bases, eng, true)
			if err != nil {
				return ref, KindEngine, fmt.Errorf("%s engine failed where the reference engine succeeded: %w", eng, err)
			}
			if err := equalExecutions(ref, alt, eng.String()); err != nil {
				return ref, KindEngine, err
			}
		}
	}
	return ref, KindNone, nil
}

// simulate runs one compiled program on a fresh memory/device sandbox
// under the selected engine and captures the oracle observation.
func simulate(t core.Target, prog irgen.Program, compiled *riscv.Program, bases []uint64, engine sim.Engine, recordTrace bool) (Execution, error) {
	memory := mem.New(memorySize)
	for i, buf := range prog.Buffers {
		for j, b := range buf.Data {
			memory.Write8(bases[i]+uint64(j), b)
		}
	}
	memory.ResetCounters()

	rec := &recorder{Device: t.NewDevice()}
	mc := sim.NewMachine(memory, t.Cost, rec)
	mc.Engine = engine
	mc.RecordTrace = recordTrace
	mc.MaxInstrs = maxInstrs
	for i := range prog.Buffers {
		mc.Regs[riscv.A0+riscv.Reg(i)] = int64(bases[i])
	}
	mc.Regs[riscv.A0+riscv.Reg(len(prog.Buffers))] = prog.P
	mc.Regs[riscv.SP] = stackBase
	if err := mc.Run(compiled); err != nil {
		return Execution{}, err
	}

	return Execution{
		Counters:      mc.Counters,
		Launches:      rec.launches,
		Mem:           memory.Snapshot(0, stackBase),
		TraceSummary:  trace.Summarize(mc.Trace),
		ProgramInstrs: len(compiled.Instrs),
	}, nil
}

// equalExecutions asserts the engine-equivalence invariant: the named
// engine must reproduce the reference observation exactly.
func equalExecutions(ref, got Execution, engine string) error {
	if ref.Counters != got.Counters {
		return fmt.Errorf("engines disagree on counters: ref %+v, %s %+v", ref.Counters, engine, got.Counters)
	}
	if len(ref.Launches) != len(got.Launches) {
		return fmt.Errorf("engines disagree on launch count: ref %d, %s %d", len(ref.Launches), engine, len(got.Launches))
	}
	for i := range ref.Launches {
		if ref.Launches[i] != got.Launches[i] {
			return fmt.Errorf("engines disagree on launch %d: ref %+v, %s %+v", i, ref.Launches[i], engine, got.Launches[i])
		}
	}
	if addr, ok := firstMemDiff(ref.Mem, got.Mem); ok {
		return fmt.Errorf("engines disagree on memory at %#x: ref %#02x, %s %#02x", addr, ref.Mem[addr], engine, got.Mem[addr])
	}
	if ref.TraceSummary != got.TraceSummary {
		return fmt.Errorf("engines disagree on trace summary: ref %+v, %s %+v", ref.TraceSummary, engine, got.TraceSummary)
	}
	return nil
}

// compare asserts the oracle invariants of one optimized execution against
// the baseline.
func compare(t core.Target, p core.Pipeline, base, opt Execution, slack func(uint64) uint64) []Divergence {
	var divs []Divergence

	if len(opt.Launches) != len(base.Launches) {
		divs = append(divs, Divergence{Kind: KindLaunchCount, Pipeline: p,
			Detail: fmt.Sprintf("launches: base %d, optimized %d", len(base.Launches), len(opt.Launches))})
	} else {
		for i := range base.Launches {
			if base.Launches[i] != opt.Launches[i] {
				divs = append(divs, Divergence{Kind: KindLaunchEffect, Pipeline: p,
					Detail: fmt.Sprintf("launch %d: base {ops %d, cycles %d}, optimized {ops %d, cycles %d}",
						i, base.Launches[i].Ops, base.Launches[i].Cycles, opt.Launches[i].Ops, opt.Launches[i].Cycles)})
				break
			}
		}
	}

	if addr, ok := firstMemDiff(base.Mem, opt.Mem); ok {
		divs = append(divs, Divergence{Kind: KindMemory, Pipeline: p,
			Detail: fmt.Sprintf("memory differs at %#x: base %#02x, optimized %#02x", addr, base.Mem[addr], opt.Mem[addr])})
	}

	// Metamorphic bounds. Overlap software-pipelining on concurrent-config
	// hardware legitimately adds one prologue setup per pipelined loop; all
	// other pipelines must strictly shrink configuration traffic and time.
	overlapping := hasOverlap(p) && t.Concurrent
	if !overlapping {
		if opt.ConfigInstrs > base.ConfigInstrs || opt.ConfigBytes > base.ConfigBytes {
			divs = append(divs, Divergence{Kind: KindConfigWrites, Pipeline: p,
				Detail: fmt.Sprintf("config writes grew: base %d instrs/%d B, optimized %d instrs/%d B",
					base.ConfigInstrs, base.ConfigBytes, opt.ConfigInstrs, opt.ConfigBytes)})
		}
		if opt.Cycles > base.Cycles {
			divs = append(divs, Divergence{Kind: KindCycles, Pipeline: p,
				Detail: fmt.Sprintf("cycles grew: base %d, optimized %d", base.Cycles, opt.Cycles)})
		}
	} else if allowed := base.Cycles + slack(base.Cycles); opt.Cycles > allowed {
		divs = append(divs, Divergence{Kind: KindCycles, Pipeline: p,
			Detail: fmt.Sprintf("cycles grew past the overlap allowance: base %d, allowed %d, optimized %d",
				base.Cycles, allowed, opt.Cycles)})
	}

	return divs
}

// firstMemDiff returns the first differing byte offset.
func firstMemDiff(a, b []byte) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, true
		}
	}
	if len(a) != len(b) {
		return n, true
	}
	return 0, false
}

// recorder wraps a device to capture the launch-effect sequence.
type recorder struct {
	accel.Device
	launches []accel.Launch
}

func (r *recorder) Launch(m *mem.Memory) (accel.Launch, error) {
	job, err := r.Device.Launch(m)
	if err == nil {
		r.launches = append(r.launches, job)
	}
	return job, err
}
