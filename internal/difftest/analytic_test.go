package difftest_test

import (
	"context"
	"strings"
	"testing"

	"configwall/internal/analytic"
	"configwall/internal/core"
	"configwall/internal/difftest"
)

// TestAnalyticDivergences pins the report-to-divergence mapping: clean
// reports produce nothing, per-cell and geomean band violations each
// produce one KindAnalyticBounds divergence with a diagnostic detail.
func TestAnalyticDivergences(t *testing.T) {
	band := analytic.Band{Geomean: 0.15, PerCell: 0.30}
	clean := &analytic.Report{
		Band: band,
		Targets: []analytic.TargetReport{{
			Target:     "gemmini",
			GeomeanErr: 0.03,
			MaxErr:     0.10,
			Cells: []analytic.CellError{{
				Exp:       core.Experiment{Target: "gemmini", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 96},
				Predicted: 110, Actual: 100, Err: 0.10,
			}},
		}},
	}
	if divs := difftest.AnalyticDivergences(clean); len(divs) != 0 {
		t.Fatalf("clean report produced divergences: %v", divs)
	}

	bad := &analytic.Report{
		Band: band,
		Targets: []analytic.TargetReport{{
			Target:     "gemmini",
			GeomeanErr: 0.20, // > geomean band
			MaxErr:     0.45,
			Cells: []analytic.CellError{{
				Exp:       core.Experiment{Target: "gemmini", Workload: core.WorkloadMatmul, Pipeline: core.OverlapOnly, N: 96},
				Predicted: 145, Actual: 100, Err: 0.45, // > per-cell band
			}},
		}},
	}
	divs := difftest.AnalyticDivergences(bad)
	if len(divs) != 2 {
		t.Fatalf("got %d divergences, want a per-cell and a geomean violation: %v", len(divs), divs)
	}
	for _, d := range divs {
		if d.Kind != difftest.KindAnalyticBounds {
			t.Errorf("divergence kind %s, want analytic-bounds", d.Kind)
		}
		if !strings.Contains(d.String(), "analytic-bounds") {
			t.Errorf("divergence rendering %q does not name the kind", d)
		}
	}
	if !strings.Contains(divs[0].Detail, "per-cell band") || divs[0].Pipeline != core.OverlapOnly {
		t.Errorf("per-cell divergence = %v", divs[0])
	}
	if !strings.Contains(divs[1].Detail, "geomean") {
		t.Errorf("geomean divergence = %v", divs[1])
	}
}

// TestCheckAnalyticBounds runs the full standing invariant once against
// the real simulator: a fresh calibration at the default spec must honor
// its own documented band, and the same seed must reproduce the identical
// model (the property cwfuzz re-checks every campaign).
func TestCheckAnalyticBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration grid in -short mode")
	}
	r := core.NewRunner(0)
	model, rep, divs, err := difftest.CheckAnalyticBounds(context.Background(), r, analytic.Spec{Seed: 1})
	if err != nil {
		t.Fatalf("CheckAnalyticBounds: %v", err)
	}
	if len(divs) != 0 {
		t.Fatalf("fresh calibration violates its own band:\n%s", rep)
	}
	if model == nil || len(model.Targets) < 2 {
		t.Fatalf("calibration returned an incomplete model")
	}
	if !rep.Clean() {
		t.Fatalf("no divergences but report is not clean:\n%s", rep)
	}
}
