package difftest_test

// Corpus replay: every module under testdata/corpus/ re-runs through the
// full oracle on every test invocation, forever. cwfuzz writes minimized
// failing modules here (named <accelerator>-s<seed>.ir — the seed recovers
// the exact buffer contents and scalar input); once the underlying bug is
// fixed, the file stays as a permanent regression test. The checked-in
// anchors are minimized representative programs proving the replay path.

import (
	"path/filepath"
	"testing"

	"configwall/internal/difftest"
)

// TestCorpusNameRoundTrip pins the shared naming convention, including
// negative seeds and rejection of malformed names.
func TestCorpusNameRoundTrip(t *testing.T) {
	for _, seed := range []int64{0, 42, -5712018378018755734} {
		name := difftest.CorpusName("gemmini", seed)
		accel, got, ok := difftest.ParseCorpusName(name)
		if !ok || accel != "gemmini" || got != seed {
			t.Fatalf("round trip of %q failed: %q %d %v", name, accel, got, ok)
		}
	}
	for _, bad := range []string{"gemmini.ir", "gemmini-s12junk.ir", "gemmini-s12", "-s5.ir"} {
		if accel, seed, ok := difftest.ParseCorpusName(bad); ok {
			t.Errorf("malformed name %q parsed as (%q, %d)", bad, accel, seed)
		}
	}
}

func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("corpus is empty — the anchor files are missing")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			rep, err := difftest.Replay(file, difftest.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Invalid {
				t.Fatalf("baseline invalid on corpus module: %s", rep.InvalidReason)
			}
			for _, d := range rep.Divergences {
				t.Errorf("corpus regression: %s", d)
			}
		})
	}
}

// TestCorpusStaticVerdicts replays every corpus module in audit mode (always
// co-simulate, then cross-check) and asserts the static checker's soundness
// contract on real-world minimized programs: the unmutated pipelines must
// never be statically rejected (zero false positives), and the static
// verdict must never contradict the dynamic oracle.
func TestCorpusStaticVerdicts(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("corpus is empty — the anchor files are missing")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			rep, err := difftest.Replay(file, difftest.Options{Static: difftest.StaticAudit})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Invalid {
				t.Fatalf("baseline invalid on corpus module: %s", rep.InvalidReason)
			}
			if len(rep.Static) == 0 {
				t.Fatal("audit mode produced no static verdicts")
			}
			for _, s := range rep.Static {
				if s.Rejected {
					t.Errorf("%s: static false positive on unmutated pipeline: %s", s.Pipeline, s.Verdict)
				}
				if s.Disagree {
					t.Errorf("%s: static/dynamic disagreement: %s", s.Pipeline, s.Verdict)
				}
				if s.SimSkipped {
					t.Errorf("%s: audit mode must always co-simulate", s.Pipeline)
				}
			}
		})
	}
}
