package trace

import (
	"sync"

	"configwall/internal/sim"
)

// BufferPool recycles timeline segment buffers across simulation runs.
// Traced sweeps record tens of thousands of segments per cell; without
// reuse every run grows a fresh append chain through several reallocations.
// The pool hands out zero-length slices that keep their previous capacity,
// so a steady-state traced run appends without allocating.
//
// Ownership rule: a buffer obtained from Get is owned by exactly one run at
// a time. Callers that publish a trace beyond the run (cached Results,
// encoded responses) must copy the segments out before Put — after Put the
// buffer may be handed to any concurrent run and overwritten.
type BufferPool struct {
	p sync.Pool
}

// Get returns an empty segment buffer, reusing a previously Put one (and
// its capacity) when available.
func (bp *BufferPool) Get() []sim.Segment {
	if v := bp.p.Get(); v != nil {
		return v.([]sim.Segment)
	}
	return nil
}

// Put truncates the buffer and recycles it. Putting nil is a no-op, so
// callers can unconditionally return whatever Get gave them.
func (bp *BufferPool) Put(buf []sim.Segment) {
	if buf == nil {
		return
	}
	bp.p.Put(buf[:0]) //nolint:staticcheck // slices are pointer-shaped; no boxing beyond the interface header
}

// Buffers is the shared default pool used by the experiment engine.
var Buffers BufferPool
