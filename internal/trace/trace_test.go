package trace_test

import (
	"strings"
	"testing"

	"configwall/internal/sim"
	"configwall/internal/trace"
)

func sampleSegments() []sim.Segment {
	return []sim.Segment{
		{Kind: sim.SegHostExec, Start: 0, End: 10},
		{Kind: sim.SegHostConfig, Start: 10, End: 20},
		{Kind: sim.SegAccelBusy, Start: 20, End: 50},
		{Kind: sim.SegHostStall, Start: 20, End: 50},
		{Kind: sim.SegHostExec, Start: 50, End: 60},
	}
}

func TestTimelineRendering(t *testing.T) {
	out := trace.Timeline(sampleSegments(), 0, 60, 60)
	if !strings.Contains(out, "host  |") || !strings.Contains(out, "accel |") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var host, acc string
	for _, l := range lines {
		if strings.HasPrefix(l, "host  |") {
			host = l
		}
		if strings.HasPrefix(l, "accel |") {
			acc = l
		}
	}
	if !strings.Contains(host, "E") || !strings.Contains(host, "C") {
		t.Errorf("host row missing activity: %s", host)
	}
	if !strings.Contains(acc, "#") {
		t.Errorf("accel row missing busy: %s", acc)
	}
	// The busy period occupies roughly the middle half of the plot.
	busyStart := strings.Index(acc, "#")
	if busyStart < 15 || busyStart > 30 {
		t.Errorf("busy starts at col %d, want ~20/60 of width", busyStart)
	}
}

func TestTimelineEmptyRanges(t *testing.T) {
	if out := trace.Timeline(nil, 10, 10, 50); out != "" {
		t.Error("empty range should render nothing")
	}
	if out := trace.Timeline(nil, 0, 100, 0); out != "" {
		t.Error("zero width should render nothing")
	}
}

func TestTimelineClipsToWindow(t *testing.T) {
	out := trace.Timeline(sampleSegments(), 15, 25, 10)
	if out == "" {
		t.Fatal("window render empty")
	}
	// Segments entirely outside the window must not appear: at 15..25 the
	// host exec segments (0..10 and 50..60) are invisible, so the host row
	// shows only configuration and idle.
	hostRow := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "host  |") {
			hostRow = l
		}
	}
	if strings.Contains(hostRow, "E") {
		t.Errorf("host row shows out-of-window segments: %s", hostRow)
	}
	if !strings.Contains(hostRow, "C") {
		t.Errorf("host row missing in-window config segment: %s", hostRow)
	}
}

func TestSummarize(t *testing.T) {
	s := trace.Summarize(sampleSegments())
	if s.HostExec != 20 {
		t.Errorf("HostExec = %d, want 20", s.HostExec)
	}
	if s.HostConfig != 10 {
		t.Errorf("HostConfig = %d, want 10", s.HostConfig)
	}
	if s.HostStall != 30 {
		t.Errorf("HostStall = %d, want 30", s.HostStall)
	}
	if s.AccelBusy != 30 {
		t.Errorf("AccelBusy = %d, want 30", s.AccelBusy)
	}
}

func TestOverlapCycles(t *testing.T) {
	segs := []sim.Segment{
		{Kind: sim.SegAccelBusy, Start: 0, End: 100},
		{Kind: sim.SegHostConfig, Start: 50, End: 80}, // 30 overlapped
		{Kind: sim.SegHostExec, Start: 90, End: 120},  // 10 overlapped
		{Kind: sim.SegHostStall, Start: 80, End: 90},  // stalls never count
	}
	if got := trace.OverlapCycles(segs); got != 40 {
		t.Errorf("OverlapCycles = %d, want 40", got)
	}
	if got := trace.OverlapCycles(nil); got != 0 {
		t.Errorf("OverlapCycles(nil) = %d, want 0", got)
	}
}
