package trace_test

import (
	"math/rand"
	"strings"
	"testing"

	"configwall/internal/sim"
	"configwall/internal/trace"
)

func sampleSegments() []sim.Segment {
	return []sim.Segment{
		{Kind: sim.SegHostExec, Start: 0, End: 10},
		{Kind: sim.SegHostConfig, Start: 10, End: 20},
		{Kind: sim.SegAccelBusy, Start: 20, End: 50},
		{Kind: sim.SegHostStall, Start: 20, End: 50},
		{Kind: sim.SegHostExec, Start: 50, End: 60},
	}
}

// randomSegmentStream builds a plausible recorder output: a host track of
// contiguous non-empty segments (with deliberate same-kind runs so
// coalescing has work to do) and an accelerator track of busy intervals,
// interleaved the way Machine.record emits them.
func randomSegmentStream(rng *rand.Rand) []sim.Segment {
	var segs []sim.Segment
	hostKinds := []sim.SegmentKind{sim.SegHostExec, sim.SegHostConfig, sim.SegHostStall}
	now := uint64(rng.Intn(5))
	kind := hostKinds[rng.Intn(len(hostKinds))]
	for i, n := 0, 5+rng.Intn(60); i < n; i++ {
		// Frequently keep the previous kind to create mergeable runs, and
		// occasionally leave a gap so not everything is contiguous.
		if rng.Intn(3) == 0 {
			kind = hostKinds[rng.Intn(len(hostKinds))]
		}
		if rng.Intn(8) == 0 {
			now += 1 + uint64(rng.Intn(7))
		}
		d := 1 + uint64(rng.Intn(9))
		segs = append(segs, sim.Segment{Kind: kind, Start: now, End: now + d})
		now += d
		if rng.Intn(6) == 0 {
			busyStart := now - uint64(rng.Intn(int(d)))
			segs = append(segs, sim.Segment{Kind: sim.SegAccelBusy, Start: busyStart, End: busyStart + 1 + uint64(rng.Intn(20))})
		}
	}
	return segs
}

// TestCoalescePreservesObservables is the property test for trace-segment
// coalescing: for random recorder-shaped streams, the coalesced stream
// must be no longer than the raw one and must produce byte-identical
// Summarize, OverlapCycles and Timeline output.
func TestCoalescePreservesObservables(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		raw := randomSegmentStream(rng)
		merged := trace.Coalesce(raw)
		if len(merged) > len(raw) {
			t.Fatalf("trial %d: coalesced stream grew: %d -> %d", trial, len(raw), len(merged))
		}
		// Coalesced runs must actually be merged: no two adjacent output
		// segments may be contiguous and same-kind.
		for i := 1; i < len(merged); i++ {
			if merged[i].Kind == merged[i-1].Kind && merged[i].Start == merged[i-1].End {
				t.Fatalf("trial %d: unmerged adjacent segments %+v %+v", trial, merged[i-1], merged[i])
			}
		}
		if a, b := trace.Summarize(raw), trace.Summarize(merged); a != b {
			t.Fatalf("trial %d: Summarize differs:\nraw:    %+v\nmerged: %+v", trial, a, b)
		}
		if a, b := trace.OverlapCycles(raw), trace.OverlapCycles(merged); a != b {
			t.Fatalf("trial %d: OverlapCycles differs: raw %d, merged %d", trial, a, b)
		}
		var hi uint64
		for _, s := range raw {
			if s.End > hi {
				hi = s.End
			}
		}
		for _, width := range []int{1, 17, 80} {
			if a, b := trace.Timeline(raw, 0, hi, width), trace.Timeline(merged, 0, hi, width); a != b {
				t.Fatalf("trial %d width %d: Timeline differs:\nraw:\n%s\nmerged:\n%s", trial, width, a, b)
			}
		}
	}
}

func TestCoalesceDropsEmptyAndMergesRuns(t *testing.T) {
	raw := []sim.Segment{
		{Kind: sim.SegHostExec, Start: 0, End: 4},
		{Kind: sim.SegHostExec, Start: 4, End: 4}, // empty: dropped
		{Kind: sim.SegHostExec, Start: 4, End: 9},
		{Kind: sim.SegHostConfig, Start: 9, End: 12},
		{Kind: sim.SegHostExec, Start: 12, End: 14}, // same kind, gap at 14
		{Kind: sim.SegHostExec, Start: 15, End: 16}, // not contiguous: kept
	}
	got := trace.Coalesce(raw)
	want := []sim.Segment{
		{Kind: sim.SegHostExec, Start: 0, End: 9},
		{Kind: sim.SegHostConfig, Start: 9, End: 12},
		{Kind: sim.SegHostExec, Start: 12, End: 14},
		{Kind: sim.SegHostExec, Start: 15, End: 16},
	}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coalesce[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	out := trace.Timeline(sampleSegments(), 0, 60, 60)
	if !strings.Contains(out, "host  |") || !strings.Contains(out, "accel |") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var host, acc string
	for _, l := range lines {
		if strings.HasPrefix(l, "host  |") {
			host = l
		}
		if strings.HasPrefix(l, "accel |") {
			acc = l
		}
	}
	if !strings.Contains(host, "E") || !strings.Contains(host, "C") {
		t.Errorf("host row missing activity: %s", host)
	}
	if !strings.Contains(acc, "#") {
		t.Errorf("accel row missing busy: %s", acc)
	}
	// The busy period occupies roughly the middle half of the plot.
	busyStart := strings.Index(acc, "#")
	if busyStart < 15 || busyStart > 30 {
		t.Errorf("busy starts at col %d, want ~20/60 of width", busyStart)
	}
}

func TestTimelineEmptyRanges(t *testing.T) {
	if out := trace.Timeline(nil, 10, 10, 50); out != "" {
		t.Error("empty range should render nothing")
	}
	if out := trace.Timeline(nil, 0, 100, 0); out != "" {
		t.Error("zero width should render nothing")
	}
}

func TestTimelineClipsToWindow(t *testing.T) {
	out := trace.Timeline(sampleSegments(), 15, 25, 10)
	if out == "" {
		t.Fatal("window render empty")
	}
	// Segments entirely outside the window must not appear: at 15..25 the
	// host exec segments (0..10 and 50..60) are invisible, so the host row
	// shows only configuration and idle.
	hostRow := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "host  |") {
			hostRow = l
		}
	}
	if strings.Contains(hostRow, "E") {
		t.Errorf("host row shows out-of-window segments: %s", hostRow)
	}
	if !strings.Contains(hostRow, "C") {
		t.Errorf("host row missing in-window config segment: %s", hostRow)
	}
}

func TestSummarize(t *testing.T) {
	s := trace.Summarize(sampleSegments())
	if s.HostExec != 20 {
		t.Errorf("HostExec = %d, want 20", s.HostExec)
	}
	if s.HostConfig != 10 {
		t.Errorf("HostConfig = %d, want 10", s.HostConfig)
	}
	if s.HostStall != 30 {
		t.Errorf("HostStall = %d, want 30", s.HostStall)
	}
	if s.AccelBusy != 30 {
		t.Errorf("AccelBusy = %d, want 30", s.AccelBusy)
	}
}

func TestOverlapCycles(t *testing.T) {
	segs := []sim.Segment{
		{Kind: sim.SegAccelBusy, Start: 0, End: 100},
		{Kind: sim.SegHostConfig, Start: 50, End: 80}, // 30 overlapped
		{Kind: sim.SegHostExec, Start: 90, End: 120},  // 10 overlapped
		{Kind: sim.SegHostStall, Start: 80, End: 90},  // stalls never count
	}
	if got := trace.OverlapCycles(segs); got != 40 {
		t.Errorf("OverlapCycles = %d, want 40", got)
	}
	if got := trace.OverlapCycles(nil); got != 0 {
		t.Errorf("OverlapCycles(nil) = %d, want 0", got)
	}
}

// overlapCyclesQuadratic is the replaced O(segments²) scan, kept as the
// reference oracle for the sweep implementation.
func overlapCyclesQuadratic(segs []sim.Segment) uint64 {
	var busy []sim.Segment
	for _, s := range segs {
		if s.Kind == sim.SegAccelBusy {
			busy = append(busy, s)
		}
	}
	var total uint64
	for _, s := range segs {
		if s.Kind != sim.SegHostExec && s.Kind != sim.SegHostConfig {
			continue
		}
		for _, b := range busy {
			lo, hi := s.Start, s.End
			if b.Start > lo {
				lo = b.Start
			}
			if b.End < hi {
				hi = b.End
			}
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// randomTimeline builds a machine-shaped random trace: host segments of
// mixed kinds walking forward in time, with non-overlapping accelerator
// busy intervals (the co-simulator's clock is monotonic and jobs
// serialize, so real traces never overlap busy segments).
func randomTimeline(rng *rand.Rand, n int) []sim.Segment {
	var segs []sim.Segment
	hostNow, accelNow := uint64(0), uint64(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // accelerator job
			start := accelNow + uint64(rng.Intn(20))
			end := start + 1 + uint64(rng.Intn(50))
			segs = append(segs, sim.Segment{Kind: sim.SegAccelBusy, Start: start, End: end})
			accelNow = end
		case 1:
			hostNow += uint64(rng.Intn(10))
			end := hostNow + 1 + uint64(rng.Intn(30))
			segs = append(segs, sim.Segment{Kind: sim.SegHostStall, Start: hostNow, End: end})
			hostNow = end
		default:
			kind := sim.SegHostExec
			if rng.Intn(2) == 0 {
				kind = sim.SegHostConfig
			}
			hostNow += uint64(rng.Intn(5))
			end := hostNow + 1 + uint64(rng.Intn(25))
			segs = append(segs, sim.Segment{Kind: kind, Start: hostNow, End: end})
			hostNow = end
		}
	}
	return segs
}

// TestOverlapCyclesMatchesQuadratic cross-checks the sorted sweep against
// the quadratic oracle on randomized machine-shaped timelines.
func TestOverlapCyclesMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		segs := randomTimeline(rng, 1+rng.Intn(120))
		want := overlapCyclesQuadratic(segs)
		if got := trace.OverlapCycles(segs); got != want {
			t.Fatalf("trial %d: OverlapCycles = %d, quadratic oracle = %d\nsegs: %+v", trial, got, want, segs)
		}
	}
}

// TestOverlapCyclesCoalescesOverlappingBusy: should a trace ever contain
// overlapping busy intervals, a hidden host cycle counts once (union
// semantics), not once per busy segment.
func TestOverlapCyclesCoalescesOverlappingBusy(t *testing.T) {
	segs := []sim.Segment{
		{Kind: sim.SegAccelBusy, Start: 0, End: 60},
		{Kind: sim.SegAccelBusy, Start: 40, End: 100}, // overlaps the first
		{Kind: sim.SegHostExec, Start: 30, End: 70},   // inside the union
	}
	if got := trace.OverlapCycles(segs); got != 40 {
		t.Errorf("OverlapCycles = %d, want 40 (union, not double-counted)", got)
	}
}

func BenchmarkOverlapCycles(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	segs := randomTimeline(rng, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.OverlapCycles(segs)
	}
}

func BenchmarkOverlapCyclesQuadraticReference(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	segs := randomTimeline(rng, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		overlapCyclesQuadratic(segs)
	}
}
