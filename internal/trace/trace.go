// Package trace renders co-simulator timelines as ASCII art in the style of
// the paper's Figures 2 and 7: one row for the host (execution,
// configuration, stalls) and one for the accelerator (busy, idle), making
// configuration overhead and overlap visually inspectable.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"configwall/internal/sim"
)

// Timeline renders the recorded segments between fromCycle and toCycle into
// width columns. Legend: host row E=execute C=configure .=stalled/idle;
// accelerator row #=busy .=idle.
func Timeline(segs []sim.Segment, fromCycle, toCycle uint64, width int) string {
	if toCycle <= fromCycle || width <= 0 {
		return ""
	}
	host := []byte(strings.Repeat(".", width))
	acc := []byte(strings.Repeat(".", width))
	// Column k covers the half-open time interval
	// [fromCycle + k*span/width, fromCycle + (k+1)*span/width); a segment
	// paints exactly the columns whose interval it intersects. The
	// all-integer form keeps the mapping exact (no float rounding) and
	// makes rendering invariant under segment coalescing: contiguous
	// same-kind segments paint the same columns merged or not, at every
	// width — including widths above the cycle span, where the previous
	// floor-based right edge left spurious idle gaps inside contiguous
	// activity.
	span := toCycle - fromCycle
	w := uint64(width)
	paint := func(row []byte, s sim.Segment, ch byte) {
		if s.End <= fromCycle || s.Start >= toCycle {
			return
		}
		a, b := s.Start, s.End
		if a < fromCycle {
			a = fromCycle
		}
		if b > toCycle {
			b = toCycle
		}
		lo := (a - fromCycle) * w / span
		hi := ((b-fromCycle)*w - 1) / span
		if hi > w-1 {
			hi = w - 1
		}
		for c := lo; c <= hi; c++ {
			row[c] = ch
		}
	}
	for _, s := range segs {
		switch s.Kind {
		case sim.SegHostExec:
			paint(host, s, 'E')
		case sim.SegHostConfig:
			paint(host, s, 'C')
		case sim.SegHostStall:
			paint(host, s, '.')
		case sim.SegAccelBusy:
			paint(acc, s, '#')
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles %d..%d\n", fromCycle, toCycle)
	fmt.Fprintf(&sb, "host  |%s|\n", host)
	fmt.Fprintf(&sb, "accel |%s|\n", acc)
	sb.WriteString("legend: E=host execute  C=host configure  .=idle/stall  #=accelerator busy\n")
	return sb.String()
}

// Coalesce merges adjacent same-kind contiguous segments and drops empty
// ones, returning a new slice. It is the offline form of the merging the
// simulator performs at record time (Machine.record): for any stream of
// non-empty segments — the only kind the recorder emits — Summarize,
// OverlapCycles and Timeline produce identical output for the raw and the
// coalesced stream (see the property tests), so a coalesced trace is a
// drop-in, smaller replacement for a raw one.
func Coalesce(segs []sim.Segment) []sim.Segment {
	var out []sim.Segment
	for _, s := range segs {
		if s.End <= s.Start {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Kind == s.Kind && out[n-1].End == s.Start {
			out[n-1].End = s.End
			continue
		}
		out = append(out, s)
	}
	return out
}

// Summary aggregates segment durations per kind.
type Summary struct {
	HostExec   uint64
	HostConfig uint64
	HostStall  uint64
	AccelBusy  uint64
}

// Summarize totals the recorded segments.
func Summarize(segs []sim.Segment) Summary {
	var s Summary
	for _, seg := range segs {
		d := seg.End - seg.Start
		switch seg.Kind {
		case sim.SegHostExec:
			s.HostExec += d
		case sim.SegHostConfig:
			s.HostConfig += d
		case sim.SegHostStall:
			s.HostStall += d
		case sim.SegAccelBusy:
			s.AccelBusy += d
		}
	}
	return s
}

// OverlapCycles estimates how many cycles of host activity were hidden
// behind accelerator execution: the overlap between host exec/config
// segments and the union of accelerator busy intervals.
//
// Instead of testing every host segment against every busy segment
// (quadratic in the trace length — painful on big-n timelines with tens of
// thousands of segments), the busy intervals are merged into a sorted
// disjoint set once, and each host segment binary-searches its first
// overlapping interval. Merged disjoint intervals have monotonic ends, so
// the search is sound and each host segment only walks intervals it
// actually overlaps.
func OverlapCycles(segs []sim.Segment) uint64 {
	busy := mergedBusyIntervals(segs)
	if len(busy) == 0 {
		return 0
	}
	var total uint64
	for _, s := range segs {
		if s.Kind != sim.SegHostExec && s.Kind != sim.SegHostConfig {
			continue
		}
		// First busy interval ending after the host segment starts.
		i := sort.Search(len(busy), func(i int) bool { return busy[i].End > s.Start })
		for ; i < len(busy) && busy[i].Start < s.End; i++ {
			lo, hi := max64(s.Start, busy[i].Start), min64(s.End, busy[i].End)
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// mergedBusyIntervals extracts the accelerator-busy segments as a sorted,
// disjoint interval set (overlapping or adjacent busy segments coalesce,
// so a cycle hidden behind two overlapping jobs still counts once).
func mergedBusyIntervals(segs []sim.Segment) []sim.Segment {
	var busy []sim.Segment
	for _, s := range segs {
		if s.Kind == sim.SegAccelBusy && s.End > s.Start {
			busy = append(busy, s)
		}
	}
	if len(busy) == 0 {
		return nil
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i].Start < busy[j].Start })
	merged := busy[:1]
	for _, b := range busy[1:] {
		last := &merged[len(merged)-1]
		if b.Start <= last.End {
			if b.End > last.End {
				last.End = b.End
			}
			continue
		}
		merged = append(merged, b)
	}
	return merged
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
