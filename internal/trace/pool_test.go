package trace_test

import (
	"testing"

	"configwall/internal/sim"
	"configwall/internal/trace"
)

// TestBufferPoolReuse pins the pool's reuse contract: a returned buffer
// comes back from Get with zero length (no stale segments from the previous
// run are visible) but with its capacity retained, so steady-state recording
// appends into existing storage instead of growing a fresh slice.
func TestBufferPoolReuse(t *testing.T) {
	var bp trace.BufferPool

	// A cold pool hands out nil — the recorder's append grows it naturally.
	if buf := bp.Get(); buf != nil {
		t.Fatalf("cold Get = %v, want nil", buf)
	}

	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so retry until a recycled buffer actually comes back.
	var got []sim.Segment
	capBefore := 0
	for i := 0; i < 100 && got == nil; i++ {
		buf := append([]sim.Segment(nil), sampleSegments()...)
		capBefore = cap(buf)
		bp.Put(buf)
		got = bp.Get()
	}
	if got == nil {
		t.Fatal("pool never recycled a buffer across 100 Put/Get cycles")
	}
	if len(got) != 0 {
		t.Fatalf("recycled buffer has %d visible segments, want 0 (cross-cell trace leakage)", len(got))
	}
	if cap(got) != capBefore {
		t.Errorf("recycled buffer capacity = %d, want %d (reset-not-reallocate)", cap(got), capBefore)
	}

	// The next run's segments must be exactly what it appends — nothing
	// from the previous owner bleeds through.
	got = append(got, sim.Segment{Kind: sim.SegAccelBusy, Start: 7, End: 9})
	if len(got) != 1 || got[0].Start != 7 || got[0].End != 9 {
		t.Errorf("recycled buffer contents wrong after append: %+v", got)
	}

	// Put(nil) must be a no-op, not poison the pool with a nil entry that
	// Get would then hand out as a "recycled" buffer.
	bp.Put(nil)
	if buf := bp.Get(); buf != nil && cap(buf) == 0 {
		t.Error("Put(nil) stored an empty buffer in the pool")
	}
}
