package tune

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Strategy is one pluggable configuration searcher. Search measures cells
// through the session until it is done or the budget runs out; it must
// treat ErrBudgetExhausted from Session.Measure as normal termination and
// draw randomness only from Session.Rand.
type Strategy interface {
	// Name is the strategy's registry key.
	Name() string
	// Search runs the search over the session's space.
	Search(ctx context.Context, s *Session) error
}

// strategies is the registry of built-in searchers, keyed by name.
var strategies = map[string]func() Strategy{
	"exhaustive": func() Strategy { return exhaustive{} },
	"random":     func() Strategy { return randomSearch{} },
	"halving":    func() Strategy { return halving{} },
	"flash":      func() Strategy { return flash{} },
}

// StrategyNames returns the registered strategy names, sorted.
func StrategyNames() []string {
	names := make([]string, 0, len(strategies))
	for n := range strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StrategyByName returns a fresh instance of the named strategy; the
// error for unknown names lists the valid ones.
func StrategyByName(name string) (Strategy, error) {
	mk, ok := strategies[name]
	if !ok {
		return nil, fmt.Errorf("unknown strategy %q (valid strategies: %s)", name, strings.Join(StrategyNames(), ", "))
	}
	return mk(), nil
}

// exhaustive measures every cell in space order — the ground-truth
// reference the campaign compares every other strategy against.
type exhaustive struct{}

func (exhaustive) Name() string { return "exhaustive" }

func (exhaustive) Search(ctx context.Context, s *Session) error {
	for i := range s.Space() {
		if _, err := s.Measure(ctx, i); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}
