package tune

// Evaluators are how strategies touch the measurement stack. The HTTP
// evaluator is the production path: every full-fidelity measurement goes
// through serve.Client's retry layer (429 Retry-After, transient faults
// and truncated streams handled there), and every surrogate screen is a
// fidelity=screen sweep, so N concurrent tuners against one daemon
// coalesce onto one simulation per distinct cell.

import (
	"context"
	"fmt"

	"configwall/internal/core"
	"configwall/internal/serve"
)

// Evaluator measures experiment cells for a search strategy.
type Evaluator interface {
	// Measure runs one cell at full fidelity (ground truth).
	Measure(ctx context.Context, e core.Experiment) (core.Result, error)
	// Screen returns analytic predictions for exps, in input order,
	// without simulating. It fails when no calibrated model is attached.
	Screen(ctx context.Context, exps []core.Experiment) ([]core.Result, error)
}

// ClientEvaluator measures through a cwserve daemon via the self-healing
// client layer.
type ClientEvaluator struct {
	// Client talks to the daemon. Required.
	Client *serve.Client
	// Retry is the retry/backoff policy for every request.
	Retry serve.RetryPolicy
	// Opts carries engine/trace/verify options; Fidelity is overridden
	// per call (full for Measure, screen for Screen).
	Opts core.RunOptions
}

// Measure runs one cell through /v1/run with retries.
func (ce *ClientEvaluator) Measure(ctx context.Context, e core.Experiment) (core.Result, error) {
	opts := ce.Opts
	opts.Fidelity = core.FidelityFull
	return ce.Client.RunWithRetry(ctx, e, opts, ce.Retry)
}

// Screen predicts every cell analytically. Cells are grouped by
// (target, workload); a group that forms a full pipelines × sizes grid is
// answered by one fidelity=screen /v1/sweep (with resume-on-truncation),
// and ragged groups fall back to per-cell screen-fidelity /v1/run calls.
func (ce *ClientEvaluator) Screen(ctx context.Context, exps []core.Experiment) ([]core.Result, error) {
	results := make([]core.Result, len(exps))
	filled := make([]bool, len(exps))

	type groupKey struct{ target, workload string }
	var keys []groupKey
	groups := make(map[groupKey][]int)
	for i, e := range exps {
		k := groupKey{e.Target, e.Workload}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}

	for _, k := range keys {
		idxs := groups[k]
		pipes, sizes, full := gridShape(exps, idxs)
		if !full {
			for _, i := range idxs {
				opts := ce.Opts
				opts.Fidelity = core.FidelityScreen
				res, err := ce.Client.RunWithRetry(ctx, exps[i], opts, ce.Retry)
				if err != nil {
					return nil, err
				}
				results[i] = res
				filled[i] = true
			}
			continue
		}

		byCell := make(map[core.Experiment]int, len(idxs))
		for _, i := range idxs {
			byCell[exps[i]] = i
		}
		rq := serve.SweepRequest{
			Targets:    []string{k.target},
			Workloads:  []string{k.workload},
			Pipelines:  pipes,
			Sizes:      sizes,
			Engine:     ce.Opts.Engine.String(),
			SkipVerify: ce.Opts.SkipVerify,
			Fidelity:   "screen",
		}
		_, err := ce.Client.SweepWithResume(ctx, rq, ce.Retry, func(ev serve.SweepEvent) error {
			if ev.Error != "" {
				return fmt.Errorf("screening %s: %s", ev.Experiment, ev.Error)
			}
			if ev.Experiment == nil || ev.Result == nil {
				return fmt.Errorf("screen sweep event without experiment/result")
			}
			if i, ok := byCell[*ev.Experiment]; ok {
				results[i] = *ev.Result
				filled[i] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	for i, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("screen sweep never answered cell %s", exps[i])
		}
	}
	return results, nil
}

// gridShape extracts the distinct pipelines and sizes of a cell group (in
// first-seen order) and reports whether the group is exactly their full
// cross product — the shape one sweep request can express.
func gridShape(exps []core.Experiment, idxs []int) (pipes []string, sizes []int, full bool) {
	seenPipe := make(map[string]bool)
	seenSize := make(map[int]bool)
	seenCell := make(map[core.Experiment]bool)
	for _, i := range idxs {
		e := exps[i]
		if p := e.Pipeline.String(); !seenPipe[p] {
			seenPipe[p] = true
			pipes = append(pipes, p)
		}
		if !seenSize[e.N] {
			seenSize[e.N] = true
			sizes = append(sizes, e.N)
		}
		seenCell[e] = true
	}
	return pipes, sizes, len(seenCell) == len(pipes)*len(sizes)
}

// RunnerEvaluator measures directly against an in-process core.Runner —
// the test path, and what an embedded tuner without a daemon would use.
type RunnerEvaluator struct {
	Runner *core.Runner
	Opts   core.RunOptions
}

// Measure runs one cell at full fidelity.
func (re *RunnerEvaluator) Measure(ctx context.Context, e core.Experiment) (core.Result, error) {
	opts := re.Opts
	opts.Fidelity = core.FidelityFull
	return re.Runner.Run(ctx, e, opts)
}

// Screen predicts every cell with the runner's analytic tier.
func (re *RunnerEvaluator) Screen(ctx context.Context, exps []core.Experiment) ([]core.Result, error) {
	return re.Runner.Screen(ctx, exps)
}
