package tune_test

// Integration tests: full campaigns against a real in-process cwserve
// daemon, with every measurement going over HTTP through the
// serve.Client retry layer — the production path of cmd/cwtune.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"configwall/internal/core"
	"configwall/internal/serve"
	"configwall/internal/tune"
)

// sizeRankPredictor is a stand-in analytic tier for integration tests:
// instant Analytic results whose predicted ops/cycle grows with N, so
// flash's screen sweep has a surrogate without a boot-time calibration.
type sizeRankPredictor struct{}

func (sizeRankPredictor) Predict(e core.Experiment) (core.Result, error) {
	res := core.Result{Target: e.Target, Workload: e.Workload, Pipeline: e.Pipeline, N: e.N, Analytic: true}
	res.Cycles = 1000
	res.AccelOps = uint64(e.N)
	if e.Pipeline == core.AllOptimizations {
		res.AccelOps *= 2
	}
	return res, nil
}

// newDaemon boots a serve.Server over a fresh runner on an httptest
// listener and returns the runner, the base URL and a client.
func newDaemon(t *testing.T, pred core.Predictor) (*core.Runner, string, *serve.Client) {
	t.Helper()
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 4, Predictor: pred})
	sv, err := serve.New(serve.Options{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	t.Cleanup(func() { ts.Close(); sv.Close() })
	return runner, ts.URL, serve.NewClient(ts.URL)
}

// discoverSpace builds the small opengemm/matmul space from the daemon's
// own registry response, like cwtune does.
func discoverSpace(t *testing.T, c *serve.Client, maxSize int, seed int64) tune.Space {
	t.Helper()
	info, err := c.Registry(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := tune.SpaceFromRegistry(info, tune.Filters{
		Targets:   []string{"opengemm"},
		Workloads: []string{core.WorkloadMatmul},
		MaxSize:   maxSize,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestCampaignAgainstDaemonDeterministic: a full campaign (all three
// strategies, validation on) over a live daemon must render byte-identical
// reports across reruns with the same seed, with flash's screening done
// analytically (no extra simulations).
func TestCampaignAgainstDaemonDeterministic(t *testing.T) {
	runner, _, c := newDaemon(t, sizeRankPredictor{})
	space := discoverSpace(t, c, 32, 1)
	if len(space.Cells) == 0 || len(space.Holdout) == 0 {
		t.Fatalf("space = %d cells, %d holdout; want both non-empty", len(space.Cells), len(space.Holdout))
	}

	campaign := func() string {
		rep, err := tune.Run(context.Background(), tune.Config{
			Space:      space,
			Eval:       &tune.ClientEvaluator{Client: c, Retry: serve.RetryPolicy{Seed: 1}},
			Strategies: []string{"random", "halving", "flash"},
			Budget:     5,
			Seed:       1,
			Validate:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	rep1 := campaign()
	rep2 := campaign()
	if rep1 != rep2 {
		t.Errorf("same-seed campaign reports differ:\n--- first\n%s\n--- second\n%s", rep1, rep2)
	}
	for _, want := range []string{"cwtune campaign:", "exhaustive best:", "sims-to-best", "acceptance: flash", "validation (held-out sizes"} {
		if !strings.Contains(rep1, want) {
			t.Errorf("report lacks %q:\n%s", want, rep1)
		}
	}

	st := runner.Snapshot()
	if st.Predictions == 0 {
		t.Errorf("flash never hit the analytic tier (predictions = 0)")
	}
	// Everything simulated at most once: the searchable cells plus
	// whatever holdout cells validation touched.
	if max := uint64(len(space.Cells) + len(space.Holdout)); st.Runs > max {
		t.Errorf("daemon simulated %d cells, space only has %d", st.Runs, max)
	}
}

// TestFlashNeedsAnalyticTier: a screen sweep against a daemon without a
// predictor must fail the flash strategy rather than silently degrade.
func TestFlashNeedsAnalyticTier(t *testing.T) {
	_, _, c := newDaemon(t, nil)
	space := discoverSpace(t, c, 32, 1)
	info, err := c.Registry(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Analytic {
		t.Fatal("daemon without predictor advertises the analytic tier")
	}
	_, err = tune.Run(context.Background(), tune.Config{
		Space:      space,
		Eval:       &tune.ClientEvaluator{Client: c, Retry: serve.RetryPolicy{Seed: 1}},
		Strategies: []string{"flash"},
		Budget:     3,
		Seed:       1,
	})
	if err == nil {
		t.Fatal("flash succeeded against a daemon with no analytic tier")
	}
}
