package tune

import (
	"context"
	"errors"
)

// randomSearch measures cells in a seeded uniform-random permutation
// until the budget runs out — the standard no-information baseline every
// informed strategy has to beat on sims-to-best-config.
type randomSearch struct{}

func (randomSearch) Name() string { return "random" }

func (randomSearch) Search(ctx context.Context, s *Session) error {
	for _, i := range s.Rand().Perm(len(s.Space())) {
		if _, err := s.Measure(ctx, i); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}
