package tune_test

// Unit tests for the search subsystem, against a stub evaluator with
// synthetic (and separately controllable) truth and surrogate surfaces —
// strategy mechanics are checked without a simulator in the loop.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"configwall/internal/core"
	"configwall/internal/serve"
	"configwall/internal/tune"
)

// stubEval is a synthetic Evaluator: truth gives the measured ops (at a
// fixed 1000 cycles, so ops/cycle ordering follows it), pred the
// surrogate's predicted ops. cycles overrides per-cell runtime.
type stubEval struct {
	truth    func(e core.Experiment) uint64
	pred     func(e core.Experiment) uint64
	cycles   func(e core.Experiment) uint64
	measures int
	screens  int
}

func (s *stubEval) result(e core.Experiment, ops uint64, analytic bool) core.Result {
	res := core.Result{Target: e.Target, Workload: e.Workload, Pipeline: e.Pipeline, N: e.N, Analytic: analytic}
	res.Cycles = 1000
	if s.cycles != nil {
		res.Cycles = s.cycles(e)
	}
	res.AccelOps = ops * res.Cycles / 1000
	return res
}

func (s *stubEval) Measure(_ context.Context, e core.Experiment) (core.Result, error) {
	s.measures++
	return s.result(e, s.truth(e), false), nil
}

func (s *stubEval) Screen(_ context.Context, exps []core.Experiment) ([]core.Result, error) {
	s.screens++
	out := make([]core.Result, len(exps))
	for i, e := range exps {
		pred := s.truth
		if s.pred != nil {
			pred = s.pred
		}
		out[i] = s.result(e, pred(e), true)
	}
	return out, nil
}

// gridSpace builds a deterministic cross-product space.
func gridSpace(pipes []core.Pipeline, sizes []int) []core.Experiment {
	var cells []core.Experiment
	for _, p := range pipes {
		for _, n := range sizes {
			cells = append(cells, core.Experiment{Target: "opengemm", Workload: "matmul", Pipeline: p, N: n})
		}
	}
	return cells
}

func TestSessionBudgetAndMemo(t *testing.T) {
	eval := &stubEval{truth: func(e core.Experiment) uint64 { return uint64(e.N) }}
	space := gridSpace([]core.Pipeline{core.Baseline}, []int{8, 16, 24, 32, 48, 64})
	s := tune.NewSession(space, eval, 3, 1)

	for _, i := range []int{0, 1, 0, 2} { // the repeated 0 must be free
		if _, err := s.Measure(context.Background(), i); err != nil {
			t.Fatalf("Measure(%d): %v", i, err)
		}
	}
	if eval.measures != 3 || s.Sims() != 3 {
		t.Errorf("measures = %d, Sims = %d, want 3 and 3", eval.measures, s.Sims())
	}
	if _, err := s.Measure(context.Background(), 3); !errors.Is(err, tune.ErrBudgetExhausted) {
		t.Errorf("over-budget Measure err = %v, want ErrBudgetExhausted", err)
	}
	if _, err := s.Measure(context.Background(), 1); err != nil {
		t.Errorf("memoized re-measure after exhaustion failed: %v", err)
	}
	if i, res, ok := s.Best(); !ok || space[i].N != 24 || res.N != 24 {
		t.Errorf("Best = (%d, n=%d, %v), want the n=24 cell", i, res.N, ok)
	}
}

func TestStrategyByNameUnknownListsValidNames(t *testing.T) {
	_, err := tune.StrategyByName("gradient")
	if err == nil {
		t.Fatal("StrategyByName accepted an unknown name")
	}
	for _, name := range tune.StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
	want := []string{"exhaustive", "flash", "halving", "random"}
	if got := tune.StrategyNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("StrategyNames() = %v, want %v", got, want)
	}
}

func TestRandomSearchSeedDeterminism(t *testing.T) {
	space := gridSpace(core.Pipelines, []int{8, 16, 24, 32})
	order := func(seed int64) []int {
		eval := &stubEval{truth: func(e core.Experiment) uint64 { return uint64(e.N) }}
		s := tune.NewSession(space, eval, 6, seed)
		strat, err := tune.StrategyByName("random")
		if err != nil {
			t.Fatal(err)
		}
		if err := strat.Search(context.Background(), s); err != nil {
			t.Fatal(err)
		}
		return append([]int(nil), s.Order()...)
	}
	a, b := order(7), order(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed gave different orders: %v vs %v", a, b)
	}
	if c := order(8); reflect.DeepEqual(a, c) {
		t.Errorf("seeds 7 and 8 gave the same order %v", a)
	}
	if len(a) != 6 {
		t.Errorf("random measured %d cells, want the budget of 6", len(a))
	}
}

// TestFlashMeasuresInPredictedOrder: flash must spend its budget strictly
// in surrogate-rank order (descending predicted ops/cycle, ties to the
// lower index) and never exceed the budget.
func TestFlashMeasuresInPredictedOrder(t *testing.T) {
	space := gridSpace([]core.Pipeline{core.Baseline}, []int{8, 16, 24, 32, 48, 64})
	// Surrogate ranks by N descending: 64, 48, 32, ...
	eval := &stubEval{
		truth: func(e core.Experiment) uint64 { return 1 },
		pred:  func(e core.Experiment) uint64 { return uint64(e.N) },
	}
	s := tune.NewSession(space, eval, 3, 1)
	strat, err := tune.StrategyByName("flash")
	if err != nil {
		t.Fatal(err)
	}
	if err := strat.Search(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	want := []int{5, 4, 3} // indices of n=64, 48, 32
	if !reflect.DeepEqual(s.Order(), want) {
		t.Errorf("flash order = %v, want %v", s.Order(), want)
	}
	if eval.screens != 1 {
		t.Errorf("flash screened %d times, want 1", eval.screens)
	}
}

// TestHalvingRuntimeCapEliminates: a knob slower than capFactor × the
// rung's fastest run must be eliminated at the first rung and never
// measured again.
func TestHalvingRuntimeCapEliminates(t *testing.T) {
	sizes := []int{8, 16, 32}
	space := gridSpace([]core.Pipeline{core.Baseline, core.AllOptimizations}, sizes)
	eval := &stubEval{
		truth: func(e core.Experiment) uint64 { return uint64(e.N) },
		cycles: func(e core.Experiment) uint64 {
			if e.Pipeline == core.Baseline {
				return 100000 // 100× the optimized runtime: far over the cap
			}
			return 1000
		},
	}
	s := tune.NewSession(space, eval, 0, 1)
	strat, err := tune.StrategyByName("halving")
	if err != nil {
		t.Fatal(err)
	}
	if err := strat.Search(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	// The slow baseline knob is measured once (rung n=8) and then capped;
	// its larger sizes must stay unmeasured.
	for i, e := range space {
		_, measured := s.Result(i)
		slow := e.Pipeline == core.Baseline
		if slow && e.N > 8 && measured {
			t.Errorf("capped knob still measured at %s", e)
		}
		if !slow && !measured {
			t.Errorf("surviving knob never measured at %s", e)
		}
	}
}

// TestSpaceFromRegistryHoldout: the holdout split must be seeded, keep
// the endpoint sizes searchable, and partition the full grid exactly.
func TestSpaceFromRegistryHoldout(t *testing.T) {
	info := serve.RegistryInfo{
		Targets:   []string{"opengemm"},
		Workloads: []string{"matmul"},
		Pipelines: []string{"base", "all"},
		Sizes: map[string]map[string][]int{
			"matmul": {"opengemm": {8, 16, 24, 32, 48, 64, 96, 128}},
		},
	}
	sp, err := tune.SpaceFromRegistry(info, tune.Filters{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if total := len(sp.Cells) + len(sp.Holdout); total != 16 {
		t.Fatalf("space has %d cells, want 16", total)
	}
	if len(sp.HoldoutSizes) != 2 { // 8 distinct sizes / 4
		t.Fatalf("HoldoutSizes = %v, want 2 sizes", sp.HoldoutSizes)
	}
	held := make(map[int]bool)
	for _, n := range sp.HoldoutSizes {
		if n == 8 || n == 128 {
			t.Errorf("endpoint size %d held out", n)
		}
		held[n] = true
	}
	for _, e := range sp.Cells {
		if held[e.N] {
			t.Errorf("held-out size %d leaked into the searchable cells (%s)", e.N, e)
		}
	}
	for _, e := range sp.Holdout {
		if !held[e.N] {
			t.Errorf("holdout cell %s has a searchable size", e)
		}
	}

	sp2, err := tune.SpaceFromRegistry(info, tune.Filters{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, sp2) {
		t.Error("same seed built different spaces")
	}
}

// TestCampaignDeterministicReport: with a surrogate that matches the
// truth ordering, flash must reach the exhaustive best in fewer sims than
// random at equal budget, and the rendered report must be byte-identical
// across reruns.
func TestCampaignDeterministicReport(t *testing.T) {
	space := tune.Space{
		Cells: gridSpace([]core.Pipeline{core.Baseline, core.AllOptimizations}, []int{8, 16, 24, 32, 48, 64}),
	}
	truth := func(e core.Experiment) uint64 {
		ops := uint64(e.N)
		if e.Pipeline == core.AllOptimizations {
			ops *= 3
		}
		return ops
	}
	run := func() (*tune.Report, *stubEval) {
		eval := &stubEval{truth: truth}
		rep, err := tune.Run(context.Background(), tune.Config{
			Space:      space,
			Eval:       eval,
			Strategies: []string{"random", "flash"},
			Budget:     4,
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, eval
	}
	rep1, _ := run()
	rep2, _ := run()
	if rep1.String() != rep2.String() {
		t.Errorf("same-seed reports differ:\n%s\nvs\n%s", rep1, rep2)
	}

	ex := rep1.Outcomes[0]
	if ex.Strategy != "exhaustive" || ex.Sims != len(space.Cells) || !ex.FoundBest {
		t.Fatalf("exhaustive reference wrong: %+v", ex)
	}
	if ex.BestCell.N != 64 || ex.BestCell.Pipeline != core.AllOptimizations {
		t.Errorf("exhaustive best = %s, want all/64", ex.BestCell)
	}
	var fl, rd *tune.Outcome
	for i := range rep1.Outcomes {
		switch rep1.Outcomes[i].Strategy {
		case "flash":
			fl = &rep1.Outcomes[i]
		case "random":
			rd = &rep1.Outcomes[i]
		}
	}
	if fl == nil || rd == nil {
		t.Fatal("missing flash/random outcomes")
	}
	if fl.SimsToBest != 1 {
		t.Errorf("flash sims-to-best = %d, want 1 (perfect surrogate)", fl.SimsToBest)
	}
	if rd.FoundBest && rd.SimsToBest <= fl.SimsToBest {
		t.Errorf("random (%d) beat flash (%d) on sims-to-best", rd.SimsToBest, fl.SimsToBest)
	}
	if !strings.Contains(rep1.String(), "strictly fewer sims than random: yes") {
		t.Errorf("report lacks the acceptance verdict:\n%s", rep1)
	}
}

// TestCampaignValidation: winners must be validated on the held-out
// cells, memoized campaign-wide, without counting against any budget.
func TestCampaignValidation(t *testing.T) {
	all := gridSpace([]core.Pipeline{core.Baseline, core.AllOptimizations}, []int{8, 16, 24, 32})
	space := tune.Space{HoldoutSizes: []int{16}}
	for _, e := range all {
		if e.N == 16 {
			space.Holdout = append(space.Holdout, e)
		} else {
			space.Cells = append(space.Cells, e)
		}
	}
	eval := &stubEval{truth: func(e core.Experiment) uint64 { return uint64(e.N) }}
	rep, err := tune.Run(context.Background(), tune.Config{
		Space:      space,
		Eval:       eval,
		Strategies: []string{"random"},
		Seed:       1,
		Validate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.ValidationCells != 1 {
			t.Errorf("%s validated %d cells, want 1 (its knob's held-out size)", o.Strategy, o.ValidationCells)
		}
		if o.ValidationGeomean <= 0 {
			t.Errorf("%s validation geomean = %v", o.Strategy, o.ValidationGeomean)
		}
	}
	// Exhaustive + random both fully cover the 6 searchable cells
	// (memoized per session, so 12 measures), plus exactly one validation
	// measure per distinct winner knob.
	winners := make(map[core.Pipeline]bool)
	for _, o := range rep.Outcomes {
		winners[o.BestCell.Pipeline] = true
	}
	want := 2*len(space.Cells) + len(winners)
	if eval.measures != want {
		t.Errorf("eval measured %d times, want %d", eval.measures, want)
	}
}
