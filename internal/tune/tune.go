// Package tune is the configuration-search subsystem: pluggable search
// strategies over the (target × workload × pipeline × size) experiment
// space, closing the loop the serving stack was built for (DESIGN.md §12).
//
// The pieces:
//
//   - Space (space.go) — the search space, discovered from a daemon's
//     /v1/registry response rather than hardcoded, with a seeded held-out
//     validation split in the Eggensperger et al. style.
//   - Evaluator (evaluator.go) — how a strategy measures a cell: over HTTP
//     through the serve.Client retry/resume layer, or in-process against a
//     core.Runner in tests.
//   - Session (this file) — the budget ledger between a strategy and its
//     evaluator: memoizes measurements, counts distinct simulations
//     against the budget, and tracks the incumbent best cell.
//   - Strategy (strategy.go, random.go, halving.go, flash.go) — the
//     pluggable searchers.
//   - Campaign (campaign.go) — runs strategies under equal budgets against
//     an exhaustive-sweep ground truth and renders the deterministic
//     comparison report.
//
// Determinism discipline: everything a strategy does is a pure function of
// (space, seed, budget) — randomness comes only from the session's seeded
// generator, measurement results are deterministic simulations, and
// reports never include wall-clock times (those go to stderr) — so a
// campaign report is byte-identical across reruns with the same seed.
package tune

import (
	"context"
	"errors"
	"math/rand"

	"configwall/internal/core"
)

// ErrBudgetExhausted is returned by Session.Measure once the strategy has
// spent its full simulation budget on distinct cells. Strategies treat it
// as normal termination.
var ErrBudgetExhausted = errors.New("tune: simulation budget exhausted")

// Session mediates one strategy's search over one space: it memoizes
// measurements (re-measuring a cell is free, mirroring the daemon's cache
// semantics), charges each distinct measured cell against the budget, and
// tracks the best cell observed so far by measured ops/cycle.
type Session struct {
	space  []core.Experiment
	eval   Evaluator
	budget int
	rng    *rand.Rand

	measured map[int]core.Result
	order    []int // distinct measured cell indices, in measurement order

	bestIdx int
	hasBest bool
}

// NewSession builds a session over space with the given per-strategy
// budget of distinct measured cells; budget <= 0 means the whole space.
// The seed drives every random choice the strategy makes.
func NewSession(space []core.Experiment, eval Evaluator, budget int, seed int64) *Session {
	if budget <= 0 || budget > len(space) {
		budget = len(space)
	}
	return &Session{
		space:    space,
		eval:     eval,
		budget:   budget,
		rng:      rand.New(rand.NewSource(seed)),
		measured: make(map[int]core.Result),
	}
}

// Space returns the search cells. Strategies address cells by index into
// this slice and must not mutate it.
func (s *Session) Space() []core.Experiment { return s.space }

// Rand returns the session's seeded generator — the only randomness
// source a strategy may use, so equal seeds replay equal searches.
func (s *Session) Rand() *rand.Rand { return s.rng }

// Budget returns the distinct-cell simulation budget.
func (s *Session) Budget() int { return s.budget }

// Sims returns how many distinct cells have been measured.
func (s *Session) Sims() int { return len(s.order) }

// Remaining returns how much budget is left.
func (s *Session) Remaining() int { return s.budget - len(s.order) }

// Order returns the distinct measured cell indices in measurement order —
// the sequence sims-to-best-config accounting walks.
func (s *Session) Order() []int { return s.order }

// Result returns the memoized measurement for cell i, if it was measured.
func (s *Session) Result(i int) (core.Result, bool) {
	res, ok := s.measured[i]
	return res, ok
}

// Best returns the incumbent best measured cell (index and result). The
// incumbent only changes on strictly better ops/cycle, so ties go to the
// earlier measurement.
func (s *Session) Best() (int, core.Result, bool) {
	if !s.hasBest {
		return 0, core.Result{}, false
	}
	return s.bestIdx, s.measured[s.bestIdx], true
}

// Measure measures cell i at full fidelity. A cell already measured in
// this session is served from the memo for free; a fresh cell is charged
// against the budget, and once the budget is spent Measure returns
// ErrBudgetExhausted without evaluating.
func (s *Session) Measure(ctx context.Context, i int) (core.Result, error) {
	if res, ok := s.measured[i]; ok {
		return res, nil
	}
	if len(s.order) >= s.budget {
		return core.Result{}, ErrBudgetExhausted
	}
	res, err := s.eval.Measure(ctx, s.space[i])
	if err != nil {
		return core.Result{}, err
	}
	s.measured[i] = res
	s.order = append(s.order, i)
	if !s.hasBest || res.OpsPerCycle() > s.measured[s.bestIdx].OpsPerCycle() {
		s.bestIdx = i
		s.hasBest = true
	}
	return res, nil
}

// Screen returns surrogate predictions for the whole space, in space
// order, at zero simulation cost. It requires an evaluator backed by a
// calibrated analytic model (FLASH's surrogate).
func (s *Session) Screen(ctx context.Context) ([]core.Result, error) {
	return s.eval.Screen(ctx, s.space)
}
