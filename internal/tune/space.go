package tune

// Search-space discovery: the space is built from a daemon's /v1/registry
// response — registered names, server caps and per-(workload, target)
// feasible size grids — never hardcoded, so a tuner pointed at any
// cwserve (including one with externally registered targets) searches
// exactly what that daemon can measure.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"configwall/internal/core"
	"configwall/internal/serve"
)

// Filters restricts a discovered search space.
type Filters struct {
	// Targets/Workloads/Pipelines keep only the named entries (empty
	// keeps everything the registry reports). Unknown names are errors
	// listing the valid ones.
	Targets   []string
	Workloads []string
	Pipelines []string
	// MaxSize drops cells with sweep size above it; 0 keeps all.
	MaxSize int
}

// Space is one search space: the cells strategies may measure, plus the
// held-out validation cells they must never see (Eggensperger et al.:
// search and validation must not share cells).
type Space struct {
	// Cells is the searchable space, in deterministic
	// target → workload → pipeline → size order.
	Cells []core.Experiment
	// Holdout is the held-out validation set.
	Holdout []core.Experiment
	// HoldoutSizes lists the held-out sweep sizes, ascending.
	HoldoutSizes []int
}

// SpaceFromRegistry expands a registry response into a search space:
// the cross product of the (filtered) targets, workloads and pipelines
// with each (workload, target) pair's feasible sizes, minus the seeded
// held-out validation split. The holdout draws ~a quarter of the distinct
// sizes from the interior of the grid (the endpoint sizes always stay
// searchable) using only the seed, so equal seeds build equal spaces.
func SpaceFromRegistry(info serve.RegistryInfo, f Filters, seed int64) (Space, error) {
	targets, err := filterNames("target", f.Targets, info.Targets)
	if err != nil {
		return Space{}, err
	}
	workloads, err := filterNames("workload", f.Workloads, info.Workloads)
	if err != nil {
		return Space{}, err
	}
	pipeNames, err := filterNames("pipeline", f.Pipelines, info.Pipelines)
	if err != nil {
		return Space{}, err
	}
	pipes := make([]core.Pipeline, len(pipeNames))
	for i, name := range pipeNames {
		if pipes[i], err = core.PipelineByName(name); err != nil {
			return Space{}, err
		}
	}

	var all []core.Experiment
	for _, t := range targets {
		for _, w := range workloads {
			sizes := info.Sizes[w][t]
			for _, p := range pipes {
				for _, n := range sizes {
					if f.MaxSize > 0 && n > f.MaxSize {
						continue
					}
					all = append(all, core.Experiment{Target: t, Workload: w, Pipeline: p, N: n})
				}
			}
		}
	}
	if len(all) == 0 {
		return Space{}, fmt.Errorf("empty search space: no feasible (target, workload, size) cells after filtering")
	}

	held := holdoutSizes(all, seed)
	heldSet := make(map[int]bool, len(held))
	for _, n := range held {
		heldSet[n] = true
	}
	sp := Space{HoldoutSizes: held}
	for _, e := range all {
		if heldSet[e.N] {
			sp.Holdout = append(sp.Holdout, e)
		} else {
			sp.Cells = append(sp.Cells, e)
		}
	}
	return sp, nil
}

// holdoutSizes picks the held-out sweep sizes: ~a quarter of the distinct
// sizes, seeded, interior-only. Fewer than three distinct sizes means no
// holdout — there is no interior to draw from.
func holdoutSizes(cells []core.Experiment, seed int64) []int {
	seen := make(map[int]bool)
	var distinct []int
	for _, e := range cells {
		if !seen[e.N] {
			seen[e.N] = true
			distinct = append(distinct, e.N)
		}
	}
	sort.Ints(distinct)
	if len(distinct) < 3 {
		return nil
	}
	interior := distinct[1 : len(distinct)-1]
	h := len(distinct) / 4
	if h < 1 {
		h = 1
	}
	if h > len(interior) {
		h = len(interior)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(interior))
	held := make([]int, h)
	for i := range held {
		held[i] = interior[perm[i]]
	}
	sort.Ints(held)
	return held
}

// filterNames resolves a name filter against the registry's valid list:
// empty keeps everything, duplicates collapse, and an unknown name fails
// fast listing every valid one (the cwsim -engine / cwopt -p convention).
func filterNames(kind string, want, valid []string) ([]string, error) {
	if len(want) == 0 {
		return valid, nil
	}
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	seen := make(map[string]bool, len(want))
	var out []string
	for _, w := range want {
		if !ok[w] {
			return nil, fmt.Errorf("unknown %s %q (valid %ss: %s)", kind, w, kind, strings.Join(valid, ", "))
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out, nil
}
