package tune_test

// Coalescing under concurrency: N tuner workers hammering one daemon
// with identical campaigns must cost exactly one simulation per distinct
// cell — the singleflight + memoization stack absorbs the overlap. Run
// with -race this also exercises the whole client/server path for data
// races.

import (
	"context"
	"sync"
	"testing"

	"configwall/internal/serve"
	"configwall/internal/tune"
)

func TestConcurrentCampaignsCoalesce(t *testing.T) {
	runner, url, c := newDaemon(t, nil)
	space := discoverSpace(t, c, 24, 1)
	if len(space.Cells) == 0 {
		t.Fatal("empty space")
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker is its own cwtune: own client, own retry
			// stream, identical campaign over identical cells.
			client := serve.NewClient(url)
			_, err := tune.Run(context.Background(), tune.Config{
				Space:      space,
				Eval:       &tune.ClientEvaluator{Client: client, Retry: serve.RetryPolicy{Seed: int64(w)}},
				Strategies: []string{"random", "halving"},
				Seed:       1,
				Validate:   false,
			})
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Zero duplicate simulations: every distinct cell ran exactly once no
	// matter how many workers requested it. (The exhaustive reference in
	// each campaign covers the whole searchable space, so the distinct
	// cell count is exactly the space size.)
	if st := runner.Snapshot(); st.Runs != uint64(len(space.Cells)) {
		t.Errorf("daemon simulated %d cells for %d workers over %d distinct cells — duplicates slipped through coalescing",
			st.Runs, workers, len(space.Cells))
	}
}
