package tune

// A campaign is the methodology wrapper around the strategies: run an
// exhaustive sweep of the searchable space as ground truth, run every
// requested strategy under an equal simulation budget, count each one's
// sims-to-best-config against the exhaustive optimum, and validate the
// winners on the held-out cells the search never saw. The rendered report
// is a pure function of (space, seed, budget, measured results): wall
// clock is kept out of it (WallSummary carries it to stderr), so a rerun
// with equal inputs is byte-identical.

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"

	"configwall/internal/core"
)

// Config configures one campaign.
type Config struct {
	// Space is the search space (SpaceFromRegistry, or hand-built).
	Space Space
	// Eval measures cells for every strategy.
	Eval Evaluator
	// Strategies names the searchers to compare; empty selects
	// random, halving and flash.
	Strategies []string
	// Budget is the per-strategy distinct-cell simulation budget;
	// <= 0 means the full searchable space.
	Budget int
	// Seed drives every random choice a strategy makes; each strategy
	// derives its own stream from it, so reordering Strategies does not
	// change any individual search.
	Seed int64
	// Validate measures every strategy winner at the held-out sizes.
	Validate bool
}

// Outcome is one strategy's campaign result.
type Outcome struct {
	Strategy string
	// Sims is how many distinct cells the strategy measured.
	Sims int
	// SimsToBest is the 1-based position in the measurement sequence at
	// which the strategy first reached the exhaustive-best ops/cycle;
	// 0 if it never did.
	SimsToBest int
	// BestCell/Best are the strategy's incumbent winner.
	BestCell core.Experiment
	Best     core.Result
	// FoundBest reports whether the strategy reached the exhaustive
	// optimum within its budget.
	FoundBest bool
	// Wall is the strategy's wall-clock search time; reported only via
	// WallSummary (stderr), never in the deterministic report body.
	Wall time.Duration
	// ValidationCells/ValidationGeomean are the held-out check: the
	// winner's (target, workload, pipeline) knob measured at every
	// feasible held-out size, summarized as geomean ops/cycle.
	ValidationCells   int
	ValidationGeomean float64
}

// Report is a finished campaign.
type Report struct {
	Seed   int64
	Budget int
	Space  Space
	// BestPerf is the exhaustive optimum's ops/cycle.
	BestPerf float64
	// Outcomes holds the exhaustive reference first, then the requested
	// strategies in request order.
	Outcomes []Outcome
}

// Run executes the campaign: exhaustive ground truth first, then every
// requested strategy on a fresh session with an equal budget, then the
// held-out validation of each winner. Validation measurements are
// memoized campaign-wide and never count against any strategy's budget.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Space.Cells) == 0 {
		return nil, fmt.Errorf("tune: empty search space")
	}
	names := cfg.Strategies
	if len(names) == 0 {
		names = []string{"random", "halving", "flash"}
	}
	budget := cfg.Budget
	if budget <= 0 || budget > len(cfg.Space.Cells) {
		budget = len(cfg.Space.Cells)
	}
	rep := &Report{Seed: cfg.Seed, Budget: budget, Space: cfg.Space}

	// Ground truth: exhaustively measure the whole searchable space.
	exSess, exWall, err := runStrategy(ctx, "exhaustive", cfg, len(cfg.Space.Cells))
	if err != nil {
		return nil, err
	}
	_, bestRes, ok := exSess.Best()
	if !ok {
		return nil, fmt.Errorf("tune: exhaustive sweep measured nothing")
	}
	rep.BestPerf = bestRes.OpsPerCycle()
	rep.Outcomes = append(rep.Outcomes, outcomeOf("exhaustive", exSess, exWall, rep.BestPerf))

	for _, name := range names {
		sess, wall, err := runStrategy(ctx, name, cfg, budget)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", name, err)
		}
		rep.Outcomes = append(rep.Outcomes, outcomeOf(name, sess, wall, rep.BestPerf))
	}

	if cfg.Validate && len(cfg.Space.Holdout) > 0 {
		memo := make(map[core.Experiment]core.Result)
		for i := range rep.Outcomes {
			o := &rep.Outcomes[i]
			cells, geomean, err := validateWinner(ctx, cfg.Eval, cfg.Space.Holdout, o.BestCell, memo)
			if err != nil {
				return nil, fmt.Errorf("validating %s winner: %w", o.Strategy, err)
			}
			o.ValidationCells, o.ValidationGeomean = cells, geomean
		}
	}
	return rep, nil
}

// runStrategy runs one named strategy on a fresh session.
func runStrategy(ctx context.Context, name string, cfg Config, budget int) (*Session, time.Duration, error) {
	strat, err := StrategyByName(name)
	if err != nil {
		return nil, 0, err
	}
	sess := NewSession(cfg.Space.Cells, cfg.Eval, budget, strategySeed(cfg.Seed, name))
	start := time.Now()
	err = strat.Search(ctx, sess)
	wall := time.Since(start)
	if err != nil {
		return nil, 0, err
	}
	return sess, wall, nil
}

// strategySeed derives a per-strategy seed stream from the campaign seed,
// so every strategy's randomness is independent of the request order.
func strategySeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// outcomeOf summarizes a finished session against the exhaustive optimum.
func outcomeOf(name string, sess *Session, wall time.Duration, bestPerf float64) Outcome {
	o := Outcome{Strategy: name, Sims: sess.Sims(), Wall: wall}
	if i, res, ok := sess.Best(); ok {
		o.BestCell = sess.Space()[i]
		o.Best = res
	}
	for pos, i := range sess.Order() {
		if res, ok := sess.Result(i); ok && res.OpsPerCycle() >= bestPerf {
			o.SimsToBest = pos + 1
			break
		}
	}
	o.FoundBest = o.SimsToBest > 0
	return o
}

// validateWinner measures the winner's knob at every feasible held-out
// size and returns the cell count and geomean ops/cycle.
func validateWinner(ctx context.Context, eval Evaluator, holdout []core.Experiment, winner core.Experiment, memo map[core.Experiment]core.Result) (int, float64, error) {
	var logSum float64
	cells := 0
	for _, h := range holdout {
		if h.Target != winner.Target || h.Workload != winner.Workload || h.Pipeline != winner.Pipeline {
			continue
		}
		res, ok := memo[h]
		if !ok {
			var err error
			res, err = eval.Measure(ctx, h)
			if err != nil {
				return 0, 0, err
			}
			memo[h] = res
		}
		logSum += math.Log(res.OpsPerCycle())
		cells++
	}
	if cells == 0 {
		return 0, 0, nil
	}
	return cells, math.Exp(logSum / float64(cells)), nil
}

// outcome returns the first outcome of the named strategy, or nil.
func (r *Report) outcome(name string) *Outcome {
	for i := range r.Outcomes {
		if r.Outcomes[i].Strategy == name {
			return &r.Outcomes[i]
		}
	}
	return nil
}

// String renders the deterministic campaign report: a pure function of
// seed, budget, space and measured results — no wall clock, no map
// iteration — so equal-seed reruns are byte-identical.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cwtune campaign: seed=%d budget=%d cells=%d holdout=%d\n",
		r.Seed, r.Budget, len(r.Space.Cells), len(r.Space.Holdout))
	if len(r.Space.HoldoutSizes) > 0 {
		fmt.Fprintf(&b, "held-out sizes: %s\n", joinInts(r.Space.HoldoutSizes))
	}
	if ex := r.outcome("exhaustive"); ex != nil {
		fmt.Fprintf(&b, "exhaustive best: %s ops/cycle=%.6f (%d sims)\n", ex.BestCell, r.BestPerf, ex.Sims)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s %5s %12s  %-28s %10s %5s\n",
		"strategy", "sims", "sims-to-best", "best-config", "ops/cycle", "found")
	for _, o := range r.Outcomes {
		stb := "-"
		if o.SimsToBest > 0 {
			stb = strconv.Itoa(o.SimsToBest)
		}
		found := "no"
		if o.FoundBest {
			found = "yes"
		}
		fmt.Fprintf(&b, "%-12s %5d %12s  %-28s %10.6f %5s\n",
			o.Strategy, o.Sims, stb, o.BestCell.String(), o.Best.OpsPerCycle(), found)
	}

	fl, rd := r.outcome("flash"), r.outcome("random")
	if fl != nil && rd != nil {
		verdict := "no"
		if fl.FoundBest && (!rd.FoundBest || fl.SimsToBest < rd.SimsToBest) {
			verdict = "yes"
		}
		fmt.Fprintf(&b, "\nacceptance: flash sims-to-best=%d, random sims-to-best=%d; flash reached the exhaustive best with strictly fewer sims than random: %s\n",
			fl.SimsToBest, rd.SimsToBest, verdict)
	}

	validated := false
	for _, o := range r.Outcomes {
		if o.ValidationCells > 0 {
			validated = true
			break
		}
	}
	if validated {
		b.WriteString("\nvalidation (held-out sizes, winner knob):\n")
		fmt.Fprintf(&b, "%-12s %5s %18s\n", "strategy", "cells", "geomean-ops/cycle")
		for _, o := range r.Outcomes {
			fmt.Fprintf(&b, "%-12s %5d %18.6f\n", o.Strategy, o.ValidationCells, o.ValidationGeomean)
		}
	}
	return b.String()
}

// WallSummary renders the per-strategy wall-clock times — the one
// non-deterministic campaign fact, kept out of String so the report body
// stays byte-identical across reruns (it belongs on stderr).
func (r *Report) WallSummary() string {
	parts := make([]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		parts[i] = fmt.Sprintf("%s=%s", o.Strategy, o.Wall.Round(time.Millisecond))
	}
	return "wall-clock: " + strings.Join(parts, " ")
}

// joinInts renders ints comma-separated.
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
