package tune

import (
	"context"
	"errors"
	"sort"

	"configwall/internal/core"
)

// capFactor is halving's per-rung runtime cap: a configuration whose
// runtime at a rung exceeds capFactor × the rung's fastest fresh
// measurement is eliminated outright (the LeapsAndBounds-style runtime
// cap), before the usual keep-top-half cut.
const capFactor = 8

// halving is budgeted successive halving in the LeapsAndBounds style
// (Weisz et al.). The arms are the (target, workload, pipeline) knobs;
// the rungs are the distinct sweep sizes, ascending, so cheap small-n
// simulations eliminate most knobs before any expensive large-n run. At
// every rung each surviving knob is measured at the rung size (knobs the
// size is infeasible for skip the rung), configurations slower than the
// runtime cap are dropped, and the top half of the scored knobs by best
// observed ops/cycle survives.
type halving struct{}

func (halving) Name() string { return "halving" }

func (halving) Search(ctx context.Context, s *Session) error {
	space := s.Space()

	type knobKey struct {
		target, workload string
		pipeline         core.Pipeline
	}
	type knob struct {
		bySize map[int]int // sweep size → space index
		best   float64     // best observed ops/cycle
		scored bool
	}
	var knobs []*knob
	index := make(map[knobKey]*knob)
	sizeSeen := make(map[int]bool)
	var rungs []int
	for i, e := range space {
		k := knobKey{e.Target, e.Workload, e.Pipeline}
		kn, ok := index[k]
		if !ok {
			kn = &knob{bySize: make(map[int]int)}
			index[k] = kn
			knobs = append(knobs, kn)
		}
		kn.bySize[e.N] = i
		if !sizeSeen[e.N] {
			sizeSeen[e.N] = true
			rungs = append(rungs, e.N)
		}
	}
	sort.Ints(rungs)

	// Knobs are eliminated rung by rung; once a single knob survives, it
	// keeps being promoted through the remaining rungs, so the search
	// still reaches the survivor's large (and usually best) sizes.
	alive := knobs
	for _, sz := range rungs {
		type meas struct {
			kn  *knob
			res core.Result
		}
		var fresh []meas
		for _, kn := range alive {
			idx, ok := kn.bySize[sz]
			if !ok {
				continue // rung size infeasible for this knob's target
			}
			res, err := s.Measure(ctx, idx)
			if err != nil {
				if errors.Is(err, ErrBudgetExhausted) {
					return nil
				}
				return err
			}
			if perf := res.OpsPerCycle(); !kn.scored || perf > kn.best {
				kn.best = perf
				kn.scored = true
			}
			fresh = append(fresh, meas{kn, res})
		}
		if len(fresh) == 0 {
			continue
		}

		// Runtime cap: the rung's fastest configuration sets the bar.
		minCycles := fresh[0].res.Cycles
		for _, m := range fresh[1:] {
			if m.res.Cycles < minCycles {
				minCycles = m.res.Cycles
			}
		}
		capped := make(map[*knob]bool)
		for _, m := range fresh {
			if m.res.Cycles > capFactor*minCycles {
				capped[m.kn] = true
			}
		}
		surviving := alive[:0:0]
		for _, kn := range alive {
			if !capped[kn] {
				surviving = append(surviving, kn)
			}
		}

		// Keep the top half of the scored survivors by best observed
		// ops/cycle (ties to the earlier knob); knobs no rung could score
		// yet survive untouched.
		var scored, unscored []*knob
		for _, kn := range surviving {
			if kn.scored {
				scored = append(scored, kn)
			} else {
				unscored = append(unscored, kn)
			}
		}
		sort.SliceStable(scored, func(a, b int) bool { return scored[a].best > scored[b].best })
		keep := (len(scored) + 1) / 2
		alive = append(scored[:keep:keep], unscored...)
	}
	return nil
}
