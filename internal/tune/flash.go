package tune

import (
	"context"
	"errors"
	"sort"
)

// flash is the FLASH-style sequential model-based searcher (Nair et al.):
// instead of fitting its own surrogate it reuses the daemon's calibrated
// analytic tier — one fidelity=screen sweep predicts the whole space for
// zero simulations — and then spends its simulation budget strictly in
// predicted-best order, so full-fidelity /v1/run queries go only to
// predicted winners.
type flash struct{}

func (flash) Name() string { return "flash" }

func (flash) Search(ctx context.Context, s *Session) error {
	preds, err := s.Screen(ctx)
	if err != nil {
		return err
	}
	rank := make([]int, len(preds))
	for i := range rank {
		rank[i] = i
	}
	// Descending predicted ops/cycle, ties to the lower space index.
	sort.SliceStable(rank, func(a, b int) bool {
		return preds[rank[a]].OpsPerCycle() > preds[rank[b]].OpsPerCycle()
	})
	for _, i := range rank {
		if _, err := s.Measure(ctx, i); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}
