package lint

// The fixture tests use "// want <analyzer>" expectation comments: every
// marked line must produce exactly one finding from that analyzer, and no
// finding may appear on an unmarked line. This keeps the fixtures
// self-describing and immune to line-number drift.

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var wantRe = regexp.MustCompile(`// want (\w+)`)

// wantLines parses the "// want <analyzer>" markers of every fixture file.
func wantLines(t *testing.T, p *Package) map[string]string {
	t.Helper()
	want := make(map[string]string) // "file:line" -> analyzer
	fset := token.NewFileSet()
	for _, f := range p.Files {
		file := p.Fset.Position(f.Pos()).Filename
		parsed, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range parsed.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				want[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = m[1]
			}
		}
	}
	return want
}

// checkFixture runs the full analyzer set over one fixture and matches
// findings against the want markers exactly.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	p := loadFixture(t, name)
	want := wantLines(t, p)
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", name)
	}
	got := Lint(p)
	seen := make(map[string]bool)
	for _, f := range got {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		analyzer, expected := want[key]
		if !expected {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if analyzer != f.Analyzer {
			t.Errorf("finding at %s from %s, want %s", key, f.Analyzer, analyzer)
		}
		if seen[key] {
			t.Errorf("duplicate finding at %s: %s", key, f)
		}
		seen[key] = true
	}
	for key, analyzer := range want {
		if !seen[key] {
			t.Errorf("missing %s finding at %s", analyzer, key)
		}
	}
}

func TestHotpathAllocFixture(t *testing.T) { checkFixture(t, "hotfix") }
func TestPooledReturnFixture(t *testing.T) { checkFixture(t, "pooledfix") }
func TestMapIterFixture(t *testing.T)      { checkFixture(t, "mapiterfix") }

// TestFindingsSorted: reporting order is position-sorted so cwlint output
// is deterministic regardless of analyzer registration order.
func TestFindingsSorted(t *testing.T) {
	p := loadFixture(t, "hotfix")
	got := Lint(p)
	for i := 1; i < len(got); i++ {
		a, b := got[i-1].Pos, got[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("findings out of order: %s before %s", got[i-1], got[i])
		}
	}
}

// TestAnnotatedRepoPackagesClean is the in-tree slice of the CI cwlint job:
// the packages carrying //cwlint:hotpath annotations (and the pooled-trace
// owner) must lint clean.
func TestAnnotatedRepoPackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the stdlib closure from source")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"../sim", "../serve", "../core", "../trace"} {
		p, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range Lint(p) {
			t.Errorf("%s", f)
		}
	}
}

// TestLoaderRejectsEmptyDir: a directory without Go files is a usage error,
// not a silent pass.
func TestLoaderRejectsEmptyDir(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("expected no-Go-files error, got %v", err)
	}
}
