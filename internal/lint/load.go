package lint

// Loading and type-checking without golang.org/x/tools: the stdlib source
// importer handles standard-library imports, and a thin module-aware
// importer resolves this repo's own import paths by walking up to go.mod.
// Loaded packages are memoized per Loader, so linting the whole tree
// type-checks each package (and the stdlib closure) once.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignore map[string]map[int]bool
}

// Loader parses and type-checks packages, memoizing by import path.
type Loader struct {
	Fset   *token.FileSet
	root   string // module root directory
	module string // module path from go.mod
	std    types.Importer
	loaded map[string]*Package
	typed  map[string]*types.Package
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: make(map[string]*Package),
		typed:  make(map[string]*types.Package),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadDir parses and type-checks the package in one directory (non-test
// files only). The directory may be inside the module (its import path is
// derived from go.mod) or an out-of-tree fixture directory (typed as its
// package name).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	p := &Package{Path: path, Dir: abs, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	p.buildIgnoreIndex()
	l.loaded[path] = p
	l.typed[path] = tpkg
	return p, nil
}

// importPathFor maps a directory inside the module to its import path;
// directories outside the module (test fixtures) keep their absolute path
// as a synthetic package path.
func (l *Loader) importPathFor(abs string) string {
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.module
		}
		return l.module + "/" + filepath.ToSlash(rel)
	}
	return abs
}

// Import implements types.Importer: module-local paths load from the repo
// source tree (recursively through this loader), everything else delegates
// to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		if _, err := l.LoadDir(filepath.Join(l.root, filepath.FromSlash(rel))); err != nil {
			return nil, err
		}
		return l.typed[path], nil
	}
	return l.std.Import(path)
}
