// Package pooledfix is the failing fixture for the pooledreturn analyzer:
// one aliasing assignment of a pooled trace slice, next to every sanctioned
// form (copy, nil, ownership-preserving reslice, call result).
package pooledfix

type Segment struct{ Start, End uint64 }

type machine struct{ Trace []Segment }

type result struct{ Trace []Segment }

var pool = struct{ buf []Segment }{}

func get() []Segment { return pool.buf }

func bad(mc *machine) result {
	var res result
	res.Trace = mc.Trace // want pooledreturn
	return res
}

func good(mc *machine) result {
	var res result
	res.Trace = append([]Segment(nil), mc.Trace...)
	res.Trace = nil
	mc.Trace = mc.Trace[:0]
	mc.Trace = get()
	return res
}
