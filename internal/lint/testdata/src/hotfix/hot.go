// Package hotfix is the failing fixture for the hotpathalloc analyzer:
// every construct the rule forbids appears once in an annotated function,
// alongside the two sanctioned escapes (fmt inside a return, an explicit
// //cwlint:ignore).
package hotfix

import "fmt"

type pair struct{ a, b int }

func release() {}

// dispatch is the all-violations function.
//
//cwlint:hotpath
func dispatch(n int) int {
	buf := make([]int, n)        // want hotpathalloc
	fmt.Println(n)               // want hotpathalloc
	defer release()              // want hotpathalloc
	go release()                 // want hotpathalloc
	f := func() int { return n } // want hotpathalloc
	s := pair{n, n}              // want hotpathalloc
	_ = buf
	_ = s
	return f()
}

// clean exercises both escapes: error construction on the exit path and a
// justified suppression.
//
//cwlint:hotpath
func clean(n int) error {
	if n < 0 {
		return fmt.Errorf("bad %d", n)
	}
	x := make([]int, 1) //cwlint:ignore one-time warmup, amortized across the run
	_ = x
	return nil
}

// unannotated functions are out of scope however much they allocate.
func unannotated(n int) []int {
	fmt.Println(n)
	return make([]int, n)
}
