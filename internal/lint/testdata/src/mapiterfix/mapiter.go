// Package mapiterfix is the failing fixture for the mapiter analyzer: one
// range-over-map that writes output directly, one that writes through an
// io.Writer method, and the sanctioned collect-sort-range idiom.
package mapiterfix

import (
	"fmt"
	"sort"
	"strings"
)

func bad(m map[string]int) {
	for k, v := range m { // want mapiter
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badWriter(m map[string]int, sb *strings.Builder) {
	for k := range m { // want mapiter
		sb.WriteString(k)
	}
}

func good(m map[string]int, sb *strings.Builder) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s=%d\n", k, m[k])
	}
}
