// Package lint implements cwlint, the repo-specific static checks behind
// the performance and determinism claims the test suite can only spot-check
// dynamically (DESIGN.md §9.5):
//
//   - hotpathalloc: functions annotated //cwlint:hotpath — the simulator
//     dispatch loops and the serving fast paths — must not contain
//     allocation-inducing constructs (make/new, fmt calls off the error
//     exit, closures, defer, go, composite literals). The zero-alloc
//     benchmarks verify steady state on one workload; the lint pins the
//     property across every code path, including ones benchmarks miss.
//   - pooledreturn: a pooled trace buffer ([]sim.Segment) must never be
//     aliased into a result object — results are cached and outlive the
//     pool cycle, so the assignment must copy (append onto a nil slice).
//   - mapiter: output must not be produced while ranging over a map —
//     iteration order would leak into reports, breaking the byte-identical
//     reproducibility contract. Collect and sort keys first.
//
// A finding on a line carrying (or directly following) a //cwlint:ignore
// comment is suppressed; the comment should say why.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Analyzers lists every registered check, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{hotpathAlloc, pooledReturn, mapIter}
}

// Lint runs every analyzer over the package, dropping findings suppressed
// by //cwlint:ignore and sorting the remainder by position.
func Lint(p *Package) []Finding {
	var out []Finding
	for _, a := range Analyzers() {
		for _, f := range a.Run(p) {
			if p.suppressed(f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// directive scans a comment group for a //cwlint:<name> marker.
func directive(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//cwlint:"+name) {
			return true
		}
	}
	return false
}

// suppressed reports whether the finding's line carries (or directly
// follows) a //cwlint:ignore comment.
func (p *Package) suppressed(pos token.Position) bool {
	lines := p.ignore[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// buildIgnoreIndex records, per file, the lines on which a //cwlint:ignore
// comment appears.
func (p *Package) buildIgnoreIndex() {
	p.ignore = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//cwlint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.ignore[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.ignore[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
}
