package lint

// mapiter: every report, figure and metrics endpoint in this repo promises
// byte-identical output across runs; Go map iteration order is randomized
// per run. Ranging over a map while writing output (fmt.Print*/Fprint*, or
// any Write* method, e.g. strings.Builder / http.ResponseWriter) leaks that
// order into the output. Collect keys, sort, then range the slice
// (serve/metrics.go sortedKeys is the in-tree idiom). Building values
// inside a map range (append, Sprintf into a slice) stays legal — order
// only matters once bytes are emitted.

import (
	"go/ast"
	"go/types"
	"strings"
)

var mapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "forbid writing output while ranging over a map (nondeterministic order)",
	Run:  runMapIter,
}

func runMapIter(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, ok := tv.Type.Underlying().(*types.Map); !ok {
				return true
			}
			if call := findOutputCall(p, rs.Body); call != nil {
				out = append(out, Finding{
					Pos:      p.Fset.Position(rs.Pos()),
					Analyzer: "mapiter",
					Message:  "writes output while ranging over a map — iteration order is nondeterministic; sort the keys first",
				})
			}
			return true
		})
	}
	return out
}

// findOutputCall returns the first output-producing call in the body: a
// fmt.Print*/Fprint* call, or any method call whose name starts with Write
// (io.Writer, strings.Builder, http.ResponseWriter...).
func findOutputCall(p *Package, body *ast.BlockStmt) (found *ast.CallExpr) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
					found = call
				}
				return true
			}
		}
		// Method call: any Write/WriteString/WriteByte/... on anything.
		if p.Info.Selections[sel] != nil && strings.HasPrefix(name, "Write") {
			found = call
		}
		return true
	})
	return found
}
