package lint

// pooledreturn: trace buffers ([]Segment) are pooled and reused across
// simulations (trace.Buffers), while results holding traces are cached and
// shared indefinitely. Assigning a pooled slice straight into a Trace field
// aliases memory the pool will hand to the next run — the canonical bug is
// a cached result whose timeline silently mutates under it. The correct
// idiom copies: res.Trace = append([]sim.Segment(nil), mc.Trace...).
// The check flags `<expr>.Trace = <ident or selector>` where the right-hand
// side is a []Segment value (nil and append/call results are ownership
// transfers, not aliases, and slicing a field in place, Trace = Trace[:0],
// reuses the same owner).

import (
	"go/ast"
	"go/types"
)

var pooledReturn = &Analyzer{
	Name: "pooledreturn",
	Doc:  "forbid aliasing a pooled []Segment trace buffer into a Trace field",
	Run:  runPooledReturn,
}

func runPooledReturn(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Trace" {
					continue
				}
				rhs := as.Rhs[i]
				if !plainRef(rhs) || !isSegmentSlice(p, rhs) {
					continue
				}
				out = append(out, Finding{
					Pos:      p.Fset.Position(as.Pos()),
					Analyzer: "pooledreturn",
					Message:  "aliases a pooled trace buffer into .Trace; copy it: append([]Segment(nil), x...)",
				})
			}
			return true
		})
	}
	return out
}

// plainRef reports whether the expression is a bare identifier or selector
// chain — the aliasing forms. Calls (append, pool Get) transfer ownership
// and nil carries nothing.
func plainRef(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr:
		return true
	case *ast.ParenExpr:
		return plainRef(e.X)
	}
	return false
}

// isSegmentSlice reports whether the expression's static type is a slice of
// a named type called Segment (sim.Segment in-tree; matched by name so the
// fixture packages need not import the simulator).
func isSegmentSlice(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Segment"
}
