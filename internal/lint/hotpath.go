package lint

// hotpathalloc: the simulator dispatch loops and serving fast paths carry a
// //cwlint:hotpath annotation and must stay allocation-free per iteration.
// The Go compiler gives no diagnostic for a closure or fmt call quietly
// added to a loop that executes hundreds of millions of times per sweep;
// this check turns the convention into a CI failure. Calls to the fmt
// package are exempt inside return statements — an error construction on
// the exit path runs once, not per iteration.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var hotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-inducing constructs in //cwlint:hotpath functions",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive(fd.Doc, "hotpath") {
				continue
			}
			out = append(out, checkHotBody(p, fd)...)
		}
	}
	return out
}

func checkHotBody(p *Package, fd *ast.FuncDecl) []Finding {
	// Pre-collect return-statement extents: fmt calls inside them are
	// one-shot exits, not per-iteration work.
	var returns [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, [2]token.Pos{r.Pos(), r.End()})
		}
		return true
	})
	inReturn := func(pos token.Pos) bool {
		for _, r := range returns {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	flag := func(n ast.Node, msg string) Finding {
		return Finding{Pos: p.Fset.Position(n.Pos()), Analyzer: "hotpathalloc",
			Message: fd.Name.Name + ": " + msg}
	}

	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			out = append(out, flag(n, "go statement spawns a goroutine in a hot path"))
		case *ast.DeferStmt:
			out = append(out, flag(n, "defer allocates a frame record in a hot path"))
		case *ast.FuncLit:
			out = append(out, flag(n, "function literal may allocate a closure in a hot path"))
			return false
		case *ast.CompositeLit:
			out = append(out, flag(n, "composite literal may allocate in a hot path"))
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if obj, ok := p.Info.Uses[fun].(*types.Builtin); ok {
					switch obj.Name() {
					case "make", "new":
						out = append(out, flag(n, obj.Name()+" allocates in a hot path"))
					}
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok &&
						pn.Imported().Path() == "fmt" && !inReturn(n.Pos()) {
						out = append(out, flag(n, "fmt."+fun.Sel.Name+" allocates in a hot path (only allowed inside a return)"))
					}
				}
			}
		}
		return true
	})
	return out
}
