package sim_test

import (
	"strings"
	"testing"

	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

// TestCompiledFusionAliasing targets the superinstruction lowering
// (fusePair/fusePairFwd/fuseTripleFwd/fusePairBr): every case where a
// fused op reads a register its fused predecessor wrote, in every operand
// position, must behave exactly like the unfused reference execution.
// runBoth compares all engines, so each case is a three-way check.
func TestCompiledFusionAliasing(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *riscv.Assembler)
	}{
		{name: "pair second operand reads first result", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 7, Imm: 11})
			a.Emit(riscv.Instr{Op: riscv.ADD, Rd: 5, Rs1: 7, Rs2: 7})
			a.Emit(riscv.Instr{Op: riscv.XOR, Rd: 6, Rs1: 7, Rs2: 5}) // b2 aliases d1
		}},
		{name: "fwd pair reads result on both sides", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 13})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.MUL, Rd: 6, Rs1: 5, Rs2: 5}) // a2 and b2 alias d1
		}},
		{name: "same destination written twice", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 3})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 10})
			a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 5, Rs1: 5, Imm: 2})
			a.Emit(riscv.Instr{Op: riscv.SRLI, Rd: 5, Rs1: 5, Imm: 1})
		}},
		{name: "triple chain with trailing branch", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: 5})
			a.Label("top")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 28, Imm: 7})
			a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 6, Rs1: 5, Imm: 3})
			a.Emit(riscv.Instr{Op: riscv.XOR, Rd: 7, Rs1: 6, Rs2: 28})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
			a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
		}},
		{name: "fused branch compares its own decrement", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: 4})
			a.Label("top")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
			a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"}) // x aliases d1
		}},
		{name: "fused branch result on both compare sides", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 2})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.BEQ, Rs1: 5, Rs2: 5, Label: "out"}) // x and y alias d1
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 6, Imm: 99})
			a.Label("out")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 7, Rs1: 5, Imm: 1})
		}},
		{name: "x0 destination inside fused pair", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 21})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 0, Rs1: 5, Imm: 1}) // write to x0 dropped
			a.Emit(riscv.Instr{Op: riscv.ADD, Rd: 6, Rs1: 0, Rs2: 5})  // x0 must read 0
		}},
		{name: "immediate normalization edge values", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: -1})
			a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 6, Rs1: 5, Imm: 65}) // masked to 1
			a.Emit(riscv.Instr{Op: riscv.SRLI, Rd: 7, Rs1: 5, Imm: 63})
			a.Emit(riscv.Instr{Op: riscv.SLTIU, Rd: 8, Rs1: 5, Imm: -1}) // unsigned max
			a.Emit(riscv.Instr{Op: riscv.SLT, Rd: 9, Rs1: 5, Rs2: 8})
		}},
		{name: "branch into middle of fused chain", build: func(a *riscv.Assembler) {
			// The jump lands between two instructions the fall-through
			// chain fused into one closure: the suffix entry at the landing
			// pc must execute only the suffix.
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.JAL, Label: "mid"})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 100})
			a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 5, Rs1: 5, Imm: 1})
			a.Label("mid")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 7})
			a.Emit(riscv.Instr{Op: riscv.XORI, Rd: 6, Rs1: 5, Imm: 0x3c})
		}},
		{name: "division splits fusion", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 100})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 5, Imm: 7})
			a.Emit(riscv.Instr{Op: riscv.DIVU, Rd: 7, Rs1: 6, Rs2: 5}) // unfusable
			a.Emit(riscv.Instr{Op: riscv.REMU, Rd: 8, Rs1: 6, Rs2: 0}) // by-zero path
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 9, Rs1: 8, Imm: 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runBoth(t, nil, 0, nil, assemble(t, tc.build))
		})
	}
}

// TestCompileRejectsForeignCostModel mirrors the fast engine's guard: a
// program decoded under one cost model must not compile for another host.
func TestCompileRejectsForeignCostModel(t *testing.T) {
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.NOP})
	})
	d := riscv.Decode(p, riscv.RocketCost())
	mc := newMachine(nil) // FlatCost "unit"
	if _, err := mc.Compile(d); err == nil || !strings.Contains(err.Error(), "cost model") {
		t.Fatalf("want cost-model mismatch error, got %v", err)
	}
}

// TestRunCompiledRejectsForeignBinding: closure chains capture register and
// memory pointers, so running them on any other machine or after a memory
// swap must fail loudly instead of silently touching the wrong state.
func TestRunCompiledRejectsForeignBinding(t *testing.T) {
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
	})
	mc := newMachine(nil)
	c, err := mc.Compile(riscv.Decode(p, mc.Cost))
	if err != nil {
		t.Fatal(err)
	}
	other := newMachine(nil)
	if err := other.RunCompiled(c); err == nil || !strings.Contains(err.Error(), "different machine") {
		t.Fatalf("want machine-binding error, got %v", err)
	}
	mc.Mem = mem.New(1 << 16)
	if err := mc.RunCompiled(c); err == nil || !strings.Contains(err.Error(), "different memory") {
		t.Fatalf("want memory-binding error, got %v", err)
	}
}

// TestCompiledRunMemoization: Run must reuse the compiled form across calls
// for the same program (the decode-once-run-many contract) and recompile
// when the memory is swapped out from under it.
func TestCompiledRunMemoization(t *testing.T) {
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 10, Imm: 0x100})
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 7})
		a.Emit(riscv.Instr{Op: riscv.SD, Rs1: 10, Rs2: 5, Imm: 0})
	})
	mc := newMachine(nil)
	mc.Engine = sim.EngineCompiled
	for run := 0; run < 3; run++ {
		if err := mc.Run(p); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if got := mc.Mem.Read64(0x100); got != 7 {
			t.Fatalf("run %d: mem[0x100] = %d, want 7", run, got)
		}
	}
	fresh := mem.New(1 << 16)
	mc.Mem = fresh
	if err := mc.Run(p); err != nil {
		t.Fatalf("after memory swap: %v", err)
	}
	if got := fresh.Read64(0x100); got != 7 {
		t.Fatalf("after memory swap: mem[0x100] = %d, want 7 (stale compiled binding?)", got)
	}
}

// TestCompiledSteadyStateZeroAllocs is the tentpole's allocation gate: once
// a program is compiled (first Run), subsequent runs on the compiled
// engine's straight-line hot path must not allocate at all.
func TestCompiledSteadyStateZeroAllocs(t *testing.T) {
	p := buildALULoop(64)
	mc := sim.NewMachine(mem.New(1<<16), riscv.RocketCost(), nil)
	mc.Engine = sim.EngineCompiled
	if err := mc.Run(p); err != nil { // compiles and memoizes
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := mc.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("compiled steady-state Run allocated %v allocs/op, want 0", avg)
	}
}
