package sim

// The fast execution engine. It executes the predecoded program form
// (riscv.Decode) and is semantics- and timing-identical to the reference
// interpreter (runRef) by construction and by continuous differential
// testing (internal/difftest cross-checks Counters, final memory and the
// summarized trace on every fuzzed program). The speed comes from three
// structural changes, not from modeling shortcuts:
//
//   1. Predecode: branch targets, per-op cycle costs and instruction
//      classes are resolved once per program, so the hot loop performs no
//      map lookups and no CostModel interface calls.
//   2. Closure-free stepping: the reference engine's per-instruction
//      charge/setRd closures become straight-line counter updates.
//   3. Block batching: a maximal straight-line run of plain host
//      instructions (no device ops, at most a trailing branch) has a
//      statically known (instructions, cycles) footprint — the engine
//      applies it as one counter delta and at most one trace segment,
//      then interprets only the register/memory semantics per instruction.
//
// Counter equality is provable: only instructions whose accounting is
// (HostInstrs++, HostCycles+=cost, CalcCycles+=cost, paint SegHostExec)
// are batchable (riscv.Decode restricts blocks to plain opcodes in
// ClassHost/ClassConfigCalc — both land in CalcCycles), and no such
// instruction can stall or touch the clock otherwise, so summing a
// block's costs up front produces the same counters, the same clock, and
// — because the reference engine's per-instruction segments are
// contiguous and coalesce at record time — the same trace segments.
// Everything else (device ops, sync-class polls, limit-straddling tails)
// takes the per-instruction path through the exact helpers the reference
// engine uses.

import (
	"fmt"

	"configwall/internal/riscv"
)

// RunDecoded executes a predecoded program on the fast engine. Like Run,
// each call starts from a clean clock, counters and trace; on error,
// Cycles reflects the time reached. The program must have been decoded
// under the machine's own cost model.
//
//cwlint:hotpath
func (mc *Machine) RunDecoded(d *riscv.Decoded) error {
	if name := mc.Cost.Name(); d.CostName != name {
		return fmt.Errorf("sim: program decoded for cost model %q cannot run on %q", d.CostName, name)
	}
	mc.reset()
	limit := mc.MaxInstrs
	if limit == 0 {
		limit = 1 << 31
	}
	code := d.Instrs
	regs := &mc.Regs
	memory := mc.Mem
	pc := 0
outer:
	for {
		if pc < 0 || pc >= len(code) {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: pc %d out of range (program has %d instructions)", pc, len(code))
		}
		ins := &code[pc]

		// Fast path: batch a whole straight-line block. The limit guard
		// keeps instruction-limit errors at exactly the reference engine's
		// instruction boundary by diverting straddling blocks to the
		// per-instruction path below. The semantics switch is inlined here
		// rather than calling execPlain: at hundreds of millions of
		// executed instructions per sweep, the per-instruction call
		// overhead is the single largest remaining cost (it is what
		// execPlain still pays on the rare non-batched path).
		if n := uint64(ins.BlockLen); n > 0 && mc.HostInstrs+n <= limit {
			c := ins.BlockCycles
			mc.HostInstrs += n
			mc.HostCycles += c
			mc.CalcCycles += c
			mc.record(SegHostExec, mc.now, mc.now+c)
			mc.now += c
			end := pc + int(n)
			for pc < end {
				i := &code[pc]
				rs1 := regs[i.Rs1]
				rs2 := regs[i.Rs2]
				var v int64
				switch i.Op {
				case riscv.ADD:
					v = rs1 + rs2
				case riscv.ADDI:
					v = rs1 + i.Imm
				case riscv.LI:
					v = i.Imm
				case riscv.SUB:
					v = rs1 - rs2
				case riscv.MUL:
					v = rs1 * rs2
				case riscv.DIVU:
					if rs2 == 0 {
						v = -1
					} else {
						v = int64(uint64(rs1) / uint64(rs2))
					}
				case riscv.REMU:
					if rs2 == 0 {
						v = rs1
					} else {
						v = int64(uint64(rs1) % uint64(rs2))
					}
				case riscv.AND:
					v = rs1 & rs2
				case riscv.OR:
					v = rs1 | rs2
				case riscv.XOR:
					v = rs1 ^ rs2
				case riscv.SLL:
					v = rs1 << (uint64(rs2) & 63)
				case riscv.SRL:
					v = int64(uint64(rs1) >> (uint64(rs2) & 63))
				case riscv.SLT:
					v = boolToInt(rs1 < rs2)
				case riscv.SLTU:
					v = boolToInt(uint64(rs1) < uint64(rs2))
				case riscv.ANDI:
					v = rs1 & i.Imm
				case riscv.ORI:
					v = rs1 | i.Imm
				case riscv.XORI:
					v = rs1 ^ i.Imm
				case riscv.SLLI:
					v = rs1 << (uint64(i.Imm) & 63)
				case riscv.SRLI:
					v = int64(uint64(rs1) >> (uint64(i.Imm) & 63))
				case riscv.SLTIU:
					v = boolToInt(uint64(rs1) < uint64(i.Imm))
				case riscv.LB:
					v = memory.ReadSigned(uint64(rs1+i.Imm), 8)
				case riscv.LH:
					v = memory.ReadSigned(uint64(rs1+i.Imm), 16)
				case riscv.LW:
					v = memory.ReadSigned(uint64(rs1+i.Imm), 32)
				case riscv.LD:
					v = memory.ReadSigned(uint64(rs1+i.Imm), 64)
				case riscv.SB:
					memory.WriteSigned(uint64(rs1+i.Imm), 8, rs2)
					pc++
					continue
				case riscv.SH:
					memory.WriteSigned(uint64(rs1+i.Imm), 16, rs2)
					pc++
					continue
				case riscv.SW:
					memory.WriteSigned(uint64(rs1+i.Imm), 32, rs2)
					pc++
					continue
				case riscv.SD:
					memory.WriteSigned(uint64(rs1+i.Imm), 64, rs2)
					pc++
					continue
				case riscv.BEQ:
					if rs1 == rs2 {
						pc = int(i.Target)
						continue outer
					}
					pc++
					continue
				case riscv.BNE:
					if rs1 != rs2 {
						pc = int(i.Target)
						continue outer
					}
					pc++
					continue
				case riscv.BLT:
					if rs1 < rs2 {
						pc = int(i.Target)
						continue outer
					}
					pc++
					continue
				case riscv.BGE:
					if rs1 >= rs2 {
						pc = int(i.Target)
						continue outer
					}
					pc++
					continue
				case riscv.BLTU:
					if uint64(rs1) < uint64(rs2) {
						pc = int(i.Target)
						continue outer
					}
					pc++
					continue
				case riscv.BGEU:
					if uint64(rs1) >= uint64(rs2) {
						pc = int(i.Target)
						continue outer
					}
					pc++
					continue
				case riscv.JAL:
					pc = int(i.Target)
					continue outer
				default: // NOP
					pc++
					continue
				}
				if i.Rd != 0 {
					regs[i.Rd] = v
				}
				pc++
			}
			continue
		}

		if ins.Op == riscv.HALT {
			// Drain the accelerator so total cycles include the tail; the
			// drain is not a configuration-interface stall, so it does not
			// count toward StallCycles.
			if mc.now < mc.busyUntil {
				mc.record(SegHostStall, mc.now, mc.busyUntil)
				mc.now = mc.busyUntil
			}
			mc.Cycles = mc.now
			return nil
		}
		if mc.HostInstrs >= limit {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", limit)
		}

		switch ins.Op {
		case riscv.CUSTOM:
			if err := mc.custom(ins.Funct7, ins.Class, ins.Cost, mc.Regs[ins.Rs1], mc.Regs[ins.Rs2]); err != nil {
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
			}
			pc++
		case riscv.CSRRW:
			if err := mc.csrWrite(uint32(ins.Imm), ins.Class, ins.Cost, mc.Regs[ins.Rs1]); err != nil {
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
			}
			pc++
		case riscv.CSRRS:
			if err := mc.csrRead(uint32(ins.Imm), ins.Rd, ins.Class, ins.Cost); err != nil {
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
			}
			pc++
		default:
			if !riscv.PlainOp(ins.Op) {
				// Unknown opcode: same failure as the reference engine.
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): unimplemented opcode %s", pc, ins, ins.Op)
			}
			// Plain instruction outside a batch: either its class needs a
			// dedicated counter (ClassSync busy-poll branches) or the block
			// would straddle the instruction limit. Execute one at a time
			// with full per-instruction accounting.
			mc.charge(ins.Class, ins.Cost, SegHostExec)
			if mc.execPlain(ins) {
				pc = int(ins.Target)
			} else {
				pc++
			}
		}
	}
}

// execPlain interprets the register/memory semantics of one plain
// instruction (no accounting — the caller has already charged it, either
// individually or as part of a batched block). It reports whether control
// transfers to ins.Target.
//
//cwlint:hotpath
func (mc *Machine) execPlain(ins *riscv.DecodedInstr) bool {
	rs1 := mc.Regs[ins.Rs1]
	rs2 := mc.Regs[ins.Rs2]
	var v int64
	switch ins.Op {
	case riscv.NOP:
		return false
	case riscv.ADD:
		v = rs1 + rs2
	case riscv.SUB:
		v = rs1 - rs2
	case riscv.MUL:
		v = rs1 * rs2
	case riscv.DIVU:
		if rs2 == 0 {
			v = -1
		} else {
			v = int64(uint64(rs1) / uint64(rs2))
		}
	case riscv.REMU:
		if rs2 == 0 {
			v = rs1
		} else {
			v = int64(uint64(rs1) % uint64(rs2))
		}
	case riscv.AND:
		v = rs1 & rs2
	case riscv.OR:
		v = rs1 | rs2
	case riscv.XOR:
		v = rs1 ^ rs2
	case riscv.SLL:
		v = rs1 << (uint64(rs2) & 63)
	case riscv.SRL:
		v = int64(uint64(rs1) >> (uint64(rs2) & 63))
	case riscv.SLT:
		v = boolToInt(rs1 < rs2)
	case riscv.SLTU:
		v = boolToInt(uint64(rs1) < uint64(rs2))
	case riscv.ADDI:
		v = rs1 + ins.Imm
	case riscv.ANDI:
		v = rs1 & ins.Imm
	case riscv.ORI:
		v = rs1 | ins.Imm
	case riscv.XORI:
		v = rs1 ^ ins.Imm
	case riscv.SLLI:
		v = rs1 << (uint64(ins.Imm) & 63)
	case riscv.SRLI:
		v = int64(uint64(rs1) >> (uint64(ins.Imm) & 63))
	case riscv.SLTIU:
		v = boolToInt(uint64(rs1) < uint64(ins.Imm))
	case riscv.LI:
		v = ins.Imm
	case riscv.LB:
		v = mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 8)
	case riscv.LH:
		v = mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 16)
	case riscv.LW:
		v = mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 32)
	case riscv.LD:
		v = mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 64)
	case riscv.SB:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 8, rs2)
		return false
	case riscv.SH:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 16, rs2)
		return false
	case riscv.SW:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 32, rs2)
		return false
	case riscv.SD:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 64, rs2)
		return false
	case riscv.BEQ:
		return rs1 == rs2
	case riscv.BNE:
		return rs1 != rs2
	case riscv.BLT:
		return rs1 < rs2
	case riscv.BGE:
		return rs1 >= rs2
	case riscv.BLTU:
		return uint64(rs1) < uint64(rs2)
	case riscv.BGEU:
		return uint64(rs1) >= uint64(rs2)
	case riscv.JAL:
		return true
	}
	if ins.Rd != 0 {
		mc.Regs[ins.Rd] = v
	}
	return false
}
