package sim

// The compiled execution engine. Where the fast engine (fast.go) still
// pays an inlined semantics switch, operand-field loads and register-file
// bounds checks for every executed instruction, the compiled engine lowers
// each maximal straight-line block (riscv.Decoded.Blocks) into a chain of
// per-op closures at compile time:
//
//   - operands are pre-resolved to register-file *pointers* (writes to x0
//     go to a private sink, so the hot path has no rd!=0 branch and no
//     bounds checks),
//   - immediates, shift amounts and branch targets are captured as
//     closure constants,
//   - loads and stores bind the width-specific memory accessor directly
//     (Read64/Write8/...), skipping the ReadSigned/WriteSigned width
//     switch, and
//   - dispatch is direct threading: each closure executes its op and then
//     calls straight into its successor's closure, so steady-state
//     execution is closure-to-closure with no per-instruction switch and
//     no pc arithmetic. Every call site has exactly one target (chains are
//     fixed at compile time), so the indirect calls predict perfectly —
//     unlike a single trampoline dispatch site cycling through the block's
//     op sequence. The successor pc propagates up the return chain, and
//     the nesting depth is bounded by the longest straight-line run in the
//     program (static code, not executed-instruction count).
//
// Counter and trace identity with the reference engine is inherited from
// the fast engine's argument (see fast.go): the outer loop here is the
// fast engine's loop verbatim — the same O(1) per-block accounting delta
// on entry, and the same shared helpers (charge, execPlain, custom,
// csrWrite, csrRead) for device ops, ClassSync polls and limit-straddling
// tails. Only the *mechanism* that executes a block's register/memory
// semantics differs, and a chain entered at pc executes exactly the
// BlockLen[pc] instructions the accounting charged. The differential
// oracle (internal/difftest) cross-checks all three engines on every
// fuzzed program.

import (
	"fmt"

	"configwall/internal/mem"
	"configwall/internal/riscv"
)

// opFn executes the remainder of a closure chain — this instruction's
// register/memory semantics, then (by direct call) its successor's — and
// returns the pc control resumes at after the chain.
type opFn func() int

// Compiled is a program lowered to machine-bound closure chains. The
// lowering captures pointers into one specific Machine's register file and
// memory, so a Compiled runs only on the machine (and memory) it was
// compiled for; RunCompiled enforces the binding.
type Compiled struct {
	code     []riscv.DecodedInstr
	costName string
	mc       *Machine
	mem      *mem.Memory
	// ops[pc] is the chain entry for pc, nil outside batchable runs.
	ops []opFn
	// sink absorbs writes to x0, keeping Regs[0] hard-wired to zero
	// without a per-write rd check.
	sink int64
}

// Compile lowers a predecoded program into closure chains bound to this
// machine. The program must have been decoded under the machine's own cost
// model, and the returned Compiled must not outlive a swap of mc.Mem.
func (mc *Machine) Compile(d *riscv.Decoded) (*Compiled, error) {
	if name := mc.Cost.Name(); d.CostName != name {
		return nil, fmt.Errorf("sim: program decoded for cost model %q cannot run on %q", d.CostName, name)
	}
	c := &Compiled{code: d.Instrs, costName: d.CostName, mc: mc, mem: mc.Mem, ops: make([]opFn, len(d.Instrs))}
	// Build each run back to front so an instruction's closure can capture
	// its successor's. Every index inside a run gets its own chain entry
	// (suffix sharing: ops[pc+1] is both pc's continuation and a valid
	// branch-entry point), so a branch into the middle of a run works
	// exactly as it does on the fast engine.
	for _, blk := range d.Blocks() {
		start, last := int(blk.Start), int(blk.Start+blk.Len)-1
		for pc := last; pc >= start; pc-- {
			if pc < last {
				if f := c.fuse(pc, last); f != nil {
					c.ops[pc] = f
					continue
				}
			}
			c.ops[pc] = c.lower(pc, pc == last)
		}
	}
	return c, nil
}

// fuse attempts to lower the pair (pc, pc+1) into one superinstruction
// closure (fused.go). Both instructions must normalize onto the canonical
// ALU kinds — branches, division, memory ops and NOP keep the single-op
// chain path. ops[pc+1] still gets its own (unfused) entry, so a branch
// into the middle of a run bypasses the pair without noticing it.
func (c *Compiled) fuse(pc, last int) opFn {
	k1, d1, a1, b1, ok := c.normalizeALU(pc)
	if !ok {
		return nil
	}
	if i2 := &c.code[pc+1]; i2.Op >= riscv.BEQ && i2.Op <= riscv.BGEU {
		// A conditional branch ends the run (pc+1 == last), so the fused
		// closure resolves the successor pc itself.
		regs := &c.mc.Regs
		x, y := &regs[i2.Rs1], &regs[i2.Rs2]
		k2 := kBeq + uint8(i2.Op-riscv.BEQ)
		t, ft := int(i2.Target), pc+2
		if x == d1 {
			return fusePairBrFwd(k1, d1, a1, b1, k2, y, t, ft)
		}
		return fusePairBr(k1, d1, a1, b1, k2, x, y, t, ft)
	}
	k2, d2, a2, b2, ok := c.normalizeALU(pc + 1)
	if !ok {
		return nil
	}
	if a2 == d1 && pc+2 <= last {
		// Dependency chain: try to extend one more link into a triple.
		if k3, d3, a3, b3, ok3 := c.normalizeALU(pc + 2); ok3 && a3 == d2 {
			var next opFn
			if pc+2 == last {
				ft := pc + 3
				next = func() int { return ft }
			} else {
				next = c.ops[pc+3]
			}
			return fuseTripleFwd(k1, d1, a1, b1, k2, d2, b2, k3, d3, b3, next)
		}
	}
	var next opFn
	if pc+1 == last {
		ft := pc + 2
		next = func() int { return ft }
	} else {
		next = c.ops[pc+2]
	}
	if a2 == d1 {
		return fusePairFwd(k1, d1, a1, b1, k2, d2, b2, next)
	}
	return fusePair(k1, d1, a1, b1, k2, d2, a2, b2, next)
}

// normalizeALU maps the instruction at pc onto a canonical reg-reg ALU
// kind, materializing immediates (and LI's implicit zero source) as
// private constant cells so the fusion table needs no immediate variants.
// The cells are write-once at compile time, so sharing them with the
// machine's register file pointers is race-free. Immediate shift/compare
// forms inherit the reg-reg semantics exactly: SLLI's imm&63 equals SLL
// reading a cell holding imm, and SLTIU's unsigned compare equals SLTU
// against the materialized immediate.
func (c *Compiled) normalizeALU(pc int) (k uint8, d, a, b *int64, ok bool) {
	i := &c.code[pc]
	regs := &c.mc.Regs
	d = &c.sink
	if i.Rd != 0 {
		d = &regs[i.Rd]
	}
	a = &regs[i.Rs1]
	b = &regs[i.Rs2]
	cell := func(v int64) *int64 { p := new(int64); *p = v; return p }
	switch i.Op {
	case riscv.ADD:
		k = kAdd
	case riscv.SUB:
		k = kSub
	case riscv.MUL:
		k = kMul
	case riscv.AND:
		k = kAnd
	case riscv.OR:
		k = kOr
	case riscv.XOR:
		k = kXor
	case riscv.SLL:
		k = kSll
	case riscv.SRL:
		k = kSrl
	case riscv.SLT:
		k = kSlt
	case riscv.SLTU:
		k = kSltu
	case riscv.ADDI:
		k, b = kAdd, cell(i.Imm)
	case riscv.ANDI:
		k, b = kAnd, cell(i.Imm)
	case riscv.ORI:
		k, b = kOr, cell(i.Imm)
	case riscv.XORI:
		k, b = kXor, cell(i.Imm)
	case riscv.SLLI:
		k, b = kSll, cell(i.Imm)
	case riscv.SRLI:
		k, b = kSrl, cell(i.Imm)
	case riscv.SLTIU:
		k, b = kSltu, cell(i.Imm)
	case riscv.LI:
		k, a, b = kAdd, cell(0), cell(i.Imm)
	default:
		return 0, nil, nil, nil, false
	}
	return k, d, a, b, true
}

// lower builds the closure for the instruction at pc. last marks the final
// instruction of its run: its closure (or its continuation) ends the chain
// by returning the successor pc instead of calling onward.
func (c *Compiled) lower(pc int, last bool) opFn {
	i := &c.code[pc]
	regs := &c.mc.Regs
	a := &regs[i.Rs1]
	b := &regs[i.Rs2]
	d := &c.sink
	if i.Rd != 0 {
		d = &regs[i.Rd]
	}
	imm := i.Imm
	m := c.mem

	// Control flow always ends a run (riscv.Decode): the closure resolves
	// the successor and drops back to the block loop.
	switch i.Op {
	case riscv.BEQ:
		t, ft := int(i.Target), pc+1
		return func() int {
			if *a == *b {
				return t
			}
			return ft
		}
	case riscv.BNE:
		t, ft := int(i.Target), pc+1
		return func() int {
			if *a != *b {
				return t
			}
			return ft
		}
	case riscv.BLT:
		t, ft := int(i.Target), pc+1
		return func() int {
			if *a < *b {
				return t
			}
			return ft
		}
	case riscv.BGE:
		t, ft := int(i.Target), pc+1
		return func() int {
			if *a >= *b {
				return t
			}
			return ft
		}
	case riscv.BLTU:
		t, ft := int(i.Target), pc+1
		return func() int {
			if uint64(*a) < uint64(*b) {
				return t
			}
			return ft
		}
	case riscv.BGEU:
		t, ft := int(i.Target), pc+1
		return func() int {
			if uint64(*a) >= uint64(*b) {
				return t
			}
			return ft
		}
	case riscv.JAL:
		t := int(i.Target)
		return func() int { return t }
	}

	// Straight-line op: execute, then call straight into the successor's
	// closure. Each closure's call site has exactly one target (the chain
	// is fixed at compile time), so the indirect calls predict perfectly —
	// the property the whole scheme's speed rests on. At the end of the
	// run the continuation just returns the fall-through pc.
	var next opFn
	if last {
		ft := pc + 1
		next = func() int { return ft }
	} else {
		next = c.ops[pc+1]
	}
	switch i.Op {
	case riscv.NOP:
		return next
	case riscv.ADD:
		return func() int { *d = *a + *b; return next() }
	case riscv.SUB:
		return func() int { *d = *a - *b; return next() }
	case riscv.MUL:
		return func() int { *d = *a * *b; return next() }
	case riscv.DIVU:
		return func() int {
			if *b == 0 {
				*d = -1
			} else {
				*d = int64(uint64(*a) / uint64(*b))
			}
			return next()
		}
	case riscv.REMU:
		return func() int {
			if *b == 0 {
				*d = *a
			} else {
				*d = int64(uint64(*a) % uint64(*b))
			}
			return next()
		}
	case riscv.AND:
		return func() int { *d = *a & *b; return next() }
	case riscv.OR:
		return func() int { *d = *a | *b; return next() }
	case riscv.XOR:
		return func() int { *d = *a ^ *b; return next() }
	case riscv.SLL:
		return func() int { *d = *a << (uint64(*b) & 63); return next() }
	case riscv.SRL:
		return func() int { *d = int64(uint64(*a) >> (uint64(*b) & 63)); return next() }
	case riscv.SLT:
		return func() int { *d = boolToInt(*a < *b); return next() }
	case riscv.SLTU:
		return func() int { *d = boolToInt(uint64(*a) < uint64(*b)); return next() }
	case riscv.ADDI:
		return func() int { *d = *a + imm; return next() }
	case riscv.ANDI:
		return func() int { *d = *a & imm; return next() }
	case riscv.ORI:
		return func() int { *d = *a | imm; return next() }
	case riscv.XORI:
		return func() int { *d = *a ^ imm; return next() }
	case riscv.SLLI:
		sh := uint64(imm) & 63
		return func() int { *d = *a << sh; return next() }
	case riscv.SRLI:
		sh := uint64(imm) & 63
		return func() int { *d = int64(uint64(*a) >> sh); return next() }
	case riscv.SLTIU:
		u := uint64(imm)
		return func() int { *d = boolToInt(uint64(*a) < u); return next() }
	case riscv.LI:
		return func() int { *d = imm; return next() }
	case riscv.LB:
		return func() int { *d = int64(int8(m.Read8(uint64(*a + imm)))); return next() }
	case riscv.LH:
		return func() int { *d = int64(int16(m.Read16(uint64(*a + imm)))); return next() }
	case riscv.LW:
		return func() int { *d = int64(int32(m.Read32(uint64(*a + imm)))); return next() }
	case riscv.LD:
		return func() int { *d = int64(m.Read64(uint64(*a + imm))); return next() }
	case riscv.SB:
		return func() int { m.Write8(uint64(*a+imm), uint8(*b)); return next() }
	case riscv.SH:
		return func() int { m.Write16(uint64(*a+imm), uint16(*b)); return next() }
	case riscv.SW:
		return func() int { m.Write32(uint64(*a+imm), uint32(*b)); return next() }
	case riscv.SD:
		return func() int { m.Write64(uint64(*a+imm), uint64(*b)); return next() }
	}
	// Unreachable: riscv.Decode only marks batchable plain opcodes with a
	// nonzero BlockLen, and every such opcode is lowered above.
	panic(fmt.Sprintf("sim: cannot lower opcode %s", i.Op))
}

// RunCompiled executes a compiled program. Like Run, each call starts from
// a clean clock, counters and trace; on error, Cycles reflects the time
// reached. The program must have been compiled by this machine against its
// current memory.
//
//cwlint:hotpath
func (mc *Machine) RunCompiled(c *Compiled) error {
	if c.mc != mc {
		return fmt.Errorf("sim: compiled program is bound to a different machine")
	}
	if c.mem != mc.Mem {
		return fmt.Errorf("sim: compiled program is bound to a different memory")
	}
	if name := mc.Cost.Name(); c.costName != name {
		return fmt.Errorf("sim: program compiled for cost model %q cannot run on %q", c.costName, name)
	}
	mc.reset()
	limit := mc.MaxInstrs
	if limit == 0 {
		limit = 1 << 31
	}
	code := c.code
	ops := c.ops
	pc := 0
	for {
		if pc < 0 || pc >= len(code) {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: pc %d out of range (program has %d instructions)", pc, len(code))
		}
		ins := &code[pc]

		// Fast path: account the whole straight-line block in O(1) — the
		// same delta the fast engine applies — then run the closure chain.
		// The limit guard keeps instruction-limit errors at exactly the
		// reference engine's instruction boundary by diverting straddling
		// blocks to the per-instruction path below.
		if n := uint64(ins.BlockLen); n > 0 && mc.HostInstrs+n <= limit {
			cyc := ins.BlockCycles
			mc.HostInstrs += n
			mc.HostCycles += cyc
			mc.CalcCycles += cyc
			mc.record(SegHostExec, mc.now, mc.now+cyc)
			mc.now += cyc
			pc = ops[pc]()
			continue
		}

		if ins.Op == riscv.HALT {
			// Drain the accelerator so total cycles include the tail; the
			// drain is not a configuration-interface stall, so it does not
			// count toward StallCycles.
			if mc.now < mc.busyUntil {
				mc.record(SegHostStall, mc.now, mc.busyUntil)
				mc.now = mc.busyUntil
			}
			mc.Cycles = mc.now
			return nil
		}
		if mc.HostInstrs >= limit {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", limit)
		}

		switch ins.Op {
		case riscv.CUSTOM:
			if err := mc.custom(ins.Funct7, ins.Class, ins.Cost, mc.Regs[ins.Rs1], mc.Regs[ins.Rs2]); err != nil {
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
			}
			pc++
		case riscv.CSRRW:
			if err := mc.csrWrite(uint32(ins.Imm), ins.Class, ins.Cost, mc.Regs[ins.Rs1]); err != nil {
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
			}
			pc++
		case riscv.CSRRS:
			if err := mc.csrRead(uint32(ins.Imm), ins.Rd, ins.Class, ins.Cost); err != nil {
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
			}
			pc++
		default:
			if !riscv.PlainOp(ins.Op) {
				// Unknown opcode: same failure as the reference engine.
				mc.Cycles = mc.now
				return fmt.Errorf("sim: at pc %d (%s): unimplemented opcode %s", pc, ins, ins.Op)
			}
			// Plain instruction outside a batch: either its class needs a
			// dedicated counter (ClassSync busy-poll branches) or the block
			// would straddle the instruction limit. Execute one at a time
			// with full per-instruction accounting.
			mc.charge(ins.Class, ins.Cost, SegHostExec)
			if mc.execPlain(ins) {
				pc = int(ins.Target)
			} else {
				pc++
			}
		}
	}
}
