package sim_test

// Simulator-engine micro-benchmarks: the same program measured on the
// reference interpreter and the predecoded fast engine, reporting
// simulated host instructions per second. These isolate interpreter
// throughput — the ceiling on every figure sweep and fuzz campaign — from
// compile and accelerator-model cost. CI runs them (with -benchtime=1x)
// in the bench job next to the figure benchmarks; compare engines with
//
//	go test -bench 'Sim_.*Engine' -benchtime 2s ./internal/sim | benchstat ...

import (
	"testing"

	"configwall/internal/accel"
	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

// buildALULoop is the block-batching best case: a loop whose body is a
// long straight line of ALU work (the shape of the paper's address/field
// calculation code between configuration writes).
func buildALULoop(iters int64) *riscv.Program {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: iters})
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 0x12345})
	a.Label("top")
	for i := 0; i < 4; i++ {
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 5, Imm: 17})
		a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 7, Rs1: 6, Imm: 3})
		a.Emit(riscv.Instr{Op: riscv.XOR, Rd: 8, Rs1: 7, Rs2: 5})
		a.Emit(riscv.Instr{Op: riscv.MUL, Rd: 9, Rs1: 8, Rs2: 6})
		a.Emit(riscv.Instr{Op: riscv.AND, Rd: 5, Rs1: 9, Rs2: 8})
		a.Emit(riscv.Instr{Op: riscv.SRLI, Rd: 5, Rs1: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.OR, Rd: 5, Rs1: 5, Rs2: 6})
	}
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

// buildMemLoop mixes loads and stores into the blocks (the memory-fast-path
// case).
func buildMemLoop(iters int64) *riscv.Program {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: iters})
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 10, Imm: 0x1000})
	a.Label("top")
	for i := int64(0); i < 4; i++ {
		a.Emit(riscv.Instr{Op: riscv.LD, Rd: 5, Rs1: 10, Imm: 8 * i})
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.SD, Rs1: 10, Rs2: 5, Imm: 8 * i})
		a.Emit(riscv.Instr{Op: riscv.LW, Rd: 6, Rs1: 10, Imm: 4 * i})
	}
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

// buildConfigLoop interleaves device configuration writes with short
// calculation bursts (the configuration-wall shape itself: blocks are
// small and device ops frequent, the fast engine's worst case).
func buildConfigLoop(iters int64) *riscv.Program {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: iters})
	a.Label("top")
	for f := uint32(1); f <= 4; f++ {
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 28, Imm: int64(f)})
		a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 6, Rs1: 6, Imm: 4})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: f, Rs1: 6, Rs2: 6, Class: riscv.ClassConfig})
	}
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

// benchDevice accepts any funct7 as a non-launch staging write.
type benchDevice struct{}

func (benchDevice) Name() string                       { return "bench" }
func (benchDevice) Scheme() accel.Scheme               { return accel.Concurrent }
func (benchDevice) WriteConfig(uint32, uint64, uint64) {}
func (benchDevice) ConfigBytes(uint32) uint64          { return 16 }
func (benchDevice) IsLaunch(uint32) bool               { return false }
func (benchDevice) IsFence(uint32) bool                { return false }
func (benchDevice) StatusID() (uint32, bool)           { return 0, false }
func (benchDevice) Launch(*mem.Memory) (accel.Launch, error) {
	return accel.Launch{}, nil
}

func benchEngine(b *testing.B, engine sim.Engine, p *riscv.Program, dev accel.Device) {
	mc := sim.NewMachine(mem.New(1<<16), riscv.RocketCost(), dev)
	mc.Engine = engine
	mc.MaxInstrs = 1 << 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(mc.HostInstrs)*float64(b.N)/secs, "instrs/sec")
	}
}

const benchIters = 20_000

func BenchmarkSim_RefEngine_ALU(b *testing.B) {
	benchEngine(b, sim.EngineRef, buildALULoop(benchIters), nil)
}
func BenchmarkSim_FastEngine_ALU(b *testing.B) {
	benchEngine(b, sim.EngineFast, buildALULoop(benchIters), nil)
}
func BenchmarkSim_CompiledEngine_ALU(b *testing.B) {
	benchEngine(b, sim.EngineCompiled, buildALULoop(benchIters), nil)
}
func BenchmarkSim_RefEngine_Mem(b *testing.B) {
	benchEngine(b, sim.EngineRef, buildMemLoop(benchIters), nil)
}
func BenchmarkSim_FastEngine_Mem(b *testing.B) {
	benchEngine(b, sim.EngineFast, buildMemLoop(benchIters), nil)
}
func BenchmarkSim_CompiledEngine_Mem(b *testing.B) {
	benchEngine(b, sim.EngineCompiled, buildMemLoop(benchIters), nil)
}
func BenchmarkSim_RefEngine_Config(b *testing.B) {
	benchEngine(b, sim.EngineRef, buildConfigLoop(benchIters), benchDevice{})
}
func BenchmarkSim_FastEngine_Config(b *testing.B) {
	benchEngine(b, sim.EngineFast, buildConfigLoop(benchIters), benchDevice{})
}
func BenchmarkSim_CompiledEngine_Config(b *testing.B) {
	benchEngine(b, sim.EngineCompiled, buildConfigLoop(benchIters), benchDevice{})
}

// BenchmarkSim_Decode isolates predecode cost (paid once per Run on the
// fast path) to show it is negligible against execution.
func BenchmarkSim_Decode(b *testing.B) {
	p := buildALULoop(benchIters)
	cost := riscv.RocketCost()
	for i := 0; i < b.N; i++ {
		_ = riscv.Decode(p, cost)
	}
	b.ReportMetric(float64(len(p.Instrs)), "static_instrs")
}
