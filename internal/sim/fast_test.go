package sim_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"configwall/internal/accel"
	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

// runBoth executes the same program on every engine with identical fresh
// state (memory, device, registers) and asserts that every observable —
// error, registers, counters, memory image, and the recorded trace
// segment-for-segment — is identical to the reference engine's. It returns
// the reference machine for extra assertions.
func runBoth(t *testing.T, makeDev func() accel.Device, maxInstrs uint64, setup func(*sim.Machine), p *riscv.Program) *sim.Machine {
	t.Helper()
	machines := make(map[sim.Engine]*sim.Machine)
	errs := make(map[sim.Engine]error)
	mems := make(map[sim.Engine]*mem.Memory)
	for _, eng := range sim.Engines {
		m := mem.New(1 << 16)
		var dev accel.Device
		if makeDev != nil {
			dev = makeDev()
		}
		mc := sim.NewMachine(m, riscv.FlatCost{PerInstr: 2, ModelName: "unit2"}, dev)
		mc.Engine = eng
		mc.RecordTrace = true
		mc.MaxInstrs = maxInstrs
		if setup != nil {
			setup(mc)
		}
		errs[eng] = mc.Run(p)
		machines[eng] = mc
		mems[eng] = m
	}
	ref, refErr := machines[sim.EngineRef], errs[sim.EngineRef]
	size := uint64(mems[sim.EngineRef].Size())
	refMem := mems[sim.EngineRef].Snapshot(0, size)
	for _, eng := range sim.Engines {
		if eng == sim.EngineRef {
			continue
		}
		got, gotErr := machines[eng], errs[eng]
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("engines disagree on failure: ref=%v %s=%v", refErr, eng, gotErr)
		}
		if refErr != nil && refErr.Error() != gotErr.Error() {
			t.Errorf("error text differs:\nref: %v\n%s: %v", refErr, eng, gotErr)
		}
		if ref.Counters != got.Counters {
			t.Errorf("counters differ:\nref: %+v\n%s: %+v", ref.Counters, eng, got.Counters)
		}
		if ref.Regs != got.Regs {
			t.Errorf("registers differ:\nref: %v\n%s: %v", ref.Regs, eng, got.Regs)
		}
		if !reflect.DeepEqual(ref.Trace, got.Trace) {
			t.Errorf("traces differ:\nref: %+v\n%s: %+v", ref.Trace, eng, got.Trace)
		}
		gotMem := mems[eng].Snapshot(0, size)
		if !reflect.DeepEqual(refMem, gotMem) {
			for i := range refMem {
				if refMem[i] != gotMem[i] {
					t.Errorf("memory differs at %#x: ref %#02x %s %#02x", i, refMem[i], eng, gotMem[i])
					break
				}
			}
		}
	}
	return ref
}

func TestEngineEquivalence(t *testing.T) {
	seqDev := func() accel.Device {
		return &fakeDevice{scheme: accel.Sequential, busyCycles: 37, opsPerLaunch: 64}
	}
	concDev := func() accel.Device {
		return &fakeDevice{scheme: accel.Concurrent, busyCycles: 41, opsPerLaunch: 16}
	}
	cases := []struct {
		name  string
		dev   func() accel.Device
		limit uint64
		build func(a *riscv.Assembler)
	}{
		{name: "alu and memory block", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 21})
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 6, Imm: -3})
			a.Emit(riscv.Instr{Op: riscv.MUL, Rd: 7, Rs1: 5, Rs2: 6})
			a.Emit(riscv.Instr{Op: riscv.SUB, Rd: 8, Rs1: 7, Rs2: 5})
			a.Emit(riscv.Instr{Op: riscv.DIVU, Rd: 9, Rs1: 8, Rs2: 6})
			a.Emit(riscv.Instr{Op: riscv.REMU, Rd: 10, Rs1: 8, Rs2: 0}) // div by zero path
			a.Emit(riscv.Instr{Op: riscv.SLL, Rd: 11, Rs1: 5, Rs2: 6})
			a.Emit(riscv.Instr{Op: riscv.SRLI, Rd: 12, Rs1: 11, Imm: 3})
			a.Emit(riscv.Instr{Op: riscv.SLTIU, Rd: 13, Rs1: 6, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 14, Imm: 0x200})
			a.Emit(riscv.Instr{Op: riscv.SD, Rs1: 14, Rs2: 7, Imm: 8})
			a.Emit(riscv.Instr{Op: riscv.LW, Rd: 15, Rs1: 14, Imm: 8})
			a.Emit(riscv.Instr{Op: riscv.SB, Rs1: 14, Rs2: 5, Imm: 40})
			a.Emit(riscv.Instr{Op: riscv.LB, Rd: 16, Rs1: 14, Imm: 40})
		}},
		{name: "branch loop", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 0})
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 6, Imm: 57})
			a.Label("loop")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.XORI, Rd: 7, Rs1: 5, Imm: 0x55})
			a.Emit(riscv.Instr{Op: riscv.BLT, Rs1: 5, Rs2: 6, Label: "loop"})
		}},
		{name: "branch into block interior", build: func(a *riscv.Assembler) {
			// The jump lands mid-run: the fast engine must batch the
			// *suffix* starting at the landing pc, not the whole block.
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 3})
			a.Emit(riscv.Instr{Op: riscv.JAL, Label: "mid"})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 100}) // skipped
			a.Label("mid")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 7})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 5, Imm: 1})
		}},
		{name: "sequential device stalls", dev: seqDev, build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1, Class: riscv.ClassConfig})
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig}) // launch
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 2, Class: riscv.ClassConfig})  // stalls
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 100, Class: riscv.ClassSync})  // fence
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 9})
		}},
		{name: "concurrent device and poll loop", dev: concDev, build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 3, Class: riscv.ClassConfig}) // staged
			a.Label("poll")
			a.Emit(riscv.Instr{Op: riscv.CSRRS, Rd: 5, Imm: 0x3cc, Class: riscv.ClassSync})
			a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 5, Rs2: 0, Label: "poll", Class: riscv.ClassSync})
			a.Emit(riscv.Instr{Op: riscv.CSRRW, Rs1: 5, Imm: 0x3c1, Class: riscv.ClassConfig})
		}},
		{name: "back to back launches", dev: concDev, build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig}) // waits
		}},
		{name: "instruction limit inside block", limit: 10, build: func(a *riscv.Assembler) {
			a.Label("forever")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 6, Imm: 2})
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 7, Rs1: 7, Imm: 3})
			a.Emit(riscv.Instr{Op: riscv.JAL, Label: "forever"})
		}},
		{name: "limit exactly at block boundary", limit: 8, build: func(a *riscv.Assembler) {
			a.Label("forever")
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.JAL, Label: "forever"})
		}},
		{name: "device op with no device errors", build: func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1, Class: riscv.ClassConfig})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := assemble(t, tc.build)
			runBoth(t, tc.dev, tc.limit, nil, p)
		})
	}
}

// TestEngineEquivalenceRunawayPC: a program without HALT must fail
// identically on both engines.
func TestEngineEquivalenceRunawayPC(t *testing.T) {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, nil, 0, nil, p)
}

// TestFastEngineRegisterSetup: pre-set registers (the engine ABI: buffer
// bases, SP) must flow into the fast engine identically.
func TestFastEngineRegisterSetup(t *testing.T) {
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LD, Rd: 5, Rs1: riscv.A0, Imm: 0})
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.SD, Rs1: riscv.A0, Rs2: 6, Imm: 8})
	})
	ref := runBoth(t, nil, 0, func(mc *sim.Machine) {
		mc.Regs[riscv.A0] = 0x400
		mc.Mem.Write64(0x400, 41)
		mc.Mem.ResetCounters()
	}, p)
	if ref.Regs[6] != 42 {
		t.Errorf("x6 = %d, want 42", ref.Regs[6])
	}
}

// TestRunDecodedRejectsForeignCostModel: a program decoded under one cost
// model must not silently run with another's timing.
func TestRunDecodedRejectsForeignCostModel(t *testing.T) {
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.NOP})
	})
	d := riscv.Decode(p, riscv.RocketCost())
	mc := newMachine(nil) // FlatCost "unit"
	err := mc.RunDecoded(d)
	if err == nil || !strings.Contains(err.Error(), "cost model") {
		t.Fatalf("want cost-model mismatch error, got %v", err)
	}
}

func TestEngineByName(t *testing.T) {
	for _, eng := range sim.Engines {
		got, err := sim.EngineByName(eng.String())
		if err != nil || got != eng {
			t.Errorf("EngineByName(%q) = %v, %v", eng.String(), got, err)
		}
	}
	if _, err := sim.EngineByName("turbo"); err == nil {
		t.Error("EngineByName must reject unknown engines")
	}
}

// TestEngineEquivalenceRandomPrograms drives both engines over seeded
// pseudo-random straight-line-plus-loop programs — a cheap in-package
// differential smoke below the full irgen/difftest oracle.
func TestEngineEquivalenceRandomPrograms(t *testing.T) {
	ops := []riscv.Opcode{
		riscv.ADD, riscv.SUB, riscv.MUL, riscv.AND, riscv.OR, riscv.XOR,
		riscv.SLL, riscv.SRL, riscv.SLT, riscv.SLTU, riscv.ADDI, riscv.ANDI,
		riscv.ORI, riscv.XORI, riscv.SLLI, riscv.SRLI, riscv.SLTIU, riscv.LI,
		riscv.DIVU, riscv.REMU, riscv.NOP,
	}
	// xorshift keeps the test dependency-free and deterministic.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for prog := 0; prog < 25; prog++ {
		p := assemble(t, func(a *riscv.Assembler) {
			// Bounded loop scaffold around a random body.
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: int64(2 + next(6))})
			a.Label("top")
			for i := 0; i < 4+next(20); i++ {
				op := ops[next(len(ops))]
				a.Emit(riscv.Instr{
					Op:  op,
					Rd:  riscv.Reg(next(16)),
					Rs1: riscv.Reg(next(16)),
					Rs2: riscv.Reg(next(16)),
					Imm: int64(next(256) - 128),
				})
				if next(5) == 0 {
					base := riscv.Reg(29)
					a.Emit(riscv.Instr{Op: riscv.LI, Rd: base, Imm: int64(0x100 + 8*next(64))})
					a.Emit(riscv.Instr{Op: riscv.SD, Rs1: base, Rs2: riscv.Reg(next(16)), Imm: 0})
					a.Emit(riscv.Instr{Op: riscv.LD, Rd: riscv.Reg(next(16)), Rs1: base, Imm: 0})
				}
			}
			a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
			a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
		})
		t.Run(fmt.Sprintf("prog%02d", prog), func(t *testing.T) {
			runBoth(t, nil, 0, nil, p)
		})
	}
}
