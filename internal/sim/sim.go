// Package sim is the co-simulator: it executes host RV64-subset programs
// with a pluggable cycle cost model, coupled to one accelerator device. It
// reproduces the timing structure the paper analyses — host configuration
// time, host/accelerator stalls, and the sequential-vs-concurrent
// configuration schemes — and exposes the counters the configuration
// roofline needs (configuration bytes, setup vs calculation cycles,
// accelerator ops and busy cycles).
package sim

import (
	"fmt"
	"strings"

	"configwall/internal/accel"
	"configwall/internal/mem"
	"configwall/internal/riscv"
)

// Counters aggregates the measurements of one simulation run.
type Counters struct {
	// Cycles is the total wall-clock duration of the run.
	Cycles uint64
	// HostInstrs counts executed host instructions.
	HostInstrs uint64
	// HostCycles counts cycles the host spent executing instructions.
	HostCycles uint64
	// StallCycles counts cycles the host was blocked on the accelerator
	// (sequential-configuration stalls and launch-while-busy waits).
	StallCycles uint64
	// ConfigInstrs counts configuration-interface writes.
	ConfigInstrs uint64
	// ConfigBytes counts configuration bytes transferred (paper's
	// N_config_bytes).
	ConfigBytes uint64
	// ConfigCycles counts host cycles on configuration writes (T_set).
	ConfigCycles uint64
	// SyncCycles counts host cycles on fences and busy polls.
	SyncCycles uint64
	// CalcCycles counts all remaining host cycles (the paper's T_calc:
	// parameter calculation, loop control, addressing).
	CalcCycles uint64
	// AccelOps counts useful accelerator operations performed.
	AccelOps uint64
	// AccelBusyCycles counts cycles the accelerator was computing.
	AccelBusyCycles uint64
	// Launches counts accelerator launches.
	Launches uint64
}

// OpsPerCycle returns the measured performance P = ops / total cycles.
func (c Counters) OpsPerCycle() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.AccelOps) / float64(c.Cycles)
}

// MeasuredIOC returns the measured operation-to-configuration intensity
// I_OC = ops / configuration bytes (paper §4.2).
func (c Counters) MeasuredIOC() float64 {
	if c.ConfigBytes == 0 {
		return 0
	}
	return float64(c.AccelOps) / float64(c.ConfigBytes)
}

// EffectiveConfigBW returns the measured effective configuration bandwidth
// BW_Config,Eff = bytes / (T_calc + T_set) (paper Eq. 4).
func (c Counters) EffectiveConfigBW() float64 {
	t := c.CalcCycles + c.ConfigCycles
	if t == 0 {
		return 0
	}
	return float64(c.ConfigBytes) / float64(t)
}

// RawConfigBW returns the measured raw configuration bandwidth
// BW_Config = bytes / T_set.
func (c Counters) RawConfigBW() float64 {
	if c.ConfigCycles == 0 {
		return 0
	}
	return float64(c.ConfigBytes) / float64(c.ConfigCycles)
}

// SegmentKind labels a timeline segment for trace rendering (Figure 7).
type SegmentKind uint8

// Timeline segment kinds.
const (
	SegHostExec SegmentKind = iota
	SegHostConfig
	SegHostStall
	SegAccelBusy
)

// Segment is one contiguous activity interval.
type Segment struct {
	Kind  SegmentKind
	Start uint64
	End   uint64
}

// Engine selects a Machine execution engine. All engines implement the
// same architectural and timing semantics and are continuously
// cross-checked by the differential oracle (internal/difftest); they
// differ only in how much work the hot loop does per executed instruction.
type Engine uint8

// Execution engines.
const (
	// EngineRef is the reference interpreter: one instruction at a time,
	// cost model consulted per instruction. It is the semantics baseline
	// the other engines are verified against.
	EngineRef Engine = iota
	// EngineFast executes a predecoded program form (riscv.Decode):
	// pre-resolved branch targets, prefetched cycle costs, and
	// basic-block-batched counter/trace accounting.
	EngineFast
	// EngineCompiled executes a closure-compiled form (Machine.Compile):
	// each maximal straight-line block is lowered to a chain of per-op
	// closures with pre-resolved register pointers, immediates and branch
	// targets, so steady-state execution runs closure-to-closure with no
	// per-instruction dispatch switch (see compiled.go).
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineCompiled:
		return "compiled"
	}
	return "ref"
}

// EngineByName parses an engine name ("ref", "fast" or "compiled").
func EngineByName(name string) (Engine, error) {
	switch name {
	case "ref":
		return EngineRef, nil
	case "fast":
		return EngineFast, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return EngineRef, fmt.Errorf("sim: unknown engine %q (valid engines: %s)", name, strings.Join(EngineNames(), ", "))
}

// Engines lists the available engines.
var Engines = []Engine{EngineRef, EngineFast, EngineCompiled}

// EngineNames lists the parseable engine names in Engines order; commands
// use it to build flag usage text and fail-fast error listings.
func EngineNames() []string {
	names := make([]string, len(Engines))
	for i, e := range Engines {
		names[i] = e.String()
	}
	return names
}

// Machine couples one host with one accelerator device over shared memory.
type Machine struct {
	Mem    *mem.Memory
	Cost   riscv.CostModel
	Device accel.Device

	// Engine selects the execution engine used by Run (default EngineRef).
	Engine Engine

	// Regs is the architectural register file; Regs[0] stays zero.
	Regs [riscv.NumRegs]int64

	// MaxInstrs bounds execution to catch runaway programs; 0 means the
	// default of 2^31 instructions.
	MaxInstrs uint64

	// RecordTrace enables timeline capture into Trace.
	RecordTrace bool
	Trace       []Segment

	Counters

	now       uint64
	busyUntil uint64
	lastJob   accel.Launch

	// compiled memoizes the EngineCompiled lowering of the last program Run
	// executed, so repeated runs of the same (unmutated) program skip
	// decode and compile — the decode-once-run-many contract sweeps rely
	// on. Invalidated when the program pointer, memory or cost model
	// changes.
	compiled     *Compiled
	compiledProg *riscv.Program
}

// NewMachine builds a machine around the given memory, cost model and
// device.
func NewMachine(m *mem.Memory, cost riscv.CostModel, dev accel.Device) *Machine {
	return &Machine{Mem: m, Cost: cost, Device: dev}
}

// Now returns the current simulation time in cycles.
func (mc *Machine) Now() uint64 { return mc.now }

func (mc *Machine) record(kind SegmentKind, start, end uint64) {
	if !mc.RecordTrace || end <= start {
		return
	}
	// Coalesce with the previous segment when contiguous and same kind.
	if n := len(mc.Trace); n > 0 {
		last := &mc.Trace[n-1]
		if last.Kind == kind && last.End == start {
			last.End = end
			return
		}
	}
	mc.Trace = append(mc.Trace, Segment{Kind: kind, Start: start, End: end})
}

// stallUntilIdle advances time to the accelerator's completion.
func (mc *Machine) stallUntilIdle() {
	if mc.now < mc.busyUntil {
		mc.record(SegHostStall, mc.now, mc.busyUntil)
		mc.StallCycles += mc.busyUntil - mc.now
		mc.now = mc.busyUntil
	}
}

// reset clears all per-run state so a Machine can execute consecutive
// programs without the first run's clock, counters or trace leaking into
// the second's measurements. Registers are kept: callers set up arguments
// before Run, and register contents carry no timing state. The trace is
// truncated, not released, so a reused Machine (or a pooled trace buffer
// assigned to mc.Trace before Run) records into its existing capacity —
// callers that keep a run's trace beyond the next Run must copy it out.
func (mc *Machine) reset() {
	mc.Counters = Counters{}
	mc.Trace = mc.Trace[:0]
	mc.now = 0
	mc.busyUntil = 0
	mc.lastJob = accel.Launch{}
}

// Run executes the program from instruction 0 until HALT on the selected
// Engine. Each call starts from a clean clock, counters and trace, so
// reusing a Machine is safe; on error, Cycles still reflects the time
// reached so partial runs are not reported as zero-cycle.
func (mc *Machine) Run(p *riscv.Program) error {
	switch mc.Engine {
	case EngineFast:
		return mc.RunDecoded(riscv.Decode(p, mc.Cost))
	case EngineCompiled:
		c := mc.compiled
		if c == nil || mc.compiledProg != p || c.mem != mc.Mem || c.costName != mc.Cost.Name() {
			var err error
			c, err = mc.Compile(riscv.Decode(p, mc.Cost))
			if err != nil {
				return err
			}
			mc.compiled, mc.compiledProg = c, p
		}
		return mc.RunCompiled(c)
	}
	return mc.runRef(p)
}

// runRef is the reference interpreter loop.
func (mc *Machine) runRef(p *riscv.Program) error {
	mc.reset()
	limit := mc.MaxInstrs
	if limit == 0 {
		limit = 1 << 31
	}
	pc := 0
	for {
		if pc < 0 || pc >= len(p.Instrs) {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: pc %d out of range (program has %d instructions)", pc, len(p.Instrs))
		}
		ins := p.Instrs[pc]
		if ins.Op == riscv.HALT {
			// Drain the accelerator so total cycles include the tail; the
			// drain is not a configuration-interface stall, so it does not
			// count toward StallCycles.
			if mc.now < mc.busyUntil {
				mc.record(SegHostStall, mc.now, mc.busyUntil)
				mc.now = mc.busyUntil
			}
			mc.Cycles = mc.now
			return nil
		}
		if mc.HostInstrs >= limit {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", limit)
		}
		next, err := mc.step(p, pc, ins)
		if err != nil {
			mc.Cycles = mc.now
			return fmt.Errorf("sim: at pc %d (%s): %w", pc, ins, err)
		}
		pc = next
	}
}

// charge accounts one instruction at the *current* time — stalls may have
// advanced the clock before the instruction issues. It is the closure-free
// shared accounting primitive of both engines (the fast engine calls it
// only off the batched path: device ops and limit-straddling block tails).
func (mc *Machine) charge(class riscv.Class, cost uint64, kind SegmentKind) {
	start := mc.now
	mc.HostInstrs++
	mc.HostCycles += cost
	switch class {
	case riscv.ClassConfig:
		mc.ConfigCycles += cost
	case riscv.ClassSync:
		mc.SyncCycles += cost
	default:
		mc.CalcCycles += cost
	}
	mc.record(kind, start, start+cost)
	mc.now = start + cost
}

// setRd writes the destination register, keeping x0 hard-wired to zero.
func (mc *Machine) setRd(rd riscv.Reg, v int64) {
	if rd != 0 {
		mc.Regs[rd] = v
	}
}

func (mc *Machine) step(p *riscv.Program, pc int, ins riscv.Instr) (int, error) {
	cost := mc.Cost.Cycles(ins)

	charge := func(kind SegmentKind) { mc.charge(ins.Class, cost, kind) }

	rs1 := mc.Regs[ins.Rs1]
	rs2 := mc.Regs[ins.Rs2]
	setRd := func(v int64) { mc.setRd(ins.Rd, v) }

	switch ins.Op {
	case riscv.NOP:
		charge(SegHostExec)
	case riscv.ADD:
		setRd(rs1 + rs2)
		charge(SegHostExec)
	case riscv.SUB:
		setRd(rs1 - rs2)
		charge(SegHostExec)
	case riscv.MUL:
		setRd(rs1 * rs2)
		charge(SegHostExec)
	case riscv.DIVU:
		if rs2 == 0 {
			setRd(-1)
		} else {
			setRd(int64(uint64(rs1) / uint64(rs2)))
		}
		charge(SegHostExec)
	case riscv.REMU:
		if rs2 == 0 {
			setRd(rs1)
		} else {
			setRd(int64(uint64(rs1) % uint64(rs2)))
		}
		charge(SegHostExec)
	case riscv.AND:
		setRd(rs1 & rs2)
		charge(SegHostExec)
	case riscv.OR:
		setRd(rs1 | rs2)
		charge(SegHostExec)
	case riscv.XOR:
		setRd(rs1 ^ rs2)
		charge(SegHostExec)
	case riscv.SLL:
		setRd(rs1 << (uint64(rs2) & 63))
		charge(SegHostExec)
	case riscv.SRL:
		setRd(int64(uint64(rs1) >> (uint64(rs2) & 63)))
		charge(SegHostExec)
	case riscv.SLT:
		setRd(boolToInt(rs1 < rs2))
		charge(SegHostExec)
	case riscv.SLTU:
		setRd(boolToInt(uint64(rs1) < uint64(rs2)))
		charge(SegHostExec)
	case riscv.ADDI:
		setRd(rs1 + ins.Imm)
		charge(SegHostExec)
	case riscv.ANDI:
		setRd(rs1 & ins.Imm)
		charge(SegHostExec)
	case riscv.ORI:
		setRd(rs1 | ins.Imm)
		charge(SegHostExec)
	case riscv.XORI:
		setRd(rs1 ^ ins.Imm)
		charge(SegHostExec)
	case riscv.SLLI:
		setRd(rs1 << (uint64(ins.Imm) & 63))
		charge(SegHostExec)
	case riscv.SRLI:
		setRd(int64(uint64(rs1) >> (uint64(ins.Imm) & 63)))
		charge(SegHostExec)
	case riscv.SLTIU:
		setRd(boolToInt(uint64(rs1) < uint64(ins.Imm)))
		charge(SegHostExec)
	case riscv.LI:
		setRd(ins.Imm)
		charge(SegHostExec)
	case riscv.LB:
		setRd(mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 8))
		charge(SegHostExec)
	case riscv.LH:
		setRd(mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 16))
		charge(SegHostExec)
	case riscv.LW:
		setRd(mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 32))
		charge(SegHostExec)
	case riscv.LD:
		setRd(mc.Mem.ReadSigned(uint64(rs1+ins.Imm), 64))
		charge(SegHostExec)
	case riscv.SB:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 8, rs2)
		charge(SegHostExec)
	case riscv.SH:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 16, rs2)
		charge(SegHostExec)
	case riscv.SW:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 32, rs2)
		charge(SegHostExec)
	case riscv.SD:
		mc.Mem.WriteSigned(uint64(rs1+ins.Imm), 64, rs2)
		charge(SegHostExec)
	case riscv.BEQ:
		charge(SegHostExec)
		if rs1 == rs2 {
			return p.Targets[pc], nil
		}
	case riscv.BNE:
		charge(SegHostExec)
		if rs1 != rs2 {
			return p.Targets[pc], nil
		}
	case riscv.BLT:
		charge(SegHostExec)
		if rs1 < rs2 {
			return p.Targets[pc], nil
		}
	case riscv.BGE:
		charge(SegHostExec)
		if rs1 >= rs2 {
			return p.Targets[pc], nil
		}
	case riscv.BLTU:
		charge(SegHostExec)
		if uint64(rs1) < uint64(rs2) {
			return p.Targets[pc], nil
		}
	case riscv.BGEU:
		charge(SegHostExec)
		if uint64(rs1) >= uint64(rs2) {
			return p.Targets[pc], nil
		}
	case riscv.JAL:
		charge(SegHostExec)
		return p.Targets[pc], nil
	case riscv.CUSTOM:
		if err := mc.custom(ins.Funct7, ins.Class, cost, rs1, rs2); err != nil {
			return 0, err
		}
	case riscv.CSRRW:
		if err := mc.csrWrite(uint32(ins.Imm), ins.Class, cost, rs1); err != nil {
			return 0, err
		}
	case riscv.CSRRS:
		if err := mc.csrRead(uint32(ins.Imm), ins.Rd, ins.Class, cost); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("unimplemented opcode %s", ins.Op)
	}
	return pc + 1, nil
}

// custom dispatches a RoCC custom instruction to the device. It is shared
// by both engines: class and cost are the caller's predecoded (or
// freshly computed) accounting inputs.
func (mc *Machine) custom(funct7 uint32, class riscv.Class, cost uint64, rs1, rs2 int64) error {
	dev := mc.Device
	if dev == nil {
		return fmt.Errorf("custom instruction with no device attached")
	}
	if dev.IsFence(funct7) {
		mc.stallUntilIdle()
		mc.charge(class, cost, SegHostStall)
		return nil
	}
	// Sequential configuration: the accelerator cannot accept interface
	// traffic while running — the host stalls (paper §2.2).
	if dev.Scheme() == accel.Sequential {
		mc.stallUntilIdle()
	} else if dev.IsLaunch(funct7) {
		// Concurrent: only a launch has to wait for the previous job.
		mc.stallUntilIdle()
	}
	dev.WriteConfig(funct7, uint64(rs1), uint64(rs2))
	mc.ConfigInstrs++
	mc.ConfigBytes += dev.ConfigBytes(funct7)
	mc.charge(class, cost, SegHostConfig)
	if dev.IsLaunch(funct7) {
		return mc.launch()
	}
	return nil
}

// csrWrite dispatches a CSR write to the device (shared by both engines).
func (mc *Machine) csrWrite(addr uint32, class riscv.Class, cost uint64, value int64) error {
	dev := mc.Device
	if dev == nil {
		return fmt.Errorf("csr write with no device attached")
	}
	if dev.Scheme() == accel.Sequential || dev.IsLaunch(addr) {
		mc.stallUntilIdle()
	}
	dev.WriteConfig(addr, uint64(value), 0)
	mc.ConfigInstrs++
	mc.ConfigBytes += dev.ConfigBytes(addr)
	mc.charge(class, cost, SegHostConfig)
	if dev.IsLaunch(addr) {
		return mc.launch()
	}
	return nil
}

// csrRead handles status/perf CSR reads (shared by both engines).
func (mc *Machine) csrRead(addr uint32, rd riscv.Reg, class riscv.Class, cost uint64) error {
	dev := mc.Device
	if dev == nil {
		return fmt.Errorf("csr read with no device attached")
	}
	busy := int64(0)
	if mc.now < mc.busyUntil {
		busy = 1
	}
	if id, ok := dev.StatusID(); ok && addr == id {
		mc.setRd(rd, busy)
	} else {
		mc.setRd(rd, int64(mc.lastJob.Cycles))
	}
	// Busy polls are waiting, not useful work: paint them as stalls so
	// overlap accounting (Figure 7) only counts hidden *work*.
	mc.charge(class, cost, SegHostStall)
	return nil
}

// launch starts a job at the current time.
func (mc *Machine) launch() error {
	job, err := mc.Device.Launch(mc.Mem)
	if err != nil {
		return err
	}
	mc.lastJob = job
	mc.busyUntil = mc.now + job.Cycles
	mc.record(SegAccelBusy, mc.now, mc.busyUntil)
	mc.AccelOps += job.Ops
	mc.AccelBusyCycles += job.Cycles
	mc.Launches++
	return nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
