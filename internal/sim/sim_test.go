package sim_test

import (
	"strings"
	"testing"

	"configwall/internal/accel"
	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

// fakeDevice is a configurable test double: each launch takes busyCycles
// and performs opsPerLaunch ops.
type fakeDevice struct {
	scheme       accel.Scheme
	busyCycles   uint64
	opsPerLaunch uint64
	writes       []uint32
	launchErr    error
}

func (d *fakeDevice) Name() string              { return "fake" }
func (d *fakeDevice) Scheme() accel.Scheme      { return d.scheme }
func (d *fakeDevice) ConfigBytes(uint32) uint64 { return 16 }
func (d *fakeDevice) IsLaunch(id uint32) bool   { return id == 99 }
func (d *fakeDevice) IsFence(id uint32) bool    { return id == 100 }
func (d *fakeDevice) StatusID() (uint32, bool)  { return 0x3cc, true }
func (d *fakeDevice) WriteConfig(id uint32, lo, hi uint64) {
	d.writes = append(d.writes, id)
}
func (d *fakeDevice) Launch(*mem.Memory) (accel.Launch, error) {
	if d.launchErr != nil {
		return accel.Launch{}, d.launchErr
	}
	return accel.Launch{Ops: d.opsPerLaunch, Cycles: d.busyCycles}, nil
}

func newMachine(dev accel.Device) *sim.Machine {
	return sim.NewMachine(mem.New(1<<16), riscv.FlatCost{PerInstr: 1, ModelName: "unit"}, dev)
}

func assemble(t *testing.T, build func(*riscv.Assembler)) *riscv.Program {
	t.Helper()
	a := riscv.NewAssembler()
	build(a)
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestALUAndMemoryExecution(t *testing.T) {
	mc := newMachine(nil)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 21})
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 6, Imm: 2})
		a.Emit(riscv.Instr{Op: riscv.MUL, Rd: 7, Rs1: 5, Rs2: 6})
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 8, Imm: 0x100})
		a.Emit(riscv.Instr{Op: riscv.SD, Rs1: 8, Rs2: 7, Imm: 0})
		a.Emit(riscv.Instr{Op: riscv.LD, Rd: 9, Rs1: 8, Imm: 0})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[9] != 42 {
		t.Errorf("x9 = %d, want 42", mc.Regs[9])
	}
	if mc.HostInstrs != 6 {
		t.Errorf("HostInstrs = %d, want 6 (HALT not counted)", mc.HostInstrs)
	}
	if mc.Cycles != 6 {
		t.Errorf("Cycles = %d, want 6", mc.Cycles)
	}
}

func TestX0StaysZero(t *testing.T) {
	mc := newMachine(nil)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 0, Imm: 99})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[0] != 0 {
		t.Errorf("x0 = %d, want 0", mc.Regs[0])
	}
}

func TestBranchLoop(t *testing.T) {
	mc := newMachine(nil)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 0})
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 6, Imm: 10})
		a.Label("loop")
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.BLT, Rs1: 5, Rs2: 6, Label: "loop"})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[5] != 10 {
		t.Errorf("x5 = %d, want 10", mc.Regs[5])
	}
}

func TestSequentialConfigStallsWhileBusy(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Sequential, busyCycles: 100, opsPerLaunch: 1000}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		// Configure + launch, then immediately configure again: the second
		// write must stall until the accelerator finishes.
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1, Class: riscv.ClassConfig})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig}) // launch
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 2, Class: riscv.ClassConfig})  // stalls ~100
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.StallCycles < 90 {
		t.Errorf("StallCycles = %d, want ~100 (sequential scheme must stall)", mc.StallCycles)
	}
	if mc.Launches != 1 || mc.AccelOps != 1000 {
		t.Errorf("launches=%d ops=%d, want 1/1000", mc.Launches, mc.AccelOps)
	}
}

func TestConcurrentConfigDoesNotStall(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Concurrent, busyCycles: 100, opsPerLaunch: 1000}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1, Class: riscv.ClassConfig})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig}) // launch
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 2, Class: riscv.ClassConfig})  // staged, no stall
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 3, Class: riscv.ClassConfig})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.StallCycles != 0 {
		t.Errorf("StallCycles = %d, want 0 (concurrent scheme stages config)", mc.StallCycles)
	}
	// Total run still waits for the accelerator to drain at HALT.
	if mc.Cycles < 100 {
		t.Errorf("Cycles = %d, want >= 100 (drain at halt)", mc.Cycles)
	}
}

func TestLaunchWhileBusyWaitsEvenWhenConcurrent(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Concurrent, busyCycles: 50, opsPerLaunch: 10}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig}) // must wait ~50
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.StallCycles < 40 {
		t.Errorf("StallCycles = %d, want ~49 (second launch waits)", mc.StallCycles)
	}
	if mc.Launches != 2 {
		t.Errorf("Launches = %d, want 2", mc.Launches)
	}
}

func TestFenceBlocksUntilIdle(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Sequential, busyCycles: 77, opsPerLaunch: 1}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 100, Class: riscv.ClassSync}) // fence
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	// fence at t=1 waits 77 cycles, then the LI runs.
	if mc.Cycles < 78 {
		t.Errorf("Cycles = %d, want >= 78", mc.Cycles)
	}
}

func TestBusyPollLoop(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Concurrent, busyCycles: 40, opsPerLaunch: 1}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
		a.Label("poll")
		a.Emit(riscv.Instr{Op: riscv.CSRRS, Rd: 5, Imm: 0x3cc, Class: riscv.ClassSync})
		a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 5, Rs2: 0, Label: "poll", Class: riscv.ClassSync})
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 6, Imm: 7})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[5] != 0 {
		t.Errorf("final poll read %d, want 0 (idle)", mc.Regs[5])
	}
	if mc.Regs[6] != 7 {
		t.Error("code after poll loop did not execute")
	}
	if mc.Cycles < 40 {
		t.Errorf("Cycles = %d, want >= 40 (polled until idle)", mc.Cycles)
	}
	if mc.SyncCycles == 0 {
		t.Error("poll instructions must charge SyncCycles")
	}
}

func TestConfigCounters(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Concurrent, busyCycles: 5, opsPerLaunch: 1}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1, Class: riscv.ClassConfig})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 2, Class: riscv.ClassConfig})
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.ConfigInstrs != 3 {
		t.Errorf("ConfigInstrs = %d, want 3", mc.ConfigInstrs)
	}
	if mc.ConfigBytes != 48 {
		t.Errorf("ConfigBytes = %d, want 48", mc.ConfigBytes)
	}
	if mc.ConfigCycles != 3 {
		t.Errorf("ConfigCycles = %d, want 3", mc.ConfigCycles)
	}
	if mc.CalcCycles != 1 {
		t.Errorf("CalcCycles = %d, want 1", mc.CalcCycles)
	}
	if got := mc.Counters.MeasuredIOC(); got != 1.0/48.0 {
		t.Errorf("MeasuredIOC = %v", got)
	}
	if got := mc.Counters.EffectiveConfigBW(); got != 12 {
		t.Errorf("EffectiveConfigBW = %v, want 48/4", got)
	}
	if got := mc.Counters.RawConfigBW(); got != 16 {
		t.Errorf("RawConfigBW = %v, want 48/3", got)
	}
}

func TestTraceSegments(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Concurrent, busyCycles: 10, opsPerLaunch: 1}
	mc := newMachine(dev)
	mc.RecordTrace = true
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	kinds := map[sim.SegmentKind]bool{}
	for _, s := range mc.Trace {
		kinds[s.Kind] = true
		if s.End <= s.Start {
			t.Errorf("segment with non-positive duration: %+v", s)
		}
	}
	if !kinds[sim.SegHostExec] || !kinds[sim.SegHostConfig] || !kinds[sim.SegAccelBusy] {
		t.Errorf("missing segment kinds in trace: %+v", mc.Trace)
	}
}

func TestInstructionLimit(t *testing.T) {
	mc := newMachine(nil)
	mc.MaxInstrs = 100
	p := assemble(t, func(a *riscv.Assembler) {
		a.Label("forever")
		a.Emit(riscv.Instr{Op: riscv.JAL, Label: "forever"})
	})
	if err := mc.Run(p); err == nil {
		t.Error("expected instruction-limit error for infinite loop")
	}
}

func TestLaunchErrorPropagates(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Sequential, launchErr: accel.ErrBadConfig("fake", "boom")}
	mc := newMachine(dev)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
	})
	if err := mc.Run(p); err == nil {
		t.Error("expected launch error to propagate")
	}
}

func TestRunawayPCError(t *testing.T) {
	mc := newMachine(nil)
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.NOP})
	p, _ := a.Finish() // no HALT: pc runs off the end
	if err := mc.Run(p); err == nil {
		t.Error("expected pc-out-of-range error")
	}
}

// TestCSRReadNoDeviceErrors: a CSRRS with no device attached must surface
// an error like CUSTOM and CSRRW do, not dereference a nil Device.
func TestCSRReadNoDeviceErrors(t *testing.T) {
	mc := newMachine(nil)
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.CSRRS, Rd: 5, Imm: 0x3cc, Class: riscv.ClassSync})
	})
	err := mc.Run(p)
	if err == nil {
		t.Fatal("expected error for CSR read with no device attached")
	}
	if !strings.Contains(err.Error(), "no device") {
		t.Errorf("error %q does not mention the missing device", err)
	}
}

// TestMachineReuseResetsState: a second Run on the same machine must
// measure from a clean clock, counters and trace — nothing of the first
// run may accumulate into the second's measurements.
func TestMachineReuseResetsState(t *testing.T) {
	dev := &fakeDevice{scheme: accel.Sequential, busyCycles: 30, opsPerLaunch: 64}
	mc := newMachine(dev)
	mc.RecordTrace = true
	p := assemble(t, func(a *riscv.Assembler) {
		a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
	})
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	first := mc.Counters
	firstTrace := len(mc.Trace)
	if err := mc.Run(p); err != nil {
		t.Fatal(err)
	}
	if mc.Counters != first {
		t.Errorf("second run accumulated state:\nfirst:  %+v\nsecond: %+v", first, mc.Counters)
	}
	if len(mc.Trace) != firstTrace {
		t.Errorf("second run trace has %d segments, want %d (fresh trace)", len(mc.Trace), firstTrace)
	}
	for _, s := range mc.Trace {
		if s.Start > mc.Cycles || s.End > mc.Cycles {
			t.Errorf("second-run segment %+v exceeds run length %d (stale clock)", s, mc.Cycles)
		}
	}
}

// TestCyclesSetOnError: a run that fails mid-program must still report the
// simulated time it reached instead of leaving Cycles zero — downstream
// ops-per-cycle math treats 0 as "no data".
func TestCyclesSetOnError(t *testing.T) {
	t.Run("instruction limit", func(t *testing.T) {
		mc := newMachine(nil)
		mc.MaxInstrs = 50
		p := assemble(t, func(a *riscv.Assembler) {
			a.Label("forever")
			a.Emit(riscv.Instr{Op: riscv.JAL, Label: "forever"})
		})
		if err := mc.Run(p); err == nil {
			t.Fatal("expected instruction-limit error")
		}
		if mc.Cycles == 0 {
			t.Error("Cycles = 0 after limit error, want elapsed time")
		}
	})
	t.Run("launch failure", func(t *testing.T) {
		dev := &fakeDevice{scheme: accel.Sequential, launchErr: accel.ErrBadConfig("fake", "boom")}
		mc := newMachine(dev)
		p := assemble(t, func(a *riscv.Assembler) {
			a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})
			a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 99, Class: riscv.ClassConfig})
		})
		if err := mc.Run(p); err == nil {
			t.Fatal("expected launch error")
		}
		if mc.Cycles == 0 {
			t.Error("Cycles = 0 after launch error, want elapsed time")
		}
	})
	t.Run("pc out of range", func(t *testing.T) {
		mc := newMachine(nil)
		a := riscv.NewAssembler()
		a.Emit(riscv.Instr{Op: riscv.NOP})
		p, _ := a.Finish()
		if err := mc.Run(p); err == nil {
			t.Fatal("expected pc-out-of-range error")
		}
		if mc.Cycles == 0 {
			t.Error("Cycles = 0 after pc error, want elapsed time")
		}
	})
}
