package analytic

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"configwall/internal/core"
)

// The calibration grid simulates a couple hundred cells (~seconds), so
// every test shares one fitted model via this harness.
var (
	calOnce   sync.Once
	calRunner *core.Runner
	calModel  *Model
	calReport *Report
	calErr    error
)

func calibrated(t *testing.T) (*Model, *Report, *core.Runner) {
	t.Helper()
	calOnce.Do(func() {
		calRunner = core.NewRunner(0)
		calModel, calReport, calErr = Calibrate(context.Background(), calRunner, Spec{Seed: 1})
	})
	if calErr != nil {
		t.Fatalf("Calibrate: %v", calErr)
	}
	return calModel, calReport, calRunner
}

func TestFitLinearRecoversExact(t *testing.T) {
	// y = 2·x0 + 3·x1 + 4·x2 sampled exactly must round-trip.
	xs := [][]float64{
		{1, 1, 2},
		{1, 2, 5},
		{1, 4, 3},
		{1, 8, 17},
		{1, 16, 9},
	}
	want := []float64{2, 3, 4}
	ys := make([]float64, len(xs))
	for i, row := range xs {
		ys[i] = evalLinear(want, row)
	}
	c, err := fitLinear(xs, ys)
	if err != nil {
		t.Fatalf("fitLinear: %v", err)
	}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-4 {
			t.Errorf("coefficient %d = %v, want %v", i, c[i], want[i])
		}
	}
	// Collinear columns (x2 = 2·x1) must not blow up: the ridge term
	// keeps the system solvable and predictions exact on the span.
	col := [][]float64{{1, 1, 2}, {1, 2, 4}, {1, 4, 8}, {1, 8, 16}}
	cys := []float64{11, 21, 41, 81} // y = 1 + 10·x1
	cc, err := fitLinear(col, cys)
	if err != nil {
		t.Fatalf("fitLinear collinear: %v", err)
	}
	for i, row := range col {
		if got := evalLinear(cc, row); math.Abs(got-cys[i]) > 1e-3 {
			t.Errorf("collinear fit predicts %v at row %d, want %v", got, i, cys[i])
		}
	}
	if _, err := fitLinear(xs[:2], ys[:2]); err == nil {
		t.Errorf("fitLinear accepted 2 samples for 3 coefficients")
	}
}

func TestFeaturesTrackTiling(t *testing.T) {
	// gemmini matmul n=160 tiles at 32 (25 launches), n=192 at 64 (9
	// launches): the feature vector must see the discontinuity.
	f160, err := features("gemmini", core.WorkloadMatmul, 160)
	if err != nil {
		t.Fatalf("features(gemmini, matmul, 160): %v", err)
	}
	f192, err := features("gemmini", core.WorkloadMatmul, 192)
	if err != nil {
		t.Fatalf("features(gemmini, matmul, 192): %v", err)
	}
	if f160[1] != 25 || f192[1] != 9 {
		t.Errorf("launch features = %v, %v; want 25, 9", f160[1], f192[1])
	}
	if len(f160) != numFeatures {
		t.Errorf("feature vector has %d entries, want %d", len(f160), numFeatures)
	}
	if _, err := features("gemmini", "conv9000", 64); err == nil {
		t.Errorf("features accepted an unknown workload")
	}
}

func TestFitQuadraticRecoversExact(t *testing.T) {
	ts := []float64{-2, -1.5, -1, -0.5, 0}
	zs := make([]float64, len(ts))
	for i, x := range ts {
		zs[i] = 0.3 - 0.2*x + 0.05*x*x
	}
	q, err := fitQuadratic(ts, zs)
	if err != nil {
		t.Fatalf("fitQuadratic: %v", err)
	}
	want := [3]float64{0.3, -0.2, 0.05}
	for i := range want {
		if math.Abs(q[i]-want[i]) > 1e-9 {
			t.Errorf("coefficient %d = %v, want %v", i, q[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}} // rank 1
	if _, err := solve(a, []float64{1, 2}); err == nil {
		t.Fatalf("solve accepted a singular system")
	}
}

func TestSplitSizesDeterministicAndDisjoint(t *testing.T) {
	train1, hold1, err := splitSizes(DefaultSizes, 7)
	if err != nil {
		t.Fatalf("splitSizes: %v", err)
	}
	train2, hold2, _ := splitSizes(DefaultSizes, 7)
	if !equalInts(train1, train2) || !equalInts(hold1, hold2) {
		t.Fatalf("same seed split differs: %v/%v vs %v/%v", train1, hold1, train2, hold2)
	}
	if len(train1)+len(hold1) != len(DefaultSizes) {
		t.Fatalf("split lost sizes: %v + %v from %v", train1, hold1, DefaultSizes)
	}
	seen := map[int]bool{}
	for _, n := range append(append([]int(nil), train1...), hold1...) {
		if seen[n] {
			t.Fatalf("size %d in both halves", n)
		}
		seen[n] = true
	}
	// Endpoints always train: held-out validation is interpolation.
	if train1[0] != 32 || train1[len(train1)-1] != 256 {
		t.Errorf("endpoints not pinned to training: %v", train1)
	}
	if len(hold1) < 1 || len(train1) < 4 {
		t.Errorf("degenerate split: train %v holdout %v", train1, hold1)
	}
	if _, _, err := splitSizes([]int{32, 64, 96}, 1); err == nil {
		t.Errorf("splitSizes accepted a 3-size grid")
	}
	if _, _, err := splitSizes([]int{0, 32, 64, 96, 128, 160}, 1); err == nil {
		t.Errorf("splitSizes accepted a non-positive size")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHeldOutErrorWithinBand is the calibration-hygiene property test
// (and half of the acceptance criterion): for both targets and every
// registered pipeline, cycle predictions on cells the fit never saw stay
// within the documented band — geomean ≤ 15%, every cell ≤ 30%.
func TestHeldOutErrorWithinBand(t *testing.T) {
	model, report, _ := calibrated(t)

	if got := model.TargetNames(); len(got) < 2 {
		t.Fatalf("calibrated targets %v, want both registered targets", got)
	}
	if len(report.Targets) != len(model.Targets) {
		t.Fatalf("report covers %d targets, model %d", len(report.Targets), len(model.Targets))
	}
	for _, tr := range report.Targets {
		if len(tr.Cells) == 0 {
			t.Fatalf("%s: no held-out cells", tr.Target)
		}
		// Every registered pipeline must appear among the held-out cells.
		pipes := map[core.Pipeline]bool{}
		for _, c := range tr.Cells {
			pipes[c.Exp.Pipeline] = true
			if c.Err > report.Band.PerCell {
				t.Errorf("%s: held-out cell %s error %.1f%% exceeds per-cell band %.0f%% (predicted %.0f, actual %.0f)",
					tr.Target, c.Exp, 100*c.Err, 100*report.Band.PerCell, c.Predicted, c.Actual)
			}
		}
		for _, p := range core.Pipelines {
			if !pipes[p] {
				t.Errorf("%s: pipeline %s has no held-out validation cells", tr.Target, p)
			}
		}
		if tr.GeomeanErr > report.Band.Geomean {
			t.Errorf("%s: held-out geomean cycle error %.1f%% exceeds band %.0f%%", tr.Target, 100*tr.GeomeanErr, 100*report.Band.Geomean)
		}
		t.Logf("%s: %d held-out cells, geomean %.2f%%, max %.2f%%", tr.Target, len(tr.Cells), 100*tr.GeomeanErr, 100*tr.MaxErr)
	}
	if !report.Clean() {
		t.Errorf("report.Clean() = false with no individual violation reported above")
	}
	if !strings.Contains(report.String(), "geomean cycle error") {
		t.Errorf("report rendering missing summary line:\n%s", report.String())
	}
}

// TestCalibrateDeterminism: refitting with the same seed yields
// byte-identical constants (the satellite determinism requirement). The
// second fit reuses the runner's memoized cells, so this also pins that
// fitting is a pure function of the simulated results.
func TestCalibrateDeterminism(t *testing.T) {
	model, _, runner := calibrated(t)
	again, _, err := Calibrate(context.Background(), runner, Spec{Seed: 1})
	if err != nil {
		t.Fatalf("refit: %v", err)
	}
	b1, err := model.MarshalPretty()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b2, err := again.MarshalPretty()
	if err != nil {
		t.Fatalf("marshal refit: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed refit is not byte-identical (%d vs %d bytes)", len(b1), len(b2))
	}
	// A different seed changes the split, hence (almost surely) the fit.
	other, _, err := Calibrate(context.Background(), runner, Spec{Seed: 2})
	if err != nil {
		t.Fatalf("seed-2 fit: %v", err)
	}
	b3, _ := other.MarshalPretty()
	if bytes.Equal(b1, b3) {
		t.Errorf("seed 1 and seed 2 produced identical models; split shuffle is not seeded")
	}
}

// TestScreenFullGridZeroSimulations is the acceptance criterion:
// analytically screening a full Figure-11-class grid (both targets, every
// workload and pipeline, the Figure 11 sizes) performs zero simulator
// invocations, counter-asserted.
func TestScreenFullGridZeroSimulations(t *testing.T) {
	model, _, _ := calibrated(t)
	r := core.NewRunnerWith(core.RunnerOptions{Workers: 0, Predictor: model})
	// The Figure 11 sizes, minus those whose rectmm shape cannot build on
	// gemmini (n=16 halves to an 8-wide output): the analytic tier shares
	// the simulator's feasibility rules, so screening rejects exactly the
	// cells a full-fidelity sweep would reject.
	var sizes []int
	for _, n := range core.Figure11Sizes {
		if n%32 == 0 {
			sizes = append(sizes, n)
		}
	}
	grid := core.Sweep(model.TargetNames(), core.WorkloadNames(), core.Pipelines, sizes)

	res, err := r.Screen(context.Background(), grid)
	if err != nil {
		t.Fatalf("Screen: %v", err)
	}
	for i, re := range res {
		if !re.Analytic {
			t.Fatalf("grid cell %d (%s) not Analytic", i, grid[i])
		}
		if re.Cycles == 0 {
			t.Errorf("grid cell %s predicted zero cycles", grid[i])
		}
	}
	st := r.Snapshot()
	if st.Runs != 0 {
		t.Fatalf("screening simulated %d cells, want 0", st.Runs)
	}
	if st.Predictions != uint64(len(grid)) {
		t.Errorf("Predictions = %d, want %d (one per grid cell)", st.Predictions, len(grid))
	}
	if st.StoreHits+st.StoreMisses != 0 {
		t.Errorf("screening touched the store (%d hits, %d misses)", st.StoreHits, st.StoreMisses)
	}
}

// TestTopKSweepSpeedup is the acceptance criterion: a top-K
// multi-fidelity sweep on a cold store must be at least 10x faster
// end-to-end than the same sweep fully simulated. Both runs are serial
// (workers=1) so the ratio measures work, not scheduling.
func TestTopKSweepSpeedup(t *testing.T) {
	model, _, _ := calibrated(t)
	grid := core.Sweep(model.TargetNames(), core.WorkloadNames(), core.Pipelines, []int{32, 64, 96})

	cold := core.NewRunner(1)
	start := time.Now()
	if _, err := cold.RunAll(context.Background(), grid, core.RunOptions{}); err != nil {
		t.Fatalf("full sweep: %v", err)
	}
	fullDur := time.Since(start)

	topk := core.NewRunnerWith(core.RunnerOptions{Workers: 1, Predictor: model})
	start = time.Now()
	res, err := topk.RunTopK(context.Background(), grid, core.RunOptions{}, 1)
	if err != nil {
		t.Fatalf("top-k sweep: %v", err)
	}
	topkDur := time.Since(start)

	simulated := 0
	for _, re := range res {
		if !re.Analytic {
			simulated++
		}
	}
	if simulated != 1 {
		t.Fatalf("top-1 sweep simulated %d cells, want 1", simulated)
	}
	if st := topk.Snapshot(); st.Runs != 1 || st.Predictions != uint64(len(grid)) {
		t.Fatalf("top-1 sweep counters: %d runs, %d predictions; want 1, %d", st.Runs, st.Predictions, len(grid))
	}
	if fullDur < 10*topkDur {
		t.Errorf("top-k sweep not >=10x faster: full %v vs top-k %v (%.1fx)", fullDur, topkDur, float64(fullDur)/float64(topkDur))
	}
	t.Logf("cold full sweep %v, top-1 multi-fidelity sweep %v (%.0fx)", fullDur, topkDur, float64(fullDur)/float64(topkDur))
}

func TestPredictErrors(t *testing.T) {
	model, _, _ := calibrated(t)
	if _, err := model.Predict(core.Experiment{Target: "warp", Workload: core.WorkloadMatmul, N: 64}); err == nil || !strings.Contains(err.Error(), "not calibrated") {
		t.Errorf("unknown target: err = %v", err)
	}
	if _, err := model.Predict(core.Experiment{Target: "gemmini", Workload: "conv9000", N: 64}); err == nil || !strings.Contains(err.Error(), "no calibrated curve") {
		t.Errorf("unknown workload: err = %v", err)
	}
	if _, err := model.Predict(core.Experiment{Target: "gemmini", Workload: core.WorkloadMatmul, N: 0}); err == nil {
		t.Errorf("non-positive size accepted")
	}
	var empty Model
	if _, err := empty.Predict(core.Experiment{Target: "gemmini", Workload: core.WorkloadMatmul, N: 64}); err == nil {
		t.Errorf("zero model predicted")
	}
}

// TestPredictedSavings: the model must predict that AllOptimizations
// saves cycles over Baseline on a config-bound cell — the qualitative
// claim the whole paper rests on.
func TestPredictedSavings(t *testing.T) {
	model, _, _ := calibrated(t)
	for _, tn := range model.TargetNames() {
		saved, err := model.PredictedSavings(tn, core.WorkloadMatmul, core.Baseline, core.AllOptimizations, 128)
		if err != nil {
			t.Fatalf("%s: PredictedSavings: %v", tn, err)
		}
		if saved <= 0 {
			t.Errorf("%s: predicted AllOptimizations saves %.0f cycles over Baseline at n=128, want > 0", tn, saved)
		}
	}
}

func TestModelRoundTrip(t *testing.T) {
	model, _, _ := calibrated(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := ReadModel(path)
	if err != nil {
		t.Fatalf("ReadModel: %v", err)
	}
	b1, _ := model.MarshalPretty()
	b2, _ := loaded.MarshalPretty()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip not byte-identical")
	}
	// The loaded model predicts identically.
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 128}
	r1, err1 := model.Predict(e)
	r2, err2 := loaded.Predict(e)
	if err1 != nil || err2 != nil || r1.Cycles != r2.Cycles || r1.Counters != r2.Counters {
		t.Fatalf("loaded model predicts differently: %v/%v, %v/%v", r1, err1, r2, err2)
	}

	// Schema mismatches are rejected with a refit hint.
	stale := *loaded
	stale.Schema = Schema + 1
	if err := stale.WriteFile(path); err != nil {
		t.Fatalf("WriteFile stale: %v", err)
	}
	if _, err := ReadModel(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("stale schema accepted: %v", err)
	}
}
