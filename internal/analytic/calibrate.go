package analytic

// Calibration: fit the analytical tier against the real co-simulator on a
// seeded training grid and validate it on held-out cells it never saw —
// the Eggensperger et al. hygiene bar (PAPERS.md). The split is
// deterministic in the seed, the fit is deterministic in the split, and
// the simulator is deterministic by construction, so refitting with the
// same seed is byte-identical; difftest/cwfuzz lean on that to make the
// error band a standing campaign invariant.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"configwall/internal/core"
)

// Band is the documented prediction error band, validated on held-out
// cells and enforced forever after by the analytic-bounds invariant.
// Errors are relative cycle errors: exp(|ln(predicted/actual)|) - 1, so
// over- and under-prediction are penalized symmetrically.
type Band struct {
	// Geomean bounds the per-target geometric-mean cycle error across
	// all held-out cells (the acceptance criterion: ≤ 0.15).
	Geomean float64 `json:"geomean"`
	// PerCell bounds every individual held-out cell's cycle error.
	PerCell float64 `json:"per_cell"`
}

// DefaultBand is the documented error band (DESIGN.md §10): held-out
// geomean cycle error within 15%, no single cell beyond 30%.
var DefaultBand = Band{Geomean: 0.15, PerCell: 0.30}

// DefaultSizes is the calibration size grid. All sizes are multiples of
// 32 so every registered workload shape builds on every target (gemmini
// tiles require 16-multiple dimensions and rectmm halves n), and the
// range covers the figure grids' interpolation region.
var DefaultSizes = []int{32, 64, 96, 128, 160, 192, 224, 256}

// Spec configures one calibration run.
type Spec struct {
	// Targets, Workloads, Pipelines and Sizes span the calibration grid;
	// empty slices select every registered target/workload, every
	// pipeline, and DefaultSizes.
	Targets   []string
	Workloads []string
	Pipelines []core.Pipeline
	Sizes     []int
	// Seed drives the train/holdout split shuffle.
	Seed int64
	// Band is the error band to validate against (zero: DefaultBand).
	Band Band
	// Opts are the simulator options for calibration cells (fidelity is
	// forced to FidelityFull — calibration is ground truth by definition).
	Opts core.RunOptions
}

// withDefaults resolves the zero-value conveniences.
func (s Spec) withDefaults() Spec {
	if len(s.Targets) == 0 {
		s.Targets = core.TargetNames()
	}
	if len(s.Workloads) == 0 {
		s.Workloads = core.WorkloadNames()
	}
	if len(s.Pipelines) == 0 {
		s.Pipelines = append([]core.Pipeline(nil), core.Pipelines...)
	}
	if len(s.Sizes) == 0 {
		s.Sizes = append([]int(nil), DefaultSizes...)
	}
	if s.Band == (Band{}) {
		s.Band = DefaultBand
	}
	s.Opts.Fidelity = core.FidelityFull
	return s
}

// splitSizes deterministically partitions the calibration sizes: both
// endpoints always train (the fit must interpolate, never extrapolate,
// onto held-out cells), and a seeded shuffle of the interior holds out
// one third (at least one) for validation.
func splitSizes(sizes []int, seed int64) (train, holdout []int, err error) {
	s := append([]int(nil), sizes...)
	sort.Ints(s)
	uniq := s[:0]
	for i, v := range s {
		if v < 1 {
			return nil, nil, fmt.Errorf("analytic: non-positive calibration size %d", v)
		}
		if i == 0 || v != s[i-1] {
			uniq = append(uniq, v)
		}
	}
	s = uniq
	if len(s) < 7 {
		return nil, nil, fmt.Errorf("analytic: %d calibration sizes, need >= 7 (%d train for the structural basis + held-out cells)", len(s), numFeatures)
	}
	interior := append([]int(nil), s[1:len(s)-1]...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(interior), func(i, j int) { interior[i], interior[j] = interior[j], interior[i] })
	nHold := len(interior) / 3
	if nHold < 1 {
		nHold = 1
	}
	holdout = append([]int(nil), interior[:nHold]...)
	train = append([]int{s[0], s[len(s)-1]}, interior[nHold:]...)
	sort.Ints(holdout)
	sort.Ints(train)
	return train, holdout, nil
}

// CellError is one held-out cell's prediction-vs-simulation comparison.
type CellError struct {
	Exp       core.Experiment `json:"exp"`
	Predicted float64         `json:"predicted"`
	Actual    float64         `json:"actual"`
	// Err is the relative cycle error exp(|ln(pred/actual)|) - 1.
	Err float64 `json:"err"`
}

// TargetReport summarizes one target's held-out validation.
type TargetReport struct {
	Target string `json:"target"`
	// Cells lists every held-out cell in grid order.
	Cells []CellError `json:"cells"`
	// GeomeanErr is exp(mean |ln(pred/actual)|) - 1 over Cells.
	GeomeanErr float64 `json:"geomean_err"`
	// MaxErr is the worst cell error.
	MaxErr float64 `json:"max_err"`
}

// Violations lists the cells beyond the per-cell band.
func (tr TargetReport) Violations(band Band) []CellError {
	var out []CellError
	for _, c := range tr.Cells {
		if c.Err > band.PerCell {
			out = append(out, c)
		}
	}
	return out
}

// Report is the held-out error report of one calibration run.
type Report struct {
	Band Band `json:"band"`
	// Targets holds one report per calibrated target, sorted by name.
	Targets []TargetReport `json:"targets"`
}

// Clean reports whether every target honors the band: geomean within
// Band.Geomean and every held-out cell within Band.PerCell.
func (r *Report) Clean() bool {
	for _, tr := range r.Targets {
		if tr.GeomeanErr > r.Band.Geomean || len(tr.Violations(r.Band)) > 0 {
			return false
		}
	}
	return true
}

// String renders the report deterministically, one target per paragraph.
func (r *Report) String() string {
	var sb strings.Builder
	for _, tr := range r.Targets {
		fmt.Fprintf(&sb, "%s: %d held-out cells, geomean cycle error %.1f%% (band %.0f%%), max %.1f%% (band %.0f%%)\n",
			tr.Target, len(tr.Cells), 100*tr.GeomeanErr, 100*r.Band.Geomean, 100*tr.MaxErr, 100*r.Band.PerCell)
		for _, c := range tr.Cells {
			marker := ""
			if c.Err > r.Band.PerCell {
				marker = "  VIOLATION"
			}
			fmt.Fprintf(&sb, "  %-28s predicted %12.0f actual %12.0f err %5.1f%%%s\n",
				c.Exp, c.Predicted, c.Actual, 100*c.Err, marker)
		}
	}
	return sb.String()
}

// Calibrate fits the analytical tier against the simulator: it runs the
// full calibration grid (training and held-out sizes) through the runner
// at full fidelity, fits per-(workload, pipeline) curves on the training
// cells, and validates cycle predictions on the held-out cells. The
// returned model is usable regardless of band violations — the report
// says whether it honors the band; callers that must enforce it check
// Report.Clean.
func Calibrate(ctx context.Context, r *core.Runner, spec Spec) (*Model, *Report, error) {
	spec = spec.withDefaults()
	train, holdout, err := splitSizes(spec.Sizes, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	all := append(append([]int(nil), train...), holdout...)
	sort.Ints(all)

	grid := core.Sweep(spec.Targets, spec.Workloads, spec.Pipelines, all)
	results, err := r.RunAll(ctx, grid, spec.Opts)
	if err != nil {
		return nil, nil, fmt.Errorf("analytic: calibration grid: %w", err)
	}
	byCell := make(map[core.Experiment]core.Result, len(grid))
	for i, e := range grid {
		byCell[e] = results[i]
	}

	model := &Model{Schema: Schema, Seed: spec.Seed, Band: spec.Band, Targets: map[string]*TargetModel{}}
	for _, tn := range spec.Targets {
		tgt, err := core.LookupTarget(tn)
		if err != nil {
			return nil, nil, err
		}
		rm := tgt.RooflineModel()
		tm := &TargetModel{
			Constants: Constants{
				PeakOps:    rm.PeakOps,
				BWConfig:   rm.BWConfig,
				BWMemory:   rm.BWMemory,
				Concurrent: rm.ConcurrentConfig,
			},
			TrainSizes:   append([]int(nil), train...),
			HoldoutSizes: append([]int(nil), holdout...),
			Curves:       map[string]Curve{},
		}
		for _, wn := range spec.Workloads {
			for _, p := range spec.Pipelines {
				curve, err := fitCurve(tn, wn, p, train, byCell)
				if err != nil {
					return nil, nil, err
				}
				tm.Curves[CurveKey(wn, p)] = curve
			}
		}
		model.Targets[tn] = tm
	}

	report := &Report{Band: spec.Band}
	for _, tn := range spec.Targets {
		tr := TargetReport{Target: tn}
		logSum := 0.0
		for _, wn := range spec.Workloads {
			for _, p := range spec.Pipelines {
				for _, n := range holdout {
					e := core.Experiment{Target: tn, Workload: wn, Pipeline: p, N: n}
					pred, err := model.Predict(e)
					if err != nil {
						return nil, nil, err
					}
					actual := float64(byCell[e].Cycles)
					ce := CellError{Exp: e, Predicted: float64(pred.Cycles), Actual: actual}
					if actual > 0 && ce.Predicted > 0 {
						ce.Err = math.Exp(math.Abs(math.Log(ce.Predicted/actual))) - 1
					} else {
						ce.Err = math.Inf(1)
					}
					logSum += math.Log1p(ce.Err)
					if ce.Err > tr.MaxErr {
						tr.MaxErr = ce.Err
					}
					tr.Cells = append(tr.Cells, ce)
				}
			}
		}
		if len(tr.Cells) > 0 {
			tr.GeomeanErr = math.Expm1(logSum / float64(len(tr.Cells)))
		}
		report.Targets = append(report.Targets, tr)
	}
	sort.Slice(report.Targets, func(i, j int) bool { return report.Targets[i].Target < report.Targets[j].Target })
	return model, report, nil
}

// fitCurve fits one (workload, pipeline) family from its training cells.
func fitCurve(tn, wn string, p core.Pipeline, train []int, byCell map[core.Experiment]core.Result) (Curve, error) {
	scale := float64(train[len(train)-1])
	c := Curve{Scale: scale, Metrics: map[string][]float64{}}
	rows := make([][]float64, len(train))
	samples := make([]core.Result, len(train))
	for i, n := range train {
		e := core.Experiment{Target: tn, Workload: wn, Pipeline: p, N: n}
		res, ok := byCell[e]
		if !ok {
			return c, fmt.Errorf("analytic: missing calibration cell %s", e)
		}
		samples[i] = res
		row, err := features(tn, wn, n)
		if err != nil {
			return c, fmt.Errorf("analytic: %s: %w", e, err)
		}
		rows[i] = row
	}
	for _, name := range metricNames {
		ys := make([]float64, len(train))
		for i := range train {
			ys[i] = metricValue(samples[i], name)
		}
		coef, err := fitLinear(rows, ys)
		if err != nil {
			return c, fmt.Errorf("analytic: %s/%s/%s %s: %w", tn, wn, p, name, err)
		}
		c.Metrics[name] = coef
	}

	// Residual: what the structural estimate (the fitted T_set + T_calc +
	// T_sync + T_stall decomposition) misses, as a smooth multiplicative
	// factor in log-size. Fitted against the *fitted* submetrics — the
	// exact expression Predict evaluates — so the residual corrects the
	// model's own structural estimate, not the unreachable true counters.
	ts := make([]float64, len(train))
	zs := make([]float64, len(train))
	for i, n := range train {
		structural := c.metric("config_cycles", rows[i]) + c.metric("calc_cycles", rows[i]) +
			c.metric("sync_cycles", rows[i]) + c.metric("stall_cycles", rows[i])
		actual := float64(samples[i].Cycles)
		if structural <= 0 || actual <= 0 {
			return c, fmt.Errorf("analytic: %s/%s/%s n=%d: degenerate structural estimate (%g) or cycles (%g)", tn, wn, p, n, structural, actual)
		}
		ts[i] = math.Log(float64(n) / scale)
		zs[i] = math.Log(actual / structural)
	}
	resid, err := fitQuadratic(ts, zs)
	if err != nil {
		return c, fmt.Errorf("analytic: %s/%s/%s residual: %w", tn, wn, p, err)
	}
	c.Residual = resid
	return c, nil
}
