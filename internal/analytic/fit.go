package analytic

// Least-squares machinery for the analytical tier. Two fit shapes cover
// every calibrated curve:
//
//   - fitLinear: weighted ridge least squares of a counter against the
//     structural feature vector of the cell (see features() in
//     analytic.go: launch count, per-launch reduction length, tile
//     terms, total MACs). The workloads are tiled matmuls whose costs
//     are affine combinations of exactly these quantities, so the basis
//     is the physics, not an approximation. Weights 1/max(y,1)² make the
//     fit minimize *relative* error (an n=32 cell counts as much as an
//     n=256 cell); a tiny relative ridge keeps collinear features (e.g.
//     fixed-tile targets, where L·T is a multiple of L) harmless.
//
//   - fitQuadratic: unweighted least squares on [1, t, t²] in t = log u,
//     used for the multiplicative cycle residual (log of the ratio
//     between simulated cycles and the structural estimate), which is a
//     smooth, slowly-bending function of log size.
//
// Both reduce to small dense normal equations solved by Gaussian
// elimination with partial pivoting — no external solver dependency.

import (
	"fmt"
	"math"
)

// ridgeLambda is the relative Tikhonov term added to the normal-equation
// diagonal: large enough to absorb exactly-collinear feature columns,
// small enough (≤1e-6 relative shrinkage) to leave real fits untouched.
const ridgeLambda = 1e-6

// fitLinear returns the weighted ridge least-squares coefficients c of
// y ≈ Σ c_j · x_j with weights 1/max(|y|,1)².
func fitLinear(xs [][]float64, ys []float64) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("fitLinear: %d feature rows vs %d samples", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("fitLinear: no samples")
	}
	k := len(xs[0])
	if len(xs) < k {
		return nil, fmt.Errorf("fitLinear: %d samples for %d coefficients", len(xs), k)
	}
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	b := make([]float64, k)
	for i, row := range xs {
		if len(row) != k {
			return nil, fmt.Errorf("fitLinear: ragged feature row %d", i)
		}
		w := 1.0
		if y := math.Abs(ys[i]); y > 1 {
			w = 1 / (y * y)
		}
		for j := 0; j < k; j++ {
			for l := 0; l < k; l++ {
				a[j][l] += w * row[j] * row[l]
			}
			b[j] += w * row[j] * ys[i]
		}
	}
	for j := 0; j < k; j++ {
		a[j][j] *= 1 + ridgeLambda
	}
	sol, err := solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("fitLinear: %w", err)
	}
	return sol, nil
}

// evalLinear evaluates the fit on one feature row.
func evalLinear(c, row []float64) float64 {
	if len(c) != len(row) {
		return 0
	}
	s := 0.0
	for i, v := range row {
		s += c[i] * v
	}
	return s
}

// fitQuadratic returns the least-squares coefficients of
// z ≈ q0 + q1·t + q2·t².
func fitQuadratic(ts, zs []float64) ([3]float64, error) {
	var q [3]float64
	if len(ts) != len(zs) {
		return q, fmt.Errorf("fitQuadratic: %d abscissae vs %d samples", len(ts), len(zs))
	}
	if len(ts) < 3 {
		return q, fmt.Errorf("fitQuadratic: %d samples for 3 coefficients", len(ts))
	}
	a := make([][]float64, 3)
	for i := range a {
		a[i] = make([]float64, 3)
	}
	b := make([]float64, 3)
	for i, t := range ts {
		basis := [3]float64{1, t, t * t}
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				a[j][k] += basis[j] * basis[k]
			}
			b[j] += basis[j] * zs[i]
		}
	}
	sol, err := solve(a, b)
	if err != nil {
		return q, fmt.Errorf("fitQuadratic: %w", err)
	}
	copy(q[:], sol)
	return q, nil
}

// evalQuadratic evaluates the quadratic fit at t.
func evalQuadratic(q [3]float64, t float64) float64 {
	return q[0] + t*(q[1]+t*q[2])
}

// solve performs in-place Gaussian elimination with partial pivoting on
// the square system a·x = b. Singularity is judged relative to the
// matrix's own magnitude: relative-error weights scale the normal
// equations by ~1/y², so absolute entry sizes carry no rank information.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	norm := 0.0
	for _, row := range a {
		for _, v := range row {
			if av := math.Abs(v); av > norm {
				norm = av
			}
		}
	}
	if norm == 0 {
		return nil, fmt.Errorf("singular normal equations (zero matrix)")
	}
	eps := norm * 1e-14
	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < eps {
			return nil, fmt.Errorf("singular normal equations (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		s := b[row]
		for k := row + 1; k < n; k++ {
			s -= a[row][k] * x[k]
		}
		x[row] = s / a[row][row]
	}
	return x, nil
}
