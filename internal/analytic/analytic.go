// Package analytic is the simulation-free prediction tier (DESIGN.md
// §10): it estimates experiment Results — cycles, configuration-write
// cycles, overlap savings — for any (target × workload × pipeline × size)
// cell in microseconds, from per-target roofline constants plus
// per-(workload, pipeline) overhead curves fitted against the real
// co-simulator on a seeded training grid. FLASH-style multi-fidelity
// flows (core.Runner.Screen / RunTopK, cwserve sweep fidelities) query
// this tier for the full grid and pay for simulation only on the
// predicted winners; a standing difftest/cwfuzz invariant
// (KindAnalyticBounds) re-checks the held-out error band forever after.
//
// The fit basis is structural, not polynomial-in-n: every counter the
// simulator reports is (to first order) an affine combination of the
// cell's launch count, per-launch reduction length, tile geometry and
// total MAC count, all of which are closed-form functions of the
// workload shape and the target's documented tiling rules
// (workload.Tiling via Target.MatmulTiling). That makes the tier robust
// to the launch-count discontinuities square polynomial fits cannot see
// (e.g. gemmini's tile edge dropping from 64 to 32 as divisibility
// changes). A fitted model therefore needs the target registry at
// prediction time — it stores coefficients, not the tiling rules.
package analytic

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"configwall/internal/core"
	"configwall/internal/workload"
)

// Schema versions the fitted-model serialization; bump on any change to
// the fit basis or the prediction formula, so a stale constants file is
// rejected instead of silently mispredicting.
const Schema = 1

// numFeatures is the length of the structural feature vector: see
// features().
const numFeatures = 6

// metricNames are the fitted counters, in serialization order. Cycles is
// deliberately absent: it is predicted structurally from these fits plus
// a log-space residual (see Curve.Residual), not fitted directly.
var metricNames = []string{
	"accel_busy",
	"accel_ops",
	"calc_cycles",
	"config_bytes",
	"config_cycles",
	"config_instrs",
	"host_instrs",
	"launches",
	"stall_cycles",
	"sync_cycles",
}

// metricValue extracts one fitted counter from a simulated result.
func metricValue(res core.Result, name string) float64 {
	switch name {
	case "accel_busy":
		return float64(res.AccelBusyCycles)
	case "accel_ops":
		return float64(res.AccelOps)
	case "calc_cycles":
		return float64(res.CalcCycles)
	case "config_bytes":
		return float64(res.ConfigBytes)
	case "config_cycles":
		return float64(res.ConfigCycles)
	case "config_instrs":
		return float64(res.ConfigInstrs)
	case "host_instrs":
		return float64(res.HostInstrs)
	case "launches":
		return float64(res.Launches)
	case "stall_cycles":
		return float64(res.StallCycles)
	case "sync_cycles":
		return float64(res.SyncCycles)
	}
	return 0
}

// features computes the structural feature vector of one cell from the
// workload shape and the target's closed-form tiling — no IR is built,
// nothing is simulated. The basis is
//
//	[1, L, L·K, L·(TM+TN)/2, L·TM·TN, 2·M·K·N]
//
// where L is the launch count, TM×TN the output tile, K the per-launch
// reduction length and 2·M·K·N the total MAC ops: constant overheads,
// per-launch costs (config writes, syncs, launch setup), per-launch
// costs linear or bilinear in the tile edges (mvin/mvout rows), and pure
// compute time respectively. Simulated per-cell costs are affine in this
// basis, so the fits interpolate *and* track launch-count
// discontinuities exactly.
func features(tn, wn string, n int) ([]float64, error) {
	shape, ok := workload.ShapeByName(wn)
	if !ok {
		return nil, fmt.Errorf("unknown workload shape %q", wn)
	}
	mDim, kDim, nDim := shape.Dims(n)
	tgt, err := core.LookupTarget(tn)
	if err != nil {
		return nil, err
	}
	if tgt.MatmulTiling == nil {
		return nil, fmt.Errorf("target %q has no closed-form tiling", tn)
	}
	til, err := tgt.MatmulTiling(mDim, kDim, nDim)
	if err != nil {
		return nil, err
	}
	launches := float64(til.Launches)
	tileM, tileN := float64(til.TileM), float64(til.TileN)
	ops := 2 * float64(mDim) * float64(kDim) * float64(nDim)
	return []float64{
		1,
		launches,
		launches * float64(kDim),
		launches * (tileM + tileN) / 2,
		launches * tileM * tileN,
		ops,
	}, nil
}

// Constants are the per-target roofline parameters the structural cycle
// estimate is built from (paper §4) — copied from the target registry at
// calibration time so a saved model documents the hardware it was fitted
// for.
type Constants struct {
	// PeakOps is peak performance in ops/cycle.
	PeakOps float64 `json:"peak_ops"`
	// BWConfig is the raw configuration bandwidth in bytes/cycle.
	BWConfig float64 `json:"bw_config"`
	// BWMemory is the memory bandwidth in bytes/cycle.
	BWMemory float64 `json:"bw_memory"`
	// Concurrent marks concurrent-configuration hardware (Eq. 2 vs Eq. 3).
	Concurrent bool `json:"concurrent"`
}

// Curve holds the fitted terms of one (workload, pipeline) cell family.
type Curve struct {
	// Scale normalizes sizes for the residual: it evaluates in
	// t = log(n/Scale). Set to the largest training size.
	Scale float64 `json:"scale"`
	// Metrics maps a counter name (metricNames) to its weighted linear
	// fit coefficients over the structural feature basis (features()).
	Metrics map[string][]float64 `json:"metrics"`
	// Residual is the log-space quadratic correction applied to the
	// structural cycle estimate: cycles = structural · exp(q(log(n/Scale))).
	// It absorbs what the structural terms cannot see — second-order
	// stall/overlap interleaving and pipeline-specific warmup effects.
	Residual [3]float64 `json:"residual"`
}

// metric evaluates one fitted counter on a feature row, clamped
// non-negative.
func (c Curve) metric(name string, row []float64) float64 {
	coef, ok := c.Metrics[name]
	if !ok {
		return 0
	}
	v := evalLinear(coef, row)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// TargetModel is the calibrated model of one registered target.
type TargetModel struct {
	Constants Constants `json:"constants"`
	// TrainSizes and HoldoutSizes record the calibration split (sorted),
	// so the documented error band is auditable: predictions were never
	// validated on cells they were fitted against.
	TrainSizes   []int `json:"train_sizes"`
	HoldoutSizes []int `json:"holdout_sizes"`
	// Curves maps "workload/pipeline" (CurveKey) to its fitted terms.
	Curves map[string]Curve `json:"curves"`
}

// Model is a calibrated analytical predictor. It satisfies
// core.Predictor; a zero Model predicts nothing. Models are immutable
// after calibration and safe for concurrent use.
type Model struct {
	// Schema must equal the package Schema for the model to be loaded.
	Schema int `json:"schema"`
	// Seed is the calibration split seed (refitting with the same seed
	// on the same simulator is byte-identical).
	Seed int64 `json:"seed"`
	// Band is the documented error band the model was validated against.
	Band Band `json:"band"`
	// Targets maps target name to its calibrated model.
	Targets map[string]*TargetModel `json:"targets"`
}

// CurveKey names the per-(workload, pipeline) curve map entry.
func CurveKey(workload string, p core.Pipeline) string {
	return workload + "/" + p.String()
}

// TargetNames lists the calibrated targets, sorted.
func (m *Model) TargetNames() []string {
	names := make([]string, 0, len(m.Targets))
	for n := range m.Targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Predict estimates the result of one experiment cell without simulating.
// The returned Result is marked Analytic; its counters are model
// estimates whose cycle error is bounded by the calibrated Band on
// held-out cells inside the training size range (extrapolation beyond it
// is screening-grade only — see DESIGN.md §10).
func (m *Model) Predict(e core.Experiment) (core.Result, error) {
	tm := m.Targets[e.Target]
	if tm == nil {
		return core.Result{}, fmt.Errorf("analytic: target %q not calibrated (calibrated: %v)", e.Target, m.TargetNames())
	}
	if e.N < 1 {
		return core.Result{}, fmt.Errorf("analytic: %s: non-positive size", e)
	}
	key := CurveKey(e.Workload, e.Pipeline)
	c, ok := tm.Curves[key]
	if !ok {
		return core.Result{}, fmt.Errorf("analytic: %s: no calibrated curve %q", e, key)
	}
	row, err := features(e.Target, e.Workload, e.N)
	if err != nil {
		return core.Result{}, fmt.Errorf("analytic: %s: %w", e, err)
	}

	ops := c.metric("accel_ops", row)
	calc := c.metric("calc_cycles", row)
	cfgCycles := c.metric("config_cycles", row)
	syncCycles := c.metric("sync_cycles", row)
	stall := c.metric("stall_cycles", row)
	peak := tm.Constants.PeakOps
	if peak <= 0 {
		return core.Result{}, fmt.Errorf("analytic: %s: non-positive calibrated peak", e)
	}

	// Structural estimate: the simulator's exact end-to-end decomposition
	// Cycles = T_set + T_calc + T_sync + T_stall, each term fitted on the
	// structural basis. The multiplicative residual absorbs whatever
	// second-order effects the affine terms miss.
	structural := cfgCycles + calc + syncCycles + stall
	cycles := structural
	if structural > 0 && c.Scale > 0 {
		cycles = structural * math.Exp(evalQuadratic(c.Residual, math.Log(float64(e.N)/c.Scale)))
	}
	// The accelerator cannot beat its own peak: never predict below the
	// pure compute bound, and never below one cycle.
	if lower := ops / peak; cycles < lower {
		cycles = lower
	}
	if cycles < 1 {
		cycles = 1
	}

	res := core.Result{
		Target:   e.Target,
		Workload: e.Workload,
		Pipeline: e.Pipeline,
		N:        e.N,
		PeakOps:  peak,
		Analytic: true,
	}
	res.Cycles = toCount(cycles)
	res.HostCycles = toCount(cfgCycles + calc + syncCycles)
	res.StallCycles = toCount(stall)
	res.SyncCycles = toCount(syncCycles)
	res.AccelOps = toCount(ops)
	res.AccelBusyCycles = toCount(c.metric("accel_busy", row))
	res.CalcCycles = toCount(calc)
	res.ConfigCycles = toCount(cfgCycles)
	res.ConfigBytes = toCount(c.metric("config_bytes", row))
	res.ConfigInstrs = toCount(c.metric("config_instrs", row))
	res.HostInstrs = toCount(c.metric("host_instrs", row))
	res.Launches = toCount(c.metric("launches", row))
	return res, nil
}

// PredictedSavings returns the predicted cycle savings of running a cell
// under pipeline `to` instead of pipeline `from` (e.g. Baseline →
// OverlapOnly quantifies overlap savings). Negative savings mean the
// model predicts a slowdown.
func (m *Model) PredictedSavings(target, workload string, from, to core.Pipeline, n int) (float64, error) {
	a, err := m.Predict(core.Experiment{Target: target, Workload: workload, Pipeline: from, N: n})
	if err != nil {
		return 0, err
	}
	b, err := m.Predict(core.Experiment{Target: target, Workload: workload, Pipeline: to, N: n})
	if err != nil {
		return 0, err
	}
	return float64(a.Cycles) - float64(b.Cycles), nil
}

// toCount rounds a non-negative model estimate to a counter value.
func toCount(v float64) uint64 {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	return uint64(v + 0.5)
}

// MarshalPretty serializes the model deterministically (sorted map keys,
// stable float formatting): refitting with the same seed against the
// same simulator yields byte-identical output.
func (m *Model) MarshalPretty() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile saves the model to path.
func (m *Model) WriteFile(path string) error {
	b, err := m.MarshalPretty()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadModel loads a fitted model from path, rejecting schema mismatches.
func ReadModel(path string) (*Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("analytic: %s: %w", path, err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("analytic: %s: schema %d, want %d (refit with cwbench -calibrate)", path, m.Schema, Schema)
	}
	return &m, nil
}
