package irgen_test

import (
	"testing"

	"configwall/internal/ir"
	"configwall/internal/irgen"
)

func profiles(t *testing.T) []irgen.Profile {
	t.Helper()
	return []irgen.Profile{irgen.GemminiProfile(), irgen.OpenGeMMProfile()}
}

// TestGenerateDeterministic: the same seed yields byte-identical modules and
// identical inputs — the property every printed repro seed relies on.
func TestGenerateDeterministic(t *testing.T) {
	for _, prof := range profiles(t) {
		for seed := int64(0); seed < 10; seed++ {
			a, err := irgen.Generate(prof, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", prof.Accel, seed, err)
			}
			b, err := irgen.Generate(prof, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", prof.Accel, seed, err)
			}
			if ir.PrintModule(a.Module) != ir.PrintModule(b.Module) {
				t.Fatalf("%s seed %d: modules differ between runs", prof.Accel, seed)
			}
			if a.P != b.P {
				t.Fatalf("%s seed %d: scalar inputs differ", prof.Accel, seed)
			}
			for i := range a.Buffers {
				if string(a.Buffers[i].Data) != string(b.Buffers[i].Data) {
					t.Fatalf("%s seed %d: buffer %s contents differ", prof.Accel, seed, a.Buffers[i].Name)
				}
			}
		}
	}
}

// TestGenerateVerifiesAndRoundTrips: every generated module passes ir.Verify
// and survives a print/parse/verify round trip (the corpus file format).
func TestGenerateVerifiesAndRoundTrips(t *testing.T) {
	for _, prof := range profiles(t) {
		for seed := int64(0); seed < 50; seed++ {
			p, err := irgen.Generate(prof, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", prof.Accel, seed, err)
			}
			text := ir.PrintModule(p.Module)
			m, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("%s seed %d: reparse: %v\n%s", prof.Accel, seed, err, text)
			}
			if err := ir.Verify(m); err != nil {
				t.Fatalf("%s seed %d: reparsed module does not verify: %v", prof.Accel, seed, err)
			}
		}
	}
}

// TestGenerateCoversStructure: across a modest seed range the generator
// produces loops, branches, chained setups and multiple launches — the
// features the optimization passes exist to handle.
func TestGenerateCoversStructure(t *testing.T) {
	for _, prof := range profiles(t) {
		var total irgen.Stats
		for seed := int64(0); seed < 40; seed++ {
			p, err := irgen.Generate(prof, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", prof.Accel, seed, err)
			}
			total.Loops += p.Stats.Loops
			total.Ifs += p.Stats.Ifs
			total.Setups += p.Stats.Setups
			total.Launches += p.Stats.Launches
			total.NoiseOps += p.Stats.NoiseOps
			total.Stores += p.Stats.Stores
			if p.Stats.Launches < 1 {
				t.Errorf("%s seed %d: no launches generated", prof.Accel, seed)
			}
		}
		if total.Loops == 0 || total.Ifs == 0 || total.Stores == 0 || total.NoiseOps == 0 {
			t.Errorf("%s: structural coverage too thin: %+v", prof.Accel, total)
		}
		if total.Setups < 40 || total.Launches < 40 {
			t.Errorf("%s: too few setups/launches across seeds: %+v", prof.Accel, total)
		}
	}
}

// TestDeriveSeedDecorrelates: neighbouring campaign indices and different
// targets map to distinct program seeds.
func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		for _, target := range []string{"gemmini", "opengemm"} {
			s := irgen.DeriveSeed(1, target, i)
			if seen[s] {
				t.Fatalf("seed collision at index %d target %s", i, target)
			}
			seen[s] = true
		}
	}
	if irgen.DeriveSeed(1, "gemmini", 0) != irgen.DeriveSeed(1, "gemmini", 0) {
		t.Fatal("DeriveSeed is not deterministic")
	}
}
