package irgen

import (
	"fmt"
	"math/bits"
	"math/rand"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// Program is one generated test case: the accfg-level module plus the
// deterministic execution inputs it expects (buffer contents and the scalar
// parameter). The module's "main" takes one memref argument per buffer, in
// order, followed by one i64 scalar.
type Program struct {
	// Accel is the accelerator the program configures.
	Accel string
	// Seed reproduces the program (and its inputs) exactly.
	Seed int64
	// Module is the generated IR; it verifies.
	Module *ir.Module
	// Buffers lists the argument buffers with their initial contents.
	Buffers []BufferData
	// P is the runtime value of the trailing scalar argument.
	P int64
	// Stats summarizes the generated structure.
	Stats Stats
}

// BufferData is one argument buffer instance.
type BufferData struct {
	Name  string
	Bytes uint64
	// Data is the initial contents (nil = zeroed).
	Data []byte
}

// Stats counts the structural features of a generated program.
type Stats struct {
	Loops, Ifs, Setups, Launches, Awaits, NoiseOps, Stores int
}

// Ops returns a rough size measure for reporting.
func (s Stats) Ops() int {
	return s.Loops + s.Ifs + s.Setups + s.Launches + s.Awaits + s.NoiseOps + s.Stores
}

// DeriveSeed maps a campaign seed, target name and program index to the
// per-program generator seed, decorrelating neighbouring indices (splitmix64
// finalizer over an FNV-mixed target hash). cwfuzz prints per-program seeds
// derived with this function, so a report line is enough to reproduce.
func DeriveSeed(campaign int64, target string, index int) int64 {
	h := uint64(campaign) ^ 0xcbf29ce484222325
	for _, c := range []byte(target) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h += uint64(index) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// InputsFor derives the deterministic execution inputs (buffer contents and
// scalar parameter) for a profile and seed. Inputs depend only on (profile,
// seed) — not on the module — so a shrunk module replays against the same
// data that exposed the original divergence.
func InputsFor(prof Profile, seed int64) ([]BufferData, int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eedf00d))
	bufs := make([]BufferData, len(prof.Buffers))
	for i, bs := range prof.Buffers {
		bd := BufferData{Name: bs.Name, Bytes: uint64(bs.Bytes())}
		if bs.Input {
			data := make([]byte, bs.Bytes())
			for j := range data {
				data[j] = byte(rng.Intn(256))
			}
			bd.Data = data
		}
		bufs[i] = bd
	}
	// Small scalar so generated comparisons against small constants take
	// both outcomes across seeds.
	return bufs, rng.Int63n(16)
}

// generation tuning knobs (kept as constants so campaigns stay comparable
// across runs; randomness comes exclusively from the seeded rng).
const (
	maxDepth       = 2 // control-flow nesting below the function body
	maxTopChunks   = 6
	minTopChunks   = 3
	maxShiftAmount = 8 // literal shift amounts stay well under the 63-bit mask
)

// Generate builds the random program for a profile and seed. The same
// (profile, seed) pair always returns a byte-identical module and inputs.
func Generate(prof Profile, seed int64) (Program, error) {
	g := &gen{
		rng:  rand.New(rand.NewSource(seed)),
		prof: prof,
	}

	m := ir.NewModule()
	var argTypes []ir.Type
	for _, b := range prof.Buffers {
		argTypes = append(argTypes, b.Type())
	}
	argTypes = append(argTypes, ir.I64)
	f := fnc.NewFunc("main", ir.FuncType(argTypes, nil))
	m.Append(f.Op)

	b := ir.AtEnd(f.Body())
	g.bases = make([]*ir.Value, len(prof.Buffers))
	g.bufArgs = make([]*ir.Value, len(prof.Buffers))
	for i := range prof.Buffers {
		g.bufArgs[i] = f.Body().Arg(i)
		if i == prof.Scratch {
			continue
		}
		g.bases[i] = memref.NewExtractPointer(b, f.Body().Arg(i))
		g.bases[i].SetName("base" + prof.Buffers[i].Name)
	}
	g.scratch = f.Body().Arg(prof.Scratch)
	g.p = f.Body().Arg(len(prof.Buffers))
	g.p.SetName("p")

	s := &scope{b: b}
	s.inv = append(s.inv, g.p)

	// Every program starts with a full, valid configuration and one
	// launch/await pair: after this prologue the device registers hold safe
	// values for every field, so later partial rewrites (which always write
	// safe values themselves) can never produce an invalid launch.
	g.emitSetup(s, g.allGroups(), false)
	g.emitLaunch(s, true)

	for n := minTopChunks + g.rng.Intn(maxTopChunks-minTopChunks+1); n > 0; n-- {
		g.chunk(s)
	}
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		return Program{}, fmt.Errorf("irgen: generated module for seed %d does not verify: %w", seed, err)
	}

	bufs, p := InputsFor(prof, seed)
	return Program{
		Accel:   prof.Accel,
		Seed:    seed,
		Module:  m,
		Buffers: bufs,
		P:       p,
		Stats:   g.stats,
	}, nil
}

// gen carries generation state shared across scopes.
type gen struct {
	rng     *rand.Rand
	prof    Profile
	stats   Stats
	bases   []*ir.Value // i64 base address per buffer (nil for scratch)
	bufArgs []*ir.Value // memref arguments, in signature order
	scratch *ir.Value   // scratch memref argument
	p       *ir.Value   // scalar i64 argument
}

// scope is one generation context: an insertion point plus everything
// visible there. Child scopes copy the value pools so definitions made
// inside nested regions never leak into enclosing code (dominance), and the
// live accfg state never leaks out of a region that reconfigured the
// accelerator (soundness of explicit state chaining).
type scope struct {
	b     *ir.Builder
	depth int
	ivIdx []*ir.Value // enclosing induction variables (index-typed), outermost first
	iv64  []*ir.Value // their i64 casts
	// cur is the most recent state value valid on *every* path reaching the
	// insertion point; nil when unknown (e.g. after a region that
	// reconfigured the accelerator). Only cur may be used for explicit
	// in_state chaining.
	cur *ir.Value
	// inv holds loop-invariant-class i64 values (constants, the scalar
	// argument, expressions over them); vary holds values derived from
	// enclosing induction variables.
	inv  []*ir.Value
	vary []*ir.Value
}

// child clones the scope for a nested region.
func (s *scope) child(b *ir.Builder) *scope {
	c := &scope{
		b:     b,
		depth: s.depth + 1,
		ivIdx: append([]*ir.Value{}, s.ivIdx...),
		iv64:  append([]*ir.Value{}, s.iv64...),
		cur:   s.cur,
		inv:   append([]*ir.Value{}, s.inv...),
		vary:  append([]*ir.Value{}, s.vary...),
	}
	return c
}

func (g *gen) allGroups() []Group { return g.prof.Groups }

// pickGroups selects up to n distinct groups in deterministic rng order.
func (g *gen) pickGroups(n int) []Group {
	if n <= 0 {
		return nil
	}
	perm := g.rng.Perm(len(g.prof.Groups))
	if n > len(perm) {
		n = len(perm)
	}
	out := make([]Group, 0, n)
	for _, i := range perm[:n] {
		out = append(out, g.prof.Groups[i])
	}
	return out
}

// chunk emits one random program fragment at the scope's insertion point.
func (g *gen) chunk(s *scope) {
	r := g.rng.Float64()
	switch {
	case s.depth < maxDepth && r < 0.24:
		g.forChunk(s)
	case s.depth < maxDepth && r < 0.38:
		g.ifChunk(s)
	case r < 0.55:
		g.noise(s)
	default:
		g.launchBlock(s)
	}
}

// launchBlock emits 0..2 delta setups, a launch, and (usually) an await.
func (g *gen) launchBlock(s *scope) {
	nset := g.rng.Intn(3)
	if s.cur == nil && nset == 0 {
		nset = 1
	}
	for i := 0; i < nset; i++ {
		groups := g.pickGroups(1 + g.rng.Intn(3))
		chain := g.rng.Float64() < 0.6
		g.emitSetup(s, groups, chain)
	}
	if s.cur == nil {
		// Defensive: a state value is required to launch.
		g.emitSetup(s, nil, false)
	}
	g.emitLaunch(s, g.rng.Float64() < 0.9)
}

// emitSetup writes the given groups in one accfg.setup. Atomic groups keep
// uniform loop-variance: the whole group either uses the chosen induction
// variable or stays loop-invariant, so bit-packed configuration
// instructions never mix hoistable and non-hoistable slots (which would let
// the hoisting pass split one instruction into two).
func (g *gen) emitSetup(s *scope, groups []Group, chain bool) {
	var fields []accfg.Field
	for _, grp := range groups {
		var iv *ir.Value
		if grp.CanVary && len(s.iv64) > 0 && g.rng.Intn(2) == 0 {
			iv = s.iv64[g.rng.Intn(len(s.iv64))]
		}
		for _, f := range grp.Fields {
			fields = append(fields, accfg.Field{Name: f.Name, Value: g.fieldValue(s, f, iv)})
		}
	}
	var in *ir.Value
	if chain && s.cur != nil {
		in = s.cur
	}
	st := accfg.NewSetup(s.b, g.prof.Accel, in, fields)
	s.cur = st.State()
	g.stats.Setups++
}

// emitLaunch launches the current state and optionally awaits the token.
func (g *gen) emitLaunch(s *scope, await bool) {
	l := accfg.NewLaunch(s.b, s.cur)
	g.stats.Launches++
	if await {
		accfg.NewAwait(s.b, l.Token())
		g.stats.Awaits++
	}
}

// fieldValue builds one field's SSA value. iv != nil selects the
// loop-varying form for roles that support it.
func (g *gen) fieldValue(s *scope, f Field, iv *ir.Value) *ir.Value {
	switch f.Role {
	case RoleAddress:
		return g.addrValue(s, f, iv)
	case RoleStride:
		return g.constI64(s, int64(g.prof.Buffers[f.Buf].StrideBytes()))
	case RoleSize:
		return g.sizeValue(s, iv)
	case RoleFlag:
		return g.constI64(s, int64(g.rng.Intn(2)))
	case RoleZero:
		return g.constI64(s, 0)
	default: // RoleFree
		return g.freeValue(s, iv)
	}
}

// addrValue returns the field's buffer base, optionally offset by one
// TileRows-row block selected by the induction variable — the loop-varying
// tiled-addressing idiom of the real workloads. The offset keeps the
// device's maximal access (MaxTiles tiles plus one block) inside the
// buffer.
func (g *gen) addrValue(s *scope, f Field, iv *ir.Value) *ir.Value {
	if f.Nullable && g.rng.Float64() < 0.35 {
		return g.constI64(s, 0)
	}
	base := g.bases[f.Buf]
	if iv == nil {
		return base
	}
	block := g.prof.TileRows * g.prof.Buffers[f.Buf].StrideBytes()
	shift := int64(bits.TrailingZeros(uint(block)))
	bit := arith.NewBinary(s.b, arith.OpAndI, iv, g.constI64(s, 1))
	off := arith.NewShl(s.b, bit, g.constI64(s, shift))
	return arith.NewAdd(s.b, base, off)
}

// sizeValue returns a tile count in [1, MaxTiles]; the varying form is
// 1 + (iv & (MaxTiles-1)).
func (g *gen) sizeValue(s *scope, iv *ir.Value) *ir.Value {
	if iv == nil {
		return g.constI64(s, 1+int64(g.rng.Intn(g.prof.MaxTiles)))
	}
	masked := arith.NewBinary(s.b, arith.OpAndI, iv, g.constI64(s, int64(g.prof.MaxTiles-1)))
	return arith.NewAdd(s.b, masked, g.constI64(s, 1))
}

// freeValue builds an arbitrary i64 expression. With iv set, the expression
// is rooted at the induction variable (loop-varying); otherwise it only
// draws from the invariant pool, so it stays hoistable.
func (g *gen) freeValue(s *scope, iv *ir.Value) *ir.Value {
	v := iv
	if v == nil {
		v = g.invLeaf(s)
	}
	for n := g.rng.Intn(3); n > 0; n-- {
		v = arith.NewBinary(s.b, g.pickArithOp(), v, g.invLeaf(s))
	}
	return v
}

// invLeaf picks a loop-invariant-class leaf value.
func (g *gen) invLeaf(s *scope) *ir.Value {
	if len(s.inv) > 0 && g.rng.Float64() < 0.4 {
		return s.inv[g.rng.Intn(len(s.inv))]
	}
	return g.constI64(s, g.rng.Int63n(1024))
}

// pickArithOp selects a closed i64 binary op (no shifts or divisions — those
// need constrained right operands and are exercised by noise instead).
func (g *gen) pickArithOp() string {
	ops := []string{arith.OpAddI, arith.OpMulI, arith.OpXOrI, arith.OpOrI, arith.OpAndI, arith.OpSubI}
	return ops[g.rng.Intn(len(ops))]
}

func (g *gen) constI64(s *scope, v int64) *ir.Value {
	return arith.NewConstant(s.b, v, ir.I64)
}

// forChunk emits an scf.for with constant bounds and a generated body. The
// live state never chains across the loop boundary: iteration 2 sees the
// registers iteration 1 left behind, which only the state-tracing pass can
// model soundly (via loop-carried state arguments).
func (g *gen) forChunk(s *scope) {
	g.stats.Loops++
	lb := arith.NewConstant(s.b, 0, ir.Index)
	trips := []int64{1, 2, 2, 3, 3}
	ub := arith.NewConstant(s.b, trips[g.rng.Intn(len(trips))], ir.Index)
	step := arith.NewConstant(s.b, 1, ir.Index)
	loop := scf.NewFor(s.b, lb, ub, step)

	bb := ir.AtEnd(loop.Body())
	body := s.child(bb)
	body.cur = nil
	iv64 := arith.NewIndexCast(bb, loop.InductionVar(), ir.I64)
	body.ivIdx = append(body.ivIdx, loop.InductionVar())
	body.iv64 = append(body.iv64, iv64)

	setupsBefore := g.stats.Setups
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		g.chunk(body)
	}
	scf.NewYield(bb)

	if g.stats.Setups != setupsBefore {
		// The loop reconfigured the accelerator: any state value from
		// before the loop is stale after it.
		s.cur = nil
	}
}

// ifChunk emits an scf.if on a runtime-dependent condition with generated
// branches. State set inside a branch is only valid on that path, so the
// enclosing scope's state resets when either branch reconfigures.
func (g *gen) ifChunk(s *scope) {
	g.stats.Ifs++
	lhs := g.condLeaf(s)
	rhs := g.condLeaf(s)
	preds := []string{arith.PredEQ, arith.PredNE, arith.PredSLT, arith.PredSLE, arith.PredSGT, arith.PredSGE, arith.PredULT, arith.PredULE}
	cond := arith.NewCmp(s.b, preds[g.rng.Intn(len(preds))], lhs, rhs)
	ifOp := scf.NewIf(s.b, cond)

	setupsBefore := g.stats.Setups
	tb := ir.AtEnd(ifOp.Then())
	then := s.child(tb)
	for n := 1 + g.rng.Intn(2); n > 0; n-- {
		g.chunk(then)
	}
	scf.NewYield(tb)

	eb := ir.AtEnd(ifOp.Else())
	els := s.child(eb)
	for n := g.rng.Intn(2); n > 0; n-- {
		g.chunk(els)
	}
	scf.NewYield(eb)

	if g.stats.Setups != setupsBefore {
		s.cur = nil
	}
}

// condLeaf picks an i64 value for comparison conditions: the scalar
// argument, an induction variable, a pool value or a small constant.
func (g *gen) condLeaf(s *scope) *ir.Value {
	switch g.rng.Intn(4) {
	case 0:
		return g.p
	case 1:
		if len(s.iv64) > 0 {
			return s.iv64[g.rng.Intn(len(s.iv64))]
		}
		return g.constI64(s, g.rng.Int63n(16))
	case 2:
		pool := append(append([]*ir.Value{}, s.inv...), s.vary...)
		if len(pool) > 0 {
			return pool[g.rng.Intn(len(pool))]
		}
		fallthrough
	default:
		return g.constI64(s, g.rng.Int63n(16))
	}
}

// noise emits pure i64 arithmetic (feeding the value pools) and the
// occasional host store to the scratch buffer — code the cleanup passes may
// fold, CSE, hoist or move launches across, none of which may change what
// the accelerator computes.
func (g *gen) noise(s *scope) {
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		g.stats.NoiseOps++
		v := g.noiseOp(s)
		if g.anyVary(v, s) {
			s.vary = append(s.vary, v)
		} else {
			s.inv = append(s.inv, v)
		}
	}
	if g.rng.Float64() < 0.3 {
		g.stats.Stores++
		val := g.poolValue(s)
		if g.rng.Float64() < 0.4 {
			// Store into a device-visible buffer: this makes campaigns
			// sensitive to any pass that reorders launches (whose jobs
			// read and write these buffers) across host memory traffic.
			bi := g.rng.Intn(len(g.prof.Buffers) - 1)
			if bi >= g.prof.Scratch {
				bi++ // skip the scratch slot wherever the profile put it
			}
			buf := g.prof.Buffers[bi]
			memref.NewStore(s.b, val, g.bufArgs[bi], g.indexValue(s, buf.Rows), g.indexValue(s, buf.Cols))
			return
		}
		idx := g.indexValue(s, g.prof.Buffers[g.prof.Scratch].Rows)
		memref.NewStore(s.b, val, g.scratch, idx)
	}
}

// indexValue picks an in-bounds index-typed value: a small constant or an
// enclosing induction variable (always < 4 < any buffer dimension).
func (g *gen) indexValue(s *scope, bound int) *ir.Value {
	if len(s.ivIdx) > 0 && g.rng.Intn(2) == 0 {
		return s.ivIdx[g.rng.Intn(len(s.ivIdx))]
	}
	return arith.NewConstant(s.b, g.rng.Int63n(int64(bound)), ir.Index)
}

// noiseOp emits one random pure op over the pools.
func (g *gen) noiseOp(s *scope) *ir.Value {
	a := g.poolValue(s)
	switch g.rng.Intn(10) {
	case 0: // shift by a small literal
		return arith.NewShl(s.b, a, g.constI64(s, g.rng.Int63n(maxShiftAmount)))
	case 1:
		return arith.NewBinary(s.b, arith.OpShRUI, a, g.constI64(s, g.rng.Int63n(maxShiftAmount)))
	case 2: // unsigned division by a nonzero literal
		return arith.NewBinary(s.b, arith.OpDivUI, a, g.constI64(s, 1+g.rng.Int63n(7)))
	case 3:
		return arith.NewBinary(s.b, arith.OpRemUI, a, g.constI64(s, 1+g.rng.Int63n(7)))
	case 4: // compare + select
		b := g.poolValue(s)
		preds := []string{arith.PredEQ, arith.PredNE, arith.PredULT, arith.PredSGE}
		cond := arith.NewCmp(s.b, preds[g.rng.Intn(len(preds))], a, b)
		return arith.NewSelect(s.b, cond, a, b)
	default:
		return arith.NewBinary(s.b, g.pickArithOp(), a, g.poolValue(s))
	}
}

// poolValue picks any visible i64 value.
func (g *gen) poolValue(s *scope) *ir.Value {
	pool := append(append([]*ir.Value{}, s.inv...), s.vary...)
	pool = append(pool, s.iv64...)
	if len(pool) == 0 || g.rng.Float64() < 0.25 {
		return g.constI64(s, g.rng.Int63n(4096))
	}
	return pool[g.rng.Intn(len(pool))]
}

// anyVary reports whether v is derived from an enclosing induction variable
// (member of the varying pool or an iv cast itself).
func (g *gen) anyVary(v *ir.Value, s *scope) bool {
	for _, x := range s.vary {
		if x == v {
			return true
		}
	}
	for _, x := range s.iv64 {
		if x == v {
			return true
		}
	}
	// Walk one level of operands: noise ops combine pool values directly.
	def := v.DefiningOp()
	if def == nil {
		return false
	}
	for _, o := range def.Operands() {
		for _, x := range s.vary {
			if x == o {
				return true
			}
		}
		for _, x := range s.iv64 {
			if x == o {
				return true
			}
		}
	}
	return false
}
