// Package irgen generates seeded, deterministic random accfg programs for
// differential testing of the optimization pipelines (paper §5): well-formed
// accfg/scf/arith/memref modules with nested loops, branches, chained
// setup/launch/await sequences, and a mix of loop-invariant and loop-varying
// configuration fields. Every generated module verifies, compiles through
// every pipeline, and executes safely on the co-simulator — randomness lives
// in the program *structure*, while addresses, strides and tile counts are
// constrained to stay within the pre-planned buffer arena.
//
// The same seed always yields a byte-identical module and identical buffer
// contents, so a failure found by a fuzzing campaign is reproducible from
// its printed seed alone (see internal/difftest and cmd/cwfuzz).
package irgen

import (
	"fmt"

	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/ir"
)

// Role classifies a configuration field for value generation: what the
// simulated device does with the field decides which values are safe.
type Role int

// Field roles.
const (
	// RoleAddress fields carry a main-memory address the device dereferences;
	// generated values always point into the field's assigned buffer.
	RoleAddress Role = iota
	// RoleStride fields carry a row stride the device multiplies into
	// addresses; generated values equal the assigned buffer's exact stride.
	RoleStride
	// RoleSize fields carry tile counts; generated values stay in
	// [1, Profile.MaxTiles] so accesses stay inside the buffer arena.
	RoleSize
	// RoleFlag fields carry a semantic 0/1 bit (e.g. ReLU on/off).
	RoleFlag
	// RoleZero fields model hardware features the device rejects
	// (transposed operands); generated values are always the constant 0.
	RoleZero
	// RoleFree fields are cost-only (scratchpad bases, DMA shapes): any
	// value is safe, so they get arbitrary expression trees.
	RoleFree
)

// Field is one configuration field the generator may write.
type Field struct {
	Name string
	Role Role
	// Buf indexes Profile.Buffers for RoleAddress / RoleStride fields.
	Buf int
	// Nullable address fields may also take the constant 0 (disabling the
	// optional input, e.g. Gemmini's bias matrix D).
	Nullable bool
}

// Group is a set of fields the generator writes atomically. On bit-packed
// configuration interfaces (Gemmini) a group mirrors one configuration
// instruction: writing only part of such a group would zero the sibling
// slots under the baseline pipeline (which has no known-fields analysis),
// changing semantics relative to the optimized pipelines — so the generator
// always emits whole groups, and gives every field of a group the same
// loop-variance so the hoisting pass moves groups wholesale.
type Group struct {
	Name   string
	Fields []Field
	// CanVary permits loop-varying values when the group is written inside
	// a loop. Groups holding RoleStride/RoleZero/RoleFlag fields stay
	// loop-invariant.
	CanVary bool
}

// BufferSpec describes one function-argument buffer of generated programs.
type BufferSpec struct {
	Name string
	Elem ir.Type
	// Rows/Cols are the memref dimensions; Cols == 0 marks a 1-D memref.
	Rows, Cols int
	// Input buffers get seeded random contents; others start zeroed.
	Input bool
}

// ElemBytes returns the element width in bytes.
func (b BufferSpec) ElemBytes() int {
	w := ir.IntegerWidth(b.Elem) / 8
	if w == 0 {
		w = 1
	}
	return w
}

// StrideBytes returns the row stride in bytes (element size for 1-D).
func (b BufferSpec) StrideBytes() int {
	if b.Cols == 0 {
		return b.ElemBytes()
	}
	return b.Cols * b.ElemBytes()
}

// Bytes returns the buffer size in bytes.
func (b BufferSpec) Bytes() int {
	if b.Cols == 0 {
		return b.Rows * b.ElemBytes()
	}
	return b.Rows * b.StrideBytes()
}

// Type returns the buffer's memref type.
func (b BufferSpec) Type() ir.MemRefType {
	if b.Cols == 0 {
		return ir.MemRef(b.Elem, b.Rows)
	}
	return ir.MemRef(b.Elem, b.Rows, b.Cols)
}

// Profile is everything the generator needs to know about one accelerator:
// its configuration field inventory (grouped at the granularity of the
// configuration interface), the buffer arena generated programs address,
// and the tile-count bound that keeps device accesses inside that arena.
type Profile struct {
	// Accel is the accfg accelerator name.
	Accel string
	// Buffers is the argument-buffer arena in signature order. The last
	// buffer is the host scratch area (never touched by the device).
	Buffers []BufferSpec
	// Scratch indexes the host-noise scratch buffer in Buffers.
	Scratch int
	// Groups is the configuration field inventory.
	Groups []Group
	// MaxTiles bounds RoleSize values; must be a power of two.
	MaxTiles int
	// TileRows is the hardware tile edge in matrix rows (16 for Gemmini's
	// systolic array, 8 for OpenGeMM's mesh): loop-varying addresses step
	// by TileRows-row blocks.
	TileRows int
}

// GemminiProfile builds the generator profile for the Gemmini-style target
// from the accelerator's own configuration sequence, so the two can never
// drift apart. Group granularity follows the RoCC instruction packing.
func GemminiProfile() Profile {
	bufIdx := map[string]int{"A": 0, "B": 1, "C": 2, "D": 3}
	roleOf := func(name string) Field {
		switch name {
		case "A", "B", "C":
			return Field{Name: name, Role: RoleAddress, Buf: bufIdx[name]}
		case "D":
			return Field{Name: name, Role: RoleAddress, Buf: bufIdx[name], Nullable: true}
		case "stride_A", "stride_B", "stride_C", "stride_D":
			return Field{Name: name, Role: RoleStride, Buf: bufIdx[name[len("stride_"):]]}
		case "I", "J", "K":
			return Field{Name: name, Role: RoleSize}
		case "act", "full_C", "low_D":
			return Field{Name: name, Role: RoleFlag}
		case "A_transpose", "B_transpose":
			return Field{Name: name, Role: RoleZero}
		default:
			return Field{Name: name, Role: RoleFree}
		}
	}
	var groups []Group
	for _, ci := range gemmini.Sequence {
		if ci.Launch {
			continue
		}
		g := Group{Name: ci.Name}
		vary := true
		for _, slot := range ci.Slots {
			f := roleOf(slot.Field)
			if f.Role == RoleStride || f.Role == RoleZero || f.Role == RoleFlag {
				vary = false
			}
			g.Fields = append(g.Fields, f)
		}
		g.CanVary = vary
		groups = append(groups, g)
	}
	return Profile{
		Accel: gemmini.Name,
		Buffers: []BufferSpec{
			{Name: "A", Elem: ir.I8, Rows: 64, Cols: 64, Input: true},
			{Name: "B", Elem: ir.I8, Rows: 64, Cols: 64, Input: true},
			{Name: "C", Elem: ir.I8, Rows: 64, Cols: 64},
			{Name: "D", Elem: ir.I32, Rows: 64, Cols: 64, Input: true},
			{Name: "S", Elem: ir.I64, Rows: 256},
		},
		Scratch:  4,
		Groups:   groups,
		MaxTiles: 2,
		TileRows: gemmini.Dim,
	}
}

// OpenGeMMProfile builds the generator profile for the OpenGeMM-style
// target: one single-field group per CSR (the port is not bit-packed, so
// partial rewrites are always faithful).
func OpenGeMMProfile() Profile {
	bufIdx := map[string]int{"ptr_a": 0, "ptr_b": 1, "ptr_c": 2, "stride_a": 0, "stride_b": 1, "stride_c": 2}
	var groups []Group
	for _, name := range opengemm.FieldOrder {
		var f Field
		switch name {
		case "ptr_a", "ptr_b", "ptr_c":
			f = Field{Name: name, Role: RoleAddress, Buf: bufIdx[name]}
		case "stride_a", "stride_b", "stride_c":
			f = Field{Name: name, Role: RoleStride, Buf: bufIdx[name]}
		case "m", "k", "n":
			f = Field{Name: name, Role: RoleSize}
		default: // subtractions, flags
			f = Field{Name: name, Role: RoleFree}
		}
		groups = append(groups, Group{
			Name:    name,
			Fields:  []Field{f},
			CanVary: f.Role != RoleStride,
		})
	}
	return Profile{
		Accel: opengemm.Name,
		Buffers: []BufferSpec{
			{Name: "A", Elem: ir.I8, Rows: 64, Cols: 64, Input: true},
			{Name: "B", Elem: ir.I8, Rows: 64, Cols: 64, Input: true},
			{Name: "C", Elem: ir.I32, Rows: 64, Cols: 64},
			{Name: "S", Elem: ir.I64, Rows: 256},
		},
		Scratch:  3,
		Groups:   groups,
		MaxTiles: 4,
		TileRows: opengemm.MeshRow,
	}
}

// ProfileFor returns the generator profile for a registered accelerator
// name, or an error naming the supported ones.
func ProfileFor(accel string) (Profile, error) {
	switch accel {
	case gemmini.Name:
		return GemminiProfile(), nil
	case opengemm.Name:
		return OpenGeMMProfile(), nil
	}
	return Profile{}, fmt.Errorf("irgen: no generator profile for accelerator %q (have: %s, %s)", accel, gemmini.Name, opengemm.Name)
}
