package ir

// Builder creates operations at a movable insertion point, mirroring MLIR's
// OpBuilder. The zero Builder is unusable; obtain one with NewBuilder or
// AtEnd/Before/After.
type Builder struct {
	block  *Block
	before *Op // insert before this op; nil = append at end of block
}

// NewBuilder returns a builder appending to the end of block.
func NewBuilder(block *Block) *Builder {
	return &Builder{block: block}
}

// AtEnd returns a builder appending at the end of block.
func AtEnd(block *Block) *Builder { return &Builder{block: block} }

// Before returns a builder inserting immediately before op.
func Before(op *Op) *Builder {
	return &Builder{block: op.Block(), before: op}
}

// After returns a builder inserting immediately after op. Ops created later
// keep appearing after previously created ones.
func After(op *Op) *Builder {
	return &Builder{block: op.Block(), before: op.Next()}
}

// SetInsertionPointToEnd moves the insertion point to the end of block.
func (b *Builder) SetInsertionPointToEnd(block *Block) {
	b.block, b.before = block, nil
}

// SetInsertionPointBefore moves the insertion point before op.
func (b *Builder) SetInsertionPointBefore(op *Op) {
	b.block, b.before = op.Block(), op
}

// Block returns the block the builder currently inserts into.
func (b *Builder) Block() *Block { return b.block }

// Insert places a detached op at the insertion point and returns it.
func (b *Builder) Insert(op *Op) *Op {
	if b.before != nil {
		b.block.insertBefore(op, b.before)
	} else {
		b.block.Append(op)
	}
	return op
}

// Create builds and inserts a generic op.
func (b *Builder) Create(name string, operands []*Value, resultTypes []Type) *Op {
	return b.Insert(NewOp(name, operands, resultTypes))
}

// CreateWithAttrs builds and inserts a generic op with attributes.
func (b *Builder) CreateWithAttrs(name string, operands []*Value, resultTypes []Type, attrs map[string]Attribute) *Op {
	op := NewOp(name, operands, resultTypes)
	for k, v := range attrs {
		op.SetAttr(k, v)
	}
	return b.Insert(op)
}
