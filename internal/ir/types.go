// Package ir implements a small SSA-based compiler intermediate
// representation modelled after MLIR. It provides the substrate on which the
// accfg dialect and the configuration-overhead optimizations of the paper
// "The Configuration Wall" (ASPLOS 2026) are built.
//
// The IR is deliberately restricted to structured control flow: every region
// holds exactly one block, and loops/branches are expressed with scf.for and
// scf.if style operations. This keeps dominance trivial (lexical order plus
// nesting) while still expressing everything the paper's pipeline needs.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all IR types. Types are immutable
// values compared with ==, so identical types must be canonicalized by their
// constructors (integer widths, etc. use value types to make == work).
type Type interface {
	// String renders the type in the textual IR syntax, e.g. "i32" or
	// "!accfg.state<\"gemmini\">".
	String() string
}

// IntegerType is an integer type of a fixed bit width (i1, i8, ... i64).
type IntegerType struct {
	Width int
}

func (t IntegerType) String() string { return fmt.Sprintf("i%d", t.Width) }

// Common integer types.
var (
	I1  = IntegerType{1}
	I8  = IntegerType{8}
	I16 = IntegerType{16}
	I32 = IntegerType{32}
	I64 = IntegerType{64}
)

// IndexType is the platform-sized integer used for loop induction variables
// and memory indexing, mirroring MLIR's index type.
type IndexType struct{}

func (IndexType) String() string { return "index" }

// Index is the canonical IndexType instance.
var Index = IndexType{}

// NoneType is the unit type for ops that produce a token-like placeholder.
type NoneType struct{}

func (NoneType) String() string { return "none" }

// StateType is !accfg.state<"accel">: the SSA-tracked snapshot of an
// accelerator's configuration register file (paper §5.1).
type StateType struct {
	Accelerator string
}

func (t StateType) String() string {
	return fmt.Sprintf("!accfg.state<%q>", t.Accelerator)
}

// TokenType is !accfg.token<"accel">: an in-flight accelerator launch that
// can be awaited (paper §5.1).
type TokenType struct {
	Accelerator string
}

func (t TokenType) String() string {
	return fmt.Sprintf("!accfg.token<%q>", t.Accelerator)
}

// MemRefType is a minimal ranked memref: a shaped buffer of integers.
// A dimension of DynamicSize means the extent is unknown at compile time.
type MemRefType struct {
	// Shape holds one extent per dimension; DynamicSize marks dynamic dims.
	// Shape is stored as a string key because Go slices are not comparable;
	// use MemRef() to construct and Dims() to read.
	shape string
	Elem  Type
}

// DynamicSize marks a dynamic dimension extent in a MemRefType.
const DynamicSize = -1

// MemRef builds a MemRefType from dimension extents.
func MemRef(elem Type, dims ...int) MemRefType {
	parts := make([]string, len(dims))
	for i, d := range dims {
		if d == DynamicSize {
			parts[i] = "?"
		} else {
			parts[i] = fmt.Sprint(d)
		}
	}
	return MemRefType{shape: strings.Join(parts, "x"), Elem: elem}
}

// Dims returns the dimension extents of the memref.
func (t MemRefType) Dims() []int {
	if t.shape == "" {
		return nil
	}
	parts := strings.Split(t.shape, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		if p == "?" {
			dims[i] = DynamicSize
		} else {
			fmt.Sscan(p, &dims[i])
		}
	}
	return dims
}

// Rank returns the number of dimensions.
func (t MemRefType) Rank() int {
	if t.shape == "" {
		return 0
	}
	return strings.Count(t.shape, "x") + 1
}

func (t MemRefType) String() string {
	if t.shape == "" {
		return fmt.Sprintf("memref<%s>", t.Elem)
	}
	return fmt.Sprintf("memref<%sx%s>", t.shape, t.Elem)
}

// FunctionType describes the signature of a fnc.func operation.
type FunctionType struct {
	ins  string // cached render of inputs, for comparability
	outs string
	In   []Type
	Out  []Type
}

// FuncType builds a FunctionType. The returned value is comparable only via
// its String form; use Equal for semantic comparison.
func FuncType(in, out []Type) FunctionType {
	f := FunctionType{In: in, Out: out}
	f.ins = typeListString(in)
	f.outs = typeListString(out)
	return f
}

func typeListString(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

func (t FunctionType) String() string {
	return fmt.Sprintf("(%s) -> (%s)", t.ins, t.outs)
}

// Equal reports whether two function types have identical signatures.
func (t FunctionType) Equal(o FunctionType) bool {
	return t.String() == o.String()
}

// TypesEqual reports whether two types are identical.
func TypesEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// IsInteger reports whether t is an IntegerType or IndexType (both are
// treated as integers by arith folders and the code generator).
func IsInteger(t Type) bool {
	switch t.(type) {
	case IntegerType, IndexType:
		return true
	}
	return false
}

// IntegerWidth returns the bit width of an integer-like type. Index is
// treated as 64 bits wide (the simulated host is RV64).
func IntegerWidth(t Type) int {
	switch tt := t.(type) {
	case IntegerType:
		return tt.Width
	case IndexType:
		return 64
	}
	return 0
}
