package ir

// RewritePattern transforms one op kind. Match must be side-effect free;
// Rewrite may mutate the IR using the provided builder, which is positioned
// before the matched op.
type RewritePattern interface {
	// OpName returns the op name this pattern anchors on, or "" for any op.
	OpName() string
	// MatchAndRewrite attempts the rewrite and reports whether it changed
	// the IR.
	MatchAndRewrite(op *Op, b *Builder) bool
}

// PatternFunc adapts a function to the RewritePattern interface.
type PatternFunc struct {
	Anchor string
	Fn     func(op *Op, b *Builder) bool
}

// OpName returns the anchor op name.
func (p PatternFunc) OpName() string { return p.Anchor }

// MatchAndRewrite invokes the wrapped function.
func (p PatternFunc) MatchAndRewrite(op *Op, b *Builder) bool { return p.Fn(op, b) }

// ApplyPatternsGreedy repeatedly applies patterns across the op subtree until
// a fixpoint, folding and dead-code-eliminating along the way (like MLIR's
// greedy pattern rewrite driver). Returns whether anything changed.
func ApplyPatternsGreedy(root *Op, patterns []RewritePattern) bool {
	changedEver := false
	for iter := 0; iter < 100; iter++ {
		changed := false
		var ops []*Op
		Walk(root, func(op *Op) {
			if op != root {
				ops = append(ops, op)
			}
		})
		for _, op := range ops {
			if op.Block() == nil {
				continue // erased by an earlier pattern this round
			}
			if tryFold(op) {
				changed = true
				continue
			}
			for _, p := range patterns {
				if p.OpName() != "" && p.OpName() != op.Name() {
					continue
				}
				b := Before(op)
				if p.MatchAndRewrite(op, b) {
					changed = true
					break
				}
			}
		}
		if eraseTriviallyDead(root) {
			changed = true
		}
		if !changed {
			return changedEver
		}
		changedEver = true
	}
	return changedEver
}

// tryFold invokes the registered folder for op. When the folder produces
// replacement values, op's results are replaced and op erased.
func tryFold(op *Op) bool {
	if op.HasAttr("volatile") {
		// Volatile ops model the paper's volatile-asm baseline: the
		// compiler must emit them verbatim, so no folding either.
		return false
	}
	info, ok := Lookup(op.Name())
	if !ok || info.Fold == nil {
		return false
	}
	repls, inPlace := info.Fold(op)
	if inPlace {
		return true
	}
	if repls == nil {
		return false
	}
	for i, r := range repls {
		if r == nil {
			return false // partial folds unsupported
		}
		_ = i
	}
	for i, r := range repls {
		op.Result(i).ReplaceAllUsesWith(r)
	}
	op.Erase()
	return true
}

// eraseTriviallyDead removes pure ops whose results are all unused,
// iterating until fixpoint within the subtree. Returns whether anything was
// erased.
func eraseTriviallyDead(root *Op) bool {
	erased := false
	for {
		var dead []*Op
		Walk(root, func(op *Op) {
			if op == root || op.Block() == nil {
				return
			}
			if !IsPure(op) {
				return
			}
			for _, r := range op.Results() {
				if r.NumUses() > 0 {
					return
				}
			}
			dead = append(dead, op)
		})
		if len(dead) == 0 {
			return erased
		}
		// Erase in reverse walk order so users die before producers.
		for i := len(dead) - 1; i >= 0; i-- {
			op := dead[i]
			if op.Block() == nil {
				continue
			}
			live := false
			for _, r := range op.Results() {
				if r.NumUses() > 0 {
					live = true
				}
			}
			if !live {
				op.Erase()
				erased = true
			}
		}
	}
}
