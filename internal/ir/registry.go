package ir

import (
	"fmt"
	"sort"
	"sync"
)

// Trait is a structural property of an op kind used by generic passes.
type Trait int

const (
	// TraitPure marks ops with no side effects: they can be CSE'd, hoisted,
	// and dead-code eliminated.
	TraitPure Trait = iota
	// TraitTerminator marks block terminators (scf.yield, fnc.return).
	TraitTerminator
	// TraitConstant marks materialized constants (arith.constant).
	TraitConstant
	// TraitIsolated marks ops whose regions cannot reference values defined
	// outside (fnc.func, builtin.module).
	TraitIsolated
)

// OpInfo describes a registered operation kind.
type OpInfo struct {
	// Name is the dialect-qualified op name.
	Name string
	// Traits lists the op's structural properties.
	Traits []Trait
	// Verify checks op-specific invariants; nil means no extra checks.
	Verify func(*Op) error
	// Fold attempts to simplify the op in place or compute a constant.
	// It returns a replacement value per result (all nil = no fold), or
	// inPlace=true when the op was updated without replacement.
	Fold func(*Op) (replacements []*Value, inPlace bool)
	// Summary is a one-line human description used by cwopt -help-ops.
	Summary string
}

// HasTrait reports whether the op kind carries the given trait.
func (i OpInfo) HasTrait(t Trait) bool {
	for _, tr := range i.Traits {
		if tr == t {
			return true
		}
	}
	return false
}

var (
	registryMu sync.RWMutex
	registry   = map[string]OpInfo{}
)

// Register adds an op kind to the global registry. Registering the same name
// twice panics — dialects own their prefixes.
func Register(info OpInfo) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate registration of op %q", info.Name))
	}
	registry[info.Name] = info
}

// Lookup returns the OpInfo for name. Unregistered names return a zero
// OpInfo with ok=false; generic passes then treat the op conservatively
// (impure, unknown semantics).
func Lookup(name string) (OpInfo, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// RegisteredOps returns all registered op names, sorted.
func RegisteredOps() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsPure reports whether the op has no side effects. The "volatile" unit
// attribute (used to model the paper's volatile-asm baseline) forces an op
// to be treated as impure regardless of its registered traits.
func IsPure(op *Op) bool {
	if op.HasAttr("volatile") {
		return false
	}
	info, ok := Lookup(op.Name())
	return ok && info.HasTrait(TraitPure)
}

// IsTerminator reports whether op is a registered block terminator.
func IsTerminator(op *Op) bool {
	info, ok := Lookup(op.Name())
	return ok && info.HasTrait(TraitTerminator)
}

// IsConstant reports whether op materializes a compile-time constant.
func IsConstant(op *Op) bool {
	info, ok := Lookup(op.Name())
	return ok && info.HasTrait(TraitConstant)
}
