package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads the generic textual form produced by Print/PrintModule back
// into a Module. The outermost op must be builtin.module; a bare op list is
// also accepted and wrapped in a fresh module.
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src), values: map[string]*Value{}}
	p.next()
	if p.tok.kind == tokString && p.tok.text == "builtin.module" {
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokEOF {
			return nil, p.errf("trailing input after module")
		}
		return &Module{op: op}, nil
	}
	m := NewModule()
	for p.tok.kind != tokEOF {
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		m.Append(op)
	}
	return m, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPercent // %name
	tokCaret   // ^
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokLess
	tokGreater
	tokColon
	tokComma
	tokEquals
	tokAt       // @
	tokHash     // #
	tokBang     // !
	tokArrow    // ->
	tokQuestion // ?
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto lex
		}
	}
	return token{kind: tokEOF, pos: l.pos}
lex:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(l.src[l.pos])
				}
			} else {
				sb.WriteByte(l.src[l.pos])
			}
			l.pos++
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: sb.String(), pos: start}
	case c == '%':
		l.pos++
		id := l.lexIdentTail()
		return token{kind: tokPercent, text: id, pos: start}
	case c == '^':
		l.pos++
		l.lexIdentTail() // optional block label, ignored
		return token{kind: tokCaret, pos: start}
	case c == '@':
		l.pos++
		id := l.lexIdentTail()
		return token{kind: tokAt, text: id, pos: start}
	case c == '#':
		l.pos++
		return token{kind: tokHash, pos: start}
	case c == '!':
		l.pos++
		return token{kind: tokBang, pos: start}
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokArrow, pos: start}
	case c == '-' || unicode.IsDigit(rune(c)):
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}
	case unicode.IsLetter(rune(c)) || c == '_':
		id := l.lexIdentTail()
		return token{kind: tokIdent, text: id, pos: start}
	}
	l.pos++
	switch c {
	case '(':
		return token{kind: tokLParen, pos: start}
	case ')':
		return token{kind: tokRParen, pos: start}
	case '{':
		return token{kind: tokLBrace, pos: start}
	case '}':
		return token{kind: tokRBrace, pos: start}
	case '[':
		return token{kind: tokLBracket, pos: start}
	case ']':
		return token{kind: tokRBracket, pos: start}
	case '<':
		return token{kind: tokLess, pos: start}
	case '>':
		return token{kind: tokGreater, pos: start}
	case ':':
		return token{kind: tokColon, pos: start}
	case ',':
		return token{kind: tokComma, pos: start}
	case '=':
		return token{kind: tokEquals, pos: start}
	case '?':
		return token{kind: tokQuestion, pos: start}
	}
	return token{kind: tokEOF, text: string(c), pos: start}
}

func (l *lexer) lexIdentTail() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' {
			l.pos++
		} else {
			break
		}
	}
	return l.src[start:l.pos]
}

type parser struct {
	lex    *lexer
	tok    token
	values map[string]*Value
}

func (p *parser) next() { p.tok = p.lex.next() }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse error at line %d: %s", p.lex.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, got %q", what, p.tok.text)
	}
	p.next()
	return nil
}

// parseOp parses: [%r (, %r)* =] "name" (operands) [(regions)] [{attrs}] : (types) -> (types)
func (p *parser) parseOp() (*Op, error) {
	var resultNames []string
	if p.tok.kind == tokPercent {
		for {
			resultNames = append(resultNames, p.tok.text)
			p.next()
			if p.tok.kind == tokComma {
				p.next()
				if p.tok.kind != tokPercent {
					return nil, p.errf("expected result name after comma")
				}
				continue
			}
			break
		}
		if err := p.expect(tokEquals, "'='"); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokString {
		return nil, p.errf("expected quoted op name, got %q", p.tok.text)
	}
	name := p.tok.text
	p.next()

	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var operandNames []string
	for p.tok.kind == tokPercent {
		operandNames = append(operandNames, p.tok.text)
		p.next()
		if p.tok.kind == tokComma {
			p.next()
		}
	}
	if err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}

	// Regions come before attributes: ({...}, {...})
	var regionBodies []func(*Op) error
	if p.tok.kind == tokLParen {
		p.next()
		for p.tok.kind == tokLBrace {
			body, err := p.parseRegionBody()
			if err != nil {
				return nil, err
			}
			regionBodies = append(regionBodies, body)
			if p.tok.kind == tokComma {
				p.next()
			}
		}
		if err := p.expect(tokRParen, "')' after regions"); err != nil {
			return nil, err
		}
	}

	attrs := map[string]Attribute{}
	if p.tok.kind == tokLBrace {
		var err error
		attrs, err = p.parseAttrDict()
		if err != nil {
			return nil, err
		}
	}

	if err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	operandTypes, err := p.parseTypeList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokArrow, "'->'"); err != nil {
		return nil, err
	}
	resultTypes, err := p.parseTypeList()
	if err != nil {
		return nil, err
	}

	if len(operandTypes) != len(operandNames) {
		return nil, p.errf("op %q: %d operands but %d operand types", name, len(operandNames), len(operandTypes))
	}
	if len(resultTypes) != len(resultNames) {
		return nil, p.errf("op %q: %d results but %d result types", name, len(resultNames), len(resultTypes))
	}

	operands := make([]*Value, len(operandNames))
	for i, n := range operandNames {
		v, ok := p.values[n]
		if !ok {
			return nil, p.errf("use of undefined value %%%s", n)
		}
		if !TypesEqual(v.Type(), operandTypes[i]) {
			return nil, p.errf("type mismatch for %%%s: defined %s, used as %s", n, v.Type(), operandTypes[i])
		}
		operands[i] = v
	}

	op := NewOp(name, operands, resultTypes)
	for k, v := range attrs {
		op.SetAttr(k, v)
	}
	for i, rn := range resultNames {
		p.values[rn] = op.Result(i)
		if !isNumeric(rn) {
			op.Result(i).SetName(rn)
		}
	}
	for _, body := range regionBodies {
		if err := body(op); err != nil {
			return nil, err
		}
	}
	return op, nil
}

func isNumeric(s string) bool {
	for _, c := range s {
		if !unicode.IsDigit(c) {
			return false
		}
	}
	return len(s) > 0
}

// parseRegionBody consumes "{ [^(%a: T, ...):] ops... }" and returns a
// closure that, given the parent op, adds the region and its contents.
// Parsing happens eagerly; only attachment is deferred.
func (p *parser) parseRegionBody() (func(*Op) error, error) {
	if err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var argNames []string
	var argTypes []Type
	if p.tok.kind == tokCaret {
		p.next()
		if err := p.expect(tokLParen, "'(' after '^'"); err != nil {
			return nil, err
		}
		for p.tok.kind == tokPercent {
			argNames = append(argNames, p.tok.text)
			p.next()
			if err := p.expect(tokColon, "':' in block arg"); err != nil {
				return nil, err
			}
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			argTypes = append(argTypes, t)
			if p.tok.kind == tokComma {
				p.next()
			}
		}
		if err := p.expect(tokRParen, "')' after block args"); err != nil {
			return nil, err
		}
		if err := p.expect(tokColon, "':' after block args"); err != nil {
			return nil, err
		}
	}

	// Pre-create a detached block so nested values resolve while parsing.
	region := &Region{}
	region.block = &Block{region: region}
	for i, n := range argNames {
		a := region.block.AddArg(argTypes[i])
		p.values[n] = a
		if !isNumeric(n) {
			a.SetName(n)
		}
	}
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		region.block.Append(op)
	}
	if err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return func(parent *Op) error {
		region.parent = parent
		parent.regions = append(parent.regions, region)
		return nil
	}, nil
}

func (p *parser) parseAttrDict() (map[string]Attribute, error) {
	if err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	attrs := map[string]Attribute{}
	for p.tok.kind == tokIdent || p.tok.kind == tokString {
		key := p.tok.text
		p.next()
		if p.tok.kind == tokEquals {
			p.next()
			a, err := p.parseAttr()
			if err != nil {
				return nil, err
			}
			attrs[key] = a
		} else {
			attrs[key] = UnitAttr{}
		}
		if p.tok.kind == tokComma {
			p.next()
		}
	}
	if err := p.expect(tokRBrace, "'}' closing attributes"); err != nil {
		return nil, err
	}
	return attrs, nil
}

func (p *parser) parseAttr() (Attribute, error) {
	switch p.tok.kind {
	case tokNumber:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		p.next()
		if p.tok.kind == tokColon {
			p.next()
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			return IntegerAttr{Value: v, Type: t}, nil
		}
		return IntegerAttr{Value: v, Type: I64}, nil
	case tokString:
		s := p.tok.text
		p.next()
		return StringAttr{Value: s}, nil
	case tokAt:
		s := p.tok.text
		p.next()
		return SymbolRefAttr{Symbol: s}, nil
	case tokIdent:
		switch p.tok.text {
		case "true":
			p.next()
			return BoolAttr{true}, nil
		case "false":
			p.next()
			return BoolAttr{false}, nil
		case "unit":
			p.next()
			return UnitAttr{}, nil
		}
		// A bare type used as an attribute, e.g. function signatures.
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return TypeAttr{Type: t}, nil
	case tokLBracket:
		p.next()
		var elems []Attribute
		for p.tok.kind != tokRBracket && p.tok.kind != tokEOF {
			a, err := p.parseAttr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, a)
			if p.tok.kind == tokComma {
				p.next()
			}
		}
		if err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		return ArrayAttr{Elems: elems}, nil
	case tokHash:
		p.next()
		if p.tok.kind != tokIdent || p.tok.text != "accfg.effects" {
			return nil, p.errf("unknown #-attribute %q", p.tok.text)
		}
		p.next()
		if err := p.expect(tokLess, "'<'"); err != nil {
			return nil, err
		}
		kind := p.tok.text
		p.next()
		if err := p.expect(tokGreater, "'>'"); err != nil {
			return nil, err
		}
		switch kind {
		case "all":
			return EffectsAttr{EffectsAll}, nil
		case "none":
			return EffectsAttr{EffectsNone}, nil
		}
		return nil, p.errf("unknown effects kind %q", kind)
	case tokLParen:
		// Function type attribute: (T, T) -> (T)
		t, err := p.parseFunctionType()
		if err != nil {
			return nil, err
		}
		return TypeAttr{Type: t}, nil
	case tokBang:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return TypeAttr{Type: t}, nil
	}
	return nil, p.errf("cannot parse attribute at %q", p.tok.text)
}

func (p *parser) parseTypeList() ([]Type, error) {
	if err := p.expect(tokLParen, "'(' starting type list"); err != nil {
		return nil, err
	}
	var out []Type
	for p.tok.kind != tokRParen && p.tok.kind != tokEOF {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if p.tok.kind == tokComma {
			p.next()
		}
	}
	if err := p.expect(tokRParen, "')' closing type list"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseFunctionType() (Type, error) {
	in, err := p.parseTypeList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokArrow, "'->'"); err != nil {
		return nil, err
	}
	out, err := p.parseTypeList()
	if err != nil {
		return nil, err
	}
	return FuncType(in, out), nil
}

func (p *parser) parseType() (Type, error) {
	switch p.tok.kind {
	case tokLParen:
		return p.parseFunctionType()
	case tokBang:
		p.next()
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected dialect type name after '!'")
		}
		name := p.tok.text
		p.next()
		if err := p.expect(tokLess, "'<'"); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errf("expected accelerator name string in %s", name)
		}
		accel := p.tok.text
		p.next()
		if err := p.expect(tokGreater, "'>'"); err != nil {
			return nil, err
		}
		switch name {
		case "accfg.state":
			return StateType{Accelerator: accel}, nil
		case "accfg.token":
			return TokenType{Accelerator: accel}, nil
		}
		return nil, p.errf("unknown dialect type !%s", name)
	case tokIdent:
		name := p.tok.text
		p.next()
		switch {
		case name == "index":
			return Index, nil
		case name == "none":
			return NoneType{}, nil
		case name == "memref":
			if err := p.expect(tokLess, "'<'"); err != nil {
				return nil, err
			}
			// The shape "64x64xi8" lexes as several number/ident tokens;
			// join their text until the closing '>'.
			var spec strings.Builder
			for p.tok.kind == tokNumber || p.tok.kind == tokIdent || p.tok.kind == tokQuestion {
				if p.tok.kind == tokQuestion {
					spec.WriteByte('?')
				} else {
					spec.WriteString(p.tok.text)
				}
				p.next()
			}
			if err := p.expect(tokGreater, "'>'"); err != nil {
				return nil, err
			}
			return parseMemRefSpec(spec.String())
		case len(name) > 1 && name[0] == 'i' && isNumeric(name[1:]):
			w, _ := strconv.Atoi(name[1:])
			return IntegerType{Width: w}, nil
		}
		return nil, p.errf("unknown type %q", name)
	}
	return nil, p.errf("cannot parse type at %q", p.tok.text)
}

func parseMemRefSpec(spec string) (Type, error) {
	parts := strings.Split(spec, "x")
	var dims []int
	elem := Type(nil)
	for i, part := range parts {
		if i == len(parts)-1 {
			switch {
			case part == "index":
				elem = Index
			case len(part) > 1 && part[0] == 'i' && isNumeric(part[1:]):
				w, _ := strconv.Atoi(part[1:])
				elem = IntegerType{Width: w}
			default:
				return nil, fmt.Errorf("bad memref element type %q", part)
			}
			continue
		}
		if part == "?" {
			dims = append(dims, DynamicSize)
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad memref dimension %q", part)
		}
		dims = append(dims, n)
	}
	return MemRef(elem, dims...), nil
}
