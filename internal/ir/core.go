package ir

import (
	"fmt"
)

// Value is an SSA value: either the result of an Op or a block argument.
// Every Value tracks its uses so passes can rewrite the program safely.
type Value struct {
	typ   Type
	def   *Op    // defining op; nil for block arguments
	owner *Block // owning block for block arguments; nil for op results
	index int    // result index or argument index
	uses  []Use  // operand slots that read this value
	name  string // optional printing hint ("%name")
}

// Use identifies one operand slot of an operation.
type Use struct {
	Op    *Op
	Index int
}

// Type returns the value's type.
func (v *Value) Type() Type { return v.typ }

// DefiningOp returns the op producing this value, or nil for block arguments.
func (v *Value) DefiningOp() *Op { return v.def }

// OwnerBlock returns the block this value is an argument of, or nil.
func (v *Value) OwnerBlock() *Block { return v.owner }

// ResultIndex returns the result or argument index of the value.
func (v *Value) ResultIndex() int { return v.index }

// IsBlockArg reports whether the value is a block argument.
func (v *Value) IsBlockArg() bool { return v.owner != nil }

// Uses returns a snapshot of the operand slots reading this value.
func (v *Value) Uses() []Use {
	out := make([]Use, len(v.uses))
	copy(out, v.uses)
	return out
}

// NumUses returns the number of operand slots reading this value.
func (v *Value) NumUses() int { return len(v.uses) }

// HasOneUse reports whether the value is read by exactly one operand slot.
func (v *Value) HasOneUse() bool { return len(v.uses) == 1 }

// SetName sets the printing hint used by the textual printer.
func (v *Value) SetName(name string) { v.name = name }

// Name returns the printing hint (may be empty).
func (v *Value) Name() string { return v.name }

// ReplaceAllUsesWith rewrites every use of v to read new instead.
func (v *Value) ReplaceAllUsesWith(new *Value) {
	if v == new {
		return
	}
	for _, u := range v.Uses() {
		u.Op.SetOperand(u.Index, new)
	}
}

// ReplaceUsesIf rewrites uses of v to read new where pred approves the use.
func (v *Value) ReplaceUsesIf(new *Value, pred func(Use) bool) {
	if v == new {
		return
	}
	for _, u := range v.Uses() {
		if pred(u) {
			u.Op.SetOperand(u.Index, new)
		}
	}
}

func (v *Value) addUse(op *Op, index int) {
	v.uses = append(v.uses, Use{op, index})
}

func (v *Value) removeUse(op *Op, index int) {
	for i, u := range v.uses {
		if u.Op == op && u.Index == index {
			v.uses = append(v.uses[:i], v.uses[i+1:]...)
			return
		}
	}
}

// Op is a generic operation, identified by its dialect-qualified name
// (e.g. "accfg.setup"). Operands, results, attributes, and nested regions
// follow MLIR's generic operation structure.
type Op struct {
	name     string
	operands []*Value
	results  []*Value
	attrs    map[string]Attribute
	regions  []*Region

	block      *Op // unused placeholder to keep struct layout clear
	parent     *Block
	prev, next *Op
}

// NewOp creates a detached operation. resultTypes determines the number and
// types of results. The op must be inserted into a block (Block.Append /
// InsertBefore) before the program is printed or verified.
func NewOp(name string, operands []*Value, resultTypes []Type) *Op {
	op := &Op{
		name:  name,
		attrs: map[string]Attribute{},
	}
	for i, v := range operands {
		op.operands = append(op.operands, v)
		if v != nil {
			v.addUse(op, i)
		}
	}
	for i, t := range resultTypes {
		op.results = append(op.results, &Value{typ: t, def: op, index: i})
	}
	return op
}

// Name returns the dialect-qualified op name.
func (op *Op) Name() string { return op.name }

// Dialect returns the dialect prefix of the op name ("accfg" for
// "accfg.setup"), or "" when the name is unqualified.
func (op *Op) Dialect() string {
	for i := 0; i < len(op.name); i++ {
		if op.name[i] == '.' {
			return op.name[:i]
		}
	}
	return ""
}

// NumOperands returns the operand count.
func (op *Op) NumOperands() int { return len(op.operands) }

// Operand returns operand i.
func (op *Op) Operand(i int) *Value { return op.operands[i] }

// Operands returns a snapshot of the operand list.
func (op *Op) Operands() []*Value {
	out := make([]*Value, len(op.operands))
	copy(out, op.operands)
	return out
}

// SetOperand replaces operand i, maintaining use lists.
func (op *Op) SetOperand(i int, v *Value) {
	if old := op.operands[i]; old != nil {
		old.removeUse(op, i)
	}
	op.operands[i] = v
	if v != nil {
		v.addUse(op, i)
	}
}

// AddOperand appends an operand, maintaining use lists.
func (op *Op) AddOperand(v *Value) {
	op.operands = append(op.operands, v)
	if v != nil {
		v.addUse(op, len(op.operands)-1)
	}
}

// EraseOperand removes operand i and shifts later operands down.
func (op *Op) EraseOperand(i int) {
	if old := op.operands[i]; old != nil {
		old.removeUse(op, i)
	}
	// Later uses shift down by one slot; re-register them.
	for j := i + 1; j < len(op.operands); j++ {
		if v := op.operands[j]; v != nil {
			v.removeUse(op, j)
			v.addUse(op, j-1)
		}
	}
	op.operands = append(op.operands[:i], op.operands[i+1:]...)
}

// SetOperands replaces the whole operand list.
func (op *Op) SetOperands(vs []*Value) {
	for i, old := range op.operands {
		if old != nil {
			old.removeUse(op, i)
		}
	}
	op.operands = op.operands[:0]
	for _, v := range vs {
		op.AddOperand(v)
	}
}

// NumResults returns the result count.
func (op *Op) NumResults() int { return len(op.results) }

// Result returns result i.
func (op *Op) Result(i int) *Value { return op.results[i] }

// Results returns a snapshot of the result list.
func (op *Op) Results() []*Value {
	out := make([]*Value, len(op.results))
	copy(out, op.results)
	return out
}

// AddResult appends a new result value of the given type. Used by passes
// that extend ops in place (e.g. adding loop-carried state to scf.for).
func (op *Op) AddResult(t Type) *Value {
	v := &Value{typ: t, def: op, index: len(op.results)}
	op.results = append(op.results, v)
	return v
}

// EraseResult removes result i, which must have no uses, and reindexes the
// remaining results. Used by dialect-lowering passes that strip types
// (e.g. removing !accfg.state loop-carried values).
func (op *Op) EraseResult(i int) {
	if len(op.results[i].uses) > 0 {
		panic(fmt.Sprintf("ir: erasing result %d of %s with live uses", i, op.name))
	}
	op.results = append(op.results[:i], op.results[i+1:]...)
	for j := i; j < len(op.results); j++ {
		op.results[j].index = j
	}
}

// Attr returns the attribute stored under key, or nil.
func (op *Op) Attr(key string) Attribute { return op.attrs[key] }

// SetAttr stores an attribute under key.
func (op *Op) SetAttr(key string, a Attribute) { op.attrs[key] = a }

// RemoveAttr deletes the attribute stored under key.
func (op *Op) RemoveAttr(key string) { delete(op.attrs, key) }

// HasAttr reports whether key is present.
func (op *Op) HasAttr(key string) bool {
	_, ok := op.attrs[key]
	return ok
}

// AttrKeys returns the attribute keys in unspecified order.
func (op *Op) AttrKeys() []string {
	keys := make([]string, 0, len(op.attrs))
	for k := range op.attrs {
		keys = append(keys, k)
	}
	return keys
}

// IntAttrValue returns the integer value of an IntegerAttr stored under key.
// ok is false when the attribute is absent or not an integer.
func (op *Op) IntAttrValue(key string) (v int64, ok bool) {
	a, isInt := op.attrs[key].(IntegerAttr)
	return a.Value, isInt
}

// StringAttrValue returns the string value stored under key.
func (op *Op) StringAttrValue(key string) (v string, ok bool) {
	a, isStr := op.attrs[key].(StringAttr)
	return a.Value, isStr
}

// NumRegions returns the number of nested regions.
func (op *Op) NumRegions() int { return len(op.regions) }

// Region returns nested region i.
func (op *Op) Region(i int) *Region { return op.regions[i] }

// AddRegion appends a new empty single-block region and returns it.
func (op *Op) AddRegion() *Region {
	r := &Region{parent: op}
	r.block = &Block{region: r}
	op.regions = append(op.regions, r)
	return r
}

// Block returns the block containing this op, or nil when detached.
func (op *Op) Block() *Block { return op.parent }

// ParentOp returns the op owning the region that contains this op, or nil.
func (op *Op) ParentOp() *Op {
	if op.parent == nil || op.parent.region == nil {
		return nil
	}
	return op.parent.region.parent
}

// Next returns the next op in the containing block, or nil.
func (op *Op) Next() *Op { return op.next }

// Prev returns the previous op in the containing block, or nil.
func (op *Op) Prev() *Op { return op.prev }

// Remove unlinks the op from its block without dropping operand uses, so it
// can be re-inserted elsewhere (MoveBefore/MoveAfter use this).
func (op *Op) Remove() {
	if op.parent == nil {
		return
	}
	b := op.parent
	if op.prev != nil {
		op.prev.next = op.next
	} else {
		b.first = op.next
	}
	if op.next != nil {
		op.next.prev = op.prev
	} else {
		b.last = op.prev
	}
	op.prev, op.next, op.parent = nil, nil, nil
}

// Erase unlinks the op and drops its operand uses. The op must have no
// remaining uses of its results; Erase panics otherwise to surface pass bugs
// early.
func (op *Op) Erase() {
	for _, r := range op.results {
		if len(r.uses) > 0 {
			panic(fmt.Sprintf("ir: erasing %s with live uses of result %d", op.name, r.index))
		}
	}
	op.Remove()
	for i, v := range op.operands {
		if v != nil {
			v.removeUse(op, i)
			op.operands[i] = nil
		}
	}
	// Recursively drop nested ops so their operand uses disappear too.
	for _, region := range op.regions {
		blk := region.Block()
		for o := blk.First(); o != nil; {
			next := o.Next()
			o.dropAllUses()
			o.Remove()
			o = next
		}
	}
}

// dropAllUses removes the op's operand uses and recursively those of nested
// ops, without checking result liveness. Used when deleting whole subtrees.
func (op *Op) dropAllUses() {
	for i, v := range op.operands {
		if v != nil {
			v.removeUse(op, i)
			op.operands[i] = nil
		}
	}
	for _, region := range op.regions {
		for o := region.Block().First(); o != nil; o = o.Next() {
			o.dropAllUses()
		}
	}
}

// MoveBefore unlinks the op and re-inserts it immediately before other.
func (op *Op) MoveBefore(other *Op) {
	op.Remove()
	other.parent.insertBefore(op, other)
}

// MoveAfter unlinks the op and re-inserts it immediately after other.
func (op *Op) MoveAfter(other *Op) {
	op.Remove()
	other.parent.insertAfter(op, other)
}

// IsBefore reports whether op appears strictly before other within the same
// block. Both ops must share a block.
func (op *Op) IsBefore(other *Op) bool {
	for o := op.next; o != nil; o = o.next {
		if o == other {
			return true
		}
	}
	return false
}

// IsAncestorOf reports whether other is nested (at any depth) inside op.
func (op *Op) IsAncestorOf(other *Op) bool {
	for p := other; p != nil; p = p.ParentOp() {
		if p == op {
			return true
		}
	}
	return false
}

// Clone deep-copies the op, remapping operands through mapping when present.
// Result values of cloned ops are entered into mapping so nested uses are
// rewired. The clone is detached.
func (op *Op) Clone(mapping map[*Value]*Value) *Op {
	if mapping == nil {
		mapping = map[*Value]*Value{}
	}
	operands := make([]*Value, len(op.operands))
	for i, v := range op.operands {
		if m, ok := mapping[v]; ok {
			operands[i] = m
		} else {
			operands[i] = v
		}
	}
	types := make([]Type, len(op.results))
	for i, r := range op.results {
		types[i] = r.typ
	}
	cl := NewOp(op.name, operands, types)
	for k, v := range op.attrs {
		cl.attrs[k] = v
	}
	for i, r := range op.results {
		cl.results[i].name = r.name
		mapping[r] = cl.results[i]
	}
	for _, region := range op.regions {
		nr := cl.AddRegion()
		src := region.Block()
		for _, arg := range src.Args() {
			na := nr.Block().AddArg(arg.typ)
			na.name = arg.name
			mapping[arg] = na
		}
		for o := src.First(); o != nil; o = o.Next() {
			nr.Block().Append(o.Clone(mapping))
		}
	}
	return cl
}

// Region is a single-block region nested under an op.
type Region struct {
	parent *Op
	block  *Block
}

// Block returns the region's single block.
func (r *Region) Block() *Block { return r.block }

// ParentOp returns the op owning this region.
func (r *Region) ParentOp() *Op { return r.parent }

// Block is an ordered list of operations plus block arguments.
type Block struct {
	region      *Region
	args        []*Value
	first, last *Op
}

// Region returns the region containing this block.
func (b *Block) Region() *Region { return b.region }

// ParentOp returns the op owning the region containing this block, or nil.
func (b *Block) ParentOp() *Op {
	if b.region == nil {
		return nil
	}
	return b.region.parent
}

// AddArg appends a new block argument of the given type.
func (b *Block) AddArg(t Type) *Value {
	v := &Value{typ: t, owner: b, index: len(b.args)}
	b.args = append(b.args, v)
	return v
}

// Args returns a snapshot of the block arguments.
func (b *Block) Args() []*Value {
	out := make([]*Value, len(b.args))
	copy(out, b.args)
	return out
}

// NumArgs returns the number of block arguments.
func (b *Block) NumArgs() int { return len(b.args) }

// Arg returns block argument i.
func (b *Block) Arg(i int) *Value { return b.args[i] }

// EraseArg removes block argument i. It must have no uses.
func (b *Block) EraseArg(i int) {
	if len(b.args[i].uses) > 0 {
		panic("ir: erasing block argument with live uses")
	}
	b.args = append(b.args[:i], b.args[i+1:]...)
	for j := i; j < len(b.args); j++ {
		b.args[j].index = j
	}
}

// First returns the first op, or nil when the block is empty.
func (b *Block) First() *Op { return b.first }

// Last returns the last op (by convention the terminator), or nil.
func (b *Block) Last() *Op { return b.last }

// Empty reports whether the block holds no ops.
func (b *Block) Empty() bool { return b.first == nil }

// Len counts the ops in the block.
func (b *Block) Len() int {
	n := 0
	for op := b.first; op != nil; op = op.next {
		n++
	}
	return n
}

// Ops returns a snapshot slice of the ops in order. Useful when mutating the
// block while iterating.
func (b *Block) Ops() []*Op {
	var out []*Op
	for op := b.first; op != nil; op = op.next {
		out = append(out, op)
	}
	return out
}

// Append inserts op at the end of the block.
func (b *Block) Append(op *Op) {
	if op.parent != nil {
		panic("ir: appending op already in a block")
	}
	op.parent = b
	op.prev = b.last
	if b.last != nil {
		b.last.next = op
	} else {
		b.first = op
	}
	b.last = op
}

func (b *Block) insertBefore(op, ref *Op) {
	op.parent = b
	op.next = ref
	op.prev = ref.prev
	if ref.prev != nil {
		ref.prev.next = op
	} else {
		b.first = op
	}
	ref.prev = op
}

func (b *Block) insertAfter(op, ref *Op) {
	op.parent = b
	op.prev = ref
	op.next = ref.next
	if ref.next != nil {
		ref.next.prev = op
	} else {
		b.last = op
	}
	ref.next = op
}

// Walk visits op and every op nested within its regions in pre-order. The
// callback may erase the visited op (but not its siblings).
func Walk(op *Op, fn func(*Op)) {
	// Capture regions before the callback in case it erases op.
	regions := op.regions
	fn(op)
	for _, r := range regions {
		for _, o := range r.Block().Ops() {
			Walk(o, fn)
		}
	}
}

// WalkBlock visits every op in the block (and nested regions) in pre-order.
func WalkBlock(b *Block, fn func(*Op)) {
	for _, op := range b.Ops() {
		Walk(op, fn)
	}
}

// Module is the top-level container: a builtin.module op with one region
// holding the program's functions.
type Module struct {
	op *Op
}

// NewModule creates an empty module.
func NewModule() *Module {
	op := NewOp("builtin.module", nil, nil)
	op.AddRegion()
	return &Module{op: op}
}

// Op returns the underlying builtin.module operation.
func (m *Module) Op() *Op { return m.op }

// Block returns the module body block.
func (m *Module) Block() *Block { return m.op.Region(0).Block() }

// Append adds a top-level op (typically a fnc.func) to the module.
func (m *Module) Append(op *Op) { m.Block().Append(op) }

// Funcs returns the fnc.func ops in the module, in order.
func (m *Module) Funcs() []*Op {
	var out []*Op
	for _, op := range m.Block().Ops() {
		if op.Name() == "fnc.func" {
			out = append(out, op)
		}
	}
	return out
}

// FindFunc returns the fnc.func with the given symbol name, or nil.
func (m *Module) FindFunc(name string) *Op {
	for _, f := range m.Funcs() {
		if sym, ok := f.StringAttrValue("sym_name"); ok && sym == name {
			return f
		}
	}
	return nil
}

// Walk visits every op in the module in pre-order.
func (m *Module) Walk(fn func(*Op)) { Walk(m.op, fn) }

// Clone deep-copies the module.
func (m *Module) Clone() *Module {
	return &Module{op: m.op.Clone(nil)}
}
