package ir

import (
	"fmt"
	"strings"
)

// Pass transforms a module. Passes are the unit of composition in the
// compilation pipelines (paper Figure 8).
type Pass interface {
	// Name returns the pass's pipeline name (e.g. "accfg-dedup").
	Name() string
	// Run applies the pass to the module.
	Run(m *Module) error
}

// PassFunc adapts a function to the Pass interface.
type PassFunc struct {
	PassName string
	Fn       func(m *Module) error
}

// Name returns the pass name.
func (p PassFunc) Name() string { return p.PassName }

// Run invokes the wrapped function.
func (p PassFunc) Run(m *Module) error { return p.Fn(m) }

// PassManager runs a sequence of passes, optionally verifying the IR between
// passes and recording per-pass statistics.
type PassManager struct {
	passes []Pass
	// VerifyEach enables IR verification after every pass (on by default in
	// NewPassManager).
	VerifyEach bool
	// CheckEach, when set, receives every pass name together with the
	// module state before and after that pass ran (the before module is a
	// private clone). It is the hook the static config-state checker
	// (internal/analysis.PassCheck) plugs into: a non-nil error aborts the
	// pipeline, attributed to the offending pass. Cloning only happens
	// when the hook is set, so plain pipelines pay nothing.
	CheckEach func(pass string, before, after *Module) error
	// Stats accumulates a human-readable log line per executed pass.
	Stats []string
}

// NewPassManager returns a PassManager with per-pass verification enabled.
func NewPassManager(passes ...Pass) *PassManager {
	return &PassManager{passes: passes, VerifyEach: true}
}

// Add appends passes to the pipeline.
func (pm *PassManager) Add(passes ...Pass) *PassManager {
	pm.passes = append(pm.passes, passes...)
	return pm
}

// Passes returns the pipeline's pass names in order.
func (pm *PassManager) Passes() []string {
	names := make([]string, len(pm.passes))
	for i, p := range pm.passes {
		names[i] = p.Name()
	}
	return names
}

// Run executes the pipeline on m.
func (pm *PassManager) Run(m *Module) error {
	for _, p := range pm.passes {
		before := CountOps(m)
		var snapshot *Module
		if pm.CheckEach != nil {
			snapshot = m.Clone()
		}
		if err := p.Run(m); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if pm.VerifyEach {
			if err := Verify(m); err != nil {
				return fmt.Errorf("verifier failed after pass %s: %w", p.Name(), err)
			}
		}
		if pm.CheckEach != nil {
			if err := pm.CheckEach(p.Name(), snapshot, m); err != nil {
				return fmt.Errorf("static check failed after pass %s: %w", p.Name(), err)
			}
		}
		after := CountOps(m)
		pm.Stats = append(pm.Stats, fmt.Sprintf("%-32s ops: %4d -> %4d", p.Name(), before, after))
	}
	return nil
}

// String renders the pipeline like "a,b,c".
func (pm *PassManager) String() string {
	return strings.Join(pm.Passes(), ",")
}

// CountOps counts all ops in the module (excluding builtin.module itself).
func CountOps(m *Module) int {
	n := 0
	m.Walk(func(op *Op) {
		if op.Name() != "builtin.module" {
			n++
		}
	})
	return n
}

// CountOpsNamed counts ops with the given name in the module.
func CountOpsNamed(m *Module, name string) int {
	n := 0
	m.Walk(func(op *Op) {
		if op.Name() == name {
			n++
		}
	})
	return n
}
