package ir

import (
	"fmt"
)

// Verify checks structural IR invariants over the whole module:
//
//   - operands/results are non-nil and use lists are consistent,
//   - every operand is visible at its use site (defined earlier in the same
//     block, or in a lexically enclosing block — the structured-control-flow
//     dominance rule), unless the enclosing op is isolated-from-above,
//   - per-op verifiers registered in the dialect registry pass.
func Verify(m *Module) error { return VerifyOp(m.Op()) }

// VerifyOp checks the invariants for one op subtree.
func VerifyOp(root *Op) error {
	visible := map[*Value]bool{}
	return verifyOp(root, visible)
}

func verifyOp(op *Op, visible map[*Value]bool) error {
	for i, operand := range op.Operands() {
		if operand == nil {
			return fmt.Errorf("op %s: operand %d is nil", op.Name(), i)
		}
		if !visible[operand] {
			return fmt.Errorf("op %s: operand %d (%s) is not visible at use site (dominance violation)", op.Name(), i, operand.Type())
		}
		// Use-list consistency.
		found := false
		for _, u := range operand.Uses() {
			if u.Op == op && u.Index == i {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("op %s: operand %d missing from use list", op.Name(), i)
		}
	}
	if info, ok := Lookup(op.Name()); ok && info.Verify != nil {
		if err := info.Verify(op); err != nil {
			return fmt.Errorf("op %s: %w", op.Name(), err)
		}
	}
	for _, r := range op.Results() {
		visible[r] = true
	}
	info, registered := Lookup(op.Name())
	isolated := registered && info.HasTrait(TraitIsolated)
	for ri := 0; ri < op.NumRegions(); ri++ {
		blk := op.Region(ri).Block()
		var scope map[*Value]bool
		if isolated {
			scope = map[*Value]bool{}
		} else {
			scope = map[*Value]bool{}
			for v := range visible {
				scope[v] = true
			}
		}
		for _, a := range blk.Args() {
			scope[a] = true
		}
		for _, o := range blk.Ops() {
			if err := verifyOp(o, scope); err != nil {
				return err
			}
		}
		if err := verifyTerminator(op, blk); err != nil {
			return err
		}
	}
	return nil
}

func verifyTerminator(parent *Op, blk *Block) error {
	// Structured-control-flow ops require their block to end in a
	// terminator. The module body is exempt.
	switch parent.Name() {
	case "builtin.module":
		return nil
	}
	last := blk.Last()
	if last == nil {
		return fmt.Errorf("op %s: empty region body (missing terminator)", parent.Name())
	}
	if !IsTerminator(last) {
		return fmt.Errorf("op %s: region does not end in a terminator (ends in %s)", parent.Name(), last.Name())
	}
	for o := blk.First(); o != last; o = o.Next() {
		if IsTerminator(o) {
			return fmt.Errorf("op %s: terminator %s in the middle of a block", parent.Name(), o.Name())
		}
	}
	return nil
}
