package ir

import (
	"fmt"
	"strings"
)

// printer renders ops in a generic MLIR-like textual syntax that the parser
// in parse.go can read back. Example:
//
//	%0 = "arith.constant"() {value = 5 : i64} : () -> (i64)
//	%1 = "accfg.setup"(%0) {accelerator = "gemm"} : (i64) -> (!accfg.state<"gemm">)
type printer struct {
	sb     strings.Builder
	names  map[*Value]string
	nextID int
	taken  map[string]bool
}

func newPrinter() *printer {
	return &printer{names: map[*Value]string{}, taken: map[string]bool{}}
}

func (p *printer) valueName(v *Value) string {
	if n, ok := p.names[v]; ok {
		return n
	}
	var n string
	if v.name != "" {
		n = v.name
		for p.taken[n] {
			n = fmt.Sprintf("%s_%d", v.name, p.nextID)
			p.nextID++
		}
	} else {
		n = fmt.Sprint(p.nextID)
		p.nextID++
	}
	p.taken[n] = true
	p.names[v] = n
	return n
}

func (p *printer) printOp(op *Op, indent string) {
	p.sb.WriteString(indent)
	if len(op.results) > 0 {
		parts := make([]string, len(op.results))
		for i, r := range op.results {
			parts[i] = "%" + p.valueName(r)
		}
		p.sb.WriteString(strings.Join(parts, ", "))
		p.sb.WriteString(" = ")
	}
	fmt.Fprintf(&p.sb, "%q", op.name)
	p.sb.WriteByte('(')
	for i, o := range op.operands {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		if o == nil {
			p.sb.WriteString("<<null>>")
			continue
		}
		p.sb.WriteString("%" + p.valueName(o))
	}
	p.sb.WriteByte(')')

	if len(op.regions) > 0 {
		p.sb.WriteString(" (")
		for i, r := range op.regions {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.printRegion(r, indent)
		}
		p.sb.WriteByte(')')
	}

	if d := attrDictString(op.attrs); d != "" {
		p.sb.WriteByte(' ')
		p.sb.WriteString(d)
	}

	p.sb.WriteString(" : (")
	for i, o := range op.operands {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		if o == nil {
			p.sb.WriteString("<<null>>")
			continue
		}
		p.sb.WriteString(o.typ.String())
	}
	p.sb.WriteString(") -> (")
	for i, r := range op.results {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		p.sb.WriteString(r.typ.String())
	}
	p.sb.WriteString(")\n")
}

func (p *printer) printRegion(r *Region, indent string) {
	blk := r.Block()
	p.sb.WriteString("{\n")
	inner := indent + "  "
	if blk.NumArgs() > 0 {
		p.sb.WriteString(inner)
		p.sb.WriteString("^(")
		for i, a := range blk.Args() {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			fmt.Fprintf(&p.sb, "%%%s: %s", p.valueName(a), a.typ)
		}
		p.sb.WriteString("):\n")
	}
	for o := blk.First(); o != nil; o = o.Next() {
		p.printOp(o, inner)
	}
	p.sb.WriteString(indent)
	p.sb.WriteByte('}')
}

// Print renders a single op (and its nested regions) as text.
func Print(op *Op) string {
	p := newPrinter()
	p.printOp(op, "")
	return p.sb.String()
}

// PrintModule renders the whole module as text.
func PrintModule(m *Module) string { return Print(m.Op()) }
