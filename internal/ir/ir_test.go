package ir_test

import (
	"strings"
	"testing"
	"testing/quick"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// buildSampleModule creates a function with a loop containing an accfg
// setup/launch/await cluster — the canonical shape from paper Figure 6/9.
func buildSampleModule(t testing.TB) *ir.Module {
	t.Helper()
	m := ir.NewModule()
	f := fnc.NewFunc("kernel", ir.FuncType([]ir.Type{ir.I64}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	ptr := f.Body().Arg(0)

	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 10, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lb2 := ir.AtEnd(loop.Body())
	iv := arith.NewIndexCast(lb2, loop.InductionVar(), ir.I64)
	setup := accfg.NewSetup(lb2, "gemm", nil, []accfg.Field{
		{Name: "A", Value: ptr},
		{Name: "i", Value: iv},
	})
	launch := accfg.NewLaunch(lb2, setup.State())
	accfg.NewAwait(lb2, launch.Token())
	scf.NewYield(lb2)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("sample module does not verify: %v", err)
	}
	return m
}

func TestBuildAndVerify(t *testing.T) {
	m := buildSampleModule(t)
	if got := ir.CountOpsNamed(m, "accfg.setup"); got != 1 {
		t.Errorf("setup count = %d, want 1", got)
	}
	if got := ir.CountOpsNamed(m, "scf.for"); got != 1 {
		t.Errorf("for count = %d, want 1", got)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := buildSampleModule(t)
	text := ir.PrintModule(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("parse of printed module failed: %v\n%s", err, text)
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatalf("reparsed module does not verify: %v", err)
	}
	text2 := ir.PrintModule(m2)
	if text != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined value", `%0 = "arith.addi"(%x, %x) : (i64, i64) -> (i64)`, "undefined value"},
		{"type mismatch", `%0 = "arith.constant"() {value = 1 : i32} : () -> (i32)` + "\n" + `%1 = "arith.addi"(%0, %0) : (i64, i64) -> (i64)`, "type mismatch"},
		{"bad op name", `%0 = arith.constant() : () -> (i64)`, "quoted op name"},
		{"arity mismatch", `%0, %1 = "arith.constant"() {value = 1 : i64} : () -> (i64)`, "results"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ir.Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestReplaceAllUsesWith(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64)
	c2 := arith.NewConstant(b, 2, ir.I64)
	sum := arith.NewAdd(b, c1, c1)
	fnc.NewReturn(b)

	if c1.NumUses() != 2 {
		t.Fatalf("c1 uses = %d, want 2", c1.NumUses())
	}
	c1.ReplaceAllUsesWith(c2)
	if c1.NumUses() != 0 || c2.NumUses() != 2 {
		t.Errorf("after RAUW: c1 uses = %d (want 0), c2 uses = %d (want 2)", c1.NumUses(), c2.NumUses())
	}
	def := sum.DefiningOp()
	if def.Operand(0) != c2 || def.Operand(1) != c2 {
		t.Error("operands not rewritten to c2")
	}
}

func TestEraseOperandShiftsUses(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64)
	c2 := arith.NewConstant(b, 2, ir.I64)
	c3 := arith.NewConstant(b, 3, ir.I64)
	op := b.Create("test.variadic", []*ir.Value{c1, c2, c3}, nil)
	fnc.NewReturn(b)

	op.EraseOperand(1)
	if op.NumOperands() != 2 {
		t.Fatalf("operands = %d, want 2", op.NumOperands())
	}
	if op.Operand(0) != c1 || op.Operand(1) != c3 {
		t.Error("remaining operands wrong after erase")
	}
	if c2.NumUses() != 0 {
		t.Errorf("c2 uses = %d, want 0", c2.NumUses())
	}
	// c3's use record must have shifted to index 1.
	uses := c3.Uses()
	if len(uses) != 1 || uses[0].Index != 1 {
		t.Errorf("c3 use = %+v, want index 1", uses)
	}
}

func TestErasePanicsOnLiveUses(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64)
	arith.NewAdd(b, c1, c1)
	fnc.NewReturn(b)

	defer func() {
		if recover() == nil {
			t.Error("Erase of op with live uses should panic")
		}
	}()
	c1.DefiningOp().Erase()
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	m := buildSampleModule(t)
	clone := m.Clone()
	if err := ir.Verify(clone); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if ir.PrintModule(m) != ir.PrintModule(clone) {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	var setup *ir.Op
	clone.Walk(func(op *ir.Op) {
		if op.Name() == accfg.OpSetup {
			setup = op
		}
	})
	s, _ := accfg.AsSetup(setup)
	s.RemoveField("A")
	if ir.CountOpsNamed(m, accfg.OpSetup) != 1 {
		t.Fatal("original lost its setup")
	}
	orig := findSetup(m)
	if len(orig.FieldNames()) != 2 {
		t.Errorf("original setup fields = %v, want [A i]", orig.FieldNames())
	}
}

func findSetup(m *ir.Module) accfg.Setup {
	var s accfg.Setup
	m.Walk(func(op *ir.Op) {
		if got, ok := accfg.AsSetup(op); ok {
			s = got
		}
	})
	return s
}

func TestVerifierCatchesDominance(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64)
	sum := arith.NewAdd(b, c1, c1)
	fnc.NewReturn(b)
	// Move the add before its operand's definition.
	sum.DefiningOp().MoveBefore(c1.DefiningOp())
	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted dominance violation")
	}
}

func TestVerifierCatchesMissingTerminator(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	arith.NewConstant(b, 1, ir.I64)
	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted missing terminator")
	}
}

func TestSetupFieldManipulation(t *testing.T) {
	m := buildSampleModule(t)
	s := findSetup(m)
	if v := s.FieldValue("i"); v == nil {
		t.Fatal("field i missing")
	}
	if !s.RemoveField("A") {
		t.Fatal("RemoveField(A) failed")
	}
	if s.FieldValue("A") != nil {
		t.Error("field A still present after removal")
	}
	if got := s.FieldNames(); len(got) != 1 || got[0] != "i" {
		t.Errorf("fields = %v, want [i]", got)
	}
	if err := ir.Verify(m); err != nil {
		t.Errorf("module invalid after field removal: %v", err)
	}
}

func TestSetupInStateChaining(t *testing.T) {
	m := buildSampleModule(t)
	s := findSetup(m)
	// Create a fresh empty setup before the loop and chain.
	loop := s.Op.Block().ParentOp()
	b := ir.Before(loop)
	pre := accfg.NewSetup(b, "gemm", nil, nil)
	s.SetInState(pre.State())
	if !s.HasInState() || s.InState() != pre.State() {
		t.Fatal("in-state not set")
	}
	if got := len(s.FieldNames()); got != 2 {
		t.Fatalf("fields = %d, want 2 after chaining", got)
	}
	if s.FieldValue("i") == nil || s.FieldValue("A") == nil {
		t.Fatal("field values shifted incorrectly")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module invalid after chaining: %v", err)
	}
	s.ClearInState()
	if s.HasInState() {
		t.Error("in-state still present after clear")
	}
	pre.Op.Erase()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module invalid after unchaining: %v", err)
	}
}

// TestArithFoldProperty checks the constant folder against direct evaluation
// for random inputs (property-based, testing/quick).
func TestArithFoldProperty(t *testing.T) {
	ops := []string{arith.OpAddI, arith.OpSubI, arith.OpMulI, arith.OpAndI, arith.OpOrI, arith.OpXOrI}
	prop := func(a, b int64, opIdx uint8) bool {
		name := ops[int(opIdx)%len(ops)]
		m := ir.NewModule()
		f := fnc.NewFunc("f", ir.FuncType(nil, []ir.Type{ir.I64}))
		m.Append(f.Op)
		bld := ir.AtEnd(f.Body())
		ca := arith.NewConstant(bld, a, ir.I64)
		cb := arith.NewConstant(bld, b, ir.I64)
		r := arith.NewBinary(bld, name, ca, cb)
		fnc.NewReturn(bld, r)

		ir.ApplyPatternsGreedy(m.Op(), nil)

		ret := f.Body().Last()
		got, ok := arith.ConstantValue(ret.Operand(0))
		if !ok {
			return false
		}
		want, err := arith.Eval(name, a, b, ir.I64)
		return err == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDCERemovesDeadPureOps(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 1, ir.I64)
	arith.NewAdd(b, c, c) // dead
	fnc.NewReturn(b)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	if got := ir.CountOpsNamed(m, arith.OpAddI); got != 0 {
		t.Errorf("dead add not eliminated (count %d)", got)
	}
	if got := ir.CountOpsNamed(m, arith.OpConstant); got != 0 {
		t.Errorf("dead constant not eliminated (count %d)", got)
	}
}

func TestVolatileBlocksDCE(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 1, ir.I64)
	dead := arith.NewAdd(b, c, c)
	dead.DefiningOp().SetAttr("volatile", ir.UnitAttr{})
	fnc.NewReturn(b)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	if got := ir.CountOpsNamed(m, arith.OpAddI); got != 1 {
		t.Errorf("volatile add eliminated (count %d, want 1)", got)
	}
}

func TestPassManagerRunsAndVerifies(t *testing.T) {
	m := buildSampleModule(t)
	ran := false
	pm := ir.NewPassManager(ir.PassFunc{
		PassName: "test-pass",
		Fn: func(m *ir.Module) error {
			ran = true
			return nil
		},
	})
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("pass did not run")
	}
	if len(pm.Stats) != 1 {
		t.Errorf("stats entries = %d, want 1", len(pm.Stats))
	}
}

func TestMoveBeforeAfter(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64).DefiningOp()
	c2 := arith.NewConstant(b, 2, ir.I64).DefiningOp()
	c3 := arith.NewConstant(b, 3, ir.I64).DefiningOp()
	fnc.NewReturn(b)

	c3.MoveBefore(c1)
	order := f.Body().Ops()
	if order[0] != c3 || order[1] != c1 || order[2] != c2 {
		t.Error("MoveBefore produced wrong order")
	}
	c3.MoveAfter(c2)
	order = f.Body().Ops()
	if order[0] != c1 || order[1] != c2 || order[2] != c3 {
		t.Error("MoveAfter produced wrong order")
	}
	if !c1.IsBefore(c3) {
		t.Error("IsBefore(c1, c3) = false, want true")
	}
	if c3.IsBefore(c1) {
		t.Error("IsBefore(c3, c1) = true, want false")
	}
}

func TestModuleFindFunc(t *testing.T) {
	m := ir.NewModule()
	for _, name := range []string{"a", "b", "c"} {
		f := fnc.NewFunc(name, ir.FuncType(nil, nil))
		fnc.NewReturn(ir.AtEnd(f.Body()))
		m.Append(f.Op)
	}
	if m.FindFunc("b") == nil {
		t.Error("FindFunc(b) = nil")
	}
	if m.FindFunc("zzz") != nil {
		t.Error("FindFunc(zzz) != nil")
	}
	if len(m.Funcs()) != 3 {
		t.Errorf("Funcs() = %d, want 3", len(m.Funcs()))
	}
}
