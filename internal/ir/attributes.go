package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is compile-time metadata attached to operations. Attributes are
// immutable; they render into the textual IR inside the {...} dictionary.
type Attribute interface {
	// String renders the attribute value in textual IR syntax.
	String() string
}

// IntegerAttr holds a constant integer with an associated type.
type IntegerAttr struct {
	Value int64
	Type  Type
}

// IntAttr builds an IntegerAttr of type i64.
func IntAttr(v int64) IntegerAttr { return IntegerAttr{Value: v, Type: I64} }

// IndexAttr builds an IntegerAttr of type index.
func IndexAttr(v int64) IntegerAttr { return IntegerAttr{Value: v, Type: Index} }

func (a IntegerAttr) String() string {
	return fmt.Sprintf("%d : %s", a.Value, a.Type)
}

// StringAttr holds a string constant.
type StringAttr struct {
	Value string
}

func (a StringAttr) String() string { return fmt.Sprintf("%q", a.Value) }

// BoolAttr holds a boolean constant.
type BoolAttr struct {
	Value bool
}

func (a BoolAttr) String() string {
	if a.Value {
		return "true"
	}
	return "false"
}

// UnitAttr is a presence-only marker (e.g. {volatile}).
type UnitAttr struct{}

func (UnitAttr) String() string { return "unit" }

// TypeAttr wraps a Type as an attribute (used for function signatures).
type TypeAttr struct {
	Type Type
}

func (a TypeAttr) String() string { return a.Type.String() }

// SymbolRefAttr names another symbol (function) in the module.
type SymbolRefAttr struct {
	Symbol string
}

func (a SymbolRefAttr) String() string { return "@" + a.Symbol }

// ArrayAttr is an ordered list of attributes.
type ArrayAttr struct {
	Elems []Attribute
}

func (a ArrayAttr) String() string {
	parts := make([]string, len(a.Elems))
	for i, e := range a.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// StringsAttr builds an ArrayAttr of StringAttrs, a common shape for the
// accfg field-name lists.
func StringsAttr(names ...string) ArrayAttr {
	elems := make([]Attribute, len(names))
	for i, n := range names {
		elems[i] = StringAttr{n}
	}
	return ArrayAttr{Elems: elems}
}

// StringList extracts the string values from an ArrayAttr of StringAttrs.
// Non-string elements are skipped.
func (a ArrayAttr) StringList() []string {
	out := make([]string, 0, len(a.Elems))
	for _, e := range a.Elems {
		if s, ok := e.(StringAttr); ok {
			out = append(out, s.Value)
		}
	}
	return out
}

// EffectsKind enumerates the accfg effect annotations for foreign ops
// (paper §5.1): whether an op clobbers or preserves accelerator state.
type EffectsKind int

const (
	// EffectsAll marks an op as clobbering all accelerator state.
	EffectsAll EffectsKind = iota
	// EffectsNone marks an op as preserving all accelerator state.
	EffectsNone
)

// EffectsAttr is the #accfg.effects<all|none> annotation.
type EffectsAttr struct {
	Kind EffectsKind
}

func (a EffectsAttr) String() string {
	if a.Kind == EffectsNone {
		return "#accfg.effects<none>"
	}
	return "#accfg.effects<all>"
}

// AttrsEqual reports whether two attributes are structurally identical.
func AttrsEqual(a, b Attribute) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// attrDictString renders a sorted attribute dictionary.
func attrDictString(attrs map[string]Attribute) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		if _, ok := attrs[k].(UnitAttr); ok {
			parts[i] = k
			continue
		}
		parts[i] = fmt.Sprintf("%s = %s", k, attrs[k].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
