package ir_test

// Table-driven negative coverage for ir.Verify: malformed operations,
// operand/result arity violations, undefined or out-of-scope values, and
// broken region terminators. Each case builds an invalid module through the
// raw op API (the typed builders refuse to construct most of these) and
// asserts the verifier rejects it with the documented diagnostic.

import (
	"strings"
	"testing"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// wrap builds a module with one function whose body is produced by fill.
func wrap(fill func(b *ir.Builder)) *ir.Module {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	fill(ir.AtEnd(f.Body()))
	return m
}

func TestVerifyErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *ir.Module
		wantErr string
	}{
		{
			name: "nil operand",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					b.Create("arith.addi", []*ir.Value{nil, nil}, []ir.Type{ir.I64})
					fnc.NewReturn(b)
				})
			},
			wantErr: "operand 0 is nil",
		},
		{
			name: "undefined value from sibling region",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					cond := arith.NewConstant(b, 1, ir.I1)
					ifOp := scf.NewIf(b, cond)
					tb := ir.AtEnd(ifOp.Then())
					leak := arith.NewConstant(tb, 7, ir.I64)
					scf.NewYield(tb)
					eb := ir.AtEnd(ifOp.Else())
					// Uses a value defined in the then-region: not visible.
					arith.NewAdd(eb, leak, leak)
					scf.NewYield(eb)
					fnc.NewReturn(b)
				})
			},
			wantErr: "not visible at use site",
		},
		{
			name: "use before definition",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					c := arith.NewConstant(b, 1, ir.I64)
					sum := arith.NewAdd(b, c, c)
					fnc.NewReturn(b)
					sum.DefiningOp().MoveBefore(c.DefiningOp())
				})
			},
			wantErr: "not visible at use site",
		},
		{
			name: "empty region body",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					lb := arith.NewConstant(b, 0, ir.Index)
					op := b.Create("scf.for", []*ir.Value{lb, lb, lb}, nil)
					op.AddRegion().Block().AddArg(ir.Index)
					fnc.NewReturn(b)
				})
			},
			wantErr: "empty region body",
		},
		{
			name: "region not ending in terminator",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					cond := arith.NewConstant(b, 0, ir.I1)
					ifOp := scf.NewIf(b, cond)
					arith.NewConstant(ir.AtEnd(ifOp.Then()), 1, ir.I64)
					scf.NewYield(ir.AtEnd(ifOp.Else()))
					fnc.NewReturn(b)
				})
			},
			wantErr: "does not end in a terminator",
		},
		{
			name: "terminator in the middle of a block",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					cond := arith.NewConstant(b, 0, ir.I1)
					ifOp := scf.NewIf(b, cond)
					tb := ir.AtEnd(ifOp.Then())
					scf.NewYield(tb)
					scf.NewYield(tb)
					scf.NewYield(ir.AtEnd(ifOp.Else()))
					fnc.NewReturn(b)
				})
			},
			wantErr: "in the middle of a block",
		},
		{
			name: "setup missing accelerator attribute",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					op := b.Create(accfg.OpSetup, nil, []ir.Type{ir.StateType{Accelerator: "acc"}})
					op.SetAttr("fields", ir.StringsAttr())
					fnc.NewReturn(b)
				})
			},
			wantErr: "missing 'accelerator' attribute",
		},
		{
			name: "setup field/operand arity mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					v := arith.NewConstant(b, 1, ir.I64)
					op := b.Create(accfg.OpSetup, []*ir.Value{v}, []ir.Type{ir.StateType{Accelerator: "acc"}})
					op.SetAttr("accelerator", ir.StringAttr{Value: "acc"})
					op.SetAttr("fields", ir.StringsAttr("x", "y"))
					fnc.NewReturn(b)
				})
			},
			wantErr: "2 field names but 1 field operands",
		},
		{
			name: "setup duplicate field",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					v := arith.NewConstant(b, 1, ir.I64)
					op := b.Create(accfg.OpSetup, []*ir.Value{v, v}, []ir.Type{ir.StateType{Accelerator: "acc"}})
					op.SetAttr("accelerator", ir.StringAttr{Value: "acc"})
					op.SetAttr("fields", ir.StringsAttr("x", "x"))
					fnc.NewReturn(b)
				})
			},
			wantErr: `duplicate field "x"`,
		},
		{
			name: "setup chained from foreign accelerator state",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					other := accfg.NewSetup(b, "other", nil, nil)
					op := b.Create(accfg.OpSetup, []*ir.Value{other.State()}, []ir.Type{ir.StateType{Accelerator: "acc"}})
					op.SetAttr("accelerator", ir.StringAttr{Value: "acc"})
					op.SetAttr("fields", ir.StringsAttr())
					op.SetAttr("in_state", ir.UnitAttr{})
					fnc.NewReturn(b)
				})
			},
			wantErr: `input state is for accelerator "other"`,
		},
		{
			name: "setup result accelerator mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					op := b.Create(accfg.OpSetup, nil, []ir.Type{ir.StateType{Accelerator: "wrong"}})
					op.SetAttr("accelerator", ir.StringAttr{Value: "acc"})
					op.SetAttr("fields", ir.StringsAttr())
					fnc.NewReturn(b)
				})
			},
			wantErr: `result state accelerator "wrong" does not match "acc"`,
		},
		{
			name: "launch without state operand",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					b.Create(accfg.OpLaunch, nil, []ir.Type{ir.TokenType{Accelerator: "acc"}})
					fnc.NewReturn(b)
				})
			},
			wantErr: "expects one state operand and one token result",
		},
		{
			name: "launch token accelerator mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					s := accfg.NewSetup(b, "acc", nil, nil)
					b.Create(accfg.OpLaunch, []*ir.Value{s.State()}, []ir.Type{ir.TokenType{Accelerator: "other"}})
					fnc.NewReturn(b)
				})
			},
			wantErr: `state accelerator "acc" does not match token "other"`,
		},
		{
			name: "await of a non-token value",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					v := arith.NewConstant(b, 0, ir.I64)
					b.Create(accfg.OpAwait, []*ir.Value{v}, nil)
					fnc.NewReturn(b)
				})
			},
			wantErr: "operand must be !accfg.token",
		},
		{
			name: "for with too few operands",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					lb := arith.NewConstant(b, 0, ir.Index)
					op := b.Create("scf.for", []*ir.Value{lb, lb}, nil)
					op.AddRegion()
					fnc.NewReturn(b)
				})
			},
			wantErr: "needs lb, ub, step",
		},
		{
			name: "for body argument arity mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					lb := arith.NewConstant(b, 0, ir.Index)
					op := b.Create("scf.for", []*ir.Value{lb, lb, lb}, nil)
					blk := op.AddRegion().Block()
					blk.AddArg(ir.Index)
					blk.AddArg(ir.I64) // extra arg without an iter operand
					scf.NewYield(ir.AtEnd(blk))
					fnc.NewReturn(b)
				})
			},
			wantErr: "body needs 1 args",
		},
		{
			name: "for iteration-argument type mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					lb := arith.NewConstant(b, 0, ir.Index)
					init := arith.NewConstant(b, 0, ir.I64)
					op := b.Create("scf.for", []*ir.Value{lb, lb, lb, init}, []ir.Type{ir.I32})
					blk := op.AddRegion().Block()
					blk.AddArg(ir.Index)
					arg := blk.AddArg(ir.I64)
					scf.NewYield(ir.AtEnd(blk), arg)
					fnc.NewReturn(b)
				})
			},
			wantErr: "iter arg 0 type mismatch",
		},
		{
			name: "for yield arity mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					lb := arith.NewConstant(b, 0, ir.Index)
					init := arith.NewConstant(b, 0, ir.I64)
					op := b.Create("scf.for", []*ir.Value{lb, lb, lb, init}, []ir.Type{ir.I64})
					blk := op.AddRegion().Block()
					blk.AddArg(ir.Index)
					blk.AddArg(ir.I64)
					scf.NewYield(ir.AtEnd(blk)) // yields nothing
					fnc.NewReturn(b)
				})
			},
			wantErr: "yield carries 0 values",
		},
		{
			name: "if condition not i1",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					cond := arith.NewConstant(b, 1, ir.I64)
					op := b.Create("scf.if", []*ir.Value{cond}, nil)
					op.AddRegion()
					op.AddRegion()
					scf.NewYield(ir.AtEnd(op.Region(0).Block()))
					scf.NewYield(ir.AtEnd(op.Region(1).Block()))
					fnc.NewReturn(b)
				})
			},
			wantErr: "condition must be i1",
		},
		{
			name: "if missing else region",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					cond := arith.NewConstant(b, 1, ir.I1)
					op := b.Create("scf.if", []*ir.Value{cond}, nil)
					op.AddRegion()
					scf.NewYield(ir.AtEnd(op.Region(0).Block()))
					fnc.NewReturn(b)
				})
			},
			wantErr: "needs then and else regions",
		},
		{
			name: "if branch yield arity mismatch",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					cond := arith.NewConstant(b, 1, ir.I1)
					op := b.Create("scf.if", []*ir.Value{cond}, []ir.Type{ir.I64})
					op.AddRegion()
					op.AddRegion()
					scf.NewYield(ir.AtEnd(op.Region(0).Block())) // 0 values, 1 result
					v := arith.NewConstant(ir.AtEnd(op.Region(1).Block()), 3, ir.I64)
					scf.NewYield(ir.AtEnd(op.Region(1).Block()), v)
					fnc.NewReturn(b)
				})
			},
			wantErr: "region 0 yields 0 values",
		},
		{
			name: "constant without value attribute",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					b.Create(arith.OpConstant, nil, []ir.Type{ir.I64})
					fnc.NewReturn(b)
				})
			},
			wantErr: "expects integer 'value' attribute",
		},
		{
			name: "binary op with one operand",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					v := arith.NewConstant(b, 1, ir.I64)
					b.Create(arith.OpAddI, []*ir.Value{v}, []ir.Type{ir.I64})
					fnc.NewReturn(b)
				})
			},
			wantErr: "expects two operands",
		},
		{
			name: "cmpi without predicate",
			build: func() *ir.Module {
				return wrap(func(b *ir.Builder) {
					v := arith.NewConstant(b, 1, ir.I64)
					b.Create(arith.OpCmpI, []*ir.Value{v, v}, []ir.Type{ir.I1})
					fnc.NewReturn(b)
				})
			},
			wantErr: "expects 'predicate' attribute",
		},
		{
			name: "function without sym_name",
			build: func() *ir.Module {
				m := ir.NewModule()
				f := fnc.NewFunc("f", ir.FuncType(nil, nil))
				f.Op.RemoveAttr("sym_name")
				fnc.NewReturn(ir.AtEnd(f.Body()))
				m.Append(f.Op)
				return m
			},
			wantErr: "missing 'sym_name' attribute",
		},
		{
			name: "function entry block arity mismatch",
			build: func() *ir.Module {
				m := ir.NewModule()
				f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I64}, nil))
				f.Body().EraseArg(0)
				fnc.NewReturn(ir.AtEnd(f.Body()))
				m.Append(f.Op)
				return m
			},
			wantErr: "entry block has 0 args, signature has 1 inputs",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := ir.Verify(tc.build())
			if err == nil {
				t.Fatalf("verifier accepted malformed module (want error containing %q)", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestVerifyAcceptsWellFormed is the positive control for the table above:
// the same construction style, but a valid module.
func TestVerifyAcceptsWellFormed(t *testing.T) {
	m := wrap(func(b *ir.Builder) {
		lb := arith.NewConstant(b, 0, ir.Index)
		ub := arith.NewConstant(b, 4, ir.Index)
		step := arith.NewConstant(b, 1, ir.Index)
		loop := scf.NewFor(b, lb, ub, step)
		bb := ir.AtEnd(loop.Body())
		iv := arith.NewIndexCast(bb, loop.InductionVar(), ir.I64)
		s := accfg.NewSetup(bb, "acc", nil, []accfg.Field{{Name: "i", Value: iv}})
		l := accfg.NewLaunch(bb, s.State())
		accfg.NewAwait(bb, l.Token())
		scf.NewYield(bb)
		fnc.NewReturn(b)
	})
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verifier rejected well-formed module: %v", err)
	}
}
