package ir

import (
	"strings"
	"testing"
)

// TestVerifyCatchesUseListCorruption reaches into the package internals to
// break the invariant no public API can: an operand whose value no longer
// records the use. Pass bugs that splice operand lists by hand would
// surface exactly like this.
func TestVerifyCatchesUseListCorruption(t *testing.T) {
	m := NewModule()
	def := NewOp("test.def", nil, []Type{I64})
	m.Block().Append(def)
	use := NewOp("test.use", []*Value{def.Result(0)}, nil)
	m.Block().Append(use)

	if err := Verify(m); err != nil {
		t.Fatalf("well-formed module rejected: %v", err)
	}
	def.Result(0).uses = nil
	err := Verify(m)
	if err == nil {
		t.Fatal("verifier accepted a corrupted use list")
	}
	if !strings.Contains(err.Error(), "missing from use list") {
		t.Fatalf("error = %q, want use-list diagnostic", err)
	}
}
