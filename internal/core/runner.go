package core

// The concurrent experiment runner: the paper's evaluation is a sweep over
// (target, workload, pipeline, n) cells that are embarrassingly parallel —
// every cell compiles and simulates in its own deterministic sandbox. The
// runner executes sweeps on a bounded worker pool, memoizes per-cell
// results so repeated figure generation never recompiles an identical
// cell, and returns results in input order so concurrent output is
// byte-identical to a serial run.

import (
	"fmt"
	"runtime"
	"sync"
)

// Experiment keys one cell of the evaluation sweep by registry names.
type Experiment struct {
	// Target is a registered target name (e.g. "gemmini").
	Target string
	// Workload is a registered workload name (e.g. "matmul").
	Workload string
	// Pipeline selects the optimization variant.
	Pipeline Pipeline
	// N is the workload sweep size.
	N int
}

func (e Experiment) String() string {
	return fmt.Sprintf("%s/%s/%s/%d", e.Target, e.Workload, e.Pipeline, e.N)
}

// RunExperiment resolves the experiment's target and workload through the
// registry and executes it once, uncached. Sweeps should prefer a Runner.
func RunExperiment(e Experiment, opts RunOptions) (Result, error) {
	t, err := LookupTarget(e.Target)
	if err != nil {
		return Result{}, err
	}
	w, err := LookupWorkload(e.Workload)
	if err != nil {
		return Result{}, err
	}
	return Run(t, w, e.Pipeline, e.N, opts)
}

// cacheKey is the memoization key: the experiment cell plus every RunOptions
// knob that changes the produced Result.
type cacheKey struct {
	exp         Experiment
	recordTrace bool
	skipVerify  bool
}

// cell is one memoized experiment execution; Once collapses concurrent
// duplicate requests into a single run.
type cell struct {
	once sync.Once
	res  Result
	err  error
}

// Runner executes experiments on a bounded worker pool with a
// per-experiment result cache. The co-simulator is deterministic, so a
// cached Result is indistinguishable from a fresh run; cached results are
// shared, and callers must treat their slices (PassStats, Trace) as
// read-only.
//
// A Runner is safe for concurrent use.
type Runner struct {
	workers int

	mu    sync.Mutex
	cells map[cacheKey]*cell
}

// NewRunner returns a runner with the given worker-pool bound; workers <= 0
// selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, cells: map[cacheKey]*cell{}}
}

// Workers returns the worker-pool bound.
func (r *Runner) Workers() int { return r.workers }

// CacheSize returns the number of memoized experiment cells.
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

func (r *Runner) cell(k cacheKey) *cell {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cells[k]
	if !ok {
		c = &cell{}
		r.cells[k] = c
	}
	return c
}

// Run executes one experiment, memoized: the first request for a cell
// compiles and simulates it, every later request (including a concurrent
// duplicate) returns the stored result.
func (r *Runner) Run(e Experiment, opts RunOptions) (Result, error) {
	c := r.cell(cacheKey{exp: e, recordTrace: opts.RecordTrace, skipVerify: opts.SkipVerify})
	c.once.Do(func() {
		c.res, c.err = RunExperiment(e, opts)
	})
	return c.res, c.err
}

// RunAll executes the experiments concurrently on the worker pool and
// returns their results in input order — results[i] belongs to exps[i], so
// parallel output is byte-identical to a serial (workers = 1) run. On
// failure it returns the error of the lowest-indexed failing experiment
// alongside the partial results.
func (r *Runner) RunAll(exps []Experiment, opts RunOptions) ([]Result, error) {
	results := make([]Result, len(exps))
	errs := make([]error, len(exps))

	workers := r.workers
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = r.Run(exps[i], opts)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("experiment %s: %w", exps[i], err)
		}
	}
	return results, nil
}

// Sweep builds the full cross product of the given targets, workloads,
// pipelines and sizes, in deterministic row-major order.
func Sweep(targets, workloads []string, pipelines []Pipeline, sizes []int) []Experiment {
	exps := make([]Experiment, 0, len(targets)*len(workloads)*len(pipelines)*len(sizes))
	for _, t := range targets {
		for _, w := range workloads {
			for _, p := range pipelines {
				for _, n := range sizes {
					exps = append(exps, Experiment{Target: t, Workload: w, Pipeline: p, N: n})
				}
			}
		}
	}
	return exps
}
