package core

// The concurrent experiment runner: the paper's evaluation is a sweep over
// (target, workload, pipeline, n) cells that are embarrassingly parallel —
// every cell compiles and simulates in its own deterministic sandbox. The
// runner executes sweeps on a bounded worker pool, memoizes per-cell
// results so repeated figure generation never recompiles an identical
// cell, and returns results in input order so concurrent output is
// byte-identical to a serial run.
//
// Two scaling controls sit on top of the memoization: an optional
// persistent Store (see store.go and internal/store) makes results survive
// the process, so re-running a figure grid — or resuming a crashed or
// sharded sweep — skips every cell that already ran; and an LRU bound on
// the in-memory cell map keeps long-lived sweep servers from growing
// without limit.

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"configwall/internal/sim"
)

// Experiment keys one cell of the evaluation sweep by registry names.
type Experiment struct {
	// Target is a registered target name (e.g. "gemmini").
	Target string
	// Workload is a registered workload name (e.g. "matmul").
	Workload string
	// Pipeline selects the optimization variant.
	Pipeline Pipeline
	// N is the workload sweep size.
	N int
}

func (e Experiment) String() string {
	return fmt.Sprintf("%s/%s/%s/%d", e.Target, e.Workload, e.Pipeline, e.N)
}

// RunExperiment resolves the experiment's target and workload through the
// registry and executes it once, uncached. Sweeps should prefer a Runner.
func RunExperiment(e Experiment, opts RunOptions) (Result, error) {
	t, err := LookupTarget(e.Target)
	if err != nil {
		return Result{}, err
	}
	w, err := LookupWorkload(e.Workload)
	if err != nil {
		return Result{}, err
	}
	return Run(t, w, e.Pipeline, e.N, opts)
}

// cacheKey is the memoization key: the experiment cell plus every RunOptions
// knob that changes the produced Result or that comparisons must keep
// separate (kept in sync with FingerprintKey; see its note on Engine).
type cacheKey struct {
	exp         Experiment
	recordTrace bool
	skipVerify  bool
	engine      sim.Engine
}

func keyOf(e Experiment, opts RunOptions) cacheKey {
	return cacheKey{exp: e, recordTrace: opts.RecordTrace, skipVerify: opts.SkipVerify, engine: opts.Engine}
}

// cell is one memoized experiment execution. Concurrent duplicate requests
// collapse onto it: exactly one goroutine claims the cell and computes (or
// loads) the result, every other goroutine waits on done — selectable
// against a context, so an abandoned request stops waiting without
// disturbing the computation that still serves everyone else.
type cell struct {
	win  sync.Once
	done chan struct{}
	res  Result
	err  error
}

func newCell() *cell { return &cell{done: make(chan struct{})} }

// claim reports whether the caller won the right (and the obligation) to
// publish the cell's result and close done.
func (c *cell) claim() bool {
	won := false
	c.win.Do(func() { won = true })
	return won
}

// lruEntry pairs a cell with its key so eviction can delete the map entry.
type lruEntry struct {
	key cacheKey
	c   *cell
}

// Predictor is a simulation-free estimator of experiment results — the
// analytical tier of DESIGN.md §10 (implemented by internal/analytic).
// Predict must be safe for concurrent use, mark returned results
// Analytic, and answer in microseconds; the runner never caches or
// persists what it returns.
type Predictor interface {
	Predict(e Experiment) (Result, error)
}

// RunnerOptions configures a Runner beyond the worker-pool bound.
type RunnerOptions struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Store, when non-nil, persists results across processes: memory
	// misses consult it before computing, and fresh results are saved back.
	Store Store
	// MaxCells bounds the in-memory cell map (LRU eviction); <= 0 means
	// unbounded. Evicted cells fall back to the Store (or recompute).
	MaxCells int
	// Predictor, when non-nil, serves FidelityScreen/FidelityCached
	// requests analytically. A runner without one rejects those tiers.
	Predictor Predictor
	// OnStoreError, when non-nil, observes every persistent-store
	// operational failure the runner tolerates: op is "load" or "save".
	// The runner degrades rather than fails — a broken store means
	// results stop being durable, not that serving stops — so this hook
	// is how a daemon logs and alerts on the degradation. It is called
	// outside the runner lock and must be safe for concurrent use.
	OnStoreError func(op string, e Experiment, err error)
}

// Runner executes experiments on a bounded worker pool with a
// per-experiment result cache. The co-simulator is deterministic, so a
// cached Result is indistinguishable from a fresh run; cached results are
// shared, and callers must treat their slices (PassStats, Trace) as
// read-only.
//
// A Runner is safe for concurrent use.
type Runner struct {
	workers      int
	store        Store
	maxCells     int
	onStoreError func(op string, e Experiment, err error)

	mu        sync.Mutex
	cells     map[cacheKey]*list.Element
	lru       *list.List // front = most recently used *lruEntry
	stats     CacheStats
	predictor Predictor
}

// NewRunner returns a runner with the given worker-pool bound; workers <= 0
// selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	return NewRunnerWith(RunnerOptions{Workers: workers})
}

// NewRunnerWith returns a runner configured by opts.
func NewRunnerWith(opts RunnerOptions) *Runner {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers:      workers,
		store:        opts.Store,
		maxCells:     opts.MaxCells,
		onStoreError: opts.OnStoreError,
		cells:        map[cacheKey]*list.Element{},
		lru:          list.New(),
		predictor:    opts.Predictor,
	}
}

// Workers returns the worker-pool bound.
func (r *Runner) Workers() int { return r.workers }

// Store returns the persistent backend, or nil.
func (r *Runner) Store() Store { return r.store }

// Predictor returns the analytical tier, or nil.
func (r *Runner) Predictor() Predictor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.predictor
}

// SetPredictor installs (or clears) the analytical tier; safe while the
// runner is serving. Calibration flows use it to attach a freshly fitted
// model to a long-lived runner.
func (r *Runner) SetPredictor(p Predictor) {
	r.mu.Lock()
	r.predictor = p
	r.mu.Unlock()
}

// CacheSize returns the number of memoized experiment cells.
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// Snapshot returns a copy of the cache counters at this instant.
func (r *Runner) Snapshot() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// cell returns the memo cell for k, creating (and LRU-accounting) it on a
// miss; created reports whether this call created it.
func (r *Runner) cell(k cacheKey) (c *cell, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.cells[k]; ok {
		r.lru.MoveToFront(el)
		r.stats.MemHits++
		return el.Value.(*lruEntry).c, false
	}
	r.stats.MemMisses++
	c = newCell()
	r.cells[k] = r.lru.PushFront(&lruEntry{key: k, c: c})
	if r.maxCells > 0 {
		for r.lru.Len() > r.maxCells {
			// Evicting an in-flight cell is safe: goroutines already
			// holding the pointer finish on it, and a later request either
			// re-loads from the store or recomputes.
			back := r.lru.Back()
			delete(r.cells, back.Value.(*lruEntry).key)
			r.lru.Remove(back)
			r.stats.Evictions++
		}
	}
	return c, true
}

func (r *Runner) bump(f func(*CacheStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// storeError records one tolerated persistent-store failure and notifies
// the OnStoreError observer. Every store fault funnels through here: the
// runner keeps serving from memory (degraded mode) and only the counter
// and the hook reveal the degradation.
func (r *Runner) storeError(op string, e Experiment, err error) {
	r.bump(func(s *CacheStats) { s.StoreErrors++ })
	if r.onStoreError != nil {
		r.onStoreError(op, e, err)
	}
}

// Run executes one experiment, memoized: the first request for a cell
// consults the persistent store, then compiles and simulates on a store
// miss; every later request (including a concurrent duplicate) returns the
// stored result. Fresh results are saved back to the store.
//
// The context governs waiting, not computing: a request that arrives while
// the cell is in flight waits cancellably for it, and a request whose
// context is already cancelled returns immediately — but once a goroutine
// has claimed a cell it computes to completion (the deterministic result
// serves every later request, including requests whose owner gave up).
//
// opts.Fidelity routes the request before the memo machinery:
// FidelityScreen answers purely analytically (never touching cells or the
// store, never simulating), and FidelityCached serves an existing
// memoized/stored result or falls back to a prediction. Predictions are
// never memoized — the cell map holds only simulated ground truth.
func (r *Runner) Run(ctx context.Context, e Experiment, opts RunOptions) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	switch opts.Fidelity {
	case FidelityScreen:
		return r.predict(e)
	case FidelityCached:
		full := opts
		full.Fidelity = FidelityFull
		if res, ok := r.Peek(e, full); ok {
			return *res, nil
		}
		if r.store != nil {
			res, ok, err := r.store.Load(e, full)
			switch {
			case err != nil:
				r.storeError("load", e, err)
			case ok:
				r.bump(func(s *CacheStats) { s.StoreHits++ })
				// Publish for the next request; a racing claim wins and
				// this copy is discarded.
				r.Preload(e, full, res)
				return res, nil
			default:
				r.bump(func(s *CacheStats) { s.StoreMisses++ })
			}
		}
		return r.predict(e)
	}
	c, _ := r.cell(keyOf(e, opts))
	if c.claim() {
		c.res, c.err = r.compute(e, opts)
		close(c.done)
		return c.res, c.err
	}
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Peek returns the memoized result of an already-completed cell without
// computing, waiting, or consulting the persistent store. The boolean
// reports a usable hit: false when the cell is absent, still in flight, or
// completed with an error — callers fall back to Run, which serves the
// cached error (or computes) consistently. A hit refreshes the cell's LRU
// position and counts as a memory hit, exactly like Run on a warm cell.
//
// Serving layers use Peek as their zero-allocation fast path: a hot cell
// resolves with one map lookup and no goroutine handshake. The returned
// pointer aliases the shared cached Result and must be treated as strictly
// read-only (the same rule Run's doc states for cached slices, extended to
// the whole struct).
func (r *Runner) Peek(e Experiment, opts RunOptions) (*Result, bool) {
	k := keyOf(e, opts)
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.cells[k]
	if !ok {
		return nil, false
	}
	c := el.Value.(*lruEntry).c
	select {
	case <-c.done:
	default:
		return nil, false
	}
	if c.err != nil {
		return nil, false
	}
	r.lru.MoveToFront(el)
	r.stats.MemHits++
	return &c.res, true
}

// compute resolves one claimed cell: store load, then compile + simulate on
// a miss, with the fresh result saved back.
func (r *Runner) compute(e Experiment, opts RunOptions) (Result, error) {
	if r.store != nil {
		res, ok, err := r.store.Load(e, opts)
		switch {
		case err != nil:
			r.storeError("load", e, err)
		case ok:
			r.bump(func(s *CacheStats) { s.StoreHits++ })
			return res, nil
		default:
			r.bump(func(s *CacheStats) { s.StoreMisses++ })
		}
	}
	res, err := RunExperiment(e, opts)
	r.bump(func(s *CacheStats) { s.Runs++ })
	if r.store != nil && err == nil {
		if serr := r.store.Save(e, opts, res); serr != nil {
			// Degraded mode: the result stays served from memory; only
			// durability is lost. Count it and tell the observer.
			r.storeError("save", e, serr)
		}
	}
	return res, err
}

// predict answers one experiment from the analytical tier.
func (r *Runner) predict(e Experiment) (Result, error) {
	p := r.Predictor()
	if p == nil {
		return Result{}, fmt.Errorf("experiment %s: runner has no analytic predictor (set RunnerOptions.Predictor or Runner.SetPredictor)", e)
	}
	res, err := p.Predict(e)
	if err != nil {
		return Result{}, fmt.Errorf("experiment %s: %w", e, err)
	}
	r.bump(func(s *CacheStats) { s.Predictions++ })
	return res, nil
}

// Screen analytically predicts every experiment — the screening half of a
// multi-fidelity sweep. It performs zero simulator invocations (counter:
// CacheStats.Predictions advances, Runs does not), touches neither the
// memo map nor the store, and returns input-ordered results marked
// Analytic. On failure it returns the error of the lowest-indexed failing
// experiment alongside the partial results.
func (r *Runner) Screen(ctx context.Context, exps []Experiment) ([]Result, error) {
	results := make([]Result, len(exps))
	errs := make([]error, len(exps))
	ParallelEach(ctx, len(exps), r.workers, func(i int) {
		results[i], errs[i] = r.predict(exps[i])
	})
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// TopKByPredictedPerf ranks predicted results by ops/cycle (descending,
// ties broken toward the lower input index) and returns the indices of the
// k best, in ascending input order. k <= 0 selects nothing; k >= len
// selects everything.
func TopKByPredictedPerf(preds []Result, k int) []int {
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return preds[idx[a]].OpsPerCycle() > preds[idx[b]].OpsPerCycle()
	})
	switch {
	case k < 0:
		k = 0
	case k > len(idx):
		k = len(idx)
	}
	top := idx[:k]
	sort.Ints(top)
	return top
}

// RunTopK is the multi-fidelity sweep (DESIGN.md §10): every cell is
// screened analytically, only the k most promising (highest predicted
// ops/cycle) are compiled and simulated at full fidelity, and the
// input-ordered result slice carries simulated ground truth for the chosen
// cells and Analytic predictions for the rest. k >= len(exps) degenerates
// to RunAll. The simulated subset flows through the normal memo/store
// path, so a repeated top-k sweep re-simulates nothing.
func (r *Runner) RunTopK(ctx context.Context, exps []Experiment, opts RunOptions, k int) ([]Result, error) {
	full := opts
	full.Fidelity = FidelityFull
	if k >= len(exps) {
		return r.RunAll(ctx, exps, full)
	}
	preds, err := r.Screen(ctx, exps)
	if err != nil {
		return preds, err
	}
	top := TopKByPredictedPerf(preds, k)
	chosen := make([]Experiment, len(top))
	for i, j := range top {
		chosen[i] = exps[j]
	}
	simmed, err := r.RunAll(ctx, chosen, full)
	for i, j := range top {
		preds[j] = simmed[i]
	}
	return preds, err
}

// Preload publishes an already-materialized result into the in-memory cell
// map without consulting the store or computing anything; it reports
// whether the cell was unclaimed and is now served from res. Serving
// layers use it to warm a runner from a store enumeration at boot.
func (r *Runner) Preload(e Experiment, opts RunOptions, res Result) bool {
	c, _ := r.cell(keyOf(e, opts))
	if !c.claim() {
		return false
	}
	c.res = res
	close(c.done)
	return true
}

// Warm populates the in-memory cell map from the persistent store without
// computing anything, and returns how many cells it loaded. Cells already
// in memory, absent from the store, or unreadable are skipped; a cancelled
// context stops the scan early. A Runner with no store warms nothing.
func (r *Runner) Warm(ctx context.Context, exps []Experiment, opts RunOptions) int {
	if r.store == nil {
		return 0
	}
	warmed := 0
	for _, e := range exps {
		if ctx.Err() != nil {
			return warmed
		}
		k := keyOf(e, opts)
		r.mu.Lock()
		_, inMem := r.cells[k]
		r.mu.Unlock()
		if inMem {
			continue
		}
		res, ok, err := r.store.Load(e, opts)
		if err != nil {
			r.storeError("load", e, err)
			continue
		}
		if !ok {
			continue
		}
		// A concurrent Run may have claimed the cell between the lookups;
		// its claim wins and this load is discarded.
		if r.Preload(e, opts, res) {
			r.bump(func(s *CacheStats) { s.StoreHits++ })
			warmed++
		}
	}
	return warmed
}

// Missing filters exps down to the cells that would actually compute: not
// in the in-memory map and not loadable from the store. It is the planning
// half of sweep resume — after a crash, Missing lists the unfinished
// cells. A cancelled context stops the scan and returns the list so far.
func (r *Runner) Missing(ctx context.Context, exps []Experiment, opts RunOptions) []Experiment {
	var missing []Experiment
	for _, e := range exps {
		if ctx.Err() != nil {
			return missing
		}
		k := keyOf(e, opts)
		r.mu.Lock()
		_, inMem := r.cells[k]
		r.mu.Unlock()
		if inMem {
			continue
		}
		if r.store != nil {
			_, ok, err := r.store.Load(e, opts)
			if err != nil {
				r.storeError("load", e, err)
			} else if ok {
				continue
			}
		}
		missing = append(missing, e)
	}
	return missing
}

// RunAll executes the experiments concurrently on the worker pool and
// returns their results in input order — results[i] belongs to exps[i], so
// parallel output is byte-identical to a serial (workers = 1) run. On
// failure it returns the error of the lowest-indexed failing experiment
// alongside the partial results. A cancelled context stops dispatching
// further experiments and returns the context's error with the partial
// results (experiments already in flight run to completion and stay
// cached).
func (r *Runner) RunAll(ctx context.Context, exps []Experiment, opts RunOptions) ([]Result, error) {
	results := make([]Result, len(exps))
	errs := make([]error, len(exps))

	ParallelEach(ctx, len(exps), r.workers, func(i int) {
		results[i], errs[i] = r.Run(ctx, exps[i], opts)
	})
	if err := ctx.Err(); err != nil {
		return results, err
	}

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("experiment %s: %w", exps[i], err)
		}
	}
	return results, nil
}

// ParallelEach runs fn(i) for i in [0, n) on a bounded worker pool — the
// execution backbone shared by Runner.RunAll, the serving layer's sweep
// endpoint and the cwfuzz campaign driver. workers <= 0 selects
// GOMAXPROCS; the pool never exceeds n. fn is responsible for writing its
// result into an index-addressed slot, which keeps concurrent output
// deterministic and input-ordered.
//
// A cancelled context stops further dispatch: indices not yet handed to a
// worker are never run (their slots stay untouched), indices already
// running complete, and the context's error is returned. A nil error means
// fn ran for every index.
func ParallelEach(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// Sweep builds the full cross product of the given targets, workloads,
// pipelines and sizes, in deterministic row-major order.
func Sweep(targets, workloads []string, pipelines []Pipeline, sizes []int) []Experiment {
	exps := make([]Experiment, 0, len(targets)*len(workloads)*len(pipelines)*len(sizes))
	for _, t := range targets {
		for _, w := range workloads {
			for _, p := range pipelines {
				for _, n := range sizes {
					exps = append(exps, Experiment{Target: t, Workload: w, Pipeline: p, N: n})
				}
			}
		}
	}
	return exps
}

// Shard returns the i-th of m strided partitions of exps (elements i, i+m,
// i+2m, ...). The m shards of one sweep are disjoint and cover it exactly,
// so a figure grid can be split across processes that share a persistent
// store: each process runs its shard, and a final pass reads every cell
// back. Striding (rather than chunking) spreads the expensive large-n
// cells of a row-major sweep evenly across shards.
func Shard(exps []Experiment, i, m int) ([]Experiment, error) {
	if m < 1 {
		return nil, fmt.Errorf("shard: count %d < 1", m)
	}
	if i < 0 || i >= m {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", i, m)
	}
	var part []Experiment
	for j := i; j < len(exps); j += m {
		part = append(part, exps[j])
	}
	return part, nil
}
