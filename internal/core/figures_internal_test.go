package core

import (
	"math"
	"testing"
)

// TestGeomeanGuards: the geometric mean must reject every input class that
// would poison the reported summary — non-positive values, NaN and ±Inf —
// not just the ones ordered comparisons happen to catch.
func TestGeomeanGuards(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 8}, 4},
		{"identity", []float64{1, 1, 1}, 1},
		{"zero poisons", []float64{2, 0, 8}, 0},
		{"negative poisons", []float64{2, -1, 8}, 0},
		{"NaN poisons", []float64{2, math.NaN(), 8}, 0},
		{"+Inf poisons", []float64{2, math.Inf(1), 8}, 0},
		{"-Inf poisons", []float64{2, math.Inf(-1), 8}, 0},
		{"NaN alone", []float64{math.NaN()}, 0},
		{"Inf alone", []float64{math.Inf(1)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Geomean(tc.xs)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Geomean(%v) = %v leaked a non-finite value", tc.xs, got)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Geomean(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

// TestSpeedupRatioGuards: figure speedups divide an optimized measurement
// by a baseline that can be 0 (or already non-finite); the ratio must
// report the 0 sentinel instead of NaN/Inf so geomeans and rendered tables
// stay finite.
func TestSpeedupRatioGuards(t *testing.T) {
	cases := []struct {
		name      string
		opt, base float64
		want      float64
	}{
		{"normal", 8, 2, 4},
		{"sub-unity", 1, 2, 0.5},
		{"zero baseline", 8, 0, 0},
		{"both zero", 0, 0, 0},
		{"NaN baseline", 8, math.NaN(), 0},
		{"+Inf baseline", 8, math.Inf(1), 0},
		{"-Inf baseline", 8, math.Inf(-1), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := speedupRatio(tc.opt, tc.base)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("speedupRatio(%v, %v) = %v leaked a non-finite value", tc.opt, tc.base, got)
			}
			if got != tc.want {
				t.Errorf("speedupRatio(%v, %v) = %v, want %v", tc.opt, tc.base, got, tc.want)
			}
		})
	}
}

// TestZeroBaselineRowsDoNotPoisonGeomean drives a degenerate figure row
// (zero baseline) end to end: its sentinel speedup must zero the geomean
// guardedly instead of rendering NaN.
func TestZeroBaselineRowsDoNotPoisonGeomean(t *testing.T) {
	rows := []Fig11Row{
		{N: 16, BasePerf: 2, OptPerf: 8, Speedup: speedupRatio(8, 2)},
		{N: 32, BasePerf: 0, OptPerf: 8, Speedup: speedupRatio(8, 0)},
	}
	if g := Fig11Geomean(rows); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("Fig11Geomean = %v, want finite sentinel", g)
	}
	rows10 := []Fig10Row{
		{N: 16, BaselinePerf: 0, AccfgPerf: 4, Speedup: speedupRatio(4, 0)},
	}
	if g := Fig10Geomean(rows10); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("Fig10Geomean = %v, want finite sentinel", g)
	}
}
