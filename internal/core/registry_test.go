package core_test

import (
	"strings"
	"testing"

	"configwall/internal/core"
)

func TestBuiltinRegistrations(t *testing.T) {
	targets := core.TargetNames()
	for _, want := range []string{"gemmini", "opengemm"} {
		found := false
		for _, n := range targets {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("target %q not registered (have %v)", want, targets)
		}
	}
	workloads := core.WorkloadNames()
	for _, want := range []string{core.WorkloadMatmul, core.WorkloadRectMM, core.WorkloadMatvec} {
		found := false
		for _, n := range workloads {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q not registered (have %v)", want, workloads)
		}
	}
}

func TestRegisterTargetDuplicate(t *testing.T) {
	dup := core.GemminiTarget() // "gemmini" is registered at init
	if err := core.RegisterTarget(dup); err == nil {
		t.Error("duplicate target registration must fail")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("unexpected duplicate error: %v", err)
	}
	if err := core.RegisterTarget(core.Target{}); err == nil {
		t.Error("empty target name must fail")
	}
}

func TestRegisterWorkloadDuplicate(t *testing.T) {
	dup := core.Workload{
		Name:  core.WorkloadMatmul,
		Build: func(core.Target, int) (core.Instance, error) { return core.Instance{}, nil },
	}
	if err := core.RegisterWorkload(dup); err == nil {
		t.Error("duplicate workload registration must fail")
	}
	if err := core.RegisterWorkload(core.Workload{Name: "no-builder"}); err == nil {
		t.Error("workload without Build must fail")
	}
	if err := core.RegisterWorkload(core.Workload{
		Build: func(core.Target, int) (core.Instance, error) { return core.Instance{}, nil },
	}); err == nil {
		t.Error("empty workload name must fail")
	}
}

func TestLookupUnknownListsValidNames(t *testing.T) {
	if _, err := core.LookupTarget("not-a-target"); err == nil {
		t.Error("unknown target lookup must fail")
	} else if !strings.Contains(err.Error(), "gemmini") {
		t.Errorf("unknown-target error should list registered names: %v", err)
	}
	if _, err := core.LookupWorkload("not-a-workload"); err == nil {
		t.Error("unknown workload lookup must fail")
	} else if !strings.Contains(err.Error(), "matmul") {
		t.Errorf("unknown-workload error should list registered names: %v", err)
	}
	if _, err := core.RunExperiment(core.Experiment{Target: "nope", Workload: "matmul"}, core.RunOptions{}); err == nil {
		t.Error("experiment with unknown target must fail")
	}
}

func TestMatmulWorkloadRejectsUnknownTarget(t *testing.T) {
	w, err := core.LookupWorkload(core.WorkloadMatmul)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Build(core.Target{Name: "mystery", OutputBytes: 4}, 16); err == nil {
		t.Error("matmul build for a target without a builder must fail")
	}
}

func TestGeomeanGuardsNonPositive(t *testing.T) {
	if g := core.Geomean([]float64{1, 4}); g != 2 {
		t.Errorf("Geomean(1,4) = %v, want 2", g)
	}
	for _, xs := range [][]float64{{0, 2}, {-1, 2}, {2, 0, 8}} {
		g := core.Geomean(xs)
		if g != 0 {
			t.Errorf("Geomean(%v) = %v, want 0 (undefined for non-positive inputs)", xs, g)
		}
		if g != g { // NaN check
			t.Errorf("Geomean(%v) produced NaN", xs)
		}
	}
}
