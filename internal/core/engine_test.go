package core_test

import (
	"strings"
	"testing"

	"configwall/internal/core"
	"configwall/internal/roofline"
	"configwall/internal/sim"
	"configwall/internal/trace"
)

// TestAllPipelinesVerifyFunctionally is the repository's central soundness
// check: every pipeline variant on every target must produce a binary whose
// simulated output matches the golden CPU matmul.
func TestAllPipelinesVerifyFunctionally(t *testing.T) {
	for _, target := range []core.Target{core.GemminiTarget(), core.OpenGeMMTarget()} {
		for _, p := range core.Pipelines {
			for _, n := range []int{16, 32, 64} {
				if target.Name == "gemmini" && n < 16 {
					continue
				}
				t.Run(target.Name+"/"+p.String()+"/"+itoa(n), func(t *testing.T) {
					res, err := core.RunTiledMatmul(target, p, n, core.RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Verified {
						t.Error("result not verified")
					}
					if res.Launches == 0 || res.AccelOps == 0 {
						t.Error("no accelerator activity recorded")
					}
					wantOps := uint64(2 * n * n * n)
					if res.AccelOps != wantOps {
						t.Errorf("AccelOps = %d, want %d", res.AccelOps, wantOps)
					}
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestOptimizationsNeverSlowDown asserts the paper's qualitative claim: the
// full pipeline is at least as fast as the baseline at every size.
func TestOptimizationsNeverSlowDown(t *testing.T) {
	for _, target := range []core.Target{core.GemminiTarget(), core.OpenGeMMTarget()} {
		for _, n := range []int{16, 32, 64, 128} {
			base, err := core.RunTiledMatmul(target, core.Baseline, n, core.RunOptions{SkipVerify: true})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := core.RunTiledMatmul(target, core.AllOptimizations, n, core.RunOptions{SkipVerify: true})
			if err != nil {
				t.Fatal(err)
			}
			if opt.Cycles > base.Cycles {
				t.Errorf("%s n=%d: optimized %d cycles > baseline %d", target.Name, n, opt.Cycles, base.Cycles)
			}
		}
	}
}

// TestDedupReducesConfigBytes asserts the mechanism behind Figure 12's
// arrow 1: deduplication strictly reduces configuration traffic on
// multi-invocation workloads.
func TestDedupReducesConfigBytes(t *testing.T) {
	for _, target := range []core.Target{core.GemminiTarget(), core.OpenGeMMTarget()} {
		n := 128
		base, err := core.RunTiledMatmul(target, core.Baseline, n, core.RunOptions{SkipVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		dedup, err := core.RunTiledMatmul(target, core.DedupOnly, n, core.RunOptions{SkipVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		if dedup.ConfigBytes >= base.ConfigBytes {
			t.Errorf("%s: dedup config bytes %d >= baseline %d", target.Name, dedup.ConfigBytes, base.ConfigBytes)
		}
		if dedup.MeasuredIOC() <= base.MeasuredIOC() {
			t.Errorf("%s: dedup I_OC %f <= baseline %f (should move right on the roofline)",
				target.Name, dedup.MeasuredIOC(), base.MeasuredIOC())
		}
	}
}

// TestOverlapHidesConfiguration asserts the mechanism behind Figure 12's
// arrow 2 on the concurrent-configuration target: overlap increases
// performance without reducing configuration traffic.
func TestOverlapHidesConfiguration(t *testing.T) {
	target := core.OpenGeMMTarget()
	n := 64
	base, err := core.RunTiledMatmul(target, core.Baseline, n, core.RunOptions{RecordTrace: true, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := core.RunTiledMatmul(target, core.OverlapOnly, n, core.RunOptions{RecordTrace: true, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.OpsPerCycle() <= base.OpsPerCycle() {
		t.Errorf("overlap %f ops/cycle <= baseline %f", overlap.OpsPerCycle(), base.OpsPerCycle())
	}
	if trace.OverlapCycles(overlap.Trace) <= trace.OverlapCycles(base.Trace) {
		t.Error("overlap pipeline did not increase hidden host cycles")
	}
}

// TestOverlapDoesNotApplySequentially: on Gemmini (sequential) the overlap
// pipeline must not beat dedup (no concurrency to exploit).
func TestOverlapDoesNotApplySequentially(t *testing.T) {
	target := core.GemminiTarget()
	overlap, err := core.RunTiledMatmul(target, core.OverlapOnly, 64, core.RunOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	// Overlap-only on a sequential target is the accfg flow without any
	// accfg-specific optimization: its config traffic equals the traffic
	// of the same flow with overlap disabled.
	if overlap.StallCycles == 0 {
		t.Error("sequential target should still stall on launches")
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := core.Figure10([]int{32, 64, 128}, core.RunOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1.0 {
			t.Errorf("size %d: accfg slower than baseline (%.2fx)", r.N, r.Speedup)
		}
		if r.AccfgPerf > 512 || r.BaselinePerf > 512 {
			t.Errorf("size %d: attainable perf exceeds peak", r.N)
		}
	}
	// Baseline utilization grows with size (configuration amortizes).
	if !(rows[0].BaselinePerf < rows[1].BaselinePerf && rows[1].BaselinePerf < rows[2].BaselinePerf) {
		t.Error("baseline attainable performance should grow with size")
	}
	out := core.RenderFigure10(rows)
	if !strings.Contains(out, "geomean") {
		t.Error("render missing geomean")
	}
}

func TestFigure11Shape(t *testing.T) {
	rows, err := core.Figure11([]int{16, 32, 64}, core.RunOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup <= 1.0 {
			t.Errorf("size %d: no speedup (%.2fx)", r.N, r.Speedup)
		}
		if r.OptPerf > 1024 {
			t.Errorf("size %d: measured perf exceeds peak", r.N)
		}
	}
	g := core.Fig11Geomean(rows)
	if g < 1.5 || g > 3.0 {
		t.Errorf("geomean speedup %.2f outside the paper's ballpark (2x)", g)
	}
}

func TestFigure12PointsMoveAsPredicted(t *testing.T) {
	data, err := core.Figure12([]int{64}, core.RunOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]roofline.Point{}
	for _, s := range data.Points {
		byName[s.Name] = s.Points[0]
	}
	// §4.7's predictions: dedup moves right and up; overlap moves up with
	// I_OC not increasing (prologue duplication may lower it slightly).
	if !(byName["dedup"].IOC > byName["base"].IOC) {
		t.Error("dedup must increase I_OC (move right)")
	}
	if !(byName["dedup"].Perf > byName["base"].Perf) {
		t.Error("dedup must increase performance (move up)")
	}
	if !(byName["overlap"].Perf > byName["base"].Perf) {
		t.Error("overlap must increase performance (move up)")
	}
	if byName["overlap"].IOC > byName["base"].IOC*1.05 {
		t.Error("overlap must not substantially change I_OC")
	}
	if !(byName["all"].Perf >= byName["dedup"].Perf && byName["all"].Perf >= byName["overlap"].Perf) {
		t.Error("combined optimizations must dominate the individual ones")
	}
	out := core.RenderFigure12(data)
	if !strings.Contains(out, "legend") {
		t.Error("figure 12 render missing plot legend")
	}
}

func TestSection46MatchesPaper(t *testing.T) {
	e := core.Section46Example()
	if e.UtilRaw < 0.405 || e.UtilRaw > 0.425 {
		t.Errorf("raw utilization = %.4f, want ~0.4156 (paper 41.49%%)", e.UtilRaw)
	}
	if e.UtilEff < 0.26 || e.UtilEff > 0.275 {
		t.Errorf("effective utilization = %.4f, want ~0.2674 (paper 26.78%%)", e.UtilEff)
	}
	if e.BWConfigRaw < 1.7 || e.BWConfigRaw > 1.8 {
		t.Errorf("BW_Config = %.3f, want ~1.77", e.BWConfigRaw)
	}
	if e.BWConfigEff < 0.9 || e.BWConfigEff > 0.93 {
		t.Errorf("BW_Config,Eff = %.3f, want ~0.913", e.BWConfigEff)
	}
	out := core.RenderSection46()
	if !strings.Contains(out, "41.") || !strings.Contains(out, "26.") {
		t.Error("render missing headline utilizations")
	}
}

func TestRooflineModels(t *testing.T) {
	g := core.GemminiTarget().RooflineModel()
	if g.ConcurrentConfig {
		t.Error("gemmini roofline must be sequential")
	}
	// Paper §4.6: 16 bytes / (3 instr x 3 cycles) with the RoCC handshake
	// folded in; must be in the paper's ballpark of ~1.77 B/cycle.
	if g.BWConfig < 0.5 || g.BWConfig > 2.0 {
		t.Errorf("gemmini BW_config = %.3f, want O(1) B/cycle", g.BWConfig)
	}
	o := core.OpenGeMMTarget().RooflineModel()
	if !o.ConcurrentConfig {
		t.Error("opengemm roofline must be concurrent")
	}
	if o.PeakOps != 1024 {
		t.Errorf("opengemm peak = %f, want 1024", o.PeakOps)
	}
}

func TestRenderTimelines(t *testing.T) {
	out, err := core.RenderTimelines(core.OpenGeMMTarget(), 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "base") || !strings.Contains(out, "all") {
		t.Error("timelines missing pipeline labels")
	}
	if strings.Count(out, "accel |") != 2 {
		t.Error("expected two accelerator rows")
	}
}

func TestPassPipelineStats(t *testing.T) {
	target := core.OpenGeMMTarget()
	res, err := core.RunTiledMatmul(target, core.AllOptimizations, 16, core.RunOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PassStats) == 0 {
		t.Error("no pass statistics recorded")
	}
	joined := strings.Join(res.PassStats, "\n")
	for _, pass := range []string{"accfg-trace-states", "accfg-dedup", "accfg-overlap", "lower-accfg-to-opengemm"} {
		if !strings.Contains(joined, pass) {
			t.Errorf("pipeline missing pass %s:\n%s", pass, joined)
		}
	}
}

func TestBaselineHasNoAccfgPasses(t *testing.T) {
	pm := core.OpenGeMMTarget().PassPipeline(core.Baseline)
	joined := strings.Join(pm.Passes(), ",")
	for _, banned := range []string{"dedup", "overlap", "licm", "trace-states"} {
		if strings.Contains(joined, banned) {
			t.Errorf("baseline pipeline contains %q: %s", banned, joined)
		}
	}
}

func TestGeomeanHelper(t *testing.T) {
	if g := core.Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := core.Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
}

func TestCountersArithmetic(t *testing.T) {
	c := sim.Counters{
		Cycles: 100, AccelOps: 1000, ConfigBytes: 50,
		ConfigCycles: 10, CalcCycles: 40,
	}
	if c.OpsPerCycle() != 10 {
		t.Errorf("OpsPerCycle = %v", c.OpsPerCycle())
	}
	if c.MeasuredIOC() != 20 {
		t.Errorf("MeasuredIOC = %v", c.MeasuredIOC())
	}
	if c.EffectiveConfigBW() != 1 {
		t.Errorf("EffectiveConfigBW = %v", c.EffectiveConfigBW())
	}
	if c.RawConfigBW() != 5 {
		t.Errorf("RawConfigBW = %v", c.RawConfigBW())
	}
}
