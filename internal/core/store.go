package core

// The pluggable persistence seam of the runner: a Store keeps experiment
// results across processes so repeated figure sweeps, sharded grid runs and
// crash-interrupted sweeps never recompile a cell that already ran. The
// on-disk implementation lives in internal/store; core only defines the
// contract so the runner stays storage-agnostic.

import "fmt"

// Store persists experiment results keyed by (experiment, run-options). A
// Store must be safe for concurrent use; the runner may Load and Save from
// many worker goroutines at once.
//
// Load reports ok=false for any key it cannot produce a trustworthy result
// for — absent, written by an incompatible schema, or corrupted on disk —
// and reserves the error for operational failures the caller should see
// (permission denied, disk full). A cache must degrade to a miss, never
// block a sweep.
type Store interface {
	Load(e Experiment, opts RunOptions) (Result, bool, error)
	Save(e Experiment, opts RunOptions, res Result) error
}

// CacheStats counts how the runner satisfied experiment requests; use
// Runner.Snapshot to read them. Requests = MemHits + MemMisses, and every
// memory miss resolves to either a StoreHit or a fresh Run (Runs ==
// MemMisses - StoreHits when no store errors occur).
type CacheStats struct {
	// MemHits counts requests answered by the in-memory cell map.
	MemHits uint64
	// MemMisses counts requests that had to go past the in-memory map.
	MemMisses uint64
	// StoreHits counts memory misses answered by the persistent store.
	StoreHits uint64
	// StoreMisses counts memory misses the persistent store could not
	// answer (including corrupted or schema-mismatched entries).
	StoreMisses uint64
	// Runs counts experiments actually compiled and simulated.
	Runs uint64
	// Predictions counts requests answered by the analytical tier — no
	// compilation, no simulation, never memoized or persisted.
	Predictions uint64
	// Evictions counts cells dropped from the in-memory map by the LRU
	// bound.
	Evictions uint64
	// StoreErrors counts Load/Save operational failures (the sweep
	// continues; the affected cell is recomputed or stays unsaved).
	StoreErrors uint64
}

func (s CacheStats) String() string {
	return fmt.Sprintf("mem %d/%d hit, store %d/%d hit, %d runs, %d predicted, %d evictions, %d store errors",
		s.MemHits, s.MemHits+s.MemMisses, s.StoreHits, s.StoreHits+s.StoreMisses,
		s.Runs, s.Predictions, s.Evictions, s.StoreErrors)
}

// FingerprintKey returns the canonical cache-key string for one experiment
// cell under the given options. Every RunOptions knob that changes the
// produced Result must appear here; stores hash this string (together with
// their serialization schema version) to address entries. The pipeline is
// keyed numerically: Pipeline.String() collapses unnamed values to "base",
// which would alias an out-of-range pipeline onto Baseline's entry. The
// simulator engine is keyed even though both engines produce identical
// Results (the oracle enforces it): a cross-engine comparison that read
// one engine's cached cell for the other would vacuously pass.
func FingerprintKey(e Experiment, opts RunOptions) string {
	return fmt.Sprintf("target=%s;workload=%s;pipeline=%d;n=%d;trace=%t;skipverify=%t;engine=%d",
		e.Target, e.Workload, int(e.Pipeline), e.N, opts.RecordTrace, opts.SkipVerify, int(opts.Engine))
}
