// Package core is the experiment engine: it assembles the paper's
// compilation pipelines (Figure 8), compiles tiled-matmul workloads for a
// target, runs them on the co-simulator, verifies results against the
// golden CPU matmul, and extracts the measurements behind every figure of
// the evaluation section.
package core

import (
	"fmt"

	"configwall/internal/accel"
	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/codegen"
	"configwall/internal/ir"
	"configwall/internal/lower"
	"configwall/internal/mem"
	"configwall/internal/passes"
	"configwall/internal/riscv"
	"configwall/internal/roofline"
	"configwall/internal/sim"
	"configwall/internal/workload"
)

// Pipeline selects which of the paper's optimizations run (Figure 12
// distinguishes exactly these four variants).
type Pipeline int

// Pipeline variants.
const (
	// Baseline models -O2 on volatile inline assembly: constants fold and
	// common subexpressions merge, but configuration writes are all
	// emitted, in order, and nothing moves across them.
	Baseline Pipeline = iota
	// DedupOnly adds state tracing + configuration deduplication (§5.4).
	DedupOnly
	// OverlapOnly adds state tracing + configuration-computation overlap
	// (§5.5) without deduplication.
	OverlapOnly
	// AllOptimizations applies deduplication then overlap (the paper's
	// full accfg pipeline).
	AllOptimizations
)

func (p Pipeline) String() string {
	switch p {
	case DedupOnly:
		return "dedup"
	case OverlapOnly:
		return "overlap"
	case AllOptimizations:
		return "all"
	}
	return "base"
}

// Pipelines lists all variants in presentation order.
var Pipelines = []Pipeline{Baseline, DedupOnly, OverlapOnly, AllOptimizations}

// Target bundles everything needed to compile for and simulate one
// accelerator platform.
type Target struct {
	// Name is the accfg accelerator name.
	Name string
	// Concurrent marks concurrent-configuration hardware (enables
	// overlap).
	Concurrent bool
	// PeakOps is the accelerator's peak performance in ops/cycle.
	PeakOps float64
	// NewDevice builds a fresh simulated device.
	NewDevice func() accel.Device
	// Cost is the host cycle model.
	Cost riscv.CostModel
	// Lowering builds the accfg-to-target lowering pass.
	Lowering func() ir.Pass
	// BuildMatmul builds the tiled matmul workload for size n.
	BuildMatmul func(n int) (*ir.Module, error)
	// OutputBytes is the size of one C element (1 for int8, 4 for int32).
	OutputBytes int
}

// GemminiTarget returns the Gemmini-style platform: sequential
// configuration, 512 ops/cycle, Rocket-class host at 3 cycles/instruction
// (paper §4.6, §6.1).
func GemminiTarget() Target {
	return Target{
		Name:        gemmini.Name,
		Concurrent:  false,
		PeakOps:     gemmini.PeakOpsPerCycle,
		NewDevice:   func() accel.Device { return gemmini.New(gemmini.DefaultCost()) },
		Cost:        riscv.RocketCost(),
		Lowering:    lower.AccfgToGemmini,
		BuildMatmul: workload.GemminiTiledMatmul,
		OutputBytes: 1,
	}
}

// OpenGeMMTarget returns the OpenGeMM-style platform: concurrent
// configuration, 1024 ops/cycle, tiny in-order host (paper §6.2).
func OpenGeMMTarget() Target {
	return Target{
		Name:        opengemm.Name,
		Concurrent:  true,
		PeakOps:     opengemm.PeakOpsPerCycle,
		NewDevice:   func() accel.Device { return opengemm.New(opengemm.DefaultCost()) },
		Cost:        riscv.SnitchCost(),
		Lowering:    lower.AccfgToOpenGeMM,
		BuildMatmul: workload.OpenGeMMTiledMatmul,
		OutputBytes: 4,
	}
}

// PassPipeline assembles the pass sequence for a pipeline variant on a
// target (paper Figure 8: shared accfg passes between target-specific
// conversions).
func (t Target) PassPipeline(p Pipeline) *ir.PassManager {
	concurrent := func(accelName string) bool {
		return t.Concurrent && accelName == t.Name
	}
	pm := ir.NewPassManager()
	if p == Baseline {
		// The volatile-asm baseline still merges repeated pure
		// subexpressions (-O2 CSE works on asm *operands*), but gets no
		// folding, motion or loop simplification around the volatile
		// statements — the paper's premise that volatile inline assembly
		// "fully prevents the compiler to optimize any accelerator
		// configuration code" (§3.1).
		pm.Add(passes.CSE())
	} else {
		pm.Add(passes.Canonicalize(), passes.CSE())
	}
	if p != Baseline {
		// Volatile inline asm blocks loop simplification and
		// loop-invariant code motion (memory clobbers); the accfg flow is
		// free to unroll trivial loops and hoist.
		pm.Add(passes.SimplifyTrivialLoops())
		pm.Add(passes.Canonicalize(), passes.CSE())
		pm.Add(passes.LICM())
		pm.Add(passes.TraceStates())
	}
	if p == DedupOnly || p == AllOptimizations {
		pm.Add(
			passes.SinkSetupsIntoBranches(),
			passes.HoistLoopInvariantFields(),
			passes.Dedup(),
			passes.MergeSetups(),
			passes.RemoveEmptySetups(),
		)
	}
	if p == OverlapOnly || p == AllOptimizations {
		pm.Add(passes.Overlap(concurrent))
	}
	if p != Baseline {
		pm.Add(passes.Canonicalize(), passes.CSE())
	}
	// Target conversion (Figure 8, step 5), then post-lowering cleanups of
	// the emitted packing arithmetic (accfg flows only — the baseline
	// emits the packing verbatim, like Listing 1's macro expansion).
	pm.Add(t.Lowering())
	if p != Baseline {
		pm.Add(passes.LICM())
		pm.Add(passes.Canonicalize(), passes.CSE())
	}
	return pm
}

// Result captures one experiment run.
type Result struct {
	Target   string
	Pipeline Pipeline
	N        int
	sim.Counters
	// Verified confirms the simulated output matched the golden matmul.
	Verified bool
	// ProgramInstrs is the static size of the compiled program.
	ProgramInstrs int
	// PassStats carries the per-pass op-count log.
	PassStats []string
	// Trace holds the timeline when requested.
	Trace []sim.Segment
	// PeakOps echoes the target's peak for convenience.
	PeakOps float64
}

// AttainableEq3 applies the paper's Figure 10 methodology: plug the
// measured effective configuration bandwidth and operation-to-configuration
// intensity into the sequential roofline (Eq. 3) as a proxy for attainable
// performance.
func (r Result) AttainableEq3() float64 {
	return roofline.Sequential(r.PeakOps, r.EffectiveConfigBW(), r.MeasuredIOC())
}

// Utilization returns measured ops/cycle as a fraction of peak.
func (r Result) Utilization() float64 {
	return r.OpsPerCycle() / r.PeakOps
}

// RunOptions tweaks experiment execution.
type RunOptions struct {
	// RecordTrace captures the activity timeline (costs memory).
	RecordTrace bool
	// SkipVerify skips the golden-model comparison (for benchmarks).
	SkipVerify bool
}

const (
	memorySize = 64 << 20
	bufferBase = 1 << 20
	stackBase  = 60 << 20
)

// RunTiledMatmul compiles the n x n tiled matmul for the target under the
// given pipeline, simulates it, verifies the result, and returns the
// measurements.
func RunTiledMatmul(t Target, p Pipeline, n int, opts RunOptions) (Result, error) {
	res := Result{Target: t.Name, Pipeline: p, N: n, PeakOps: t.PeakOps}

	m, err := t.BuildMatmul(n)
	if err != nil {
		return res, err
	}
	pm := t.PassPipeline(p)
	if err := pm.Run(m); err != nil {
		return res, fmt.Errorf("pipeline %s on %s/%d: %w", p, t.Name, n, err)
	}
	res.PassStats = pm.Stats

	// Place A, B, C contiguously from bufferBase; static allocs after.
	aBase := uint64(bufferBase)
	bBase := aBase + uint64(n*n)
	cBase := bBase + uint64(n*n)
	staticBase := cBase + uint64(n*n*t.OutputBytes)

	prog, _, err := codegen.Compile(m, "main", codegen.Options{StaticBase: staticBase})
	if err != nil {
		return res, fmt.Errorf("codegen for %s/%d: %w", t.Name, n, err)
	}
	res.ProgramInstrs = len(prog.Instrs)

	memory := mem.New(memorySize)
	a := make([]int8, n*n)
	b := make([]int8, n*n)
	workload.FillMatrix(a, n, 1)
	workload.FillMatrix(b, n, 2)
	for i, v := range a {
		memory.Write8(aBase+uint64(i), uint8(v))
	}
	for i, v := range b {
		memory.Write8(bBase+uint64(i), uint8(v))
	}
	memory.ResetCounters()

	mc := sim.NewMachine(memory, t.Cost, t.NewDevice())
	mc.RecordTrace = opts.RecordTrace
	mc.Regs[riscv.A0] = int64(aBase)
	mc.Regs[riscv.A0+1] = int64(bBase)
	mc.Regs[riscv.A0+2] = int64(cBase)
	mc.Regs[riscv.SP] = stackBase
	if err := mc.Run(prog); err != nil {
		return res, fmt.Errorf("simulation of %s/%s/%d: %w", t.Name, p, n, err)
	}
	res.Counters = mc.Counters
	res.Trace = mc.Trace

	if !opts.SkipVerify {
		golden := workload.MatmulInt8(a, b, n)
		ok, err := verifyOutput(memory, cBase, golden, n, t.OutputBytes)
		if err != nil {
			return res, err
		}
		res.Verified = ok
		if !ok {
			return res, fmt.Errorf("verification failed: %s/%s/%d output does not match golden matmul", t.Name, p, n)
		}
	}
	return res, nil
}

func verifyOutput(memory *mem.Memory, cBase uint64, golden []int32, n, outBytes int) (bool, error) {
	for i, want := range golden {
		switch outBytes {
		case 1:
			got := int8(memory.Read8(cBase + uint64(i)))
			if got != workload.SaturateInt8(want) {
				return false, fmt.Errorf("C[%d] = %d, want %d (saturated from %d)", i, got, workload.SaturateInt8(want), want)
			}
		case 4:
			got := int32(memory.Read32(cBase + uint64(4*i)))
			if got != want {
				return false, fmt.Errorf("C[%d] = %d, want %d", i, got, want)
			}
		default:
			return false, fmt.Errorf("unsupported output width %d", outBytes)
		}
	}
	return true, nil
}

// RooflineModel derives the target's analytical roofline model, computing
// the raw configuration bandwidth from the host cost model and the
// interface width the way the paper does for Gemmini (§4.6: 16 bytes per
// RoCC custom instruction, issued by a 3-cycles/instruction host with two
// register-setup instructions per custom op).
func (t Target) RooflineModel() roofline.Model {
	var bw float64
	switch t.Name {
	case gemmini.Name:
		// 16 bytes per RoCC instruction; ~3 instructions (2 register
		// loads + 1 custom) at the host CPI.
		perInstr := float64(t.Cost.Cycles(riscv.Instr{Op: riscv.CUSTOM}))
		bw = 16.0 / (3 * perInstr)
	case opengemm.Name:
		// 4 bytes per CSR write; ~2 instructions (1 value setup + 1
		// csrw).
		perInstr := float64(t.Cost.Cycles(riscv.Instr{Op: riscv.CSRRW}))
		bw = 4.0 / (2 * perInstr)
	default:
		bw = 1
	}
	return roofline.Model{
		Name:             t.Name,
		PeakOps:          t.PeakOps,
		BWConfig:         bw,
		BWMemory:         64, // wide tightly-coupled scratchpad port
		ConcurrentConfig: t.Concurrent,
	}
}
