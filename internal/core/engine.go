// Package core is the experiment engine: it assembles the paper's
// compilation pipelines (Figure 8), compiles registered workloads for
// registered targets, runs them on the co-simulator, verifies results
// against the golden CPU models, and extracts the measurements behind every
// figure of the evaluation section.
//
// The engine itself is target- and workload-agnostic: platforms and kernels
// plug in through the registry (registry.go), and sweeps execute on the
// concurrent runner (runner.go).
package core

import (
	"fmt"
	"strings"
	"sync"

	"configwall/internal/accel"
	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/codegen"
	"configwall/internal/ir"
	"configwall/internal/lower"
	"configwall/internal/mem"
	"configwall/internal/passes"
	"configwall/internal/riscv"
	"configwall/internal/roofline"
	"configwall/internal/sim"
	"configwall/internal/trace"
	"configwall/internal/workload"
)

// Pipeline selects which of the paper's optimizations run (Figure 12
// distinguishes exactly these four variants).
type Pipeline int

// Pipeline variants.
const (
	// Baseline models -O2 on volatile inline assembly: constants fold and
	// common subexpressions merge, but configuration writes are all
	// emitted, in order, and nothing moves across them.
	Baseline Pipeline = iota
	// DedupOnly adds state tracing + configuration deduplication (§5.4).
	DedupOnly
	// OverlapOnly adds state tracing + configuration-computation overlap
	// (§5.5) without deduplication.
	OverlapOnly
	// AllOptimizations applies deduplication then overlap (the paper's
	// full accfg pipeline).
	AllOptimizations
)

func (p Pipeline) String() string {
	switch p {
	case DedupOnly:
		return "dedup"
	case OverlapOnly:
		return "overlap"
	case AllOptimizations:
		return "all"
	}
	return "base"
}

// Pipelines lists all variants in presentation order.
var Pipelines = []Pipeline{Baseline, DedupOnly, OverlapOnly, AllOptimizations}

// PipelineByName returns the pipeline with the given String() name.
func PipelineByName(name string) (Pipeline, error) {
	valid := make([]string, len(Pipelines))
	for i, p := range Pipelines {
		if p.String() == name {
			return p, nil
		}
		valid[i] = p.String()
	}
	return Baseline, fmt.Errorf("unknown pipeline %q (want %s)", name, strings.Join(valid, "|"))
}

// Target bundles everything needed to compile for and simulate one
// accelerator platform.
type Target struct {
	// Name is the accfg accelerator name.
	Name string
	// Concurrent marks concurrent-configuration hardware (enables
	// overlap).
	Concurrent bool
	// PeakOps is the accelerator's peak performance in ops/cycle.
	PeakOps float64
	// NewDevice builds a fresh simulated device.
	NewDevice func() accel.Device
	// Cost is the host cycle model.
	Cost riscv.CostModel
	// Lowering builds the accfg-to-target lowering pass.
	Lowering func() ir.Pass
	// RawConfigBW computes the raw configuration bandwidth in bytes/cycle
	// from the host cost model (nil defaults to 1 B/cycle). It feeds the
	// analytical roofline, the way the paper derives Gemmini's ~1.77
	// B/cycle in §4.6.
	RawConfigBW func(c riscv.CostModel) float64
	// MatmulMKN optionally builds the target's C[M,N] = A[M,K] x B[K,N]
	// tiled-matmul IR. A target that provides it joins every built-in
	// matmul-family workload (matmul, rectmm, matvec) without further
	// registration.
	MatmulMKN func(mDim, kDim, nDim int) (*ir.Module, error)
	// MatmulTiling optionally reports the launch structure MatmulMKN
	// would generate, as closed-form arithmetic — no IR is built. The
	// analytical tier (internal/analytic) derives its prediction
	// features from it; a target without the hook cannot be calibrated.
	MatmulTiling func(mDim, kDim, nDim int) (workload.Tiling, error)
	// OutputBytes is the size of one output element the accelerator
	// stores (1 for int8, 4 for int32); workload builders consult it.
	OutputBytes int
}

// GemminiTarget returns the Gemmini-style platform: sequential
// configuration, 512 ops/cycle, Rocket-class host at 3 cycles/instruction
// (paper §4.6, §6.1).
func GemminiTarget() Target {
	return Target{
		Name:         gemmini.Name,
		Concurrent:   false,
		PeakOps:      gemmini.PeakOpsPerCycle,
		NewDevice:    func() accel.Device { return gemmini.New(gemmini.DefaultCost()) },
		Cost:         riscv.RocketCost(),
		Lowering:     lower.AccfgToGemmini,
		MatmulMKN:    workload.GemminiTiledMatmulMKN,
		MatmulTiling: workload.GemminiMatmulTiling,
		RawConfigBW: func(c riscv.CostModel) float64 {
			// 16 bytes per RoCC instruction; ~3 instructions (2 register
			// loads + 1 custom) at the host CPI.
			perInstr := float64(c.Cycles(riscv.Instr{Op: riscv.CUSTOM}))
			return 16.0 / (3 * perInstr)
		},
		OutputBytes: 1,
	}
}

// OpenGeMMTarget returns the OpenGeMM-style platform: concurrent
// configuration, 1024 ops/cycle, tiny in-order host (paper §6.2).
func OpenGeMMTarget() Target {
	return Target{
		Name:         opengemm.Name,
		Concurrent:   true,
		PeakOps:      opengemm.PeakOpsPerCycle,
		NewDevice:    func() accel.Device { return opengemm.New(opengemm.DefaultCost()) },
		Cost:         riscv.SnitchCost(),
		Lowering:     lower.AccfgToOpenGeMM,
		MatmulMKN:    workload.OpenGeMMTiledMatmulMKN,
		MatmulTiling: workload.OpenGeMMMatmulTiling,
		RawConfigBW: func(c riscv.CostModel) float64 {
			// 4 bytes per CSR write; ~2 instructions (1 value setup + 1
			// csrw).
			perInstr := float64(c.Cycles(riscv.Instr{Op: riscv.CSRRW}))
			return 4.0 / (2 * perInstr)
		},
		OutputBytes: 4,
	}
}

// PassPipeline assembles the pass sequence for a pipeline variant on a
// target (paper Figure 8: shared accfg passes between target-specific
// conversions).
func (t Target) PassPipeline(p Pipeline) *ir.PassManager {
	concurrent := func(accelName string) bool {
		return t.Concurrent && accelName == t.Name
	}
	pm := ir.NewPassManager()
	if p == Baseline {
		// The volatile-asm baseline still merges repeated pure
		// subexpressions (-O2 CSE works on asm *operands*), but gets no
		// folding, motion or loop simplification around the volatile
		// statements — the paper's premise that volatile inline assembly
		// "fully prevents the compiler to optimize any accelerator
		// configuration code" (§3.1).
		pm.Add(passes.CSE())
	} else {
		pm.Add(passes.Canonicalize(), passes.CSE())
	}
	if p != Baseline {
		// Volatile inline asm blocks loop simplification and
		// loop-invariant code motion (memory clobbers); the accfg flow is
		// free to unroll trivial loops and hoist.
		pm.Add(passes.SimplifyTrivialLoops())
		pm.Add(passes.Canonicalize(), passes.CSE())
		pm.Add(passes.LICM())
		pm.Add(passes.TraceStates())
	}
	if p == DedupOnly || p == AllOptimizations {
		pm.Add(
			passes.SinkSetupsIntoBranches(),
			passes.HoistLoopInvariantFields(),
			passes.Dedup(),
			passes.MergeSetups(),
			passes.RemoveEmptySetups(),
		)
	}
	if p == OverlapOnly || p == AllOptimizations {
		pm.Add(passes.Overlap(concurrent))
	}
	if p != Baseline {
		pm.Add(passes.Canonicalize(), passes.CSE())
	}
	// Target conversion (Figure 8, step 5), then post-lowering cleanups of
	// the emitted packing arithmetic (accfg flows only — the baseline
	// emits the packing verbatim, like Listing 1's macro expansion).
	pm.Add(t.Lowering())
	if p != Baseline {
		pm.Add(passes.LICM())
		pm.Add(passes.Canonicalize(), passes.CSE())
	}
	return pm
}

// Result captures one experiment run.
type Result struct {
	Target   string
	Workload string
	Pipeline Pipeline
	N        int
	sim.Counters
	// Verified confirms the simulated output matched the golden model.
	Verified bool
	// ProgramInstrs is the static size of the compiled program.
	ProgramInstrs int
	// PassStats carries the per-pass op-count log.
	PassStats []string
	// Trace holds the timeline when requested.
	Trace []sim.Segment
	// PeakOps echoes the target's peak for convenience.
	PeakOps float64
	// Analytic marks a simulation-free result produced by a calibrated
	// Predictor (DESIGN.md §10): counters are model estimates inside a
	// documented error band, Verified is necessarily false, and the cell
	// was never compiled or simulated. Omitted from JSON when false so
	// simulated results keep their byte-identical serving encoding.
	Analytic bool `json:"Analytic,omitempty"`
}

// AttainableEq3 applies the paper's Figure 10 methodology: plug the
// measured effective configuration bandwidth and operation-to-configuration
// intensity into the sequential roofline (Eq. 3) as a proxy for attainable
// performance.
func (r Result) AttainableEq3() float64 {
	return roofline.Sequential(r.PeakOps, r.EffectiveConfigBW(), r.MeasuredIOC())
}

// Utilization returns measured ops/cycle as a fraction of peak.
func (r Result) Utilization() float64 {
	return r.OpsPerCycle() / r.PeakOps
}

// RunOptions tweaks experiment execution.
type RunOptions struct {
	// RecordTrace captures the activity timeline (costs memory).
	RecordTrace bool
	// SkipVerify skips the golden-model comparison (for benchmarks).
	SkipVerify bool
	// Engine selects the simulator execution engine (default: the
	// reference interpreter). Both engines produce byte-identical
	// results — the differential oracle enforces it — but they are
	// cached and fingerprinted separately so cross-engine comparisons
	// never serve one engine's run to the other.
	Engine sim.Engine
	// Fidelity selects how much simulation a Runner invests in the
	// answer (default FidelityFull). Deliberately excluded from cache
	// keys and store fingerprints: predictions are never memoized or
	// persisted, so fidelity is a per-request routing decision, not part
	// of a cell's identity.
	Fidelity Fidelity
}

// Fidelity is a Runner's per-request answer tier (DESIGN.md §10).
type Fidelity int

const (
	// FidelityFull compiles and simulates (memoized + stored) — the
	// default and the only tier that produces ground truth.
	FidelityFull Fidelity = iota
	// FidelityScreen never simulates: the answer is an analytical
	// prediction from the runner's calibrated Predictor, even when a
	// simulated result is already cached.
	FidelityScreen
	// FidelityCached serves a memoized or stored simulated result when
	// one exists and otherwise falls back to an analytical prediction
	// instead of simulating.
	FidelityCached
)

func (f Fidelity) String() string {
	switch f {
	case FidelityScreen:
		return "screen"
	case FidelityCached:
		return "cached"
	}
	return "full"
}

// FidelityByName resolves a fidelity tier from its wire name.
func FidelityByName(name string) (Fidelity, error) {
	switch name {
	case "", "full":
		return FidelityFull, nil
	case "screen":
		return FidelityScreen, nil
	case "cached":
		return FidelityCached, nil
	}
	return FidelityFull, fmt.Errorf("unknown fidelity %q (valid: full, screen, cached)", name)
}

const (
	memorySize = 64 << 20
	bufferBase = 1 << 20
	stackBase  = 60 << 20
)

// execContext is a reusable simulation sandbox: the 64 MiB arena and the
// machine around it. Allocating (and faulting in) the arena dominates the
// setup cost of small experiments, so sweeps recycle contexts through a
// pool and reset instead of reallocating: Memory.Reset zeroes only the
// pages the previous run dirtied, and the registers are cleared so a
// pooled machine is indistinguishable from a fresh one.
type execContext struct {
	memory *mem.Memory
	mc     *sim.Machine
}

var execPool = sync.Pool{
	New: func() any {
		m := mem.New(memorySize)
		return &execContext{memory: m, mc: sim.NewMachine(m, nil, nil)}
	},
}

// getExecContext returns a context restored to fresh-machine state.
func getExecContext() *execContext {
	ctx := execPool.Get().(*execContext)
	ctx.memory.Reset()
	ctx.mc.Regs = [riscv.NumRegs]int64{}
	return ctx
}

// putExecContext recycles the context. The device is dropped (it is
// per-run state), but the machine's compiled-program memo stays with the
// context so repeated runs reuse it.
func putExecContext(ctx *execContext) {
	ctx.mc.Device = nil
	execPool.Put(ctx)
}

// RunTiledMatmul compiles the n x n tiled matmul for the target under the
// given pipeline, simulates it, verifies the result, and returns the
// measurements. It is the square-matmul convenience wrapper around Run.
func RunTiledMatmul(t Target, p Pipeline, n int, opts RunOptions) (Result, error) {
	w, err := LookupWorkload(WorkloadMatmul)
	if err != nil {
		return Result{}, err
	}
	return Run(t, w, p, n, opts)
}

// Run compiles the workload at size n for the target under the given
// pipeline, simulates it, verifies every checked buffer against the golden
// model, and returns the measurements. It is the engine's single
// experiment primitive; sweeps should go through Runner.
func Run(t Target, w Workload, p Pipeline, n int, opts RunOptions) (Result, error) {
	res := Result{Target: t.Name, Workload: w.Name, Pipeline: p, N: n, PeakOps: t.PeakOps}

	inst, err := w.Build(t, n)
	if err != nil {
		return res, err
	}
	pm := t.PassPipeline(p)
	if err := pm.Run(inst.Module); err != nil {
		return res, fmt.Errorf("pipeline %s on %s/%s/%d: %w", p, t.Name, w.Name, n, err)
	}
	res.PassStats = pm.Stats

	// Place the buffers contiguously from bufferBase; static allocs after.
	bases := make([]uint64, len(inst.Buffers))
	next := uint64(bufferBase)
	for i, buf := range inst.Buffers {
		bases[i] = next
		next += buf.Bytes
	}
	staticBase := next
	if staticBase >= stackBase {
		return res, fmt.Errorf("workload %s/%d: buffers exceed simulated memory", w.Name, n)
	}

	prog, _, err := codegen.Compile(inst.Module, "main", codegen.Options{StaticBase: staticBase})
	if err != nil {
		return res, fmt.Errorf("codegen for %s/%s/%d: %w", t.Name, w.Name, n, err)
	}
	res.ProgramInstrs = len(prog.Instrs)

	ctx := getExecContext()
	defer putExecContext(ctx)
	memory := ctx.memory
	for i, buf := range inst.Buffers {
		if buf.Init != nil {
			buf.Init(memory, bases[i])
		}
	}
	memory.ResetCounters()

	mc := ctx.mc
	mc.Cost = t.Cost
	mc.Device = t.NewDevice()
	mc.Engine = opts.Engine
	mc.RecordTrace = opts.RecordTrace
	if opts.RecordTrace {
		// Record into a pooled buffer. Results are cached and shared, so
		// the trace is copied out below and the buffer returned to the pool
		// for the next traced run (possibly on another context).
		mc.Trace = trace.Buffers.Get()
		defer func() {
			trace.Buffers.Put(mc.Trace)
			mc.Trace = nil
		}()
	}
	for i := range inst.Buffers {
		mc.Regs[riscv.A0+riscv.Reg(i)] = int64(bases[i])
	}
	mc.Regs[riscv.SP] = stackBase
	if err := mc.Run(prog); err != nil {
		return res, fmt.Errorf("simulation of %s/%s/%s/%d: %w", t.Name, w.Name, p, n, err)
	}
	res.Counters = mc.Counters
	if opts.RecordTrace && len(mc.Trace) > 0 {
		res.Trace = append([]sim.Segment(nil), mc.Trace...)
	}

	if !opts.SkipVerify {
		checked := 0
		for i, buf := range inst.Buffers {
			if buf.Verify == nil {
				continue
			}
			if err := buf.Verify(memory, bases[i]); err != nil {
				return res, fmt.Errorf("verification failed: %s/%s/%s/%d buffer %d: %w", t.Name, w.Name, p, n, i, err)
			}
			checked++
		}
		// A workload with no Verify hooks was never compared against a
		// golden model; do not report it as verified.
		res.Verified = checked > 0
	}
	return res, nil
}

// RooflineModel derives the target's analytical roofline model, computing
// the raw configuration bandwidth from the host cost model via the target's
// RawConfigBW hook, the way the paper does for Gemmini (§4.6: 16 bytes per
// RoCC custom instruction, issued by a 3-cycles/instruction host with two
// register-setup instructions per custom op).
func (t Target) RooflineModel() roofline.Model {
	bw := 1.0
	if t.RawConfigBW != nil {
		bw = t.RawConfigBW(t.Cost)
	}
	return roofline.Model{
		Name:             t.Name,
		PeakOps:          t.PeakOps,
		BWConfig:         bw,
		BWMemory:         64, // wide tightly-coupled scratchpad port
		ConcurrentConfig: t.Concurrent,
	}
}
