package core_test

// Engine-equivalence tests at the experiment layer: the paper's artifacts
// must be byte-identical no matter which simulator engine produced the
// underlying runs. (The instruction-level equivalence proof lives in
// internal/sim and internal/difftest; this pins the end-to-end claim the
// figures depend on.)

import (
	"context"
	"reflect"
	"testing"

	"configwall/internal/core"
	"configwall/internal/sim"
)

func TestResultsIdenticalAcrossEngines(t *testing.T) {
	for _, target := range []core.Target{core.GemminiTarget(), core.OpenGeMMTarget()} {
		for _, p := range []core.Pipeline{core.Baseline, core.AllOptimizations} {
			ref, err := core.RunTiledMatmul(target, p, 32,
				core.RunOptions{RecordTrace: true, Engine: sim.EngineRef})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := core.RunTiledMatmul(target, p, 32,
				core.RunOptions{RecordTrace: true, Engine: sim.EngineFast})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Counters != fast.Counters {
				t.Errorf("%s/%s: counters differ:\nref:  %+v\nfast: %+v",
					target.Name, p, ref.Counters, fast.Counters)
			}
			if !reflect.DeepEqual(ref.Trace, fast.Trace) {
				t.Errorf("%s/%s: traces differ (%d vs %d segments)",
					target.Name, p, len(ref.Trace), len(fast.Trace))
			}
			if !ref.Verified || !fast.Verified {
				t.Errorf("%s/%s: verification: ref=%v fast=%v", target.Name, p, ref.Verified, fast.Verified)
			}
		}
	}
}

func TestFigureOutputsIdenticalAcrossEngines(t *testing.T) {
	sizes := []int{16, 32}
	render := func(engine sim.Engine) (string, float64) {
		rows, err := core.Figure11(sizes, core.RunOptions{SkipVerify: true, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		return core.RenderFigure11(rows), core.Fig11Geomean(rows)
	}
	refOut, refG := render(sim.EngineRef)
	fastOut, fastG := render(sim.EngineFast)
	if refOut != fastOut {
		t.Errorf("Figure 11 rendering differs between engines:\nref:\n%s\nfast:\n%s", refOut, fastOut)
	}
	if refG != fastG {
		t.Errorf("Figure 11 geomean differs: ref %v, fast %v", refG, fastG)
	}
}

// TestRunnerKeepsEnginesSeparate: a cached ref-engine result must not be
// served to a fast-engine request (it would make cross-engine comparisons
// vacuous), even though the payloads are identical.
func TestRunnerKeepsEnginesSeparate(t *testing.T) {
	r := core.NewRunner(1)
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16}
	if _, err := r.Run(context.Background(), e, core.RunOptions{SkipVerify: true, Engine: sim.EngineRef}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), e, core.RunOptions{SkipVerify: true, Engine: sim.EngineFast}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); s.Runs != 2 {
		t.Errorf("Runs = %d, want 2 (one per engine; engines must not share cache cells)", s.Runs)
	}
}
