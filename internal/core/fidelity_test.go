package core_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"configwall/internal/core"
)

// stubPredictor answers every experiment with a synthetic Analytic result
// whose ops/cycle rank is controlled by N (larger N predicts faster), and
// counts how often it was consulted.
type stubPredictor struct {
	calls atomic.Uint64
	fail  bool
}

func (p *stubPredictor) Predict(e core.Experiment) (core.Result, error) {
	p.calls.Add(1)
	if p.fail {
		return core.Result{}, fmt.Errorf("stub predictor refused")
	}
	res := core.Result{Target: e.Target, Workload: e.Workload, Pipeline: e.Pipeline, N: e.N, Analytic: true}
	res.Cycles = 1000
	res.AccelOps = uint64(e.N) // rank: larger N -> higher ops/cycle
	return res, nil
}

func screenGrid() []core.Experiment {
	return core.Sweep(
		[]string{"opengemm"},
		[]string{core.WorkloadMatmul},
		[]core.Pipeline{core.Baseline, core.AllOptimizations},
		[]int{8, 16, 24},
	)
}

// TestFidelityScreenBypassesSimulation: screen-fidelity requests must
// never simulate, never touch the memo map, and must return the
// predictor's Analytic result.
func TestFidelityScreenBypassesSimulation(t *testing.T) {
	p := &stubPredictor{}
	r := core.NewRunnerWith(core.RunnerOptions{Workers: 2, Predictor: p})
	exps := screenGrid()

	res, err := r.Screen(context.Background(), exps)
	if err != nil {
		t.Fatalf("Screen: %v", err)
	}
	if len(res) != len(exps) {
		t.Fatalf("Screen returned %d results, want %d", len(res), len(exps))
	}
	for i, re := range res {
		if !re.Analytic {
			t.Errorf("result %d not marked Analytic", i)
		}
		if re.N != exps[i].N {
			t.Errorf("result %d out of input order: N=%d want %d", i, re.N, exps[i].N)
		}
	}
	st := r.Snapshot()
	if st.Runs != 0 {
		t.Errorf("Screen simulated %d cells, want 0", st.Runs)
	}
	if st.Predictions != uint64(len(exps)) {
		t.Errorf("Predictions = %d, want %d", st.Predictions, len(exps))
	}
	if r.CacheSize() != 0 {
		t.Errorf("Screen polluted the memo map with %d cells", r.CacheSize())
	}

	// Run with explicit screen fidelity behaves identically.
	one, err := r.Run(context.Background(), exps[0], core.RunOptions{Fidelity: core.FidelityScreen})
	if err != nil {
		t.Fatalf("Run(screen): %v", err)
	}
	if !one.Analytic {
		t.Errorf("Run(screen) result not Analytic")
	}
}

// TestFidelityCachedServesSimulatedThenPredicts: cached fidelity must
// serve an existing simulated cell verbatim and fall back to prediction
// (not simulation) on a cold cell.
func TestFidelityCachedServesSimulatedThenPredicts(t *testing.T) {
	p := &stubPredictor{}
	r := core.NewRunnerWith(core.RunnerOptions{Workers: 2, Predictor: p})
	hot := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 16}
	cold := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16}

	simmed, err := r.Run(context.Background(), hot, core.RunOptions{})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	got, err := r.Run(context.Background(), hot, core.RunOptions{Fidelity: core.FidelityCached})
	if err != nil {
		t.Fatalf("cached run (hot): %v", err)
	}
	if got.Analytic || got.Cycles != simmed.Cycles {
		t.Errorf("cached fidelity on a hot cell returned Analytic=%v cycles=%d, want simulated cycles=%d", got.Analytic, got.Cycles, simmed.Cycles)
	}

	got, err = r.Run(context.Background(), cold, core.RunOptions{Fidelity: core.FidelityCached})
	if err != nil {
		t.Fatalf("cached run (cold): %v", err)
	}
	if !got.Analytic {
		t.Errorf("cached fidelity on a cold cell returned a non-Analytic result without simulating")
	}
	if st := r.Snapshot(); st.Runs != 1 {
		t.Errorf("Runs = %d, want exactly the one explicit full-fidelity run", st.Runs)
	}
}

// TestFidelityWithoutPredictor: screen/cached fidelity on a runner with
// no predictor must fail with a diagnostic, not simulate.
func TestFidelityWithoutPredictor(t *testing.T) {
	r := core.NewRunner(1)
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	if _, err := r.Run(context.Background(), e, core.RunOptions{Fidelity: core.FidelityScreen}); err == nil || !strings.Contains(err.Error(), "no analytic predictor") {
		t.Fatalf("screen without predictor: err = %v, want 'no analytic predictor'", err)
	}
	if st := r.Snapshot(); st.Runs != 0 {
		t.Errorf("failed screen still simulated %d cells", st.Runs)
	}
}

// TestTopKByPredictedPerf pins the ranking contract: ops/cycle
// descending, ties to the lower input index, output ascending.
func TestTopKByPredictedPerf(t *testing.T) {
	mk := func(ops, cycles uint64) core.Result {
		var r core.Result
		r.AccelOps, r.Cycles = ops, cycles
		return r
	}
	preds := []core.Result{
		mk(10, 100), // 0.1
		mk(50, 100), // 0.5
		mk(50, 100), // 0.5 (tie with 1 -> 1 wins first)
		mk(90, 100), // 0.9
	}
	cases := []struct {
		k    int
		want []int
	}{
		{0, []int{}},
		{-3, []int{}},
		{1, []int{3}},
		{2, []int{1, 3}},
		{3, []int{1, 2, 3}},
		{99, []int{0, 1, 2, 3}},
	}
	for _, c := range cases {
		got := core.TopKByPredictedPerf(preds, c.k)
		if len(got) != len(c.want) {
			t.Errorf("k=%d: got %v, want %v", c.k, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("k=%d: got %v, want %v", c.k, got, c.want)
				break
			}
		}
	}
}

// TestRunTopKMergesTiers: the chosen cells come back simulated, the rest
// analytic, in input order; a repeat reuses the memoized simulations.
func TestRunTopKMergesTiers(t *testing.T) {
	p := &stubPredictor{}
	r := core.NewRunnerWith(core.RunnerOptions{Workers: 2, Predictor: p})
	exps := screenGrid() // ranking: larger N predicts faster

	res, err := r.RunTopK(context.Background(), exps, core.RunOptions{}, 2)
	if err != nil {
		t.Fatalf("RunTopK: %v", err)
	}
	simulated := 0
	for i, re := range res {
		if re.N != exps[i].N || re.Pipeline != exps[i].Pipeline {
			t.Fatalf("result %d out of input order", i)
		}
		if !re.Analytic {
			simulated++
			if re.N != 24 {
				t.Errorf("simulated cell %d has N=%d; top-2 by stub ranking are the N=24 cells", i, re.N)
			}
		}
	}
	if simulated != 2 {
		t.Errorf("%d simulated cells, want 2", simulated)
	}
	if st := r.Snapshot(); st.Runs != 2 {
		t.Errorf("Runs = %d, want 2", st.Runs)
	}

	// Re-sweeping the same top-k simulates nothing new.
	if _, err := r.RunTopK(context.Background(), exps, core.RunOptions{}, 2); err != nil {
		t.Fatalf("RunTopK repeat: %v", err)
	}
	if st := r.Snapshot(); st.Runs != 2 {
		t.Errorf("repeat sweep re-simulated: Runs = %d, want 2", st.Runs)
	}

	// k >= len degenerates to a plain full sweep.
	full, err := r.RunTopK(context.Background(), exps, core.RunOptions{}, len(exps))
	if err != nil {
		t.Fatalf("RunTopK(all): %v", err)
	}
	for i, re := range full {
		if re.Analytic {
			t.Errorf("k=len result %d still analytic", i)
		}
	}
}

// TestFidelityByName pins the wire names.
func TestFidelityByName(t *testing.T) {
	for name, want := range map[string]core.Fidelity{
		"":       core.FidelityFull,
		"full":   core.FidelityFull,
		"screen": core.FidelityScreen,
		"cached": core.FidelityCached,
	} {
		got, err := core.FidelityByName(name)
		if err != nil || got != want {
			t.Errorf("FidelityByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := core.FidelityByName("topk"); err == nil {
		t.Errorf("FidelityByName(topk) accepted; top-k is a sweep strategy, not a run fidelity")
	}
	for f, want := range map[core.Fidelity]string{
		core.FidelityFull:   "full",
		core.FidelityScreen: "screen",
		core.FidelityCached: "cached",
	} {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", f, got, want)
		}
	}
}
