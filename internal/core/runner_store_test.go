package core_test

// Tests of the runner's persistence layer: the pluggable Store backend,
// the LRU bound on the in-memory cell map, hit/miss/evict accounting, and
// the shard/resume workflow for split figure grids.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"configwall/internal/core"
	"configwall/internal/sim"
	"configwall/internal/store"
)

func diskRunner(t *testing.T, dir string, maxCells int) *core.Runner {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewRunnerWith(core.RunnerOptions{Store: st, MaxCells: maxCells})
}

// renderAllFigures regenerates the three measured figures on one runner
// and concatenates their rendered output.
func renderAllFigures(t *testing.T, r *core.Runner, opts core.RunOptions) string {
	t.Helper()
	sizes := []int{16, 32}
	rows10, err := core.Figure10With(context.Background(), r, sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	rows11, err := core.Figure11With(context.Background(), r, sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	d12, err := core.Figure12With(context.Background(), r, sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return core.RenderFigure10(rows10) + core.RenderFigure11(rows11) + core.RenderFigure12(d12)
}

// TestStoreBackedFigureSweepZeroRecompute is the PR's acceptance criterion:
// a repeated figure sweep against the same cache directory compiles and
// simulates nothing on the second run — every cell is a store hit — and
// the rendered figures are byte-identical to an uncached run.
func TestStoreBackedFigureSweepZeroRecompute(t *testing.T) {
	opts := core.RunOptions{SkipVerify: true}
	dir := t.TempDir()

	uncached := renderAllFigures(t, core.NewRunner(0), opts)

	first := diskRunner(t, dir, 0)
	out1 := renderAllFigures(t, first, opts)
	s1 := first.Snapshot()
	if s1.Runs == 0 || s1.StoreHits != 0 {
		t.Fatalf("first cached run: %+v, want fresh runs and no store hits", s1)
	}

	// A brand-new runner (fresh process, same directory): zero recomputes.
	second := diskRunner(t, dir, 0)
	out2 := renderAllFigures(t, second, opts)
	s2 := second.Snapshot()
	if s2.Runs != 0 {
		t.Errorf("second cached run recomputed %d cells, want 0 (stats: %+v)", s2.Runs, s2)
	}
	if s2.StoreHits != s1.Runs {
		t.Errorf("second run store hits = %d, want %d (every cell the first run computed)", s2.StoreHits, s1.Runs)
	}
	if s2.StoreMisses != 0 || s2.StoreErrors != 0 {
		t.Errorf("second run had store misses/errors: %+v", s2)
	}

	if out1 != uncached {
		t.Error("store-backed rendering differs from uncached rendering")
	}
	if out2 != uncached {
		t.Error("store-served rendering differs from uncached rendering")
	}
}

// TestRunnerLRUEviction bounds the in-memory map and checks eviction
// accounting plus the store fallback for evicted cells.
func TestRunnerLRUEviction(t *testing.T) {
	dir := t.TempDir()
	r := diskRunner(t, dir, 2)
	opts := core.RunOptions{SkipVerify: true}
	exps := []core.Experiment{
		{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8},
		{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16},
		{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 24},
	}
	for _, e := range exps {
		if _, err := r.Run(context.Background(), e, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.CacheSize(); got != 2 {
		t.Errorf("CacheSize = %d, want 2 (LRU bound)", got)
	}
	s := r.Snapshot()
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Runs != 3 {
		t.Errorf("Runs = %d, want 3", s.Runs)
	}
	// exps[0] was evicted; re-requesting it must hit the store, not rerun.
	if _, err := r.Run(context.Background(), exps[0], opts); err != nil {
		t.Fatal(err)
	}
	s = r.Snapshot()
	if s.Runs != 3 {
		t.Errorf("evicted cell recomputed: Runs = %d, want 3", s.Runs)
	}
	if s.StoreHits != 1 {
		t.Errorf("StoreHits = %d, want 1 (evicted cell reloaded)", s.StoreHits)
	}
	if got := r.CacheSize(); got != 2 {
		t.Errorf("CacheSize = %d, want 2 after reload", got)
	}
}

// TestRunnerLRUTouchOnHit: re-accessing an old cell must protect it from
// the next eviction (LRU, not FIFO).
func TestRunnerLRUTouchOnHit(t *testing.T) {
	r := core.NewRunnerWith(core.RunnerOptions{MaxCells: 2})
	opts := core.RunOptions{SkipVerify: true}
	a := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	b := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16}
	c := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 24}
	for _, e := range []core.Experiment{a, b, a, c} { // touch a before c evicts
		if _, err := r.Run(context.Background(), e, opts); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Snapshot()
	// b (least recently used) was evicted; re-running a must not recompute.
	if _, err := r.Run(context.Background(), a, opts); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Runs; got != s.Runs {
		t.Errorf("a was evicted despite recent touch: Runs went %d -> %d", s.Runs, got)
	}
	// b recomputes (no store to fall back on).
	if _, err := r.Run(context.Background(), b, opts); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Runs; got != s.Runs+1 {
		t.Errorf("expected exactly one recompute for evicted b: Runs went %d -> %d", s.Runs, got)
	}
}

// TestRunnerStatsAccounting checks the hit/miss identities on a sweep with
// duplicates.
func TestRunnerStatsAccounting(t *testing.T) {
	r := core.NewRunner(4)
	opts := core.RunOptions{SkipVerify: true}
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	if _, err := r.RunAll(context.Background(), []core.Experiment{e, e, e, e}, opts); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if s.MemHits+s.MemMisses != 4 {
		t.Errorf("requests = %d, want 4 (stats: %+v)", s.MemHits+s.MemMisses, s)
	}
	if s.MemMisses != 1 || s.Runs != 1 {
		t.Errorf("distinct cell must miss and run exactly once: %+v", s)
	}
	if s.StoreHits != 0 && s.StoreMisses != 0 {
		t.Errorf("storeless runner reported store traffic: %+v", s)
	}
}

// TestShardPartition: for every m, the m shards are disjoint and their
// union is exactly the sweep — the correctness condition for splitting a
// grid across processes.
func TestShardPartition(t *testing.T) {
	exps := fullSweep()
	for m := 1; m <= len(exps)+1; m++ {
		seen := map[core.Experiment]int{}
		total := 0
		for i := 0; i < m; i++ {
			part, err := core.Shard(exps, i, m)
			if err != nil {
				t.Fatalf("Shard(%d, %d): %v", i, m, err)
			}
			total += len(part)
			for _, e := range part {
				seen[e]++
			}
		}
		if total != len(exps) {
			t.Errorf("m=%d: shards cover %d cells, want %d", m, total, len(exps))
		}
		for e, n := range seen {
			if n != 1 {
				t.Errorf("m=%d: cell %s appears in %d shards", m, e, n)
			}
		}
	}
	if _, err := core.Shard(exps, 0, 0); err == nil {
		t.Error("Shard with m=0 must error")
	}
	if _, err := core.Shard(exps, 2, 2); err == nil {
		t.Error("Shard with i=m must error")
	}
	if _, err := core.Shard(exps, -1, 2); err == nil {
		t.Error("Shard with negative i must error")
	}
}

// TestShardedSweepThenResume drives the full split-grid workflow: two
// shard processes fill one store, a third process finds nothing missing
// and serves the whole grid without computing; and after a *partial* run
// (one shard only), Missing names exactly the other shard's cells.
func TestShardedSweepThenResume(t *testing.T) {
	opts := core.RunOptions{SkipVerify: true}
	grid := core.Figure12Experiments([]int{8, 16})
	dir := t.TempDir()

	shard0, err := core.Shard(grid, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := core.Shard(grid, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// "Process" 0 runs its shard and crashes before shard 1 ever runs.
	if _, err := diskRunner(t, dir, 0).RunAll(context.Background(), shard0, opts); err != nil {
		t.Fatal(err)
	}

	// Resume planning: a fresh runner reports exactly shard 1 missing.
	resumed := diskRunner(t, dir, 0)
	missing := resumed.Missing(context.Background(), grid, opts)
	if !reflect.DeepEqual(missing, shard1) {
		t.Errorf("Missing after partial sweep = %v, want %v", missing, shard1)
	}
	if _, err := resumed.RunAll(context.Background(), grid, opts); err != nil {
		t.Fatal(err)
	}
	if s := resumed.Snapshot(); int(s.Runs) != len(shard1) {
		t.Errorf("resume computed %d cells, want %d (only the missing shard)", s.Runs, len(shard1))
	}

	// Final render pass: everything stored, nothing missing or computed.
	final := diskRunner(t, dir, 0)
	if missing := final.Missing(context.Background(), grid, opts); len(missing) != 0 {
		t.Errorf("complete store still reports %d missing cells", len(missing))
	}
	if _, err := final.RunAll(context.Background(), grid, opts); err != nil {
		t.Fatal(err)
	}
	if s := final.Snapshot(); s.Runs != 0 || int(s.StoreHits) != len(grid) {
		t.Errorf("final pass: %+v, want 0 runs and %d store hits", s, len(grid))
	}
}

// TestWarmPreloads: Warm pulls stored cells into memory so later Run calls
// are pure memory hits even if the store then disappears.
func TestWarmPreloads(t *testing.T) {
	opts := core.RunOptions{SkipVerify: true}
	exps := core.Figure11Experiments([]int{8, 16})
	dir := t.TempDir()
	if _, err := diskRunner(t, dir, 0).RunAll(context.Background(), exps, opts); err != nil {
		t.Fatal(err)
	}

	r := diskRunner(t, dir, 0)
	if warmed := r.Warm(context.Background(), exps, opts); warmed != len(exps) {
		t.Errorf("Warm = %d, want %d", warmed, len(exps))
	}
	if got := r.CacheSize(); got != len(exps) {
		t.Errorf("CacheSize after Warm = %d, want %d", got, len(exps))
	}
	// Warming again is a no-op.
	if warmed := r.Warm(context.Background(), exps, opts); warmed != 0 {
		t.Errorf("second Warm = %d, want 0", warmed)
	}
	before := r.Snapshot()
	if _, err := r.RunAll(context.Background(), exps, opts); err != nil {
		t.Fatal(err)
	}
	after := r.Snapshot()
	if after.Runs != 0 {
		t.Errorf("RunAll after Warm computed %d cells, want 0", after.Runs)
	}
	if after.StoreHits != before.StoreHits {
		t.Errorf("RunAll after Warm went back to the store: %+v -> %+v", before, after)
	}
}

// flakyStore fails every operation: the runner must degrade to computing
// and counting errors, never abort the sweep.
type flakyStore struct {
	mu    sync.Mutex
	loads int
	saves int
}

func (f *flakyStore) Load(core.Experiment, core.RunOptions) (core.Result, bool, error) {
	f.mu.Lock()
	f.loads++
	f.mu.Unlock()
	return core.Result{}, false, errors.New("flaky load")
}

func (f *flakyStore) Save(core.Experiment, core.RunOptions, core.Result) error {
	f.mu.Lock()
	f.saves++
	f.mu.Unlock()
	return errors.New("flaky save")
}

func TestRunnerToleratesStoreFailures(t *testing.T) {
	fs := &flakyStore{}
	r := core.NewRunnerWith(core.RunnerOptions{Store: fs})
	opts := core.RunOptions{SkipVerify: true}
	exps := core.Figure11Experiments([]int{8})
	results, err := r.RunAll(context.Background(), exps, opts)
	if err != nil {
		t.Fatalf("sweep must survive a failing store: %v", err)
	}
	for i, res := range results {
		if res.Cycles == 0 {
			t.Errorf("result %d empty despite store failure fallback", i)
		}
	}
	s := r.Snapshot()
	if int(s.Runs) != len(exps) {
		t.Errorf("Runs = %d, want %d", s.Runs, len(exps))
	}
	if int(s.StoreErrors) != fs.loads+fs.saves {
		t.Errorf("StoreErrors = %d, want %d (loads %d + saves %d)", s.StoreErrors, fs.loads+fs.saves, fs.loads, fs.saves)
	}
}

// TestStoreBackedDeterminismUnderConcurrency: a store-backed parallel
// sweep must stay byte-identical to the serial storeless run, with the
// race detector watching the store's concurrent Save/Load traffic.
func TestStoreBackedDeterminismUnderConcurrency(t *testing.T) {
	opts := core.RunOptions{SkipVerify: true}
	exps := fullSweep()
	serial, err := core.NewRunner(1).RunAll(context.Background(), exps, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stored, err := core.NewRunnerWith(core.RunnerOptions{Workers: 8, Store: st}).RunAll(context.Background(), exps, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], stored[i]) {
			t.Errorf("experiment %s: serial and store-backed results differ", exps[i])
		}
	}
	// And a second store-backed pass (all loads) matches too.
	reloaded, err := core.NewRunnerWith(core.RunnerOptions{Workers: 8, Store: st}).RunAll(context.Background(), exps, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], reloaded[i]) {
			t.Errorf("experiment %s: reloaded result differs:\nwant %+v\ngot  %+v", exps[i], serial[i], reloaded[i])
		}
	}
}

// Ensure the fingerprint is stable across cells that stringify alike: the
// key must separate fields, not just concatenate them.
func TestFingerprintKeyDistinct(t *testing.T) {
	a := core.FingerprintKey(core.Experiment{Target: "t", Workload: "w", N: 1}, core.RunOptions{})
	b := core.FingerprintKey(core.Experiment{Target: "t", Workload: "w", N: 11}, core.RunOptions{})
	if a == b {
		t.Error("distinct experiments share a fingerprint")
	}
	c := core.FingerprintKey(core.Experiment{Target: "t", Workload: "w", N: 1}, core.RunOptions{RecordTrace: true})
	if a == c {
		t.Error("distinct options share a fingerprint")
	}
	if want := "target=t;workload=w;pipeline=0;n=1;trace=false;skipverify=false;engine=0"; a != want {
		t.Errorf("fingerprint = %q, want %q", a, want)
	}
	// Engines are kept separate even though their results are identical —
	// a cross-engine comparison must never be served a shared cell.
	e := core.FingerprintKey(core.Experiment{Target: "t", Workload: "w", N: 1}, core.RunOptions{Engine: sim.EngineFast})
	if a == e {
		t.Error("distinct engines share a fingerprint")
	}
	// Pipeline.String() collapses unnamed values to "base"; the numeric key
	// must still separate them from Baseline.
	d := core.FingerprintKey(core.Experiment{Target: "t", Workload: "w", Pipeline: 7, N: 1}, core.RunOptions{})
	if a == d {
		t.Error("out-of-range pipeline aliases Baseline's fingerprint")
	}
}
