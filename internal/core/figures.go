package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/roofline"
	"configwall/internal/trace"
)

// This file regenerates every table and figure of the paper's evaluation
// (the per-experiment index lives in DESIGN.md).

// Geomean returns the geometric mean of xs. The geometric mean is
// undefined for non-positive inputs, and NaN or +Inf would silently poison
// the reported summary, so any x that is not a positive finite number
// yields 0 rather than propagating through reported speedups (math.Log(0)
// is -Inf, math.Log(-x) is NaN; NaN fails every comparison, so `x <= 0`
// alone would wave it through).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// speedupRatio divides opt by base, reporting 0 for a zero, NaN or
// infinite baseline instead of leaking NaN/Inf into rendered figures (a
// degenerate cell — e.g. a zero-op run — must not corrupt the geomean).
func speedupRatio(opt, base float64) float64 {
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return 0
	}
	return opt / base
}

// Figure10Sizes are the matrix sizes of the paper's Figure 10.
var Figure10Sizes = []int{32, 64, 128, 256, 512}

// Figure11Sizes are the matrix sizes of the paper's Figure 11.
var Figure11Sizes = []int{16, 32, 64, 128, 256, 512}

// Figure12Sizes are the matrix sizes plotted in the paper's Figure 12.
var Figure12Sizes = []int{64, 128, 256}

// Fig10Row is one size of Figure 10: Gemmini attainable performance (Eq. 3
// proxy from measured counters, the paper's §6.1 methodology) for the
// volatile-asm C baseline and the accfg flow.
type Fig10Row struct {
	N                int
	BaselinePerf     float64
	AccfgPerf        float64
	Speedup          float64
	BaselineCounters Result
	AccfgCounters    Result
}

// Figure10 runs the Gemmini weight-stationary tiled matmuls and applies the
// paper's attainable-performance methodology, on a fresh concurrent runner.
func Figure10(sizes []int, opts RunOptions) ([]Fig10Row, error) {
	return Figure10With(context.Background(), NewRunner(0), sizes, opts)
}

// Figure10Experiments lists the grid cells Figure 10 measures, in the
// order Figure10With consumes them; sharded precomputation partitions this
// list.
func Figure10Experiments(sizes []int) []Experiment {
	var exps []Experiment
	for _, n := range sizes {
		exps = append(exps,
			Experiment{Target: gemmini.Name, Workload: WorkloadMatmul, Pipeline: Baseline, N: n},
			Experiment{Target: gemmini.Name, Workload: WorkloadMatmul, Pipeline: AllOptimizations, N: n},
		)
	}
	return exps
}

// Figure10With is Figure10 on a caller-provided runner, so consecutive
// figures share the experiment cache (and its persistent store, if any).
func Figure10With(ctx context.Context, r *Runner, sizes []int, opts RunOptions) ([]Fig10Row, error) {
	results, err := r.RunAll(ctx, Figure10Experiments(sizes), opts)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for i, n := range sizes {
		base, opt := results[2*i], results[2*i+1]
		rows = append(rows, Fig10Row{
			N:                n,
			BaselinePerf:     base.AttainableEq3(),
			AccfgPerf:        opt.AttainableEq3(),
			Speedup:          speedupRatio(opt.AttainableEq3(), base.AttainableEq3()),
			BaselineCounters: base,
			AccfgCounters:    opt,
		})
	}
	return rows, nil
}

// Fig10Geomean returns the geometric-mean uplift across rows (the paper
// reports 11%).
func Fig10Geomean(rows []Fig10Row) float64 {
	var ss []float64
	for _, r := range rows {
		ss = append(ss, r.Speedup)
	}
	return Geomean(ss)
}

// RenderFigure10 formats the rows like the paper's bar chart data.
func RenderFigure10(rows []Fig10Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: Gemmini weight-stationary tiled matmul, attainable performance (Eq. 3 proxy)\n")
	sb.WriteString(fmt.Sprintf("%-6s %18s %18s %10s\n", "size", "C-style baseline", "accfg (ours)", "speedup"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-6d %12.0f ops/cy %12.0f ops/cy %9.2fx\n",
			r.N, r.BaselinePerf, r.AccfgPerf, r.Speedup))
	}
	sb.WriteString(fmt.Sprintf("geomean uplift: %.1f%%  (paper: 11%%; peak = 512 ops/cycle)\n",
		100*(Fig10Geomean(rows)-1)))
	return sb.String()
}

// Fig11Row is one size of Figure 11: OpenGeMM measured performance for the
// unoptimized accfg flow vs the fully optimized one.
type Fig11Row struct {
	N            int
	BasePerf     float64 // measured ops/cycle
	OptPerf      float64
	Speedup      float64
	BaseCounters Result
	OptCounters  Result
}

// Figure11 runs the OpenGeMM tiled matmuls and measures cycle-accurate
// performance (the paper's §6.2 methodology), on a fresh concurrent runner.
func Figure11(sizes []int, opts RunOptions) ([]Fig11Row, error) {
	return Figure11With(context.Background(), NewRunner(0), sizes, opts)
}

// Figure11Experiments lists the grid cells Figure 11 measures, in the
// order Figure11With consumes them.
func Figure11Experiments(sizes []int) []Experiment {
	var exps []Experiment
	for _, n := range sizes {
		exps = append(exps,
			Experiment{Target: opengemm.Name, Workload: WorkloadMatmul, Pipeline: Baseline, N: n},
			Experiment{Target: opengemm.Name, Workload: WorkloadMatmul, Pipeline: AllOptimizations, N: n},
		)
	}
	return exps
}

// Figure11With is Figure11 on a caller-provided runner, so consecutive
// figures share the experiment cache (and its persistent store, if any).
func Figure11With(ctx context.Context, r *Runner, sizes []int, opts RunOptions) ([]Fig11Row, error) {
	results, err := r.RunAll(ctx, Figure11Experiments(sizes), opts)
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for i, n := range sizes {
		base, opt := results[2*i], results[2*i+1]
		rows = append(rows, Fig11Row{
			N:            n,
			BasePerf:     base.OpsPerCycle(),
			OptPerf:      opt.OpsPerCycle(),
			Speedup:      speedupRatio(opt.OpsPerCycle(), base.OpsPerCycle()),
			BaseCounters: base,
			OptCounters:  opt,
		})
	}
	return rows, nil
}

// Fig11Geomean returns the geometric-mean speedup (the paper reports 2x).
func Fig11Geomean(rows []Fig11Row) float64 {
	var ss []float64
	for _, r := range rows {
		ss = append(ss, r.Speedup)
	}
	return Geomean(ss)
}

// RenderFigure11 formats the rows like the paper's bar chart data.
func RenderFigure11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: OpenGeMM tiled matmul, measured performance (cycle-accurate co-simulation)\n")
	sb.WriteString(fmt.Sprintf("%-6s %15s %18s %10s\n", "size", "base (MLIR)", "with optimizations", "speedup"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-6d %9.0f ops/cy %12.0f ops/cy %9.2fx\n",
			r.N, r.BasePerf, r.OptPerf, r.Speedup))
	}
	sb.WriteString(fmt.Sprintf("geomean speedup: %.2fx  (paper: 2x; peak = 1024 ops/cycle)\n", Fig11Geomean(rows)))
	return sb.String()
}

// Fig12Data is the roofline scatter of Figure 12: per size and pipeline
// variant, the measured (I_OC, performance) point, plus the analytical
// sequential and concurrent rooflines.
type Fig12Data struct {
	Model  roofline.Model
	Points []roofline.Series // one series per pipeline variant
}

// Figure12 measures OpenGeMM under all four pipeline variants and places
// the results on the configuration roofline, on a fresh concurrent runner.
func Figure12(sizes []int, opts RunOptions) (Fig12Data, error) {
	return Figure12With(context.Background(), NewRunner(0), sizes, opts)
}

// Figure12Experiments lists the grid cells Figure 12 measures (every
// pipeline variant at every size), in the order Figure12With consumes them.
func Figure12Experiments(sizes []int) []Experiment {
	return Sweep([]string{opengemm.Name}, []string{WorkloadMatmul}, Pipelines, sizes)
}

// Figure12With is Figure12 on a caller-provided runner, so consecutive
// figures share the experiment cache (Figure 11 and Figure 12 share their
// base/all cells at common sizes).
func Figure12With(ctx context.Context, r *Runner, sizes []int, opts RunOptions) (Fig12Data, error) {
	t, err := LookupTarget(opengemm.Name)
	if err != nil {
		return Fig12Data{}, err
	}
	data := Fig12Data{Model: t.RooflineModel()}
	results, err := r.RunAll(ctx, Figure12Experiments(sizes), opts)
	if err != nil {
		return data, err
	}
	for pi, p := range Pipelines {
		s := roofline.Series{Name: p.String()}
		for si, n := range sizes {
			res := results[pi*len(sizes)+si]
			s.Points = append(s.Points, roofline.Point{
				Label: fmt.Sprintf("n=%d", n),
				IOC:   res.MeasuredIOC(),
				Perf:  res.OpsPerCycle(),
			})
		}
		data.Points = append(data.Points, s)
	}
	return data, nil
}

// RenderFigure12 formats the scatter data and an ASCII roofline plot.
func RenderFigure12(d Fig12Data) string {
	var sb strings.Builder
	sb.WriteString("Figure 12: OpenGeMM measurements on the configuration roofline\n")
	sb.WriteString(d.Model.String() + "\n\n")
	sb.WriteString(fmt.Sprintf("%-10s %-8s %12s %14s\n", "pipeline", "size", "I_OC (ops/B)", "P (ops/cycle)"))
	for _, s := range d.Points {
		for _, p := range s.Points {
			sb.WriteString(fmt.Sprintf("%-10s %-8s %12.1f %14.1f\n", s.Name, p.Label, p.IOC, p.Perf))
		}
	}
	sb.WriteString("\n")
	plot := roofline.NewAsciiPlot(72, 18)
	plot.XMin, plot.XMax = 16, 1<<14
	plot.YMin, plot.YMax = 16, 2048
	plot.AddCurve(d.Model.CurveSequential(16, 1<<14, 72))
	plot.AddCurve(d.Model.CurveConcurrent(16, 1<<14, 72))
	for _, s := range d.Points {
		plot.AddPoints(s)
	}
	sb.WriteString(plot.Render())
	return sb.String()
}

// Section46 reproduces the paper's §4.6 worked example analytically: the
// Gemmini output-stationary 64x64x64 matmul with the paper's traced
// instruction counts.
type Section46 struct {
	Ops            float64
	PeakOps        float64
	BWConfigRaw    float64
	IOC            float64
	UtilRaw        float64 // paper: 41.49 %
	BWConfigEff    float64
	UtilEff        float64 // paper: 26.78 %
	ConfigInstrs   int
	CalcInstrs     int
	CyclesPerInstr float64
	BytesPerInstr  float64
	ConfigBytes    float64
}

// Section46Example evaluates the worked example with the paper's inputs:
// 160 setup instructions, 775 parameter-calculation instructions, 16 bytes
// per RoCC instruction, 3 cycles/instruction, 2*64^3 ops.
func Section46Example() Section46 {
	e := Section46{
		Ops:            2 * 64 * 64 * 64,
		PeakOps:        512,
		ConfigInstrs:   160,
		CalcInstrs:     775,
		CyclesPerInstr: 3,
		BytesPerInstr:  16,
	}
	e.ConfigBytes = float64(e.ConfigInstrs) * e.BytesPerInstr
	// BW_Config: one custom instruction plus two register-setup
	// instructions move 16 bytes (paper: 16 / (3*3) ~= 1.77 B/cycle).
	e.BWConfigRaw = e.BytesPerInstr / (3 * e.CyclesPerInstr)
	e.IOC = e.Ops / e.ConfigBytes
	e.UtilRaw = roofline.Sequential(e.PeakOps, e.BWConfigRaw, e.IOC) / e.PeakOps
	// Effective bandwidth: all 935 instructions pay for the same bytes
	// (paper: ~0.913 B/cycle).
	e.BWConfigEff = e.ConfigBytes / (float64(e.ConfigInstrs+e.CalcInstrs) * e.CyclesPerInstr)
	e.UtilEff = roofline.Sequential(e.PeakOps, e.BWConfigEff, e.IOC) / e.PeakOps
	return e
}

// RenderSection46 formats the worked example against the paper's numbers.
func RenderSection46() string {
	e := Section46Example()
	var sb strings.Builder
	sb.WriteString("Section 4.6 worked example: Gemmini output-stationary 64x64x64 matmul\n")
	fmt.Fprintf(&sb, "ops                 = %.0f\n", e.Ops)
	fmt.Fprintf(&sb, "config bytes        = %.0f (%d RoCC instructions x %.0f B)\n", e.ConfigBytes, e.ConfigInstrs, e.BytesPerInstr)
	fmt.Fprintf(&sb, "BW_Config           = %.3f B/cycle   (paper: ~1.77)\n", e.BWConfigRaw)
	fmt.Fprintf(&sb, "I_OC                = %.1f ops/B      (paper: ~205.19 — includes a 525,288-vs-524,288 slip)\n", e.IOC)
	fmt.Fprintf(&sb, "attainable (Eq. 3)  = %.2f%% of peak  (paper: 41.49%%)\n", 100*e.UtilRaw)
	fmt.Fprintf(&sb, "BW_Config,Eff       = %.3f B/cycle   (paper: ~0.913)\n", e.BWConfigEff)
	fmt.Fprintf(&sb, "attainable w/ eff.  = %.2f%% of peak  (paper: 26.78%%)\n", 100*e.UtilEff)
	return sb.String()
}

// RenderFigure4 samples the configuration roofline curves of Figure 4 for a
// generic accelerator model.
func RenderFigure4(m roofline.Model) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: configuration roofline (sequential vs concurrent)\n")
	sb.WriteString(m.String() + "\n")
	plot := roofline.NewAsciiPlot(72, 18)
	plot.XMin, plot.XMax = 1, 1<<14
	plot.YMin, plot.YMax = 1, 2*m.PeakOps
	plot.AddCurve(m.CurveSequential(1, 1<<14, 72))
	plot.AddCurve(m.CurveConcurrent(1, 1<<14, 72))
	sb.WriteString(plot.Render())
	fmt.Fprintf(&sb, "knee point at I_OC = %.1f ops/B divides the configuration-bound (left)\n", m.Knee())
	sb.WriteString("and compute-bound (right) regions.\n")
	return sb.String()
}

// RenderFigure5 samples the combined roofsurface of Figure 5 as a CSV-like
// grid (iOperational, iOC, attainable).
func RenderFigure5(m roofline.Model, n int) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: combined roofsurface samples (I_Operational, I_OC, P_attainable)\n")
	for _, row := range m.Surface(0.25, 1024, 0.25, 16384, n) {
		fmt.Fprintf(&sb, "%10.3f, %10.3f, %10.2f\n", row[0], row[1], row[2])
	}
	return sb.String()
}

// RenderTimelines reproduces the Figure 7 intuition: the same workload's
// timeline under the baseline and fully optimized pipelines.
func RenderTimelines(t Target, n int, width int) (string, error) {
	var sb strings.Builder
	for _, p := range []Pipeline{Baseline, AllOptimizations} {
		r, err := RunTiledMatmul(t, p, n, RunOptions{RecordTrace: true})
		if err != nil {
			return "", err
		}
		sum := trace.Summarize(r.Trace)
		fmt.Fprintf(&sb, "--- %s / %s / n=%d  (%d cycles, %.1f ops/cycle) ---\n",
			t.Name, p, n, r.Cycles, r.OpsPerCycle())
		sb.WriteString(trace.Timeline(r.Trace, 0, r.Cycles, width))
		fmt.Fprintf(&sb, "host exec %d, host config %d, host stall %d, accel busy %d, overlap %d cycles\n\n",
			sum.HostExec, sum.HostConfig, sum.HostStall, sum.AccelBusy, trace.OverlapCycles(r.Trace))
	}
	return sb.String(), nil
}
