package core

// Search-space discovery: which sweep sizes a (target, workload) pair can
// actually build. Configuration-search clients (cmd/cwtune) discover the
// (target x workload x pipeline x size) space from the serving daemon
// instead of hardcoding tiling rules, and the daemon answers from here.

import "configwall/internal/workload"

// DefaultSizeGrid is the probe grid for size-feasibility discovery: a
// coarse sweep from the smallest tile any built-in target accepts up to
// the serving daemon's default size cap, dense at the small end where
// tiling divisibility rules differ between targets. Servers filter it by
// their own -max-n cap before probing.
var DefaultSizeGrid = []int{8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}

// SupportedSizes filters candidates down to the sizes workload w can build
// for target t, in input order. Feasibility is decided the cheap way when
// possible — the target's closed-form MatmulTiling on a known matmul-family
// shape, no IR built — and by attempting the real build otherwise, so
// externally registered workloads and targets participate without any
// registry change.
func SupportedSizes(t Target, w Workload, candidates []int) []int {
	var out []int
	for _, n := range candidates {
		if n < 1 {
			continue
		}
		if sizeFeasible(t, w, n) {
			out = append(out, n)
		}
	}
	return out
}

// sizeFeasible reports whether w builds for t at size n.
func sizeFeasible(t Target, w Workload, n int) bool {
	if shape, ok := workload.ShapeByName(w.Name); ok && t.MatmulTiling != nil {
		mDim, kDim, nDim := shape.Dims(n)
		_, err := t.MatmulTiling(mDim, kDim, nDim)
		return err == nil
	}
	_, err := w.Build(t, n)
	return err == nil
}
