package core_test

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"configwall/internal/core"
)

// fullSweep is a small but complete cross of both targets, all pipelines
// and several sizes — the shape of a full-figure regeneration.
func fullSweep() []core.Experiment {
	var exps []core.Experiment
	exps = append(exps, core.Sweep(
		[]string{"opengemm"},
		[]string{core.WorkloadMatmul},
		core.Pipelines,
		[]int{8, 16, 24},
	)...)
	exps = append(exps, core.Sweep(
		[]string{"gemmini"},
		[]string{core.WorkloadMatmul},
		core.Pipelines,
		[]int{16, 32},
	)...)
	return exps
}

// TestRunnerDeterminism is the runner's central contract: a concurrent
// full-figure sweep must produce results identical to a serial run, cell
// for cell, in input order.
func TestRunnerDeterminism(t *testing.T) {
	exps := fullSweep()
	serial, err := core.NewRunner(1).RunAll(context.Background(), exps, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.NewRunner(8).RunAll(context.Background(), exps, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("experiment %s: serial and parallel results differ:\nserial:   %+v\nparallel: %+v",
				exps[i], serial[i], parallel[i])
		}
	}
}

// TestFigureRenderingDeterminism asserts the acceptance criterion end to
// end: every figure rendered from a concurrent runner is byte-identical to
// the serial rendering.
func TestFigureRenderingDeterminism(t *testing.T) {
	sizes := []int{16, 32}
	opts := core.RunOptions{SkipVerify: true}

	r10s, err := core.Figure10With(context.Background(), core.NewRunner(1), sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	r10p, err := core.Figure10With(context.Background(), core.NewRunner(8), sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := core.RenderFigure10(r10s), core.RenderFigure10(r10p); a != b {
		t.Errorf("Figure 10 differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}

	r11s, err := core.Figure11With(context.Background(), core.NewRunner(1), sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	r11p, err := core.Figure11With(context.Background(), core.NewRunner(8), sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := core.RenderFigure11(r11s), core.RenderFigure11(r11p); a != b {
		t.Errorf("Figure 11 differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}

	d12s, err := core.Figure12With(context.Background(), core.NewRunner(1), sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	d12p, err := core.Figure12With(context.Background(), core.NewRunner(8), sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := core.RenderFigure12(d12s), core.RenderFigure12(d12p); a != b {
		t.Errorf("Figure 12 differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
}

// TestRunnerCacheReuse asserts the memoization contract: a repeated cell is
// served from the cache (the stored Result shares its PassStats backing
// array) and the cache grows by distinct cells only.
func TestRunnerCacheReuse(t *testing.T) {
	r := core.NewRunner(2)
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 16}
	first, err := r.Run(context.Background(), e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(context.Background(), e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.PassStats) == 0 || &first.PassStats[0] != &second.PassStats[0] {
		t.Error("repeated experiment was recompiled instead of served from the cache")
	}
	if got := r.CacheSize(); got != 1 {
		t.Errorf("cache size = %d, want 1", got)
	}
	// Different options key different cells.
	if _, err := r.Run(context.Background(), e, core.RunOptions{SkipVerify: true}); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 2 {
		t.Errorf("cache size = %d, want 2 after options change", got)
	}
}

// TestRunnerDuplicateCellsInSweep: duplicate cells in one RunAll must
// all be answered, from a single execution.
func TestRunnerDuplicateCellsInSweep(t *testing.T) {
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	r := core.NewRunner(4)
	results, err := r.RunAll(context.Background(), []core.Experiment{e, e, e, e}, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 1 {
		t.Errorf("cache size = %d, want 1 (duplicates collapse)", got)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("duplicate cell %d differs from cell 0", i)
		}
	}
}

// TestRunAllFirstErrorDeterministic: with several failing cells, RunAll
// reports the lowest-indexed failure regardless of scheduling.
func TestRunAllFirstErrorDeterministic(t *testing.T) {
	exps := []core.Experiment{
		{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8},
		{Target: "gemmini", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 20},  // invalid: not a multiple of 16
		{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 12}, // invalid: not a multiple of 8
	}
	for trial := 0; trial < 3; trial++ {
		_, err := core.NewRunner(8).RunAll(context.Background(), exps, core.RunOptions{})
		if err == nil {
			t.Fatal("expected error from invalid sizes")
		}
		if !strings.Contains(err.Error(), "gemmini/matmul/base/20") {
			t.Errorf("error %q does not name the lowest-indexed failing experiment", err)
		}
	}
}

// TestNewWorkloadsVerify: the registered rectangular and matvec-panel
// workloads compile, simulate and verify on both built-in targets, with the
// expected operation counts — the registry acceptance check that workloads
// beyond the paper's square matmul plug in without engine changes.
func TestNewWorkloadsVerify(t *testing.T) {
	cases := []struct {
		target   string
		workload string
		n        int
		wantOps  uint64
	}{
		// rectmm: M=n, K=2n, N=n/2 -> ops = 2*M*K*N = 2n^3.
		{"gemmini", core.WorkloadRectMM, 32, 2 * 32 * 32 * 32},
		{"opengemm", core.WorkloadRectMM, 16, 2 * 16 * 16 * 16},
		// matvec panel: M=n, K=n, N=16 -> ops = 2*n*n*16.
		{"gemmini", core.WorkloadMatvec, 32, 2 * 32 * 32 * 16},
		{"opengemm", core.WorkloadMatvec, 16, 2 * 16 * 16 * 16},
	}
	for _, tc := range cases {
		for _, p := range core.Pipelines {
			e := core.Experiment{Target: tc.target, Workload: tc.workload, Pipeline: p, N: tc.n}
			t.Run(e.String(), func(t *testing.T) {
				res, err := core.RunExperiment(e, core.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Error("result not verified")
				}
				if res.AccelOps != tc.wantOps {
					t.Errorf("AccelOps = %d, want %d", res.AccelOps, tc.wantOps)
				}
			})
		}
	}
}

// TestParallelEach: the shared worker-pool primitive visits every index
// exactly once regardless of worker bound, including the degenerate cases.
func TestParallelEach(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		const n = 100
		var visits [n]int32
		core.ParallelEach(context.Background(), n, workers, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
	// n <= 0 must not call fn or hang.
	core.ParallelEach(context.Background(), 0, 4, func(int) { t.Fatal("fn called for n=0") })
	core.ParallelEach(context.Background(), -3, 4, func(int) { t.Fatal("fn called for n<0") })
}

// TestRunCancelledContext asserts a request whose context is already
// cancelled never computes (or claims a cell another request would then
// find poisoned).
func TestRunCancelledContext(t *testing.T) {
	r := core.NewRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	if _, err := r.Run(ctx, e, core.RunOptions{}); err == nil {
		t.Fatal("Run with a cancelled context must fail")
	}
	if s := r.Snapshot(); s.Runs != 0 {
		t.Errorf("cancelled request ran %d simulations, want 0", s.Runs)
	}
	// The cell must still be computable by a live request.
	if _, err := r.Run(context.Background(), e, core.RunOptions{}); err != nil {
		t.Fatalf("cell poisoned by the cancelled request: %v", err)
	}
}

// blockingStore parks every Load until released, making "cell claimed and
// in flight" an observable, controllable state for cancellation tests.
type blockingStore struct {
	entered chan struct{}
	release chan struct{}
}

func (s *blockingStore) Load(core.Experiment, core.RunOptions) (core.Result, bool, error) {
	s.entered <- struct{}{}
	<-s.release
	return core.Result{}, false, nil
}

func (s *blockingStore) Save(core.Experiment, core.RunOptions, core.Result) error { return nil }

// TestRunWaiterCancellation: a waiter on an in-flight cell detaches when
// its context cancels, while the computation completes and serves later
// requests from cache.
func TestRunWaiterCancellation(t *testing.T) {
	st := &blockingStore{entered: make(chan struct{}, 1), release: make(chan struct{})}
	r := core.NewRunnerWith(core.RunnerOptions{Workers: 4, Store: st})
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}

	winnerDone := make(chan error, 1)
	go func() {
		_, err := r.Run(context.Background(), e, core.RunOptions{})
		winnerDone <- err
	}()
	<-st.entered // the winner has claimed the cell and is inside compute

	// The cell is provably in flight and blocked; the waiter must give up
	// at its deadline rather than ride out the computation.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := r.Run(ctx, e, core.RunOptions{}); err == nil {
		t.Error("waiter returned success while the cell was still in flight")
	}

	close(st.release)
	if err := <-winnerDone; err != nil {
		t.Fatalf("winner: %v", err)
	}
	if _, err := r.Run(context.Background(), e, core.RunOptions{}); err != nil {
		t.Fatalf("post-completion request: %v", err)
	}
	if s := r.Snapshot(); s.Runs != 1 {
		t.Errorf("Runs = %d, want 1 (waiter cancellation must not duplicate work)", s.Runs)
	}
}

// TestPreload publishes a synthetic result into the cell map and asserts
// later requests are served from it without computing.
func TestPreload(t *testing.T) {
	r := core.NewRunner(2)
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	opts := core.RunOptions{}
	synthetic := core.Result{Target: e.Target, Workload: e.Workload, N: e.N}
	if !r.Preload(e, opts, synthetic) {
		t.Fatal("Preload of an empty runner must claim the cell")
	}
	if r.Preload(e, opts, core.Result{}) {
		t.Error("second Preload of the same cell must report false")
	}
	got, err := r.Run(context.Background(), e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, synthetic) {
		t.Error("Run did not serve the preloaded result")
	}
	if s := r.Snapshot(); s.Runs != 0 {
		t.Errorf("preloaded cell still ran %d simulations", s.Runs)
	}
}

// TestParallelEachCancellation asserts a pre-cancelled context dispatches
// nothing and a mid-run cancellation stops dispatch early.
func TestParallelEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := core.ParallelEach(ctx, 100, 4, func(int) { t.Error("fn called under a pre-cancelled context") }); err == nil {
		t.Error("ParallelEach must report the context error")
	}

	var ran atomic.Int64
	ctx2, cancel2 := context.WithCancel(context.Background())
	err := core.ParallelEach(ctx2, 1000, 1, func(i int) {
		if i == 0 {
			cancel2()
		}
		ran.Add(1)
	})
	if err == nil {
		t.Error("mid-run cancellation must surface the context error")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation did not stop dispatch (all 1000 indices ran)")
	}

	// RunAll under a cancelled context returns the context error.
	r := core.NewRunner(2)
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := r.RunAll(cctx, fullSweep(), core.RunOptions{}); err == nil {
		t.Error("RunAll with a cancelled context must fail")
	}
	if s := r.Snapshot(); s.Runs != 0 {
		t.Errorf("cancelled RunAll still ran %d simulations", s.Runs)
	}
}

// TestPeek: the non-blocking cached-cell lookup must hit only completed,
// successful cells — absent and failed cells are misses that leave the
// caller on the Run path — and a hit must count as a memory hit like Run.
func TestPeek(t *testing.T) {
	r := core.NewRunner(1)
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	opts := core.RunOptions{SkipVerify: true}

	if _, ok := r.Peek(e, opts); ok {
		t.Fatal("Peek hit on a cold runner")
	}
	want, err := r.Run(context.Background(), e, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Snapshot().MemHits
	got, ok := r.Peek(e, opts)
	if !ok {
		t.Fatal("Peek missed a completed cell")
	}
	if got.Counters != want.Counters {
		t.Errorf("Peek counters differ from Run: %+v vs %+v", got.Counters, want.Counters)
	}
	if after := r.Snapshot().MemHits; after != before+1 {
		t.Errorf("Peek hit did not count as a memory hit: %d -> %d", before, after)
	}
	// Different options key a different cell: no false sharing.
	if _, ok := r.Peek(e, core.RunOptions{SkipVerify: true, RecordTrace: true}); ok {
		t.Error("Peek hit across a different RunOptions key")
	}
	// A failed cell is a Peek miss; Run still serves the cached error.
	bad := core.Experiment{Target: "no-such-target", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}
	if _, err := r.Run(context.Background(), bad, opts); err == nil {
		t.Fatal("expected error for unknown target")
	}
	if _, ok := r.Peek(bad, opts); ok {
		t.Error("Peek hit an errored cell")
	}
}
