package core

// The target/workload registry: accelerator platforms and kernel families
// plug in by name, so new experiment cells — a third accelerator, a new
// workload shape — never require editing the engine (engine.go) or the
// runner (runner.go). The built-in Gemmini/OpenGeMM targets and the
// matmul-family workloads register themselves at package init; external
// code (e.g. examples/customaccel) registers its own at startup.

import (
	"fmt"
	"sort"
	"sync"

	"configwall/internal/ir"
	"configwall/internal/mem"
	"configwall/internal/workload"
)

// Buffer is one function-argument buffer of a workload instance. The engine
// places buffers contiguously in simulated memory, in order, and passes
// each base address in the next argument register.
type Buffer struct {
	// Bytes is the buffer size; it also reserves the address range.
	Bytes uint64
	// Init fills the buffer's initial contents (nil leaves it zeroed).
	Init func(m *mem.Memory, base uint64)
	// Verify checks the buffer's final contents against the golden model
	// (nil means the buffer is not checked).
	Verify func(m *mem.Memory, base uint64) error
}

// Instance is one concrete (workload, target, size) build: the accfg-level
// IR module plus the execution plan the engine needs to run and verify it.
type Instance struct {
	// Module is the workload IR; its "main" function takes one argument
	// per buffer.
	Module *ir.Module
	// Buffers lists the function-argument buffers in signature order.
	Buffers []Buffer
}

// Workload is a kernel family parameterized by the sweep size n.
type Workload struct {
	// Name keys the workload in the registry and in Experiment.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Build constructs the workload instance for a target at size n. It
	// must return an error for targets it has no builder for.
	Build func(t Target, n int) (Instance, error)
}

var registry = struct {
	sync.RWMutex
	targets   map[string]Target
	workloads map[string]Workload
}{
	targets:   map[string]Target{},
	workloads: map[string]Workload{},
}

// RegisterTarget adds a target platform to the registry. Registering a
// duplicate or unnamed target is an error.
func RegisterTarget(t Target) error {
	if t.Name == "" {
		return fmt.Errorf("registry: cannot register target with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.targets[t.Name]; dup {
		return fmt.Errorf("registry: target %q already registered", t.Name)
	}
	registry.targets[t.Name] = t
	return nil
}

// MustRegisterTarget is RegisterTarget, panicking on error (for init-time
// registration).
func MustRegisterTarget(t Target) {
	if err := RegisterTarget(t); err != nil {
		panic(err)
	}
}

// LookupTarget returns the registered target with the given name; the error
// for unknown names lists the valid ones.
func LookupTarget(name string) (Target, error) {
	registry.RLock()
	defer registry.RUnlock()
	t, ok := registry.targets[name]
	if !ok {
		return Target{}, fmt.Errorf("registry: unknown target %q (registered: %v)", name, targetNamesLocked())
	}
	return t, nil
}

// TargetNames returns the registered target names, sorted.
func TargetNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	return targetNamesLocked()
}

func targetNamesLocked() []string {
	names := make([]string, 0, len(registry.targets))
	for n := range registry.targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterWorkload adds a workload to the registry. Registering a
// duplicate, unnamed, or builderless workload is an error.
func RegisterWorkload(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("registry: cannot register workload with empty name")
	}
	if w.Build == nil {
		return fmt.Errorf("registry: workload %q has no Build function", w.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.workloads[w.Name]; dup {
		return fmt.Errorf("registry: workload %q already registered", w.Name)
	}
	registry.workloads[w.Name] = w
	return nil
}

// MustRegisterWorkload is RegisterWorkload, panicking on error (for
// init-time registration).
func MustRegisterWorkload(w Workload) {
	if err := RegisterWorkload(w); err != nil {
		panic(err)
	}
}

// LookupWorkload returns the registered workload with the given name; the
// error for unknown names lists the valid ones.
func LookupWorkload(name string) (Workload, error) {
	registry.RLock()
	defer registry.RUnlock()
	w, ok := registry.workloads[name]
	if !ok {
		return Workload{}, fmt.Errorf("registry: unknown workload %q (registered: %v)", name, workloadNamesLocked())
	}
	return w, nil
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	return workloadNamesLocked()
}

func workloadNamesLocked() []string {
	names := make([]string, 0, len(registry.workloads))
	for n := range registry.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkloadMatmul is the paper's square tiled matmul; WorkloadRectMM and
// WorkloadMatvec are the rectangular and panel variants.
const (
	WorkloadMatmul = workload.ShapeMatmul
	WorkloadRectMM = workload.ShapeRectMM
	WorkloadMatvec = workload.ShapeMatvec
)

func init() {
	MustRegisterTarget(GemminiTarget())
	MustRegisterTarget(OpenGeMMTarget())
	for _, shape := range workload.Shapes {
		MustRegisterWorkload(matmulWorkload(shape))
	}
}

// matmulWorkload wraps one matmul-family shape as a registered workload,
// dispatching to the per-target IR builder.
func matmulWorkload(shape workload.Shape) Workload {
	return Workload{
		Name:        shape.Name,
		Description: shape.Description,
		Build: func(t Target, n int) (Instance, error) {
			mDim, kDim, nDim := shape.Dims(n)
			return matmulInstance(t, shape.Name, mDim, kDim, nDim)
		},
	}
}

// matmulInstance builds the M x K x N matmul instance for a target: the IR
// module, deterministic input matrices, and golden-model verification of C.
// Any target that provides the MatmulMKN hook participates — the built-ins
// and externally registered accelerators alike.
func matmulInstance(t Target, shapeName string, mDim, kDim, nDim int) (Instance, error) {
	if t.MatmulMKN == nil {
		return Instance{}, fmt.Errorf("workload %s: target %q provides no MatmulMKN builder", shapeName, t.Name)
	}
	m, err := t.MatmulMKN(mDim, kDim, nDim)
	if err != nil {
		return Instance{}, err
	}

	a := make([]int8, mDim*kDim)
	b := make([]int8, kDim*nDim)
	workload.Fill(a, 1)
	workload.Fill(b, 2)
	outBytes := t.OutputBytes

	return Instance{
		Module: m,
		Buffers: []Buffer{
			int8InputBuffer(a),
			int8InputBuffer(b),
			{
				Bytes: uint64(mDim * nDim * outBytes),
				Verify: func(mm *mem.Memory, base uint64) error {
					golden := workload.MatmulInt8MKN(a, b, mDim, kDim, nDim)
					return verifyMatmulOutput(mm, base, golden, outBytes)
				},
			},
		},
	}, nil
}

// int8InputBuffer wraps a pre-filled int8 slice as an input buffer.
func int8InputBuffer(data []int8) Buffer {
	return Buffer{
		Bytes: uint64(len(data)),
		Init: func(mm *mem.Memory, base uint64) {
			for i, v := range data {
				mm.Write8(base+uint64(i), uint8(v))
			}
		},
	}
}

// verifyMatmulOutput compares the simulated C buffer against the golden
// int32 product, at the target's output width (int8 saturated or int32).
func verifyMatmulOutput(memory *mem.Memory, cBase uint64, golden []int32, outBytes int) error {
	for i, want := range golden {
		switch outBytes {
		case 1:
			got := int8(memory.Read8(cBase + uint64(i)))
			if got != workload.SaturateInt8(want) {
				return fmt.Errorf("C[%d] = %d, want %d (saturated from %d)", i, got, workload.SaturateInt8(want), want)
			}
		case 4:
			got := int32(memory.Read32(cBase + uint64(4*i)))
			if got != want {
				return fmt.Errorf("C[%d] = %d, want %d", i, got, want)
			}
		default:
			return fmt.Errorf("unsupported output width %d", outBytes)
		}
	}
	return nil
}
