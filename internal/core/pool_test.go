package core_test

// Tests for the pooled-execution-context discipline: Run recycles the
// 64 MiB memory arena, the machine and the trace buffer across calls
// (reset-not-reallocate), so the invariants are (a) a run on a reused
// context is bit-identical to a run on a fresh one, and (b) a published
// Result is immune to later runs reusing the pooled state.

import (
	"reflect"
	"testing"

	"configwall/internal/core"
	"configwall/internal/sim"
)

// TestPooledContextDeterminism: back-to-back runs of the same cell through
// the context pool must produce identical counters and traces — sequential
// runs draw the recycled context, so any dirty state surviving
// Memory.Reset, register clearing or trace truncation shows up as a
// mismatch here.
func TestPooledContextDeterminism(t *testing.T) {
	target := core.OpenGeMMTarget()
	opts := core.RunOptions{RecordTrace: true, SkipVerify: true}
	first, err := core.RunTiledMatmul(target, core.AllOptimizations, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave a different, bigger cell so the pooled arena and trace
	// buffer carry another run's footprint before the replay.
	if _, err := core.RunTiledMatmul(target, core.Baseline, 64, opts); err != nil {
		t.Fatal(err)
	}
	second, err := core.RunTiledMatmul(target, core.AllOptimizations, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters != second.Counters {
		t.Errorf("counters differ across pooled reuse:\nfirst:  %+v\nsecond: %+v", first.Counters, second.Counters)
	}
	if !reflect.DeepEqual(first.Trace, second.Trace) {
		t.Errorf("traces differ across pooled reuse: first %d segments, second %d", len(first.Trace), len(second.Trace))
	}
}

// TestResultTraceImmuneToPoolReuse: Results are cached and shared, so the
// trace a Result carries must be an owned copy — later runs recycling the
// pooled trace buffer must not mutate it (cross-cell trace leakage).
func TestResultTraceImmuneToPoolReuse(t *testing.T) {
	target := core.OpenGeMMTarget()
	opts := core.RunOptions{RecordTrace: true, SkipVerify: true}
	res, err := core.RunTiledMatmul(target, core.OverlapOnly, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced run recorded no segments")
	}
	snapshot := append([]sim.Segment(nil), res.Trace...)
	// Hammer the pool with other traced cells that would overwrite a
	// shared buffer.
	for _, n := range []int{16, 48, 64} {
		if _, err := core.RunTiledMatmul(target, core.Baseline, n, opts); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(snapshot, res.Trace) {
		t.Error("published Result.Trace changed after later pooled runs (buffer aliasing)")
	}
}
