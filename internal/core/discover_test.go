package core_test

import (
	"reflect"
	"testing"

	"configwall/internal/core"
)

// TestSupportedSizes pins the feasibility probe against the built-in
// tiling rules: gemmini matmul needs multiples of 16, gemmini rectmm
// multiples of 32 (its K dimension is 2n and M is n/2), opengemm matmul
// multiples of 8.
func TestSupportedSizes(t *testing.T) {
	candidates := []int{0, 8, 16, 24, 32, 48, 64}
	cases := []struct {
		target, workload string
		want             []int
	}{
		{"gemmini", core.WorkloadMatmul, []int{16, 32, 48, 64}},
		{"gemmini", core.WorkloadRectMM, []int{32, 64}},
		{"opengemm", core.WorkloadMatmul, []int{8, 16, 24, 32, 48, 64}},
	}
	for _, tc := range cases {
		tgt, err := core.LookupTarget(tc.target)
		if err != nil {
			t.Fatal(err)
		}
		w, err := core.LookupWorkload(tc.workload)
		if err != nil {
			t.Fatal(err)
		}
		got := core.SupportedSizes(tgt, w, candidates)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SupportedSizes(%s, %s) = %v, want %v", tc.target, tc.workload, got, tc.want)
		}
	}
}

// TestSupportedSizesBuildProbeAgreement: the closed-form tiling path and
// the real Build probe must agree on feasibility for the built-ins — the
// registry endpoint answers from the cheap path, the daemon executes the
// expensive one.
func TestSupportedSizesBuildProbeAgreement(t *testing.T) {
	for _, tName := range core.TargetNames() {
		tgt, err := core.LookupTarget(tName)
		if err != nil {
			t.Fatal(err)
		}
		for _, wName := range core.WorkloadNames() {
			w, err := core.LookupWorkload(wName)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{8, 16, 24, 32, 64} {
				cheap := len(core.SupportedSizes(tgt, w, []int{n})) == 1
				_, buildErr := w.Build(tgt, n)
				if cheap != (buildErr == nil) {
					t.Errorf("%s/%s n=%d: tiling feasibility %v but Build err = %v", tName, wName, n, cheap, buildErr)
				}
			}
		}
	}
}
