package store_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"configwall/internal/core"
	"configwall/internal/sim"
	"configwall/internal/store"
)

var exp = core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 16}

func openStore(t *testing.T) *store.DiskStore {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryPath finds the single stored entry file.
func entryPath(t *testing.T, s *store.DiskStore) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no stored entry found (err=%v)", err)
	}
	return found
}

// TestRoundTripFidelity stores a real experiment result — including its
// trace — and checks the loaded copy is indistinguishable from the fresh
// one.
func TestRoundTripFidelity(t *testing.T) {
	opts := core.RunOptions{RecordTrace: true}
	fresh, err := core.RunExperiment(exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := openStore(t)
	if err := s.Save(exp, opts, fresh); err != nil {
		t.Fatal(err)
	}
	loaded, ok, err := s.Load(exp, opts)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(fresh, loaded) {
		t.Errorf("round-tripped result differs:\nfresh:  %+v\nloaded: %+v", fresh, loaded)
	}
}

func TestLoadMissingIsMissNotError(t *testing.T) {
	s := openStore(t)
	_, ok, err := s.Load(exp, core.RunOptions{})
	if ok || err != nil {
		t.Errorf("empty store: ok=%v err=%v, want miss with nil error", ok, err)
	}
}

// TestOptionsChangeKey verifies the fingerprint separates cells that differ
// only in run options: a result stored with one option set must not answer
// a load with another.
func TestOptionsChangeKey(t *testing.T) {
	s := openStore(t)
	if err := s.Save(exp, core.RunOptions{}, core.Result{Target: exp.Target, N: exp.N}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Load(exp, core.RunOptions{RecordTrace: true}); ok {
		t.Error("load with different RecordTrace hit an entry stored without it")
	}
	if _, ok, _ := s.Load(exp, core.RunOptions{SkipVerify: true}); ok {
		t.Error("load with different SkipVerify hit an entry stored without it")
	}
	if _, ok, _ := s.Load(exp, core.RunOptions{}); !ok {
		t.Error("load with identical options missed")
	}
}

// TestSchemaMismatchInvalidates rewrites a stored entry with a foreign
// schema version; the load must degrade to a miss, not return stale data.
func TestSchemaMismatchInvalidates(t *testing.T) {
	s := openStore(t)
	opts := core.RunOptions{}
	if err := s.Save(exp, opts, core.Result{Target: exp.Target}); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	marker := fmt.Sprintf(`"schema":%d`, store.SchemaVersion)
	bumped := strings.Replace(string(data), marker, `"schema":999`, 1)
	if bumped == string(data) {
		t.Fatalf("schema marker not found in %s", data)
	}
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(exp, opts); ok || err != nil {
		t.Errorf("schema-mismatched entry: ok=%v err=%v, want miss with nil error", ok, err)
	}
}

// TestCorruptedEntryIsMiss truncates and garbles a stored entry; both must
// load as misses (and never as errors that would abort a sweep).
func TestCorruptedEntryIsMiss(t *testing.T) {
	s := openStore(t)
	opts := core.RunOptions{}
	if err := s.Save(exp, opts, core.Result{Target: exp.Target}); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s)
	for name, contents := range map[string][]byte{
		"truncated": []byte(`{"schema":1,"key":"tr`),
		"garbage":   []byte("\x00\xff not json at all"),
		"empty":     {},
	} {
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Load(exp, opts); ok || err != nil {
			t.Errorf("%s entry: ok=%v err=%v, want miss with nil error", name, ok, err)
		}
	}
}

// TestKeyMismatchIsMiss plants an entry whose envelope key disagrees with
// its path (a hand-copied or collided file); it must not be trusted.
func TestKeyMismatchIsMiss(t *testing.T) {
	s := openStore(t)
	opts := core.RunOptions{}
	other := exp
	other.N = 32
	if err := s.Save(exp, opts, core.Result{Target: exp.Target}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(other, opts, core.Result{Target: other.Target}); err != nil {
		t.Fatal(err)
	}
	// Copy exp's file over other's path: key inside no longer matches.
	fpExp, fpOther := store.Fingerprint(exp, opts), store.Fingerprint(other, opts)
	if fpExp == fpOther {
		t.Fatal("fingerprints must differ")
	}
	var paths []string
	filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			paths = append(paths, path)
		}
		return nil
	})
	if len(paths) != 2 {
		t.Fatalf("want 2 entries, found %d", len(paths))
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], a, 0o644); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range []core.Experiment{exp, other} {
		if _, ok, _ := s.Load(e, opts); ok {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("after cross-copying entries, %d loads hit; want exactly 1 (the untouched file)", hits)
	}
}

// TestSharedDirectoryAcrossStores simulates resume: a second store opened
// on the same directory sees the first one's entries.
func TestSharedDirectoryAcrossStores(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.RunOptions{}
	if err := s1.Save(exp, opts, core.Result{Target: exp.Target, N: exp.N}); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, ok, err := s2.Load(exp, opts)
	if err != nil || !ok || res.Target != exp.Target || res.N != exp.N {
		t.Errorf("second store on same dir: ok=%v err=%v res=%+v", ok, err, res)
	}
	if n, err := s2.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}
}

// TestNoTempFilesLeftBehind: saves must leave only complete entries.
func TestNoTempFilesLeftBehind(t *testing.T) {
	s := openStore(t)
	if err := s.Save(exp, core.RunOptions{}, core.Result{}); err != nil {
		t.Fatal(err)
	}
	err := filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := store.Open(""); err == nil {
		t.Error("Open(\"\") must error")
	}
}

// TestKeysAndEach saves several cells under distinct options and checks
// the enumeration returns every entry, sorted by fingerprint key, with
// the experiment/options/result round-tripped intact.
func TestKeysAndEach(t *testing.T) {
	s := openStore(t)
	cells := []struct {
		e    core.Experiment
		opts core.RunOptions
	}{
		{core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16}, core.RunOptions{}},
		{core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 32}, core.RunOptions{SkipVerify: true}},
		{core.Experiment{Target: "gemmini", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16}, core.RunOptions{Engine: sim.EngineFast}},
	}
	want := map[string]core.Result{}
	for i, c := range cells {
		res := core.Result{Target: c.e.Target, Workload: c.e.Workload, N: c.e.N}
		res.Cycles = uint64(100 + i)
		if err := s.Save(c.e, c.opts, res); err != nil {
			t.Fatal(err)
		}
		want[store.Fingerprint(c.e, c.opts)] = res
	}

	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(cells) {
		t.Fatalf("Keys returned %d entries, want %d", len(keys), len(cells))
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("keys are not sorted: %v", keys)
	}

	seen := 0
	prev := ""
	err = s.Each(func(e store.Entry) error {
		if e.Key <= prev {
			t.Errorf("Each out of order: %q after %q", e.Key, prev)
		}
		prev = e.Key
		res, ok := want[e.Key]
		if !ok {
			t.Errorf("unexpected key %q", e.Key)
			return nil
		}
		if !reflect.DeepEqual(e.Result, res) {
			t.Errorf("entry %q: result did not round-trip", e.Key)
		}
		if got := store.Fingerprint(e.Experiment, e.Options); got != e.Key {
			t.Errorf("entry %q: experiment/options re-fingerprint to %q", e.Key, got)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(cells) {
		t.Errorf("Each visited %d entries, want %d", seen, len(cells))
	}
}

// TestEachSkipsCorruptAndForeign garbles one entry and plants a
// hand-copied file at a wrong path; enumeration must skip both, like Load.
func TestEachSkipsCorruptAndForeign(t *testing.T) {
	s := openStore(t)
	opts := core.RunOptions{}
	if err := s.Save(exp, opts, core.Result{Target: exp.Target}); err != nil {
		t.Fatal(err)
	}
	other := exp
	other.N = 32
	if err := s.Save(other, opts, core.Result{Target: other.Target}); err != nil {
		t.Fatal(err)
	}

	// Garble the first entry.
	var victim string
	fp := store.Fingerprint(exp, opts)
	err := filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if strings.Contains(string(data), fp) {
			victim = path
		}
		return nil
	})
	if err != nil || victim == "" {
		t.Fatalf("finding victim entry: %v", err)
	}
	if err := os.WriteFile(victim, []byte("\x00 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant a valid envelope at a path its key does not hash to.
	foreign := filepath.Join(s.Dir(), "zz", "copied.json")
	if err := os.MkdirAll(filepath.Dir(foreign), 0o755); err != nil {
		t.Fatal(err)
	}
	survivor := ""
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" && path != victim {
			survivor = path
		}
		return err
	})
	if err != nil || survivor == "" {
		t.Fatalf("finding intact entry: %v", err)
	}
	data, err := os.ReadFile(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(foreign, data, 0o644); err != nil {
		t.Fatal(err)
	}

	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != store.Fingerprint(other, opts) {
		t.Errorf("Keys = %v, want only the intact entry", keys)
	}
}
