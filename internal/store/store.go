// Package store persists experiment results on disk so sweeps survive the
// process: repeated figure generation, sharded grid runs and
// crash-interrupted sweeps all skip cells that already ran. Entries are
// content-addressed — the file path is the SHA-256 of a fingerprint
// combining the serialization schema version with the experiment cell and
// run options — so a schema bump or any key change silently misses instead
// of deserializing stale bytes. Writes are atomic (temp file + rename) and
// loads tolerate corruption: a truncated, garbled or mismatched entry is a
// cache miss, never an aborted sweep.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"configwall/internal/core"
)

// SchemaVersion identifies the serialized envelope layout. Bump it whenever
// core.Result (or the envelope itself) changes shape: old entries then hash
// to different paths and are simply never found again.
//
// v2 added the experiment cell and run options to the envelope so the
// store is enumerable: Keys/Each can hand every entry back as a typed
// (experiment, options, result) record, which is what lets a serving
// daemon warm its runner from the store at boot without knowing which
// sweeps produced it.
const SchemaVersion = 2

// envelope is the on-disk JSON document. Key is stored redundantly (the
// path already encodes it) so loads can reject hash collisions and
// hand-copied files; Experiment and Options make the entry
// self-describing for enumeration.
type envelope struct {
	Schema     int             `json:"schema"`
	Key        string          `json:"key"`
	Experiment core.Experiment `json:"experiment"`
	Options    core.RunOptions `json:"options"`
	Result     core.Result     `json:"result"`
}

// DiskStore is a content-addressed directory of experiment results
// implementing core.Store. It is safe for concurrent use by any number of
// goroutines and processes sharing the directory: writes are atomic
// renames, and concurrent writers of the same cell write identical bytes
// (the co-simulator is deterministic).
type DiskStore struct {
	dir string
}

// Open prepares a disk store rooted at dir, creating it if needed.
func Open(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Fingerprint returns the full cache-key string for one cell, including the
// schema version. Its SHA-256 addresses the entry on disk.
func Fingerprint(e core.Experiment, opts core.RunOptions) string {
	return fmt.Sprintf("schema=%d;%s", SchemaVersion, core.FingerprintKey(e, opts))
}

// path maps a fingerprint to <dir>/<hh>/<hash>.json, fanned out over 256
// subdirectories to keep directory listings small on big grids.
func (s *DiskStore) path(fp string) string {
	sum := sha256.Sum256([]byte(fp))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h+".json")
}

// EntryPath returns the file path the entry for (e, opts) lives at —
// whether or not it exists yet. Crash-consistency tests and the fault
// injector use it to corrupt or truncate specific entries the way a torn
// write would; normal callers never need it.
func (s *DiskStore) EntryPath(e core.Experiment, opts core.RunOptions) string {
	return s.path(Fingerprint(e, opts))
}

// Load implements core.Store. Absent, corrupted, schema-mismatched or
// key-mismatched entries report ok=false with a nil error; only
// operational failures (e.g. permission denied) surface as errors.
func (s *DiskStore) Load(e core.Experiment, opts core.RunOptions) (core.Result, bool, error) {
	fp := Fingerprint(e, opts)
	data, err := os.ReadFile(s.path(fp))
	if os.IsNotExist(err) {
		return core.Result{}, false, nil
	}
	if err != nil {
		return core.Result{}, false, fmt.Errorf("store: load %s: %w", e, err)
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil || env.Schema != SchemaVersion || env.Key != fp {
		// Corruption tolerance: treat undecodable or mismatched bytes as a
		// miss so the cell recomputes (and the rewrite replaces the entry).
		return core.Result{}, false, nil
	}
	return env.Result, true, nil
}

// Save implements core.Store: it marshals the result and atomically
// publishes it, so readers (including concurrent processes) only ever see
// complete entries.
func (s *DiskStore) Save(e core.Experiment, opts core.RunOptions, res core.Result) error {
	fp := Fingerprint(e, opts)
	data, err := json.Marshal(envelope{Schema: SchemaVersion, Key: fp, Experiment: e, Options: opts, Result: res})
	if err != nil {
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	path := s.path(fp)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	return nil
}

// Len walks the store and counts complete entries (temp files in flight are
// excluded). It is a maintenance helper, not a hot path.
func (s *DiskStore) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// Entry is one enumerated store record: the fingerprint key addressing it
// plus the self-described experiment cell, run options and result.
type Entry struct {
	Key        string
	Experiment core.Experiment
	Options    core.RunOptions
	Result     core.Result
}

// Each calls fn for every complete, decodable entry in the store, in
// sorted fingerprint-key order. It is corruption-tolerant the way Load is:
// truncated, garbled, schema-mismatched, misplaced or in-flight temp files
// are silently skipped, never an error — only operational failures (an
// unreadable directory, a permission error, or fn itself failing) abort
// the walk. Entries stream one at a time (two passes: a cheap key index,
// then one full decode per callback), so enumerating a store of large
// trace-recording results never materializes more than one Result.
func (s *DiskStore) Each(fn func(Entry) error) error {
	index, err := s.index()
	if err != nil {
		return err
	}
	for _, kp := range index {
		data, err := os.ReadFile(kp.path)
		if err != nil {
			// The entry may have been replaced between the passes; a
			// vanished file is a skip, anything else is operational.
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("store: enumerate %s: %w", kp.path, err)
		}
		var env envelope
		if json.Unmarshal(data, &env) != nil || env.Schema != SchemaVersion || env.Key != kp.key {
			continue
		}
		if err := fn(Entry{Key: env.Key, Experiment: env.Experiment, Options: env.Options, Result: env.Result}); err != nil {
			return err
		}
	}
	return nil
}

// Keys returns the sorted fingerprint keys of every complete, decodable
// entry — the enumeration half of the content-addressed layout (the hash
// in the file name is one-way; the key inside the envelope is not).
func (s *DiskStore) Keys() ([]string, error) {
	index, err := s.index()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(index))
	for i, kp := range index {
		keys[i] = kp.key
	}
	return keys, nil
}

// keyedPath locates one enumerable entry: its fingerprint key and file.
type keyedPath struct {
	key, path string
}

// index walks the store decoding only the envelope header of each file
// and returns the (key, path) pairs sorted by key. Undecodable,
// schema-mismatched and misplaced files are skipped exactly like Load.
func (s *DiskStore) index() ([]keyedPath, error) {
	var out []keyedPath
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			// The file may be a temp entry renamed away mid-walk; a
			// vanished file is a skip, anything else is operational.
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("store: enumerate %s: %w", path, err)
		}
		var head struct {
			Schema int    `json:"schema"`
			Key    string `json:"key"`
		}
		if json.Unmarshal(data, &head) != nil || head.Schema != SchemaVersion {
			return nil
		}
		// Reject misplaced or hand-copied files exactly like Load: the
		// envelope's key must hash to the path it was found at.
		if s.path(head.Key) != path {
			return nil
		}
		out = append(out, keyedPath{key: head.Key, path: path})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}
