// Package store persists experiment results on disk so sweeps survive the
// process: repeated figure generation, sharded grid runs and
// crash-interrupted sweeps all skip cells that already ran. Entries are
// content-addressed — the file path is the SHA-256 of a fingerprint
// combining the serialization schema version with the experiment cell and
// run options — so a schema bump or any key change silently misses instead
// of deserializing stale bytes. Writes are atomic (temp file + rename) and
// loads tolerate corruption: a truncated, garbled or mismatched entry is a
// cache miss, never an aborted sweep.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"configwall/internal/core"
)

// SchemaVersion identifies the serialized envelope layout. Bump it whenever
// core.Result (or the envelope itself) changes shape: old entries then hash
// to different paths and are simply never found again.
const SchemaVersion = 1

// envelope is the on-disk JSON document. Key is stored redundantly (the
// path already encodes it) so loads can reject hash collisions and
// hand-copied files.
type envelope struct {
	Schema int         `json:"schema"`
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// DiskStore is a content-addressed directory of experiment results
// implementing core.Store. It is safe for concurrent use by any number of
// goroutines and processes sharing the directory: writes are atomic
// renames, and concurrent writers of the same cell write identical bytes
// (the co-simulator is deterministic).
type DiskStore struct {
	dir string
}

// Open prepares a disk store rooted at dir, creating it if needed.
func Open(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Fingerprint returns the full cache-key string for one cell, including the
// schema version. Its SHA-256 addresses the entry on disk.
func Fingerprint(e core.Experiment, opts core.RunOptions) string {
	return fmt.Sprintf("schema=%d;%s", SchemaVersion, core.FingerprintKey(e, opts))
}

// path maps a fingerprint to <dir>/<hh>/<hash>.json, fanned out over 256
// subdirectories to keep directory listings small on big grids.
func (s *DiskStore) path(fp string) string {
	sum := sha256.Sum256([]byte(fp))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h+".json")
}

// Load implements core.Store. Absent, corrupted, schema-mismatched or
// key-mismatched entries report ok=false with a nil error; only
// operational failures (e.g. permission denied) surface as errors.
func (s *DiskStore) Load(e core.Experiment, opts core.RunOptions) (core.Result, bool, error) {
	fp := Fingerprint(e, opts)
	data, err := os.ReadFile(s.path(fp))
	if os.IsNotExist(err) {
		return core.Result{}, false, nil
	}
	if err != nil {
		return core.Result{}, false, fmt.Errorf("store: load %s: %w", e, err)
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil || env.Schema != SchemaVersion || env.Key != fp {
		// Corruption tolerance: treat undecodable or mismatched bytes as a
		// miss so the cell recomputes (and the rewrite replaces the entry).
		return core.Result{}, false, nil
	}
	return env.Result, true, nil
}

// Save implements core.Store: it marshals the result and atomically
// publishes it, so readers (including concurrent processes) only ever see
// complete entries.
func (s *DiskStore) Save(e core.Experiment, opts core.RunOptions, res core.Result) error {
	fp := Fingerprint(e, opts)
	data, err := json.Marshal(envelope{Schema: SchemaVersion, Key: fp, Result: res})
	if err != nil {
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	path := s.path(fp)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: save %s: %w", e, err)
	}
	return nil
}

// Len walks the store and counts complete entries (temp files in flight are
// excluded). It is a maintenance helper, not a hot path.
func (s *DiskStore) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
