package store_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"configwall/internal/core"
	"configwall/internal/store"
)

// crashExps are three distinct cells for the crash-consistency scenarios.
var crashExps = []core.Experiment{
	{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 8},
	{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 16},
	{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8},
}

// seedStore saves a real result for every crashExps cell and returns the
// results by index.
func seedStore(t *testing.T, s *store.DiskStore) []core.Result {
	t.Helper()
	var opts core.RunOptions
	results := make([]core.Result, len(crashExps))
	for i, e := range crashExps {
		res, err := core.RunExperiment(e, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Save(e, opts, res); err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	return results
}

// TestTornEntryDegradesToMiss: an entry truncated mid-write (the torn
// state atomic rename normally rules out, forced here the way the fault
// injector forces it) must read as a miss, never an error — and a
// re-save must repair it.
func TestTornEntryDegradesToMiss(t *testing.T) {
	s := openStore(t)
	results := seedStore(t, s)
	var opts core.RunOptions

	path := s.EntryPath(crashExps[0], opts)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.Load(crashExps[0], opts); ok || err != nil {
		t.Errorf("torn entry: Load ok=%v err=%v, want a clean miss", ok, err)
	}
	// The intact entries are unaffected.
	for _, e := range crashExps[1:] {
		if _, ok, err := s.Load(e, opts); !ok || err != nil {
			t.Errorf("intact entry %s: ok=%v err=%v, want a hit", e, ok, err)
		}
	}

	// A fresh save replaces the torn bytes and the entry reads back whole.
	if err := s.Save(crashExps[0], opts, results[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(crashExps[0], opts); !ok || err != nil {
		t.Errorf("repaired entry: ok=%v err=%v, want a hit", ok, err)
	}
}

// TestTornEntrySkippedByEnumeration: Each and Keys must silently skip a
// torn entry — warm-on-boot and sweep resume keep working on the
// survivors instead of aborting.
func TestTornEntrySkippedByEnumeration(t *testing.T) {
	s := openStore(t)
	seedStore(t, s)
	var opts core.RunOptions

	path := s.EntryPath(crashExps[1], opts)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Errorf("Keys() returned %d entries, want the 2 intact ones", len(keys))
	}
	seen := 0
	if err := s.Each(func(store.Entry) error { seen++; return nil }); err != nil {
		t.Fatalf("Each over a store with a torn entry: %v", err)
	}
	if seen != 2 {
		t.Errorf("Each visited %d entries, want 2", seen)
	}

	// Warm-on-boot over the damaged store: the runner preloads the two
	// intact cells and the torn one recomputes on demand — degraded to a
	// miss, never a boot failure.
	runner := core.NewRunnerWith(core.RunnerOptions{Store: s})
	warmed := runner.Warm(context.Background(), crashExps, opts)
	if warmed != 2 {
		t.Errorf("Warm preloaded %d cells, want 2", warmed)
	}
	if _, err := runner.Run(context.Background(), crashExps[1], opts); err != nil {
		t.Errorf("recomputing the torn cell: %v", err)
	}
}

// TestLeftoverTempFilesIgnored: a crash between CreateTemp and the
// rename leaves .tmp-* files behind; every read path must ignore them.
func TestLeftoverTempFilesIgnored(t *testing.T) {
	s := openStore(t)
	seedStore(t, s)
	var opts core.RunOptions

	// Simulate in-flight writes that never completed: tmp litter next to
	// a real entry and in a fresh fan-out directory.
	litter := []string{
		filepath.Join(filepath.Dir(s.EntryPath(crashExps[0], opts)), ".tmp-123456"),
		filepath.Join(s.Dir(), "zz", ".tmp-crashed"),
	}
	if err := os.MkdirAll(filepath.Join(s.Dir(), "zz"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range litter {
		if err := os.WriteFile(p, []byte(`{"schema":2,"key":"partial`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	for _, e := range crashExps {
		if _, ok, err := s.Load(e, opts); !ok || err != nil {
			t.Errorf("entry %s with tmp litter: ok=%v err=%v, want a hit", e, ok, err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(crashExps) {
		t.Errorf("Keys() = %d entries, want %d (tmp litter excluded)", len(keys), len(crashExps))
	}
	n, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(crashExps) {
		t.Errorf("Len() = %d, want %d", n, len(crashExps))
	}
}

// TestGarbledEntryDegradesToMiss: arbitrary corruption (not just
// truncation) reads as a miss and is skipped by enumeration.
func TestGarbledEntryDegradesToMiss(t *testing.T) {
	s := openStore(t)
	seedStore(t, s)
	var opts core.RunOptions

	for i, garbage := range [][]byte{
		nil,                       // zero-length file (truncated at 0)
		[]byte("\x00\x01\x02"),    // binary noise
		[]byte(`{"schema":999}`),  // valid JSON, wrong schema
		[]byte(`{"key":"wrong"}`), // valid JSON, key/path mismatch
	} {
		path := s.EntryPath(crashExps[i%len(crashExps)], opts)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Load(crashExps[i%len(crashExps)], opts); ok || err != nil {
			t.Errorf("garbled variant %d: Load ok=%v err=%v, want a clean miss", i, ok, err)
		}
		if _, err := s.Keys(); err != nil {
			t.Errorf("garbled variant %d: Keys errored: %v", i, err)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
