package riscv_test

import (
	"strings"
	"testing"

	"configwall/internal/riscv"
)

func TestAssemblerResolvesLabels(t *testing.T) {
	a := riscv.NewAssembler()
	a.Label("start")
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 0, Imm: 1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 5, Rs2: 0, Label: "end"})
	a.Emit(riscv.Instr{Op: riscv.JAL, Label: "start"})
	a.Label("end")
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Targets[1] != 3 {
		t.Errorf("branch target = %d, want 3", p.Targets[1])
	}
	if p.Targets[2] != 0 {
		t.Errorf("jump target = %d, want 0", p.Targets[2])
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.JAL, Label: "nowhere"})
	if _, err := a.Finish(); err == nil {
		t.Error("expected error for undefined label")
	}
}

func TestFreshLabelsUnique(t *testing.T) {
	a := riscv.NewAssembler()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		l := a.FreshLabel("x")
		if seen[l] {
			t.Fatalf("duplicate label %q", l)
		}
		seen[l] = true
	}
}

func TestDisassemble(t *testing.T) {
	a := riscv.NewAssembler()
	a.Label("loop")
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 7, Imm: 42})
	a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 9, Rs1: 7, Rs2: 8})
	a.Emit(riscv.Instr{Op: riscv.CSRRW, Rs1: 7, Imm: 0x3c0})
	a.Emit(riscv.Instr{Op: riscv.BGE, Rs1: 7, Rs2: 8, Label: "loop"})
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	asm := p.Disassemble()
	for _, want := range []string{"loop:", "li x7, 42", "custom.9 x7, x8", "csrrw x0, 0x3c0, x7", "bge x7, x8, loop"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestCostModels(t *testing.T) {
	rocket := riscv.RocketCost()
	if got := rocket.Cycles(riscv.Instr{Op: riscv.ADD}); got != 3 {
		t.Errorf("rocket ADD = %d cycles, want 3", got)
	}
	if got := rocket.Cycles(riscv.Instr{Op: riscv.CUSTOM}); got != 6 {
		t.Errorf("rocket CUSTOM = %d cycles, want 6 (RoCC queue)", got)
	}
	snitch := riscv.SnitchCost()
	if got := snitch.Cycles(riscv.Instr{Op: riscv.ADD}); got != 1 {
		t.Errorf("snitch ADD = %d cycles, want 1", got)
	}
	if got := snitch.Cycles(riscv.Instr{Op: riscv.LD}); got != 2 {
		t.Errorf("snitch LD = %d cycles, want 2", got)
	}
	if got := snitch.Cycles(riscv.Instr{Op: riscv.DIVU}); got != 8 {
		t.Errorf("snitch DIVU = %d cycles, want 8", got)
	}
	flat := riscv.FlatCost{PerInstr: 5, ModelName: "flat5"}
	if flat.Cycles(riscv.Instr{Op: riscv.MUL}) != 5 || flat.Name() != "flat5" {
		t.Error("flat cost model misbehaves")
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   riscv.Instr
		want string
	}{
		{riscv.Instr{Op: riscv.HALT}, "halt"},
		{riscv.Instr{Op: riscv.ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add x1, x2, x3"},
		{riscv.Instr{Op: riscv.LD, Rd: 4, Rs1: 2, Imm: 16}, "ld x4, 16(x2)"},
		{riscv.Instr{Op: riscv.SD, Rs1: 2, Rs2: 9, Imm: 8}, "sd x9, 8(x2)"},
		{riscv.Instr{Op: riscv.SLLI, Rd: 4, Rs1: 4, Imm: 32}, "slli x4, x4, 32"},
		{riscv.Instr{Op: riscv.CSRRS, Rd: 6, Imm: 0x3cc}, "csrrs x6, 0x3cc, x0"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
