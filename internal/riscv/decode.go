package riscv

import "fmt"

// This file defines the predecoded program form consumed by the
// simulator's fast execution engine (internal/sim, QEMU/TCG-style
// predecode-then-dispatch). Decoding pre-resolves everything the
// interpreter hot loop would otherwise recompute per executed instruction:
//
//   - branch/jump targets (no Targets map lookup),
//   - per-op cycle costs (no CostModel interface call),
//   - the instruction class driving the paper's counters, and
//   - basic-block batches: for every instruction, the length and total
//     cycle cost of the maximal straight-line run of plain host
//     instructions starting there, so the engine can account a whole block
//     (instructions, cycles, calc-cycles, one trace segment) in O(1) and
//     only interpret the register/memory semantics per instruction.
//
// A Program is decoded once and executed many times; decode cost is linear
// in the static instruction count, which the paper's sweeps amortize over
// millions of executed instructions.

// DecodedInstr is one predecoded instruction. It carries the operand
// fields of Instr plus the precomputed cost, resolved control flow, and
// block-batching metadata.
type DecodedInstr struct {
	Op     Opcode
	Class  Class
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Funct7 uint32
	// Cost is the instruction's cycle cost under the decode-time CostModel.
	Cost uint64
	// Target is the resolved branch/jump destination index, or -1 when the
	// instruction has none.
	Target int32
	// BlockLen is the number of instructions in the maximal batchable
	// straight-line run starting here: consecutive plain instructions
	// whose cycle cost lands in the calculation bucket (ClassHost or
	// ClassConfigCalc), of which only the last may be a branch or jump.
	// Zero for device ops (CUSTOM/CSRRW/CSRRS), HALT, unknown opcodes,
	// and plain instructions in other counter classes (a busy-poll
	// branch is ClassSync and must charge SyncCycles), which the engine
	// must all handle individually.
	BlockLen int32
	// BlockCycles is the summed Cost of that run.
	BlockCycles uint64
}

// String renders the instruction like Instr.String; resolved branch
// targets print as absolute indices ("@12") since labels are gone.
func (di DecodedInstr) String() string {
	ins := Instr{Op: di.Op, Rd: di.Rd, Rs1: di.Rs1, Rs2: di.Rs2,
		Imm: di.Imm, Funct7: di.Funct7, Class: di.Class}
	if di.Target >= 0 {
		ins.Label = fmt.Sprintf("@%d", di.Target)
	}
	return ins.String()
}

// Decoded is a predecoded, cost-annotated program.
type Decoded struct {
	Instrs []DecodedInstr
	// CostName records the cost model the cycle annotations came from, so
	// an engine can refuse to run a program decoded for a different host.
	CostName string
}

// Block is one maximal batchable straight-line run in a decoded program:
// the unit the block-batched engines account in O(1) and the compiled
// engine lowers to a closure chain (internal/sim).
type Block struct {
	// Start is the index of the run's first instruction.
	Start int32
	// Len is the run's instruction count (== Instrs[Start].BlockLen).
	Len int32
	// Cycles is the run's summed cycle cost (== Instrs[Start].BlockCycles).
	Cycles uint64
}

// Blocks partitions the program into its maximal batchable runs, in program
// order. Instructions outside every run (device ops, HALT, sync-class
// polls, unknown opcodes) are not covered. Within a run the per-instruction
// BlockLen/BlockCycles metadata describes the *suffix* starting there, so a
// branch into the middle of a run is itself a valid run entry — engines and
// compilers may enter at any covered index, not just Start.
func (d *Decoded) Blocks() []Block {
	var blocks []Block
	for pc := 0; pc < len(d.Instrs); {
		di := &d.Instrs[pc]
		if di.BlockLen == 0 {
			pc++
			continue
		}
		blocks = append(blocks, Block{Start: int32(pc), Len: di.BlockLen, Cycles: di.BlockCycles})
		pc += int(di.BlockLen)
	}
	return blocks
}

// PlainOp reports whether op is ordinary host computation or control flow
// — everything up to JAL. Device ops (CUSTOM, CSRRW, CSRRS), HALT and
// unknown opcodes need individual engine handling (stalls, launches, run
// termination, errors).
func PlainOp(op Opcode) bool { return op <= JAL }

// batchable reports whether an instruction can live inside a batched
// block: plain semantics AND cycle accounting in the calculation bucket.
// Plain instructions in other classes (busy-poll branches are ClassSync)
// execute individually so their cycles land on the right counter.
func batchable(op Opcode, class Class) bool {
	return PlainOp(op) && class != ClassConfig && class != ClassSync
}

// Decode predecodes p for execution under the given cost model.
func Decode(p *Program, cost CostModel) *Decoded {
	d := &Decoded{Instrs: make([]DecodedInstr, len(p.Instrs)), CostName: cost.Name()}
	for i, ins := range p.Instrs {
		di := &d.Instrs[i]
		*di = DecodedInstr{
			Op: ins.Op, Class: ins.Class, Rd: ins.Rd, Rs1: ins.Rs1, Rs2: ins.Rs2,
			Imm: ins.Imm, Funct7: ins.Funct7, Cost: cost.Cycles(ins), Target: -1,
		}
		if t, ok := p.Targets[i]; ok {
			di.Target = int32(t)
		}
	}
	// Backward scan: a batchable non-control instruction extends the run
	// that starts at its successor; control flow (and the end of the
	// program) terminates a run, and non-batchable successors contribute
	// length zero.
	for i := len(d.Instrs) - 1; i >= 0; i-- {
		di := &d.Instrs[i]
		if !batchable(di.Op, di.Class) {
			continue
		}
		di.BlockLen, di.BlockCycles = 1, di.Cost
		if di.Op >= BEQ { // branches and JAL end their block
			continue
		}
		if i+1 < len(d.Instrs) {
			next := &d.Instrs[i+1]
			di.BlockLen += next.BlockLen
			di.BlockCycles += next.BlockCycles
		}
	}
	return d
}
