package riscv_test

import (
	"strings"
	"testing"

	"configwall/internal/riscv"
)

func mustFinish(t *testing.T, a *riscv.Assembler) *riscv.Program {
	t.Helper()
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDecodeResolvesTargetsAndCosts(t *testing.T) {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 4})
	a.Label("loop")
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: -1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 5, Rs2: 0, Label: "loop"})
	a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 7, Class: riscv.ClassConfig})
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p := mustFinish(t, a)

	d := riscv.Decode(p, riscv.RocketCost())
	if d.CostName != riscv.RocketCost().Name() {
		t.Errorf("CostName = %q", d.CostName)
	}
	if len(d.Instrs) != len(p.Instrs) {
		t.Fatalf("decoded %d instrs, want %d", len(d.Instrs), len(p.Instrs))
	}
	if got := d.Instrs[2].Target; got != 1 {
		t.Errorf("branch target = %d, want 1", got)
	}
	if got := d.Instrs[0].Target; got != -1 {
		t.Errorf("non-branch target = %d, want -1", got)
	}
	// Rocket: 3 cycles plain, 6 for CUSTOM — prefetched per instruction.
	if d.Instrs[0].Cost != 3 || d.Instrs[3].Cost != 6 {
		t.Errorf("costs = %d/%d, want 3/6", d.Instrs[0].Cost, d.Instrs[3].Cost)
	}
}

func TestDecodeBlockBatching(t *testing.T) {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})                 // 0: run of 3 (ends at branch)
	a.Emit(riscv.Instr{Op: riscv.ADD, Rd: 6, Rs1: 5, Rs2: 5})        // 1: run of 2
	a.Emit(riscv.Instr{Op: riscv.BEQ, Rs1: 5, Rs2: 6, Label: "out"}) // 2: run of 1 (terminator)
	a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1})                 // 3: device op, no run
	a.Label("out")
	a.Emit(riscv.Instr{Op: riscv.SUB, Rd: 7, Rs1: 6, Rs2: 5}) // 4: run of 1 (next is HALT)
	a.Emit(riscv.Instr{Op: riscv.HALT})                       // 5: no run
	p := mustFinish(t, a)

	d := riscv.Decode(p, riscv.FlatCost{PerInstr: 2, ModelName: "flat2"})
	wantLen := []int32{3, 2, 1, 0, 1, 0}
	for i, want := range wantLen {
		if got := d.Instrs[i].BlockLen; got != want {
			t.Errorf("BlockLen[%d] = %d, want %d", i, got, want)
		}
		if wantCycles := uint64(want) * 2; d.Instrs[i].BlockCycles != wantCycles {
			t.Errorf("BlockCycles[%d] = %d, want %d", i, d.Instrs[i].BlockCycles, wantCycles)
		}
	}
}

func TestDecodeBlockStopsAtProgramEnd(t *testing.T) {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.NOP})
	a.Emit(riscv.Instr{Op: riscv.NOP}) // falls off the end: still a valid run
	p := mustFinish(t, a)
	d := riscv.Decode(p, riscv.FlatCost{PerInstr: 1, ModelName: "flat"})
	if d.Instrs[0].BlockLen != 2 || d.Instrs[1].BlockLen != 1 {
		t.Errorf("BlockLens = %d,%d, want 2,1", d.Instrs[0].BlockLen, d.Instrs[1].BlockLen)
	}
}

// TestBlocksPartition: Blocks must return exactly the maximal runs (one
// per run head, not one per suffix), in program order, consistent with the
// per-instruction BlockLen/BlockCycles metadata.
func TestBlocksPartition(t *testing.T) {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 1})                 // 0: run [0,3)
	a.Emit(riscv.Instr{Op: riscv.ADD, Rd: 6, Rs1: 5, Rs2: 5})        // 1
	a.Emit(riscv.Instr{Op: riscv.BEQ, Rs1: 5, Rs2: 6, Label: "out"}) // 2
	a.Emit(riscv.Instr{Op: riscv.CUSTOM, Funct7: 1})                 // 3: not covered
	a.Label("out")
	a.Emit(riscv.Instr{Op: riscv.SUB, Rd: 7, Rs1: 6, Rs2: 5}) // 4: run [4,5)
	a.Emit(riscv.Instr{Op: riscv.HALT})                       // 5: not covered
	p := mustFinish(t, a)

	d := riscv.Decode(p, riscv.FlatCost{PerInstr: 2, ModelName: "flat2"})
	got := d.Blocks()
	want := []riscv.Block{
		{Start: 0, Len: 3, Cycles: 6},
		{Start: 4, Len: 1, Cycles: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("Blocks() = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Blocks()[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Suffix property inside the first run: entering at 1 must describe
	// the 2-instruction tail, the contract mid-run branch entries rely on.
	if d.Instrs[1].BlockLen != 2 || d.Instrs[1].BlockCycles != 4 {
		t.Errorf("suffix at 1 = (%d, %d), want (2, 4)",
			d.Instrs[1].BlockLen, d.Instrs[1].BlockCycles)
	}
}

// TestFinishRejectsUnlabeledControlFlow: a branch with no label used to
// slip through Finish with no Targets entry, and the reference engine
// would silently jump to the map zero value (instruction 0) while the
// fast engine errored — the assembler now rejects the program outright,
// so no engine can ever see one.
func TestFinishRejectsUnlabeledControlFlow(t *testing.T) {
	for _, op := range []riscv.Opcode{riscv.BEQ, riscv.BNE, riscv.BLT, riscv.BGE, riscv.BLTU, riscv.BGEU, riscv.JAL} {
		a := riscv.NewAssembler()
		a.Emit(riscv.Instr{Op: op})
		a.Emit(riscv.Instr{Op: riscv.HALT})
		if _, err := a.Finish(); err == nil {
			t.Errorf("%s without a label must not assemble", op)
		}
	}
}

func TestDecodedInstrString(t *testing.T) {
	a := riscv.NewAssembler()
	a.Label("l")
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 5, Rs2: 0, Label: "l"})
	p := mustFinish(t, a)
	d := riscv.Decode(p, riscv.FlatCost{PerInstr: 1, ModelName: "flat"})
	s := d.Instrs[0].String()
	if !strings.Contains(s, "bne") || !strings.Contains(s, "@0") {
		t.Errorf("String() = %q, want mnemonic and resolved target", s)
	}
}
