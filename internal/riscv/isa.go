// Package riscv defines the RV64-subset host instruction set used by the
// co-simulator: the integer ALU and memory instructions the code generator
// emits, plus the two accelerator interfaces the paper's targets use —
// RoCC-style custom instructions (Gemmini, §2.4) and CSR accesses
// (OpenGeMM-style memory-less configuration ports).
package riscv

import "fmt"

// Reg is a register number x0..x31. x0 is hard-wired to zero.
type Reg uint8

// Register aliases following the RISC-V psABI.
const (
	X0 Reg = 0  // zero
	RA Reg = 1  // return address (unused by generated code)
	SP Reg = 2  // stack pointer (spill slots)
	GP Reg = 3  // global pointer (static data base)
	TP Reg = 4  // thread pointer (reserved scratch 2)
	T0 Reg = 5  // scratch 0
	T1 Reg = 6  // scratch 1
	A0 Reg = 10 // first argument register
)

// NumRegs is the architectural register count.
const NumRegs = 32

// Opcode enumerates the supported instructions.
type Opcode uint8

// Instruction opcodes.
const (
	NOP Opcode = iota
	// ALU register-register.
	ADD
	SUB
	MUL
	DIVU
	REMU
	AND
	OR
	XOR
	SLL
	SRL
	SLT
	SLTU
	// ALU register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SLTIU
	// Constant materialization (pseudo: lui+addi pair counted as one).
	LI
	// Memory.
	LB
	LH
	LW
	LD
	SB
	SH
	SW
	SD
	// Control flow (label-based; the assembler resolves targets).
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL
	// Accelerator interfaces.
	CUSTOM // RoCC-style: funct7 selects the operation, rs1/rs2 carry 16 bytes
	CSRRW  // CSR write: csr[imm] = rs1
	CSRRS  // CSR read: rd = csr[imm]
	// Simulation control.
	HALT
)

var opcodeNames = map[Opcode]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIVU: "divu", REMU: "remu",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLLI: "slli", SRLI: "srli",
	SLTIU: "sltiu", LI: "li",
	LB: "lb", LH: "lh", LW: "lw", LD: "ld", SB: "sb", SH: "sh", SW: "sw", SD: "sd",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", CUSTOM: "custom", CSRRW: "csrrw", CSRRS: "csrrs", HALT: "halt",
}

// String returns the assembly mnemonic.
func (o Opcode) String() string {
	if n, ok := opcodeNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Class categorizes instructions for the performance counters the paper's
// methodology needs (§6.1: configuration vs calculation instructions).
type Class uint8

// Instruction classes.
const (
	// ClassHost is ordinary host computation.
	ClassHost Class = iota
	// ClassConfig is a write on the accelerator configuration interface
	// (RoCC custom instruction or CSR write to the accelerator's range).
	ClassConfig
	// ClassConfigCalc is host arithmetic whose only purpose is computing
	// configuration values (bit-packing etc.), tagged by the lowering.
	ClassConfigCalc
	// ClassSync is launch/await synchronization (fences, busy polls).
	ClassSync
)

// Instr is one decoded instruction. Branch targets are symbolic labels
// resolved by the assembler.
type Instr struct {
	Op     Opcode
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64  // immediate, CSR address for CSRRW/CSRRS
	Funct7 uint32 // CUSTOM function selector
	Label  string // branch/jump target
	Class  Class
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case LI:
		return fmt.Sprintf("li x%d, %d", i.Rd, i.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTIU:
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case LB, LH, LW, LD:
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case SB, SH, SW, SD:
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s x%d, x%d, %s", i.Op, i.Rs1, i.Rs2, i.Label)
	case JAL:
		return fmt.Sprintf("j %s", i.Label)
	case CUSTOM:
		return fmt.Sprintf("custom.%d x%d, x%d", i.Funct7, i.Rs1, i.Rs2)
	case CSRRW:
		return fmt.Sprintf("csrrw x0, %#x, x%d", i.Imm, i.Rs1)
	case CSRRS:
		return fmt.Sprintf("csrrs x%d, %#x, x0", i.Rd, i.Imm)
	}
	return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rs1, i.Rs2)
}

// Program is an assembled instruction sequence with resolved labels.
type Program struct {
	Instrs []Instr
	// Labels maps label names to instruction indices.
	Labels map[string]int
	// Targets maps the index of each branch/jump to its target index.
	Targets map[int]int
}

// Disassemble renders the program as assembly text with label markers.
func (p *Program) Disassemble() string {
	byIndex := map[int][]string{}
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	out := ""
	for i, ins := range p.Instrs {
		for _, l := range byIndex[i] {
			out += l + ":\n"
		}
		out += fmt.Sprintf("  %s\n", ins)
	}
	return out
}

// Assembler incrementally builds a Program.
type Assembler struct {
	instrs []Instr
	labels map[string]int
	nextID int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: map[string]int{}}
}

// Emit appends an instruction and returns its index.
func (a *Assembler) Emit(i Instr) int {
	a.instrs = append(a.instrs, i)
	return len(a.instrs) - 1
}

// Label binds name to the next emitted instruction.
func (a *Assembler) Label(name string) {
	a.labels[name] = len(a.instrs)
}

// FreshLabel returns a unique label with the given prefix.
func (a *Assembler) FreshLabel(prefix string) string {
	a.nextID++
	return fmt.Sprintf(".%s%d", prefix, a.nextID)
}

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.instrs) }

// Finish resolves labels and returns the program. Control-flow
// instructions without a label are rejected: an unresolved branch has no
// Targets entry, and executing it would fall back to the map's zero value
// — a silent jump to instruction 0.
func (a *Assembler) Finish() (*Program, error) {
	p := &Program{Instrs: a.instrs, Labels: a.labels, Targets: map[int]int{}}
	for i, ins := range a.instrs {
		if ins.Label == "" {
			if ins.Op >= BEQ && ins.Op <= JAL {
				return nil, fmt.Errorf("riscv: %s at instruction %d has no target label", ins.Op, i)
			}
			continue
		}
		t, ok := a.labels[ins.Label]
		if !ok {
			return nil, fmt.Errorf("riscv: undefined label %q at instruction %d", ins.Label, i)
		}
		p.Targets[i] = t
	}
	return p, nil
}

// CostModel maps instructions to cycle counts, abstracting the host
// microarchitecture (paper §4.6 uses a flat 3 cycles/instruction for the
// Rocket core; a small in-order core like Snitch is closer to 1).
type CostModel interface {
	// Cycles returns the cost of executing one instruction.
	Cycles(i Instr) uint64
	// Name identifies the model in reports.
	Name() string
}

// FlatCost charges the same cycle count for every instruction.
type FlatCost struct {
	PerInstr  uint64
	ModelName string
}

// Cycles implements CostModel.
func (c FlatCost) Cycles(Instr) uint64 { return c.PerInstr }

// Name implements CostModel.
func (c FlatCost) Name() string { return c.ModelName }

// RocketCost approximates the Rocket RV64 core with the paper's 3
// cycles/instruction (the inverse harmonic-mean IPC from Dörflinger et
// al.), except RoCC custom instructions, which pay the RoCC command-queue
// handshake on top (~2x a plain instruction).
func RocketCost() CostModel { return rocketCost{} }

type rocketCost struct{}

func (rocketCost) Cycles(i Instr) uint64 {
	if i.Op == CUSTOM {
		return 6
	}
	return 3
}

func (rocketCost) Name() string { return "rocket-3cpi" }

// SnitchCost approximates a tiny single-issue in-order RV32 core at 1
// cycle/instruction with a small penalty on taken memory operations.
func SnitchCost() CostModel { return snitchCost{} }

type snitchCost struct{}

func (snitchCost) Cycles(i Instr) uint64 {
	switch i.Op {
	case LB, LH, LW, LD, SB, SH, SW, SD:
		return 2 // scratchpad access latency
	case MUL:
		return 2
	case DIVU, REMU:
		return 8
	default:
		return 1
	}
}

func (snitchCost) Name() string { return "snitch-inorder" }
