// Package roofline implements the paper's performance models (§4): the
// classical processor roofline (Eq. 1), the novel configuration roofline for
// concurrently (Eq. 2) and sequentially (Eq. 3) configured accelerators, the
// effective configuration bandwidth correction (Eq. 4), and the combined
// "roofsurface" (Eq. 5).
package roofline

import (
	"fmt"
	"math"
)

// Processor returns the attainable performance of the classical processor
// roofline (Eq. 1): min(peak, bwMemory * iOperational), in ops/cycle.
func Processor(peak, bwMemory, iOperational float64) float64 {
	return math.Min(peak, bwMemory*iOperational)
}

// Concurrent returns the attainable performance under the configuration
// roofline for a concurrently-configured accelerator (Eq. 2):
// min(peak, bwConfig * iOC).
func Concurrent(peak, bwConfig, iOC float64) float64 {
	return math.Min(peak, bwConfig*iOC)
}

// Sequential returns the attainable performance for a sequentially
// configured accelerator (Eq. 3): the harmonic composition
// 1 / (1/peak + 1/(bwConfig * iOC)). It asymptotically approaches the
// concurrent roofline but never reaches it — configuration cycles are
// unavoidable without overlap. The harmonic mean is undefined for
// non-positive terms (1/0 is +Inf, 1/-x flips the sign and can even turn
// the composition negative), so any non-positive peak or config term
// yields 0, mirroring the Geomean/speedupRatio hardening: a degenerate
// cell must not leak NaN/Inf into figures.
func Sequential(peak, bwConfig, iOC float64) float64 {
	cfg := bwConfig * iOC
	if peak <= 0 || cfg <= 0 || math.IsNaN(peak) || math.IsNaN(cfg) {
		return 0
	}
	return 1 / (1/peak + 1/cfg)
}

// EffectiveConfigBW returns the effective configuration bandwidth (Eq. 4):
// configBytes / (tCalc + tSet), accounting for the host cycles spent
// *computing* configuration values (bit-packing, address arithmetic) on top
// of the cycles spent setting registers.
func EffectiveConfigBW(configBytes, tCalcCycles, tSetCycles float64) float64 {
	t := tCalcCycles + tSetCycles
	if t == 0 {
		return math.Inf(1)
	}
	return configBytes / t
}

// Combined returns the attainable performance of the combined roofsurface
// (Eq. 5): min(peak, bwMemory * iOperational, bwConfig * iOC).
func Combined(peak, bwMemory, iOperational, bwConfig, iOC float64) float64 {
	return math.Min(Processor(peak, bwMemory, iOperational), bwConfig*iOC)
}

// Knee returns the operation-to-configuration intensity of the roofline
// knee point: the I_OC at which configuration time equals compute time
// (peak / bwConfig). Workloads left of the knee are configuration bound.
// A non-positive bandwidth has no knee; report 0 rather than Inf/NaN.
func Knee(peak, bwConfig float64) float64 {
	if bwConfig <= 0 || peak <= 0 || math.IsNaN(bwConfig) || math.IsNaN(peak) {
		return 0
	}
	return peak / bwConfig
}

// Bound classifies which term of the roofline limits a workload.
type Bound int

// Bound kinds.
const (
	// ComputeBound: the peak-performance term limits.
	ComputeBound Bound = iota
	// ConfigBound: the configuration term limits (the configuration wall).
	ConfigBound
	// MemoryBound: the memory-bandwidth term limits.
	MemoryBound
)

func (b Bound) String() string {
	switch b {
	case ConfigBound:
		return "configuration-bound"
	case MemoryBound:
		return "memory-bound"
	}
	return "compute-bound"
}

// Classify determines the binding term under the concurrent configuration
// roofline (Eq. 2).
func Classify(peak, bwConfig, iOC float64) Bound {
	if bwConfig*iOC < peak {
		return ConfigBound
	}
	return ComputeBound
}

// ClassifyCombined determines the binding term of the roofsurface (Eq. 5).
func ClassifyCombined(peak, bwMemory, iOperational, bwConfig, iOC float64) Bound {
	cfg := bwConfig * iOC
	mem := bwMemory * iOperational
	switch {
	case cfg < peak && cfg <= mem:
		return ConfigBound
	case mem < peak:
		return MemoryBound
	}
	return ComputeBound
}

// Model bundles an accelerator's roofline parameters.
type Model struct {
	// Name identifies the accelerator in reports.
	Name string
	// PeakOps is the peak performance in ops/cycle.
	PeakOps float64
	// BWConfig is the raw configuration bandwidth in bytes/cycle.
	BWConfig float64
	// BWMemory is the memory bandwidth in bytes/cycle (for the combined
	// model; zero disables the memory term).
	BWMemory float64
	// ConcurrentConfig marks concurrent-configuration hardware.
	ConcurrentConfig bool
}

// Attainable evaluates the applicable configuration roofline for a workload
// with the given operation-to-configuration intensity.
func (m Model) Attainable(iOC float64) float64 {
	if m.ConcurrentConfig {
		return Concurrent(m.PeakOps, m.BWConfig, iOC)
	}
	return Sequential(m.PeakOps, m.BWConfig, iOC)
}

// AttainableWithBW evaluates the roofline with an overriding (e.g.
// effective) configuration bandwidth.
func (m Model) AttainableWithBW(bwConfig, iOC float64) float64 {
	if m.ConcurrentConfig {
		return Concurrent(m.PeakOps, bwConfig, iOC)
	}
	return Sequential(m.PeakOps, bwConfig, iOC)
}

// Utilization returns attainable performance as a fraction of peak, or 0
// when the model has no positive peak (division by zero would report a
// NaN utilization for an unconfigured model).
func (m Model) Utilization(iOC float64) float64 {
	if m.PeakOps <= 0 || math.IsNaN(m.PeakOps) {
		return 0
	}
	return m.Attainable(iOC) / m.PeakOps
}

// Knee returns the knee-point intensity of the model.
func (m Model) Knee() float64 { return Knee(m.PeakOps, m.BWConfig) }

// Point is one measurement or model evaluation on the roofline plot
// (Figure 12): a workload's intensity and its performance.
type Point struct {
	Label string
	IOC   float64
	Perf  float64
}

// Series is a named sequence of points (one roofline curve or one
// measurement group).
type Series struct {
	Name   string
	Points []Point
}

// CurveConcurrent samples the concurrent roofline over a log-spaced
// intensity range.
func (m Model) CurveConcurrent(iocMin, iocMax float64, n int) Series {
	return m.curve("concurrent", iocMin, iocMax, n, func(ioc float64) float64 {
		return Concurrent(m.PeakOps, m.BWConfig, ioc)
	})
}

// CurveSequential samples the sequential roofline over a log-spaced
// intensity range.
func (m Model) CurveSequential(iocMin, iocMax float64, n int) Series {
	return m.curve("sequential", iocMin, iocMax, n, func(ioc float64) float64 {
		return Sequential(m.PeakOps, m.BWConfig, ioc)
	})
}

func (m Model) curve(name string, iocMin, iocMax float64, n int, f func(float64) float64) Series {
	s := Series{Name: name}
	if n < 2 {
		n = 2
	}
	iocMin, iocMax, ok := clampLogRange(iocMin, iocMax)
	if !ok {
		return s
	}
	logMin, logMax := math.Log(iocMin), math.Log(iocMax)
	for i := 0; i < n; i++ {
		ioc := math.Exp(logMin + (logMax-logMin)*float64(i)/float64(n-1))
		s.Points = append(s.Points, Point{IOC: ioc, Perf: f(ioc)})
	}
	return s
}

// clampLogRange sanitizes a log-spaced sampling range: math.Log of a
// non-positive bound is NaN/-Inf and every sampled coordinate inherits it.
// A non-positive minimum is pulled up to six decades below the maximum; a
// range with no positive maximum is unusable and reports ok=false.
func clampLogRange(min, max float64) (float64, float64, bool) {
	if max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) {
		return 0, 0, false
	}
	if min <= 0 || math.IsNaN(min) || min > max {
		min = max / 1e6
	}
	return min, max, true
}

// Surface samples the combined roofsurface (Figure 5) over a log-spaced
// grid, returning rows of (iOperational, iOC, attainable). Ranges are
// sanitized like curve sampling: a non-positive axis maximum yields an
// empty surface rather than NaN coordinates.
func (m Model) Surface(iOpMin, iOpMax, iocMin, iocMax float64, n int) [][3]float64 {
	var out [][3]float64
	iOpMin, iOpMax, okOp := clampLogRange(iOpMin, iOpMax)
	iocMin, iocMax, okOC := clampLogRange(iocMin, iocMax)
	if !okOp || !okOC || n < 2 {
		return out
	}
	for i := 0; i < n; i++ {
		iOp := math.Exp(math.Log(iOpMin) + (math.Log(iOpMax)-math.Log(iOpMin))*float64(i)/float64(n-1))
		for j := 0; j < n; j++ {
			ioc := math.Exp(math.Log(iocMin) + (math.Log(iocMax)-math.Log(iocMin))*float64(j)/float64(n-1))
			out = append(out, [3]float64{iOp, ioc, Combined(m.PeakOps, m.BWMemory, iOp, m.BWConfig, ioc)})
		}
	}
	return out
}

// String summarizes the model.
func (m Model) String() string {
	scheme := "sequential"
	if m.ConcurrentConfig {
		scheme = "concurrent"
	}
	return fmt.Sprintf("%s: peak %.0f ops/cycle, BW_config %.3f B/cycle (%s), knee at I_OC = %.1f ops/B",
		m.Name, m.PeakOps, m.BWConfig, scheme, m.Knee())
}
