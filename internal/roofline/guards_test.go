package roofline_test

import (
	"math"
	"strings"
	"testing"

	"configwall/internal/roofline"
)

// finite reports whether v is a plain finite float (not NaN, not ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// TestSequentialGuards pins the degenerate-input behavior of Eq. 3: any
// non-positive peak or configuration term yields 0 instead of leaking
// NaN/Inf (or a sign-flipped "performance") into figures, mirroring the
// Geomean/speedupRatio hardening.
func TestSequentialGuards(t *testing.T) {
	cases := []struct {
		name                string
		peak, bwConfig, iOC float64
		want                float64
	}{
		{"zero peak", 0, 1.77, 100, 0},
		{"negative peak", -512, 1.77, 100, 0},
		{"zero bw", 512, 0, 100, 0},
		{"negative bw", 512, -1.77, 100, 0},
		{"zero intensity", 512, 1.77, 0, 0},
		{"negative intensity", 512, 1.77, -4, 0},
		{"all zero", 0, 0, 0, 0},
		{"nan peak", math.NaN(), 1.77, 100, 0},
		{"nan intensity", 512, 1.77, math.NaN(), 0},
	}
	for _, c := range cases {
		if got := roofline.Sequential(c.peak, c.bwConfig, c.iOC); got != c.want {
			t.Errorf("%s: Sequential(%v,%v,%v) = %v, want %v", c.name, c.peak, c.bwConfig, c.iOC, got, c.want)
		}
	}
	// The happy path must be untouched by the guards.
	if got := roofline.Sequential(512, 16.0/9.0, 204.8); !approx(got/512, 0.4156, 0.001) {
		t.Errorf("Sequential paper point = %v, want ~41.5%% of 512", got)
	}
}

// TestKneeAndUtilizationGuards covers the remaining unguarded divisions:
// Knee's peak/bwConfig and Model.Utilization's /PeakOps.
func TestKneeAndUtilizationGuards(t *testing.T) {
	cases := []struct {
		name           string
		peak, bwConfig float64
		want           float64
	}{
		{"zero bw", 512, 0, 0},
		{"negative bw", 512, -1, 0},
		{"zero peak", 0, 1.77, 0},
		{"nan bw", 512, math.NaN(), 0},
		{"happy", 512, 16, 32},
	}
	for _, c := range cases {
		if got := roofline.Knee(c.peak, c.bwConfig); got != c.want {
			t.Errorf("%s: Knee(%v,%v) = %v, want %v", c.name, c.peak, c.bwConfig, got, c.want)
		}
	}

	zero := roofline.Model{Name: "degenerate", PeakOps: 0, BWConfig: 1.77}
	if got := zero.Utilization(100); got != 0 {
		t.Errorf("Utilization with zero peak = %v, want 0", got)
	}
	neg := roofline.Model{Name: "degenerate", PeakOps: -512, BWConfig: 1.77}
	if got := neg.Utilization(100); got != 0 {
		t.Errorf("Utilization with negative peak = %v, want 0", got)
	}
	ok := roofline.Model{Name: "ok", PeakOps: 512, BWConfig: 16, ConcurrentConfig: true}
	if got := ok.Utilization(1 << 20); got != 1 {
		t.Errorf("saturated Utilization = %v, want 1", got)
	}
}

// TestCurveAndSurfaceRangeGuards: sampling with iocMin <= 0 used to feed
// math.Log(0) = -Inf into every coordinate. A non-positive minimum is now
// clamped below the maximum; a non-positive maximum yields an empty
// series/surface.
func TestCurveAndSurfaceRangeGuards(t *testing.T) {
	m := roofline.Model{Name: "g", PeakOps: 512, BWConfig: 16, BWMemory: 64}
	for _, s := range []roofline.Series{
		m.CurveSequential(0, 1024, 8),
		m.CurveConcurrent(-3, 1024, 8),
	} {
		if len(s.Points) != 8 {
			t.Fatalf("%s: clamped curve has %d points, want 8", s.Name, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.IOC <= 0 || !finite(pt.IOC) || !finite(pt.Perf) {
				t.Errorf("%s: clamped curve produced point (%v, %v)", s.Name, pt.IOC, pt.Perf)
			}
		}
	}
	if s := m.CurveSequential(1, 0, 8); len(s.Points) != 0 {
		t.Errorf("curve with non-positive max has %d points, want 0", len(s.Points))
	}

	surf := m.Surface(0, 64, -1, 64, 4)
	if len(surf) != 16 {
		t.Fatalf("clamped surface has %d rows, want 16", len(surf))
	}
	for _, row := range surf {
		if !finite(row[0]) || !finite(row[1]) || !finite(row[2]) {
			t.Errorf("clamped surface row %v is not finite", row)
		}
	}
	if surf := m.Surface(1, 0, 1, 64, 4); len(surf) != 0 {
		t.Errorf("surface with non-positive max has %d rows, want 0", len(surf))
	}
}

// TestAsciiPlotZeroPoint is the satellite regression test: rendering a
// series that contains a zero (or negative) point must neither panic nor
// scatter characters at int(NaN) grid positions, and plots whose axis
// minima are non-positive must still render finite output.
func TestAsciiPlotZeroPoint(t *testing.T) {
	p := roofline.NewAsciiPlot(32, 8)
	p.AddCurve(roofline.Series{Name: "seq", Points: []roofline.Point{
		{IOC: 0, Perf: 100},   // zero intensity: skipped
		{IOC: 16, Perf: 0},    // zero performance: skipped
		{IOC: -4, Perf: -4},   // negative: skipped
		{IOC: 256, Perf: 128}, // valid: plotted
	}})
	p.AddPoints(roofline.Series{Name: "meas", Points: []roofline.Point{
		{IOC: 0, Perf: 0},
		{IOC: 1024, Perf: 64},
	}})
	out := p.Render()
	if !strings.Contains(out, "s") || !strings.Contains(out, "1") {
		t.Fatalf("valid points missing from render:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("render leaked NaN:\n%s", out)
	}

	// Degenerate axis bounds (XMin = 0 would be math.Log(0) = -Inf in the
	// mapping) must not panic and must still place in-range points.
	p2 := roofline.NewAsciiPlot(32, 8)
	p2.XMin, p2.YMin = 0, -1
	p2.AddCurve(roofline.Series{Name: "", Points: []roofline.Point{{IOC: 64, Perf: 64}}})
	out2 := p2.Render()
	if !strings.Contains(out2, "legend: ?=") {
		t.Fatalf("empty curve name missing '?' legend fallback:\n%s", out2)
	}
}
