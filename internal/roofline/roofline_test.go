package roofline_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"configwall/internal/roofline"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProcessorRooflineEq1(t *testing.T) {
	// Memory-bound region: P = BW * I.
	if got := roofline.Processor(512, 16, 4); got != 64 {
		t.Errorf("Processor(512,16,4) = %v, want 64", got)
	}
	// Compute-bound region: P = peak.
	if got := roofline.Processor(512, 16, 1024); got != 512 {
		t.Errorf("Processor(512,16,1024) = %v, want 512", got)
	}
	// Exactly at the ridge.
	if got := roofline.Processor(512, 16, 32); got != 512 {
		t.Errorf("Processor at ridge = %v, want 512", got)
	}
}

func TestConcurrentRooflineEq2(t *testing.T) {
	if got := roofline.Concurrent(512, 1.77, 100); !approx(got, 177, 0.5) {
		t.Errorf("Concurrent = %v, want ~177", got)
	}
	if got := roofline.Concurrent(512, 1.77, 1e6); got != 512 {
		t.Errorf("Concurrent saturates at peak, got %v", got)
	}
}

func TestSequentialRooflineEq3PaperNumbers(t *testing.T) {
	// Paper §4.6: BW = 16/9 B/cy, I_OC = 204.8 ops/B -> ~41.5% of 512.
	bw := 16.0 / 9.0
	got := roofline.Sequential(512, bw, 204.8) / 512
	if !approx(got, 0.4156, 0.002) {
		t.Errorf("Eq.3 utilization = %.4f, want ~0.4156 (paper 41.49%%)", got)
	}
	// With effective bandwidth 0.913 -> ~26.7%.
	gotEff := roofline.Sequential(512, 0.913, 204.8) / 512
	if !approx(gotEff, 0.2674, 0.002) {
		t.Errorf("Eq.3 effective utilization = %.4f, want ~0.267 (paper 26.78%%)", gotEff)
	}
}

func TestEffectiveConfigBWEq4(t *testing.T) {
	// Paper §4.6: 2560 bytes over 935 instructions x 3 cycles = ~0.913.
	got := roofline.EffectiveConfigBW(2560, 775*3, 160*3)
	if !approx(got, 0.9126, 0.001) {
		t.Errorf("EffectiveConfigBW = %v, want ~0.913", got)
	}
	if !math.IsInf(roofline.EffectiveConfigBW(100, 0, 0), 1) {
		t.Error("zero time must give infinite bandwidth")
	}
}

func TestCombinedEq5(t *testing.T) {
	// Config term limits.
	if got := roofline.Combined(512, 100, 100, 1, 10); got != 10 {
		t.Errorf("Combined = %v, want 10 (config bound)", got)
	}
	// Memory term limits.
	if got := roofline.Combined(512, 2, 10, 100, 1000); got != 20 {
		t.Errorf("Combined = %v, want 20 (memory bound)", got)
	}
	// Peak limits.
	if got := roofline.Combined(512, 100, 100, 100, 100); got != 512 {
		t.Errorf("Combined = %v, want 512 (compute bound)", got)
	}
}

func TestKneeAndClassify(t *testing.T) {
	if got := roofline.Knee(512, 2); got != 256 {
		t.Errorf("Knee = %v, want 256", got)
	}
	if roofline.Classify(512, 2, 100) != roofline.ConfigBound {
		t.Error("left of knee must be config bound")
	}
	if roofline.Classify(512, 2, 1000) != roofline.ComputeBound {
		t.Error("right of knee must be compute bound")
	}
	if roofline.ClassifyCombined(512, 1, 10, 100, 1000) != roofline.MemoryBound {
		t.Error("memory-limited workload misclassified")
	}
	for _, b := range []roofline.Bound{roofline.ComputeBound, roofline.ConfigBound, roofline.MemoryBound} {
		if b.String() == "" {
			t.Error("Bound.String empty")
		}
	}
}

// TestSequentialProperties checks the paper's §4.3 analytical claims with
// property-based testing:
//   - sequential < concurrent everywhere (config cycles are unavoidable),
//   - sequential approaches concurrent asymptotically,
//   - the largest gap is at the knee point, where sequential = peak/2.
func TestSequentialProperties(t *testing.T) {
	prop := func(rawPeak, rawBW, rawIOC uint16) bool {
		peak := float64(rawPeak%1000) + 1
		bw := float64(rawBW%100)/10 + 0.1
		ioc := float64(rawIOC%10000) + 0.5
		seq := roofline.Sequential(peak, bw, ioc)
		conc := roofline.Concurrent(peak, bw, ioc)
		if seq >= conc {
			return false
		}
		// At the knee, sequential is exactly half of peak.
		knee := roofline.Knee(peak, bw)
		atKnee := roofline.Sequential(peak, bw, knee)
		return approx(atKnee, peak/2, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMonotonicityProperty: attainable performance never decreases with
// higher intensity or bandwidth.
func TestMonotonicityProperty(t *testing.T) {
	prop := func(rawIOC1, rawIOC2 uint16) bool {
		a := float64(rawIOC1%5000) + 1
		b := float64(rawIOC2%5000) + 1
		lo, hi := math.Min(a, b), math.Max(a, b)
		return roofline.Sequential(512, 1.5, lo) <= roofline.Sequential(512, 1.5, hi)+1e-9 &&
			roofline.Concurrent(512, 1.5, lo) <= roofline.Concurrent(512, 1.5, hi)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestModelHelpers(t *testing.T) {
	m := roofline.Model{Name: "m", PeakOps: 512, BWConfig: 2, BWMemory: 32}
	// Sequential configuration approaches peak only asymptotically (§4.3).
	if got := m.Attainable(1e9); got >= 512 || got < 511.9 {
		t.Errorf("sequential model at huge I_OC = %v, want just below 512", got)
	}
	mc := m
	mc.ConcurrentConfig = true
	if mc.Attainable(256) != 512 {
		t.Error("concurrent model at knee must hit peak")
	}
	if m.Attainable(256) >= mc.Attainable(256) {
		t.Error("sequential must trail concurrent at the knee")
	}
	if got := m.AttainableWithBW(1, 256); got >= m.Attainable(256) {
		t.Error("halving bandwidth must reduce attainable performance")
	}
	if u := m.Utilization(1e9); !approx(u, 1, 1e-5) {
		t.Errorf("utilization at huge I_OC = %v, want ~1", u)
	}
	if !strings.Contains(m.String(), "knee") {
		t.Error("String should mention the knee")
	}
}

func TestCurvesAndSurface(t *testing.T) {
	m := roofline.Model{Name: "m", PeakOps: 512, BWConfig: 2, BWMemory: 32}
	seq := m.CurveSequential(1, 1024, 16)
	conc := m.CurveConcurrent(1, 1024, 16)
	if len(seq.Points) != 16 || len(conc.Points) != 16 {
		t.Fatalf("curve lengths = %d/%d, want 16", len(seq.Points), len(conc.Points))
	}
	for i := range seq.Points {
		if seq.Points[i].Perf >= conc.Points[i].Perf {
			t.Errorf("sequential above concurrent at I_OC %.2f", seq.Points[i].IOC)
		}
	}
	surf := m.Surface(1, 64, 1, 64, 5)
	if len(surf) != 25 {
		t.Fatalf("surface cells = %d, want 25", len(surf))
	}
	for _, cell := range surf {
		if cell[2] > m.PeakOps {
			t.Error("surface exceeds peak")
		}
	}
}

func TestAsciiPlotRenders(t *testing.T) {
	m := roofline.Model{Name: "m", PeakOps: 512, BWConfig: 2}
	p := roofline.NewAsciiPlot(40, 10)
	p.AddCurve(m.CurveSequential(1, 16384, 40))
	p.AddCurve(m.CurveConcurrent(1, 16384, 40))
	p.AddPoints(roofline.Series{Name: "meas", Points: []roofline.Point{{IOC: 100, Perf: 100}}})
	out := p.Render()
	if !strings.Contains(out, "legend") {
		t.Error("plot missing legend")
	}
	if !strings.Contains(out, "1") {
		t.Error("plot missing measurement marker")
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Error("plot too short")
	}
}
