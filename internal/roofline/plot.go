package roofline

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders roofline curves and measurement points on a log-log
// character grid — the repository's stand-in for the paper's Figures 3, 4
// and 12. Curves draw with their first letter; points with '1'..'9'.
type AsciiPlot struct {
	Width, Height  int
	XMin, XMax     float64 // I_OC range (log scale)
	YMin, YMax     float64 // ops/cycle range (log scale)
	curves, points []Series
}

// NewAsciiPlot creates a plot with the given character-grid dimensions.
func NewAsciiPlot(width, height int) *AsciiPlot {
	return &AsciiPlot{Width: width, Height: height, XMin: 1, XMax: 1 << 14, YMin: 1, YMax: 2048}
}

// AddCurve adds a line series (drawn with the first letter of its name).
func (p *AsciiPlot) AddCurve(s Series) { p.curves = append(p.curves, s) }

// AddPoints adds a scatter series (drawn with digits by series order).
func (p *AsciiPlot) AddPoints(s Series) { p.points = append(p.points, s) }

// xCol maps a coordinate onto a grid column, or -1 when the value or the
// configured axis range cannot be log-mapped (math.Log of a non-positive
// value is NaN/-Inf, and int(NaN) is platform-dependent; a sentinel column
// is rejected by Render's bounds check instead).
func (p *AsciiPlot) xCol(x float64) int {
	xmin, xmax, ok := clampLogRange(p.XMin, p.XMax)
	if !ok || x <= 0 || xmin == xmax {
		return -1
	}
	f := (math.Log(x) - math.Log(xmin)) / (math.Log(xmax) - math.Log(xmin))
	if math.IsNaN(f) {
		return -1
	}
	return int(f * float64(p.Width-1))
}

// yRow maps a coordinate onto a grid row, with the same non-positive
// sanitization as xCol.
func (p *AsciiPlot) yRow(y float64) int {
	ymin, ymax, ok := clampLogRange(p.YMin, p.YMax)
	if !ok || y <= 0 || ymin == ymax {
		return -1
	}
	f := (math.Log(y) - math.Log(ymin)) / (math.Log(ymax) - math.Log(ymin))
	if math.IsNaN(f) {
		return -1
	}
	return (p.Height - 1) - int(f*float64(p.Height-1))
}

// Render draws the plot.
func (p *AsciiPlot) Render() string {
	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	set := func(x, y int, ch byte) {
		if x >= 0 && x < p.Width && y >= 0 && y < p.Height {
			grid[y][x] = ch
		}
	}
	for _, c := range p.curves {
		ch := byte('?')
		if len(c.Name) > 0 {
			ch = c.Name[0]
		}
		for _, pt := range c.Points {
			if pt.IOC <= 0 || pt.Perf <= 0 {
				continue
			}
			set(p.xCol(pt.IOC), p.yRow(pt.Perf), ch)
		}
	}
	for i, s := range p.points {
		ch := byte('1' + i)
		for _, pt := range s.Points {
			if pt.IOC <= 0 || pt.Perf <= 0 {
				continue
			}
			set(p.xCol(pt.IOC), p.yRow(pt.Perf), ch)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8.0f +%s\n", p.YMax, strings.Repeat("-", p.Width))
	for y := 0; y < p.Height; y++ {
		fmt.Fprintf(&sb, "%8s |%s\n", "", string(grid[y]))
	}
	fmt.Fprintf(&sb, "%8.0f +%s\n", p.YMin, strings.Repeat("-", p.Width))
	fmt.Fprintf(&sb, "%10s%-10.0f%*s%.0f  (I_OC, ops/byte; log-log)\n", "", p.XMin, p.Width-12, "", p.XMax)
	legend := []string{}
	for _, c := range p.curves {
		ch := byte('?')
		if len(c.Name) > 0 {
			ch = c.Name[0]
		}
		legend = append(legend, fmt.Sprintf("%c=%s", ch, c.Name))
	}
	for i, s := range p.points {
		legend = append(legend, fmt.Sprintf("%c=%s", byte('1'+i), s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "legend: %s\n", strings.Join(legend, "  "))
	}
	return sb.String()
}
