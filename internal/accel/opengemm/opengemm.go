// Package opengemm models an OpenGeMM-style GeMM accelerator: an 8x8 mesh
// of int8 dot-product units (8 MACs each, 1024 ops/cycle peak) controlled by
// a tiny in-order RISC-V host through CSRs, with *concurrent* configuration:
// CSR writes land in staging registers while the accelerator runs and are
// committed at launch, so configuration overlaps computation (paper §2.2,
// §6.2).
package opengemm

import (
	"encoding/binary"

	"configwall/internal/accel"
	"configwall/internal/mem"
)

// Name is the accelerator name used in accfg types and lowerings.
const Name = "opengemm"

// Mesh geometry: MeshRow x MeshCol processing elements, each computing a
// TileK-deep int8 dot product per cycle.
const (
	MeshRow = 8
	MeshCol = 8
	TileK   = 8
)

// PeakOpsPerCycle is the peak throughput: 8*8 PEs * 8 MACs * 2 ops
// (paper §6.2: 1024 ops/cycle).
const PeakOpsPerCycle = 2 * MeshRow * MeshCol * TileK

// CSR addresses of the configuration port. Each CSR is 32 bits = 4
// configuration bytes.
const (
	CsrPtrA uint32 = 0x3c0 + iota
	CsrPtrB
	CsrPtrC
	CsrM // row tiles (units of MeshRow)
	CsrK // reduction tiles (units of TileK)
	CsrN // column tiles (units of MeshCol)
	CsrStrideA
	CsrStrideB
	CsrStrideC
	CsrSubtractions // packed zero points for A and B
	CsrFlags        // output mode flags
	CsrLaunch       // write 1 to launch
	CsrBusy         // read-only: 1 while computing
	CsrPerfCounter  // read-only: busy cycles of the last job
)

// Fields maps accfg field names to CSR addresses; the accfg-to-CSR lowering
// and the workload builders share it.
var Fields = map[string]uint32{
	"ptr_a": CsrPtrA, "ptr_b": CsrPtrB, "ptr_c": CsrPtrC,
	"m": CsrM, "k": CsrK, "n": CsrN,
	"stride_a": CsrStrideA, "stride_b": CsrStrideB, "stride_c": CsrStrideC,
	"subtractions": CsrSubtractions, "flags": CsrFlags,
}

// FieldOrder lists the configuration fields in canonical issue order.
var FieldOrder = []string{
	"ptr_a", "ptr_b", "ptr_c", "m", "k", "n",
	"stride_a", "stride_b", "stride_c", "subtractions", "flags",
}

// CostParams tunes the GeMM core timing model.
type CostParams struct {
	// PipelineCycles is the fixed fill/drain latency per launch.
	PipelineCycles uint64
}

// DefaultCost returns the default timing model.
func DefaultCost() CostParams { return CostParams{PipelineCycles: 5} }

// Model is the simulated device state.
type Model struct {
	cost    CostParams
	staging map[uint32]uint32
	// Launches counts completed launches.
	Launches uint64
}

// New returns a fresh OpenGeMM model.
func New(cost CostParams) *Model {
	return &Model{cost: cost, staging: map[uint32]uint32{}}
}

// Name implements accel.Device.
func (m *Model) Name() string { return Name }

// Scheme implements accel.Device: OpenGeMM configures concurrently.
func (m *Model) Scheme() accel.Scheme { return accel.Concurrent }

// WriteConfig implements accel.Device: CSR writes stage the low 32 bits.
func (m *Model) WriteConfig(id uint32, lo, _ uint64) {
	m.staging[id] = uint32(lo)
}

// ConfigBytes implements accel.Device: 32-bit CSRs carry 4 bytes.
func (m *Model) ConfigBytes(uint32) uint64 { return 4 }

// IsLaunch implements accel.Device.
func (m *Model) IsLaunch(id uint32) bool { return id == CsrLaunch }

// IsFence implements accel.Device: OpenGeMM synchronizes by polling the
// busy CSR, not with a fence write.
func (m *Model) IsFence(uint32) bool { return false }

// StatusID implements accel.Device.
func (m *Model) StatusID() (uint32, bool) { return CsrBusy, true }

// Launch implements accel.Device: commits the staged configuration and
// executes C[m*8, n*8] (int32) = A[m*8, k*8] (int8) x B[k*8, n*8] (int8)
// with the configured byte strides.
func (m *Model) Launch(mm *mem.Memory) (accel.Launch, error) {
	mTiles := uint64(m.staging[CsrM])
	kTiles := uint64(m.staging[CsrK])
	nTiles := uint64(m.staging[CsrN])
	if mTiles == 0 || kTiles == 0 || nTiles == 0 {
		return accel.Launch{}, accel.ErrBadConfig(Name, "zero tile counts m=%d k=%d n=%d", mTiles, kTiles, nTiles)
	}
	a := uint64(m.staging[CsrPtrA])
	b := uint64(m.staging[CsrPtrB])
	c := uint64(m.staging[CsrPtrC])
	if a == 0 || b == 0 || c == 0 {
		return accel.Launch{}, accel.ErrBadConfig(Name, "null pointer a=%#x b=%#x c=%#x", a, b, c)
	}
	strideA := uint64(m.staging[CsrStrideA])
	strideB := uint64(m.staging[CsrStrideB])
	strideC := uint64(m.staging[CsrStrideC])
	subA := int32(int8(m.staging[CsrSubtractions]))
	subB := int32(int8(m.staging[CsrSubtractions] >> 8))

	rows := int(mTiles) * MeshRow
	cols := int(nTiles) * MeshCol
	depth := int(kTiles) * TileK

	// Row-buffered fast path (see the Gemmini model for the full
	// rationale): hoisted per-row bounds checks via mem.Region, raw-slice
	// inner loops, identical per-element accumulation order (x ascending),
	// and bulk traffic accounting matching the per-access totals of the
	// element-at-a-time loop bit for bit.
	accRow := make([]int32, cols)
	for r := 0; r < rows; r++ {
		for cc := range accRow {
			accRow[cc] = 0
		}
		arow := mm.Region(a+uint64(r)*strideA, uint64(depth))
		for x := 0; x < depth; x++ {
			brow := mm.Region(b+uint64(x)*strideB, uint64(cols))
			av := int32(int8(arow[x])) - subA
			if av == 0 {
				continue // contributes exactly 0 to every accumulator
			}
			for cc, bv := range brow {
				accRow[cc] += av * (int32(int8(bv)) - subB)
			}
		}
		crow := mm.Region(c+uint64(r)*strideC, uint64(cols)*4)
		for cc, acc := range accRow {
			binary.LittleEndian.PutUint32(crow[4*cc:], uint32(acc))
		}
	}
	elems := uint64(rows) * uint64(cols)
	mm.AddTraffic(2*elems*uint64(depth), 4*elems)

	ops := 2 * uint64(rows) * uint64(cols) * uint64(depth)
	cycles := mTiles*nTiles*kTiles + m.cost.PipelineCycles
	m.Launches++
	return accel.Launch{Ops: ops, Cycles: cycles}, nil
}
