package opengemm_test

import (
	"testing"

	"configwall/internal/accel"
	"configwall/internal/accel/opengemm"
	"configwall/internal/mem"
	"configwall/internal/workload"
)

func configure(m *opengemm.Model, vals map[uint32]uint32) {
	for addr, v := range vals {
		m.WriteConfig(addr, uint64(v), 0)
	}
}

func TestDeviceProperties(t *testing.T) {
	m := opengemm.New(opengemm.DefaultCost())
	if m.Name() != "opengemm" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Scheme() != accel.Concurrent {
		t.Error("opengemm must be concurrently configured")
	}
	if !m.IsLaunch(opengemm.CsrLaunch) || m.IsLaunch(opengemm.CsrPtrA) {
		t.Error("IsLaunch wrong")
	}
	if m.IsFence(opengemm.CsrLaunch) {
		t.Error("opengemm has no fence id")
	}
	id, ok := m.StatusID()
	if !ok || id != opengemm.CsrBusy {
		t.Error("StatusID must be the busy CSR")
	}
	if m.ConfigBytes(opengemm.CsrPtrA) != 4 {
		t.Errorf("ConfigBytes = %d, want 4 (32-bit CSR)", m.ConfigBytes(opengemm.CsrPtrA))
	}
}

func TestFieldMapCoversOrder(t *testing.T) {
	if len(opengemm.FieldOrder) != len(opengemm.Fields) {
		t.Fatalf("FieldOrder has %d entries, Fields has %d", len(opengemm.FieldOrder), len(opengemm.Fields))
	}
	seen := map[uint32]bool{}
	for _, name := range opengemm.FieldOrder {
		addr, ok := opengemm.Fields[name]
		if !ok {
			t.Errorf("FieldOrder entry %q missing from Fields", name)
		}
		if seen[addr] {
			t.Errorf("CSR %#x mapped twice", addr)
		}
		seen[addr] = true
	}
}

func TestLaunchComputesMatmul(t *testing.T) {
	const n = 16
	mm := mem.New(1 << 20)
	a := make([]int8, n*n)
	b := make([]int8, n*n)
	workload.FillMatrix(a, n, 3)
	workload.FillMatrix(b, n, 4)
	const aBase, bBase, cBase = 0x1000, 0x2000, 0x4000
	for i := range a {
		mm.Write8(aBase+uint64(i), uint8(a[i]))
		mm.Write8(bBase+uint64(i), uint8(b[i]))
	}
	dev := opengemm.New(opengemm.DefaultCost())
	configure(dev, map[uint32]uint32{
		opengemm.CsrPtrA: aBase, opengemm.CsrPtrB: bBase, opengemm.CsrPtrC: cBase,
		opengemm.CsrM: n / 8, opengemm.CsrK: n / 8, opengemm.CsrN: n / 8,
		opengemm.CsrStrideA: n, opengemm.CsrStrideB: n, opengemm.CsrStrideC: 4 * n,
	})
	job, err := dev.Launch(mm)
	if err != nil {
		t.Fatal(err)
	}
	if job.Ops != 2*n*n*n {
		t.Errorf("Ops = %d, want %d", job.Ops, 2*n*n*n)
	}
	golden := workload.MatmulInt8(a, b, n)
	for i, want := range golden {
		if got := int32(mm.Read32(cBase + uint64(4*i))); got != want {
			t.Fatalf("C[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestLaunchTrafficCounters pins the traffic accounting of the
// row-buffered fast path to the per-access totals of the
// element-at-a-time model: one A and one B byte per MAC, 4 C bytes per
// output element.
func TestLaunchTrafficCounters(t *testing.T) {
	const n = 16
	mm := mem.New(1 << 20)
	const aBase, bBase, cBase = 0x1000, 0x2000, 0x4000
	dev := opengemm.New(opengemm.DefaultCost())
	configure(dev, map[uint32]uint32{
		opengemm.CsrPtrA: aBase, opengemm.CsrPtrB: bBase, opengemm.CsrPtrC: cBase,
		opengemm.CsrM: n / 8, opengemm.CsrK: n / 8, opengemm.CsrN: n / 8,
		opengemm.CsrStrideA: n, opengemm.CsrStrideB: n, opengemm.CsrStrideC: 4 * n,
	})
	mm.ResetCounters()
	if _, err := dev.Launch(mm); err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * n * n * n); mm.BytesRead != want {
		t.Errorf("BytesRead = %d, want %d", mm.BytesRead, want)
	}
	if want := uint64(4 * n * n); mm.BytesWritten != want {
		t.Errorf("BytesWritten = %d, want %d", mm.BytesWritten, want)
	}
}

func TestZeroPointSubtraction(t *testing.T) {
	const n = 8
	mm := mem.New(1 << 16)
	const aBase, bBase, cBase = 0x100, 0x200, 0x400
	// A = 3 everywhere, B = 5 everywhere, zero points a0=3, b0=5:
	// (3-3)*(5-5) summed = 0.
	for i := 0; i < n*n; i++ {
		mm.Write8(aBase+uint64(i), 3)
		mm.Write8(bBase+uint64(i), 5)
	}
	dev := opengemm.New(opengemm.DefaultCost())
	configure(dev, map[uint32]uint32{
		opengemm.CsrPtrA: aBase, opengemm.CsrPtrB: bBase, opengemm.CsrPtrC: cBase,
		opengemm.CsrM: 1, opengemm.CsrK: 1, opengemm.CsrN: 1,
		opengemm.CsrStrideA: n, opengemm.CsrStrideB: n, opengemm.CsrStrideC: 4 * n,
		opengemm.CsrSubtractions: 3 | 5<<8,
	})
	if _, err := dev.Launch(mm); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n*n; i++ {
		if got := int32(mm.Read32(cBase + uint64(4*i))); got != 0 {
			t.Fatalf("C[%d] = %d, want 0 with matching zero points", i, got)
		}
	}
}

func TestStagingSemantics(t *testing.T) {
	// Writes after a launch must not disturb the snapshot taken at launch
	// time in the returned job, but apply to the next launch.
	const n = 8
	mm := mem.New(1 << 16)
	const aBase, bBase, c1, c2 = 0x100, 0x200, 0x400, 0x800
	mm.Write8(aBase, 1)
	mm.Write8(bBase, 1)
	dev := opengemm.New(opengemm.DefaultCost())
	configure(dev, map[uint32]uint32{
		opengemm.CsrPtrA: aBase, opengemm.CsrPtrB: bBase, opengemm.CsrPtrC: c1,
		opengemm.CsrM: 1, opengemm.CsrK: 1, opengemm.CsrN: 1,
		opengemm.CsrStrideA: n, opengemm.CsrStrideB: n, opengemm.CsrStrideC: 4 * n,
	})
	if _, err := dev.Launch(mm); err != nil {
		t.Fatal(err)
	}
	// Retarget C and launch again.
	dev.WriteConfig(opengemm.CsrPtrC, c2, 0)
	if _, err := dev.Launch(mm); err != nil {
		t.Fatal(err)
	}
	if got := int32(mm.Read32(c1)); got != 1 {
		t.Errorf("first output = %d, want 1", got)
	}
	if got := int32(mm.Read32(c2)); got != 1 {
		t.Errorf("second output = %d, want 1", got)
	}
	if dev.Launches != 2 {
		t.Errorf("Launches = %d, want 2", dev.Launches)
	}
}

func TestLaunchErrors(t *testing.T) {
	mm := mem.New(1 << 12)
	t.Run("zero tiles", func(t *testing.T) {
		dev := opengemm.New(opengemm.DefaultCost())
		configure(dev, map[uint32]uint32{opengemm.CsrPtrA: 1, opengemm.CsrPtrB: 1, opengemm.CsrPtrC: 1})
		if _, err := dev.Launch(mm); err == nil {
			t.Error("expected error for zero tile counts")
		}
	})
	t.Run("null pointer", func(t *testing.T) {
		dev := opengemm.New(opengemm.DefaultCost())
		configure(dev, map[uint32]uint32{opengemm.CsrM: 1, opengemm.CsrK: 1, opengemm.CsrN: 1})
		if _, err := dev.Launch(mm); err == nil {
			t.Error("expected error for null pointers")
		}
	})
}

func TestCycleModel(t *testing.T) {
	mm := mem.New(1 << 20)
	dev := opengemm.New(opengemm.CostParams{PipelineCycles: 5})
	configure(dev, map[uint32]uint32{
		opengemm.CsrPtrA: 0x100, opengemm.CsrPtrB: 0x200, opengemm.CsrPtrC: 0x400,
		opengemm.CsrM: 1, opengemm.CsrK: 4, opengemm.CsrN: 1,
		opengemm.CsrStrideA: 64, opengemm.CsrStrideB: 64, opengemm.CsrStrideC: 256,
	})
	job, err := dev.Launch(mm)
	if err != nil {
		t.Fatal(err)
	}
	if job.Cycles != 1*1*4+5 {
		t.Errorf("Cycles = %d, want 9 (m*n*k + pipeline)", job.Cycles)
	}
	// Peak check: ops/cycles can never exceed the peak throughput.
	if float64(job.Ops)/float64(job.Cycles) > opengemm.PeakOpsPerCycle {
		t.Error("cycle model exceeds peak throughput")
	}
}
