// Package gemmini models a Gemmini-style weight-stationary systolic-array
// matrix-multiplication accelerator (paper §2.4): a 16x16 array of int8 MAC
// units driven by a Rocket-class RV64 host through RoCC custom instructions,
// with *sequential* configuration — the accelerator cannot be reconfigured
// while running, and the final instruction of the configuration sequence
// implicitly launches the computation ("launch-semantic" configuration).
package gemmini

import (
	"encoding/binary"
	"fmt"

	"configwall/internal/accel"
	"configwall/internal/mem"
)

// Name is the accelerator name used in accfg types and lowerings.
const Name = "gemmini"

// Dim is the systolic array dimension: DimxDim MACs.
const Dim = 16

// PeakOpsPerCycle is the peak throughput: Dim*Dim MACs, two ops each
// (paper §4.6: 16*16*2 = 512 ops/cycle).
const PeakOpsPerCycle = 2 * Dim * Dim

// RoCC funct7 values of the simulated gemmini_loop_ws instruction sequence.
// Each instruction carries two 64-bit registers = 16 configuration bytes.
// The sequence mirrors the granularity of Gemmini's real configuration
// flow: per-operand address/stride/scratchpad instructions and per-channel
// DMA configuration, which is what makes the weight-stationary kernel cost
// on the order of twenty RoCC instructions per invocation (§6.1).
const (
	FnConfigEx      uint32 = iota // flags: act, transposes, output modes
	FnConfigAcc                   // accumulator scale / accumulate mode
	FnConfigBounds                // I, J, K tile counts
	FnConfigPads                  // pad_I, pad_J, pad_K
	FnConfigAddrA                 // main-memory address of A
	FnConfigAddrB                 // main-memory address of B
	FnConfigAddrD                 // main-memory address of D
	FnConfigAddrC                 // main-memory address of C
	FnConfigStrideA               // row stride of A
	FnConfigStrideB               // row stride of B
	FnConfigStrideD               // row stride of D
	FnConfigStrideC               // row stride of C
	FnConfigSpadA                 // scratchpad base for A tiles (cost-only)
	FnConfigSpadB                 // scratchpad base for B tiles (cost-only)
	FnConfigSpadD                 // scratchpad base for D tiles (cost-only)
	FnConfigSpadC                 // scratchpad base for C tiles (cost-only)
	FnConfigMvin0                 // DMA load channel 0 shape (cost-only)
	FnConfigMvin1                 // DMA load channel 1 shape (cost-only)
	FnConfigMvin2                 // DMA load channel 2 shape (cost-only)
	FnConfigMvout                 // DMA store shape (cost-only)
	FnLoopWS                      // launch-semantic: starts the computation
	FnFence                       // synchronization fence: host blocks until idle
)

// FieldSlot describes where one accfg field lives inside an instruction's
// register pair.
type FieldSlot struct {
	Field  string
	Reg    int // 0 = rs1, 1 = rs2
	Offset uint
	Bits   uint
}

// ConfigInstr describes one instruction of the configuration sequence.
type ConfigInstr struct {
	Funct7 uint32
	Name   string
	Slots  []FieldSlot
	// Launch marks the launch-semantic instruction.
	Launch bool
}

// Sequence is the full gemmini_loop_ws configuration sequence in issue
// order. The accfg-to-RoCC lowering walks this table to emit instructions
// and the simulator walks it to decode register writes; Table 1 of the
// paper is regenerated from it.
var Sequence = []ConfigInstr{
	{Funct7: FnConfigEx, Name: "config_ex", Slots: []FieldSlot{
		{"act", 0, 0, 6},
		{"A_transpose", 0, 6, 1},
		{"B_transpose", 0, 7, 1},
		{"full_C", 1, 0, 1},
		{"low_D", 1, 1, 1},
	}},
	{Funct7: FnConfigAcc, Name: "config_acc", Slots: []FieldSlot{
		{"ex_accumulate", 0, 0, 1},
		{"acc_scale", 1, 0, 32},
	}},
	{Funct7: FnConfigBounds, Name: "config_bounds", Slots: []FieldSlot{
		{"I", 0, 0, 16},
		{"J", 0, 16, 16},
		{"K", 1, 0, 16},
	}},
	{Funct7: FnConfigPads, Name: "config_pads", Slots: []FieldSlot{
		{"pad_I", 0, 0, 16},
		{"pad_J", 0, 16, 16},
		{"pad_K", 1, 0, 16},
	}},
	{Funct7: FnConfigAddrA, Name: "config_addr_a", Slots: []FieldSlot{{"A", 0, 0, 64}}},
	{Funct7: FnConfigAddrB, Name: "config_addr_b", Slots: []FieldSlot{{"B", 0, 0, 64}}},
	{Funct7: FnConfigAddrD, Name: "config_addr_d", Slots: []FieldSlot{{"D", 0, 0, 64}}},
	{Funct7: FnConfigAddrC, Name: "config_addr_c", Slots: []FieldSlot{{"C", 0, 0, 64}}},
	{Funct7: FnConfigStrideA, Name: "config_stride_a", Slots: []FieldSlot{{"stride_A", 0, 0, 64}}},
	{Funct7: FnConfigStrideB, Name: "config_stride_b", Slots: []FieldSlot{{"stride_B", 0, 0, 64}}},
	{Funct7: FnConfigStrideD, Name: "config_stride_d", Slots: []FieldSlot{{"stride_D", 0, 0, 64}}},
	{Funct7: FnConfigStrideC, Name: "config_stride_c", Slots: []FieldSlot{{"stride_C", 0, 0, 64}}},
	{Funct7: FnConfigSpadA, Name: "config_spad_a", Slots: []FieldSlot{{"spad_A", 0, 0, 32}}},
	{Funct7: FnConfigSpadB, Name: "config_spad_b", Slots: []FieldSlot{{"spad_B", 0, 0, 32}}},
	{Funct7: FnConfigSpadD, Name: "config_spad_d", Slots: []FieldSlot{{"spad_D", 0, 0, 32}}},
	{Funct7: FnConfigSpadC, Name: "config_spad_c", Slots: []FieldSlot{{"spad_C", 0, 0, 32}}},
	{Funct7: FnConfigMvin0, Name: "config_mvin0", Slots: []FieldSlot{
		{"mvin0_rows", 0, 0, 16},
		{"mvin0_cols", 0, 16, 16},
		{"mvin0_stride", 1, 0, 32},
	}},
	{Funct7: FnConfigMvin1, Name: "config_mvin1", Slots: []FieldSlot{
		{"mvin1_rows", 0, 0, 16},
		{"mvin1_cols", 0, 16, 16},
		{"mvin1_stride", 1, 0, 32},
	}},
	{Funct7: FnConfigMvin2, Name: "config_mvin2", Slots: []FieldSlot{
		{"mvin2_rows", 0, 0, 16},
		{"mvin2_cols", 0, 16, 16},
		{"mvin2_stride", 1, 0, 32},
	}},
	{Funct7: FnConfigMvout, Name: "config_mvout", Slots: []FieldSlot{
		{"mvout_rows", 0, 0, 16},
		{"mvout_cols", 0, 16, 16},
		{"mvout_stride", 1, 0, 32},
	}},
	{Funct7: FnLoopWS, Name: "loop_ws", Launch: true},
}

// FieldBits returns every configurable field with its bit width, in
// sequence order — the data behind the paper's Table 1.
func FieldBits() []struct {
	Field string
	Bits  uint
} {
	var out []struct {
		Field string
		Bits  uint
	}
	for _, ci := range Sequence {
		for _, s := range ci.Slots {
			out = append(out, struct {
				Field string
				Bits  uint
			}{s.Field, s.Bits})
		}
	}
	return out
}

// FieldMeanings maps each field to the Table 1 "meaning" column.
var FieldMeanings = map[string]string{
	"A": "Address in main memory of matrix A", "B": "Address in main memory of matrix B",
	"D": "Address in main memory of matrix D (bias)", "C": "Address in main memory of matrix C",
	"I": "Size of the output in row tiles", "J": "Size of the output in column tiles",
	"K":     "Size of the reduction dimension in tiles",
	"pad_I": "Padding applied to I", "pad_J": "Padding applied to J", "pad_K": "Padding applied to K",
	"stride_A": "Row stride to access A in memory", "stride_B": "Row stride to access B in memory",
	"stride_D": "Row stride to access D in memory", "stride_C": "Row stride to access C in memory",
	"act":         "Activation function applied on the output",
	"A_transpose": "Whether input matrix A is transposed", "B_transpose": "Whether input matrix B is transposed",
	"full_C": "Whether C is stored at full (32-bit) precision", "low_D": "Whether D is stored at low (8-bit) precision",
	"ex_accumulate": "Whether the execute pipeline accumulates into the output",
	"acc_scale":     "Scale factor applied when reading the accumulator",
	"spad_A":        "Scratchpad base address for A tiles", "spad_B": "Scratchpad base address for B tiles",
	"spad_D": "Scratchpad base address for D tiles", "spad_C": "Scratchpad base address for C tiles",
	"mvin0_rows": "DMA load channel 0 rows per transfer", "mvin0_cols": "DMA load channel 0 columns per transfer",
	"mvin0_stride": "DMA load channel 0 stride",
	"mvin1_rows":   "DMA load channel 1 rows per transfer", "mvin1_cols": "DMA load channel 1 columns per transfer",
	"mvin1_stride": "DMA load channel 1 stride",
	"mvin2_rows":   "DMA load channel 2 rows per transfer", "mvin2_cols": "DMA load channel 2 columns per transfer",
	"mvin2_stride": "DMA load channel 2 stride",
	"mvout_rows":   "DMA store rows per transfer",
	"mvout_cols":   "DMA store columns per transfer", "mvout_stride": "DMA store stride",
}

// CostParams tunes the systolic-array timing model.
type CostParams struct {
	// StartupCycles is the fixed launch latency (decode + DMA kickoff).
	StartupCycles uint64
	// DrainCycles is the pipeline drain per output tile row.
	DrainCycles uint64
}

// DefaultCost returns the default timing model.
func DefaultCost() CostParams {
	return CostParams{StartupCycles: 80, DrainCycles: 16}
}

// Model is the simulated device state.
type Model struct {
	cost CostParams
	// regs holds the raw (rs1, rs2) pair last written per funct7.
	regs map[uint32][2]uint64
	// Launches counts completed launches.
	Launches uint64
}

// New returns a fresh Gemmini model with the given timing parameters.
func New(cost CostParams) *Model {
	return &Model{cost: cost, regs: map[uint32][2]uint64{}}
}

// Name implements accel.Device.
func (m *Model) Name() string { return Name }

// Scheme implements accel.Device: Gemmini configures sequentially.
func (m *Model) Scheme() accel.Scheme { return accel.Sequential }

// WriteConfig implements accel.Device.
func (m *Model) WriteConfig(id uint32, lo, hi uint64) {
	m.regs[id] = [2]uint64{lo, hi}
}

// ConfigBytes implements accel.Device: every RoCC instruction carries two
// 64-bit source registers.
func (m *Model) ConfigBytes(uint32) uint64 { return 16 }

// IsLaunch implements accel.Device.
func (m *Model) IsLaunch(id uint32) bool { return id == FnLoopWS }

// IsFence implements accel.Device.
func (m *Model) IsFence(id uint32) bool { return id == FnFence }

// StatusID implements accel.Device: Gemmini has no polled status port; the
// host uses the fence.
func (m *Model) StatusID() (uint32, bool) { return 0, false }

// field extracts a named field from the written registers per the Sequence
// descriptor.
func (m *Model) field(name string) uint64 {
	for _, ci := range Sequence {
		for _, s := range ci.Slots {
			if s.Field != name {
				continue
			}
			pair := m.regs[ci.Funct7]
			v := pair[s.Reg] >> s.Offset
			if s.Bits < 64 {
				v &= (1 << s.Bits) - 1
			}
			return v
		}
	}
	return 0
}

// Launch implements accel.Device: decodes the weight-stationary matmul
// C = A*B (+ D) and executes it functionally over memory.
//
// Matrix layout: A is (16*I)x(16*K) int8, B is (16*K)x(16*J) int8, D (when
// its address is nonzero) is (16*I)x(16*J) int32, C is (16*I)x(16*J) int8
// after the activation, all with the configured row strides in bytes.
func (m *Model) Launch(mm *mem.Memory) (accel.Launch, error) {
	i := m.field("I")
	j := m.field("J")
	k := m.field("K")
	if i == 0 || j == 0 || k == 0 {
		return accel.Launch{}, accel.ErrBadConfig(Name, "zero loop bounds I=%d J=%d K=%d", i, j, k)
	}
	if m.field("A_transpose") != 0 || m.field("B_transpose") != 0 {
		return accel.Launch{}, accel.ErrBadConfig(Name, "transposed operands not supported by this model")
	}
	a, b := m.field("A"), m.field("B")
	d, c := m.field("D"), m.field("C")
	strideA, strideB := m.field("stride_A"), m.field("stride_B")
	strideD, strideC := m.field("stride_D"), m.field("stride_C")
	act := m.field("act")
	if a == 0 || b == 0 || c == 0 {
		return accel.Launch{}, accel.ErrBadConfig(Name, "null matrix address A=%#x B=%#x C=%#x", a, b, c)
	}

	rows := int(i) * Dim
	cols := int(j) * Dim
	depth := int(k) * Dim

	// Row-buffered fast path: one hoisted bounds check per matrix row
	// (mem.Region) instead of one checked access per MAC operand, and the
	// inner loop runs over raw byte slices. The accumulation order per
	// output element — bias first, then x ascending — matches the
	// element-at-a-time loop exactly, so results are bit-identical; the
	// traffic counters are applied in bulk below with the per-access
	// totals of the naive loop, so the memory metrics are identical too.
	accRow := make([]int32, cols)
	for r := 0; r < rows; r++ {
		if d != 0 {
			drow := mm.Region(d+uint64(r)*strideD, uint64(cols)*4)
			for cc := range accRow {
				accRow[cc] = int32(binary.LittleEndian.Uint32(drow[4*cc:]))
			}
		} else {
			for cc := range accRow {
				accRow[cc] = 0
			}
		}
		arow := mm.Region(a+uint64(r)*strideA, uint64(depth))
		for x := 0; x < depth; x++ {
			brow := mm.Region(b+uint64(x)*strideB, uint64(cols))
			av := int32(int8(arow[x]))
			if av == 0 {
				continue // contributes exactly 0 to every accumulator
			}
			for cc, bv := range brow {
				accRow[cc] += av * int32(int8(bv))
			}
		}
		crow := mm.Region(c+uint64(r)*strideC, uint64(cols))
		for cc, acc := range accRow {
			crow[cc] = saturate(applyAct(acc, act))
		}
	}
	// Modeled traffic of the per-element loop: one A and one B byte per
	// MAC, a 4-byte bias read per output when D is configured, one C byte
	// per output.
	elems := uint64(rows) * uint64(cols)
	macs := elems * uint64(depth)
	read := 2 * macs
	if d != 0 {
		read += 4 * elems
	}
	mm.AddTraffic(read, elems)

	ops := 2 * uint64(rows) * uint64(cols) * uint64(depth)
	cycles := m.cost.StartupCycles + i*j*k*Dim + i*j*m.cost.DrainCycles
	m.Launches++
	return accel.Launch{Ops: ops, Cycles: cycles}, nil
}

func applyAct(v int32, act uint64) int32 {
	switch act {
	case 1: // ReLU
		if v < 0 {
			return 0
		}
	}
	return v
}

func saturate(v int32) uint8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return 0x80 // two's-complement -128
	}
	return uint8(int8(v))
}

// InstrFor returns the descriptor of the configuration instruction that
// carries the named field, or ok=false.
func InstrFor(field string) (ConfigInstr, bool) {
	for _, ci := range Sequence {
		for _, s := range ci.Slots {
			if s.Field == field {
				return ci, true
			}
		}
	}
	return ConfigInstr{}, false
}

// Table1 renders the paper's Table 1: field, meaning, bit width.
func Table1() string {
	out := fmt.Sprintf("%-14s %-55s %s\n", "Field", "Meaning", "Bits")
	for _, fb := range FieldBits() {
		out += fmt.Sprintf("%-14s %-55s %d\n", fb.Field, FieldMeanings[fb.Field], fb.Bits)
	}
	return out
}
