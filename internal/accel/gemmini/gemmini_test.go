package gemmini_test

import (
	"strings"
	"testing"
	"testing/quick"

	"configwall/internal/accel"
	"configwall/internal/accel/gemmini"
	"configwall/internal/mem"
	"configwall/internal/workload"
)

// writeFields packs field values into the model's registers per the
// Sequence descriptor, mimicking what the lowering + simulator do.
func writeFields(m *gemmini.Model, fields map[string]uint64) {
	for _, ci := range gemmini.Sequence {
		var rs [2]uint64
		any := false
		for _, s := range ci.Slots {
			v, ok := fields[s.Field]
			if !ok {
				continue
			}
			any = true
			if s.Bits < 64 {
				v &= (1 << s.Bits) - 1
			}
			rs[s.Reg] |= v << s.Offset
		}
		if any {
			m.WriteConfig(ci.Funct7, rs[0], rs[1])
		}
	}
}

func TestDeviceProperties(t *testing.T) {
	m := gemmini.New(gemmini.DefaultCost())
	if m.Name() != "gemmini" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Scheme() != accel.Sequential {
		t.Error("gemmini must be sequentially configured")
	}
	if !m.IsLaunch(gemmini.FnLoopWS) || m.IsLaunch(gemmini.FnConfigBounds) {
		t.Error("IsLaunch wrong")
	}
	if !m.IsFence(gemmini.FnFence) || m.IsFence(gemmini.FnLoopWS) {
		t.Error("IsFence wrong")
	}
	if _, ok := m.StatusID(); ok {
		t.Error("gemmini has no status CSR")
	}
	if m.ConfigBytes(0) != 16 {
		t.Errorf("ConfigBytes = %d, want 16", m.ConfigBytes(0))
	}
}

func TestSequenceDescriptorConsistency(t *testing.T) {
	seen := map[string]bool{}
	for _, ci := range gemmini.Sequence {
		for _, s := range ci.Slots {
			if seen[s.Field] {
				t.Errorf("field %q appears in two instructions", s.Field)
			}
			seen[s.Field] = true
			if s.Offset+s.Bits > 64 {
				t.Errorf("field %q overflows its register (%d+%d)", s.Field, s.Offset, s.Bits)
			}
			if _, ok := gemmini.FieldMeanings[s.Field]; !ok {
				t.Errorf("field %q missing a Table 1 meaning", s.Field)
			}
			ci2, ok := gemmini.InstrFor(s.Field)
			if !ok || ci2.Funct7 != ci.Funct7 {
				t.Errorf("InstrFor(%q) inconsistent", s.Field)
			}
		}
	}
	// No two slots of one instruction overlap.
	for _, ci := range gemmini.Sequence {
		for i, a := range ci.Slots {
			for _, b := range ci.Slots[i+1:] {
				if a.Reg != b.Reg {
					continue
				}
				aEnd := a.Offset + a.Bits
				bEnd := b.Offset + b.Bits
				if a.Offset < bEnd && b.Offset < aEnd {
					t.Errorf("fields %q and %q overlap in %s", a.Field, b.Field, ci.Name)
				}
			}
		}
	}
}

func TestTable1Content(t *testing.T) {
	tbl := gemmini.Table1()
	for _, field := range []string{"A", "B", "D", "C", "I", "J", "K", "pad_I", "stride_A", "act", "A_transpose"} {
		if !strings.Contains(tbl, field) {
			t.Errorf("Table 1 missing paper field %q", field)
		}
	}
	// Paper bit widths: addresses 64, sizes 16, act 6, transposes 1.
	for _, row := range []string{"64", "16", "6", "1"} {
		if !strings.Contains(tbl, row) {
			t.Errorf("Table 1 missing bit width %s", row)
		}
	}
}

// TestFieldPackRoundTripProperty: packing a value into its slot and decoding
// it back through the model yields the truncated value (testing/quick).
func TestFieldPackRoundTripProperty(t *testing.T) {
	prop := func(raw uint64, pick uint8) bool {
		fields := gemmini.FieldBits()
		f := fields[int(pick)%len(fields)]
		m := gemmini.New(gemmini.DefaultCost())
		want := raw
		if f.Bits < 64 {
			want &= (1 << f.Bits) - 1
		}
		writeFields(m, map[string]uint64{f.Field: raw})
		// Decode through a launch would need full config; use the packing
		// invariant instead: re-extract via the descriptor.
		ci, _ := gemmini.InstrFor(f.Field)
		var rs [2]uint64
		for _, s := range ci.Slots {
			if s.Field == f.Field {
				v := want
				rs[s.Reg] = v << s.Offset
				got := (rs[s.Reg] >> s.Offset)
				if s.Bits < 64 {
					got &= (1 << s.Bits) - 1
				}
				return got == want
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLaunchComputesMatmul(t *testing.T) {
	const n = 32
	mm := mem.New(1 << 20)
	a := make([]int8, n*n)
	b := make([]int8, n*n)
	workload.FillMatrix(a, n, 7)
	workload.FillMatrix(b, n, 8)
	const aBase, bBase, cBase = 0x1000, 0x2000, 0x3000
	for i := range a {
		mm.Write8(aBase+uint64(i), uint8(a[i]))
		mm.Write8(bBase+uint64(i), uint8(b[i]))
	}

	dev := gemmini.New(gemmini.DefaultCost())
	writeFields(dev, map[string]uint64{
		"A": aBase, "B": bBase, "C": cBase, "D": 0,
		"I": n / 16, "J": n / 16, "K": n / 16,
		"stride_A": n, "stride_B": n, "stride_C": n,
	})
	job, err := dev.Launch(mm)
	if err != nil {
		t.Fatal(err)
	}
	if job.Ops != 2*n*n*n {
		t.Errorf("Ops = %d, want %d", job.Ops, 2*n*n*n)
	}
	if job.Cycles == 0 {
		t.Error("Cycles must be positive")
	}
	golden := workload.MatmulInt8(a, b, n)
	for i, want := range golden {
		got := int8(mm.Read8(cBase + uint64(i)))
		if got != workload.SaturateInt8(want) {
			t.Fatalf("C[%d] = %d, want %d", i, got, workload.SaturateInt8(want))
		}
	}
	if dev.Launches != 1 {
		t.Errorf("Launches = %d, want 1", dev.Launches)
	}
}

// TestLaunchTrafficCounters pins the memory-traffic accounting of the
// row-buffered fast path to the per-access totals of the element-at-a-time
// model it replaced: one A byte and one B byte per MAC, a 4-byte bias read
// per output element when D is configured, one C byte per output element.
func TestLaunchTrafficCounters(t *testing.T) {
	const n = 32
	mm := mem.New(1 << 20)
	const aBase, bBase, dBase, cBase = 0x1000, 0x2000, 0x8000, 0x3000
	dev := gemmini.New(gemmini.DefaultCost())
	for _, withBias := range []bool{false, true} {
		fields := map[string]uint64{
			"A": aBase, "B": bBase, "C": cBase, "D": 0,
			"I": n / 16, "J": n / 16, "K": n / 16,
			"stride_A": n, "stride_B": n, "stride_C": n, "stride_D": 4 * n,
		}
		if withBias {
			fields["D"] = dBase
		}
		writeFields(dev, fields)
		mm.ResetCounters()
		if _, err := dev.Launch(mm); err != nil {
			t.Fatal(err)
		}
		wantRead := uint64(2 * n * n * n)
		if withBias {
			wantRead += 4 * n * n
		}
		if mm.BytesRead != wantRead {
			t.Errorf("bias=%v: BytesRead = %d, want %d", withBias, mm.BytesRead, wantRead)
		}
		if mm.BytesWritten != n*n {
			t.Errorf("bias=%v: BytesWritten = %d, want %d", withBias, mm.BytesWritten, n*n)
		}
	}
}

func TestLaunchWithBiasAndRelu(t *testing.T) {
	const n = 16
	mm := mem.New(1 << 20)
	const aBase, bBase, dBase, cBase = 0x1000, 0x2000, 0x3000, 0x5000
	// A = I (identity), B = -1 everywhere, D = +2 bias: C = relu(B + 2).
	for i := 0; i < n; i++ {
		mm.Write8(aBase+uint64(i*n+i), 1)
		for j := 0; j < n; j++ {
			mm.Write8(bBase+uint64(i*n+j), 0xff)
			mm.Write32(dBase+uint64(4*(i*n+j)), 2)
		}
	}
	dev := gemmini.New(gemmini.DefaultCost())
	writeFields(dev, map[string]uint64{
		"A": aBase, "B": bBase, "D": dBase, "C": cBase,
		"I": 1, "J": 1, "K": 1,
		"stride_A": n, "stride_B": n, "stride_D": 4 * n, "stride_C": n,
		"act": 1, // ReLU
	})
	if _, err := dev.Launch(mm); err != nil {
		t.Fatal(err)
	}
	// -1 + 2 = 1, relu(1) = 1.
	for i := 0; i < n*n; i++ {
		if got := int8(mm.Read8(cBase + uint64(i))); got != 1 {
			t.Fatalf("C[%d] = %d, want 1", i, got)
		}
	}
}

func TestLaunchErrors(t *testing.T) {
	mm := mem.New(1 << 16)
	t.Run("zero bounds", func(t *testing.T) {
		dev := gemmini.New(gemmini.DefaultCost())
		writeFields(dev, map[string]uint64{"A": 1, "B": 1, "C": 1})
		if _, err := dev.Launch(mm); err == nil {
			t.Error("expected error for zero I/J/K")
		}
	})
	t.Run("null address", func(t *testing.T) {
		dev := gemmini.New(gemmini.DefaultCost())
		writeFields(dev, map[string]uint64{"I": 1, "J": 1, "K": 1})
		if _, err := dev.Launch(mm); err == nil {
			t.Error("expected error for null matrix addresses")
		}
	})
	t.Run("transpose unsupported", func(t *testing.T) {
		dev := gemmini.New(gemmini.DefaultCost())
		writeFields(dev, map[string]uint64{
			"A": 0x100, "B": 0x200, "C": 0x300, "I": 1, "J": 1, "K": 1,
			"A_transpose": 1,
		})
		if _, err := dev.Launch(mm); err == nil {
			t.Error("expected error for transposed operand")
		}
	})
}

func TestCostModelScaling(t *testing.T) {
	mm := mem.New(1 << 22)
	run := func(tiles uint64) uint64 {
		dev := gemmini.New(gemmini.DefaultCost())
		writeFields(dev, map[string]uint64{
			"A": 0x1000, "B": 0x40000, "C": 0x80000,
			"I": tiles, "J": tiles, "K": 1,
			"stride_A": 64, "stride_B": 64, "stride_C": 64,
		})
		job, err := dev.Launch(mm)
		if err != nil {
			t.Fatal(err)
		}
		return job.Cycles
	}
	small, large := run(1), run(4)
	if large <= small {
		t.Errorf("cycles must grow with tile count: %d vs %d", small, large)
	}
}
