// Package accel defines the accelerator-side contract of the co-simulator:
// a configuration port (written by RoCC custom instructions or CSR writes),
// a launch trigger, and a busy/duration model. Two configuration schemes
// exist, matching the paper's taxonomy (§2.2):
//
//   - Sequential: the host stalls when it touches the accelerator while a
//     computation is in flight (Gemmini-style).
//   - Concurrent: configuration writes land in staging registers while the
//     accelerator runs; only launches and barriers synchronize
//     (OpenGeMM-style).
package accel

import (
	"fmt"

	"configwall/internal/mem"
)

// Scheme is the configuration scheme of a device (paper §2.2).
type Scheme int

// Configuration schemes.
const (
	// Sequential configuration: no configuration while running.
	Sequential Scheme = iota
	// Concurrent configuration: staged configuration while running.
	Concurrent
)

func (s Scheme) String() string {
	if s == Concurrent {
		return "concurrent"
	}
	return "sequential"
}

// Launch is the outcome of a decoded launch request.
type Launch struct {
	// Ops is the number of useful operations the job performs (MACs count
	// as two ops, following the paper).
	Ops uint64
	// Cycles is how long the accelerator stays busy.
	Cycles uint64
}

// Device is a simulated accelerator attached to the host.
type Device interface {
	// Name returns the accelerator name (matches the accfg dialect name).
	Name() string
	// Scheme returns the configuration scheme.
	Scheme() Scheme
	// WriteConfig handles one configuration write. id is the RoCC funct7
	// or the CSR address; lo/hi are the payload registers (hi is zero for
	// CSR-style single-word ports).
	WriteConfig(id uint32, lo, hi uint64)
	// ConfigBytes returns how many configuration bytes a write to id
	// carries (16 for RoCC instruction pairs, 4 for 32-bit CSRs).
	ConfigBytes(id uint32) uint64
	// IsLaunch reports whether a write to id triggers a computation
	// (launch-semantic configuration writes, paper §2.4).
	IsLaunch(id uint32) bool
	// IsFence reports whether a write to id is a synchronization fence
	// (host blocks until idle).
	IsFence(id uint32) bool
	// StatusID returns the id polled for busy status (CSR-style barriers);
	// ok=false when the device has no status port.
	StatusID() (id uint32, ok bool)
	// Launch snapshots the staged configuration and functionally executes
	// the job against memory, returning its cost.
	Launch(m *mem.Memory) (Launch, error)
}

// ErrBadConfig wraps configuration decode failures so the simulator can
// surface them with context.
func ErrBadConfig(device string, format string, args ...any) error {
	return fmt.Errorf("%s: bad configuration: %s", device, fmt.Sprintf(format, args...))
}
