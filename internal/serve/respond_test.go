package serve

// Gates for the pooled response path. The cached /v1/run fast path is one
// runner map lookup plus writeJSON; these tests pin (a) that writeJSON's
// body is byte-identical to the json.Marshal bodies it replaced, and
// (b) that its steady state allocates nothing.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"configwall/internal/core"
	"configwall/internal/sim"
)

// memResponseWriter is a reusable ResponseWriter: the header map and body
// capacity survive across requests, mirroring what net/http gives a handler
// from its own connection-scoped state.
type memResponseWriter struct {
	header http.Header
	body   []byte
	status int
}

func newMemResponseWriter() *memResponseWriter {
	return &memResponseWriter{header: make(http.Header, 4)}
}

func (w *memResponseWriter) Header() http.Header { return w.header }

func (w *memResponseWriter) Write(p []byte) (int, error) {
	w.body = append(w.body, p...)
	return len(p), nil
}

func (w *memResponseWriter) WriteHeader(code int) { w.status = code }

func (w *memResponseWriter) reset() { w.body = w.body[:0] }

func sampleResult() *core.Result {
	return &core.Result{
		Target:   "opengemm",
		Workload: "matmul",
		Pipeline: core.AllOptimizations,
		N:        64,
		Counters: sim.Counters{Cycles: 123456, HostInstrs: 7890, ConfigInstrs: 42},
		Verified: true,
		PeakOps:  512,
		PassStats: []string{
			"merge: 10 -> 8",
			"overlap: 8 -> 8",
		},
	}
}

// TestWriteJSONMatchesMarshal: clients parse response bodies; swapping the
// per-request json.Marshal for the pooled encoder must not change a byte.
func TestWriteJSONMatchesMarshal(t *testing.T) {
	res := sampleResult()
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	w := newMemResponseWriter()
	if err := writeJSON(w, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.body, want) {
		t.Errorf("writeJSON body differs from json.Marshal:\n got %s\nwant %s", w.body, want)
	}
	if got := w.header.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", got)
	}
}

// TestWriteJSONSteadyStateZeroAllocs is the cached-path allocation gate:
// once the responder pool and the writer's buffers are warm, encoding a
// Result must not allocate. Request parsing and routing sit outside this
// gate (URL query parsing inherently allocates in net/http); the gate
// covers everything this package owns on the cached path.
func TestWriteJSONSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	res := sampleResult()
	w := newMemResponseWriter()
	if err := writeJSON(w, res); err != nil { // warm the pool and buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		w.reset()
		if err := writeJSON(w, res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("pooled writeJSON allocated %v allocs/op, want 0", avg)
	}
}
