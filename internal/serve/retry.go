package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"configwall/internal/core"
)

// RetryPolicy drives the client's self-healing layer: capped exponential
// backoff with deterministic jitter, honoring server Retry-After hints.
// Only idempotent requests go through it — /v1/run is a memoized GET and
// /v1/sweep replays are deduplicated by cell index — so a retry can never
// double-apply anything; at worst it re-asks a question the server has
// already answered from cache.
//
// The zero value is usable and selects the defaults below.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries (first attempt included);
	// <= 0 selects 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. <= 0 selects 50ms.
	BaseDelay time.Duration
	// MaxDelay caps every sleep, including server Retry-After hints —
	// a hinted delay above the cap sleeps the cap, so one bad hint can
	// never wedge a campaign. <= 0 selects 2s.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic: equal seeds replay the exact
	// backoff sequence (the chaos harness depends on it). 0 is a valid
	// seed, not "random".
	Seed int64
	// Sleep replaces the delay function; nil selects a real
	// context-aware sleep. Tests inject instant sleeps here.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes every retry with the attempt number
	// (1-based, the attempt that just failed), the chosen delay and the
	// error being retried.
	OnRetry func(attempt int, delay time.Duration, err error)
}

const (
	defaultRetryAttempts  = 4
	defaultRetryBaseDelay = 50 * time.Millisecond
	defaultRetryMaxDelay  = 2 * time.Second
)

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return defaultRetryAttempts
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return defaultRetryBaseDelay
	}
	return p.BaseDelay
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return defaultRetryMaxDelay
	}
	return p.MaxDelay
}

// sleep waits for d or until ctx is done, whichever comes first.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// delay computes the wait before retry number `retry` (1-based): capped
// exponential backoff, deterministic jitter in [½, 1]× the backoff, and
// the server's Retry-After hint as a floor (still under the cap).
func (p RetryPolicy) delay(retry int, rng *rand.Rand, err error) time.Duration {
	d := p.base() << (retry - 1)
	if max := p.cap(); d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		if hint := time.Duration(se.RetryAfter) * time.Second; hint > d {
			d = hint
		}
	}
	if max := p.cap(); d > max {
		d = max
	}
	return d
}

// Retryable reports whether err is worth retrying on an idempotent
// request: transport-level failures (resets, timeouts, any net.Error),
// bodies cut mid-stream, truncated NDJSON sweeps, server backpressure
// (429) and transient server errors (5xx). Context cancellation and
// client-side mistakes (other 4xx) are permanent.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == 429 || se.Code >= 500
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrTruncatedStream) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// RunRawWithRetry is RunRaw behind the retry policy: it re-issues the
// (idempotent, memoized) request on retryable failures until it succeeds,
// a permanent error surfaces, or attempts run out.
func (c *Client) RunRawWithRetry(ctx context.Context, e core.Experiment, opts core.RunOptions, pol RetryPolicy) ([]byte, error) {
	rng := rand.New(rand.NewSource(pol.Seed))
	attempts := pol.attempts()
	for attempt := 1; ; attempt++ {
		body, err := c.RunRaw(ctx, e, opts)
		if err == nil {
			return body, nil
		}
		if !Retryable(err) || attempt == attempts {
			return nil, fmt.Errorf("run %s after %d attempts: %w", e, attempt, err)
		}
		d := pol.delay(attempt, rng, err)
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, d, err)
		}
		if serr := pol.sleep(ctx, d); serr != nil {
			return nil, serr
		}
	}
}

// RunWithRetry is Run behind the retry policy.
func (c *Client) RunWithRetry(ctx context.Context, e core.Experiment, opts core.RunOptions, pol RetryPolicy) (core.Result, error) {
	body, err := c.RunRawWithRetry(ctx, e, opts, pol)
	if err != nil {
		return core.Result{}, err
	}
	var res core.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return core.Result{}, fmt.Errorf("decoding result: %w", err)
	}
	return res, nil
}

// SweepWithResume is Sweep behind the retry policy: when the stream drops
// mid-sweep (truncation, transport failure, backpressure), it re-issues
// the request and resumes from where the last attempt left off — cells
// already delivered to fn are deduplicated by index, so fn sees every
// cell exactly once no matter how many times the stream restarts. The
// server replays completed cells from its memo cache, so a resume costs
// bandwidth, not simulation time.
func (c *Client) SweepWithResume(ctx context.Context, rq SweepRequest, pol RetryPolicy, fn func(SweepEvent) error) (SweepSummary, error) {
	rng := rand.New(rand.NewSource(pol.Seed))
	attempts := pol.attempts()
	seen := make(map[int]bool)
	for attempt := 1; ; attempt++ {
		var fnErr error
		summary, err := c.Sweep(ctx, rq, func(ev SweepEvent) error {
			if ev.Index == nil {
				return fmt.Errorf("sweep cell event without an index")
			}
			if seen[*ev.Index] {
				return nil // replayed on resume; already delivered
			}
			if fn != nil {
				if err := fn(ev); err != nil {
					fnErr = err
					return err
				}
			}
			seen[*ev.Index] = true
			return nil
		})
		if err == nil {
			return summary, nil
		}
		if fnErr != nil {
			return summary, fnErr // the caller aborted; not a stream fault
		}
		// A resumed stream replays every cell (the dedup above keeps fn
		// exactly-once), so the per-attempt cell count matches the trailer
		// again on a clean attempt.
		if !Retryable(err) || attempt == attempts {
			return SweepSummary{}, fmt.Errorf("sweep after %d attempts: %w", attempt, err)
		}
		d := pol.delay(attempt, rng, err)
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, d, err)
		}
		if serr := pol.sleep(ctx, d); serr != nil {
			return SweepSummary{}, serr
		}
	}
}
