package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds (plus an
// implicit +Inf). Log-spaced from 0.5ms to 10s: cached cells land in the
// sub-millisecond buckets, cold compiles+simulations in the tail.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// hist is one cumulative latency histogram; buckets has one slot per
// upper bound plus the +Inf overflow.
type hist struct {
	buckets []uint64
	sum     float64
	count   uint64
}

func newHist() *hist {
	return &hist{buckets: make([]uint64, len(latencyBuckets)+1)}
}

func (h *hist) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.buckets[i]++
	h.sum += s
	h.count++
}

// metrics aggregates the serving counters behind /metrics. All methods are
// safe for concurrent use.
type metrics struct {
	mu         sync.Mutex
	requests   map[string]map[int]uint64 // endpoint -> status code -> count
	latency    map[string]*hist          // endpoint -> latency histogram
	coalesced  uint64
	rejected   map[string]uint64 // reason -> count
	sweepCells map[string]uint64 // fidelity tier -> cells answered
	panics     uint64            // panics contained by the recovery layers
}

func newMetrics() *metrics {
	return &metrics{
		requests:   map[string]map[int]uint64{},
		latency:    map[string]*hist{},
		rejected:   map[string]uint64{},
		sweepCells: map[string]uint64{},
	}
}

func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	codes, ok := m.requests[endpoint]
	if !ok {
		codes = map[int]uint64{}
		m.requests[endpoint] = codes
	}
	codes[code]++
	h, ok := m.latency[endpoint]
	if !ok {
		h = newHist()
		m.latency[endpoint] = h
	}
	h.observe(d)
}

func (m *metrics) coalesce()            { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *metrics) reject(reason string) { m.mu.Lock(); m.rejected[reason]++; m.mu.Unlock() }
func (m *metrics) panicked()            { m.mu.Lock(); m.panics++; m.mu.Unlock() }

// sweepTier counts n sweep cells answered by the given fidelity tier
// ("analytic" or "simulated").
func (m *metrics) sweepTier(tier string, n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.sweepCells[tier] += uint64(n)
	m.mu.Unlock()
}

// gauges are point-in-time readings the server snapshots at render time.
type gauges struct {
	queueDepth int
	slotsBusy  int
	inflight   int
	cacheCells int
}

// render emits the Prometheus text exposition format. Series are sorted so
// consecutive scrapes of an idle server are byte-identical.
func (m *metrics) render(sb *strings.Builder, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(sb, "# HELP cwserve_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		codes := m.requests[ep]
		sorted := make([]int, 0, len(codes))
		for c := range codes {
			sorted = append(sorted, c)
		}
		sort.Ints(sorted)
		for _, c := range sorted {
			fmt.Fprintf(sb, "cwserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, codes[c])
		}
	}

	fmt.Fprintf(sb, "# HELP cwserve_coalesced_total Requests served by attaching to an in-flight identical computation.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_coalesced_total counter\n")
	fmt.Fprintf(sb, "cwserve_coalesced_total %d\n", m.coalesced)

	fmt.Fprintf(sb, "# HELP cwserve_panics_recovered_total Panics contained by the serving recovery layers (handler middleware and flight group).\n")
	fmt.Fprintf(sb, "# TYPE cwserve_panics_recovered_total counter\n")
	fmt.Fprintf(sb, "cwserve_panics_recovered_total %d\n", m.panics)

	fmt.Fprintf(sb, "# HELP cwserve_rejected_total Requests shed by admission control, by reason.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_rejected_total counter\n")
	for _, r := range sortedKeys(m.rejected) {
		fmt.Fprintf(sb, "cwserve_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}

	fmt.Fprintf(sb, "# HELP cwserve_sweep_cells_total Sweep cells answered, by fidelity tier.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_sweep_cells_total counter\n")
	for _, tier := range sortedKeys(m.sweepCells) {
		fmt.Fprintf(sb, "cwserve_sweep_cells_total{tier=%q} %d\n", tier, m.sweepCells[tier])
	}

	fmt.Fprintf(sb, "# HELP cwserve_queue_depth Request-mode admissions in the system (executing or waiting).\n")
	fmt.Fprintf(sb, "# TYPE cwserve_queue_depth gauge\n")
	fmt.Fprintf(sb, "cwserve_queue_depth %d\n", g.queueDepth)
	fmt.Fprintf(sb, "# HELP cwserve_slots_busy Execution slots currently held.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_slots_busy gauge\n")
	fmt.Fprintf(sb, "cwserve_slots_busy %d\n", g.slotsBusy)
	fmt.Fprintf(sb, "# HELP cwserve_inflight_cells Distinct experiment cells currently computing.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_inflight_cells gauge\n")
	fmt.Fprintf(sb, "cwserve_inflight_cells %d\n", g.inflight)
	fmt.Fprintf(sb, "# HELP cwserve_cache_cells In-memory memoized experiment cells.\n")
	fmt.Fprintf(sb, "# TYPE cwserve_cache_cells gauge\n")
	fmt.Fprintf(sb, "cwserve_cache_cells %d\n", g.cacheCells)

	if len(m.latency) > 0 {
		// One HELP/TYPE pair per metric name: the exposition format
		// forbids repeating them per label set.
		fmt.Fprintf(sb, "# HELP cwserve_latency_seconds Request latency, by endpoint.\n")
		fmt.Fprintf(sb, "# TYPE cwserve_latency_seconds histogram\n")
	}
	for _, ep := range sortedKeys(m.latency) {
		h := m.latency[ep]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(sb, "cwserve_latency_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, le, cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(sb, "cwserve_latency_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(sb, "cwserve_latency_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(sb, "cwserve_latency_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
