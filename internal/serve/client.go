package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"configwall/internal/core"
)

// Client is a Go client for a cwserve daemon. The zero HTTPClient uses a
// pooled transport sized for load generation (many concurrent keep-alive
// connections to one host); it is built lazily on first use, so a
// zero-value Client gets the same pooling NewClient configures instead of
// silently falling back to http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides the underlying HTTP client.
	HTTPClient *http.Client

	pooledOnce sync.Once
	pooled     *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTPClient: newPooledHTTPClient()}
}

// newPooledHTTPClient builds the load-generation transport: many
// keep-alive connections to one host, so worker pools don't serialize on
// the default two-per-host idle cap.
func newPooledHTTPClient() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: t}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	c.pooledOnce.Do(func() { c.pooled = newPooledHTTPClient() })
	return c.pooled
}

// StatusError is a non-2xx server response; callers can branch on Code
// (backpressure is 429) and read the server's explanation in Body.
type StatusError struct {
	Code int
	Body string
	// RetryAfter is the server's backoff hint in seconds (the Retry-After
	// header, derived from live queue drain rate); 0 when absent.
	RetryAfter int
}

// statusError builds a StatusError from a non-2xx response.
func statusError(resp *http.Response, body []byte) *StatusError {
	se := &StatusError{Code: resp.StatusCode, Body: string(body)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			se.RetryAfter = secs
		}
	}
	return se
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// runURL encodes one experiment request as /v1/run query parameters.
func (c *Client) runURL(e core.Experiment, opts core.RunOptions) string {
	q := url.Values{}
	q.Set("target", e.Target)
	q.Set("workload", e.Workload)
	q.Set("pipeline", e.Pipeline.String())
	q.Set("n", strconv.Itoa(e.N))
	q.Set("engine", opts.Engine.String())
	if opts.RecordTrace {
		q.Set("trace", "true")
	}
	if opts.SkipVerify {
		q.Set("skipverify", "true")
	}
	return c.Base + "/v1/run?" + q.Encode()
}

// RunRaw executes one experiment and returns the raw response body — the
// exact bytes json.Marshal(core.Result) produced on the server, for
// byte-identity checks against direct Runner results.
func (c *Client) RunRaw(ctx context.Context, e core.Experiment, opts core.RunOptions) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.runURL(e, opts), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, body)
	}
	return body, nil
}

// Run executes one experiment on the server and decodes the result.
func (c *Client) Run(ctx context.Context, e core.Experiment, opts core.RunOptions) (core.Result, error) {
	body, err := c.RunRaw(ctx, e, opts)
	if err != nil {
		return core.Result{}, err
	}
	var res core.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return core.Result{}, fmt.Errorf("decoding result: %w", err)
	}
	return res, nil
}

// SweepSummary is the final trailer of a streamed sweep.
type SweepSummary struct {
	Cells  int
	Failed int
	// Status is the trailer's verdict: "ok", or "error" when any cell
	// failed.
	Status string
}

// ErrTruncatedStream reports an NDJSON sweep stream that ended without a
// valid trailer sentinel, or whose events don't add up to the trailer's
// cell count — the signature of a connection cut mid-sweep. It is
// retryable: the server's memoization makes a replayed sweep cheap, and
// SweepWithResume skips cells already delivered.
var ErrTruncatedStream = errors.New("truncated sweep stream")

// Sweep streams the sweep, invoking fn for every cell event in completion
// order; a non-nil fn error aborts the stream. It returns the server's
// final trailer summary.
//
// The stream is only trusted end-to-end: it must close with a trailer
// event (Done true, Status set), every cell must have produced exactly
// one event before it, and nothing may follow it. Any shortfall — an
// early EOF, a missing or statusless trailer, an undecodable line, a
// cell-count mismatch — is reported as ErrTruncatedStream rather than
// silently returning a partial sweep.
func (c *Client) Sweep(ctx context.Context, rq SweepRequest, fn func(SweepEvent) error) (SweepSummary, error) {
	body, err := json.Marshal(rq)
	if err != nil {
		return SweepSummary{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return SweepSummary{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return SweepSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return SweepSummary{}, statusError(resp, msg)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // traces can make lines large
	var summary SweepSummary
	sawTrailer := false
	cellEvents := 0
	for sc.Scan() {
		if sawTrailer {
			return summary, fmt.Errorf("%w: events after the trailer", ErrTruncatedStream)
		}
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// A cut mid-line leaves a partial JSON document; report it as
			// truncation so retry layers treat it like any other drop.
			return summary, fmt.Errorf("%w: undecodable sweep event: %v", ErrTruncatedStream, err)
		}
		if ev.Done {
			if ev.Status == "" {
				return summary, fmt.Errorf("%w: trailer has no status", ErrTruncatedStream)
			}
			summary = SweepSummary{Cells: ev.Cells, Failed: ev.Failed, Status: ev.Status}
			sawTrailer = true
			continue
		}
		cellEvents++
		if fn != nil {
			if err := fn(ev); err != nil {
				return summary, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return summary, err
	}
	if !sawTrailer {
		return summary, fmt.Errorf("%w: stream ended without a trailer", ErrTruncatedStream)
	}
	if cellEvents != summary.Cells {
		return summary, fmt.Errorf("%w: stream delivered %d of %d cells", ErrTruncatedStream, cellEvents, summary.Cells)
	}
	return summary, nil
}

// Healthz checks the health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.getText(ctx, "/healthz")
	return err
}

// Metrics fetches the raw metrics exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.getText(ctx, "/metrics")
}

// Registry fetches the server's registered targets, workloads, pipelines
// and engines.
func (c *Client) Registry(ctx context.Context) (RegistryInfo, error) {
	var info RegistryInfo
	body, err := c.getText(ctx, "/v1/registry")
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		return info, fmt.Errorf("decoding registry: %w", err)
	}
	return info, nil
}

func (c *Client) getText(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", statusError(resp, body)
	}
	return string(body), nil
}
