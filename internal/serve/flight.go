package serve

import (
	"context"
	"fmt"
	"sync"

	"configwall/internal/core"
)

// flightGroup is the serving layer's singleflight: concurrent requests for
// the same fingerprint key attach to one in-flight computation instead of
// each entering the admission queue. It is layered on the runner's cell
// map — the runner already guarantees one simulation per cell — but the
// flight group additionally guarantees one *admission slot* per distinct
// in-flight cell, so 64 identical requests against a 4-slot server neither
// occupy 4 slots with waiters nor trip queue-full rejections.
type flightGroup struct {
	base context.Context // ancestor of every leader context (server lifetime)

	// onPanic, when non-nil, observes every panic the group contains
	// (set once before serving starts; the server counts them in
	// cwserve_panics_recovered_total).
	onPanic func()

	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation; done is closed once res/err are
// published. waiters counts the requests currently attached: when the
// last one detaches before completion, the leader's context is cancelled
// so work nobody wants stops consuming queue positions and workers.
type flightCall struct {
	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	res    core.Result
	err    error

	waiters int // guarded by flightGroup.mu
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, m: map[string]*flightCall{}}
}

// start registers and launches a fresh call for key (caller holds g.mu).
func (g *flightGroup) start(key string, fn func(context.Context) (core.Result, error)) *flightCall {
	runCtx, cancel := context.WithCancel(g.base)
	c := &flightCall{done: make(chan struct{}), ctx: runCtx, cancel: cancel}
	g.m[key] = c
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: panic computing %s: %v", key, r)
				if g.onPanic != nil {
					g.onPanic()
				}
			}
			g.mu.Lock()
			// A cancelled-then-orphaned call may have been replaced by a
			// fresh one; only remove the mapping if it is still ours.
			if g.m[key] == c {
				delete(g.m, key)
			}
			g.mu.Unlock()
			cancel()
			close(c.done)
		}()
		c.res, c.err = fn(runCtx)
	}()
	return c
}

// do returns the result of fn for key, starting fn in its own goroutine if
// no live call for key is in flight and attaching to the existing call
// otherwise. coalesced reports whether the request attached to a call it
// did not start.
//
// fn receives the leader context: a child of the server's base context
// that is additionally cancelled when every attached request has gone
// away, so an abandoned computation stops waiting for admission (a cell
// already claimed in the runner still completes and lands in the cache —
// cancellation governs waiting, not computing). Attach, detach and
// orphan-cancellation all happen under one lock, so a request can never
// join a call that is about to be cancelled: a cancelled, unfinished call
// is replaced by a fresh one instead. A panic inside fn is contained as
// an error on this call; one poisoned cell must never take down the
// daemon.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (core.Result, error)) (res core.Result, err error, coalesced bool) {
	g.mu.Lock()
	c, ok := g.m[key]
	if ok && c.ctx.Err() != nil {
		// The previous call was orphan-cancelled but has not finished its
		// cleanup yet; it would only publish a context error. Start a
		// fresh call over it (its deferred delete is conditional).
		ok = false
	}
	if !ok {
		c = g.start(key, fn)
	}
	c.waiters++
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			select {
			case <-c.done:
			default:
				// Cancel under the lock: attaches also run under it, so
				// nobody can join between the decision and the cancel.
				c.cancel()
			}
		}
		g.mu.Unlock()
	}()

	select {
	case <-c.done:
		return c.res, c.err, ok
	case <-ctx.Done():
		return core.Result{}, ctx.Err(), ok
	}
}

// inflight returns the number of distinct keys currently being computed.
func (g *flightGroup) inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
