package serve

// Pooled JSON response marshalling for the serving hot path. A cached
// /v1/run cell costs one simulation the first time and one map lookup ever
// after — at that point the per-request garbage is dominated by response
// encoding (json.Marshal allocates a fresh body slice every call). The
// responder pool amortizes that: each responder owns a reusable buffer and
// a json.Encoder bound to it, so a steady-state cached response encodes
// into existing capacity and allocates nothing.

import (
	"encoding/json"
	"net/http"
	"sync"
)

// jsonResponder pairs a reusable buffer with an encoder bound to it.
type jsonResponder struct {
	buf bytesBuffer
	enc *json.Encoder
}

// bytesBuffer is a minimal append-backed io.Writer; unlike bytes.Buffer it
// exposes its backing slice for the trailing-newline trim below without any
// method-call ceremony.
type bytesBuffer struct{ b []byte }

//cwlint:hotpath
func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var responderPool = sync.Pool{
	New: func() any {
		jr := &jsonResponder{}
		jr.enc = json.NewEncoder(&jr.buf)
		return jr
	},
}

// jsonContentType is assigned directly into response header maps: a shared
// pre-built slice, never mutated, so the hot path skips the per-call slice
// allocation of Header().Set.
var jsonContentType = []string{"application/json"}

// writeJSON writes v as a JSON response body byte-identical to
// json.Marshal(v): Encoder.Encode produces exactly Marshal's bytes plus a
// trailing newline, which is trimmed before writing. Pass a pointer so the
// value is not copied into the interface. Content-Length is left for
// net/http to derive (it buffers short handler responses and sets it
// automatically); encoding errors are reported before anything is written,
// so the caller can still emit an error status.
//
//cwlint:hotpath
func writeJSON(w http.ResponseWriter, v any) error {
	jr := responderPool.Get().(*jsonResponder)
	jr.buf.b = jr.buf.b[:0]
	if err := jr.enc.Encode(v); err != nil {
		responderPool.Put(jr)
		return err
	}
	body := jr.buf.b[:len(jr.buf.b)-1] // trim Encode's trailing '\n'
	w.Header()["Content-Type"] = jsonContentType
	_, err := w.Write(body)
	responderPool.Put(jr)
	return err
}
