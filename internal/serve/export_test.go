package serve

import "net/http"

// ClientHTTPForTest exposes the client's transport selection so external
// tests can assert the zero-value pooling behavior.
func ClientHTTPForTest(c *Client) *http.Client { return c.http() }
