package serve_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"configwall/internal/core"
	"configwall/internal/fault"
	"configwall/internal/serve"
	"configwall/internal/store"
)

// metricValue extracts one un-labeled counter/gauge from a Prometheus
// exposition.
func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found", name)
	return ""
}

// TestHandlerPanicRecovery: an injected pre-admission panic answers 500,
// is counted, and leaves the server fully serviceable.
func TestHandlerPanicRecovery(t *testing.T) {
	plan := fault.New(1, map[fault.Site]fault.Rule{fault.ServeHandlerPanic: {Rate: 1, Max: 1}})
	_, ts, client := newTestServer(t, serve.Options{Fault: plan})

	resp, err := http.Get(ts.URL + "/v1/run?target=opengemm&workload=matmul&pipeline=all&n=8")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 from the recovered panic", resp.StatusCode)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Errorf("body = %q, want an internal-error explanation", body)
	}

	// The daemon survived: the same request now succeeds, byte-identical
	// to a fault-free answer.
	got, err := client.RunRaw(context.Background(), testExp, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, directBody(t, testExp, core.RunOptions{})) {
		t.Error("post-recovery body differs from fault-free body")
	}

	metrics, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, metrics, "cwserve_panics_recovered_total"); v != "1" {
		t.Errorf("cwserve_panics_recovered_total = %s, want 1", v)
	}
}

// TestRunPanicRecovery: a panic fired while an admission slot is held is
// contained by the flight group, the slot and the flight entry are
// released, and a retry of the same cell succeeds.
func TestRunPanicRecovery(t *testing.T) {
	plan := fault.New(1, map[fault.Site]fault.Rule{fault.ServeRunPanic: {Rate: 1, Max: 1}})
	_, _, client := newTestServer(t, serve.Options{Fault: plan, Concurrency: 1})

	_, err := client.RunRaw(context.Background(), testExp, core.RunOptions{})
	se, ok := err.(*serve.StatusError)
	if !ok || se.Code != http.StatusInternalServerError || !strings.Contains(se.Body, "panic computing") {
		t.Fatalf("err = %v, want a 500 StatusError reporting the contained panic", err)
	}

	// With Concurrency 1, a leaked slot would wedge this retry forever;
	// a leaked flight entry would replay the poisoned error.
	got, err := client.RunRaw(context.Background(), testExp, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, directBody(t, testExp, core.RunOptions{})) {
		t.Error("post-recovery body differs from fault-free body")
	}

	metrics, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, metrics, "cwserve_panics_recovered_total"); v != "1" {
		t.Errorf("cwserve_panics_recovered_total = %s, want 1", v)
	}
	if v := metricValue(t, metrics, "cwserve_slots_busy"); v != "0" {
		t.Errorf("cwserve_slots_busy = %s after recovery, want 0", v)
	}
	if v := metricValue(t, metrics, "cwserve_inflight_cells"); v != "0" {
		t.Errorf("cwserve_inflight_cells = %s after recovery, want 0", v)
	}
}

// TestDegradedModeServing: a store whose saves fail must not fail
// requests — results serve from memory, /healthz says degraded, the
// counter and the OnStoreError hook report it.
func TestDegradedModeServing(t *testing.T) {
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.New(1, map[fault.Site]fault.Rule{fault.StoreSaveFail: {Rate: 1}})
	var hookCalls atomic.Int64
	runner := core.NewRunnerWith(core.RunnerOptions{
		Store: &fault.Store{Inner: disk, Disk: disk, Plan: plan},
		OnStoreError: func(op string, e core.Experiment, err error) {
			if op != "save" {
				t.Errorf("OnStoreError op = %q, want save", op)
			}
			hookCalls.Add(1)
		},
	})
	_, ts, client := newTestServer(t, serve.Options{Runner: runner})

	got, err := client.RunRaw(context.Background(), testExp, core.RunOptions{})
	if err != nil {
		t.Fatalf("request failed under store faults: %v", err)
	}
	if !bytes.Equal(got, directBody(t, testExp, core.RunOptions{})) {
		t.Error("degraded-mode body differs from fault-free body")
	}
	if hookCalls.Load() != 1 {
		t.Errorf("OnStoreError called %d times, want 1", hookCalls.Load())
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(health)) != "degraded" {
		t.Errorf("healthz = %d %q, want 200 degraded", resp.StatusCode, health)
	}

	metrics, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, metrics, "cwserve_store_errors_total"); v != "1" {
		t.Errorf("cwserve_store_errors_total = %s, want 1", v)
	}
	if n, err := disk.Len(); err != nil || n != 0 {
		t.Errorf("store has %d entries (err %v), want 0 — every save was injected to fail", n, err)
	}
}

// TestLoadGenRetry429: under backpressure the load generator honors
// Retry-After (capped) and re-sends instead of counting an error; with
// the retry disabled the same 429 counts as an error.
func TestLoadGenRetry429(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	// First request for each distinct query gets a 429 with a huge
	// Retry-After hint (the cap must tame it); repeats succeed.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.RawQuery]++
		n := seen[r.URL.RawQuery]
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "30")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, `{"target":"t"}`)
	}))
	defer ts.Close()

	opts := serve.LoadGenOptions{
		Experiments:   []core.Experiment{testExp, {Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 8}},
		Requests:      6,
		Clients:       1,
		Retry429:      true,
		RetryMax:      3,
		RetryMaxDelay: 5 * time.Millisecond,
	}
	start := time.Now()
	rep, err := serve.LoadGen(context.Background(), serve.NewClient(ts.URL), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0 — 429s must be retried, not counted", rep.Errors)
	}
	if rep.Retries < 1 {
		t.Error("no backpressure retries recorded")
	}
	if rep.StatusHist[http.StatusTooManyRequests] != 0 {
		t.Errorf("429s in the final histogram: %v", rep.StatusHist)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("run took %v — the 30s Retry-After hint was not capped", elapsed)
	}
	if !strings.Contains(rep.String(), "backpressure retries") {
		t.Error("report does not mention backpressure retries")
	}

	// Same traffic without the retry: the first-per-cell 429s are errors.
	mu.Lock()
	seen = map[string]int{}
	mu.Unlock()
	opts.Retry429 = false
	rep, err = serve.LoadGen(context.Background(), serve.NewClient(ts.URL), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 || rep.StatusHist[http.StatusTooManyRequests] == 0 {
		t.Errorf("without Retry429: errors = %d, hist = %v — want the 429s surfaced", rep.Errors, rep.StatusHist)
	}
	if rep.Retries != 0 {
		t.Errorf("retries = %d with Retry429 off, want 0", rep.Retries)
	}
}
