package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"configwall/internal/core"
)

// LoadGenOptions configures a load-generation run against a cwserve
// daemon: a zipf-skewed request mix over a fixed experiment universe, the
// traffic shape configuration-search clients produce (many near-duplicate
// measurements of the hot cells, a long tail of rare ones).
type LoadGenOptions struct {
	// Experiments is the request universe, indexed by zipf rank: index 0
	// is the hottest cell. Required.
	Experiments []core.Experiment
	// Options are the run options sent with every request.
	Options core.RunOptions
	// Requests is the total number of requests; <= 0 selects 1000.
	Requests int
	// Clients is the number of concurrent client workers; <= 0 selects 8.
	Clients int
	// ZipfS is the zipf skew parameter (must be > 1; larger = more
	// skewed); <= 1 selects 1.4, which concentrates ~90% of requests on
	// the few hottest cells of a small universe.
	ZipfS float64
	// Seed seeds the request mix; the same seed and options produce the
	// same request sequence. 0 selects 1.
	Seed int64
	// Verify checks that every response body for a cell is byte-identical
	// to the first response seen for that cell (the memoized simulator is
	// deterministic, so any difference is a serving bug).
	Verify bool
	// Retry429 makes workers honor 429 backpressure the way a well-behaved
	// client does: sleep the server's Retry-After hint (floored by a small
	// exponential backoff, capped by RetryMaxDelay) and re-send, instead of
	// counting the rejection as an error. Only the final outcome of each
	// logical request lands in the status histogram; retries are reported
	// separately.
	Retry429 bool
	// RetryMax bounds the attempts per logical request when Retry429 is
	// set; <= 0 selects 4.
	RetryMax int
	// RetryMaxDelay caps each backoff sleep; <= 0 selects 2s.
	RetryMaxDelay time.Duration
}

// LoadGenReport summarizes one load-generation run.
type LoadGenReport struct {
	Requests   int
	Errors     int           // transport failures and non-200 responses
	Mismatched int           // byte-identity violations (Verify mode)
	Distinct   int           // distinct cells requested
	Retries    int           // 429s retried after honoring Retry-After (Retry429 mode)
	StatusHist map[int]int   // responses by HTTP status (0 = transport error)
	Elapsed    time.Duration // wall clock of the whole run
	Throughput float64       // requests per second
	Mean       time.Duration // per-request latency statistics
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration
}

// String renders the report as the human/CI-artifact latency summary.
func (r LoadGenReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loadgen: %d requests over %d distinct cells in %v (%.0f req/s)\n",
		r.Requests, r.Distinct, r.Elapsed.Round(time.Millisecond), r.Throughput)
	fmt.Fprintf(&sb, "loadgen: errors %d, byte-identity mismatches %d, backpressure retries %d\n", r.Errors, r.Mismatched, r.Retries)
	codes := make([]int, 0, len(r.StatusHist))
	for c := range r.StatusHist {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		label := fmt.Sprintf("HTTP %d", c)
		if c == 0 {
			label = "transport error"
		}
		fmt.Fprintf(&sb, "loadgen: %-16s %d\n", label, r.StatusHist[c])
	}
	fmt.Fprintf(&sb, "loadgen: latency mean %v p50 %v p90 %v p99 %v max %v\n",
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Max.Round(time.Microsecond))
	return sb.String()
}

// LoadGen replays a zipf-skewed request mix against the server behind c
// and reports throughput and latency. The request sequence is derived
// deterministically from the seed before any request is sent, so the mix
// (though not the interleaving) is reproducible.
func LoadGen(ctx context.Context, c *Client, o LoadGenOptions) (LoadGenReport, error) {
	if len(o.Experiments) == 0 {
		return LoadGenReport{}, fmt.Errorf("loadgen: empty experiment universe")
	}
	requests := o.Requests
	if requests <= 0 {
		requests = 1000
	}
	clients := o.Clients
	if clients <= 0 {
		clients = 8
	}
	if clients > requests {
		clients = requests
	}
	zs := o.ZipfS
	if zs <= 1 {
		zs = 1.4
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	// Pre-draw the whole mix so worker scheduling cannot change it.
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zs, 1, uint64(len(o.Experiments)-1))
	seq := make([]int, requests)
	distinct := map[int]bool{}
	for i := range seq {
		seq[i] = int(zipf.Uint64())
		distinct[seq[i]] = true
	}

	latencies := make([]time.Duration, requests)
	statuses := make([]int, requests)

	retryMax := o.RetryMax
	if retryMax <= 0 {
		retryMax = 4
	}
	retryCap := o.RetryMaxDelay
	if retryCap <= 0 {
		retryCap = 2 * time.Second
	}

	var mu sync.Mutex // guards canonical + the failure counters
	canonical := map[int][]byte{}
	errorCount, mismatched := 0, 0
	var retries atomic.Int64

	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests || ctx.Err() != nil {
					return
				}
				cell := seq[i]
				// Latency is the logical request's wall time: with
				// Retry429 it includes the honored backoff sleeps, which
				// is exactly what a well-behaved client experiences under
				// server backpressure.
				t0 := time.Now()
				var body []byte
				var err error
				for attempt := 1; ; attempt++ {
					body, err = c.RunRaw(ctx, o.Experiments[cell], o.Options)
					var se *StatusError
					if !o.Retry429 || err == nil || ctx.Err() != nil ||
						!errors.As(err, &se) || se.Code != http.StatusTooManyRequests ||
						attempt >= retryMax {
						break
					}
					// Honor the server's drain-rate-derived hint, floored
					// by a small exponential backoff and capped so one bad
					// hint cannot wedge the run.
					d := 50 * time.Millisecond << (attempt - 1)
					if hint := time.Duration(se.RetryAfter) * time.Second; hint > d {
						d = hint
					}
					if d > retryCap {
						d = retryCap
					}
					retries.Add(1)
					select {
					case <-ctx.Done():
					case <-time.After(d):
					}
				}
				latencies[i] = time.Since(t0)
				status := http.StatusOK
				if err != nil {
					status = 0
					var se *StatusError
					if errors.As(err, &se) {
						status = se.Code
					}
				}
				statuses[i] = status
				if err != nil {
					mu.Lock()
					errorCount++
					mu.Unlock()
					continue
				}
				if o.Verify {
					mu.Lock()
					if prev, ok := canonical[cell]; !ok {
						canonical[cell] = body
					} else if string(prev) != string(body) {
						mismatched++
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return LoadGenReport{}, err
	}

	rep := LoadGenReport{
		Requests:   requests,
		Errors:     errorCount,
		Mismatched: mismatched,
		Distinct:   len(distinct),
		Retries:    int(retries.Load()),
		StatusHist: map[int]int{},
		Elapsed:    elapsed,
		Throughput: float64(requests) / elapsed.Seconds(),
	}
	for _, st := range statuses {
		rep.StatusHist[st]++
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	rep.Mean = sum / time.Duration(requests)
	rep.P50 = percentile(sorted, 0.50)
	rep.P90 = percentile(sorted, 0.90)
	rep.P99 = percentile(sorted, 0.99)
	rep.Max = sorted[len(sorted)-1]
	return rep, nil
}

// percentile reads the p-th percentile from an ascending-sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// CanonicalBodies computes, via direct Runner execution on a private
// runner, the expected response body for every cell of the universe —
// the reference for byte-identity assertions in tests and CI.
func CanonicalBodies(ctx context.Context, exps []core.Experiment, opts core.RunOptions) (map[string][]byte, error) {
	r := core.NewRunner(0)
	bodies := make(map[string][]byte, len(exps))
	for _, e := range exps {
		res, err := r.Run(ctx, e, opts)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		bodies[core.FingerprintKey(e, opts)] = body
	}
	return bodies, nil
}
