package serve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"configwall/internal/core"
	"configwall/internal/fault"
	"configwall/internal/serve"
)

// instantSleep makes retry backoff free in tests while still honoring
// context cancellation.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// faultyClient wires a fault.Transport between the test client and server.
func faultyClient(ts *httptest.Server, plan *fault.Plan, retryAfter int) *serve.Client {
	return &serve.Client{
		Base:       ts.URL,
		HTTPClient: &http.Client{Transport: &fault.Transport{Plan: plan, RetryAfter: retryAfter}},
	}
}

// TestZeroValueClientPools: a zero-value Client must lazily build the same
// pooled transport NewClient configures — not fall back to
// http.DefaultClient.
func TestZeroValueClientPools(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	c := &serve.Client{Base: ts.URL}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	hc := serve.ClientHTTPForTest(c)
	if hc == http.DefaultClient {
		t.Fatal("zero-value Client used http.DefaultClient")
	}
	tr, ok := hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", hc.Transport)
	}
	if tr.MaxIdleConnsPerHost != 256 {
		t.Errorf("MaxIdleConnsPerHost = %d, want 256", tr.MaxIdleConnsPerHost)
	}
	if serve.ClientHTTPForTest(c) != hc {
		t.Error("pooled client rebuilt on second use")
	}
	override := &http.Client{}
	c2 := &serve.Client{Base: ts.URL, HTTPClient: override}
	if serve.ClientHTTPForTest(c2) != override {
		t.Error("explicit HTTPClient not honored")
	}
}

// TestRetryable classifies errors the way the retry loop must.
func TestRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", fmt.Errorf("wrap: %w", context.DeadlineExceeded), false},
		{"429", &serve.StatusError{Code: 429}, true},
		{"500", &serve.StatusError{Code: 500}, true},
		{"503", &serve.StatusError{Code: 503}, true},
		{"404", &serve.StatusError{Code: 404}, false},
		{"400", &serve.StatusError{Code: 400}, false},
		{"unexpected EOF", fmt.Errorf("read: %w", io.ErrUnexpectedEOF), true},
		{"truncated stream", fmt.Errorf("x: %w", serve.ErrTruncatedStream), true},
		{"plain", errors.New("boom"), false},
	}
	for _, tc := range cases {
		if got := serve.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRunWithRetryHealsTransportFaults: resets, timeouts, injected 503s
// and truncated bodies on the wire must all heal, and the healed body must
// be byte-identical to the fault-free answer.
func TestRunWithRetryHealsTransportFaults(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	want := directBody(t, testExp, core.RunOptions{})

	// Each site fires once at full rate; RoundTrip consults them in order
	// and returns at the first that fires, so the four faults land on four
	// consecutive attempts and the fifth goes clean.
	plan := fault.New(3, map[fault.Site]fault.Rule{
		fault.TransportReset:       {Rate: 1, Max: 1},
		fault.TransportTimeout:     {Rate: 1, Max: 1},
		fault.TransportUnavailable: {Rate: 1, Max: 1},
		fault.TransportTruncate:    {Rate: 1, Max: 1},
	})
	c := faultyClient(ts, plan, 1)
	retries := 0
	pol := serve.RetryPolicy{
		MaxAttempts: 6,
		Sleep:       instantSleep,
		OnRetry:     func(int, time.Duration, error) { retries++ },
	}
	body, err := c.RunRawWithRetry(context.Background(), testExp, core.RunOptions{}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("healed body differs from fault-free body")
	}
	if retries != 4 {
		t.Errorf("retries = %d, want 4 (reset, timeout, 503, truncation)", retries)
	}
}

// TestRunWithRetryGivesUp: attempts are bounded, and permanent errors
// (plain 4xx) never retry at all.
func TestRunWithRetryGivesUp(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})

	t.Run("exhausted", func(t *testing.T) {
		plan := fault.New(1, map[fault.Site]fault.Rule{fault.TransportReset: {Rate: 1}})
		c := faultyClient(ts, plan, 0)
		retries := 0
		pol := serve.RetryPolicy{MaxAttempts: 3, Sleep: instantSleep, OnRetry: func(int, time.Duration, error) { retries++ }}
		_, err := c.RunRawWithRetry(context.Background(), testExp, core.RunOptions{}, pol)
		if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
			t.Errorf("err = %v, want exhaustion after 3 attempts", err)
		}
		if retries != 2 {
			t.Errorf("retries = %d, want 2", retries)
		}
	})
	t.Run("permanent", func(t *testing.T) {
		c := serve.NewClient(ts.URL)
		retries := 0
		pol := serve.RetryPolicy{MaxAttempts: 5, Sleep: instantSleep, OnRetry: func(int, time.Duration, error) { retries++ }}
		bad := core.Experiment{Target: "nosuch", Workload: "matmul", Pipeline: core.AllOptimizations, N: 8}
		_, err := c.RunRawWithRetry(context.Background(), bad, core.RunOptions{}, pol)
		var se *serve.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("err = %v, want a 400 StatusError", err)
		}
		if retries != 0 {
			t.Errorf("retries = %d, want 0 for a permanent 400", retries)
		}
	})
}

// TestRetryHonorsRetryAfter: the server's Retry-After hint floors the
// backoff, and MaxDelay caps it.
func TestRetryHonorsRetryAfter(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	plan := fault.New(1, map[fault.Site]fault.Rule{fault.TransportUnavailable: {Rate: 1, Max: 1}})
	c := faultyClient(ts, plan, 30) // hint 30s, far above the cap
	var delays []time.Duration
	pol := serve.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Sleep:       instantSleep,
		OnRetry:     func(_ int, d time.Duration, _ error) { delays = append(delays, d) },
	}
	if _, err := c.RunRawWithRetry(context.Background(), testExp, core.RunOptions{}, pol); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 {
		t.Fatalf("retries = %d, want 1", len(delays))
	}
	if delays[0] != 20*time.Millisecond {
		t.Errorf("delay = %v, want the 20ms cap (Retry-After 30s floored then capped)", delays[0])
	}
}

// TestRetryJitterDeterministic: equal seeds replay the identical backoff
// sequence; the chaos harness depends on this.
func TestRetryJitterDeterministic(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	sequence := func(seed int64) []time.Duration {
		plan := fault.New(9, map[fault.Site]fault.Rule{fault.TransportReset: {Rate: 1}})
		c := faultyClient(ts, plan, 0)
		var ds []time.Duration
		pol := serve.RetryPolicy{
			MaxAttempts: 4,
			Seed:        seed,
			Sleep:       instantSleep,
			OnRetry:     func(_ int, d time.Duration, _ error) { ds = append(ds, d) },
		}
		c.RunRawWithRetry(context.Background(), testExp, core.RunOptions{}, pol)
		return ds
	}
	a, b := sequence(5), sequence(5)
	if len(a) != 3 {
		t.Fatalf("delays = %v, want 3 entries", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 5 reruns diverge: %v vs %v", a, b)
		}
	}
}

// TestSweepRejectsTruncatedStreams: streams that end without a trailer,
// carry a statusless trailer, keep talking after the trailer, or deliver
// fewer cells than the trailer claims are all ErrTruncatedStream.
func TestSweepRejectsTruncatedStreams(t *testing.T) {
	cell := `{"index":0,"experiment":{"target":"opengemm","workload":"matmul","pipeline":3,"n":8},"result":{}}`
	trailer := `{"done":true,"cells":1,"status":"ok"}`
	cases := []struct {
		name string
		body string
	}{
		{"no trailer", cell + "\n"},
		{"statusless trailer", cell + "\n" + `{"done":true,"cells":1}` + "\n"},
		{"events after trailer", cell + "\n" + trailer + "\n" + cell + "\n"},
		{"cell count short", trailer + "\n"},
		{"cut mid-line", cell + "\n" + trailer[:12]},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/x-ndjson")
				io.WriteString(w, tc.body)
			}))
			defer ts.Close()
			c := serve.NewClient(ts.URL)
			_, err := c.Sweep(context.Background(), serve.SweepRequest{}, nil)
			if !errors.Is(err, serve.ErrTruncatedStream) {
				t.Errorf("err = %v, want ErrTruncatedStream", err)
			}
		})
	}
}

// TestSweepAcceptsTrailedStream: a well-formed stream (all cells + trailer)
// passes the strict validation and reports the trailer verdict.
func TestSweepAcceptsTrailedStream(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	c := serve.NewClient(ts.URL)
	events := 0
	sum, err := c.Sweep(context.Background(), serve.SweepRequest{
		Targets: []string{"opengemm"}, Workloads: []string{"matmul"},
		Pipelines: []string{"all"}, Sizes: []int{8, 16},
	}, func(serve.SweepEvent) error { events++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 2 || sum.Failed != 0 || sum.Status != "ok" || events != 2 {
		t.Errorf("summary = %+v with %d events, want 2 ok cells", sum, events)
	}
}

// TestSweepWithResume: a stream cut mid-sweep resumes, every cell reaches
// fn exactly once, and the summary is the clean attempt's trailer.
func TestSweepWithResume(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	// Truncate the first sweep response mid-stream; leave retries clean.
	plan := fault.New(11, map[fault.Site]fault.Rule{fault.TransportTruncate: {Rate: 1, Max: 1}})
	c := faultyClient(ts, plan, 0)

	seen := make(map[int]int)
	var order []int
	retries := 0
	pol := serve.RetryPolicy{MaxAttempts: 4, Sleep: instantSleep, OnRetry: func(int, time.Duration, error) { retries++ }}
	sum, err := c.SweepWithResume(context.Background(), serve.SweepRequest{
		Targets: []string{"opengemm"}, Workloads: []string{"matmul"},
		Pipelines: []string{"base", "all"}, Sizes: []int{8, 16},
	}, pol, func(ev serve.SweepEvent) error {
		seen[*ev.Index]++
		order = append(order, *ev.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 4 || sum.Status != "ok" {
		t.Errorf("summary = %+v, want 4 ok cells", sum)
	}
	if retries < 1 {
		t.Error("stream was never truncated; fault did not fire")
	}
	if len(seen) != 4 {
		t.Errorf("fn saw %d distinct cells %v, want 4", len(seen), order)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("cell %d delivered %d times, want exactly once", idx, n)
		}
	}
}

// TestSweepWithResumePropagatesFnError: a caller abort is not a stream
// fault and must not be retried.
func TestSweepWithResumePropagatesFnError(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	c := serve.NewClient(ts.URL)
	boom := errors.New("caller abort")
	retries := 0
	pol := serve.RetryPolicy{MaxAttempts: 4, Sleep: instantSleep, OnRetry: func(int, time.Duration, error) { retries++ }}
	_, err := c.SweepWithResume(context.Background(), serve.SweepRequest{
		Targets: []string{"opengemm"}, Workloads: []string{"matmul"},
		Pipelines: []string{"all"}, Sizes: []int{8},
	}, pol, func(serve.SweepEvent) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the caller's error", err)
	}
	if retries != 0 {
		t.Errorf("retries = %d, want 0 on caller abort", retries)
	}
}
