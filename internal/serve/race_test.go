//go:build race

package serve

// raceEnabled reports whether the race detector instruments this build;
// allocation-count gates skip under it (instrumentation allocates, and
// sync.Pool deliberately drops entries to shake out lifetime bugs).
const raceEnabled = true
