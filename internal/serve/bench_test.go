package serve_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"configwall/internal/core"
	"configwall/internal/serve"
)

// newBenchServer prewarms one cell so the benchmark measures pure serving
// overhead (HTTP + coalescing + admission + marshal) on cache hits — the
// steady-state path a search client hammers.
func newBenchServer(b *testing.B) (*serve.Client, func()) {
	b.Helper()
	runner := core.NewRunner(0)
	sv, err := serve.New(serve.Options{Runner: runner})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	c := serve.NewClient(ts.URL)
	if _, err := c.RunRaw(context.Background(), testExp, core.RunOptions{}); err != nil {
		ts.Close()
		b.Fatal(err)
	}
	return c, func() { ts.Close(); sv.Close() }
}

// BenchmarkServe_CachedRun measures sequential hot-cell request latency.
func BenchmarkServe_CachedRun(b *testing.B) {
	c, stop := newBenchServer(b)
	defer stop()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunRaw(ctx, testExp, core.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServe_CachedRunParallel measures hot-cell throughput with
// concurrent keep-alive clients, the serving benchmark's headline number.
func BenchmarkServe_CachedRunParallel(b *testing.B) {
	c, stop := newBenchServer(b)
	defer stop()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := c.RunRaw(ctx, testExp, core.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
