package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"configwall/internal/core"
	"configwall/internal/serve"
	"configwall/internal/sim"
	"configwall/internal/store"
)

var testExp = core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 8}

// slowStore delays every Load and then misses, so concurrent requests for
// one cell genuinely overlap inside the serving stack; Save is dropped.
type slowStore struct {
	delay time.Duration

	mu    sync.Mutex
	loads int
}

func (s *slowStore) Load(core.Experiment, core.RunOptions) (core.Result, bool, error) {
	time.Sleep(s.delay)
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	return core.Result{}, false, nil
}

func (s *slowStore) Save(core.Experiment, core.RunOptions, core.Result) error { return nil }

func (s *slowStore) Loads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads
}

// newTestServer builds a Server on a fresh runner and mounts it on an
// httptest listener.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server, *serve.Client) {
	t.Helper()
	if opts.Runner == nil {
		opts.Runner = core.NewRunner(0)
	}
	sv, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	t.Cleanup(func() {
		ts.Close()
		sv.Close()
	})
	return sv, ts, serve.NewClient(ts.URL)
}

// directBody computes the expected /v1/run response body: exactly
// json.Marshal of a direct Runner.Run result on a private runner.
func directBody(t *testing.T, e core.Experiment, opts core.RunOptions) []byte {
	t.Helper()
	res, err := core.NewRunner(0).Run(context.Background(), e, opts)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRunByteIdentical asserts the serving contract: GET and POST /v1/run
// bodies are byte-identical to json.Marshal of a direct Runner.Run result.
func TestRunByteIdentical(t *testing.T) {
	_, ts, c := newTestServer(t, serve.Options{})
	opts := core.RunOptions{}
	want := directBody(t, testExp, opts)

	got, err := c.RunRaw(context.Background(), testExp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("GET body differs from direct Runner.Run marshal:\n got %s\nwant %s", got, want)
	}

	// POST with the equivalent JSON body must serve the identical bytes.
	rq := serve.RunRequest{Target: testExp.Target, Workload: testExp.Workload, Pipeline: testExp.Pipeline.String(), N: testExp.N}
	buf, _ := json.Marshal(rq)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	posted, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", resp.StatusCode, posted)
	}
	if !bytes.Equal(posted, want) {
		t.Errorf("POST body differs from direct Runner.Run marshal")
	}
}

// TestCachedFastPath: a repeat request for a completed cell takes the Peek
// fast path — no new simulation, one memory hit, and a response body
// byte-identical to the first answer (clients cannot tell the paths apart).
func TestCachedFastPath(t *testing.T) {
	sv, _, c := newTestServer(t, serve.Options{})
	first, err := c.RunRaw(context.Background(), testExp, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := sv.Runner().Snapshot()

	second, err := c.RunRaw(context.Background(), testExp, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs from cold response:\ncold   %s\ncached %s", first, second)
	}
	after := sv.Runner().Snapshot()
	if after.Runs != before.Runs {
		t.Errorf("repeat request ran %d new simulations, want 0", after.Runs-before.Runs)
	}
	if after.MemHits != before.MemHits+1 {
		t.Errorf("MemHits went %d -> %d, want one memory hit for the cached answer", before.MemHits, after.MemHits)
	}
}

// TestCoalescing fires 64 concurrent identical requests against a server
// whose store is slow, so they all overlap in flight; exactly one
// simulation (and one store load) may happen, and every response must be
// byte-identical.
func TestCoalescing(t *testing.T) {
	st := &slowStore{delay: 100 * time.Millisecond}
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 4, Store: st})
	sv, _, c := newTestServer(t, serve.Options{Runner: runner, Concurrency: 2})

	const clients = 64
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], errs[i] = c.RunRaw(context.Background(), testExp, core.RunOptions{})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if !bytes.Equal(bodies[0], directBody(t, testExp, core.RunOptions{})) {
		t.Error("coalesced responses differ from direct Runner.Run marshal")
	}
	stats := sv.Runner().Snapshot()
	if stats.Runs != 1 {
		t.Errorf("Runs = %d, want exactly 1 simulation for 64 concurrent identical requests", stats.Runs)
	}
	if got := st.Loads(); got != 1 {
		t.Errorf("store loads = %d, want 1 (coalescing must also collapse store traffic)", got)
	}
}

// TestValidation rejects malformed requests with 400 and a message that
// lists the valid names.
func TestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	cases := []struct {
		name, query, want string
	}{
		{"unknown target", "target=tpu&workload=matmul&pipeline=all&n=8", "unknown target"},
		{"missing target", "workload=matmul&pipeline=all&n=8", "registered"},
		{"unknown workload", "target=opengemm&workload=conv&pipeline=all&n=8", "unknown workload"},
		{"unknown pipeline", "target=opengemm&workload=matmul&pipeline=turbo&n=8", "unknown pipeline"},
		{"unknown engine", "target=opengemm&workload=matmul&pipeline=all&n=8&engine=warp", "valid engines"},
		{"bad n", "target=opengemm&workload=matmul&pipeline=all&n=0", "positive sweep size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + "/v1/run?" + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("body %q does not mention %q", body, tc.want)
			}
		})
	}
}

// TestBackpressure asserts the admission queue sheds load as 429 instead
// of queuing without bound: with one slot and no queue, concurrent
// distinct-cell requests beyond the slot are rejected immediately.
func TestBackpressure(t *testing.T) {
	st := &slowStore{delay: 300 * time.Millisecond}
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 4, Store: st})
	_, ts, c := newTestServer(t, serve.Options{Runner: runner, Concurrency: 1, QueueDepth: -1})

	const clients = 4
	codes := make([]int, clients)
	retryAfter := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := testExp
			e.N = 8 * (i + 1) // distinct cells: coalescing must not absorb them
			_, err := c.RunRaw(context.Background(), e, core.RunOptions{})
			codes[i] = http.StatusOK
			if err != nil {
				if se, ok := err.(*serve.StatusError); ok {
					codes[i] = se.Code
					retryAfter[i] = se.RetryAfter
				} else {
					codes[i] = -1
				}
			}
		}(i)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			// Every 429 carries a positive, bounded Retry-After derived from
			// the live queue state — never zero, never past the queue timeout.
			if retryAfter[i] < 1 || retryAfter[i] > 30 {
				t.Errorf("request %d: Retry-After %d outside [1, queue timeout]", i, retryAfter[i])
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, code)
		}
	}
	if ok < 1 || rejected < 1 {
		t.Errorf("got %d ok / %d rejected, want at least one of each", ok, rejected)
	}
	// The rejection must surface in /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metrics), "cwserve_rejected_total") {
		t.Error("metrics do not export cwserve_rejected_total")
	}
}

// TestQueueTimeout asserts a queued request 429s once the queue wait
// exceeds the configured timeout.
func TestQueueTimeout(t *testing.T) {
	st := &slowStore{delay: 500 * time.Millisecond}
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 4, Store: st})
	_, _, c := newTestServer(t, serve.Options{
		Runner: runner, Concurrency: 1, QueueDepth: 4, QueueTimeout: 30 * time.Millisecond,
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.RunRaw(context.Background(), testExp, core.RunOptions{}) // occupies the slot
	}()
	time.Sleep(100 * time.Millisecond) // let the first request take the slot

	other := testExp
	other.N = 16
	_, err := c.RunRaw(context.Background(), other, core.RunOptions{})
	se, ok := err.(*serve.StatusError)
	if !ok || se.Code != http.StatusTooManyRequests {
		t.Errorf("queued request returned %v, want a 429 StatusError", err)
	}
	if ok && !strings.Contains(se.Body, "timed out") {
		t.Errorf("429 body %q does not mention the queue timeout", se.Body)
	}
	// With a 30ms queue timeout the derived hint clamps to its 1s floor
	// and its ceil(timeout) ceiling simultaneously: exactly 1.
	if ok && se.RetryAfter != 1 {
		t.Errorf("Retry-After = %d, want 1 (clamped to the 30ms queue timeout)", se.RetryAfter)
	}
	wg.Wait()
}

// TestSweepStream runs a small grid through the NDJSON streaming endpoint
// and checks every cell arrives exactly once with results identical to
// direct execution, then the summary line.
func TestSweepStream(t *testing.T) {
	_, _, c := newTestServer(t, serve.Options{})
	rq := serve.SweepRequest{
		Targets:   []string{"opengemm"},
		Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base", "all"},
		Sizes:     []int{8, 16},
	}

	seen := map[int]core.Result{}
	summary, err := c.Sweep(context.Background(), rq, func(ev serve.SweepEvent) error {
		if ev.Error != "" {
			return fmt.Errorf("cell %v failed: %s", ev.Index, ev.Error)
		}
		if ev.Index == nil || ev.Result == nil || ev.Experiment == nil {
			return fmt.Errorf("malformed event %+v", ev)
		}
		if _, dup := seen[*ev.Index]; dup {
			return fmt.Errorf("index %d delivered twice", *ev.Index)
		}
		seen[*ev.Index] = *ev.Result
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Cells != 4 || summary.Failed != 0 {
		t.Fatalf("summary = %+v, want 4 cells, 0 failed", summary)
	}
	if len(seen) != 4 {
		t.Fatalf("got %d events, want 4", len(seen))
	}

	pipes := []core.Pipeline{core.Baseline, core.AllOptimizations}
	exps := core.Sweep(rq.Targets, rq.Workloads, pipes, rq.Sizes)
	direct, err := core.NewRunner(0).RunAll(context.Background(), exps, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range direct {
		if !reflect.DeepEqual(seen[i], want) {
			t.Errorf("cell %d (%s): streamed result differs from direct RunAll", i, exps[i])
		}
	}
}

// TestSweepArray checks the non-streaming mode returns one JSON array in
// input order, byte-identical to marshaling the direct RunAll results.
func TestSweepArray(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{})
	stream := false
	rq := serve.SweepRequest{
		Targets:   []string{"opengemm"},
		Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base", "all"},
		Sizes:     []int{8},
		Stream:    &stream,
	}
	buf, _ := json.Marshal(rq)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	exps := core.Sweep(rq.Targets, rq.Workloads, []core.Pipeline{core.Baseline, core.AllOptimizations}, rq.Sizes)
	direct, err := core.NewRunner(0).RunAll(context.Background(), exps, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	if !bytes.Equal(body, want) {
		t.Errorf("array sweep body differs from direct RunAll marshal")
	}
}

// TestSweepValidation covers grid-level rejections: empty axes, unknown
// names and the sweep-size cap.
func TestSweepValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{MaxSweepCells: 2})
	post := func(rq serve.SweepRequest) (int, string) {
		buf, _ := json.Marshal(rq)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := post(serve.SweepRequest{}); code != http.StatusBadRequest || !strings.Contains(body, "registered targets") {
		t.Errorf("empty sweep: %d %q", code, body)
	}
	big := serve.SweepRequest{
		Targets: []string{"opengemm"}, Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base", "all"}, Sizes: []int{8, 12},
	}
	if code, body := post(big); code != http.StatusBadRequest || !strings.Contains(body, "above the server cap") {
		t.Errorf("over-cap sweep: %d %q", code, body)
	}
}

// rankPredictor is a stub analytic tier for fidelity tests: instant
// Analytic results ranked by N (larger N predicts more ops/cycle).
type rankPredictor struct{}

func (rankPredictor) Predict(e core.Experiment) (core.Result, error) {
	res := core.Result{Target: e.Target, Workload: e.Workload, Pipeline: e.Pipeline, N: e.N, Analytic: true}
	res.Cycles = 1000
	res.AccelOps = uint64(e.N)
	return res, nil
}

// TestSweepFidelityScreen: a screen-fidelity sweep answers the whole grid
// analytically — zero simulator invocations, counter-asserted on the
// runner and in /metrics.
func TestSweepFidelityScreen(t *testing.T) {
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 2, Predictor: rankPredictor{}})
	sv, ts, c := newTestServer(t, serve.Options{Runner: runner})
	rq := serve.SweepRequest{
		Targets:   []string{"opengemm"},
		Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base", "all"},
		Sizes:     []int{8, 16},
		Fidelity:  "screen",
	}

	events := 0
	summary, err := c.Sweep(context.Background(), rq, func(ev serve.SweepEvent) error {
		if ev.Result == nil || !ev.Result.Analytic {
			return fmt.Errorf("screen event %+v is not an Analytic result", ev)
		}
		events++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Cells != 4 || summary.Failed != 0 || events != 4 {
		t.Fatalf("summary %+v with %d events, want 4 analytic cells", summary, events)
	}
	if st := sv.Runner().Snapshot(); st.Runs != 0 || st.Predictions != 4 {
		t.Errorf("screen sweep counters: %d runs, %d predictions; want 0, 4", st.Runs, st.Predictions)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metrics), `cwserve_sweep_cells_total{tier="analytic"} 4`) {
		t.Errorf("metrics missing the analytic sweep-cell counter:\n%s", metrics)
	}

	// Non-streaming screen returns the prediction array in input order.
	stream := false
	rq.Stream = &stream
	buf, _ := json.Marshal(rq)
	post, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	body, _ := io.ReadAll(post.Body)
	if post.StatusCode != http.StatusOK {
		t.Fatalf("array screen status %d: %s", post.StatusCode, body)
	}
	var arr []core.Result
	if err := json.Unmarshal(body, &arr); err != nil || len(arr) != 4 {
		t.Fatalf("array screen body: %v (%d results)", err, len(arr))
	}
	for i, re := range arr {
		if !re.Analytic {
			t.Errorf("array screen result %d not Analytic", i)
		}
	}
}

// TestSweepFidelityTopK: a topk sweep simulates exactly the top_k
// predicted-fastest cells and answers the rest analytically, with both
// tiers counted in /metrics.
func TestSweepFidelityTopK(t *testing.T) {
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 2, Predictor: rankPredictor{}})
	sv, ts, c := newTestServer(t, serve.Options{Runner: runner})
	rq := serve.SweepRequest{
		Targets:   []string{"opengemm"},
		Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base", "all"},
		Sizes:     []int{8, 16},
		Fidelity:  "topk",
		TopK:      2,
	}

	simulated := 0
	summary, err := c.Sweep(context.Background(), rq, func(ev serve.SweepEvent) error {
		if ev.Error != "" {
			return fmt.Errorf("cell %v failed: %s", ev.Index, ev.Error)
		}
		if !ev.Result.Analytic {
			simulated++
			if ev.Result.N != 16 {
				return fmt.Errorf("simulated cell N=%d; the stub ranks the N=16 cells fastest", ev.Result.N)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Cells != 4 || summary.Failed != 0 {
		t.Fatalf("summary = %+v, want 4 cells, 0 failed", summary)
	}
	if simulated != 2 {
		t.Fatalf("%d simulated cells, want 2", simulated)
	}
	if st := sv.Runner().Snapshot(); st.Runs != 2 {
		t.Errorf("Runs = %d, want exactly the top-2 cells", st.Runs)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`cwserve_sweep_cells_total{tier="analytic"} 2`,
		`cwserve_sweep_cells_total{tier="simulated"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSweepFidelityValidation: fidelity/top_k combinations that cannot be
// honored are rejected up front with a 400.
func TestSweepFidelityValidation(t *testing.T) {
	// No predictor on this server.
	_, ts, _ := newTestServer(t, serve.Options{})
	post := func(rq serve.SweepRequest) (int, string) {
		buf, _ := json.Marshal(rq)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	base := serve.SweepRequest{
		Targets: []string{"opengemm"}, Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base"}, Sizes: []int{8},
	}

	rq := base
	rq.Fidelity = "screen"
	if code, body := post(rq); code != http.StatusBadRequest || !strings.Contains(body, "analytic model") {
		t.Errorf("screen without a model: %d %q", code, body)
	}
	rq = base
	rq.Fidelity = "warp9"
	if code, body := post(rq); code != http.StatusBadRequest || !strings.Contains(body, "unknown fidelity") {
		t.Errorf("unknown fidelity: %d %q", code, body)
	}
	rq = base
	rq.Fidelity = "topk"
	if code, body := post(rq); code != http.StatusBadRequest || !strings.Contains(body, "top_k >= 1") {
		t.Errorf("topk without top_k: %d %q", code, body)
	}
	rq = base
	rq.TopK = 3
	if code, body := post(rq); code != http.StatusBadRequest || !strings.Contains(body, `requires fidelity "topk"`) {
		t.Errorf("top_k without topk fidelity: %d %q", code, body)
	}
}

// TestRegistry checks the discovery endpoint lists the built-in names.
func TestRegistry(t *testing.T) {
	_, _, c := newTestServer(t, serve.Options{})
	info, err := c.Registry(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !contains(info.Targets, "gemmini") || !contains(info.Targets, "opengemm") {
		t.Errorf("targets = %v, want gemmini and opengemm", info.Targets)
	}
	if !contains(info.Workloads, core.WorkloadMatmul) {
		t.Errorf("workloads = %v, want %s", info.Workloads, core.WorkloadMatmul)
	}
	if !contains(info.Engines, "ref") || !contains(info.Engines, "fast") {
		t.Errorf("engines = %v, want ref and fast", info.Engines)
	}
	if !contains(info.Pipelines, "base") || !contains(info.Pipelines, "all") {
		t.Errorf("pipelines = %v, want base and all", info.Pipelines)
	}
	if info.MaxN <= 0 || info.MaxSweepCells <= 0 {
		t.Errorf("caps not reported: max_n=%d max_sweep_cells=%d", info.MaxN, info.MaxSweepCells)
	}
	if info.Analytic {
		t.Errorf("Analytic = true on a server without a predictor")
	}
	// The size grids must respect each target's tiling rules: gemmini
	// matmul needs multiples of 16, opengemm multiples of 8 — so 8 is
	// feasible for opengemm only, 16 for both, and nothing above MaxN
	// appears.
	gm := info.Sizes[core.WorkloadMatmul]["gemmini"]
	og := info.Sizes[core.WorkloadMatmul]["opengemm"]
	if len(gm) == 0 || len(og) == 0 {
		t.Fatalf("matmul size grids missing: gemmini=%v opengemm=%v", gm, og)
	}
	if containsInt(gm, 8) {
		t.Errorf("gemmini matmul sizes %v include 8 (tile is 16)", gm)
	}
	if !containsInt(gm, 16) || !containsInt(og, 8) || !containsInt(og, 16) {
		t.Errorf("expected 16 in gemmini %v and 8,16 in opengemm %v", gm, og)
	}
	for _, n := range og {
		if n > info.MaxN {
			t.Errorf("size %d above the reported cap %d", n, info.MaxN)
		}
	}
}

// TestRegistryAnalytic: a server whose runner has a predictor attached
// must advertise the analytic tier.
func TestRegistryAnalytic(t *testing.T) {
	sv, _, c := newTestServer(t, serve.Options{})
	sv.Runner().SetPredictor(rankPredictor{})
	info, err := c.Registry(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Analytic {
		t.Errorf("Analytic = false with a predictor attached")
	}
}

func containsInt(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestMetrics checks the exposition contains the cache counters, gauges
// and latency histogram after traffic.
func TestMetrics(t *testing.T) {
	_, _, c := newTestServer(t, serve.Options{})
	if _, err := c.RunRaw(context.Background(), testExp, core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"cwserve_cache_runs_total 1",
		"cwserve_cache_mem_hits_total",
		"cwserve_cache_evictions_total",
		`cwserve_requests_total{endpoint="run",code="200"} 1`,
		"cwserve_queue_depth 0",
		"cwserve_slots_busy 0",
		`cwserve_latency_seconds_bucket{endpoint="run",le="+Inf"} 1`,
		`cwserve_latency_seconds_count{endpoint="run"} 1`,
		// Runtime memory gauges carry live values; assert presence only.
		"cwserve_go_heap_alloc_bytes ",
		"cwserve_go_heap_objects ",
		"cwserve_go_gc_pause_seconds_total ",
		"cwserve_go_gc_cycles_total ",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestHealthzAndDrain checks the health endpoint flips to 503 on drain
// and experiment endpoints reject new work while draining.
func TestHealthzAndDrain(t *testing.T) {
	sv, ts, c := newTestServer(t, serve.Options{})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}
	sv.BeginDrain()
	err := c.Healthz(context.Background())
	se, ok := err.(*serve.StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %v, want 503", err)
	}
	resp, err := http.Get(ts.URL + "/v1/run?target=opengemm&workload=matmul&pipeline=all&n=8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run during drain = %d, want 503", resp.StatusCode)
	}
}

// TestWarmFromStore boots a server over a store another runner populated
// and checks requests are answered without any simulation.
func TestWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	exps := []core.Experiment{testExp, {Target: "gemmini", Workload: core.WorkloadMatmul, Pipeline: core.Baseline, N: 16}}
	opts := core.RunOptions{Engine: sim.EngineFast}
	first := core.NewRunnerWith(core.RunnerOptions{Store: st})
	if _, err := first.RunAll(context.Background(), exps, opts); err != nil {
		t.Fatal(err)
	}

	// A fresh store handle (fresh process, in spirit) backs the server.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewRunnerWith(core.RunnerOptions{Store: st2})
	sv, _, c := newTestServer(t, serve.Options{Runner: runner})
	warmed, err := sv.WarmFromStore(context.Background(), st2)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != len(exps) {
		t.Fatalf("warmed %d cells, want %d", warmed, len(exps))
	}
	for _, e := range exps {
		if _, err := c.RunRaw(context.Background(), e, opts); err != nil {
			t.Fatal(err)
		}
	}
	stats := sv.Runner().Snapshot()
	if stats.Runs != 0 {
		t.Errorf("Runs = %d after warm boot, want 0 (everything served from the warmed cache)", stats.Runs)
	}
}

// TestAcceptanceLoadGen is the PR's acceptance criterion: ≥10k requests
// of a zipf-skewed (≥90% repeat) mix complete with zero duplicate
// simulator runs for concurrently in-flight identical experiments, every
// response byte-identical to a direct Runner.Run result, and the server
// drains cleanly with no goroutine leaks.
func TestAcceptanceLoadGen(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request acceptance run skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	runner := core.NewRunner(0)
	sv, err := serve.New(serve.Options{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	c := serve.NewClient(ts.URL)

	// 8 distinct cells; 10k zipf-drawn requests repeat them >99% of the
	// time, exactly the overlapping-query traffic of a search client.
	universe := core.Sweep(
		[]string{"opengemm", "gemmini"},
		[]string{core.WorkloadMatmul},
		[]core.Pipeline{core.Baseline, core.AllOptimizations},
		[]int{16, 32},
	)
	opts := core.RunOptions{}
	rep, err := serve.LoadGen(context.Background(), c, serve.LoadGenOptions{
		Experiments: universe,
		Options:     opts,
		Requests:    10000,
		Clients:     16,
		ZipfS:       1.4,
		Seed:        1,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Errors != 0 {
		t.Errorf("loadgen errors = %d, want 0 (status histogram: %v)", rep.Errors, rep.StatusHist)
	}
	if rep.Mismatched != 0 {
		t.Errorf("byte-identity mismatches = %d, want 0", rep.Mismatched)
	}

	// Zero duplicate simulations: every distinct cell ran exactly once.
	stats := runner.Snapshot()
	if stats.Runs != uint64(rep.Distinct) {
		t.Errorf("Runs = %d for %d distinct cells — duplicate simulations happened", stats.Runs, rep.Distinct)
	}

	// Full byte-identity against direct execution for every cell.
	canonical, err := serve.CanonicalBodies(context.Background(), universe, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range universe {
		body, err := c.RunRaw(context.Background(), e, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want := canonical[core.FingerprintKey(e, opts)]; !bytes.Equal(body, want) {
			t.Errorf("%s: served body differs from direct Runner.Run marshal", e)
		}
	}

	// Clean drain: no goroutine may outlive the server.
	sv.BeginDrain()
	ts.Close()
	sv.Close()
	c.HTTPClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d now vs %d at start\n%s", g, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestMaxNCap rejects huge-n requests up front: a claimed cell always
// computes to completion, so admission-time is the only place to stop an
// O(n^3) simulation from wedging a slot for hours.
func TestMaxNCap(t *testing.T) {
	_, ts, _ := newTestServer(t, serve.Options{MaxN: 64})
	resp, err := http.Get(ts.URL + "/v1/run?target=opengemm&workload=matmul&pipeline=all&n=128")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "above the server cap") {
		t.Errorf("n over cap: %d %q, want 400 naming the cap", resp.StatusCode, body)
	}

	big, _ := json.Marshal(serve.SweepRequest{
		Targets: []string{"opengemm"}, Workloads: []string{core.WorkloadMatmul},
		Pipelines: []string{"base"}, Sizes: []int{128},
	})
	sresp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sbody, _ := io.ReadAll(sresp.Body)
	if sresp.StatusCode != http.StatusBadRequest || !strings.Contains(string(sbody), "above the server cap") {
		t.Errorf("sweep size over cap: %d %q, want 400 naming the cap", sresp.StatusCode, sbody)
	}
}

// TestPanicContainment: a cell whose build panics must produce a 500 for
// that request — never take down the daemon — and leave the server
// serving other cells.
func TestPanicContainment(t *testing.T) {
	registerPanicky(t)
	_, ts, c := newTestServer(t, serve.Options{})
	resp, err := http.Get(ts.URL + "/v1/run?target=opengemm&workload=panicky&pipeline=base&n=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), "panic") {
		t.Errorf("panicking cell: %d %q, want 500 mentioning the panic", resp.StatusCode, body)
	}
	// The daemon survived and still serves healthy cells.
	if _, err := c.RunRaw(context.Background(), testExp, core.RunOptions{}); err != nil {
		t.Errorf("healthy cell after a panicking one: %v", err)
	}
}

var panickyOnce sync.Once

// registerPanicky registers (once; the registry is global) a workload
// whose Build panics.
func registerPanicky(t *testing.T) {
	t.Helper()
	panickyOnce.Do(func() {
		err := core.RegisterWorkload(core.Workload{
			Name:        "panicky",
			Description: "test workload whose build panics",
			Build:       func(core.Target, int) (core.Instance, error) { panic("kaboom") },
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSweepSurvivesRequestModeRejection: a sweep cell that coalesces onto
// a /v1/run flight leader shed by admission control must not inherit the
// 429 — batch cells wait for slots, so the sweep retries with batch
// semantics and completes.
func TestSweepSurvivesRequestModeRejection(t *testing.T) {
	st := &slowStore{delay: 400 * time.Millisecond}
	runner := core.NewRunnerWith(core.RunnerOptions{Workers: 4, Store: st})
	_, _, c := newTestServer(t, serve.Options{
		Runner: runner, Concurrency: 1, QueueDepth: 4, QueueTimeout: 50 * time.Millisecond,
	})

	// Cell A occupies the single slot for ~400ms.
	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		c.RunRaw(context.Background(), testExp, core.RunOptions{})
	}()
	time.Sleep(100 * time.Millisecond)

	// Cell X: a request-mode GET races a sweep containing the same cell.
	// Whichever leads, the sweep must stream X successfully — the GET may
	// legitimately 429, the sweep may not.
	x := testExp
	x.N = 16
	getDone := make(chan error, 1)
	go func() {
		_, err := c.RunRaw(context.Background(), x, core.RunOptions{})
		getDone <- err
	}()
	summary, err := c.Sweep(context.Background(), serve.SweepRequest{
		Targets: []string{x.Target}, Workloads: []string{x.Workload},
		Pipelines: []string{"all"}, Sizes: []int{x.N},
	}, func(ev serve.SweepEvent) error {
		if ev.Error != "" {
			return fmt.Errorf("sweep cell failed: %s", ev.Error)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if summary.Failed != 0 || summary.Cells != 1 {
		t.Fatalf("summary = %+v, want 1 cell, 0 failed", summary)
	}
	if err := <-getDone; err != nil {
		if se, ok := err.(*serve.StatusError); !ok || se.Code != http.StatusTooManyRequests {
			t.Errorf("concurrent GET: %v, want success or a 429", err)
		}
	}
	<-occupied
}
