// Package serve exposes the memoized experiment runner and its persistent
// store over HTTP, turning the reproduction into a long-lived
// experiment-measurement service: configuration-search clients
// (autotuners, dashboards, sweep drivers) hammer the same measurement
// cache with heavily overlapping queries, and the server answers them
// with exactly one simulation per distinct cell.
//
// The layering (DESIGN.md §7):
//
//	HTTP handlers → flightGroup (coalesce identical in-flight requests)
//	             → admission (bounded concurrency + queue, 429 backpressure)
//	             → core.Runner (memoization, worker pool, persistent store)
//
// Endpoints:
//
//	GET/POST /v1/run    one experiment cell; the response body is
//	                    byte-identical to json.Marshal of a direct
//	                    Runner.Run result
//	POST     /v1/sweep  a (targets × workloads × pipelines × sizes) grid;
//	                    streams NDJSON events as cells complete, or
//	                    returns a JSON array with "stream": false
//	GET      /v1/registry  registered targets/workloads/pipelines/engines
//	GET      /metrics   Prometheus text: cache counters, queue gauges,
//	                    latency histograms
//	GET      /healthz   200 ok, 503 once draining
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"configwall/internal/core"
	"configwall/internal/fault"
	"configwall/internal/sim"
	"configwall/internal/store"
)

// Options configures a Server.
type Options struct {
	// Runner executes and memoizes the experiments. Required.
	Runner *core.Runner
	// Concurrency bounds how many distinct experiment cells compute at
	// once; <= 0 selects the runner's worker bound.
	Concurrency int
	// QueueDepth bounds how many distinct-cell requests may wait for an
	// execution slot beyond Concurrency; 0 selects the default (64), < 0
	// disables queuing (immediate rejection when all slots are busy).
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before a 429; <= 0 selects the default (30s).
	QueueTimeout time.Duration
	// MaxSweepCells caps the grid size one /v1/sweep request may expand
	// to; <= 0 selects the default (4096).
	MaxSweepCells int
	// MaxN caps the sweep size n of any requested cell; <= 0 selects the
	// default (1024). Simulation cost grows ~O(n^3) and a claimed cell
	// always computes to completion, so without this cap a handful of
	// huge-n requests could wedge every execution slot for hours.
	MaxN int
	// Fault, when non-nil, installs a fault-injection plan on the serving
	// path (the chaos harness's hook): the plan's serve.handler.panic and
	// serve.run.panic sites fire panics that the recovery layers must
	// contain. Production servers leave it nil — the disabled check is
	// one pointer comparison.
	Fault *fault.Plan
}

const (
	defaultQueueDepth    = 64
	defaultQueueTimeout  = 30 * time.Second
	defaultMaxSweepCells = 4096
	defaultMaxN          = 1024
)

// Server is the experiment-serving daemon core: an http.Handler over a
// core.Runner with request coalescing, admission control and live
// metrics. Create one with New, mount it on an http.Server, and call
// BeginDrain/Close around the listener's shutdown.
type Server struct {
	runner        *core.Runner
	admit         *admission
	flight        *flightGroup
	met           *metrics
	mux           *http.ServeMux
	maxSweepCells int
	maxN          int
	fault         *fault.Plan

	// sizes caches the per-(workload, target) feasible size grids served
	// by /v1/registry; the registry is append-only after init and the
	// probe is pure, so computing it once per server life is safe.
	sizesOnce sync.Once
	sizes     map[string]map[string][]int

	baseCtx  context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
}

// New builds a Server from opts.
func New(opts Options) (*Server, error) {
	if opts.Runner == nil {
		return nil, fmt.Errorf("serve: Options.Runner is required")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = opts.Runner.Workers()
	}
	depth := opts.QueueDepth
	switch {
	case depth == 0:
		depth = defaultQueueDepth
	case depth < 0:
		depth = 0
	}
	timeout := opts.QueueTimeout
	if timeout <= 0 {
		timeout = defaultQueueTimeout
	}
	maxCells := opts.MaxSweepCells
	if maxCells <= 0 {
		maxCells = defaultMaxSweepCells
	}
	maxN := opts.MaxN
	if maxN <= 0 {
		maxN = defaultMaxN
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		runner:        opts.Runner,
		admit:         newAdmission(conc, depth, timeout),
		flight:        newFlightGroup(ctx),
		met:           newMetrics(),
		mux:           http.NewServeMux(),
		maxSweepCells: maxCells,
		maxN:          maxN,
		fault:         opts.Fault,
		baseCtx:       ctx,
		cancel:        cancel,
	}
	// Panics recovered by the flight group (a poisoned workload, an
	// injected run-path fault) count alongside handler-level recoveries.
	s.flight.onPanic = s.met.panicked
	s.mux.HandleFunc("/v1/run", s.instrument("run", s.handleRun))
	s.mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/registry", s.instrument("registry", s.handleRegistry))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Runner returns the server's runner (for stats inspection).
func (s *Server) Runner() *core.Runner { return s.runner }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// WarmFromStore enumerates every entry of the disk store and preloads it
// into the runner's in-memory cell map, so a freshly booted server answers
// everything a previous life measured without touching the simulator. It
// returns how many cells it loaded. Cancelling ctx stops the scan early.
func (s *Server) WarmFromStore(ctx context.Context, st *store.DiskStore) (int, error) {
	warmed := 0
	err := st.Each(func(e store.Entry) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.runner.Preload(e.Experiment, e.Options, e.Result) {
			warmed++
		}
		return nil
	})
	return warmed, err
}

// BeginDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, and new experiment requests are
// rejected with 503 while requests already in flight finish normally.
// Call it before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close cancels the server's base context, unblocking any computation
// still queued for admission. Call it after http.Server.Shutdown returns.
func (s *Server) Close() { s.cancel() }

// instrument wraps a handler with drain rejection, request metrics and
// panic recovery: a panicking handler answers 500 (when nothing has been
// written yet) instead of killing the connection with no response, the
// recovery is counted in cwserve_panics_recovered_total, and the daemon
// stays up. Admission slots and flight entries never leak across a panic
// — their releases are deferred, and deferred calls run during the
// unwind before the recovery here sees it.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "server is draining", http.StatusServiceUnavailable)
			s.met.observe(endpoint, http.StatusServiceUnavailable, 0)
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panicked()
				// Best-effort 500: if the handler already wrote a status
				// (or streamed part of a body), the wire is what it is —
				// the client's truncation detection takes over from here.
				if !sw.wrote {
					http.Error(sw, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
				}
			}
			s.met.observe(endpoint, sw.code, time.Since(start))
		}()
		if s.fault.Fire(fault.ServeHandlerPanic) {
			panic("fault: injected handler panic")
		}
		h(sw, r)
	}
}

// statusWriter records the status code a handler wrote, and whether
// anything was written at all (panic recovery can only synthesize a 500
// on an untouched response).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Flush forwards streaming flushes (NDJSON sweeps) to the underlying
// writer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RunRequest is the JSON body of POST /v1/run; GET passes the same fields
// as query parameters (target, workload, pipeline, n, engine, trace,
// skipverify).
type RunRequest struct {
	Target      string `json:"target"`
	Workload    string `json:"workload"`
	Pipeline    string `json:"pipeline"`
	N           int    `json:"n"`
	Engine      string `json:"engine,omitempty"`
	RecordTrace bool   `json:"record_trace,omitempty"`
	SkipVerify  bool   `json:"skip_verify,omitempty"`
}

// resolve validates the request against the registry and returns the
// experiment cell and run options it names. Error messages list the valid
// names so misconfigured clients fail fast and self-documentingly.
func (rq RunRequest) resolve(maxN int) (core.Experiment, core.RunOptions, error) {
	var e core.Experiment
	var opts core.RunOptions
	if rq.Target == "" {
		return e, opts, fmt.Errorf("missing target (registered: %s)", strings.Join(core.TargetNames(), ", "))
	}
	if _, err := core.LookupTarget(rq.Target); err != nil {
		return e, opts, err
	}
	if rq.Workload == "" {
		return e, opts, fmt.Errorf("missing workload (registered: %s)", strings.Join(core.WorkloadNames(), ", "))
	}
	if _, err := core.LookupWorkload(rq.Workload); err != nil {
		return e, opts, err
	}
	p, err := core.PipelineByName(rq.Pipeline)
	if err != nil {
		return e, opts, err
	}
	if rq.N < 1 {
		return e, opts, fmt.Errorf("bad n %d: want a positive sweep size", rq.N)
	}
	if rq.N > maxN {
		return e, opts, fmt.Errorf("n %d is above the server cap of %d", rq.N, maxN)
	}
	eng := sim.EngineRef
	if rq.Engine != "" {
		if eng, err = sim.EngineByName(rq.Engine); err != nil {
			return e, opts, err
		}
	}
	e = core.Experiment{Target: rq.Target, Workload: rq.Workload, Pipeline: p, N: rq.N}
	opts = core.RunOptions{RecordTrace: rq.RecordTrace, SkipVerify: rq.SkipVerify, Engine: eng}
	return e, opts, nil
}

// parseRunRequest decodes GET query parameters or a POST JSON body.
func parseRunRequest(r *http.Request) (RunRequest, error) {
	var rq RunRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		rq.Target = q.Get("target")
		rq.Workload = q.Get("workload")
		rq.Pipeline = q.Get("pipeline")
		rq.Engine = q.Get("engine")
		var err error
		if nv := q.Get("n"); nv != "" {
			if rq.N, err = strconv.Atoi(nv); err != nil {
				return rq, fmt.Errorf("bad n %q: %v", nv, err)
			}
		}
		if rq.RecordTrace, err = boolParam(q.Get("trace")); err != nil {
			return rq, fmt.Errorf("bad trace: %v", err)
		}
		if rq.SkipVerify, err = boolParam(q.Get("skipverify")); err != nil {
			return rq, fmt.Errorf("bad skipverify: %v", err)
		}
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rq); err != nil {
			return rq, fmt.Errorf("bad JSON body: %v", err)
		}
	default:
		return rq, errMethod
	}
	return rq, nil
}

var errMethod = errors.New("method not allowed")

func boolParam(v string) (bool, error) {
	if v == "" {
		return false, nil
	}
	return strconv.ParseBool(v)
}

// execute runs one validated cell through the full serving stack:
// coalescing, then admission, then the memoized runner. wait selects
// batch admission semantics (sweep cells block for slots instead of
// 429ing). reqCtx governs only this caller's wait: the computation runs
// on the flight leader's context, which outlives any single request and
// cancels only when the server closes or every attached request has gone
// away — so a cell wanted by anyone keeps going, and a cell wanted by
// no one stops consuming queue positions and workers.
func (s *Server) execute(reqCtx context.Context, e core.Experiment, opts core.RunOptions, wait bool) (core.Result, error, bool) {
	key := core.FingerprintKey(e, opts)
	wasCoalesced := false
	for {
		res, err, coalesced := s.flight.do(reqCtx, key, func(runCtx context.Context) (core.Result, error) {
			var release func()
			var aerr error
			if wait {
				release, aerr = s.admit.acquireWait(runCtx)
			} else {
				release, aerr = s.admit.acquire(runCtx)
			}
			if aerr != nil {
				return core.Result{}, aerr
			}
			defer release()
			// Injected after the slot is held and its release deferred: the
			// unwind runs the deferred release, the flight group's recover
			// contains the panic as this cell's error, and its deferred map
			// cleanup removes the entry — the recovery contract the chaos
			// campaign asserts (no leaked slots, no leaked flight entries).
			if s.fault.Fire(fault.ServeRunPanic) {
				panic("fault: injected run-path panic")
			}
			return s.runner.Run(runCtx, e, opts)
		})
		if coalesced && !wasCoalesced {
			wasCoalesced = true
			s.met.coalesce()
		}
		// A batch cell may have attached to a request-mode leader that was
		// shed by admission control; rejection is the request contract,
		// not the batch one, so retry — the failed call is gone from the
		// flight map and the retry starts (or joins) a waiting leader.
		if wait && coalesced && (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrQueueTimeout)) && reqCtx.Err() == nil {
			continue
		}
		return res, err, wasCoalesced
	}
}

// writeRunError maps an execution error onto an HTTP status.
func (s *Server) writeRunError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueTimeout):
		reason := "queue_full"
		if errors.Is(err, ErrQueueTimeout) {
			reason = "queue_timeout"
		}
		s.met.reject(reason)
		// The hint is derived from live load — expected drain time of the
		// admitted work — not a hardcoded constant, so well-behaved clients
		// back off proportionally to how far behind the server actually is.
		w.Header().Set("Retry-After", strconv.Itoa(s.admit.retryAfterSeconds()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			// The client went away; nobody is reading the response.
			return
		}
		http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rq, err := parseRunRequest(r)
	if errors.Is(err, errMethod) {
		http.Error(w, err.Error(), http.StatusMethodNotAllowed)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e, opts, err := rq.resolve(s.maxN)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Cached fast path: a completed cell answers with one runner map
	// lookup and a pooled response encode — no fingerprint computation,
	// no flight-group handshake, no admission slot. The Peek result is
	// the shared cached Result; writeJSON only reads it.
	if cached, ok := s.runner.Peek(e, opts); ok {
		if err := writeJSON(w, cached); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	res, err, _ := s.execute(r.Context(), e, opts, false)
	if err != nil {
		s.writeRunError(w, r, err)
		return
	}
	// The body is exactly json.Marshal(core.Result) — byte-identical to
	// what a direct Runner.Run caller would serialize, on both the cached
	// and the computed path. Tests and the load generator rely on it.
	if err := writeJSON(w, &res); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// SweepRequest is the JSON body of POST /v1/sweep: the cross product of
// the listed names is validated against the registry and executed on the
// worker pool.
type SweepRequest struct {
	Targets     []string `json:"targets"`
	Workloads   []string `json:"workloads"`
	Pipelines   []string `json:"pipelines"`
	Sizes       []int    `json:"sizes"`
	Engine      string   `json:"engine,omitempty"`
	RecordTrace bool     `json:"record_trace,omitempty"`
	SkipVerify  bool     `json:"skip_verify,omitempty"`
	// Stream selects NDJSON event streaming (the default); set it to
	// false for a single JSON array response in input order.
	Stream *bool `json:"stream,omitempty"`
	// Fidelity selects the prediction tier (DESIGN.md §10): "" or "full"
	// simulates every cell; "screen" answers the whole grid from the
	// analytical model (zero simulations, results marked Analytic);
	// "topk" screens the grid and simulates only the TopK cells with the
	// best predicted ops/cycle. "screen" and "topk" require a server
	// booted with a calibrated model (cwserve -analytic).
	Fidelity string `json:"fidelity,omitempty"`
	// TopK is the simulated-cell budget of a "topk" sweep; required >= 1
	// there, rejected elsewhere.
	TopK int `json:"top_k,omitempty"`
}

// SweepEvent is one NDJSON line of a streaming sweep: a completed cell
// (Result set), a failed cell (Error set), or the final trailer line
// (Done true). The trailer is an end-of-stream sentinel: it carries the
// total cell count, the failure count and an explicit Status, and the
// client treats a stream that ends without one — or whose cell events
// don't add up to Cells — as truncated, never as complete.
type SweepEvent struct {
	Index      *int             `json:"index,omitempty"`
	Experiment *core.Experiment `json:"experiment,omitempty"`
	Result     *core.Result     `json:"result,omitempty"`
	Error      string           `json:"error,omitempty"`
	Done       bool             `json:"done,omitempty"`
	Cells      int              `json:"cells,omitempty"`
	Failed     int              `json:"failed,omitempty"`
	// Status is "ok" or "error" on trailer lines (error when any cell
	// failed) and empty on cell lines. A trailer without it is not a
	// trailer: clients reject the stream as truncated.
	Status string `json:"status,omitempty"`
}

// trailerStatus renders the sweep trailer's Status field.
func trailerStatus(failed int) string {
	if failed > 0 {
		return "error"
	}
	return "ok"
}

// resolve validates the request and expands it into the experiment grid.
func (rq SweepRequest) resolve(maxCells, maxN int) ([]core.Experiment, core.RunOptions, error) {
	var opts core.RunOptions
	if len(rq.Targets) == 0 || len(rq.Workloads) == 0 || len(rq.Pipelines) == 0 || len(rq.Sizes) == 0 {
		return nil, opts, fmt.Errorf("sweep needs targets, workloads, pipelines and sizes (registered targets: %s; workloads: %s)",
			strings.Join(core.TargetNames(), ", "), strings.Join(core.WorkloadNames(), ", "))
	}
	for _, t := range rq.Targets {
		if _, err := core.LookupTarget(t); err != nil {
			return nil, opts, err
		}
	}
	for _, w := range rq.Workloads {
		if _, err := core.LookupWorkload(w); err != nil {
			return nil, opts, err
		}
	}
	pipes := make([]core.Pipeline, len(rq.Pipelines))
	for i, pn := range rq.Pipelines {
		p, err := core.PipelineByName(pn)
		if err != nil {
			return nil, opts, err
		}
		pipes[i] = p
	}
	for _, n := range rq.Sizes {
		if n < 1 {
			return nil, opts, fmt.Errorf("bad size %d: want a positive sweep size", n)
		}
		if n > maxN {
			return nil, opts, fmt.Errorf("size %d is above the server cap of %d", n, maxN)
		}
	}
	eng := sim.EngineRef
	if rq.Engine != "" {
		var err error
		if eng, err = sim.EngineByName(rq.Engine); err != nil {
			return nil, opts, err
		}
	}
	exps := core.Sweep(rq.Targets, rq.Workloads, pipes, rq.Sizes)
	if len(exps) > maxCells {
		return nil, opts, fmt.Errorf("sweep expands to %d cells, above the server cap of %d", len(exps), maxCells)
	}
	opts = core.RunOptions{RecordTrace: rq.RecordTrace, SkipVerify: rq.SkipVerify, Engine: eng}
	return exps, opts, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed (POST a SweepRequest JSON body)", http.StatusMethodNotAllowed)
		return
	}
	var rq SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rq); err != nil {
		http.Error(w, fmt.Sprintf("bad JSON body: %v", err), http.StatusBadRequest)
		return
	}
	exps, opts, err := rq.resolve(s.maxSweepCells, s.maxN)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.checkFidelity(rq); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stream := rq.Stream == nil || *rq.Stream
	switch rq.Fidelity {
	case "screen":
		s.screenSweep(w, r, exps, stream)
	case "topk":
		s.topkSweep(w, r, exps, opts, rq.TopK, stream)
	default:
		s.met.sweepTier(tierSimulated, len(exps))
		if stream {
			s.streamSweep(w, r, exps, opts)
			return
		}
		s.arraySweep(w, r, exps, opts)
	}
}

// Sweep fidelity tiers, as exposed in cwserve_sweep_cells_total{tier=...}.
const (
	tierAnalytic  = "analytic"
	tierSimulated = "simulated"
)

// checkFidelity validates the fidelity/top_k combination against the
// server's capabilities before any cell is dispatched.
func (s *Server) checkFidelity(rq SweepRequest) error {
	switch rq.Fidelity {
	case "", "full":
		if rq.TopK != 0 {
			return fmt.Errorf("top_k %d requires fidelity \"topk\"", rq.TopK)
		}
	case "screen":
		if rq.TopK != 0 {
			return fmt.Errorf("top_k %d requires fidelity \"topk\"", rq.TopK)
		}
		if s.runner.Predictor() == nil {
			return fmt.Errorf("fidelity %q needs a calibrated analytic model (start cwserve with -analytic)", rq.Fidelity)
		}
	case "topk":
		if rq.TopK < 1 {
			return fmt.Errorf("fidelity \"topk\" requires top_k >= 1")
		}
		if s.runner.Predictor() == nil {
			return fmt.Errorf("fidelity %q needs a calibrated analytic model (start cwserve with -analytic)", rq.Fidelity)
		}
	default:
		return fmt.Errorf("unknown fidelity %q (want \"full\", \"screen\" or \"topk\")", rq.Fidelity)
	}
	return nil
}

// screenSweep answers the whole grid from the analytical tier: zero
// simulations, zero admission slots, every result marked Analytic.
func (s *Server) screenSweep(w http.ResponseWriter, r *http.Request, exps []core.Experiment, stream bool) {
	preds, err := s.runner.Screen(r.Context(), exps)
	if err != nil {
		// Prediction failures are grid problems (an uncalibrated workload,
		// a size the target's tiling rejects), not server faults.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.met.sweepTier(tierAnalytic, len(exps))
	s.writeSweepResults(w, exps, preds, stream)
}

// topkSweep screens the grid analytically, then simulates only the k
// cells with the best predicted ops/cycle through the normal serving
// stack (coalescing + batch admission), merging simulated results over
// their predictions.
func (s *Server) topkSweep(w http.ResponseWriter, r *http.Request, exps []core.Experiment, opts core.RunOptions, k int, stream bool) {
	preds, err := s.runner.Screen(r.Context(), exps)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	chosen := core.TopKByPredictedPerf(preds, k)
	s.met.sweepTier(tierAnalytic, len(exps)-len(chosen))
	s.met.sweepTier(tierSimulated, len(chosen))
	sub := make([]core.Experiment, len(chosen))
	for i, idx := range chosen {
		sub[i] = exps[idx]
	}

	if !stream {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		ch := s.runSweep(ctx, sub, opts)
		for oc := range ch {
			if oc.err != nil {
				cancel()
				for range ch {
				}
				s.writeRunError(w, r, fmt.Errorf("experiment %s: %w", sub[oc.index], oc.err))
				return
			}
			preds[chosen[oc.index]] = oc.res
		}
		if r.Context().Err() != nil {
			return // client went away mid-sweep
		}
		s.writeSweepResults(w, exps, preds, false)
		return
	}

	// Streaming: the analytic tier is instant, so its events go out first
	// (grid order); simulated winners follow in completion order.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	isChosen := make(map[int]bool, len(chosen))
	for _, idx := range chosen {
		isChosen[idx] = true
	}
	for i := range preds {
		if isChosen[i] {
			continue
		}
		idx := i
		if enc.Encode(SweepEvent{Index: &idx, Experiment: &exps[i], Result: &preds[i]}) != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	failed := 0
	ch := s.runSweep(r.Context(), sub, opts)
	for oc := range ch {
		idx := chosen[oc.index]
		ev := SweepEvent{Index: &idx, Experiment: &exps[idx]}
		if oc.err != nil {
			failed++
			ev.Error = oc.err.Error()
		} else {
			ev.Result = &oc.res
		}
		if enc.Encode(ev) != nil {
			for range ch {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(SweepEvent{Done: true, Cells: len(exps), Failed: failed, Status: trailerStatus(failed)})
}

// writeSweepResults renders an already-complete result set, either as
// NDJSON events in grid order or as one JSON array.
func (s *Server) writeSweepResults(w http.ResponseWriter, exps []core.Experiment, results []core.Result, stream bool) {
	if stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for i := range results {
			idx := i
			if enc.Encode(SweepEvent{Index: &idx, Experiment: &exps[i], Result: &results[i]}) != nil {
				return
			}
		}
		enc.Encode(SweepEvent{Done: true, Cells: len(exps), Status: trailerStatus(0)})
		return
	}
	body, err := json.Marshal(results)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// cellOutcome is one finished sweep cell, sent from the workers to the
// response writer.
type cellOutcome struct {
	index int
	res   core.Result
	err   error
}

// runSweep executes the grid on a bounded worker pool through the serving
// stack (flight + batch admission + runner) and sends each outcome on the
// returned channel as it completes. The channel is closed when the sweep
// is done or the context cancels.
func (s *Server) runSweep(ctx context.Context, exps []core.Experiment, opts core.RunOptions) <-chan cellOutcome {
	out := make(chan cellOutcome)
	go func() {
		defer close(out)
		core.ParallelEach(ctx, len(exps), s.runner.Workers(), func(i int) {
			res, err, _ := s.execute(ctx, exps[i], opts, true)
			// The send races the writer abandoning the response; a
			// cancelled context unblocks the worker so no goroutine
			// outlives the request.
			select {
			case out <- cellOutcome{index: i, res: res, err: err}:
			case <-ctx.Done():
			}
		})
	}()
	return out
}

// streamSweep writes one NDJSON SweepEvent per cell in completion order,
// flushing after every line, then a final summary event.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, exps []core.Experiment, opts core.RunOptions) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	failed := 0
	ch := s.runSweep(r.Context(), exps, opts)
	for oc := range ch {
		i := oc.index
		ev := SweepEvent{Index: &i, Experiment: &exps[i]}
		if oc.err != nil {
			failed++
			ev.Error = oc.err.Error()
		} else {
			ev.Result = &oc.res
		}
		if enc.Encode(ev) != nil {
			// The client went away; drain so the sweep goroutine (which
			// also unblocks via r.Context()) can close the channel.
			for range ch {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(SweepEvent{Done: true, Cells: len(exps), Failed: failed, Status: trailerStatus(failed)})
}

// arraySweep waits for the whole grid and responds with one JSON array of
// results in input order; any failed cell fails the whole request.
func (s *Server) arraySweep(w http.ResponseWriter, r *http.Request, exps []core.Experiment, opts core.RunOptions) {
	results := make([]core.Result, len(exps))
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch := s.runSweep(ctx, exps, opts)
	for oc := range ch {
		if oc.err != nil {
			// One failed cell fails the request: stop dispatching the
			// rest and drain what's in flight.
			cancel()
			for range ch {
			}
			s.writeRunError(w, r, fmt.Errorf("experiment %s: %w", exps[oc.index], oc.err))
			return
		}
		results[oc.index] = oc.res
	}
	if err := r.Context().Err(); err != nil {
		return // client went away mid-sweep
	}
	body, err := json.Marshal(results)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// RegistryInfo is the response of GET /v1/registry: everything a
// configuration-search client (cmd/cwtune) needs to build its search space
// without hardcoding the daemon's tiling rules or caps.
type RegistryInfo struct {
	Targets   []string `json:"targets"`
	Workloads []string `json:"workloads"`
	Pipelines []string `json:"pipelines"`
	Engines   []string `json:"engines"`
	// MaxN is the server's cap on any requested sweep size n.
	MaxN int `json:"max_n"`
	// MaxSweepCells caps the grid one /v1/sweep may expand to.
	MaxSweepCells int `json:"max_sweep_cells"`
	// Analytic reports whether a calibrated predictor is attached, i.e.
	// whether fidelity=screen / fidelity=topk sweeps will be accepted.
	Analytic bool `json:"analytic"`
	// Sizes maps workload name → target name → the sweep sizes that
	// (target, workload) pair can actually build, probed over
	// core.DefaultSizeGrid capped at MaxN. A pair no grid size fits gets
	// an empty list.
	Sizes map[string]map[string][]int `json:"sizes"`
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	pipes := make([]string, len(core.Pipelines))
	for i, p := range core.Pipelines {
		pipes[i] = p.String()
	}
	info := RegistryInfo{
		Targets:       core.TargetNames(),
		Workloads:     core.WorkloadNames(),
		Pipelines:     pipes,
		Engines:       sim.EngineNames(),
		MaxN:          s.maxN,
		MaxSweepCells: s.maxSweepCells,
		Analytic:      s.runner.Predictor() != nil,
		Sizes:         s.registrySizes(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// registrySizes probes the feasible size grid for every (workload, target)
// pair, once per server life. The JSON encoder sorts map keys, so the
// response stays byte-deterministic.
func (s *Server) registrySizes() map[string]map[string][]int {
	s.sizesOnce.Do(func() {
		candidates := make([]int, 0, len(core.DefaultSizeGrid))
		for _, n := range core.DefaultSizeGrid {
			if n <= s.maxN {
				candidates = append(candidates, n)
			}
		}
		sizes := make(map[string]map[string][]int)
		for _, wName := range core.WorkloadNames() {
			w, err := core.LookupWorkload(wName)
			if err != nil {
				continue
			}
			perTarget := make(map[string][]int)
			for _, tName := range core.TargetNames() {
				t, err := core.LookupTarget(tName)
				if err != nil {
					continue
				}
				feasible := core.SupportedSizes(t, w, candidates)
				if feasible == nil {
					feasible = []int{}
				}
				perTarget[tName] = feasible
			}
			sizes[wName] = perTarget
		}
		s.sizes = sizes
	})
	return s.sizes
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	st := s.runner.Snapshot()
	fmt.Fprintf(&sb, "# HELP cwserve_cache_mem_hits_total Requests answered by the in-memory cell map.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_mem_hits_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_mem_hits_total %d\n", st.MemHits)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_mem_misses_total Requests past the in-memory cell map.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_mem_misses_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_mem_misses_total %d\n", st.MemMisses)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_store_hits_total Memory misses answered by the persistent store.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_store_hits_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_store_hits_total %d\n", st.StoreHits)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_store_misses_total Memory misses the persistent store could not answer.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_store_misses_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_store_misses_total %d\n", st.StoreMisses)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_runs_total Experiments actually compiled and simulated.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_runs_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_runs_total %d\n", st.Runs)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_predictions_total Cells answered by the analytic tier instead of simulation.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_predictions_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_predictions_total %d\n", st.Predictions)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_evictions_total Cells dropped by the LRU bound.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_evictions_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(&sb, "# HELP cwserve_cache_store_errors_total Store load/save operational failures.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_cache_store_errors_total counter\n")
	fmt.Fprintf(&sb, "cwserve_cache_store_errors_total %d\n", st.StoreErrors)
	// The alerting-facing alias: nonzero means the daemon is serving in
	// degraded mode (results live in memory but stopped being durable) and
	// /healthz says "degraded".
	fmt.Fprintf(&sb, "# HELP cwserve_store_errors_total Tolerated persistent-store failures; nonzero means degraded (non-durable) serving.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_store_errors_total counter\n")
	fmt.Fprintf(&sb, "cwserve_store_errors_total %d\n", st.StoreErrors)

	// Go runtime memory gauges: the allocation discipline of the serving
	// hot paths (pooled execution contexts, trace buffers and response
	// encoders) is observable here — a healthy cached-traffic steady state
	// shows a flat heap and a near-constant GC cycle rate.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(&sb, "# HELP cwserve_go_heap_alloc_bytes Bytes of live heap objects (runtime.MemStats.HeapAlloc).\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_go_heap_alloc_bytes gauge\n")
	fmt.Fprintf(&sb, "cwserve_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(&sb, "# HELP cwserve_go_heap_objects Live heap objects.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_go_heap_objects gauge\n")
	fmt.Fprintf(&sb, "cwserve_go_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(&sb, "# HELP cwserve_go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(&sb, "cwserve_go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(&sb, "# HELP cwserve_go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(&sb, "# TYPE cwserve_go_gc_cycles_total counter\n")
	fmt.Fprintf(&sb, "cwserve_go_gc_cycles_total %d\n", ms.NumGC)

	s.met.render(&sb, gauges{
		queueDepth: s.admit.queued(),
		slotsBusy:  s.admit.busy(),
		inflight:   s.flight.inflight(),
		cacheCells: s.runner.CacheSize(),
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, sb.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Degraded mode stays 200 — the server still answers correctly from
	// memory, so load balancers must keep routing here — but the body
	// tells operators durability is gone (see cwserve_store_errors_total).
	if s.runner.Snapshot().StoreErrors > 0 {
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, "ok")
}
