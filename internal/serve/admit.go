package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors, mapped to 429 by the HTTP layer. They are the
// backpressure contract: a server under load sheds distinct-cell work
// deterministically instead of growing an unbounded goroutine backlog.
var (
	// ErrQueueFull means the bounded admission queue had no room — the
	// request was rejected immediately.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQueueTimeout means the request queued but no execution slot
	// freed up within the queue timeout.
	ErrQueueTimeout = errors.New("serve: queue wait timed out")
)

// admission bounds how much experiment computation the server attempts at
// once: at most `concurrency` computations execute, at most `depth` more
// wait for a slot (each with a timeout), and everything beyond that is
// rejected outright. Coalesced duplicates never enter admission (see
// flightGroup), so the bound is on *distinct* in-flight cells.
type admission struct {
	slots       chan struct{} // capacity = concurrency; holding a token = executing
	tickets     chan struct{} // capacity = concurrency + depth; bounds waiters
	timeout     time.Duration
	concurrency int

	// holdMu guards holdEWMA, an exponentially weighted moving average of
	// how long execution slots are held. It sizes Retry-After hints: the
	// expected wait for the load ahead of a shed request is
	// (queued ÷ concurrency) × average hold time.
	holdMu   sync.Mutex
	holdEWMA time.Duration
}

func newAdmission(concurrency, depth int, timeout time.Duration) *admission {
	return &admission{
		slots:       make(chan struct{}, concurrency),
		tickets:     make(chan struct{}, concurrency+depth),
		timeout:     timeout,
		concurrency: concurrency,
	}
}

// recordHold folds one finished slot hold into the EWMA (weight 1/4 on
// the new sample: stable under mixed cached/cold traffic, yet converging
// within a few cells after the workload shifts).
func (a *admission) recordHold(d time.Duration) {
	a.holdMu.Lock()
	if a.holdEWMA == 0 {
		a.holdEWMA = d
	} else {
		a.holdEWMA = (3*a.holdEWMA + d) / 4
	}
	a.holdMu.Unlock()
}

// retryAfterSeconds derives the Retry-After hint for a shed request: the
// expected time for the work already admitted to drain through the slot
// pool, clamped to [1s, queue timeout] (a client told to wait longer than
// the queue timeout would always do better re-queueing at the horizon).
func (a *admission) retryAfterSeconds() int {
	a.holdMu.Lock()
	hold := a.holdEWMA
	a.holdMu.Unlock()
	est := time.Second
	if hold > 0 && a.concurrency > 0 {
		est = time.Duration(len(a.tickets)) * hold / time.Duration(a.concurrency)
	}
	max := int(a.timeout.Seconds() + 0.999)
	if max < 1 {
		max = 1
	}
	secs := int(est.Seconds() + 0.999) // ceil: never hint a zero wait
	if secs < 1 {
		secs = 1
	}
	if secs > max {
		secs = max
	}
	return secs
}

// acquire claims an execution slot with request semantics: it rejects with
// ErrQueueFull when the queue is at capacity, waits at most the queue
// timeout for a slot (ErrQueueTimeout), and aborts if ctx is cancelled.
// On success the returned release must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.tickets <- struct{}{}:
	default:
		return nil, ErrQueueFull
	}
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		start := time.Now()
		return func() { a.recordHold(time.Since(start)); <-a.slots; <-a.tickets }, nil
	case <-timer.C:
		<-a.tickets
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		<-a.tickets
		return nil, ctx.Err()
	}
}

// acquireWait claims an execution slot with batch semantics: it bypasses
// the queue bound and waits indefinitely (until ctx cancels). Sweep cells
// use it — a batch applies backpressure by trickling results out as slots
// free up, not by rejecting its own cells.
func (a *admission) acquireWait(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		start := time.Now()
		return func() { a.recordHold(time.Since(start)); <-a.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// busy returns how many execution slots are held.
func (a *admission) busy() int { return len(a.slots) }

// queued returns how many request-mode acquisitions are in the system
// (executing or waiting).
func (a *admission) queued() int { return len(a.tickets) }
