// Package lower converts accfg operations into target-specific command
// streams (paper Figure 8, step 5): Gemmini-style RoCC instruction
// sequences with bit-packed register pairs, and OpenGeMM-style CSR writes.
// After lowering, no accfg ops or !accfg types remain and the module is
// ready for the RV64 code generator.
package lower

import (
	"fmt"

	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/csrops"
	"configwall/internal/dialects/rocc"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

// AccfgToGemmini returns the pass lowering accfg ops for the "gemmini"
// accelerator into rocc instructions.
//
// Each setup materializes the RoCC instructions of the gemmini_loop_ws
// sequence that carry at least one of its fields. Because one instruction
// packs several fields into its two registers (paper Table 1 / Listing 1),
// the lowering emits the bit-packing arithmetic (mask, shift, or) explicitly
// — this is the "parameter calculation" cost the paper's effective
// configuration bandwidth models (§4.4). Fields that were deduplicated but
// share an instruction with a live field are re-materialized from the
// known-fields analysis so the packed register stays correct.
func AccfgToGemmini() ir.Pass {
	return ir.PassFunc{
		PassName: "lower-accfg-to-gemmini",
		Fn: func(m *ir.Module) error {
			for _, f := range m.Funcs() {
				if err := lowerGemminiFunc(f); err != nil {
					return err
				}
			}
			return StripAccfgTypes(m, gemmini.Name)
		},
	}
}

func lowerGemminiFunc(f *ir.Op) error {
	fs := passes.AnalyzeFields(f)
	var err error
	ir.Walk(f, func(op *ir.Op) {
		if err != nil {
			return
		}
		switch op.Name() {
		case accfg.OpSetup:
			s, _ := accfg.AsSetup(op)
			if s.Accelerator() != gemmini.Name {
				return
			}
			err = emitGemminiSetup(s, fs)
		case accfg.OpLaunch:
			l, _ := accfg.AsLaunch(op)
			if l.Accelerator() != gemmini.Name {
				return
			}
			b := ir.Before(op)
			zero := arith.NewConstant(b, 0, ir.I64)
			rocc.NewWrite(b, gemmini.FnLoopWS, zero, zero)
		case accfg.OpAwait:
			a, _ := accfg.AsAwait(op)
			if a.Token().Type().(ir.TokenType).Accelerator != gemmini.Name {
				return
			}
			b := ir.Before(op)
			rocc.NewFence(b, gemmini.FnFence)
		}
	})
	return err
}

// emitGemminiSetup lowers one setup into rocc.write ops inserted before it.
func emitGemminiSetup(s accfg.Setup, fs *passes.FieldStates) error {
	live := map[string]*ir.Value{}
	for _, f := range s.Fields() {
		if _, ok := gemmini.InstrFor(f.Name); !ok {
			return fmt.Errorf("lower-accfg-to-gemmini: unknown field %q", f.Name)
		}
		live[f.Name] = f.Value
	}
	var known map[string]*ir.Value
	if in := s.InState(); in != nil {
		known = fs.KnownFields(in)
	}
	b := ir.Before(s.Op)
	for _, ci := range gemmini.Sequence {
		if ci.Launch {
			continue
		}
		anyLive := false
		for _, slot := range ci.Slots {
			if _, ok := live[slot.Field]; ok {
				anyLive = true
				break
			}
		}
		if !anyLive {
			continue
		}
		regs := [2]*ir.Value{}
		for _, slot := range ci.Slots {
			v := live[slot.Field]
			if v == nil {
				v = known[slot.Field]
			}
			if v == nil {
				// Field never set on any path: hardware register content
				// is zero after reset, so packing zero is correct.
				v = arith.NewConstant(b, 0, ir.I64)
			}
			packed := packField(b, v, slot)
			if regs[slot.Reg] == nil {
				regs[slot.Reg] = packed
			} else {
				regs[slot.Reg] = arith.NewOr(b, regs[slot.Reg], packed)
			}
		}
		for i := 0; i < 2; i++ {
			if regs[i] == nil {
				regs[i] = arith.NewConstant(b, 0, ir.I64)
			}
		}
		rocc.NewWrite(b, ci.Funct7, regs[0], regs[1])
	}
	return nil
}

// packField emits (v & mask) << offset as i64.
func packField(b *ir.Builder, v *ir.Value, slot gemmini.FieldSlot) *ir.Value {
	if !ir.TypesEqual(v.Type(), ir.I64) {
		v = arith.NewIndexCast(b, v, ir.I64)
	}
	if slot.Bits < 64 {
		mask := arith.NewConstant(b, int64((uint64(1)<<slot.Bits)-1), ir.I64)
		v = arith.NewBinary(b, arith.OpAndI, v, mask)
	}
	if slot.Offset > 0 {
		sh := arith.NewConstant(b, int64(slot.Offset), ir.I64)
		v = arith.NewShl(b, v, sh)
	}
	return v
}

// AccfgToOpenGeMM returns the pass lowering accfg ops for the "opengemm"
// accelerator into CSR accesses: one csr.write per field (the CSR port is
// not bit-packed), a launch CSR write, and a busy-poll barrier.
func AccfgToOpenGeMM() ir.Pass {
	return ir.PassFunc{
		PassName: "lower-accfg-to-opengemm",
		Fn: func(m *ir.Module) error {
			var err error
			m.Walk(func(op *ir.Op) {
				if err != nil {
					return
				}
				switch op.Name() {
				case accfg.OpSetup:
					s, _ := accfg.AsSetup(op)
					if s.Accelerator() != opengemm.Name {
						return
					}
					err = emitOpenGeMMSetup(s)
				case accfg.OpLaunch:
					l, _ := accfg.AsLaunch(op)
					if l.Accelerator() != opengemm.Name {
						return
					}
					b := ir.Before(op)
					one := arith.NewConstant(b, 1, ir.I64)
					csrops.NewWrite(b, opengemm.CsrLaunch, one)
				case accfg.OpAwait:
					a, _ := accfg.AsAwait(op)
					if a.Token().Type().(ir.TokenType).Accelerator != opengemm.Name {
						return
					}
					b := ir.Before(op)
					csrops.NewBarrier(b, opengemm.CsrBusy)
				}
			})
			if err != nil {
				return err
			}
			return StripAccfgTypes(m, opengemm.Name)
		},
	}
}

func emitOpenGeMMSetup(s accfg.Setup) error {
	b := ir.Before(s.Op)
	live := map[string]*ir.Value{}
	for _, f := range s.Fields() {
		if _, ok := opengemm.Fields[f.Name]; !ok {
			return fmt.Errorf("lower-accfg-to-opengemm: unknown field %q", f.Name)
		}
		live[f.Name] = f.Value
	}
	// Emit in canonical order for deterministic instruction streams.
	for _, name := range opengemm.FieldOrder {
		v, ok := live[name]
		if !ok {
			continue
		}
		if !ir.TypesEqual(v.Type(), ir.I64) {
			v = arith.NewIndexCast(b, v, ir.I64)
		}
		csrops.NewWrite(b, opengemm.Fields[name], v)
	}
	return nil
}

// StripAccfgTypes removes the remaining accfg ops and the !accfg.state /
// !accfg.token plumbing of one accelerator after its command stream has
// been emitted; other accelerators' accfg ops are left for their own
// lowering. It proceeds in phases so use counts reach zero before each
// erasure:
//
//  1. erase await and launch ops,
//  2. drop state chaining between setups,
//  3. erase state/token operands from yields and loop inits,
//  4. erase state/token block args and results of scf ops,
//  5. erase the setup ops themselves.
func StripAccfgTypes(m *ir.Module, accelerator string) error {
	// Phase 1: awaits first (they consume tokens), then launches.
	var awaits, launches, setups, scfOps, yields []*ir.Op
	m.Walk(func(op *ir.Op) {
		switch op.Name() {
		case accfg.OpAwait:
			a, _ := accfg.AsAwait(op)
			if a.Token().Type().(ir.TokenType).Accelerator == accelerator {
				awaits = append(awaits, op)
			}
		case accfg.OpLaunch:
			l, _ := accfg.AsLaunch(op)
			if l.Accelerator() == accelerator {
				launches = append(launches, op)
			}
		case accfg.OpSetup:
			s, _ := accfg.AsSetup(op)
			if s.Accelerator() == accelerator {
				setups = append(setups, op)
			}
		case "scf.for", "scf.if":
			scfOps = append(scfOps, op)
		case "scf.yield":
			yields = append(yields, op)
		}
	})
	for _, op := range awaits {
		op.Erase()
	}
	for _, op := range launches {
		for _, r := range op.Results() {
			if r.NumUses() > 0 {
				return fmt.Errorf("strip-accfg: launch token still used outside await")
			}
		}
		op.Erase()
	}
	// Phase 2: unchain setups.
	for _, op := range setups {
		s, _ := accfg.AsSetup(op)
		s.ClearInState()
	}
	// Phase 3: strip state operands from yields and scf.for inits.
	for _, y := range yields {
		eraseAccfgOperands(y, 0, accelerator)
	}
	for _, op := range scfOps {
		if op.Name() == "scf.for" {
			eraseAccfgOperands(op, 3, accelerator)
		}
	}
	// Phase 4: strip block args and results.
	for _, op := range scfOps {
		for ri := 0; ri < op.NumRegions(); ri++ {
			blk := op.Region(ri).Block()
			for i := blk.NumArgs() - 1; i >= 0; i-- {
				if isAccfgType(blk.Arg(i).Type(), accelerator) {
					if blk.Arg(i).NumUses() > 0 {
						return fmt.Errorf("strip-accfg: state block arg still in use")
					}
					blk.EraseArg(i)
				}
			}
		}
		for i := op.NumResults() - 1; i >= 0; i-- {
			if isAccfgType(op.Result(i).Type(), accelerator) {
				if op.Result(i).NumUses() > 0 {
					return fmt.Errorf("strip-accfg: state result still in use")
				}
				op.EraseResult(i)
			}
		}
	}
	// Phase 5: erase setups.
	for _, op := range setups {
		for _, r := range op.Results() {
			if r.NumUses() > 0 {
				return fmt.Errorf("strip-accfg: setup state still in use after stripping")
			}
		}
		op.Erase()
	}
	return nil
}

func eraseAccfgOperands(op *ir.Op, from int, accelerator string) {
	for i := op.NumOperands() - 1; i >= from; i-- {
		if isAccfgType(op.Operand(i).Type(), accelerator) {
			op.EraseOperand(i)
		}
	}
}

func isAccfgType(t ir.Type, accelerator string) bool {
	switch tt := t.(type) {
	case ir.StateType:
		return tt.Accelerator == accelerator
	case ir.TokenType:
		return tt.Accelerator == accelerator
	}
	return false
}
