package lower_test

import (
	"strings"
	"testing"

	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/csrops"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/rocc"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
	"configwall/internal/lower"
	"configwall/internal/passes"
)

// buildSingleInvocation builds one setup/launch/await for the accelerator
// with the given fields.
func buildSingleInvocation(accel string, fields []accfg.Field) (*ir.Module, *ir.Builder, fnc.Func) {
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	s := accfg.NewSetup(b, accel, nil, fields)
	l := accfg.NewLaunch(b, s.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)
	return m, b, f
}

func constField(b *ir.Builder, name string, v int64) accfg.Field {
	return accfg.Field{Name: name, Value: arith.NewConstant(b, v, ir.I64)}
}

func TestGemminiLoweringEmitsSequence(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	var fields []accfg.Field
	for _, fb := range gemmini.FieldBits() {
		fields = append(fields, constField(b, fb.Field, 1))
	}
	s := accfg.NewSetup(b, gemmini.Name, nil, fields)
	l := accfg.NewLaunch(b, s.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)

	pm := ir.NewPassManager(lower.AccfgToGemmini())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	// Full setup: every non-launch instruction of the sequence + launch.
	wantWrites := len(gemmini.Sequence) // includes loop_ws via accfg.launch
	if got := ir.CountOpsNamed(m, rocc.OpWrite); got != wantWrites {
		t.Errorf("rocc.write count = %d, want %d\n%s", got, wantWrites, ir.PrintModule(m))
	}
	if got := ir.CountOpsNamed(m, rocc.OpFence); got != 1 {
		t.Errorf("rocc.fence count = %d, want 1", got)
	}
	// No accfg left.
	m.Walk(func(op *ir.Op) {
		if op.Dialect() == "accfg" {
			t.Errorf("unlowered accfg op %s", op.Name())
		}
	})
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestGemminiPartialSetupEmitsOnlyTouchedInstrs(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	s := accfg.NewSetup(b, gemmini.Name, nil, []accfg.Field{
		constField(b, "A", 0x1000),
		constField(b, "I", 2),
	})
	l := accfg.NewLaunch(b, s.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)

	pm := ir.NewPassManager(lower.AccfgToGemmini())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	// A lives in config_addr_a, I in config_bounds: 2 writes + launch.
	if got := ir.CountOpsNamed(m, rocc.OpWrite); got != 3 {
		t.Errorf("rocc.write count = %d, want 3\n%s", got, ir.PrintModule(m))
	}
}

func TestGemminiPackMateRematerialization(t *testing.T) {
	// Setup 1 writes I and J and K; setup 2 (chained) only re-writes I.
	// The bounds instruction packs I, J, K together, so lowering setup 2
	// must re-emit J and K from the known-fields analysis — verify the
	// known SSA values are reused (same constants), not zeros.
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	cJ := arith.NewConstant(b, 7, ir.I64)
	cK := arith.NewConstant(b, 9, ir.I64)
	s1 := accfg.NewSetup(b, gemmini.Name, nil, []accfg.Field{
		constField(b, "I", 1), {Name: "J", Value: cJ}, {Name: "K", Value: cK},
	})
	l1 := accfg.NewLaunch(b, s1.State())
	accfg.NewAwait(b, l1.Token())
	s2 := accfg.NewSetup(b, gemmini.Name, s1.State(), []accfg.Field{
		constField(b, "I", 2),
	})
	l2 := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l2.Token())
	fnc.NewReturn(b)

	pm := ir.NewPassManager(lower.AccfgToGemmini(), passes.Canonicalize())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	// After constant folding, the second bounds write's rs1 packs
	// I=2 | J=7<<16, rs2 packs K=9.
	var writes []*ir.Op
	m.Walk(func(op *ir.Op) {
		if op.Name() == rocc.OpWrite && rocc.Funct7(op) == gemmini.FnConfigBounds {
			writes = append(writes, op)
		}
	})
	if len(writes) != 2 {
		t.Fatalf("bounds writes = %d, want 2", len(writes))
	}
	rs1, ok1 := arith.ConstantValue(writes[1].Operand(0))
	rs2, ok2 := arith.ConstantValue(writes[1].Operand(1))
	if !ok1 || !ok2 {
		t.Fatalf("second bounds write not constant-folded:\n%s", ir.PrintModule(m))
	}
	if want := int64(2 | 7<<16); rs1 != want {
		t.Errorf("rs1 = %#x, want %#x (I=2, J=7 rematerialized)", rs1, want)
	}
	if want := int64(9); rs2 != want {
		t.Errorf("rs2 = %#x, want %#x (K=9 rematerialized)", rs2, want)
	}
}

func TestGemminiUnknownFieldError(t *testing.T) {
	m, b, _ := buildSingleInvocation(gemmini.Name, nil)
	var setup accfg.Setup
	m.Walk(func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok {
			setup = s
		}
	})
	setup.AddField("no_such_field", arith.NewConstant(b, 0, ir.I64))
	// Re-anchor the constant before the setup so dominance holds.
	setup.Op.Block().First() // keep linter quiet
	c := setup.FieldValue("no_such_field").DefiningOp()
	c.MoveBefore(setup.Op)

	pm := ir.NewPassManager(lower.AccfgToGemmini())
	if err := pm.Run(m); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("expected unknown-field error, got %v", err)
	}
}

func TestOpenGeMMLoweringCanonicalOrder(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	// Fields deliberately in scrambled order.
	s := accfg.NewSetup(b, opengemm.Name, nil, []accfg.Field{
		constField(b, "flags", 0),
		constField(b, "ptr_b", 0x2000),
		constField(b, "m", 1),
		constField(b, "ptr_a", 0x1000),
	})
	l := accfg.NewLaunch(b, s.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)

	pm := ir.NewPassManager(lower.AccfgToOpenGeMM())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	var addrs []uint32
	m.Walk(func(op *ir.Op) {
		if op.Name() == csrops.OpWrite {
			addrs = append(addrs, csrops.Addr(op))
		}
	})
	// Canonical order: ptr_a, ptr_b, m, flags, then the launch CSR.
	want := []uint32{opengemm.CsrPtrA, opengemm.CsrPtrB, opengemm.CsrM, opengemm.CsrFlags, opengemm.CsrLaunch}
	if len(addrs) != len(want) {
		t.Fatalf("csr writes = %v, want %v", addrs, want)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("write %d to CSR %#x, want %#x", i, addrs[i], want[i])
		}
	}
	if got := ir.CountOpsNamed(m, csrops.OpBarrier); got != 1 {
		t.Errorf("barriers = %d, want 1", got)
	}
}

func TestStripLeavesOtherAcceleratorsAlone(t *testing.T) {
	// A module configuring both gemmini and a foreign accelerator: the
	// gemmini lowering must not strip the foreign accfg ops.
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	sG := accfg.NewSetup(b, gemmini.Name, nil, []accfg.Field{constField(b, "A", 1)})
	lG := accfg.NewLaunch(b, sG.State())
	accfg.NewAwait(b, lG.Token())
	sO := accfg.NewSetup(b, opengemm.Name, nil, []accfg.Field{constField(b, "ptr_a", 1)})
	lO := accfg.NewLaunch(b, sO.State())
	accfg.NewAwait(b, lO.Token())
	fnc.NewReturn(b)

	pm := ir.NewPassManager(lower.AccfgToGemmini())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if got := ir.CountOpsNamed(m, accfg.OpSetup); got != 1 {
		t.Errorf("foreign setups remaining = %d, want 1", got)
	}
	// Then the opengemm lowering finishes the job.
	pm2 := ir.NewPassManager(lower.AccfgToOpenGeMM())
	if err := pm2.Run(m); err != nil {
		t.Fatal(err)
	}
	if got := ir.CountOpsNamed(m, accfg.OpSetup); got != 0 {
		t.Errorf("setups remaining = %d, want 0", got)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestStripThroughLoopIterArgs(t *testing.T) {
	// Run the full optimized flow on the Figure 9 shape and check that the
	// loop's state plumbing is removed cleanly.
	m := ir.NewModule()
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{ir.I64}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	x := f.Body().Arg(0)
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 4, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lbld := ir.AtEnd(loop.Body())
	iv := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	sum := arith.NewAdd(lbld, x, iv)
	s := accfg.NewSetup(lbld, opengemm.Name, nil, []accfg.Field{{Name: "ptr_a", Value: sum}})
	l := accfg.NewLaunch(lbld, s.State())
	accfg.NewAwait(lbld, l.Token())
	scf.NewYield(lbld)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	pm := ir.NewPassManager(
		passes.TraceStates(),
		passes.Overlap(func(string) bool { return true }),
		lower.AccfgToOpenGeMM(),
		passes.Canonicalize(),
	)
	if err := pm.Run(m); err != nil {
		t.Fatalf("%v\n%s", err, ir.PrintModule(m))
	}
	// The loop must survive with no state-typed plumbing.
	m.Walk(func(op *ir.Op) {
		for _, r := range op.Results() {
			switch r.Type().(type) {
			case ir.StateType, ir.TokenType:
				t.Errorf("accfg type survived lowering on %s", op.Name())
			}
		}
	})
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}
