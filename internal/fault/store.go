package fault

import (
	"errors"
	"fmt"
	"os"
	"time"

	"configwall/internal/core"
	"configwall/internal/store"
)

// Injected store errors. They are distinguishable from real operational
// failures only by message — exactly how the runner should experience
// them.
var (
	// ErrSaveInjected is the operational error StoreSaveFail injects.
	ErrSaveInjected = errors.New("fault: injected store save failure")
	// ErrLoadInjected is the operational error StoreLoadErr injects.
	ErrLoadInjected = errors.New("fault: injected store load failure")
)

// Store wraps a core.Store with plan-driven failures: saves that error,
// saves that report success but leave a torn entry behind, loads that
// error, and loads that stall. It implements core.Store and is safe for
// concurrent use when the inner store is.
type Store struct {
	// Inner is the real store. Required.
	Inner core.Store
	// Disk, when set (and usually Inner itself), enables StoreSaveTorn:
	// torn writes need the entry's on-disk path to corrupt.
	Disk *store.DiskStore
	// Plan schedules the faults; nil injects nothing.
	Plan *Plan
}

// Load implements core.Store, injecting StoreLoadSlow delays and
// StoreLoadErr operational failures ahead of the real load.
func (s *Store) Load(e core.Experiment, opts core.RunOptions) (core.Result, bool, error) {
	if d := s.Plan.FireDelay(StoreLoadSlow); d > 0 {
		time.Sleep(d)
	}
	if s.Plan.Fire(StoreLoadErr) {
		return core.Result{}, false, fmt.Errorf("load %s: %w", e, ErrLoadInjected)
	}
	return s.Inner.Load(e, opts)
}

// Save implements core.Store. StoreSaveFail fails the save outright;
// StoreSaveTorn lets the save succeed and then truncates the entry
// mid-file — the caller believes the result is durable, but a reboot must
// treat the entry as a miss (the reload-tolerance invariant the chaos
// campaign checks).
func (s *Store) Save(e core.Experiment, opts core.RunOptions, res core.Result) error {
	if s.Plan.Fire(StoreSaveFail) {
		return fmt.Errorf("save %s: %w", e, ErrSaveInjected)
	}
	if err := s.Inner.Save(e, opts, res); err != nil {
		return err
	}
	if s.Disk != nil && s.Plan.Fire(StoreSaveTorn) {
		tearEntry(s.Disk.EntryPath(e, opts))
	}
	return nil
}

// tearEntry simulates a torn write: the entry keeps a valid-looking JSON
// prefix but loses its tail. Failures tearing are ignored — the fault is
// best-effort; the invariant under test is the reader's, not the
// injector's.
func tearEntry(path string) {
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	os.Truncate(path, info.Size()/2)
}
