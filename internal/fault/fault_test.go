package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// TestFireDeterminism: the same seed produces the same decision sequence
// at a site, and different seeds (overwhelmingly) different ones.
func TestFireDeterminism(t *testing.T) {
	draw := func(seed int64) []bool {
		p := New(seed, map[Site]Rule{TransportReset: {Rate: 0.3}})
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.Fire(TransportReset)
		}
		return out
	}
	a, b := draw(1), draw(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 1 reruns diverge at passage %d", i)
		}
	}
	c := draw(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical 200-passage sequences")
	}
}

// TestSiteIndependence: adding a rule for one site must not shift another
// site's decision stream (each site draws from its own RNG).
func TestSiteIndependence(t *testing.T) {
	solo := New(7, map[Site]Rule{StoreSaveFail: {Rate: 0.5}})
	both := New(7, map[Site]Rule{StoreSaveFail: {Rate: 0.5}, StoreLoadErr: {Rate: 0.5}})
	for i := 0; i < 100; i++ {
		// Interleave passages at the other site to try to perturb it.
		both.Fire(StoreLoadErr)
		if solo.Fire(StoreSaveFail) != both.Fire(StoreSaveFail) {
			t.Fatalf("save-site stream shifted at passage %d when a load rule was added", i)
		}
	}
}

// TestSchedule: After suppresses early passages, Max caps total
// injections, and Counts reports both.
func TestSchedule(t *testing.T) {
	p := New(1, map[Site]Rule{ServeRunPanic: {Rate: 1, After: 3, Max: 2}})
	var fires []int
	for i := 0; i < 10; i++ {
		if p.Fire(ServeRunPanic) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 4 {
		t.Errorf("fires at %v, want exactly passages 3 and 4 (After=3, Max=2, Rate=1)", fires)
	}
	c := p.Counts()[ServeRunPanic]
	if c.Passages != 10 || c.Fired != 2 {
		t.Errorf("counts = %+v, want 10 passages, 2 fired", c)
	}
	if p.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", p.Fired())
	}
}

// TestNilPlanQuiet: a nil plan (and a plan without a rule for the site)
// never fires, never delays, and summarizes empty.
func TestNilPlanQuiet(t *testing.T) {
	var p *Plan
	if p.Fire(TransportReset) || p.FireDelay(StoreLoadSlow) != 0 {
		t.Error("nil plan fired")
	}
	if p.Counts() != nil || p.Fired() != 0 || p.Summary() != "" {
		t.Error("nil plan reported non-empty state")
	}
	q := New(1, nil)
	if q.Fire(TransportReset) {
		t.Error("ruleless plan fired")
	}
}

// TestFireDelay returns the rule's delay exactly when the site fires.
func TestFireDelay(t *testing.T) {
	p := New(1, map[Site]Rule{StoreLoadSlow: {Rate: 1, Max: 1, Delay: 5 * time.Millisecond}})
	if d := p.FireDelay(StoreLoadSlow); d != 5*time.Millisecond {
		t.Errorf("first passage delay = %v, want 5ms", d)
	}
	if d := p.FireDelay(StoreLoadSlow); d != 0 {
		t.Errorf("capped passage delay = %v, want 0", d)
	}
}

// TestSummaryDeterministic: Summary output is sorted by site name.
func TestSummaryDeterministic(t *testing.T) {
	p := New(1, map[Site]Rule{TransportReset: {}, StoreSaveFail: {}, ServeRunPanic: {}})
	p.Fire(TransportReset)
	want := "serve.run.panic: fired 0 of 0 passages\n" +
		"store.save.fail: fired 0 of 0 passages\n" +
		"transport.reset: fired 0 of 1 passages\n"
	if got := p.Summary(); got != want {
		t.Errorf("summary:\n%q\nwant:\n%q", got, want)
	}
}

// TestTransportFaults exercises each transport site against a live
// backend.
func TestTransportFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"payload":"0123456789abcdef0123456789abcdef"}`)
	}))
	defer backend.Close()

	get := func(tr *Transport) (*http.Response, []byte, error) {
		c := &http.Client{Transport: tr}
		resp, err := c.Get(backend.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		return resp, body, rerr
	}

	t.Run("reset", func(t *testing.T) {
		_, _, err := get(&Transport{Plan: New(1, map[Site]Rule{TransportReset: {Rate: 1}})})
		if err == nil || !contains(err.Error(), "connection reset") {
			t.Errorf("err = %v, want injected connection reset", err)
		}
	})
	t.Run("timeout", func(t *testing.T) {
		_, _, err := get(&Transport{Plan: New(1, map[Site]Rule{TransportTimeout: {Rate: 1}})})
		var ne interface{ Timeout() bool }
		if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("err = %v, want a timeout net.Error", err)
		}
	})
	t.Run("503", func(t *testing.T) {
		resp, body, err := get(&Transport{Plan: New(1, map[Site]Rule{TransportUnavailable: {Rate: 1}}), RetryAfter: 2})
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("status = %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") != "2" {
			t.Errorf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
		}
		if !contains(string(body), "injected 503") {
			t.Errorf("body = %q", body)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		_, body, err := get(&Transport{Plan: New(1, map[Site]Rule{TransportTruncate: {Rate: 1}})})
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("read err = %v, want io.ErrUnexpectedEOF", err)
		}
		if len(body) == 0 {
			t.Error("truncated body delivered nothing; want a strict prefix")
		}
	})
	t.Run("quiet", func(t *testing.T) {
		resp, body, err := get(&Transport{})
		if err != nil || resp.StatusCode != http.StatusOK || !contains(string(body), "payload") {
			t.Errorf("pass-through: %v %v %q", err, resp, body)
		}
	})
}

// TestTornEntry: tearEntry leaves a strict prefix of the file.
func TestTornEntry(t *testing.T) {
	path := t.TempDir() + "/entry.json"
	if err := os.WriteFile(path, []byte(`{"schema":2,"key":"k","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tearEntry(path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 17 {
		t.Errorf("torn entry is %d bytes, want half of 34", len(data))
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
