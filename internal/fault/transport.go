package fault

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// netError is an injected transport failure implementing net.Error, so the
// client's retry classifier sees it exactly as it would a real one.
type netError struct {
	msg     string
	timeout bool
}

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return e.timeout }
func (e *netError) Temporary() bool { return true }

// Transport wraps an http.RoundTripper with plan-driven network faults:
// connection resets and timeouts before the request is sent, synthesized
// 503 responses, and response bodies truncated mid-stream. It implements
// http.RoundTripper; a nil Plan makes it a transparent pass-through.
//
// Faults are injected before the request reaches the wire, so a reset or
// timeout never has server-side effects — matching the retry contract
// (only idempotent requests are retried, and an injected failure must not
// have half-applied anything).
type Transport struct {
	// Base is the real transport; nil selects http.DefaultTransport.
	Base http.RoundTripper
	// Plan schedules the faults; nil injects nothing.
	Plan *Plan
	// RetryAfter is the Retry-After seconds hint synthesized 503s carry;
	// 0 omits the header.
	RetryAfter int
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Plan.Fire(TransportReset) {
		return nil, &netError{msg: "fault: injected connection reset"}
	}
	if t.Plan.Fire(TransportTimeout) {
		return nil, &netError{msg: "fault: injected timeout", timeout: true}
	}
	if t.Plan.Fire(TransportUnavailable) {
		return t.unavailable(req), nil
	}
	resp, err := t.base().RoundTrip(req)
	if err == nil && t.Plan.Fire(TransportTruncate) {
		resp.Body = &truncatingBody{inner: resp.Body}
		// The advertised length no longer matches what the body will
		// deliver — exactly like a connection cut mid-transfer.
		resp.ContentLength = -1
	}
	return resp, err
}

// unavailable synthesizes a 503 without contacting the server, the way an
// overloaded proxy or LB answers for a backend it gave up on.
func (t *Transport) unavailable(req *http.Request) *http.Response {
	h := make(http.Header)
	if t.RetryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(t.RetryAfter))
	}
	body := "fault: injected 503 service unavailable\n"
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", http.StatusServiceUnavailable, http.StatusText(http.StatusServiceUnavailable)),
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatingBody delivers the first half of the first chunk it reads, then
// fails with io.ErrUnexpectedEOF — a mid-stream connection drop as the
// reader experiences it.
type truncatingBody struct {
	inner io.ReadCloser
	cut   bool
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.cut {
		return 0, io.ErrUnexpectedEOF
	}
	n, err := b.inner.Read(p)
	if err != nil && err != io.EOF {
		return n, err
	}
	// A small body arrives in one Read carrying io.EOF; truncation must
	// still cut it, so EOF here is treated like a successful chunk.
	b.cut = true
	n /= 2
	if n == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (b *truncatingBody) Close() error { return b.inner.Close() }
