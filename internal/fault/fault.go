// Package fault is the seeded, deterministic fault-injection layer behind
// the chaos campaigns (DESIGN.md §11). A Plan owns one independent
// seeded RNG per injection site and decides, passage by passage, whether
// the site fires — so a campaign with the same seed injects exactly the
// same fault sequence at every site, and a rerun's report is
// byte-identical. Every schedule is bounded (LeapsAndBounds-style runtime
// caps: per-site Max injection counts, fixed per-fire delays), so a chaos
// campaign can never wedge the suite.
//
// Injection is strictly opt-in and zero-overhead when absent: every wrapper
// (fault.Store, fault.Transport, the serve panic sites) holds a *Plan that
// is normally nil, and a nil Plan never fires — the disabled check is one
// pointer comparison, enforced allocation-free by the cwlint hot-path
// rules.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Site names one injection point. The constants below are the sites the
// built-in wrappers consult; a Plan may carry rules for any subset.
type Site string

// Injection sites.
const (
	// StoreSaveFail makes fault.Store.Save return an operational error
	// without writing anything (a full disk, a permission flip).
	StoreSaveFail Site = "store.save.fail"
	// StoreSaveTorn makes fault.Store.Save report success but leave a
	// torn (truncated mid-write) entry on disk — the crash-consistency
	// case atomic rename normally rules out, forced for testing reload.
	StoreSaveTorn Site = "store.save.torn"
	// StoreLoadErr makes fault.Store.Load return an operational error.
	StoreLoadErr Site = "store.load.err"
	// StoreLoadSlow delays fault.Store.Load by the rule's Delay.
	StoreLoadSlow Site = "store.load.slow"
	// TransportReset makes fault.Transport fail the round trip with a
	// connection-reset error before the request reaches the server.
	TransportReset Site = "transport.reset"
	// TransportTimeout makes fault.Transport fail the round trip with a
	// timeout error (net.Error with Timeout() true).
	TransportTimeout Site = "transport.timeout"
	// TransportUnavailable makes fault.Transport synthesize a 503
	// response (with a Retry-After hint) without contacting the server.
	TransportUnavailable Site = "transport.503"
	// TransportTruncate lets the round trip succeed but cuts the response
	// body off mid-stream (io.ErrUnexpectedEOF), the way a connection
	// dropped halfway through an NDJSON sweep looks to a client.
	TransportTruncate Site = "transport.truncate"
	// ServeHandlerPanic fires a panic inside an HTTP handler, before any
	// admission state is taken — the panic-recovery middleware's case.
	ServeHandlerPanic Site = "serve.handler.panic"
	// ServeRunPanic fires a panic on the run path after an admission slot
	// is held — recovery must release the slot and the flight entry.
	ServeRunPanic Site = "serve.run.panic"
)

// Rule schedules one site: each passage fires with probability Rate, the
// first After passages never fire, and at most Max injections happen in
// total (Max <= 0 means unlimited — campaigns should set it so every fault
// budget is bounded). Delay is the fixed per-fire delay of slow sites.
type Rule struct {
	Rate  float64
	After int
	Max   int
	Delay time.Duration
}

// Count reports one site's traffic: how many times the site was consulted
// and how many of those passages injected a fault.
type Count struct {
	Passages int
	Fired    int
}

// siteState is one site's deterministic decision stream.
type siteState struct {
	rule     Rule
	rng      *rand.Rand
	passages int
	fired    int
}

// Plan is an installed fault schedule. The zero value of *Plan (nil) is a
// valid, permanently quiet plan; wrappers call Fire unconditionally.
// A Plan is safe for concurrent use, but decision streams are only
// reproducible when each site's passages happen in a deterministic order
// (the chaos driver serializes its campaign for exactly this reason).
type Plan struct {
	seed int64

	mu    sync.Mutex
	sites map[Site]*siteState
}

// New builds a plan from per-site rules. Each site draws from its own RNG,
// seeded by (seed, site), so adding or removing one site's rule never
// shifts another site's decision stream.
func New(seed int64, rules map[Site]Rule) *Plan {
	p := &Plan{seed: seed, sites: make(map[Site]*siteState, len(rules))}
	for site, rule := range rules {
		p.sites[site] = &siteState{rule: rule, rng: rand.New(rand.NewSource(deriveSeed(seed, site)))}
	}
	return p
}

// deriveSeed mixes the campaign seed with the site name (FNV-1a), giving
// every site an independent deterministic stream.
func deriveSeed(seed int64, site Site) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return seed ^ int64(h.Sum64())
}

// Fire records one passage at the site and reports whether the plan
// injects a fault there. A nil plan, and a plan with no rule for the site,
// never fire and cost one pointer check (respectively one map lookup).
//
//cwlint:hotpath
func (p *Plan) Fire(site Site) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	st := p.sites[site]
	if st == nil {
		p.mu.Unlock()
		return false
	}
	st.passages++
	// Always consume exactly one draw per passage, so the decision stream
	// depends only on the passage index — never on other sites or on
	// whether earlier passages fired.
	draw := st.rng.Float64()
	fire := draw < st.rule.Rate &&
		st.passages > st.rule.After &&
		(st.rule.Max <= 0 || st.fired < st.rule.Max)
	if fire {
		st.fired++
	}
	p.mu.Unlock()
	return fire
}

// FireDelay is Fire for delay sites: it returns the rule's Delay when the
// passage fires and 0 otherwise.
//
//cwlint:hotpath
func (p *Plan) FireDelay(site Site) time.Duration {
	if p == nil {
		return 0
	}
	if !p.Fire(site) {
		return 0
	}
	p.mu.Lock()
	d := p.sites[site].rule.Delay
	p.mu.Unlock()
	return d
}

// Counts snapshots every scheduled site's passage/fired counters.
func (p *Plan) Counts() map[Site]Count {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Site]Count, len(p.sites))
	for site, st := range p.sites {
		out[site] = Count{Passages: st.passages, Fired: st.fired}
	}
	return out
}

// Fired returns the total number of injections across all sites.
func (p *Plan) Fired() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, st := range p.sites {
		total += st.fired
	}
	return total
}

// Summary renders the per-site counters as sorted, deterministic report
// lines ("site: fired k of n passages").
func (p *Plan) Summary() string {
	counts := p.Counts()
	sites := make([]string, 0, len(counts))
	for site := range counts {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	var sb strings.Builder
	for _, site := range sites {
		c := counts[Site(site)]
		fmt.Fprintf(&sb, "%s: fired %d of %d passages\n", site, c.Fired, c.Passages)
	}
	return sb.String()
}
