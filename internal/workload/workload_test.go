package workload_test

import (
	"testing"
	"testing/quick"

	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
	"configwall/internal/workload"
)

func TestFillMatrixDeterministic(t *testing.T) {
	a := make([]int8, 64)
	b := make([]int8, 64)
	workload.FillMatrix(a, 8, 42)
	workload.FillMatrix(b, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FillMatrix not deterministic for equal seeds")
		}
	}
	workload.FillMatrix(b, 8, 43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestFillMatrixValueRange(t *testing.T) {
	a := make([]int8, 1024)
	workload.FillMatrix(a, 32, 1)
	for i, v := range a {
		if v < -16 || v > 15 {
			t.Fatalf("a[%d] = %d outside [-16, 15]", i, v)
		}
	}
}

// TestMatmulGoldenAgainstNaive cross-checks the (cache-blocked) golden
// matmul against a textbook triple loop (property-based over sizes/seeds).
func TestMatmulGoldenAgainstNaive(t *testing.T) {
	prop := func(seedA, seedB uint8, sizeSel uint8) bool {
		n := []int{8, 16, 24}[int(sizeSel)%3]
		a := make([]int8, n*n)
		b := make([]int8, n*n)
		workload.FillMatrix(a, n, uint64(seedA))
		workload.FillMatrix(b, n, uint64(seedB))
		got := workload.MatmulInt8(a, b, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var want int32
				for k := 0; k < n; k++ {
					want += int32(a[i*n+k]) * int32(b[k*n+j])
				}
				if got[i*n+j] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSaturateInt8(t *testing.T) {
	cases := []struct {
		in   int32
		want int8
	}{
		{0, 0}, {127, 127}, {128, 127}, {100000, 127},
		{-128, -128}, {-129, -128}, {-100000, -128}, {-5, -5},
	}
	for _, tc := range cases {
		if got := workload.SaturateInt8(tc.in); got != tc.want {
			t.Errorf("SaturateInt8(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func countOps(m *ir.Module, name string) int { return ir.CountOpsNamed(m, name) }

func TestGemminiWorkloadShape(t *testing.T) {
	m, err := workload.GemminiTiledMatmul(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if got := countOps(m, accfg.OpSetup); got != 1 {
		t.Errorf("setups = %d, want 1 (inside the tile loop)", got)
	}
	if got := countOps(m, accfg.OpLaunch); got != 1 {
		t.Errorf("launches = %d, want 1", got)
	}
	if got := countOps(m, "scf.for"); got != 2 {
		t.Errorf("loops = %d, want 2 (ti, tj)", got)
	}
	// The setup must cover every field of the gemmini descriptor that the
	// functional model needs.
	var setup accfg.Setup
	m.Walk(func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok {
			setup = s
		}
	})
	for _, f := range []string{"A", "B", "C", "D", "I", "J", "K", "stride_A", "stride_B", "stride_C"} {
		if setup.FieldValue(f) == nil {
			t.Errorf("gemmini workload missing field %q", f)
		}
	}
}

func TestOpenGeMMWorkloadShape(t *testing.T) {
	m, err := workload.OpenGeMMTiledMatmul(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if got := countOps(m, accfg.OpSetup); got != 1 {
		t.Errorf("setups = %d, want 1", got)
	}
	var setup accfg.Setup
	m.Walk(func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok {
			setup = s
		}
	})
	for _, f := range []string{"ptr_a", "ptr_b", "ptr_c", "m", "k", "n", "stride_a", "stride_b", "stride_c"} {
		if setup.FieldValue(f) == nil {
			t.Errorf("opengemm workload missing field %q", f)
		}
	}
}

func TestWorkloadSizeValidation(t *testing.T) {
	if _, err := workload.GemminiTiledMatmul(20); err == nil {
		t.Error("gemmini size not a multiple of 16 must fail")
	}
	if _, err := workload.OpenGeMMTiledMatmul(12); err == nil {
		t.Error("opengemm size not a multiple of 8 must fail")
	}
}

func TestWorkloadSmallestSizes(t *testing.T) {
	if _, err := workload.GemminiTiledMatmul(16); err != nil {
		t.Errorf("gemmini 16x16: %v", err)
	}
	if _, err := workload.OpenGeMMTiledMatmul(8); err != nil {
		t.Errorf("opengemm 8x8: %v", err)
	}
}
