package workload

// Golden CPU reference implementations and deterministic matrix
// initializers shared by tests, examples and the experiment engine.

// FillMatrix fills an n*n int8 matrix with a deterministic pseudo-random
// pattern derived from seed (a small linear congruential generator — the
// simulators are deterministic, so experiments are reproducible).
func FillMatrix(buf []int8, n int, seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for i := 0; i < n*n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		// Keep values small so int8 outputs rarely saturate.
		buf[i] = int8(int64(s>>59) - 16)
	}
}

// MatmulInt8 computes the int32 reference product C = A x B for n x n
// int8 matrices in row-major layout.
func MatmulInt8(a, b []int8, n int) []int32 {
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := int32(a[i*n+k])
			if av == 0 {
				continue
			}
			row := b[k*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += av * int32(row[j])
			}
		}
	}
	return c
}

// SaturateInt8 clamps an int32 accumulator to the int8 output range, the
// same way the Gemmini model stores results.
func SaturateInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}
