package workload

// Golden CPU reference implementations and deterministic matrix
// initializers shared by tests, examples and the experiment engine.

// Fill fills an int8 buffer with a deterministic pseudo-random pattern
// derived from seed (a small linear congruential generator — the simulators
// are deterministic, so experiments are reproducible).
func Fill(buf []int8, seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for i := range buf {
		s = s*6364136223846793005 + 1442695040888963407
		// Keep values small so int8 outputs rarely saturate.
		buf[i] = int8(int64(s>>59) - 16)
	}
}

// FillMatrix fills an n*n int8 matrix deterministically (square
// convenience wrapper around Fill).
func FillMatrix(buf []int8, n int, seed uint64) {
	Fill(buf[:n*n], seed)
}

// MatmulInt8MKN computes the int32 reference product C[M,N] = A[M,K] x
// B[K,N] for row-major int8 matrices.
func MatmulInt8MKN(a, b []int8, m, k, n int) []int32 {
	c := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for x := 0; x < k; x++ {
			av := int32(a[i*k+x])
			if av == 0 {
				continue
			}
			row := b[x*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += av * int32(row[j])
			}
		}
	}
	return c
}

// MatmulInt8 computes the int32 reference product C = A x B for n x n
// int8 matrices in row-major layout.
func MatmulInt8(a, b []int8, n int) []int32 {
	return MatmulInt8MKN(a, b, n, n, n)
}

// SaturateInt8 clamps an int32 accumulator to the int8 output range, the
// same way the Gemmini model stores results.
func SaturateInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}
