// Package workload builds the matrix-multiplication programs the paper
// evaluates (§6): accfg-level IR that configures, launches and awaits the
// Gemmini-style and OpenGeMM-style accelerators tile by tile, plus the
// golden CPU reference used to check functional correctness of every
// compiled binary.
//
// All builders are generalized over rectangular shapes: C[M,N] = A[M,K] x
// B[K,N]. The paper's square n x n workload is the M = K = N special case.
package workload

import (
	"fmt"

	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// GemminiMaxTile is the largest output tile one gemmini_loop_ws invocation
// covers: matrices up to GemminiMaxTile x GemminiMaxTile are a single
// invocation (the paper notes sizes 32 and 64 need only one, §6.1).
const GemminiMaxTile = 64

// Shape names a matmul-family workload and maps the sweep parameter n to
// concrete M x K x N dimensions, so sweeps stay one-dimensional while
// covering rectangular shapes.
type Shape struct {
	Name        string
	Description string
	// Dims maps the sweep size to (M, K, N).
	Dims func(n int) (m, k, nn int)
}

// Canonical shape names, shared with the core workload registry.
const (
	ShapeMatmul = "matmul"
	ShapeRectMM = "rectmm"
	ShapeMatvec = "matvec"
)

// Shapes lists the registered matmul-family shapes: the paper's square
// matmul plus a rectangular and a panel (matvec-proxy) variant.
var Shapes = []Shape{
	{
		Name:        ShapeMatmul,
		Description: "square n x n x n tiled matmul (the paper's workload)",
		Dims:        func(n int) (int, int, int) { return n, n, n },
	},
	{
		Name:        ShapeRectMM,
		Description: "rectangular n x 2n x n/2 tiled matmul (wide reduction, narrow output)",
		Dims:        func(n int) (int, int, int) { return n, 2 * n, n / 2 },
	},
	{
		Name:        ShapeMatvec,
		Description: "matrix-vector proxy: n x n x 16 panel (one minimum-width output tile column)",
		Dims:        func(n int) (int, int, int) { return n, n, 16 },
	},
}

// ShapeByName returns the shape with the given name.
func ShapeByName(name string) (Shape, bool) {
	for _, s := range Shapes {
		if s.Name == name {
			return s, true
		}
	}
	return Shape{}, false
}

// gemminiTile picks the largest output-tile edge for one dimension: at most
// GemminiMaxTile, a multiple of the array dimension, and dividing dim
// evenly.
func gemminiTile(dim int) (int, error) {
	for t := GemminiMaxTile; t >= 16; t -= 16 {
		if t <= dim && dim%t == 0 {
			return t, nil
		}
	}
	return 0, fmt.Errorf("workload: gemmini dimension %d has no 16-multiple tiling <= %d", dim, GemminiMaxTile)
}

// Tiling describes the launch structure of a tiled matmul: the output
// tile edges and the resulting launch count (each launch reduces over the
// full K dimension). It is closed-form arithmetic over the documented
// tiling rules — the analytical prediction tier (internal/analytic) uses
// it as a feature source without building or simulating any IR.
type Tiling struct {
	// TileM and TileN are the output-tile edges of one launch.
	TileM, TileN int
	// Launches is (M/TileM) * (N/TileN).
	Launches int
}

// GemminiMatmulTiling mirrors GemminiTiledMatmulMKN's tile selection.
func GemminiMatmulTiling(mDim, kDim, nDim int) (Tiling, error) {
	for _, d := range [3]int{mDim, kDim, nDim} {
		if d%16 != 0 || d <= 0 {
			return Tiling{}, fmt.Errorf("workload: gemmini matmul dims %dx%dx%d must be positive multiples of 16", mDim, kDim, nDim)
		}
	}
	tileM, err := gemminiTile(mDim)
	if err != nil {
		return Tiling{}, err
	}
	tileN, err := gemminiTile(nDim)
	if err != nil {
		return Tiling{}, err
	}
	return Tiling{TileM: tileM, TileN: tileN, Launches: (mDim / tileM) * (nDim / tileN)}, nil
}

// OpenGeMMMatmulTiling mirrors OpenGeMMTiledMatmulMKN's fixed
// MeshRow x MeshCol (8x8) output tiling.
func OpenGeMMMatmulTiling(mDim, kDim, nDim int) (Tiling, error) {
	for _, d := range [3]int{mDim, kDim, nDim} {
		if d%8 != 0 || d <= 0 {
			return Tiling{}, fmt.Errorf("workload: opengemm matmul dims %dx%dx%d must be positive multiples of 8", mDim, kDim, nDim)
		}
	}
	return Tiling{TileM: 8, TileN: 8, Launches: (mDim / 8) * (nDim / 8)}, nil
}

// GemminiTiledMatmul builds the square C[n,n] = A[n,n] x B[n,n] workload.
func GemminiTiledMatmul(n int) (*ir.Module, error) {
	return GemminiTiledMatmulMKN(n, n, n)
}

// GemminiTiledMatmulMKN builds C[M,N] = A[M,K] x B[K,N] (int8 inputs, int8
// outputs) as a loop nest over output tiles, each tile one weight-stationary
// invocation reducing over the full K dimension.
//
// The generated function has signature
// main(A: memref<MxK xi8>, B: memref<KxN xi8>, C: memref<MxN xi8>).
func GemminiTiledMatmulMKN(mDim, kDim, nDim int) (*ir.Module, error) {
	for _, d := range [3]int{mDim, kDim, nDim} {
		if d%16 != 0 || d <= 0 {
			return nil, fmt.Errorf("workload: gemmini matmul dims %dx%dx%d must be positive multiples of 16", mDim, kDim, nDim)
		}
	}
	tileM, err := gemminiTile(mDim)
	if err != nil {
		return nil, err
	}
	tileN, err := gemminiTile(nDim)
	if err != nil {
		return nil, err
	}

	m := ir.NewModule()
	aT := ir.MemRef(ir.I8, mDim, kDim)
	bT := ir.MemRef(ir.I8, kDim, nDim)
	cT := ir.MemRef(ir.I8, mDim, nDim)
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{aT, bT, cT}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())

	baseA := memref.NewExtractPointer(b, f.Body().Arg(0))
	baseB := memref.NewExtractPointer(b, f.Body().Arg(1))
	baseC := memref.NewExtractPointer(b, f.Body().Arg(2))
	baseA.SetName("baseA")
	baseB.SetName("baseB")
	baseC.SetName("baseC")

	lb := arith.NewConstant(b, 0, ir.Index)
	ubM := arith.NewConstant(b, int64(mDim/tileM), ir.Index)
	ubN := arith.NewConstant(b, int64(nDim/tileN), ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)

	outer := scf.NewFor(b, lb, ubM, step) // ti: output row tiles
	ob := ir.AtEnd(outer.Body())
	inner := scf.NewFor(ob, lb, ubN, step) // tj: output column tiles
	ib := ir.AtEnd(inner.Body())

	// Per-tile addresses: A advances by rows of K, B by columns, C by rows
	// of N and columns.
	ti := arith.NewIndexCast(ib, outer.InductionVar(), ir.I64)
	tj := arith.NewIndexCast(ib, inner.InductionVar(), ir.I64)
	cTileM := arith.NewConstant(ib, int64(tileM), ir.I64)
	cTileN := arith.NewConstant(ib, int64(tileN), ir.I64)
	cK := arith.NewConstant(ib, int64(kDim), ir.I64)
	cN := arith.NewConstant(ib, int64(nDim), ir.I64)
	rowOffA := arith.NewMul(ib, arith.NewMul(ib, ti, cTileM), cK)
	rowOffC := arith.NewMul(ib, arith.NewMul(ib, ti, cTileM), cN)
	colOff := arith.NewMul(ib, tj, cTileN)
	addrA := arith.NewAdd(ib, baseA, rowOffA)
	addrB := arith.NewAdd(ib, baseB, colOff)
	addrC := arith.NewAdd(ib, arith.NewAdd(ib, baseC, rowOffC), colOff)

	iConst := arith.NewConstant(ib, int64(tileM/16), ir.I64)
	jConst := arith.NewConstant(ib, int64(tileN/16), ir.I64)
	kConst := arith.NewConstant(ib, int64(kDim/16), ir.I64)
	zero := arith.NewConstant(ib, 0, ir.I64)
	one := arith.NewConstant(ib, 1, ir.I64)

	setup := accfg.NewSetup(ib, gemmini.Name, nil, []accfg.Field{
		{Name: "A", Value: addrA},
		{Name: "B", Value: addrB},
		{Name: "D", Value: zero},
		{Name: "C", Value: addrC},
		{Name: "I", Value: iConst},
		{Name: "J", Value: jConst},
		{Name: "K", Value: kConst},
		{Name: "pad_I", Value: zero},
		{Name: "pad_J", Value: zero},
		{Name: "pad_K", Value: zero},
		{Name: "stride_A", Value: cK},
		{Name: "stride_B", Value: cN},
		{Name: "stride_D", Value: zero},
		{Name: "stride_C", Value: cN},
		{Name: "act", Value: zero},
		{Name: "A_transpose", Value: zero},
		{Name: "B_transpose", Value: zero},
		{Name: "full_C", Value: zero},
		{Name: "low_D", Value: zero},
		{Name: "ex_accumulate", Value: zero},
		{Name: "acc_scale", Value: one},
		{Name: "spad_A", Value: arith.NewConstant(ib, 0x0000, ir.I64)},
		{Name: "spad_B", Value: arith.NewConstant(ib, 0x4000, ir.I64)},
		{Name: "spad_D", Value: arith.NewConstant(ib, 0x8000, ir.I64)},
		{Name: "spad_C", Value: arith.NewConstant(ib, 0xc000, ir.I64)},
		{Name: "mvin0_rows", Value: iConst},
		{Name: "mvin0_cols", Value: kConst},
		{Name: "mvin0_stride", Value: cK},
		{Name: "mvin1_rows", Value: kConst},
		{Name: "mvin1_cols", Value: jConst},
		{Name: "mvin1_stride", Value: cN},
		{Name: "mvin2_rows", Value: iConst},
		{Name: "mvin2_cols", Value: jConst},
		{Name: "mvin2_stride", Value: cN},
		{Name: "mvout_rows", Value: iConst},
		{Name: "mvout_cols", Value: jConst},
		{Name: "mvout_stride", Value: cN},
	})
	launch := accfg.NewLaunch(ib, setup.State())
	accfg.NewAwait(ib, launch.Token())

	scf.NewYield(ib)
	scf.NewYield(ob)
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("workload: generated gemmini matmul invalid: %w", err)
	}
	return m, nil
}

// OpenGeMMTiledMatmul builds the square C[n,n] = A[n,n] x B[n,n] workload.
func OpenGeMMTiledMatmul(n int) (*ir.Module, error) {
	return OpenGeMMTiledMatmulMKN(n, n, n)
}

// OpenGeMMTiledMatmulMKN builds C[M,N] (int32) = A[M,K] x B[K,N] (int8) as
// a loop nest over MeshRow x MeshCol output tiles, each launch reducing
// over the full K dimension — the paper's 8-by-K-by-8 tiling (§6.2).
//
// The generated function has signature
// main(A: memref<MxK xi8>, B: memref<KxN xi8>, C: memref<MxN xi32>).
func OpenGeMMTiledMatmulMKN(mDim, kDim, nDim int) (*ir.Module, error) {
	for _, d := range [3]int{mDim, kDim, nDim} {
		if d%8 != 0 || d <= 0 {
			return nil, fmt.Errorf("workload: opengemm matmul dims %dx%dx%d must be positive multiples of 8", mDim, kDim, nDim)
		}
	}
	m := ir.NewModule()
	aT := ir.MemRef(ir.I8, mDim, kDim)
	bT := ir.MemRef(ir.I8, kDim, nDim)
	cT := ir.MemRef(ir.I32, mDim, nDim)
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{aT, bT, cT}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())

	baseA := memref.NewExtractPointer(b, f.Body().Arg(0))
	baseB := memref.NewExtractPointer(b, f.Body().Arg(1))
	baseC := memref.NewExtractPointer(b, f.Body().Arg(2))

	lb := arith.NewConstant(b, 0, ir.Index)
	ubM := arith.NewConstant(b, int64(mDim/8), ir.Index)
	ubN := arith.NewConstant(b, int64(nDim/8), ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)

	outer := scf.NewFor(b, lb, ubM, step) // ti: output row tiles
	ob := ir.AtEnd(outer.Body())
	inner := scf.NewFor(ob, lb, ubN, step) // tj: output column tiles
	ib := ir.AtEnd(inner.Body())

	ti := arith.NewIndexCast(ib, outer.InductionVar(), ir.I64)
	tj := arith.NewIndexCast(ib, inner.InductionVar(), ir.I64)
	c8 := arith.NewConstant(ib, 8, ir.I64)
	cK := arith.NewConstant(ib, int64(kDim), ir.I64)
	cN := arith.NewConstant(ib, int64(nDim), ir.I64)
	c4 := arith.NewConstant(ib, 4, ir.I64)

	rowElemsA := arith.NewMul(ib, arith.NewMul(ib, ti, c8), cK)
	rowElemsC := arith.NewMul(ib, arith.NewMul(ib, ti, c8), cN)
	ptrA := arith.NewAdd(ib, baseA, rowElemsA)
	ptrB := arith.NewAdd(ib, baseB, arith.NewMul(ib, tj, c8))
	cOff := arith.NewMul(ib, arith.NewAdd(ib, rowElemsC, arith.NewMul(ib, tj, c8)), c4)
	ptrC := arith.NewAdd(ib, baseC, cOff)

	oneT := arith.NewConstant(ib, 1, ir.I64)
	kTiles := arith.NewConstant(ib, int64(kDim/8), ir.I64)
	strideOut := arith.NewMul(ib, cN, c4)
	zero := arith.NewConstant(ib, 0, ir.I64)

	setup := accfg.NewSetup(ib, opengemm.Name, nil, []accfg.Field{
		{Name: "ptr_a", Value: ptrA},
		{Name: "ptr_b", Value: ptrB},
		{Name: "ptr_c", Value: ptrC},
		{Name: "m", Value: oneT},
		{Name: "k", Value: kTiles},
		{Name: "n", Value: oneT},
		{Name: "stride_a", Value: cK},
		{Name: "stride_b", Value: cN},
		{Name: "stride_c", Value: strideOut},
		{Name: "subtractions", Value: zero},
		{Name: "flags", Value: zero},
	})
	launch := accfg.NewLaunch(ib, setup.State())
	accfg.NewAwait(ib, launch.Token())

	scf.NewYield(ib)
	scf.NewYield(ob)
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("workload: generated opengemm matmul invalid: %w", err)
	}
	return m, nil
}
