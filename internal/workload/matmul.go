// Package workload builds the tiled matrix-multiplication programs the
// paper evaluates (§6): accfg-level IR that configures, launches and awaits
// the Gemmini-style and OpenGeMM-style accelerators tile by tile, plus the
// golden CPU reference used to check functional correctness of every
// compiled binary.
package workload

import (
	"fmt"

	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// GemminiMaxTile is the largest output tile one gemmini_loop_ws invocation
// covers: matrices up to GemminiMaxTile x GemminiMaxTile are a single
// invocation (the paper notes sizes 32 and 64 need only one, §6.1).
const GemminiMaxTile = 64

// GemminiTiledMatmul builds C[n,n] = A[n,n] x B[n,n] (int8 inputs, int8
// outputs) as a loop nest over GemminiMaxTile-sized output tiles, each tile
// one weight-stationary invocation reducing over the full K dimension.
//
// The generated function has signature main(A, B, C: memref<nxn xi8>).
func GemminiTiledMatmul(n int) (*ir.Module, error) {
	if n%16 != 0 {
		return nil, fmt.Errorf("workload: gemmini matmul size %d must be a multiple of 16", n)
	}
	tile := GemminiMaxTile
	if n < tile {
		tile = n
	}

	m := ir.NewModule()
	bufT := ir.MemRef(ir.I8, n, n)
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{bufT, bufT, bufT}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())

	baseA := memref.NewExtractPointer(b, f.Body().Arg(0))
	baseB := memref.NewExtractPointer(b, f.Body().Arg(1))
	baseC := memref.NewExtractPointer(b, f.Body().Arg(2))
	baseA.SetName("baseA")
	baseB.SetName("baseB")
	baseC.SetName("baseC")

	tiles := n / tile
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, int64(tiles), ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)

	outer := scf.NewFor(b, lb, ub, step) // ti: output row tiles
	ob := ir.AtEnd(outer.Body())
	inner := scf.NewFor(ob, lb, ub, step) // tj: output column tiles
	ib := ir.AtEnd(inner.Body())

	// Per-tile addresses: A advances by rows, B by columns, C by both.
	ti := arith.NewIndexCast(ib, outer.InductionVar(), ir.I64)
	tj := arith.NewIndexCast(ib, inner.InductionVar(), ir.I64)
	cTile := arith.NewConstant(ib, int64(tile), ir.I64)
	cN := arith.NewConstant(ib, int64(n), ir.I64)
	rowOff := arith.NewMul(ib, arith.NewMul(ib, ti, cTile), cN)
	colOff := arith.NewMul(ib, tj, cTile)
	addrA := arith.NewAdd(ib, baseA, rowOff)
	addrB := arith.NewAdd(ib, baseB, colOff)
	addrC := arith.NewAdd(ib, arith.NewAdd(ib, baseC, rowOff), colOff)

	iConst := arith.NewConstant(ib, int64(tile/16), ir.I64)
	kConst := arith.NewConstant(ib, int64(n/16), ir.I64)
	zero := arith.NewConstant(ib, 0, ir.I64)
	one := arith.NewConstant(ib, 1, ir.I64)
	strideVal := cN

	setup := accfg.NewSetup(ib, gemmini.Name, nil, []accfg.Field{
		{Name: "A", Value: addrA},
		{Name: "B", Value: addrB},
		{Name: "D", Value: zero},
		{Name: "C", Value: addrC},
		{Name: "I", Value: iConst},
		{Name: "J", Value: iConst},
		{Name: "K", Value: kConst},
		{Name: "pad_I", Value: zero},
		{Name: "pad_J", Value: zero},
		{Name: "pad_K", Value: zero},
		{Name: "stride_A", Value: strideVal},
		{Name: "stride_B", Value: strideVal},
		{Name: "stride_D", Value: zero},
		{Name: "stride_C", Value: strideVal},
		{Name: "act", Value: zero},
		{Name: "A_transpose", Value: zero},
		{Name: "B_transpose", Value: zero},
		{Name: "full_C", Value: zero},
		{Name: "low_D", Value: zero},
		{Name: "ex_accumulate", Value: zero},
		{Name: "acc_scale", Value: one},
		{Name: "spad_A", Value: arith.NewConstant(ib, 0x0000, ir.I64)},
		{Name: "spad_B", Value: arith.NewConstant(ib, 0x4000, ir.I64)},
		{Name: "spad_D", Value: arith.NewConstant(ib, 0x8000, ir.I64)},
		{Name: "spad_C", Value: arith.NewConstant(ib, 0xc000, ir.I64)},
		{Name: "mvin0_rows", Value: iConst},
		{Name: "mvin0_cols", Value: kConst},
		{Name: "mvin0_stride", Value: strideVal},
		{Name: "mvin1_rows", Value: kConst},
		{Name: "mvin1_cols", Value: iConst},
		{Name: "mvin1_stride", Value: strideVal},
		{Name: "mvin2_rows", Value: iConst},
		{Name: "mvin2_cols", Value: iConst},
		{Name: "mvin2_stride", Value: strideVal},
		{Name: "mvout_rows", Value: iConst},
		{Name: "mvout_cols", Value: iConst},
		{Name: "mvout_stride", Value: strideVal},
	})
	launch := accfg.NewLaunch(ib, setup.State())
	accfg.NewAwait(ib, launch.Token())

	scf.NewYield(ib)
	scf.NewYield(ob)
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("workload: generated gemmini matmul invalid: %w", err)
	}
	return m, nil
}

// OpenGeMMTiledMatmul builds C[n,n] (int32) = A[n,n] x B[n,n] (int8) as a
// loop nest over MeshRow x MeshCol output tiles, each launch reducing over
// the full K dimension — the paper's 8-by-K-by-8 tiling (§6.2).
//
// The generated function has signature
// main(A, B: memref<nxn xi8>, C: memref<nxn xi32>).
func OpenGeMMTiledMatmul(n int) (*ir.Module, error) {
	if n%8 != 0 {
		return nil, fmt.Errorf("workload: opengemm matmul size %d must be a multiple of 8", n)
	}
	m := ir.NewModule()
	inT := ir.MemRef(ir.I8, n, n)
	outT := ir.MemRef(ir.I32, n, n)
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{inT, inT, outT}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())

	baseA := memref.NewExtractPointer(b, f.Body().Arg(0))
	baseB := memref.NewExtractPointer(b, f.Body().Arg(1))
	baseC := memref.NewExtractPointer(b, f.Body().Arg(2))

	tiles := n / 8
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, int64(tiles), ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)

	outer := scf.NewFor(b, lb, ub, step) // ti: output row tiles
	ob := ir.AtEnd(outer.Body())
	inner := scf.NewFor(ob, lb, ub, step) // tj: output column tiles
	ib := ir.AtEnd(inner.Body())

	ti := arith.NewIndexCast(ib, outer.InductionVar(), ir.I64)
	tj := arith.NewIndexCast(ib, inner.InductionVar(), ir.I64)
	c8 := arith.NewConstant(ib, 8, ir.I64)
	cN := arith.NewConstant(ib, int64(n), ir.I64)
	c4 := arith.NewConstant(ib, 4, ir.I64)

	rowElems := arith.NewMul(ib, arith.NewMul(ib, ti, c8), cN)
	ptrA := arith.NewAdd(ib, baseA, rowElems)
	ptrB := arith.NewAdd(ib, baseB, arith.NewMul(ib, tj, c8))
	cOff := arith.NewMul(ib, arith.NewAdd(ib, rowElems, arith.NewMul(ib, tj, c8)), c4)
	ptrC := arith.NewAdd(ib, baseC, cOff)

	oneT := arith.NewConstant(ib, 1, ir.I64)
	kTiles := arith.NewConstant(ib, int64(n/8), ir.I64)
	strideIn := cN
	strideOut := arith.NewMul(ib, cN, c4)
	zero := arith.NewConstant(ib, 0, ir.I64)

	setup := accfg.NewSetup(ib, opengemm.Name, nil, []accfg.Field{
		{Name: "ptr_a", Value: ptrA},
		{Name: "ptr_b", Value: ptrB},
		{Name: "ptr_c", Value: ptrC},
		{Name: "m", Value: oneT},
		{Name: "k", Value: kTiles},
		{Name: "n", Value: oneT},
		{Name: "stride_a", Value: strideIn},
		{Name: "stride_b", Value: strideIn},
		{Name: "stride_c", Value: strideOut},
		{Name: "subtractions", Value: zero},
		{Name: "flags", Value: zero},
	})
	launch := accfg.NewLaunch(ib, setup.State())
	accfg.NewAwait(ib, launch.Token())

	scf.NewYield(ib)
	scf.NewYield(ob)
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("workload: generated opengemm matmul invalid: %w", err)
	}
	return m, nil
}
