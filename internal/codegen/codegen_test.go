package codegen_test

import (
	"testing"

	"configwall/internal/codegen"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

// run compiles the module's entry function and executes it, returning the
// machine for register/memory inspection.
func run(t *testing.T, m *ir.Module, args ...int64) *sim.Machine {
	t.Helper()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module invalid: %v\n%s", err, ir.PrintModule(m))
	}
	prog, _, err := codegen.Compile(m, "main", codegen.Options{})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, ir.PrintModule(m))
	}
	mc := sim.NewMachine(mem.New(1<<22), riscv.FlatCost{PerInstr: 1, ModelName: "test"}, nil)
	for i, a := range args {
		mc.Regs[int(riscv.A0)+i] = a
	}
	mc.Regs[riscv.SP] = 1 << 21
	if err := mc.Run(prog); err != nil {
		t.Fatalf("run: %v\n%s", err, prog.Disassemble())
	}
	return mc
}

func newFunc(m *ir.Module, in []ir.Type, out []ir.Type) (fnc.Func, *ir.Builder) {
	f := fnc.NewFunc("main", ir.FuncType(in, out))
	m.Append(f.Op)
	return f, ir.AtEnd(f.Body())
}

func TestSumLoop(t *testing.T) {
	m := ir.NewModule()
	f, b := newFunc(m, nil, []ir.Type{ir.I64})
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 10, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	zero := arith.NewConstant(b, 0, ir.I64)
	loop := scf.NewFor(b, lb, ub, step, zero)
	lbld := ir.AtEnd(loop.Body())
	iv := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	sum := arith.NewAdd(lbld, loop.IterArg(0), iv)
	scf.NewYield(lbld, sum)
	fnc.NewReturn(b, loop.Op.Result(0))
	_ = f

	mc := run(t, m)
	if got := mc.Regs[riscv.A0]; got != 45 {
		t.Errorf("sum 0..9 = %d, want 45", got)
	}
}

func TestArithOps(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{arith.OpAddI, 7, 5, 12},
		{arith.OpSubI, 7, 5, 2},
		{arith.OpMulI, 7, 5, 35},
		{arith.OpDivUI, 37, 5, 7},
		{arith.OpRemUI, 37, 5, 2},
		{arith.OpAndI, 0b1100, 0b1010, 0b1000},
		{arith.OpOrI, 0b1100, 0b1010, 0b1110},
		{arith.OpXOrI, 0b1100, 0b1010, 0b0110},
		{arith.OpShLI, 3, 4, 48},
		{arith.OpShRUI, 48, 4, 3},
	}
	for _, tc := range cases {
		t.Run(tc.op, func(t *testing.T) {
			m := ir.NewModule()
			_, b := newFunc(m, []ir.Type{ir.I64, ir.I64}, []ir.Type{ir.I64})
			fun := m.FindFunc("main")
			r := arith.NewBinary(b, tc.op, fun.Region(0).Block().Arg(0), fun.Region(0).Block().Arg(1))
			fnc.NewReturn(b, r)
			mc := run(t, m, tc.a, tc.b)
			if got := mc.Regs[riscv.A0]; got != tc.want {
				t.Errorf("%s(%d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestCmpPredicates(t *testing.T) {
	cases := []struct {
		pred string
		a, b int64
		want int64
	}{
		{arith.PredEQ, 5, 5, 1}, {arith.PredEQ, 5, 6, 0},
		{arith.PredNE, 5, 5, 0}, {arith.PredNE, 5, 6, 1},
		{arith.PredSLT, -1, 1, 1}, {arith.PredSLT, 1, -1, 0},
		{arith.PredSLE, 5, 5, 1}, {arith.PredSLE, 6, 5, 0},
		{arith.PredSGT, 6, 5, 1}, {arith.PredSGT, 5, 5, 0},
		{arith.PredSGE, 5, 5, 1}, {arith.PredSGE, 4, 5, 0},
		{arith.PredULT, 1, ^int64(0), 1}, // unsigned: 1 < 2^64-1
		{arith.PredULE, 5, 5, 1},
	}
	for _, tc := range cases {
		t.Run(tc.pred, func(t *testing.T) {
			m := ir.NewModule()
			_, b := newFunc(m, []ir.Type{ir.I64, ir.I64}, []ir.Type{ir.I64})
			fun := m.FindFunc("main")
			cm := arith.NewCmp(b, tc.pred, fun.Region(0).Block().Arg(0), fun.Region(0).Block().Arg(1))
			r := arith.NewIndexCast(b, cm, ir.I64)
			fnc.NewReturn(b, r)
			mc := run(t, m, tc.a, tc.b)
			if got := mc.Regs[riscv.A0]; got != tc.want {
				t.Errorf("cmp %s(%d, %d) = %d, want %d", tc.pred, tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestIfElse(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule()
		_, b := newFunc(m, []ir.Type{ir.I64}, []ir.Type{ir.I64})
		fun := m.FindFunc("main")
		x := fun.Region(0).Block().Arg(0)
		c10 := arith.NewConstant(b, 10, ir.I64)
		cond := arith.NewCmp(b, arith.PredSLT, x, c10)
		ifOp := scf.NewIf(b, cond, ir.I64)
		tb := ir.AtEnd(ifOp.Then())
		c1 := arith.NewConstant(tb, 111, ir.I64)
		scf.NewYield(tb, c1)
		eb := ir.AtEnd(ifOp.Else())
		c2 := arith.NewConstant(eb, 222, ir.I64)
		scf.NewYield(eb, c2)
		fnc.NewReturn(b, ifOp.Op.Result(0))
		return m
	}
	if got := run(t, build(), 5).Regs[riscv.A0]; got != 111 {
		t.Errorf("if(5<10) = %d, want 111", got)
	}
	if got := run(t, build(), 15).Regs[riscv.A0]; got != 222 {
		t.Errorf("if(15<10) = %d, want 222", got)
	}
}

func TestMemrefLoadStore(t *testing.T) {
	m := ir.NewModule()
	_, b := newFunc(m, nil, []ir.Type{ir.I64})
	buf := memref.NewAlloc(b, ir.MemRef(ir.I64, 4, 4))
	i1 := arith.NewConstant(b, 1, ir.Index)
	i2 := arith.NewConstant(b, 2, ir.Index)
	v := arith.NewConstant(b, 9876, ir.I64)
	memref.NewStore(b, v, buf, i1, i2)
	got := memref.NewLoad(b, buf, i1, i2)
	fnc.NewReturn(b, got)

	mc := run(t, m)
	if got := mc.Regs[riscv.A0]; got != 9876 {
		t.Errorf("load after store = %d, want 9876", got)
	}
}

func TestMemrefElementWidths(t *testing.T) {
	for _, elem := range []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64} {
		t.Run(elem.String(), func(t *testing.T) {
			m := ir.NewModule()
			_, b := newFunc(m, nil, []ir.Type{ir.I64})
			buf := memref.NewAlloc(b, ir.MemRef(elem, 8))
			i3 := arith.NewConstant(b, 3, ir.Index)
			v := arith.NewConstant(b, -5, elem)
			memref.NewStore(b, v, buf, i3)
			got := memref.NewLoad(b, buf, i3)
			cast := arith.NewIndexCast(b, got, ir.I64)
			fnc.NewReturn(b, cast)
			mc := run(t, m)
			if got := mc.Regs[riscv.A0]; got != -5 {
				t.Errorf("%s roundtrip = %d, want -5 (sign-extended)", elem, got)
			}
		})
	}
}

func TestNestedLoops(t *testing.T) {
	// sum_{i<4} sum_{j<4} i*j = (0+1+2+3)^2 = 36
	m := ir.NewModule()
	_, b := newFunc(m, nil, []ir.Type{ir.I64})
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 4, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	zero := arith.NewConstant(b, 0, ir.I64)
	outer := scf.NewFor(b, lb, ub, step, zero)
	ob := ir.AtEnd(outer.Body())
	inner := scf.NewFor(ob, lb, ub, step, outer.IterArg(0))
	ib := ir.AtEnd(inner.Body())
	ivI := arith.NewIndexCast(ib, outer.InductionVar(), ir.I64)
	ivJ := arith.NewIndexCast(ib, inner.InductionVar(), ir.I64)
	prod := arith.NewMul(ib, ivI, ivJ)
	sum := arith.NewAdd(ib, inner.IterArg(0), prod)
	scf.NewYield(ib, sum)
	scf.NewYield(ob, inner.Op.Result(0))
	fnc.NewReturn(b, outer.Op.Result(0))

	mc := run(t, m)
	if got := mc.Regs[riscv.A0]; got != 36 {
		t.Errorf("nested loop sum = %d, want 36", got)
	}
}

func TestSpilling(t *testing.T) {
	// Create more simultaneously-live values than there are registers: 40
	// loads kept alive until a final summation forces spills.
	m := ir.NewModule()
	_, b := newFunc(m, nil, []ir.Type{ir.I64})
	buf := memref.NewAlloc(b, ir.MemRef(ir.I64, 64))
	var vals []*ir.Value
	want := int64(0)
	for i := 0; i < 40; i++ {
		idx := arith.NewConstant(b, int64(i), ir.Index)
		v := arith.NewConstant(b, int64(i*i), ir.I64)
		memref.NewStore(b, v, buf, idx)
		vals = append(vals, memref.NewLoad(b, buf, idx))
		want += int64(i * i)
	}
	sum := vals[0]
	for _, v := range vals[1:] {
		sum = arith.NewAdd(b, sum, v)
	}
	fnc.NewReturn(b, sum)

	prog, layout, err := codegen.Compile(m, "main", codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if layout.FrameSlots == 0 {
		t.Error("expected spill slots for 40 live values, got none")
	}
	mc := sim.NewMachine(mem.New(1<<22), riscv.FlatCost{PerInstr: 1, ModelName: "test"}, nil)
	mc.Regs[riscv.SP] = 1 << 21
	if err := mc.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := mc.Regs[riscv.A0]; got != want {
		t.Errorf("spilled sum = %d, want %d", got, want)
	}
}

func TestSelect(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule()
		_, b := newFunc(m, []ir.Type{ir.I64}, []ir.Type{ir.I64})
		fun := m.FindFunc("main")
		x := fun.Region(0).Block().Arg(0)
		c0 := arith.NewConstant(b, 0, ir.I64)
		cond := arith.NewCmp(b, arith.PredSGT, x, c0)
		cPos := arith.NewConstant(b, 1, ir.I64)
		cNeg := arith.NewConstant(b, -1, ir.I64)
		r := arith.NewSelect(b, cond, cPos, cNeg)
		fnc.NewReturn(b, r)
		return m
	}
	if got := run(t, build(), 42).Regs[riscv.A0]; got != 1 {
		t.Errorf("select(42>0) = %d, want 1", got)
	}
	if got := run(t, build(), -42).Regs[riscv.A0]; got != -1 {
		t.Errorf("select(-42>0) = %d, want -1", got)
	}
}

func TestLoopWithZeroIterations(t *testing.T) {
	m := ir.NewModule()
	_, b := newFunc(m, nil, []ir.Type{ir.I64})
	lb := arith.NewConstant(b, 5, ir.Index)
	ub := arith.NewConstant(b, 5, ir.Index) // empty range
	step := arith.NewConstant(b, 1, ir.Index)
	init := arith.NewConstant(b, 77, ir.I64)
	loop := scf.NewFor(b, lb, ub, step, init)
	lbld := ir.AtEnd(loop.Body())
	c := arith.NewConstant(lbld, 0, ir.I64)
	scf.NewYield(lbld, c)
	fnc.NewReturn(b, loop.Op.Result(0))

	mc := run(t, m)
	if got := mc.Regs[riscv.A0]; got != 77 {
		t.Errorf("zero-trip loop result = %d, want initial value 77", got)
	}
}

func TestMemrefArgumentPassing(t *testing.T) {
	// The runner passes buffer base addresses in a-registers.
	m := ir.NewModule()
	_, b := newFunc(m, []ir.Type{ir.MemRef(ir.I64, 8)}, []ir.Type{ir.I64})
	fun := m.FindFunc("main")
	buf := fun.Region(0).Block().Arg(0)
	i0 := arith.NewConstant(b, 0, ir.Index)
	got := memref.NewLoad(b, buf, i0)
	fnc.NewReturn(b, got)

	memory := mem.New(1 << 22)
	memory.Write64(0x1000, 4242)
	prog, _, err := codegen.Compile(m, "main", codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc := sim.NewMachine(memory, riscv.FlatCost{PerInstr: 1, ModelName: "test"}, nil)
	mc.Regs[riscv.A0] = 0x1000
	mc.Regs[riscv.SP] = 1 << 21
	if err := mc.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := mc.Regs[riscv.A0]; got != 4242 {
		t.Errorf("loaded %d, want 4242", got)
	}
}

func TestCompileErrors(t *testing.T) {
	t.Run("missing function", func(t *testing.T) {
		m := ir.NewModule()
		if _, _, err := codegen.Compile(m, "nope", codegen.Options{}); err == nil {
			t.Error("expected error for missing entry function")
		}
	})
	t.Run("unlowered accfg", func(t *testing.T) {
		m := ir.NewModule()
		_, b := newFunc(m, nil, nil)
		c := arith.NewConstant(b, 1, ir.I64)
		s := ir.NewOp("accfg.setup", []*ir.Value{c}, []ir.Type{ir.StateType{Accelerator: "x"}})
		s.SetAttr("accelerator", ir.StringAttr{Value: "x"})
		s.SetAttr("fields", ir.StringsAttr("f"))
		b.Insert(s)
		fnc.NewReturn(b)
		if _, _, err := codegen.Compile(m, "main", codegen.Options{}); err == nil {
			t.Error("expected error for unlowered accfg op")
		}
	})
}
