// Package codegen lowers fully-target-lowered IR (arith + scf + memref +
// rocc/csr ops) to the RV64-subset instruction set executed by the
// co-simulator. It is a classic small backend: tree-walking instruction
// selection over virtual registers, structured control flow expanded to
// labels and branches, then linear-scan register allocation with spilling.
package codegen

import (
	"fmt"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/csrops"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/rocc"
	"configwall/internal/ir"
	"configwall/internal/riscv"
)

// Layout describes where the compiled function expects its data.
type Layout struct {
	// StaticBase is the base address used for memref.alloc buffers.
	StaticBase uint64
	// StaticSize is the total size of statically allocated buffers.
	StaticSize uint64
	// Allocs maps each memref.alloc to its assigned address.
	Allocs map[*ir.Op]uint64
	// FrameSlots is the number of 8-byte spill slots in the stack frame.
	FrameSlots int
}

// Options configures compilation.
type Options struct {
	// StaticBase is where memref.alloc buffers are placed (the runner must
	// keep this region free). Zero selects a default of 1 MiB.
	StaticBase uint64
}

// noVReg marks an unused register slot in a pre-allocation instruction.
const noVReg = -1

// vinstr is a pre-allocation instruction over virtual registers.
type vinstr struct {
	op           riscv.Opcode
	rd, rs1, rs2 int
	imm          int64
	funct7       uint32
	label        string
	class        riscv.Class
}

// compiler holds state while emitting one function.
type compiler struct {
	instrs  []vinstr
	labels  map[int][]string // instruction index -> labels bound there
	nextVR  int
	nextLbl int
	vals    map[*ir.Value]int // SSA value -> vreg
	layout  *Layout
	loops   [][2]int // [start, end) instruction ranges of loop bodies
}

// Compile lowers the named entry function of m into an executable program.
// Scalar and memref arguments arrive in a0, a1, ... (memrefs as their base
// addresses); scalar results are returned in a0, ... and the program ends
// with HALT.
func Compile(m *ir.Module, entry string, opts Options) (*riscv.Program, *Layout, error) {
	f := m.FindFunc(entry)
	if f == nil {
		return nil, nil, fmt.Errorf("codegen: no function %q in module", entry)
	}
	fn, _ := fnc.AsFunc(f)

	base := opts.StaticBase
	if base == 0 {
		base = 1 << 20
	}
	c := &compiler{
		labels: map[int][]string{},
		vals:   map[*ir.Value]int{},
		layout: &Layout{StaticBase: base, Allocs: map[*ir.Op]uint64{}},
	}

	// Bind arguments: a0..a7 moved into fresh vregs.
	args := fn.Body().Args()
	if len(args) > 8 {
		return nil, nil, fmt.Errorf("codegen: at most 8 arguments supported, got %d", len(args))
	}
	for i, a := range args {
		vr := c.fresh()
		c.vals[a] = vr
		c.emit(vinstr{op: riscv.ADDI, rd: vr, rs1: physVReg(riscv.A0 + riscv.Reg(i)), imm: 0})
	}

	if err := c.block(fn.Body()); err != nil {
		return nil, nil, err
	}
	c.eliminateDeadDefs()

	prog, frameSlots, err := allocate(c)
	if err != nil {
		return nil, nil, err
	}
	c.layout.FrameSlots = frameSlots
	return prog, c.layout, nil
}

// physVReg encodes a pre-colored physical register as a negative vreg id.
func physVReg(r riscv.Reg) int { return -int(r) - 2 }

func physOf(vr int) (riscv.Reg, bool) {
	if vr <= -2 {
		return riscv.Reg(-vr - 2), true
	}
	return 0, false
}

func (c *compiler) fresh() int {
	c.nextVR++
	return c.nextVR - 1
}

func (c *compiler) emit(i vinstr) {
	if i.rd == 0 && i.op != riscv.NOP {
		// vreg ids start at 0; default zero-value fields must be explicit.
	}
	c.instrs = append(c.instrs, i)
}

func (c *compiler) freshLabel(prefix string) string {
	c.nextLbl++
	return fmt.Sprintf(".%s%d", prefix, c.nextLbl)
}

func (c *compiler) bind(label string) {
	idx := len(c.instrs)
	c.labels[idx] = append(c.labels[idx], label)
}

// value returns the vreg holding an SSA value.
func (c *compiler) value(v *ir.Value) (int, error) {
	if vr, ok := c.vals[v]; ok {
		return vr, nil
	}
	return 0, fmt.Errorf("codegen: SSA value of type %s has no register (op %v)", v.Type(), defName(v))
}

func defName(v *ir.Value) string {
	if d := v.DefiningOp(); d != nil {
		return d.Name()
	}
	return "<block-arg>"
}

// constOf returns the constant behind v when it is an arith.constant.
func constOf(v *ir.Value) (int64, bool) { return arith.ConstantValue(v) }

// fitsImm12 reports whether v fits the 12-bit signed immediate field.
func fitsImm12(v int64) bool { return v >= -2048 && v < 2048 }

// block emits all ops of b.
func (c *compiler) block(b *ir.Block) error {
	for op := b.First(); op != nil; op = op.Next() {
		if err := c.op(op); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) op(op *ir.Op) error {
	switch op.Name() {
	case arith.OpConstant:
		v, _ := op.IntAttrValue("value")
		rd := c.fresh()
		c.vals[op.Result(0)] = rd
		c.emit(vinstr{op: riscv.LI, rd: rd, rs1: noVReg, rs2: noVReg, imm: v})
		return nil
	case arith.OpAddI, arith.OpSubI, arith.OpMulI, arith.OpDivUI, arith.OpRemUI,
		arith.OpAndI, arith.OpOrI, arith.OpXOrI, arith.OpShLI, arith.OpShRUI:
		return c.binary(op)
	case arith.OpCmpI:
		return c.cmp(op)
	case arith.OpSelect:
		return c.sel(op)
	case arith.OpIndexCast:
		rs, err := c.value(op.Operand(0))
		if err != nil {
			return err
		}
		rd := c.fresh()
		c.vals[op.Result(0)] = rd
		c.emit(vinstr{op: riscv.ADDI, rd: rd, rs1: rs, rs2: noVReg, imm: 0})
		return nil
	case "memref.alloc":
		return c.alloc(op)
	case "memref.dim":
		return c.dim(op)
	case "memref.extract_pointer":
		rs, err := c.value(op.Operand(0))
		if err != nil {
			return err
		}
		rd := c.fresh()
		c.vals[op.Result(0)] = rd
		c.emit(vinstr{op: riscv.ADDI, rd: rd, rs1: rs, rs2: noVReg, imm: 0})
		return nil
	case "memref.load":
		return c.load(op)
	case "memref.store":
		return c.store(op)
	case "scf.for":
		return c.forLoop(op)
	case "scf.if":
		return c.ifOp(op)
	case "scf.yield":
		// Handled by the parent loop/if emitters.
		return nil
	case fnc.OpReturn:
		for i, v := range op.Operands() {
			rs, err := c.value(v)
			if err != nil {
				return err
			}
			c.emit(vinstr{op: riscv.ADDI, rd: physVReg(riscv.A0 + riscv.Reg(i)), rs1: rs, rs2: noVReg, imm: 0})
		}
		c.emit(vinstr{op: riscv.HALT, rd: noVReg, rs1: noVReg, rs2: noVReg})
		return nil
	case rocc.OpWrite:
		rs1, err := c.value(op.Operand(0))
		if err != nil {
			return err
		}
		rs2, err := c.value(op.Operand(1))
		if err != nil {
			return err
		}
		c.emit(vinstr{op: riscv.CUSTOM, rd: noVReg, rs1: rs1, rs2: rs2, funct7: rocc.Funct7(op), class: riscv.ClassConfig})
		return nil
	case rocc.OpFence:
		c.emit(vinstr{op: riscv.CUSTOM, rd: noVReg, rs1: noVReg, rs2: noVReg, funct7: rocc.Funct7(op), class: riscv.ClassSync})
		return nil
	case csrops.OpWrite:
		rs, err := c.value(op.Operand(0))
		if err != nil {
			return err
		}
		c.emit(vinstr{op: riscv.CSRRW, rd: noVReg, rs1: rs, rs2: noVReg, imm: int64(csrops.Addr(op)), class: riscv.ClassConfig})
		return nil
	case csrops.OpBarrier:
		head := c.freshLabel("poll")
		c.bind(head)
		status := c.fresh()
		c.emit(vinstr{op: riscv.CSRRS, rd: status, rs1: noVReg, rs2: noVReg, imm: int64(csrops.Addr(op)), class: riscv.ClassSync})
		c.emit(vinstr{op: riscv.BNE, rd: noVReg, rs1: status, rs2: physVReg(riscv.X0), label: head, class: riscv.ClassSync})
		return nil
	case fnc.OpCall:
		return fmt.Errorf("codegen: function calls are not supported by the backend (inline the callee)")
	case accfg.OpSetup, accfg.OpLaunch, accfg.OpAwait:
		return fmt.Errorf("codegen: accfg op %s not lowered — run the accfg-to-target lowering first", op.Name())
	}
	return fmt.Errorf("codegen: unsupported op %s", op.Name())
}

var binOpcode = map[string]riscv.Opcode{
	arith.OpAddI:  riscv.ADD,
	arith.OpSubI:  riscv.SUB,
	arith.OpMulI:  riscv.MUL,
	arith.OpDivUI: riscv.DIVU,
	arith.OpRemUI: riscv.REMU,
	arith.OpAndI:  riscv.AND,
	arith.OpOrI:   riscv.OR,
	arith.OpXOrI:  riscv.XOR,
	arith.OpShLI:  riscv.SLL,
	arith.OpShRUI: riscv.SRL,
}

var immOpcode = map[string]riscv.Opcode{
	arith.OpAddI:  riscv.ADDI,
	arith.OpAndI:  riscv.ANDI,
	arith.OpOrI:   riscv.ORI,
	arith.OpXOrI:  riscv.XORI,
	arith.OpShLI:  riscv.SLLI,
	arith.OpShRUI: riscv.SRLI,
}

func (c *compiler) binary(op *ir.Op) error {
	rd := c.fresh()
	c.vals[op.Result(0)] = rd

	// Immediate form when the right operand is a small constant.
	if imm, ok := constOf(op.Operand(1)); ok {
		if iop, has := immOpcode[op.Name()]; has && (fitsImm12(imm) || iop == riscv.SLLI || iop == riscv.SRLI) {
			rs1, err := c.value(op.Operand(0))
			if err != nil {
				return err
			}
			c.emit(vinstr{op: iop, rd: rd, rs1: rs1, rs2: noVReg, imm: imm})
			return nil
		}
	}
	rs1, err := c.value(op.Operand(0))
	if err != nil {
		return err
	}
	rs2, err := c.value(op.Operand(1))
	if err != nil {
		return err
	}
	c.emit(vinstr{op: binOpcode[op.Name()], rd: rd, rs1: rs1, rs2: rs2})
	return nil
}

func (c *compiler) cmp(op *ir.Op) error {
	pred, _ := op.StringAttrValue("predicate")
	rs1, err := c.value(op.Operand(0))
	if err != nil {
		return err
	}
	rs2, err := c.value(op.Operand(1))
	if err != nil {
		return err
	}
	rd := c.fresh()
	c.vals[op.Result(0)] = rd
	zero := physVReg(riscv.X0)
	switch pred {
	case arith.PredSLT:
		c.emit(vinstr{op: riscv.SLT, rd: rd, rs1: rs1, rs2: rs2})
	case arith.PredSGT:
		c.emit(vinstr{op: riscv.SLT, rd: rd, rs1: rs2, rs2: rs1})
	case arith.PredULT:
		c.emit(vinstr{op: riscv.SLTU, rd: rd, rs1: rs1, rs2: rs2})
	case arith.PredSGE:
		c.emit(vinstr{op: riscv.SLT, rd: rd, rs1: rs1, rs2: rs2})
		c.emit(vinstr{op: riscv.XORI, rd: rd, rs1: rd, rs2: noVReg, imm: 1})
	case arith.PredSLE:
		c.emit(vinstr{op: riscv.SLT, rd: rd, rs1: rs2, rs2: rs1})
		c.emit(vinstr{op: riscv.XORI, rd: rd, rs1: rd, rs2: noVReg, imm: 1})
	case arith.PredULE:
		c.emit(vinstr{op: riscv.SLTU, rd: rd, rs1: rs2, rs2: rs1})
		c.emit(vinstr{op: riscv.XORI, rd: rd, rs1: rd, rs2: noVReg, imm: 1})
	case arith.PredEQ:
		c.emit(vinstr{op: riscv.XOR, rd: rd, rs1: rs1, rs2: rs2})
		c.emit(vinstr{op: riscv.SLTIU, rd: rd, rs1: rd, rs2: noVReg, imm: 1})
	case arith.PredNE:
		c.emit(vinstr{op: riscv.XOR, rd: rd, rs1: rs1, rs2: rs2})
		c.emit(vinstr{op: riscv.SLTU, rd: rd, rs1: zero, rs2: rd})
	default:
		return fmt.Errorf("codegen: unsupported cmpi predicate %q", pred)
	}
	return nil
}

func (c *compiler) sel(op *ir.Op) error {
	cond, err := c.value(op.Operand(0))
	if err != nil {
		return err
	}
	a, err := c.value(op.Operand(1))
	if err != nil {
		return err
	}
	bval, err := c.value(op.Operand(2))
	if err != nil {
		return err
	}
	rd := c.fresh()
	c.vals[op.Result(0)] = rd
	skip := c.freshLabel("sel")
	c.emit(vinstr{op: riscv.ADDI, rd: rd, rs1: a, rs2: noVReg, imm: 0})
	c.emit(vinstr{op: riscv.BNE, rd: noVReg, rs1: cond, rs2: physVReg(riscv.X0), label: skip})
	c.emit(vinstr{op: riscv.ADDI, rd: rd, rs1: bval, rs2: noVReg, imm: 0})
	c.bind(skip)
	return nil
}

func (c *compiler) alloc(op *ir.Op) error {
	mt := op.Result(0).Type().(ir.MemRefType)
	size := uint64(ir.IntegerWidth(mt.Elem) / 8)
	if size == 0 {
		size = 1
	}
	for _, d := range mt.Dims() {
		if d == ir.DynamicSize {
			return fmt.Errorf("codegen: dynamic memref.alloc unsupported")
		}
		size *= uint64(d)
	}
	addr := c.layout.StaticBase + c.layout.StaticSize
	c.layout.Allocs[op] = addr
	c.layout.StaticSize += (size + 7) &^ 7
	rd := c.fresh()
	c.vals[op.Result(0)] = rd
	c.emit(vinstr{op: riscv.LI, rd: rd, rs1: noVReg, rs2: noVReg, imm: int64(addr)})
	return nil
}

func (c *compiler) dim(op *ir.Op) error {
	mt := op.Operand(0).Type().(ir.MemRefType)
	idx, _ := op.IntAttrValue("index")
	dims := mt.Dims()
	if int(idx) >= len(dims) || dims[idx] == ir.DynamicSize {
		return fmt.Errorf("codegen: dynamic memref.dim unsupported")
	}
	rd := c.fresh()
	c.vals[op.Result(0)] = rd
	c.emit(vinstr{op: riscv.LI, rd: rd, rs1: noVReg, rs2: noVReg, imm: int64(dims[idx])})
	return nil
}

// address emits the address computation base + linearized(indices) * elem
// and returns the vreg with the final address plus the element width.
func (c *compiler) address(buf *ir.Value, indices []*ir.Value) (int, int, error) {
	mt := buf.Type().(ir.MemRefType)
	dims := mt.Dims()
	if len(indices) != len(dims) {
		return 0, 0, fmt.Errorf("codegen: %d indices for rank-%d memref", len(indices), len(dims))
	}
	width := ir.IntegerWidth(mt.Elem)
	base, err := c.value(buf)
	if err != nil {
		return 0, 0, err
	}
	// linear = ((i0*d1 + i1)*d2 + i2)...
	lin := noVReg
	for k, idxV := range indices {
		iv, err := c.value(idxV)
		if err != nil {
			return 0, 0, err
		}
		if lin == noVReg {
			lin = iv
		} else {
			t := c.fresh()
			dimReg := c.fresh()
			c.emit(vinstr{op: riscv.LI, rd: dimReg, rs1: noVReg, rs2: noVReg, imm: int64(dims[k])})
			c.emit(vinstr{op: riscv.MUL, rd: t, rs1: lin, rs2: dimReg})
			t2 := c.fresh()
			c.emit(vinstr{op: riscv.ADD, rd: t2, rs1: t, rs2: iv})
			lin = t2
		}
	}
	addr := c.fresh()
	if lin == noVReg {
		c.emit(vinstr{op: riscv.ADDI, rd: addr, rs1: base, rs2: noVReg, imm: 0})
		return addr, width, nil
	}
	scaled := lin
	if width > 8 {
		shift := 0
		for w := width / 8; w > 1; w >>= 1 {
			shift++
		}
		scaled = c.fresh()
		c.emit(vinstr{op: riscv.SLLI, rd: scaled, rs1: lin, rs2: noVReg, imm: int64(shift)})
	}
	c.emit(vinstr{op: riscv.ADD, rd: addr, rs1: base, rs2: scaled})
	return addr, width, nil
}

var loadOp = map[int]riscv.Opcode{8: riscv.LB, 16: riscv.LH, 32: riscv.LW, 64: riscv.LD}
var storeOp = map[int]riscv.Opcode{8: riscv.SB, 16: riscv.SH, 32: riscv.SW, 64: riscv.SD}

func (c *compiler) load(op *ir.Op) error {
	addr, width, err := c.address(op.Operand(0), op.Operands()[1:])
	if err != nil {
		return err
	}
	rd := c.fresh()
	c.vals[op.Result(0)] = rd
	c.emit(vinstr{op: loadOp[width], rd: rd, rs1: addr, rs2: noVReg, imm: 0})
	return nil
}

func (c *compiler) store(op *ir.Op) error {
	val, err := c.value(op.Operand(0))
	if err != nil {
		return err
	}
	addr, width, err := c.address(op.Operand(1), op.Operands()[2:])
	if err != nil {
		return err
	}
	c.emit(vinstr{op: storeOp[width], rd: noVReg, rs1: addr, rs2: val, imm: 0})
	return nil
}

func (c *compiler) forLoop(op *ir.Op) error {
	f, _ := scfFor(op)
	lb, err := c.value(f.lb)
	if err != nil {
		return err
	}
	ub, err := c.value(f.ub)
	if err != nil {
		return err
	}
	step, err := c.value(f.step)
	if err != nil {
		return err
	}

	// Induction variable and iteration-arg registers live across the loop.
	iv := c.fresh()
	c.vals[f.body.Arg(0)] = iv
	c.emit(vinstr{op: riscv.ADDI, rd: iv, rs1: lb, rs2: noVReg, imm: 0})
	argRegs := make([]int, f.nIter)
	for i := 0; i < f.nIter; i++ {
		init, err := c.value(op.Operand(3 + i))
		if err != nil {
			return err
		}
		r := c.fresh()
		argRegs[i] = r
		c.vals[f.body.Arg(1+i)] = r
		c.emit(vinstr{op: riscv.ADDI, rd: r, rs1: init, rs2: noVReg, imm: 0})
	}

	head := c.freshLabel("for")
	exit := c.freshLabel("endfor")
	loopStart := len(c.instrs)
	c.bind(head)
	c.emit(vinstr{op: riscv.BGE, rd: noVReg, rs1: iv, rs2: ub, label: exit})

	if err := c.block(f.body); err != nil {
		return err
	}

	// Yield: copy yielded values into the arg registers.
	yield := f.body.Last()
	for i := 0; i < f.nIter; i++ {
		yv, err := c.value(yield.Operand(i))
		if err != nil {
			return err
		}
		if yv != argRegs[i] {
			c.emit(vinstr{op: riscv.ADDI, rd: argRegs[i], rs1: yv, rs2: noVReg, imm: 0})
		}
	}
	c.emit(vinstr{op: riscv.ADD, rd: iv, rs1: iv, rs2: step})
	c.emit(vinstr{op: riscv.JAL, rd: noVReg, rs1: noVReg, rs2: noVReg, label: head})
	c.bind(exit)
	c.loops = append(c.loops, [2]int{loopStart, len(c.instrs)})

	// Loop results read the arg registers after exit.
	for i := 0; i < f.nIter; i++ {
		c.vals[op.Result(i)] = argRegs[i]
	}
	return nil
}

// scfForView is a minimal local view to avoid importing the scf package
// (which would be a dependency cycle if scf ever used codegen in tests).
type scfForView struct {
	lb, ub, step *ir.Value
	body         *ir.Block
	nIter        int
}

func scfFor(op *ir.Op) (scfForView, bool) {
	if op.Name() != "scf.for" {
		return scfForView{}, false
	}
	return scfForView{
		lb:    op.Operand(0),
		ub:    op.Operand(1),
		step:  op.Operand(2),
		body:  op.Region(0).Block(),
		nIter: op.NumOperands() - 3,
	}, true
}

func (c *compiler) ifOp(op *ir.Op) error {
	cond, err := c.value(op.Operand(0))
	if err != nil {
		return err
	}
	elseL := c.freshLabel("else")
	endL := c.freshLabel("endif")

	resRegs := make([]int, op.NumResults())
	for i := range resRegs {
		resRegs[i] = c.fresh()
		c.vals[op.Result(i)] = resRegs[i]
	}

	c.emit(vinstr{op: riscv.BEQ, rd: noVReg, rs1: cond, rs2: physVReg(riscv.X0), label: elseL})
	thenBlk := op.Region(0).Block()
	if err := c.block(thenBlk); err != nil {
		return err
	}
	if err := c.copyYields(thenBlk.Last(), resRegs); err != nil {
		return err
	}
	c.emit(vinstr{op: riscv.JAL, rd: noVReg, rs1: noVReg, rs2: noVReg, label: endL})
	c.bind(elseL)
	elseBlk := op.Region(1).Block()
	if err := c.block(elseBlk); err != nil {
		return err
	}
	if err := c.copyYields(elseBlk.Last(), resRegs); err != nil {
		return err
	}
	c.bind(endL)
	return nil
}

func (c *compiler) copyYields(yield *ir.Op, resRegs []int) error {
	if yield == nil || yield.Name() != "scf.yield" {
		return fmt.Errorf("codegen: scf.if region missing yield")
	}
	for i, r := range resRegs {
		yv, err := c.value(yield.Operand(i))
		if err != nil {
			return err
		}
		c.emit(vinstr{op: riscv.ADDI, rd: r, rs1: yv, rs2: noVReg, imm: 0})
	}
	return nil
}

// eliminateDeadDefs removes side-effect-free instructions whose destination
// is never read (e.g. LI constants that only fed immediate forms). Labels
// and instruction order are preserved by replacing with NOP-removal
// compaction.
func (c *compiler) eliminateDeadDefs() {
	for {
		used := map[int]bool{}
		for _, ins := range c.instrs {
			if ins.rs1 > noVReg {
				used[ins.rs1] = true
			}
			if ins.rs2 > noVReg {
				used[ins.rs2] = true
			}
		}
		// Registers written multiple times (loop carries) must stay.
		defCount := map[int]int{}
		for _, ins := range c.instrs {
			if ins.rd > noVReg {
				defCount[ins.rd]++
			}
		}
		removable := func(ins vinstr) bool {
			if ins.rd <= noVReg || used[ins.rd] || defCount[ins.rd] > 1 {
				return false
			}
			switch ins.op {
			case riscv.LI, riscv.ADD, riscv.SUB, riscv.MUL, riscv.AND, riscv.OR, riscv.XOR,
				riscv.SLL, riscv.SRL, riscv.SLT, riscv.SLTU, riscv.ADDI, riscv.ANDI,
				riscv.ORI, riscv.XORI, riscv.SLLI, riscv.SRLI, riscv.SLTIU:
				return true
			}
			return false
		}
		changed := false
		var out []vinstr
		remap := map[int][]string{}
		for idx, ins := range c.instrs {
			if labels := c.labels[idx]; len(labels) > 0 {
				remap[len(out)] = append(remap[len(out)], labels...)
			}
			if removable(ins) {
				changed = true
				continue
			}
			out = append(out, ins)
		}
		if labels := c.labels[len(c.instrs)]; len(labels) > 0 {
			remap[len(out)] = append(remap[len(out)], labels...)
		}
		if !changed {
			return
		}
		// Remap loop ranges conservatively: recompute from scratch is not
		// possible, so shift ranges by counting removals before each bound.
		removedBefore := make([]int, len(c.instrs)+1)
		removed := 0
		oi := 0
		for idx, ins := range c.instrs {
			removedBefore[idx] = removed
			if removable(ins) {
				removed++
			} else {
				oi++
			}
		}
		removedBefore[len(c.instrs)] = removed
		for i := range c.loops {
			c.loops[i][0] -= removedBefore[c.loops[i][0]]
			c.loops[i][1] -= removedBefore[c.loops[i][1]]
		}
		c.instrs = out
		c.labels = remap
	}
}
