package codegen

import (
	"fmt"
	"sort"

	"configwall/internal/riscv"
)

// allocatable is the physical register pool handed to the linear-scan
// allocator. x0 (zero), sp (spill base), t0/t1 (x5/x6, spill scratch) and
// the argument registers a0..a7 (live-in values, live-out results) are
// excluded.
var allocatable = []riscv.Reg{
	1,    // ra — no calls in generated code
	3, 4, // gp, tp — no globals/threads in generated code
	7, 8, 9, // t2, s0, s1
	18, 19, 20, 21, // s2..s5
	22, 23, 24, 25, // s6..s9
	26, 27, // s10, s11
	28, 29, 30, 31, // t3..t6
}

// interval is a live range of one virtual register.
type interval struct {
	vr         int
	start, end int
	reg        riscv.Reg
	spilled    bool
	slot       int
}

// allocate performs linear-scan register allocation over the compiler's
// instruction list and materializes the final program with spill code.
func allocate(c *compiler) (*riscv.Program, int, error) {
	intervals := computeIntervals(c)

	order := make([]*interval, 0, len(intervals))
	for _, iv := range intervals {
		order = append(order, iv)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].start != order[j].start {
			return order[i].start < order[j].start
		}
		return order[i].vr < order[j].vr
	})

	free := append([]riscv.Reg{}, allocatable...)
	var active []*interval
	nextSlot := 0

	expire := func(pos int) {
		keep := active[:0]
		for _, a := range active {
			if a.end < pos {
				free = append(free, a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
	}

	for _, cur := range order {
		expire(cur.start)
		if len(free) > 0 {
			cur.reg = free[len(free)-1]
			free = free[:len(free)-1]
			active = append(active, cur)
			continue
		}
		// Spill the active interval with the furthest end, or cur itself.
		victim := cur
		for _, a := range active {
			if a.end > victim.end {
				victim = a
			}
		}
		if victim != cur {
			cur.reg = victim.reg
			victim.spilled = true
			victim.slot = nextSlot
			nextSlot++
			for i, a := range active {
				if a == victim {
					active[i] = cur
					break
				}
			}
		} else {
			cur.spilled = true
			cur.slot = nextSlot
			nextSlot++
		}
	}

	return rewrite(c, intervals, nextSlot)
}

// computeIntervals builds live intervals, extending ranges across loop
// bodies for values live into a loop (their uses re-execute on the back
// edge).
func computeIntervals(c *compiler) map[int]*interval {
	intervals := map[int]*interval{}
	touch := func(vr, pos int) {
		if vr <= noVReg {
			return
		}
		iv, ok := intervals[vr]
		if !ok {
			intervals[vr] = &interval{vr: vr, start: pos, end: pos}
			return
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
	}
	for pos, ins := range c.instrs {
		touch(ins.rd, pos)
		touch(ins.rs1, pos)
		touch(ins.rs2, pos)
	}
	// Loop extension to a fixpoint (handles nesting in any order).
	for changed := true; changed; {
		changed = false
		for _, loop := range c.loops {
			s, e := loop[0], loop[1]
			for _, iv := range intervals {
				if iv.start < s && iv.end >= s && iv.end < e {
					iv.end = e
					changed = true
				}
			}
		}
	}
	return intervals
}

// rewrite materializes physical instructions, inserting spill loads/stores
// around spilled operands using the reserved scratch registers t0/t1.
func rewrite(c *compiler, intervals map[int]*interval, slots int) (*riscv.Program, int, error) {
	asm := riscv.NewAssembler()

	regOf := func(vr int) (riscv.Reg, *interval, error) {
		if r, ok := physOf(vr); ok {
			return r, nil, nil
		}
		iv, ok := intervals[vr]
		if !ok {
			return 0, nil, fmt.Errorf("codegen: vreg %d has no interval", vr)
		}
		if iv.spilled {
			return 0, iv, nil
		}
		return iv.reg, nil, nil
	}

	for pos, ins := range c.instrs {
		for _, l := range c.labels[pos] {
			asm.Label(l)
		}
		out := riscv.Instr{
			Op: ins.op, Imm: ins.imm, Funct7: ins.funct7,
			Label: ins.label, Class: ins.class,
		}
		// Sources first: spilled sources load into t0/t1.
		if ins.rs1 > noVReg || ins.rs1 <= -2 {
			r, sp, err := regOf(ins.rs1)
			if err != nil {
				return nil, 0, err
			}
			if sp != nil {
				asm.Emit(riscv.Instr{Op: riscv.LD, Rd: riscv.T0, Rs1: riscv.SP, Imm: int64(8 * sp.slot)})
				r = riscv.T0
			}
			out.Rs1 = r
		}
		if ins.rs2 > noVReg || ins.rs2 <= -2 {
			r, sp, err := regOf(ins.rs2)
			if err != nil {
				return nil, 0, err
			}
			if sp != nil {
				asm.Emit(riscv.Instr{Op: riscv.LD, Rd: riscv.T1, Rs1: riscv.SP, Imm: int64(8 * sp.slot)})
				r = riscv.T1
			}
			out.Rs2 = r
		}
		var defSpill *interval
		if ins.rd > noVReg || ins.rd <= -2 {
			r, sp, err := regOf(ins.rd)
			if err != nil {
				return nil, 0, err
			}
			if sp != nil {
				r = riscv.T0 // operands already consumed; t0 is free again
				defSpill = sp
			}
			out.Rd = r
		}
		asm.Emit(out)
		if defSpill != nil {
			asm.Emit(riscv.Instr{Op: riscv.SD, Rs1: riscv.SP, Rs2: riscv.T0, Imm: int64(8 * defSpill.slot)})
		}
	}
	// Trailing labels (e.g. loop exits at the very end).
	for _, l := range c.labels[len(c.instrs)] {
		asm.Label(l)
	}
	// Safety net: a program must halt.
	asm.Emit(riscv.Instr{Op: riscv.HALT})

	prog, err := asm.Finish()
	if err != nil {
		return nil, 0, err
	}
	return prog, slots, nil
}
