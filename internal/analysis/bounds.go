package analysis

import (
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// Bounds are static lower bounds on the configuration traffic a program
// must generate when executed: at least MinLaunches accelerator jobs and at
// least MinConfigInstrs writes on the configuration interface (setup
// traffic plus the one interface write each launch command itself is).
// They are sound against the simulator's counters — any execution satisfies
// counters >= bounds — because unknown-trip loops and branches contribute
// the minimum over their outcomes (zero, or the cheaper arm).
type Bounds struct {
	MinLaunches     int
	MinConfigInstrs int
}

func (b Bounds) add(o Bounds) Bounds {
	return Bounds{b.MinLaunches + o.MinLaunches, b.MinConfigInstrs + o.MinConfigInstrs}
}

func (b Bounds) scale(n int) Bounds {
	return Bounds{b.MinLaunches * n, b.MinConfigInstrs * n}
}

func (b Bounds) min(o Bounds) Bounds {
	out := b
	if o.MinLaunches < out.MinLaunches {
		out.MinLaunches = o.MinLaunches
	}
	if o.MinConfigInstrs < out.MinConfigInstrs {
		out.MinConfigInstrs = o.MinConfigInstrs
	}
	return out
}

// StaticBounds computes the module's configuration-traffic lower bounds:
// the sum over its functions (difftest programs have a single entry
// function, so the sum is the entry's bound).
func StaticBounds(m *ir.Module) Bounds {
	var b Bounds
	for _, f := range m.Funcs() {
		b = b.add(boundsBlock(f.Region(0).Block()))
	}
	return b
}

func boundsBlock(blk *ir.Block) Bounds {
	var b Bounds
	for op := blk.First(); op != nil; op = op.Next() {
		switch op.Name() {
		case accfg.OpSetup:
			s, _ := accfg.AsSetup(op)
			b.MinConfigInstrs += configInstrsFor(s.Accelerator(), s.FieldNames())
		case accfg.OpLaunch:
			b.MinLaunches++
			b.MinConfigInstrs++ // the launch command is itself one interface write
		case scf.OpFor:
			if trips := minTripCount(op); trips > 0 {
				b = b.add(boundsBlock(op.Region(0).Block()).scale(trips))
			}
		case scf.OpIf:
			b = b.add(boundsBlock(op.Region(0).Block()).min(boundsBlock(op.Region(1).Block())))
		}
	}
	return b
}

// minTripCount returns a lower bound on a loop's trip count: the exact
// count when bounds and step are constants, zero otherwise.
func minTripCount(op *ir.Op) int {
	lb, lbOK := arith.ConstantValue(op.Operand(0))
	ub, ubOK := arith.ConstantValue(op.Operand(1))
	step, stepOK := arith.ConstantValue(op.Operand(2))
	if !lbOK || !ubOK || !stepOK || step <= 0 || ub <= lb {
		return 0
	}
	return int((ub - lb + step - 1) / step)
}
