package analysis

// Golden tests for the `cwopt -analyze` report: the rendered flow summary
// of the pass-pipeline testdata modules must stay byte-stable, pinning both
// the abstract domain's canonical value rendering and the bounds analysis.
// Regenerate with:
//
//	go run ./cmd/cwopt -analyze internal/passes/testdata/<name>.ir \
//	    > internal/analysis/testdata/<name>.analyze.golden

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAnalyzeReportGolden(t *testing.T) {
	for _, name := range []string{"hoist", "overlap", "sink"} {
		t.Run(name, func(t *testing.T) {
			m := parsePassTestdata(t, name+".ir")
			got := ReportString(m)
			wantBytes, err := os.ReadFile(filepath.Join("testdata", name+".analyze.golden"))
			if err != nil {
				t.Fatal(err)
			}
			if got != string(wantBytes) {
				t.Errorf("report drift for %s.ir:\n--- got ---\n%s--- want ---\n%s", name, got, wantBytes)
			}
		})
	}
}

// TestAnalyzeReportDeterministic guards the map-heavy summary against
// iteration-order leaks: two fresh runs must render identically.
func TestAnalyzeReportDeterministic(t *testing.T) {
	m := parsePassTestdata(t, "sink.ir")
	first := ReportString(m)
	for i := 0; i < 8; i++ {
		if got := ReportString(m.Clone()); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}
