package analysis

import (
	"fmt"
	"sort"
	"strings"

	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
)

// Finding is one provable base/optimized divergence: a matched pair of
// program paths whose observable event traces differ in a way no runtime
// input can reconcile.
type Finding struct {
	Func   string
	Path   string // branch-decision signature ("" = the only path)
	Detail string
}

func (f Finding) String() string {
	if f.Path == "" {
		return fmt.Sprintf("%s: %s", f.Func, f.Detail)
	}
	return fmt.Sprintf("%s [%s]: %s", f.Func, f.Path, f.Detail)
}

// Verdict is the outcome of a static module comparison. Rejected verdicts
// are proofs of divergence; everything else is an accept, with Inconclusive
// recording where precision was lost (an empty Inconclusive means the
// equivalence was fully proved).
type Verdict struct {
	Findings     []Finding
	Inconclusive []string
	PathsBase    int
	PathsOpt     int
}

// Rejected reports whether the comparison proved a divergence.
func (v Verdict) Rejected() bool { return len(v.Findings) > 0 }

// Proved reports whether equivalence was established with no precision
// loss: every path matched and every compared value was decided.
func (v Verdict) Proved() bool { return !v.Rejected() && len(v.Inconclusive) == 0 }

func (v Verdict) String() string {
	switch {
	case v.Rejected():
		parts := make([]string, 0, len(v.Findings))
		for _, f := range v.Findings {
			parts = append(parts, f.String())
		}
		return "reject: " + strings.Join(parts, "; ")
	case len(v.Inconclusive) > 0:
		return "accept (inconclusive: " + strings.Join(dedupStrings(v.Inconclusive), "; ") + ")"
	}
	return "accept (proved)"
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// CompareModules statically checks that opt preserves base's observable
// config-state behavior: for every function and every matched pair of
// abstract execution paths, the launch events (with the staging
// configuration each commits) and host memory events must be provably
// equal. See CompareSummaries for the matching and proof rules.
func CompareModules(base, opt *ir.Module) Verdict {
	return CompareSummaries(Explore(base), Explore(opt))
}

// CompareSummaries compares two explored summaries. Proof rules:
//
//   - paths pair up by branch-decision signature (conditions are canonical
//     symbolic expressions, so the same runtime decision carries the same
//     key in both modules); signature sets that do not line up make the
//     comparison inconclusive, never a reject;
//   - a matched pair must have the same event sequence (kinds, order,
//     count) — launches additionally match on accelerator and field-wise
//     staging content, stores on address and value, loads on address;
//   - a value mismatch rejects only when provable (two distinct constants,
//     with unwritten fields reading as the hardware reset value); symbolic
//     or unknown mismatches are recorded as inconclusive.
func CompareSummaries(base, opt *Summary) Verdict {
	var v Verdict
	for _, name := range base.order {
		bf := base.funcs[name]
		of, ok := opt.funcs[name]
		if !ok {
			v.Inconclusive = append(v.Inconclusive, fmt.Sprintf("%s: function missing from optimized module", name))
			continue
		}
		compareFunc(&v, bf, of)
	}
	return v
}

func compareFunc(v *Verdict, base, opt *funcPaths) {
	v.PathsBase += len(base.paths)
	v.PathsOpt += len(opt.paths)
	if len(base.inconclusive) > 0 || len(opt.inconclusive) > 0 {
		for _, r := range append(append([]string{}, base.inconclusive...), opt.inconclusive...) {
			v.Inconclusive = append(v.Inconclusive, base.name+": "+r)
		}
		return
	}
	bySig := func(paths []*path) (map[string]*path, []string) {
		m := map[string]*path{}
		var sigs []string
		for _, p := range paths {
			sig := p.signature()
			m[sig] = p
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		return m, sigs
	}
	bm, bsigs := bySig(base.paths)
	om, osigs := bySig(opt.paths)
	if strings.Join(bsigs, "|") != strings.Join(osigs, "|") {
		v.Inconclusive = append(v.Inconclusive,
			fmt.Sprintf("%s: path structure differs (base %d paths, optimized %d)", base.name, len(bsigs), len(osigs)))
		return
	}
	for _, sig := range bsigs {
		comparePath(v, base.name, sig, bm[sig], om[sig])
	}
}

func comparePath(v *Verdict, fn, sig string, base, opt *path) {
	reject := func(format string, args ...any) {
		v.Findings = append(v.Findings, Finding{Func: fn, Path: sig, Detail: fmt.Sprintf(format, args...)})
	}
	imprecise := func(format string, args ...any) {
		v.Inconclusive = append(v.Inconclusive, fmt.Sprintf("%s: %s", fn, fmt.Sprintf(format, args...)))
	}
	if len(base.events) != len(opt.events) {
		reject("event trace length differs: base %d events, optimized %d", len(base.events), len(opt.events))
		return
	}
	for i := range base.events {
		be, oe := base.events[i], opt.events[i]
		if be.kind != oe.kind {
			reject("event %d reordered: base %s, optimized %s", i, be, oe)
			return
		}
		switch be.kind {
		case evLaunch:
			if be.accel != oe.accel {
				reject("launch %d targets different accelerator: base %s, optimized %s", i, be.accel, oe.accel)
				return
			}
			names := map[string]bool{}
			for _, n := range be.fields.names() {
				names[n] = true
			}
			for _, n := range oe.fields.names() {
				names[n] = true
			}
			sorted := make([]string, 0, len(names))
			for n := range names {
				sorted = append(sorted, n)
			}
			sort.Strings(sorted)
			for _, n := range sorted {
				bv, ov := be.fields.get(n), oe.fields.get(n)
				if bv.ProvablyDifferent(ov) {
					reject("launch %d (%s) observes field %s = %s, base program configured %s", i, be.accel, n, ov, bv)
					return
				}
				if !bv.ProvablyEqual(ov) {
					imprecise("launch %d (%s) field %s undecided: base %s, optimized %s", i, be.accel, n, bv, ov)
				}
			}
		case evStore:
			if be.addr.ProvablyDifferent(oe.addr) || be.val.ProvablyDifferent(oe.val) {
				reject("store %d differs: base %s, optimized %s", i, be, oe)
				return
			}
			if !be.addr.ProvablyEqual(oe.addr) || !be.val.ProvablyEqual(oe.val) {
				imprecise("store %d undecided: base %s, optimized %s", i, be, oe)
			}
		case evLoad:
			if be.addr.ProvablyDifferent(oe.addr) {
				reject("load %d differs: base %s, optimized %s", i, be, oe)
				return
			}
			if !be.addr.ProvablyEqual(oe.addr) {
				imprecise("load %d undecided: base %s, optimized %s", i, be, oe)
			}
		}
	}
}

// RejectError is the error PassCheck returns on a proved divergence, so
// callers (the pass manager's CheckEach hook, difftest) can distinguish a
// static soundness rejection from an ordinary pipeline failure.
type RejectError struct{ Verdict Verdict }

func (e *RejectError) Error() string { return e.Verdict.String() }

// PassCheck is the ir.PassManager CheckEach hook: it statically verifies
// that one pass preserved observable config-state behavior. Lowering
// passes legitimately translate accfg ops away and are skipped, as is
// anything downstream of them (no launches left to compare).
func PassCheck(pass string, before, after *ir.Module) error {
	if strings.HasPrefix(pass, "lower-") {
		return nil
	}
	if ir.CountOpsNamed(after, accfg.OpLaunch) == 0 && ir.CountOpsNamed(before, accfg.OpLaunch) == 0 {
		return nil
	}
	if v := CompareModules(before, after); v.Rejected() {
		return &RejectError{Verdict: v}
	}
	return nil
}
