// Package analysis provides static dataflow analyses over the accfg/scf IR
// (paper §5): a reusable forward solver over structured regions, an abstract
// per-accelerator configuration-state domain, and three concrete analyses —
//
//   - reaching-configuration analysis: the abstract configuration each
//     accfg.launch observes, both as a flow summary (Summarize, behind
//     cwopt -analyze) and as a precise base-vs-optimized comparison
//     (CompareModules, the static soundness oracle behind cwopt -check,
//     the pass-manager CheckEach hook and the difftest pre-oracle);
//   - staging/memref interference analysis (interference.go): the shared
//     conservative checks the overlap pass's pipelining guards are built on;
//   - static bounds analysis (bounds.go): per-program lower bounds on
//     launch count and configuration-write traffic, checked against
//     simulator counters as a standing metamorphic invariant.
//
// The checker is deliberately one-sided: a reject is a proof of divergence
// (two matched program paths whose observable accelerator/memory event
// traces provably differ), while anything it cannot prove — symbolic value
// mismatches, unmatched branch structure, unbounded loops — degrades to an
// inconclusive accept. Soundness argument and lattice definitions live in
// DESIGN.md §9.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// AbsVal is the abstract value lattice element used for configuration
// fields, addresses and stored data:
//
//	       ⊤  (unknown: any runtime value)
//	  /    |    \
//	Const  Sym  ...    (incomparable middle layer)
//	  \    |    /
//	       ⊥  (unwritten / unreachable)
//
// Const is a compile-time-known integer. Sym is a canonical symbolic
// expression over function arguments, buffer base pointers, loads and
// arithmetic — two values with the same Sym key are provably equal, two
// with different keys are simply unordered (never provably different).
type AbsVal struct {
	kind absKind
	c    int64
	sym  string
}

type absKind uint8

const (
	absBottom absKind = iota
	absConst
	absSym
	absTop
)

// Bottom is the unwritten/unreachable element.
func Bottom() AbsVal { return AbsVal{kind: absBottom} }

// Const lifts a compile-time integer.
func Const(c int64) AbsVal { return AbsVal{kind: absConst, c: c} }

// Sym lifts a canonical symbolic expression key.
func Sym(key string) AbsVal { return AbsVal{kind: absSym, sym: key} }

// Top is the unknown element.
func Top() AbsVal { return AbsVal{kind: absTop} }

// IsBottom reports whether v is ⊥.
func (v AbsVal) IsBottom() bool { return v.kind == absBottom }

// IsTop reports whether v is ⊤.
func (v AbsVal) IsTop() bool { return v.kind == absTop }

// ConstValue returns the constant and whether v is a known constant.
func (v AbsVal) ConstValue() (int64, bool) { return v.c, v.kind == absConst }

// SymKey returns the canonical expression key and whether v is symbolic.
func (v AbsVal) SymKey() (string, bool) { return v.sym, v.kind == absSym }

// Equal reports lattice-element identity (the partial order's reflexivity,
// not semantic equality of the runtime values).
func (v AbsVal) Equal(o AbsVal) bool { return v == o }

// ProvablyEqual reports whether the two abstract values denote the same
// runtime value on every execution: equal constants, or identical symbolic
// keys.
func (v AbsVal) ProvablyEqual(o AbsVal) bool {
	switch {
	case v.kind == absConst && o.kind == absConst:
		return v.c == o.c
	case v.kind == absSym && o.kind == absSym:
		return v.sym == o.sym
	case v.kind == absBottom && o.kind == absBottom:
		return true
	}
	return false
}

// ProvablyDifferent reports whether the two abstract values provably denote
// different runtime values — only two distinct constants qualify; symbolic
// keys that differ may still be semantically equal, so they never prove a
// difference. This asymmetry is what makes the checker false-positive-free.
func (v AbsVal) ProvablyDifferent(o AbsVal) bool {
	return v.kind == absConst && o.kind == absConst && v.c != o.c
}

// Join is the least upper bound: ⊥ is the identity, equal elements are
// idempotent, and everything else goes to ⊤.
func (v AbsVal) Join(o AbsVal) AbsVal {
	switch {
	case v.kind == absBottom:
		return o
	case o.kind == absBottom:
		return v
	case v == o:
		return v
	}
	return Top()
}

func (v AbsVal) String() string {
	switch v.kind {
	case absBottom:
		return "⊥"
	case absConst:
		return fmt.Sprintf("%d", v.c)
	case absSym:
		return v.sym
	}
	return "⊤"
}

// FieldState is the abstract content of one accelerator's staging
// registers: field name to abstract value. Fields absent from the map are
// unwritten, which the comparison layer reads as the hardware reset value
// (zero) — the devices' staging registers are defined to reset to zero.
type FieldState map[string]AbsVal

// clone copies the field map.
func (fs FieldState) clone() FieldState {
	out := make(FieldState, len(fs))
	for k, v := range fs {
		out[k] = v
	}
	return out
}

// join merges two staging states field-wise; a field present on only one
// side joins against the implicit reset value (Const 0).
func (fs FieldState) join(o FieldState) FieldState {
	out := make(FieldState, len(fs)+len(o))
	for k, v := range fs {
		if ov, ok := o[k]; ok {
			out[k] = v.Join(ov)
		} else {
			out[k] = v.Join(Const(0))
		}
	}
	for k, v := range o {
		if _, ok := fs[k]; !ok {
			out[k] = v.Join(Const(0))
		}
	}
	return out
}

// get reads a field, mapping unwritten to the hardware reset value.
func (fs FieldState) get(name string) AbsVal {
	if v, ok := fs[name]; ok {
		return v
	}
	return Const(0)
}

// names returns the written field names, sorted.
func (fs FieldState) names() []string {
	out := make([]string, 0, len(fs))
	for k := range fs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the state deterministically, "a=1 b=ptr(arg0) c=⊤".
func (fs FieldState) String() string {
	parts := make([]string, 0, len(fs))
	for _, n := range fs.names() {
		parts = append(parts, fmt.Sprintf("%s=%s", n, fs[n]))
	}
	return strings.Join(parts, " ")
}
