package analysis

import (
	"fmt"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// The flow summary is the fixpoint counterpart of the path enumerator in
// exec.go: instead of one trace per feasible path it computes, via the
// generic Forward solver, a single join-over-all-paths abstract state and
// records the staging configuration each launch site can observe. It never
// gives up (loops with unknown bounds just join to ⊤), which makes it the
// right engine for the human-facing `cwopt -analyze` report.

// LaunchInfo is one static launch site with the join of every abstract
// staging configuration it can commit.
type LaunchInfo struct {
	Accel  string
	Fields FieldState
}

// FuncSummary is the flow summary of one function: its launch sites in
// program (pre-order) position and the static lower bounds on its
// configuration traffic.
type FuncSummary struct {
	Name     string
	Launches []LaunchInfo
	Bounds   Bounds
}

// ModuleSummary aggregates per-function flow summaries in module order.
type ModuleSummary struct {
	Funcs []FuncSummary
}

// Summarize runs the reaching-configuration flow analysis over every
// function of m.
func Summarize(m *ir.Module) *ModuleSummary {
	out := &ModuleSummary{}
	for _, f := range m.Funcs() {
		name, _ := f.StringAttrValue("sym_name")
		p := newFlowProblem()
		st := newFlowState()
		body := f.Region(0).Block()
		for i, arg := range body.Args() {
			st.env[arg] = Sym(fmt.Sprintf("arg%d", i))
		}
		Forward[*flowState](p, body, st)
		fs := FuncSummary{Name: name, Bounds: boundsBlock(body)}
		ir.Walk(f, func(o *ir.Op) {
			if rec, ok := p.launches[o]; ok {
				fs.Launches = append(fs.Launches, LaunchInfo{Accel: p.launchAccel[o], Fields: rec})
			}
		})
		out.Funcs = append(out.Funcs, fs)
	}
	return out
}

// flowState is the lattice element of the flow summary: abstract SSA
// environment plus per-accelerator abstract staging registers.
type flowState struct {
	env     map[*ir.Value]AbsVal
	staging map[string]FieldState
}

func newFlowState() *flowState {
	return &flowState{env: map[*ir.Value]AbsVal{}, staging: map[string]FieldState{}}
}

func (s *flowState) resolve(v *ir.Value) AbsVal {
	if av, ok := s.env[v]; ok {
		return av
	}
	return Top()
}

// flowProblem is the ForwardProblem of the flow summary. Site-stable
// symbols (per-op ids for allocs, loads, loop induction variables) keep the
// abstract state identical across solver iterations, so loop fixpoints are
// detected instead of timing out.
type flowProblem struct {
	launches    map[*ir.Op]FieldState
	launchAccel map[*ir.Op]string
	siteIDs     map[*ir.Op]int
}

func newFlowProblem() *flowProblem {
	return &flowProblem{
		launches:    map[*ir.Op]FieldState{},
		launchAccel: map[*ir.Op]string{},
		siteIDs:     map[*ir.Op]int{},
	}
}

func (p *flowProblem) site(op *ir.Op) int {
	if id, ok := p.siteIDs[op]; ok {
		return id
	}
	id := len(p.siteIDs)
	p.siteIDs[op] = id
	return id
}

func (p *flowProblem) Clone(s *flowState) *flowState {
	out := newFlowState()
	for v, av := range s.env {
		out.env[v] = av
	}
	for accel, st := range s.staging {
		out.staging[accel] = st.clone()
	}
	return out
}

func (p *flowProblem) Join(a, b *flowState) *flowState {
	out := p.Clone(a)
	for v, bv := range b.env {
		if av, ok := out.env[v]; ok {
			out.env[v] = av.Join(bv)
		} else {
			out.env[v] = bv
		}
	}
	for accel, bst := range b.staging {
		if ast, ok := out.staging[accel]; ok {
			// FieldState joins treat absent fields as the reset value, which
			// is exactly the staging content of a path that never wrote them.
			out.staging[accel] = ast.join(bst)
		} else {
			out.staging[accel] = FieldState{}.join(bst)
		}
	}
	for accel, ast := range a.staging {
		if _, ok := b.staging[accel]; !ok {
			out.staging[accel] = ast.join(FieldState{})
		}
	}
	return out
}

func (p *flowProblem) Equal(a, b *flowState) bool {
	if len(a.env) != len(b.env) || len(a.staging) != len(b.staging) {
		return false
	}
	for v, av := range a.env {
		bv, ok := b.env[v]
		if !ok || !av.Equal(bv) {
			return false
		}
	}
	for accel, ast := range a.staging {
		bst, ok := b.staging[accel]
		if !ok || len(ast) != len(bst) {
			return false
		}
		for f, av := range ast {
			bv, ok := bst[f]
			if !ok || !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

func (p *flowProblem) Transfer(op *ir.Op, s *flowState) *flowState {
	switch op.Name() {
	case arith.OpConstant:
		c, _ := op.IntAttrValue("value")
		s.env[op.Result(0)] = Const(c)

	case arith.OpAddI, arith.OpSubI, arith.OpMulI, arith.OpDivUI, arith.OpRemUI,
		arith.OpAndI, arith.OpOrI, arith.OpXOrI, arith.OpShLI, arith.OpShRUI:
		s.env[op.Result(0)] = evalBinary(op.Name(), s.resolve(op.Operand(0)), s.resolve(op.Operand(1)), op.Result(0).Type())

	case arith.OpCmpI:
		pred, _ := op.StringAttrValue("predicate")
		s.env[op.Result(0)] = evalCmp(pred, s.resolve(op.Operand(0)), s.resolve(op.Operand(1)))

	case arith.OpSelect:
		s.env[op.Result(0)] = evalSelect(s.resolve(op.Operand(0)), s.resolve(op.Operand(1)), s.resolve(op.Operand(2)))

	case arith.OpIndexCast:
		s.env[op.Result(0)] = s.resolve(op.Operand(0))

	case memref.OpExtractPointer:
		s.env[op.Result(0)] = wrap1("ptr", s.resolve(op.Operand(0)))

	case memref.OpAlloc:
		s.env[op.Result(0)] = Sym(fmt.Sprintf("alloc@%d", p.site(op)))

	case memref.OpDim:
		s.env[op.Result(0)] = wrap1("dim", s.resolve(op.Operand(0)))

	case memref.OpLoad:
		// Site-stable symbol: "the value loaded here". Imprecise across
		// iterations, but the summary only joins staging into launch records.
		s.env[op.Result(0)] = Sym(fmt.Sprintf("load@%d", p.site(op)))

	case memref.OpStore:
		// No tracked effect.

	case accfg.OpSetup:
		applySetup(op, s.staging, s.resolve)

	case accfg.OpLaunch:
		l, _ := accfg.AsLaunch(op)
		st, ok := s.staging[l.Accelerator()]
		if !ok {
			st = FieldState{}
		}
		if prev, seen := p.launches[op]; seen {
			p.launches[op] = prev.join(st)
		} else {
			p.launches[op] = st.clone()
		}
		p.launchAccel[op] = l.Accelerator()

	case accfg.OpAwait, scf.OpYield, fnc.OpReturn:
		// Synchronization / terminators: nothing to track.

	default:
		if op.NumRegions() > 0 || accfg.EffectsOf(op) == ir.EffectsAll {
			// Unmodeled op: degrade everything it may have clobbered.
			havocStagingSubtree(op, s.staging)
			for accel, st := range s.staging {
				for f := range st {
					s.staging[accel][f] = Top()
				}
			}
		}
		for _, r := range op.Results() {
			s.env[r] = Top()
		}
	}
	return s
}

func (p *flowProblem) EnterLoop(loop *ir.Op, s *flowState) *flowState {
	body := loop.Region(0).Block()
	s.env[body.Arg(0)] = Sym(fmt.Sprintf("iv@%d", p.site(loop)))
	yield := body.Last()
	for i := 0; i < loop.NumOperands()-3; i++ {
		v := s.resolve(loop.Operand(3 + i))
		if yv, ok := s.env[yield.Operand(i)]; ok {
			v = v.Join(yv)
		}
		s.env[body.Arg(1+i)] = v
	}
	return s
}

func (p *flowProblem) ExitLoop(loop *ir.Op, s *flowState) *flowState {
	yield := loop.Region(0).Block().Last()
	for i, r := range loop.Results() {
		// Join with the init value: the loop may run zero times.
		s.env[r] = s.resolve(loop.Operand(3 + i)).Join(s.resolve(yield.Operand(i)))
	}
	return s
}

func (p *flowProblem) ExitIf(ifOp *ir.Op, thenState, elseState *flowState) *flowState {
	out := p.Join(thenState, elseState)
	thenYield := ifOp.Region(0).Block().Last()
	elseYield := ifOp.Region(1).Block().Last()
	for i, r := range ifOp.Results() {
		out.env[r] = thenState.resolve(thenYield.Operand(i)).Join(elseState.resolve(elseYield.Operand(i)))
	}
	return out
}

// applySetup writes a setup's fields into the abstract staging registers,
// with the same group-atomic mate degradation as the path interpreter: a
// previously-written packed mate the setup does not carry becomes ⊤, a
// never-written mate stays at the reset value the lowering packs for it.
func applySetup(op *ir.Op, staging map[string]FieldState, resolve func(*ir.Value) AbsVal) {
	s, _ := accfg.AsSetup(op)
	accel := s.Accelerator()
	st, ok := staging[accel]
	if !ok {
		st = FieldState{}
		staging[accel] = st
	}
	written := map[string]bool{}
	for _, f := range s.Fields() {
		st[f.Name] = resolve(f.Value)
		written[f.Name] = true
	}
	mates := groupMates(accel)
	for name := range written {
		for _, mate := range mates[name] {
			if written[mate] {
				continue
			}
			if _, prev := st[mate]; prev {
				st[mate] = Top()
			}
		}
	}
}

// havocStagingSubtree degrades every staging field a subtree might write
// (including packed group mates) to ⊤.
func havocStagingSubtree(root *ir.Op, staging map[string]FieldState) {
	ir.Walk(root, func(o *ir.Op) {
		s, ok := accfg.AsSetup(o)
		if !ok {
			return
		}
		accel := s.Accelerator()
		st, ok := staging[accel]
		if !ok {
			st = FieldState{}
			staging[accel] = st
		}
		mates := groupMates(accel)
		for _, name := range s.FieldNames() {
			st[name] = Top()
			for _, mate := range mates[name] {
				st[mate] = Top()
			}
		}
	})
}
