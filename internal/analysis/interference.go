package analysis

import (
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// Staging/memref interference analysis: the conservative queries the
// overlap pass's pipelining and code-motion guards are built on. Each
// answers "may this op interact with state the rewrite is about to
// reorder?" — erring towards yes. The four historical overlap soundness
// bugs (DESIGN.md §5, §9) were all missing instances of these checks, so
// they live here, shared between the transformation guards and the static
// checker's regression tests.

// TouchesStaging reports whether op writes or commits the named
// accelerator's staging registers: a setup writes them, a launch commits
// them. Such ops pin any same-accelerator setup behind them — hopping a
// setup over another setup reorders configuration writes, and hopping it
// over a launch makes that launch commit the moved setup's values instead
// of the configuration it launched with in program order.
func TouchesStaging(op *ir.Op, accelerator string) bool {
	if s, ok := accfg.AsSetup(op); ok {
		return s.Accelerator() == accelerator
	}
	if l, ok := accfg.AsLaunch(op); ok {
		return l.Accelerator() == accelerator
	}
	return false
}

// HostMemoryOp reports whether op is host memory traffic (memref
// load/store). The accelerator reads and writes main memory at launch
// time, and there is no alias analysis between host accesses and job
// buffers, so any host memory op conservatively interferes with moving a
// launch across it.
func HostMemoryOp(op *ir.Op) bool {
	return op.Name() == memref.OpLoad || op.Name() == memref.OpStore
}

// SubtreePipelineHazard reports whether the subtree rooted at op contains
// anything loop software-pipelining cannot safely reorder around: any
// accfg op (a nested launch would commit the rotated setup's
// next-iteration configuration; a nested setup/await breaks the
// one-job-in-flight shape) or any host memory op (the launch moving to the
// top of the body reorders the device's memory effects with it).
func SubtreePipelineHazard(root *ir.Op) bool {
	hazard := false
	ir.Walk(root, func(o *ir.Op) {
		switch o.Name() {
		case accfg.OpSetup, accfg.OpLaunch, accfg.OpAwait:
			hazard = true
		default:
			if HostMemoryOp(o) {
				hazard = true
			}
		}
	})
	return hazard
}

// LaunchReachableAfter reports whether a launch of the given accelerator
// outside the subtree rooted at op can execute after op's subtree ran: it
// appears later in the enclosing function's pre-order, or it shares an
// enclosing scf.for with op (in which case the next enclosing iteration
// wraps around to it). Software pipelining leaves the *next* iteration's
// phantom configuration in the staging registers when its loop exits; any
// launch reachable afterwards would commit that phantom state instead of
// the last real configuration, so the rewrite must bail when this reports
// true.
func LaunchReachableAfter(op *ir.Op, accelerator string) bool {
	// Find the enclosing function (or topmost ancestor).
	root := op
	for p := root.ParentOp(); p != nil; p = p.ParentOp() {
		root = p
		if p.Name() == fnc.OpFunc {
			break
		}
	}
	// Pre-order positions over the function: an op in an enclosing block
	// after op, or a later sibling subtree, gets a larger position.
	pos := map[*ir.Op]int{}
	n := 0
	ir.Walk(root, func(o *ir.Op) {
		pos[o] = n
		n++
	})
	// Enclosing scf.for ancestors of op.
	var enclosingLoops []*ir.Op
	for p := op.ParentOp(); p != nil; p = p.ParentOp() {
		if p.Name() == scf.OpFor {
			enclosingLoops = append(enclosingLoops, p)
		}
	}
	unsafe := false
	ir.Walk(root, func(o *ir.Op) {
		l, ok := accfg.AsLaunch(o)
		if !ok || l.Accelerator() != accelerator || op == o || op.IsAncestorOf(o) {
			return
		}
		if pos[o] > pos[op] {
			unsafe = true
			return
		}
		for _, enc := range enclosingLoops {
			if enc.IsAncestorOf(o) {
				unsafe = true
				return
			}
		}
	})
	return unsafe
}
