package analysis

import (
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// ForwardProblem describes one forward dataflow problem over the
// structured accfg/scf region tree for the Forward solver. S is the
// join-semilattice state; all methods may mutate and return their argument
// (the solver clones at every control-flow split).
type ForwardProblem[S any] interface {
	// Clone deep-copies a state.
	Clone(s S) S
	// Join computes the least upper bound of two states.
	Join(a, b S) S
	// Equal reports lattice-element equality (fixpoint detection).
	Equal(a, b S) bool
	// Transfer applies one regionless op.
	Transfer(op *ir.Op, s S) S
	// EnterLoop seeds the loop-carried abstractions (induction variable,
	// iteration arguments) before each abstract evaluation of the body.
	EnterLoop(loop *ir.Op, s S) S
	// ExitLoop binds the loop's results given the post-fixpoint state.
	ExitLoop(loop *ir.Op, s S) S
	// ExitIf joins the two arm states and binds the if's results.
	ExitIf(ifOp *ir.Op, thenState, elseState S) S
}

// maxFixpointIters bounds the per-loop iteration count of the solver. The
// abstract domains here have small finite height (⊥ → value → ⊤ per
// tracked cell), so fixpoints arrive in two or three rounds; the cap is a
// defensive backstop, and hitting it still yields a sound (post-join)
// over-approximation because Join only ever moves up the lattice.
const maxFixpointIters = 8

// Forward runs a forward dataflow problem over one structured block: ops
// in sequence, scf.if by evaluating both arms from the same entry state
// and joining, scf.for by iterating the body to a join-fixpoint (the
// region-tree equivalent of a worklist solver on the loop's back edge,
// which also covers the zero-trip case since the entry state stays in the
// join). Returns the state at the block's end.
func Forward[S any](p ForwardProblem[S], b *ir.Block, s S) S {
	for op := b.First(); op != nil; op = op.Next() {
		switch op.Name() {
		case scf.OpFor:
			cur := p.EnterLoop(op, p.Clone(s))
			for i := 0; i < maxFixpointIters; i++ {
				out := Forward(p, op.Region(0).Block(), p.Clone(cur))
				joined := p.Join(cur, out)
				if p.Equal(joined, cur) {
					cur = joined
					break
				}
				cur = p.EnterLoop(op, joined)
			}
			s = p.ExitLoop(op, cur)
		case scf.OpIf:
			thenState := Forward(p, op.Region(0).Block(), p.Clone(s))
			elseState := Forward(p, op.Region(1).Block(), p.Clone(s))
			s = p.ExitIf(op, thenState, elseState)
		default:
			s = p.Transfer(op, s)
		}
	}
	return s
}
