package analysis

import (
	"fmt"
	"sort"
	"strings"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

// Exploration limits. Generated programs are tiny (constant loop bounds of
// at most a handful of iterations, a few branches); the caps exist so
// adversarial hand-written inputs degrade to an inconclusive accept instead
// of hanging the checker.
const (
	maxPaths      = 256
	maxTripUnroll = 1024
	maxFuel       = 200_000
)

// eventKind classifies one observable action of an abstract execution.
type eventKind uint8

const (
	evLaunch eventKind = iota
	evStore
	evLoad
)

func (k eventKind) String() string {
	switch k {
	case evLaunch:
		return "launch"
	case evStore:
		return "store"
	}
	return "load"
}

// event is one observable action: an accelerator launch with the staging
// configuration it commits, or a host memory access. Await has no
// observable effect of its own and is not recorded.
type event struct {
	kind   eventKind
	accel  string     // evLaunch
	fields FieldState // evLaunch: staging snapshot the launch commits
	addr   AbsVal     // evStore/evLoad
	val    AbsVal     // evStore
}

func (e event) String() string {
	switch e.kind {
	case evLaunch:
		return fmt.Sprintf("launch %s [%s]", e.accel, e.fields)
	case evStore:
		return fmt.Sprintf("store %s <- %s", e.addr, e.val)
	}
	return fmt.Sprintf("load %s", e.addr)
}

// path is one fully resolved abstract execution: the branch decisions that
// select it and the observable events it performs.
type path struct {
	assigns map[string]bool
	events  []event
}

// signature renders the branch decisions canonically so base and optimized
// paths pair up: "cond1=T cond2=F", sorted by condition key.
func (p *path) signature() string {
	keys := make([]string, 0, len(p.assigns))
	for k := range p.assigns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(k)
		if p.assigns[k] {
			b.WriteString("=T")
		} else {
			b.WriteString("=F")
		}
	}
	return b.String()
}

// funcPaths is the exploration result for one function.
type funcPaths struct {
	name         string
	paths        []*path
	inconclusive []string // non-empty: exploration lost precision somewhere
}

// Summary holds the explored abstract executions of a module's functions,
// ready for comparison against another module's summary.
type Summary struct {
	funcs map[string]*funcPaths
	order []string // function names in module order
}

// control-flow sentinels for the interpreter.
type forkErr struct{ key string }

func (e forkErr) Error() string { return "fork on " + e.key }

type impreciseErr struct{ reason string }

func (e impreciseErr) Error() string { return e.reason }

// Explore abstractly interprets every function of m, enumerating one path
// per feasible combination of unresolved branch conditions (conditions are
// keyed by canonical symbolic expression, so the same runtime condition
// resolves identically everywhere it is consulted). Constant-bound loops
// are fully unrolled; anything the interpreter cannot bound or model makes
// that function's exploration inconclusive rather than wrong.
func Explore(m *ir.Module) *Summary {
	s := &Summary{funcs: map[string]*funcPaths{}}
	for _, f := range m.Funcs() {
		name, _ := f.StringAttrValue("sym_name")
		fp := exploreFunc(f)
		fp.name = name
		// Duplicate names would silently shadow; degrade honestly.
		if _, dup := s.funcs[name]; dup {
			fp.inconclusive = append(fp.inconclusive, "duplicate function name")
		}
		s.funcs[name] = fp
		s.order = append(s.order, name)
	}
	return s
}

// exploreFunc enumerates the paths of one function by repeatedly running
// the interpreter with a growing branch-decision script: a run that hits an
// undecided symbolic condition aborts and re-queues both decisions.
func exploreFunc(f *ir.Op) *funcPaths {
	fp := &funcPaths{}
	pending := []map[string]bool{{}}
	for len(pending) > 0 {
		if len(fp.paths)+len(pending) > maxPaths {
			fp.inconclusive = append(fp.inconclusive, fmt.Sprintf("more than %d paths", maxPaths))
			return fp
		}
		assigns := pending[0]
		pending = pending[1:]
		p, err := runOnce(f, assigns)
		switch e := err.(type) {
		case nil:
			fp.paths = append(fp.paths, p)
		case forkErr:
			t := cloneAssigns(assigns)
			t[e.key] = true
			fa := cloneAssigns(assigns)
			fa[e.key] = false
			pending = append(pending, t, fa)
		case impreciseErr:
			fp.inconclusive = append(fp.inconclusive, e.reason)
			return fp
		default:
			fp.inconclusive = append(fp.inconclusive, err.Error())
			return fp
		}
	}
	return fp
}

func cloneAssigns(a map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+1)
	for k, v := range a {
		out[k] = v
	}
	return out
}

// interp is the per-run interpreter state.
type interp struct {
	env     map[*ir.Value]AbsVal
	staging map[string]FieldState
	assigns map[string]bool
	events  []event
	loads   int
	allocs  int
	fuel    int
}

// runOnce deterministically interprets f under the given branch decisions.
func runOnce(f *ir.Op, assigns map[string]bool) (*path, error) {
	in := &interp{
		env:     map[*ir.Value]AbsVal{},
		staging: map[string]FieldState{},
		assigns: assigns,
		fuel:    maxFuel,
	}
	body := f.Region(0).Block()
	for i, arg := range body.Args() {
		in.env[arg] = Sym(fmt.Sprintf("arg%d", i))
	}
	if err := in.evalBlock(body); err != nil {
		return nil, err
	}
	return &path{assigns: assigns, events: in.events}, nil
}

// resolve returns the abstract value of v in the current environment.
// Everything defined before the current program point has been interpreted,
// so a miss is an enclosing-scope value the interpreter chose not to model.
func (in *interp) resolve(v *ir.Value) AbsVal {
	if av, ok := in.env[v]; ok {
		return av
	}
	return Top()
}

func (in *interp) evalBlock(b *ir.Block) error {
	for op := b.First(); op != nil; op = op.Next() {
		if in.fuel--; in.fuel <= 0 {
			return impreciseErr{reason: "interpretation budget exhausted"}
		}
		if err := in.evalOp(op); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) evalOp(op *ir.Op) error {
	switch op.Name() {
	case arith.OpConstant:
		c, _ := op.IntAttrValue("value")
		in.env[op.Result(0)] = Const(c)

	case arith.OpAddI, arith.OpSubI, arith.OpMulI, arith.OpDivUI, arith.OpRemUI,
		arith.OpAndI, arith.OpOrI, arith.OpXOrI, arith.OpShLI, arith.OpShRUI:
		a := in.resolve(op.Operand(0))
		b := in.resolve(op.Operand(1))
		in.env[op.Result(0)] = evalBinary(op.Name(), a, b, op.Result(0).Type())

	case arith.OpCmpI:
		pred, _ := op.StringAttrValue("predicate")
		a := in.resolve(op.Operand(0))
		b := in.resolve(op.Operand(1))
		in.env[op.Result(0)] = evalCmp(pred, a, b)

	case arith.OpSelect:
		c := in.resolve(op.Operand(0))
		t := in.resolve(op.Operand(1))
		e := in.resolve(op.Operand(2))
		in.env[op.Result(0)] = evalSelect(c, t, e)

	case arith.OpIndexCast:
		// index and i64 are both 64-bit here: the cast is the identity.
		in.env[op.Result(0)] = in.resolve(op.Operand(0))

	case memref.OpExtractPointer:
		in.env[op.Result(0)] = wrap1("ptr", in.resolve(op.Operand(0)))

	case memref.OpAlloc:
		in.env[op.Result(0)] = Sym(fmt.Sprintf("alloc%d", in.allocs))
		in.allocs++

	case memref.OpDim:
		in.env[op.Result(0)] = wrap1("dim", in.resolve(op.Operand(0)))

	case memref.OpLoad:
		addr := in.addrKey(op, 0)
		in.events = append(in.events, event{kind: evLoad, addr: addr})
		in.env[op.Result(0)] = Sym(fmt.Sprintf("load%d", in.loads))
		in.loads++

	case memref.OpStore:
		addr := in.addrKey(op, 1)
		in.events = append(in.events, event{kind: evStore, addr: addr, val: in.resolve(op.Operand(0))})

	case accfg.OpSetup:
		in.evalSetup(op)

	case accfg.OpLaunch:
		l, _ := accfg.AsLaunch(op)
		st, ok := in.staging[l.Accelerator()]
		if !ok {
			st = FieldState{}
		}
		in.events = append(in.events, event{kind: evLaunch, accel: l.Accelerator(), fields: st.clone()})

	case accfg.OpAwait:
		// Synchronization only: no observable effect of its own.

	case scf.OpFor:
		return in.evalFor(op)

	case scf.OpIf:
		return in.evalIf(op)

	case scf.OpYield, fnc.OpReturn:
		// Handled by the enclosing region evaluation.

	default:
		if op.NumRegions() > 0 {
			return impreciseErr{reason: fmt.Sprintf("unmodeled region op %s", op.Name())}
		}
		if accfg.EffectsOf(op) == ir.EffectsAll {
			// Could clobber accelerator state (or worse) in ways this
			// abstraction does not model.
			return impreciseErr{reason: fmt.Sprintf("unmodeled effectful op %s", op.Name())}
		}
		for _, r := range op.Results() {
			in.env[r] = Top()
		}
	}
	return nil
}

// addrKey builds the canonical address key of a load/store: the buffer key
// plus every index key. Distinct canonical keys do not prove distinct
// addresses — the comparison layer only treats equal keys as meaningful.
func (in *interp) addrKey(op *ir.Op, bufIdx int) AbsVal {
	parts := make([]string, 0, op.NumOperands()-bufIdx)
	for i := bufIdx; i < op.NumOperands(); i++ {
		av := in.resolve(op.Operand(i))
		if av.IsTop() {
			return Top()
		}
		parts = append(parts, av.String())
	}
	return Sym("(at " + strings.Join(parts, " ") + ")")
}

// evalSetup writes the setup's fields into the accelerator's abstract
// staging registers; see applySetup for the group-atomic mate rules.
func (in *interp) evalSetup(op *ir.Op) {
	applySetup(op, in.staging, in.resolve)
}

func (in *interp) evalFor(op *ir.Op) error {
	lb := in.resolve(op.Operand(0))
	ub := in.resolve(op.Operand(1))
	step := in.resolve(op.Operand(2))
	lbC, lbOK := lb.ConstValue()
	ubC, ubOK := ub.ConstValue()
	stepC, stepOK := step.ConstValue()
	body := op.Region(0).Block()
	yield := body.Last()

	nIter := op.NumOperands() - 3
	iters := make([]AbsVal, nIter)
	for i := range iters {
		iters[i] = in.resolve(op.Operand(3 + i))
	}

	if !lbOK || !ubOK || !stepOK || stepC <= 0 {
		// Unbounded loop: safe to skip only when its body is free of
		// observable events; its configuration writes degrade to ⊤.
		if subtreeObservable(op) {
			return impreciseErr{reason: "loop with non-constant bounds contains observable ops"}
		}
		in.havocSetups(op)
		for _, r := range op.Results() {
			in.env[r] = Top()
		}
		return nil
	}

	trips := 0
	for iv := lbC; iv < ubC; iv += stepC {
		if trips++; trips > maxTripUnroll {
			return impreciseErr{reason: fmt.Sprintf("loop trip count exceeds %d", maxTripUnroll)}
		}
		in.env[body.Arg(0)] = Const(iv)
		for i := 0; i < nIter; i++ {
			in.env[body.Arg(1+i)] = iters[i]
		}
		if err := in.evalBlock(body); err != nil {
			return err
		}
		for i := 0; i < nIter; i++ {
			iters[i] = in.resolve(yield.Operand(i))
		}
	}
	for i, r := range op.Results() {
		in.env[r] = iters[i]
	}
	return nil
}

func (in *interp) evalIf(op *ir.Op) error {
	cond := in.resolve(op.Operand(0))
	if c, ok := cond.ConstValue(); ok {
		return in.evalBranch(op, c != 0)
	}
	if key, ok := cond.SymKey(); ok {
		taken, decided := in.assigns[key]
		if !decided {
			return forkErr{key: key}
		}
		return in.evalBranch(op, taken)
	}
	// Opaque condition: safe to skip only without observable events.
	if subtreeObservable(op) {
		return impreciseErr{reason: "branch on unmodeled condition contains observable ops"}
	}
	in.havocSetups(op)
	for _, r := range op.Results() {
		in.env[r] = Top()
	}
	return nil
}

func (in *interp) evalBranch(op *ir.Op, taken bool) error {
	ri := 0
	if !taken {
		ri = 1
	}
	blk := op.Region(ri).Block()
	if err := in.evalBlock(blk); err != nil {
		return err
	}
	if yield := blk.Last(); yield != nil && yield.Name() == scf.OpYield {
		for i, r := range op.Results() {
			in.env[r] = in.resolve(yield.Operand(i))
		}
	}
	return nil
}

// havocSetups degrades every staging field a skipped subtree might write
// (including packed group mates) to ⊤.
func (in *interp) havocSetups(root *ir.Op) {
	havocStagingSubtree(root, in.staging)
}

// subtreeObservable reports whether the subtree rooted at op contains any
// op whose execution is an observable event (launch or host memory access).
func subtreeObservable(root *ir.Op) bool {
	found := false
	ir.Walk(root, func(o *ir.Op) {
		switch o.Name() {
		case accfg.OpLaunch, memref.OpLoad, memref.OpStore:
			found = true
		}
	})
	return found
}

// --- abstract arithmetic -------------------------------------------------

// commutative arith ops whose operand keys are sorted for canonicalization.
var commutative = map[string]bool{
	arith.OpAddI: true, arith.OpMulI: true,
	arith.OpAndI: true, arith.OpOrI: true, arith.OpXOrI: true,
}

// evalBinary mirrors the arith constant folder (arith.Eval plus the
// algebraic identities of foldBinary) so that values canonicalize to the
// same key whether or not the canonicalize pass already folded them.
func evalBinary(name string, a, b AbsVal, t ir.Type) AbsVal {
	// Identities that hold regardless of the other operand — the same set
	// the greedy folder applies.
	if bc, ok := b.ConstValue(); ok {
		if bc == 0 {
			switch name {
			case arith.OpAddI, arith.OpSubI, arith.OpOrI, arith.OpXOrI, arith.OpShLI, arith.OpShRUI:
				return a
			case arith.OpMulI, arith.OpAndI:
				return Const(0)
			}
		}
		if bc == 1 && (name == arith.OpMulI || name == arith.OpDivUI) {
			return a
		}
	}
	if ac, ok := a.ConstValue(); ok && ac == 0 && name == arith.OpAddI {
		return b
	}
	ac, aOK := a.ConstValue()
	bc, bOK := b.ConstValue()
	if aOK && bOK {
		r, err := arith.Eval(name, ac, bc, t)
		if err != nil {
			return Top() // division by zero: runtime behavior unmodeled
		}
		return Const(r)
	}
	if a.IsTop() || b.IsTop() || a.IsBottom() || b.IsBottom() {
		return Top()
	}
	ka, kb := a.String(), b.String()
	if commutative[name] && kb < ka {
		ka, kb = kb, ka
	}
	short := strings.TrimPrefix(name, "arith.")
	return Sym("(" + short + " " + ka + " " + kb + ")")
}

// evalCmp mirrors arith.EvalCmp and resolves comparisons of provably equal
// operands; everything else stays symbolic so branches fork consistently.
func evalCmp(pred string, a, b AbsVal) AbsVal {
	ac, aOK := a.ConstValue()
	bc, bOK := b.ConstValue()
	if aOK && bOK {
		r, err := arith.EvalCmp(pred, ac, bc)
		if err != nil {
			return Top()
		}
		if r {
			return Const(1)
		}
		return Const(0)
	}
	if a.ProvablyEqual(b) {
		switch pred {
		case arith.PredEQ, arith.PredSLE, arith.PredSGE, arith.PredULE:
			return Const(1)
		case arith.PredNE, arith.PredSLT, arith.PredSGT, arith.PredULT:
			return Const(0)
		}
	}
	if a.IsTop() || b.IsTop() || a.IsBottom() || b.IsBottom() {
		return Top()
	}
	ka, kb := a.String(), b.String()
	if (pred == arith.PredEQ || pred == arith.PredNE) && kb < ka {
		ka, kb = kb, ka
	}
	return Sym("(cmpi " + pred + " " + ka + " " + kb + ")")
}

func evalSelect(c, t, e AbsVal) AbsVal {
	if cc, ok := c.ConstValue(); ok {
		if cc != 0 {
			return t
		}
		return e
	}
	if t.ProvablyEqual(e) {
		return t
	}
	if c.IsTop() || t.IsTop() || e.IsTop() || c.IsBottom() || t.IsBottom() || e.IsBottom() {
		return Top()
	}
	return Sym("(select " + c.String() + " " + t.String() + " " + e.String() + ")")
}

func wrap1(fn string, v AbsVal) AbsVal {
	if v.IsTop() || v.IsBottom() {
		return Top()
	}
	return Sym("(" + fn + " " + v.String() + ")")
}
