package analysis

import (
	"configwall/internal/accel/gemmini"
	"configwall/internal/accel/opengemm"
)

// fieldGroups returns the physical write granularity of an accelerator's
// configuration interface: each inner slice is one set of fields that share
// a single configuration instruction. On Gemmini's bit-packed RoCC
// interface one instruction rewrites a whole register pair, so a setup
// touching any member of a group rewrites every member (the lowering
// re-materializes the mates from its own static knowledge — knowledge this
// analysis must not assume, so the abstract interpreter degrades untouched
// mates to ⊤, the group-atomic join of DESIGN.md §9). OpenGeMM's CSR port
// writes one field per instruction; unknown accelerators (hand-written test
// modules) are treated field-granular as well.
func fieldGroups(accelerator string) [][]string {
	switch accelerator {
	case gemmini.Name:
		var out [][]string
		for _, ci := range gemmini.Sequence {
			if ci.Launch || len(ci.Slots) == 0 {
				continue
			}
			g := make([]string, 0, len(ci.Slots))
			for _, slot := range ci.Slots {
				g = append(g, slot.Field)
			}
			out = append(out, g)
		}
		return out
	case opengemm.Name:
		return nil // one field per CSR: field-granular
	}
	return nil
}

// groupMates returns, for every field of the accelerator, the other fields
// sharing its configuration instruction. Fields without packed mates map to
// nil.
func groupMates(accelerator string) map[string][]string {
	mates := map[string][]string{}
	for _, g := range fieldGroups(accelerator) {
		for _, f := range g {
			for _, other := range g {
				if other != f {
					mates[f] = append(mates[f], other)
				}
			}
		}
	}
	return mates
}

// configInstrsFor returns how many configuration instructions the lowering
// emits for one setup writing the given fields: the number of distinct
// instruction groups touched (bit-packed interfaces), or one per field on
// field-granular ports. Used by the static bounds analysis; exact for the
// two in-tree lowerings, and a valid lower bound for anything else.
func configInstrsFor(accelerator string, fields []string) int {
	groups := fieldGroups(accelerator)
	if len(groups) == 0 {
		return len(fields)
	}
	group := map[string]int{}
	for gi, g := range groups {
		for _, f := range g {
			group[f] = gi
		}
	}
	touched := map[int]bool{}
	n := 0
	for _, f := range fields {
		gi, ok := group[f]
		if !ok {
			n++ // unknown field: at least one write
			continue
		}
		if !touched[gi] {
			touched[gi] = true
			n++
		}
	}
	return n
}
