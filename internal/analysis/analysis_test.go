package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/ir"
)

func parseIR(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func parsePassTestdata(t *testing.T, name string) *ir.Module {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "passes", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return parseIR(t, string(src))
}

func TestAbsValLattice(t *testing.T) {
	cases := []struct {
		a, b, want AbsVal
	}{
		{Bottom(), Const(3), Const(3)},
		{Const(3), Const(3), Const(3)},
		{Const(3), Const(4), Top()},
		{Sym("x"), Sym("x"), Sym("x")},
		{Sym("x"), Sym("y"), Top()},
		{Const(3), Sym("x"), Top()},
		{Top(), Const(3), Top()},
	}
	for _, c := range cases {
		if got := c.a.Join(c.b); !got.Equal(c.want) {
			t.Errorf("Join(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		if got := c.b.Join(c.a); !got.Equal(c.want) {
			t.Errorf("Join(%s, %s) = %s, want %s (commuted)", c.b, c.a, got, c.want)
		}
	}
	if !Const(3).ProvablyDifferent(Const(4)) || Const(3).ProvablyDifferent(Const(3)) {
		t.Error("ProvablyDifferent wrong on constants")
	}
	if Sym("x").ProvablyDifferent(Sym("y")) {
		t.Error("distinct symbols are not provably different")
	}
	if !Sym("x").ProvablyEqual(Sym("x")) || Sym("x").ProvablyEqual(Top()) {
		t.Error("ProvablyEqual wrong on symbols")
	}
}

const straightLine = `
"builtin.module"() ({
  "fnc.func"() ({
    %0 = "arith.constant"() {value = 5 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 9 : i64} : () -> (i64)
    %2 = "accfg.setup"(%0, %1) {accelerator = "acc", fields = ["x", "y"]} : (i64, i64) -> (!accfg.state<"acc">)
    %3 = "accfg.launch"(%2) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%3) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`

func TestExploreStraightLine(t *testing.T) {
	m := parseIR(t, straightLine)
	s := Explore(m)
	fp := s.funcs["main"]
	if fp == nil || len(fp.inconclusive) > 0 {
		t.Fatalf("exploration inconclusive: %v", fp)
	}
	if len(fp.paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(fp.paths))
	}
	ev := fp.paths[0].events
	if len(ev) != 1 || ev[0].kind != evLaunch || ev[0].accel != "acc" {
		t.Fatalf("events = %v, want one acc launch", ev)
	}
	if got := ev[0].fields.get("x"); !got.Equal(Const(5)) {
		t.Errorf("launch sees x = %s, want 5", got)
	}
	if got := ev[0].fields.get("y"); !got.Equal(Const(9)) {
		t.Errorf("launch sees y = %s, want 9", got)
	}
	// Never-written fields read as the hardware reset value.
	if got := ev[0].fields.get("z"); !got.Equal(Const(0)) {
		t.Errorf("unwritten field reads %s, want 0", got)
	}
}

func TestCompareIdenticalProved(t *testing.T) {
	m := parseIR(t, straightLine)
	v := CompareModules(m, m.Clone())
	if !v.Proved() {
		t.Fatalf("self-comparison not proved: %s", v)
	}
}

// mutateConstant rewrites the first arith.constant holding `from` to `to`.
func mutateConstant(t *testing.T, m *ir.Module, from, to int64) {
	t.Helper()
	done := false
	m.Walk(func(op *ir.Op) {
		if done || op.Name() != arith.OpConstant {
			return
		}
		if c, _ := op.IntAttrValue("value"); c == from {
			op.SetAttr("value", ir.IntAttr(to))
			done = true
		}
	})
	if !done {
		t.Fatalf("no constant %d found", from)
	}
}

func TestCompareRejectsFieldChange(t *testing.T) {
	m := parseIR(t, straightLine)
	opt := m.Clone()
	mutateConstant(t, opt, 9, 10)
	v := CompareModules(m, opt)
	if !v.Rejected() {
		t.Fatalf("mutated field not rejected: %s", v)
	}
	if !strings.Contains(v.String(), "field y") {
		t.Errorf("finding does not name the field: %s", v)
	}
}

func TestCompareRejectsDroppedLaunch(t *testing.T) {
	m := parseIR(t, straightLine)
	opt := m.Clone()
	opt.Walk(func(op *ir.Op) {
		if op.Name() == accfg.OpAwait {
			op.Erase()
		}
	})
	opt.Walk(func(op *ir.Op) {
		if op.Name() == accfg.OpLaunch {
			op.Erase()
		}
	})
	v := CompareModules(m, opt)
	if !v.Rejected() {
		t.Fatalf("dropped launch not rejected: %s", v)
	}
}

const branchy = `
"builtin.module"() ({
  "fnc.func"() ({
    ^(%p: i64):
    %0 = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %2 = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %3 = "arith.cmpi"(%p, %0) {predicate = "ne"} : (i64, i64) -> (i1)
    %4 = "scf.if"(%3) ({
      %5 = "accfg.setup"(%1) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
      "scf.yield"(%5) : (!accfg.state<"acc">) -> ()
    }, {
      %6 = "accfg.setup"(%2) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
      "scf.yield"(%6) : (!accfg.state<"acc">) -> ()
    }) : (i1) -> (!accfg.state<"acc">)
    %7 = "accfg.launch"(%4) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%7) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = (i64) -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`

func TestExploreForksOnSymbolicBranch(t *testing.T) {
	m := parseIR(t, branchy)
	s := Explore(m)
	fp := s.funcs["main"]
	if len(fp.inconclusive) > 0 {
		t.Fatalf("inconclusive: %v", fp.inconclusive)
	}
	if len(fp.paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(fp.paths))
	}
	seen := map[int64]bool{}
	for _, p := range fp.paths {
		if len(p.events) != 1 {
			t.Fatalf("path events = %v", p.events)
		}
		c, ok := p.events[0].fields.get("x").ConstValue()
		if !ok {
			t.Fatalf("x not constant on path %q", p.signature())
		}
		seen[c] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("branch values = %v, want {1, 2}", seen)
	}
	if v := CompareModules(m, m.Clone()); !v.Proved() {
		t.Errorf("branchy self-comparison not proved: %s", v)
	}
}

func TestExploreUnrollsConstantLoop(t *testing.T) {
	m := parsePassTestdata(t, "overlap.ir")
	s := Explore(m)
	fp := s.funcs["overlap"]
	if fp == nil {
		t.Fatal("function not explored")
	}
	if len(fp.inconclusive) > 0 {
		t.Fatalf("inconclusive: %v", fp.inconclusive)
	}
	if len(fp.paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(fp.paths))
	}
	ev := fp.paths[0].events
	if len(ev) != 6 {
		t.Fatalf("events = %d, want 6 launches", len(ev))
	}
	// Iteration i commits addr = base + 128*i: symbolic in base, distinct
	// canonical keys per iteration, len constant throughout.
	for i, e := range ev {
		if e.kind != evLaunch {
			t.Fatalf("event %d is %s, want launch", i, e)
		}
		if got := e.fields.get("len"); !got.Equal(Const(128)) {
			t.Errorf("iteration %d len = %s, want 128", i, got)
		}
	}
	if ev[0].fields.get("addr").Equal(ev[1].fields.get("addr")) {
		t.Error("distinct iterations must see distinct addr keys")
	}
}

func TestCompareCatchesStagingReorderAcrossLaunch(t *testing.T) {
	// Base: configure x=1, launch, configure x=2, launch.
	// Broken optimization: both setups hoisted above the first launch, so
	// launch #0 commits x=2 instead of x=1.
	base := parseIR(t, `
"builtin.module"() ({
  "fnc.func"() ({
    %0 = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %2 = "accfg.setup"(%0) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
    %3 = "accfg.launch"(%2) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%3) : (!accfg.token<"acc">) -> ()
    %4 = "accfg.setup"(%2, %1) {accelerator = "acc", fields = ["x"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
    %5 = "accfg.launch"(%4) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%5) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`)
	opt := parseIR(t, `
"builtin.module"() ({
  "fnc.func"() ({
    %0 = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %2 = "accfg.setup"(%0) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
    %4 = "accfg.setup"(%2, %1) {accelerator = "acc", fields = ["x"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
    %3 = "accfg.launch"(%2) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%3) : (!accfg.token<"acc">) -> ()
    %5 = "accfg.launch"(%4) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%5) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`)
	v := CompareModules(base, opt)
	if !v.Rejected() {
		t.Fatalf("reordered staging write across launch not rejected: %s", v)
	}
}

func TestPassCheck(t *testing.T) {
	m := parseIR(t, straightLine)
	if err := PassCheck("canonicalize", m, m.Clone()); err != nil {
		t.Fatalf("identity pass rejected: %v", err)
	}
	bad := m.Clone()
	mutateConstant(t, bad, 5, 6)
	err := PassCheck("canonicalize", m, bad)
	if err == nil {
		t.Fatal("mutated module accepted")
	}
	if _, ok := err.(*RejectError); !ok {
		t.Fatalf("error is %T, want *RejectError", err)
	}
	// Lowering passes are exempt: they translate accfg away by design.
	if err := PassCheck("lower-gemmini", m, bad); err != nil {
		t.Fatalf("lowering pass not exempt: %v", err)
	}
}

func TestStaticBounds(t *testing.T) {
	// sink.ir: loop 0..4 step 1 = 4 iterations, each with a branch setup
	// (1 field either arm), a 2-field setup, and a launch (1 job + 1 write).
	m := parsePassTestdata(t, "sink.ir")
	b := StaticBounds(m)
	if b.MinLaunches != 4 {
		t.Errorf("MinLaunches = %d, want 4", b.MinLaunches)
	}
	if b.MinConfigInstrs != 16 {
		t.Errorf("MinConfigInstrs = %d, want 16", b.MinConfigInstrs)
	}
	// hoist.ir: 8 iterations x (3-field setup + launch).
	b = StaticBounds(parsePassTestdata(t, "hoist.ir"))
	if b.MinLaunches != 8 || b.MinConfigInstrs != 32 {
		t.Errorf("hoist bounds = %+v, want {8 32}", b)
	}
}

func TestSummarizeFlow(t *testing.T) {
	m := parsePassTestdata(t, "sink.ir")
	sum := Summarize(m)
	if len(sum.Funcs) != 1 || len(sum.Funcs[0].Launches) != 1 {
		t.Fatalf("summary shape = %+v", sum)
	}
	l := sum.Funcs[0].Launches[0]
	// The trailing setup rewrites x=1 and y=7 on every path, so the launch
	// configuration is constant despite the branch underneath.
	if got := l.Fields.get("x"); !got.Equal(Const(1)) {
		t.Errorf("x = %s, want 1", got)
	}
	if got := l.Fields.get("y"); !got.Equal(Const(7)) {
		t.Errorf("y = %s, want 7", got)
	}
}

// launchedProblem is a second, minimal client of the generic Forward solver
// (its existence keeps the solver honestly reusable): "has the accelerator
// possibly been launched by this point?".
type launchedProblem struct{}

func (launchedProblem) Clone(s bool) bool               { return s }
func (launchedProblem) Join(a, b bool) bool             { return a || b }
func (launchedProblem) Equal(a, b bool) bool            { return a == b }
func (launchedProblem) EnterLoop(_ *ir.Op, s bool) bool { return s }
func (launchedProblem) ExitLoop(_ *ir.Op, s bool) bool  { return s }
func (launchedProblem) ExitIf(_ *ir.Op, a, b bool) bool { return a || b }
func (launchedProblem) Transfer(op *ir.Op, s bool) bool {
	return s || op.Name() == accfg.OpLaunch
}

func TestForwardSolverReuse(t *testing.T) {
	m := parsePassTestdata(t, "sink.ir")
	for _, f := range m.Funcs() {
		if got := Forward[bool](launchedProblem{}, f.Region(0).Block(), false); !got {
			t.Error("launch inside loop not reached")
		}
	}
	m2 := parseIR(t, `
"builtin.module"() ({
  "fnc.func"() ({
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "empty"} : () -> ()
}) : () -> ()
`)
	for _, f := range m2.Funcs() {
		if got := Forward[bool](launchedProblem{}, f.Region(0).Block(), false); got {
			t.Error("empty function reported a launch")
		}
	}
}

func TestInterferenceQueries(t *testing.T) {
	m := parsePassTestdata(t, "sink.ir")
	var setup, launch, innerSetup *ir.Op
	m.Walk(func(op *ir.Op) {
		switch op.Name() {
		case accfg.OpSetup:
			if op.ParentOp().Name() == "scf.if" && innerSetup == nil {
				innerSetup = op
			}
			if op.ParentOp().Name() == "scf.for" {
				setup = op
			}
		case accfg.OpLaunch:
			launch = op
		}
	})
	if setup == nil || launch == nil || innerSetup == nil {
		t.Fatal("testdata shape changed")
	}
	if !TouchesStaging(setup, "acc") || !TouchesStaging(launch, "acc") {
		t.Error("setup/launch must touch acc staging")
	}
	if TouchesStaging(setup, "other") {
		t.Error("setup touches a different accelerator's staging")
	}
	// The branch setup sits before the launch in the loop body: reachable
	// both as a later sibling and via the loop's wrap-around.
	if !LaunchReachableAfter(innerSetup.ParentOp(), "acc") {
		t.Error("launch after the branch not seen")
	}
	// The await follows the launch in block order, but the enclosing loop
	// wraps around to the launch on the next iteration.
	await := launch.Next()
	if await == nil || await.Name() != accfg.OpAwait {
		t.Fatal("await not directly after launch")
	}
	if !LaunchReachableAfter(await, "acc") {
		t.Error("wrap-around launch not seen from the await")
	}
	// After the loop no launch remains reachable.
	var loop *ir.Op
	m.Walk(func(op *ir.Op) {
		if op.Name() == "scf.for" {
			loop = op
		}
	})
	ret := loop.Next()
	if ret == nil || LaunchReachableAfter(ret, "acc") {
		t.Error("no launch is reachable after the loop")
	}
}
