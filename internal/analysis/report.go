package analysis

import (
	"fmt"
	"strings"

	"configwall/internal/ir"
)

// ReportString renders the module's flow summary and static bounds as the
// deterministic human-readable report behind `cwopt -analyze`: one stanza
// per function listing, per launch site in program order, the abstract
// configuration it can commit (field values are ⊥/constant/canonical
// symbolic expression/⊤), followed by the function's configuration-traffic
// lower bounds.
func ReportString(m *ir.Module) string {
	sum := Summarize(m)
	var b strings.Builder
	for _, f := range sum.Funcs {
		fmt.Fprintf(&b, "func @%s\n", f.Name)
		for i, l := range f.Launches {
			fmt.Fprintf(&b, "  launch #%d accelerator=%s\n", i, l.Accel)
			names := l.Fields.names()
			if len(names) == 0 {
				b.WriteString("    (reset state)\n")
			}
			for _, n := range names {
				fmt.Fprintf(&b, "    %s = %s\n", n, l.Fields.get(n))
			}
		}
		fmt.Fprintf(&b, "  bounds: launches >= %d, config instrs >= %d\n",
			f.Bounds.MinLaunches, f.Bounds.MinConfigInstrs)
	}
	return b.String()
}
