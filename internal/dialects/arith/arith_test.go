package arith_test

import (
	"testing"
	"testing/quick"

	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/ir"
)

func newFunc(t testing.TB) (*ir.Module, *ir.Builder) {
	t.Helper()
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I64, ir.I64}, nil))
	m.Append(f.Op)
	return m, ir.AtEnd(f.Body())
}

func finish(t testing.TB, m *ir.Module, b *ir.Builder) {
	t.Helper()
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("invalid module: %v", err)
	}
}

func TestEvalMatchesGoSemantics(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{arith.OpAddI, 1 << 62, 1 << 62, -(1 << 63)}, // wraps
		{arith.OpSubI, 0, 1, -1},
		{arith.OpMulI, -3, 7, -21},
		{arith.OpDivUI, -1, 2, int64(uint64(0xffffffffffffffff) / 2)},
		{arith.OpShLI, 1, 63, -(1 << 63)},
		{arith.OpShRUI, -1, 63, 1},
	}
	for _, tc := range cases {
		got, err := arith.Eval(tc.op, tc.a, tc.b, ir.I64)
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if got != tc.want {
			t.Errorf("Eval(%s, %d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEvalDivByZero(t *testing.T) {
	if _, err := arith.Eval(arith.OpDivUI, 1, 0, ir.I64); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := arith.Eval(arith.OpRemUI, 1, 0, ir.I64); err == nil {
		t.Error("remainder by zero must error")
	}
}

func TestEvalTruncatesNarrowTypes(t *testing.T) {
	got, err := arith.Eval(arith.OpAddI, 0x7fff, 1, ir.I16)
	if err != nil {
		t.Fatal(err)
	}
	if got != -0x8000 {
		t.Errorf("i16 wrap = %d, want -32768", got)
	}
}

func TestEvalCmpAllPredicates(t *testing.T) {
	preds := map[string][3]bool{
		// results for (1,2), (2,2), (2,1)
		arith.PredEQ:  {false, true, false},
		arith.PredNE:  {true, false, true},
		arith.PredSLT: {true, false, false},
		arith.PredSLE: {true, true, false},
		arith.PredSGT: {false, false, true},
		arith.PredSGE: {false, true, true},
		arith.PredULT: {true, false, false},
		arith.PredULE: {true, true, false},
	}
	args := [][2]int64{{1, 2}, {2, 2}, {2, 1}}
	for pred, wants := range preds {
		for i, ab := range args {
			got, err := arith.EvalCmp(pred, ab[0], ab[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != wants[i] {
				t.Errorf("EvalCmp(%s, %d, %d) = %v, want %v", pred, ab[0], ab[1], got, wants[i])
			}
		}
	}
	if _, err := arith.EvalCmp("bogus", 1, 2); err == nil {
		t.Error("unknown predicate must error")
	}
}

func TestIdentityFolds(t *testing.T) {
	m, b := newFunc(t)
	fun := m.FindFunc("f")
	x := fun.Region(0).Block().Arg(0)
	zero := arith.NewConstant(b, 0, ir.I64)
	one := arith.NewConstant(b, 1, ir.I64)

	addZ := arith.NewAdd(b, x, zero) // x + 0 -> x
	mulO := arith.NewMul(b, x, one)  // x * 1 -> x
	mulZ := arith.NewMul(b, x, zero) // x * 0 -> 0
	sink := b.Create("test.sink", []*ir.Value{addZ, mulO, mulZ}, nil)
	finish(t, m, b)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	if sink.Operand(0) != x {
		t.Error("x+0 not folded to x")
	}
	if sink.Operand(1) != x {
		t.Error("x*1 not folded to x")
	}
	if v, ok := arith.ConstantValue(sink.Operand(2)); !ok || v != 0 {
		t.Error("x*0 not folded to 0")
	}
}

func TestSelectFold(t *testing.T) {
	m, b := newFunc(t)
	fun := m.FindFunc("f")
	x := fun.Region(0).Block().Arg(0)
	y := fun.Region(0).Block().Arg(1)
	tru := arith.NewConstant(b, 1, ir.I1)
	sel := arith.NewSelect(b, tru, x, y)
	sink := b.Create("test.sink", []*ir.Value{sel}, nil)
	finish(t, m, b)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	if sink.Operand(0) != x {
		t.Error("select(true, x, y) not folded to x")
	}
}

func TestIndexCastChainFold(t *testing.T) {
	m, b := newFunc(t)
	fun := m.FindFunc("f")
	x := fun.Region(0).Block().Arg(0) // i64
	asIdx := arith.NewIndexCast(b, x, ir.Index)
	back := arith.NewIndexCast(b, asIdx, ir.I64)
	sink := b.Create("test.sink", []*ir.Value{back}, nil)
	finish(t, m, b)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	if sink.Operand(0) != x {
		t.Error("index_cast chain not folded back to the source")
	}
}

// TestFoldNeverChangesValue is the core folding soundness property: any
// folded binary expression evaluates to the same value as Eval.
func TestFoldNeverChangesValue(t *testing.T) {
	ops := []string{arith.OpAddI, arith.OpSubI, arith.OpMulI, arith.OpAndI,
		arith.OpOrI, arith.OpXOrI, arith.OpShLI, arith.OpShRUI}
	prop := func(a int64, shiftRaw uint8, opSel uint8) bool {
		op := ops[int(opSel)%len(ops)]
		bVal := int64(shiftRaw % 64) // keep shifts in range
		m := ir.NewModule()
		f := fnc.NewFunc("f", ir.FuncType(nil, []ir.Type{ir.I64}))
		m.Append(f.Op)
		b := ir.AtEnd(f.Body())
		ca := arith.NewConstant(b, a, ir.I64)
		cb := arith.NewConstant(b, bVal, ir.I64)
		r := arith.NewBinary(b, op, ca, cb)
		fnc.NewReturn(b, r)

		ir.ApplyPatternsGreedy(m.Op(), nil)
		ret := f.Body().Last()
		got, ok := arith.ConstantValue(ret.Operand(0))
		if !ok {
			return false
		}
		want, err := arith.Eval(op, a, bVal, ir.I64)
		return err == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestVerifierRejectsMalformed(t *testing.T) {
	m, b := newFunc(t)
	// addi with one operand.
	c := arith.NewConstant(b, 1, ir.I64)
	bad := ir.NewOp(arith.OpAddI, []*ir.Value{c}, []ir.Type{ir.I64})
	b.Insert(bad)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted single-operand addi")
	}
}
