// Package arith provides the integer arithmetic dialect. The accelerator
// configuration bit-packing sequences the paper analyses (§2.4, Listing 1)
// are expressed with these ops, so their constant folders are what lets the
// compiler collapse packing of compile-time-known fields.
package arith

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	OpConstant  = "arith.constant"
	OpAddI      = "arith.addi"
	OpSubI      = "arith.subi"
	OpMulI      = "arith.muli"
	OpDivUI     = "arith.divui"
	OpRemUI     = "arith.remui"
	OpAndI      = "arith.andi"
	OpOrI       = "arith.ori"
	OpXOrI      = "arith.xori"
	OpShLI      = "arith.shli"
	OpShRUI     = "arith.shrui"
	OpCmpI      = "arith.cmpi"
	OpSelect    = "arith.select"
	OpIndexCast = "arith.index_cast"
)

// Comparison predicates for arith.cmpi, stored in the "predicate" attribute.
const (
	PredEQ  = "eq"
	PredNE  = "ne"
	PredSLT = "slt"
	PredSLE = "sle"
	PredSGT = "sgt"
	PredSGE = "sge"
	PredULT = "ult"
	PredULE = "ule"
)

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpConstant,
		Traits:  []ir.Trait{ir.TraitPure, ir.TraitConstant},
		Summary: "integer constant",
		Verify: func(op *ir.Op) error {
			if op.NumResults() != 1 {
				return fmt.Errorf("expects one result")
			}
			if _, ok := op.Attr("value").(ir.IntegerAttr); !ok {
				return fmt.Errorf("expects integer 'value' attribute")
			}
			return nil
		},
	})
	for _, name := range []string{OpAddI, OpSubI, OpMulI, OpDivUI, OpRemUI, OpAndI, OpOrI, OpXOrI, OpShLI, OpShRUI} {
		name := name
		ir.Register(ir.OpInfo{
			Name:    name,
			Traits:  []ir.Trait{ir.TraitPure},
			Summary: "integer binary op",
			Verify:  verifyBinary,
			Fold:    foldBinary(name),
		})
	}
	ir.Register(ir.OpInfo{
		Name:    OpCmpI,
		Traits:  []ir.Trait{ir.TraitPure},
		Summary: "integer comparison",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 2 || op.NumResults() != 1 {
				return fmt.Errorf("expects two operands, one result")
			}
			if _, ok := op.StringAttrValue("predicate"); !ok {
				return fmt.Errorf("expects 'predicate' attribute")
			}
			return nil
		},
		Fold: foldCmp,
	})
	ir.Register(ir.OpInfo{
		Name:    OpSelect,
		Traits:  []ir.Trait{ir.TraitPure},
		Summary: "value select on i1 condition",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 3 || op.NumResults() != 1 {
				return fmt.Errorf("expects three operands, one result")
			}
			return nil
		},
		Fold: foldSelect,
	})
	ir.Register(ir.OpInfo{
		Name:    OpIndexCast,
		Traits:  []ir.Trait{ir.TraitPure},
		Summary: "cast between index and integer types",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 1 || op.NumResults() != 1 {
				return fmt.Errorf("expects one operand, one result")
			}
			return nil
		},
		Fold: foldIndexCast,
	})
}

func verifyBinary(op *ir.Op) error {
	if op.NumOperands() != 2 || op.NumResults() != 1 {
		return fmt.Errorf("expects two operands, one result")
	}
	if !ir.IsInteger(op.Result(0).Type()) {
		return fmt.Errorf("expects integer result, got %s", op.Result(0).Type())
	}
	return nil
}

// ConstantValue returns the constant integer an SSA value holds, when its
// defining op is an arith.constant.
func ConstantValue(v *ir.Value) (int64, bool) {
	def := v.DefiningOp()
	if def == nil || def.Name() != OpConstant {
		return 0, false
	}
	a, ok := def.Attr("value").(ir.IntegerAttr)
	return a.Value, ok
}

// truncate wraps v to the bit width of type t (two's complement).
func truncate(v int64, t ir.Type) int64 {
	w := ir.IntegerWidth(t)
	if w == 0 || w >= 64 {
		return v
	}
	mask := (int64(1) << uint(w)) - 1
	v &= mask
	// Sign-extend back so i16 constants print as small negatives when set.
	if v&(int64(1)<<uint(w-1)) != 0 {
		v |= ^mask
	}
	return v
}

// Eval computes a binary arith op on constant inputs.
func Eval(opName string, a, b int64, t ir.Type) (int64, error) {
	var r int64
	switch opName {
	case OpAddI:
		r = a + b
	case OpSubI:
		r = a - b
	case OpMulI:
		r = a * b
	case OpDivUI:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		r = int64(uint64(a) / uint64(b))
	case OpRemUI:
		if b == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		r = int64(uint64(a) % uint64(b))
	case OpAndI:
		r = a & b
	case OpOrI:
		r = a | b
	case OpXOrI:
		r = a ^ b
	case OpShLI:
		r = a << uint64(b)
	case OpShRUI:
		r = int64(uint64(a) >> uint64(b))
	default:
		return 0, fmt.Errorf("unknown arith op %s", opName)
	}
	return truncate(r, t), nil
}

// EvalCmp computes an arith.cmpi predicate on constant inputs.
func EvalCmp(pred string, a, b int64) (bool, error) {
	switch pred {
	case PredEQ:
		return a == b, nil
	case PredNE:
		return a != b, nil
	case PredSLT:
		return a < b, nil
	case PredSLE:
		return a <= b, nil
	case PredSGT:
		return a > b, nil
	case PredSGE:
		return a >= b, nil
	case PredULT:
		return uint64(a) < uint64(b), nil
	case PredULE:
		return uint64(a) <= uint64(b), nil
	}
	return false, fmt.Errorf("unknown predicate %q", pred)
}

func foldBinary(name string) func(*ir.Op) ([]*ir.Value, bool) {
	return func(op *ir.Op) ([]*ir.Value, bool) {
		a, aOK := ConstantValue(op.Operand(0))
		b, bOK := ConstantValue(op.Operand(1))
		t := op.Result(0).Type()

		// Identity simplifications that do not require both constants.
		if bOK && b == 0 {
			switch name {
			case OpAddI, OpSubI, OpOrI, OpXOrI, OpShLI, OpShRUI:
				return []*ir.Value{op.Operand(0)}, false
			case OpMulI, OpAndI:
				// x*0 = 0, x&0 = 0: handled below when a is also known,
				// otherwise materialize via builder-less replacement:
				if op.Block() != nil {
					b := ir.Before(op)
					zero := NewConstant(b, 0, t)
					return []*ir.Value{zero}, false
				}
			}
		}
		if bOK && b == 1 && (name == OpMulI || name == OpDivUI) {
			return []*ir.Value{op.Operand(0)}, false
		}
		if aOK && a == 0 && name == OpAddI {
			return []*ir.Value{op.Operand(1)}, false
		}
		if !aOK || !bOK {
			return nil, false
		}
		r, err := Eval(name, a, b, t)
		if err != nil {
			return nil, false
		}
		if op.Block() == nil {
			return nil, false
		}
		bld := ir.Before(op)
		return []*ir.Value{NewConstant(bld, r, t)}, false
	}
}

func foldCmp(op *ir.Op) ([]*ir.Value, bool) {
	a, aOK := ConstantValue(op.Operand(0))
	b, bOK := ConstantValue(op.Operand(1))
	if !aOK || !bOK || op.Block() == nil {
		return nil, false
	}
	pred, _ := op.StringAttrValue("predicate")
	r, err := EvalCmp(pred, a, b)
	if err != nil {
		return nil, false
	}
	v := int64(0)
	if r {
		v = 1
	}
	bld := ir.Before(op)
	return []*ir.Value{NewConstant(bld, v, ir.I1)}, false
}

func foldSelect(op *ir.Op) ([]*ir.Value, bool) {
	c, ok := ConstantValue(op.Operand(0))
	if !ok {
		return nil, false
	}
	if c != 0 {
		return []*ir.Value{op.Operand(1)}, false
	}
	return []*ir.Value{op.Operand(2)}, false
}

func foldIndexCast(op *ir.Op) ([]*ir.Value, bool) {
	if v, ok := ConstantValue(op.Operand(0)); ok && op.Block() != nil {
		bld := ir.Before(op)
		return []*ir.Value{NewConstant(bld, v, op.Result(0).Type())}, false
	}
	// Cast of a cast back to the original type is the original value.
	def := op.Operand(0).DefiningOp()
	if def != nil && def.Name() == OpIndexCast &&
		ir.TypesEqual(def.Operand(0).Type(), op.Result(0).Type()) {
		return []*ir.Value{def.Operand(0)}, false
	}
	return nil, false
}

// NewConstant builds an arith.constant of value v and type t.
func NewConstant(b *ir.Builder, v int64, t ir.Type) *ir.Value {
	op := b.Create(OpConstant, nil, []ir.Type{t})
	op.SetAttr("value", ir.IntegerAttr{Value: truncate(v, t), Type: t})
	return op.Result(0)
}

// NewBinary builds a two-operand arith op producing the type of lhs.
func NewBinary(b *ir.Builder, name string, lhs, rhs *ir.Value) *ir.Value {
	op := b.Create(name, []*ir.Value{lhs, rhs}, []ir.Type{lhs.Type()})
	return op.Result(0)
}

// NewAdd builds lhs + rhs.
func NewAdd(b *ir.Builder, lhs, rhs *ir.Value) *ir.Value { return NewBinary(b, OpAddI, lhs, rhs) }

// NewSub builds lhs - rhs.
func NewSub(b *ir.Builder, lhs, rhs *ir.Value) *ir.Value { return NewBinary(b, OpSubI, lhs, rhs) }

// NewMul builds lhs * rhs.
func NewMul(b *ir.Builder, lhs, rhs *ir.Value) *ir.Value { return NewBinary(b, OpMulI, lhs, rhs) }

// NewOr builds lhs | rhs.
func NewOr(b *ir.Builder, lhs, rhs *ir.Value) *ir.Value { return NewBinary(b, OpOrI, lhs, rhs) }

// NewShl builds lhs << rhs.
func NewShl(b *ir.Builder, lhs, rhs *ir.Value) *ir.Value { return NewBinary(b, OpShLI, lhs, rhs) }

// NewCmp builds an arith.cmpi with the given predicate.
func NewCmp(b *ir.Builder, pred string, lhs, rhs *ir.Value) *ir.Value {
	op := b.Create(OpCmpI, []*ir.Value{lhs, rhs}, []ir.Type{ir.I1})
	op.SetAttr("predicate", ir.StringAttr{Value: pred})
	return op.Result(0)
}

// NewIndexCast builds an arith.index_cast to type t.
func NewIndexCast(b *ir.Builder, v *ir.Value, t ir.Type) *ir.Value {
	op := b.Create(OpIndexCast, []*ir.Value{v}, []ir.Type{t})
	return op.Result(0)
}

// NewSelect builds an arith.select.
func NewSelect(b *ir.Builder, cond, ifTrue, ifFalse *ir.Value) *ir.Value {
	op := b.Create(OpSelect, []*ir.Value{cond, ifTrue, ifFalse}, []ir.Type{ifTrue.Type()})
	return op.Result(0)
}
