// Package csrops is the OpenGeMM-style target dialect: 32-bit CSR accesses
// to a memory-less configuration port, as lowered from accfg (paper
// Figure 8, step 5). Like rocc, these ops are impure and pin their order.
package csrops

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	// OpWrite writes one 32-bit CSR (4 configuration bytes).
	OpWrite = "csr.write"
	// OpBarrier polls a status CSR until the accelerator reports idle.
	OpBarrier = "csr.barrier"
)

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpWrite,
		Summary: "CSR configuration write (4 configuration bytes)",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 1 || op.NumResults() != 0 {
				return fmt.Errorf("expects one value operand and no results")
			}
			if _, ok := op.Attr("addr").(ir.IntegerAttr); !ok {
				return fmt.Errorf("missing 'addr' attribute")
			}
			return nil
		},
	})
	ir.Register(ir.OpInfo{
		Name:    OpBarrier,
		Summary: "poll a status CSR until idle",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 0 || op.NumResults() != 0 {
				return fmt.Errorf("expects no operands or results")
			}
			if _, ok := op.Attr("addr").(ir.IntegerAttr); !ok {
				return fmt.Errorf("missing 'addr' attribute")
			}
			return nil
		},
	})
}

// NewWrite builds a csr.write of value to addr.
func NewWrite(b *ir.Builder, addr uint32, value *ir.Value) *ir.Op {
	op := b.Create(OpWrite, []*ir.Value{value}, nil)
	op.SetAttr("addr", ir.IntAttr(int64(addr)))
	return op
}

// NewBarrier builds a csr.barrier polling addr.
func NewBarrier(b *ir.Builder, addr uint32) *ir.Op {
	op := b.Create(OpBarrier, nil, nil)
	op.SetAttr("addr", ir.IntAttr(int64(addr)))
	return op
}

// Addr returns the CSR address of a csr op.
func Addr(op *ir.Op) uint32 {
	v, _ := op.IntAttrValue("addr")
	return uint32(v)
}
