package csrops_test

import (
	"testing"

	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/csrops"
	"configwall/internal/dialects/fnc"
	"configwall/internal/ir"
)

func TestWriteAndBarrier(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 9, ir.I64)
	w := csrops.NewWrite(b, 0x3c0, c)
	bar := csrops.NewBarrier(b, 0x3cc)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if csrops.Addr(w) != 0x3c0 || csrops.Addr(bar) != 0x3cc {
		t.Error("addr accessors wrong")
	}
	ir.ApplyPatternsGreedy(m.Op(), nil)
	if ir.CountOpsNamed(m, csrops.OpWrite) != 1 || ir.CountOpsNamed(m, csrops.OpBarrier) != 1 {
		t.Error("DCE removed an impure csr op")
	}
}

func TestVerifiers(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	bad := ir.NewOp(csrops.OpWrite, nil, nil) // missing operand and addr
	b.Insert(bad)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted malformed csr.write")
	}
}
