// Package accfg implements the paper's compiler abstraction (§5.1): an IR
// dialect that captures the configure / launch / await programming model of
// host-controlled accelerators, making configuration state visible to the
// optimizer instead of hiding it behind volatile inline assembly.
//
// Operations:
//
//   - accfg.setup writes named configuration fields and produces a
//     !accfg.state value representing the register file contents. A setup
//     may take the previous state as input, which lets passes compute the
//     "setup delta" between consecutive configurations.
//   - accfg.launch reads a state and starts the accelerator, producing a
//     !accfg.token.
//   - accfg.await blocks until the token's computation completes (a no-op
//     on sequentially-configured accelerators).
//
// The IR constraint from the paper holds: per accelerator only one state
// value is "live" at a time; state values form a chain through the program.
package accfg

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	OpSetup  = "accfg.setup"
	OpLaunch = "accfg.launch"
	OpAwait  = "accfg.await"
)

// AttrEffects is the attribute key carrying an ir.EffectsAttr on foreign
// (non-accfg) ops, declaring whether they clobber accelerator state.
const AttrEffects = "accfg.effects"

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpSetup,
		Summary: "write accelerator configuration registers",
		Verify:  verifySetup,
	})
	ir.Register(ir.OpInfo{
		Name:    OpLaunch,
		Summary: "launch the accelerator from a configuration state",
		Verify:  verifyLaunch,
	})
	ir.Register(ir.OpInfo{
		Name:    OpAwait,
		Summary: "await an accelerator launch token",
		Verify:  verifyAwait,
	})
}

func verifySetup(op *ir.Op) error {
	s, ok := AsSetup(op)
	if !ok {
		return fmt.Errorf("malformed setup")
	}
	if _, ok := op.StringAttrValue("accelerator"); !ok {
		return fmt.Errorf("missing 'accelerator' attribute")
	}
	fields := s.FieldNames()
	nOperands := op.NumOperands()
	if s.HasInState() {
		nOperands--
		st, isState := op.Operand(0).Type().(ir.StateType)
		if !isState {
			return fmt.Errorf("input state operand must be !accfg.state")
		}
		if st.Accelerator != s.Accelerator() {
			return fmt.Errorf("input state is for accelerator %q, setup is for %q", st.Accelerator, s.Accelerator())
		}
	}
	if len(fields) != nOperands {
		return fmt.Errorf("%d field names but %d field operands", len(fields), nOperands)
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if seen[f] {
			return fmt.Errorf("duplicate field %q", f)
		}
		seen[f] = true
	}
	if op.NumResults() != 1 {
		return fmt.Errorf("expects exactly one state result")
	}
	rt, isState := op.Result(0).Type().(ir.StateType)
	if !isState {
		return fmt.Errorf("result must be !accfg.state")
	}
	if rt.Accelerator != s.Accelerator() {
		return fmt.Errorf("result state accelerator %q does not match %q", rt.Accelerator, s.Accelerator())
	}
	return nil
}

func verifyLaunch(op *ir.Op) error {
	if op.NumOperands() != 1 || op.NumResults() != 1 {
		return fmt.Errorf("expects one state operand and one token result")
	}
	st, ok := op.Operand(0).Type().(ir.StateType)
	if !ok {
		return fmt.Errorf("operand must be !accfg.state")
	}
	tk, ok := op.Result(0).Type().(ir.TokenType)
	if !ok {
		return fmt.Errorf("result must be !accfg.token")
	}
	if st.Accelerator != tk.Accelerator {
		return fmt.Errorf("state accelerator %q does not match token %q", st.Accelerator, tk.Accelerator)
	}
	return nil
}

func verifyAwait(op *ir.Op) error {
	if op.NumOperands() != 1 || op.NumResults() != 0 {
		return fmt.Errorf("expects one token operand and no results")
	}
	if _, ok := op.Operand(0).Type().(ir.TokenType); !ok {
		return fmt.Errorf("operand must be !accfg.token")
	}
	return nil
}

// Setup is a structured view over an accfg.setup op.
//
// Operand layout: [inState?] fieldValues... — HasInState distinguishes the
// two shapes via the "in_state" unit attribute.
type Setup struct {
	Op *ir.Op
}

// AsSetup wraps op, or returns ok=false when op is not accfg.setup.
func AsSetup(op *ir.Op) (Setup, bool) {
	if op == nil || op.Name() != OpSetup {
		return Setup{}, false
	}
	return Setup{op}, true
}

// Accelerator returns the target accelerator name.
func (s Setup) Accelerator() string {
	a, _ := s.Op.StringAttrValue("accelerator")
	return a
}

// HasInState reports whether the setup chains from a previous state.
func (s Setup) HasInState() bool { return s.Op.HasAttr("in_state") }

// InState returns the chained previous state, or nil.
func (s Setup) InState() *ir.Value {
	if !s.HasInState() {
		return nil
	}
	return s.Op.Operand(0)
}

// SetInState chains the setup from prev (rewiring an existing chain input
// when present).
func (s Setup) SetInState(prev *ir.Value) {
	if s.HasInState() {
		s.Op.SetOperand(0, prev)
		return
	}
	// Insert as first operand: rebuild operand list.
	operands := append([]*ir.Value{prev}, s.Op.Operands()...)
	s.Op.SetOperands(operands)
	s.Op.SetAttr("in_state", ir.UnitAttr{})
}

// ClearInState removes the chained input state.
func (s Setup) ClearInState() {
	if !s.HasInState() {
		return
	}
	s.Op.EraseOperand(0)
	s.Op.RemoveAttr("in_state")
}

// State returns the produced state value.
func (s Setup) State() *ir.Value { return s.Op.Result(0) }

// FieldNames returns the configured field names in operand order.
func (s Setup) FieldNames() []string {
	a, ok := s.Op.Attr("fields").(ir.ArrayAttr)
	if !ok {
		return nil
	}
	return a.StringList()
}

// NumFields returns the number of configured fields.
func (s Setup) NumFields() int { return len(s.FieldNames()) }

// FieldValue returns the SSA value written to the named field, or nil.
func (s Setup) FieldValue(name string) *ir.Value {
	base := 0
	if s.HasInState() {
		base = 1
	}
	for i, f := range s.FieldNames() {
		if f == name {
			return s.Op.Operand(base + i)
		}
	}
	return nil
}

// Fields returns the (name, value) pairs in operand order.
func (s Setup) Fields() []Field {
	base := 0
	if s.HasInState() {
		base = 1
	}
	names := s.FieldNames()
	out := make([]Field, len(names))
	for i, n := range names {
		out[i] = Field{Name: n, Value: s.Op.Operand(base + i)}
	}
	return out
}

// RemoveField deletes the named field (name and operand). Reports whether
// the field was present.
func (s Setup) RemoveField(name string) bool {
	base := 0
	if s.HasInState() {
		base = 1
	}
	names := s.FieldNames()
	for i, f := range names {
		if f != name {
			continue
		}
		s.Op.EraseOperand(base + i)
		rest := append(append([]string{}, names[:i]...), names[i+1:]...)
		s.Op.SetAttr("fields", ir.StringsAttr(rest...))
		return true
	}
	return false
}

// AddField appends a field write to the setup.
func (s Setup) AddField(name string, v *ir.Value) {
	names := append(s.FieldNames(), name)
	s.Op.AddOperand(v)
	s.Op.SetAttr("fields", ir.StringsAttr(names...))
}

// Field is one named configuration register write.
type Field struct {
	Name  string
	Value *ir.Value
}

// Launch is a structured view over an accfg.launch op.
type Launch struct {
	Op *ir.Op
}

// AsLaunch wraps op, or returns ok=false when op is not accfg.launch.
func AsLaunch(op *ir.Op) (Launch, bool) {
	if op == nil || op.Name() != OpLaunch {
		return Launch{}, false
	}
	return Launch{op}, true
}

// State returns the launched configuration state operand.
func (l Launch) State() *ir.Value { return l.Op.Operand(0) }

// Token returns the produced token value.
func (l Launch) Token() *ir.Value { return l.Op.Result(0) }

// Accelerator returns the launched accelerator's name.
func (l Launch) Accelerator() string {
	return l.Op.Operand(0).Type().(ir.StateType).Accelerator
}

// Await is a structured view over an accfg.await op.
type Await struct {
	Op *ir.Op
}

// AsAwait wraps op, or returns ok=false when op is not accfg.await.
func AsAwait(op *ir.Op) (Await, bool) {
	if op == nil || op.Name() != OpAwait {
		return Await{}, false
	}
	return Await{op}, true
}

// Token returns the awaited token operand.
func (a Await) Token() *ir.Value { return a.Op.Operand(0) }

// NewSetup builds an accfg.setup for the named accelerator. fields supplies
// the register writes; inState may be nil for an unchained setup.
func NewSetup(b *ir.Builder, accelerator string, inState *ir.Value, fields []Field) Setup {
	names := make([]string, len(fields))
	var operands []*ir.Value
	if inState != nil {
		operands = append(operands, inState)
	}
	for i, f := range fields {
		names[i] = f.Name
		operands = append(operands, f.Value)
	}
	op := b.Create(OpSetup, operands, []ir.Type{ir.StateType{Accelerator: accelerator}})
	op.SetAttr("accelerator", ir.StringAttr{Value: accelerator})
	op.SetAttr("fields", ir.StringsAttr(names...))
	if inState != nil {
		op.SetAttr("in_state", ir.UnitAttr{})
	}
	return Setup{op}
}

// NewLaunch builds an accfg.launch reading state.
func NewLaunch(b *ir.Builder, state *ir.Value) Launch {
	accel := state.Type().(ir.StateType).Accelerator
	op := b.Create(OpLaunch, []*ir.Value{state}, []ir.Type{ir.TokenType{Accelerator: accel}})
	return Launch{op}
}

// NewAwait builds an accfg.await on token.
func NewAwait(b *ir.Builder, token *ir.Value) Await {
	op := b.Create(OpAwait, []*ir.Value{token}, nil)
	return Await{op}
}

// EffectsOf returns how op interacts with accelerator configuration state:
//
//   - accfg ops themselves are handled structurally by the passes,
//   - ops annotated #accfg.effects<none> preserve state,
//   - ops annotated #accfg.effects<all> clobber state,
//   - pure registered ops preserve state,
//   - everything else (unknown calls, etc.) conservatively clobbers.
func EffectsOf(op *ir.Op) ir.EffectsKind {
	if a, ok := op.Attr(AttrEffects).(ir.EffectsAttr); ok {
		return a.Kind
	}
	if ir.IsPure(op) {
		return ir.EffectsNone
	}
	switch op.Name() {
	case OpSetup, OpLaunch, OpAwait:
		return ir.EffectsNone
	case "scf.yield", "fnc.return":
		return ir.EffectsNone
	case "memref.load", "memref.store", "memref.alloc", "memref.dim", "memref.extract_pointer":
		// Plain memory traffic does not touch accelerator CSRs.
		return ir.EffectsNone
	}
	return ir.EffectsAll
}

// ClobbersState reports whether op (ignoring nested regions) destroys
// accelerator configuration state.
func ClobbersState(op *ir.Op) bool {
	switch op.Name() {
	case "scf.for", "scf.if":
		// Region ops are analysed recursively by the passes.
		return false
	}
	return EffectsOf(op) == ir.EffectsAll
}
