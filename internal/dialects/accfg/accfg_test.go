package accfg_test

import (
	"testing"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/ir"
)

func setup(t testing.TB) (*ir.Module, *ir.Builder) {
	t.Helper()
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	return m, ir.AtEnd(f.Body())
}

func TestSetupLaunchAwaitRoundTrip(t *testing.T) {
	m, b := setup(t)
	c := arith.NewConstant(b, 5, ir.I64)
	s := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l := accfg.NewLaunch(b, s.State())
	a := accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	if s.Accelerator() != "acc" || l.Accelerator() != "acc" {
		t.Error("accelerator name lost")
	}
	if l.State() != s.State() || a.Token() != l.Token() {
		t.Error("SSA plumbing wrong")
	}
	if s.State().Type().String() != `!accfg.state<"acc">` {
		t.Errorf("state type prints as %s", s.State().Type())
	}
	if l.Token().Type().String() != `!accfg.token<"acc">` {
		t.Errorf("token type prints as %s", l.Token().Type())
	}
}

func TestSetupFieldOrderingPreserved(t *testing.T) {
	m, b := setup(t)
	vals := make([]*ir.Value, 4)
	names := []string{"d", "a", "c", "b"}
	fields := make([]accfg.Field, 4)
	for i, n := range names {
		vals[i] = arith.NewConstant(b, int64(i), ir.I64)
		fields[i] = accfg.Field{Name: n, Value: vals[i]}
	}
	s := accfg.NewSetup(b, "acc", nil, fields)
	l := accfg.NewLaunch(b, s.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	got := s.FieldNames()
	for i, n := range names {
		if got[i] != n {
			t.Fatalf("field order changed: %v", got)
		}
		if s.FieldValue(n) != vals[i] {
			t.Errorf("field %s maps to wrong value", n)
		}
	}
	all := s.Fields()
	if len(all) != 4 || all[0].Name != "d" || all[3].Name != "b" {
		t.Errorf("Fields() wrong: %v", all)
	}
}

func TestVerifierErrors(t *testing.T) {
	t.Run("duplicate field", func(t *testing.T) {
		m, b := setup(t)
		c := arith.NewConstant(b, 1, ir.I64)
		s := accfg.NewSetup(b, "acc", nil, []accfg.Field{
			{Name: "x", Value: c}, {Name: "x", Value: c},
		})
		_ = s
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted duplicate field")
		}
	})
	t.Run("state accelerator mismatch on launch", func(t *testing.T) {
		m, b := setup(t)
		c := arith.NewConstant(b, 1, ir.I64)
		s := accfg.NewSetup(b, "acc1", nil, []accfg.Field{{Name: "x", Value: c}})
		bad := ir.NewOp(accfg.OpLaunch, []*ir.Value{s.State()}, []ir.Type{ir.TokenType{Accelerator: "acc2"}})
		b.Insert(bad)
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted cross-accelerator launch")
		}
	})
	t.Run("chained state accelerator mismatch", func(t *testing.T) {
		m, b := setup(t)
		s1 := accfg.NewSetup(b, "acc1", nil, nil)
		bad := ir.NewOp(accfg.OpSetup, []*ir.Value{s1.State()}, []ir.Type{ir.StateType{Accelerator: "acc2"}})
		bad.SetAttr("accelerator", ir.StringAttr{Value: "acc2"})
		bad.SetAttr("fields", ir.StringsAttr())
		bad.SetAttr("in_state", ir.UnitAttr{})
		b.Insert(bad)
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted cross-accelerator state chain")
		}
	})
	t.Run("await non-token", func(t *testing.T) {
		m, b := setup(t)
		c := arith.NewConstant(b, 1, ir.I64)
		bad := ir.NewOp(accfg.OpAwait, []*ir.Value{c}, nil)
		b.Insert(bad)
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted await of non-token")
		}
	})
}

func TestEffectsOf(t *testing.T) {
	m, b := setup(t)
	defer func() { _ = m }()

	pure := arith.NewConstant(b, 1, ir.I64).DefiningOp()
	if accfg.EffectsOf(pure) != ir.EffectsNone {
		t.Error("pure arith must preserve accelerator state")
	}
	call := fnc.NewCall(b, "external", nil, nil)
	if accfg.EffectsOf(call) != ir.EffectsAll {
		t.Error("unknown call must clobber accelerator state")
	}
	call.SetAttr(accfg.AttrEffects, ir.EffectsAttr{Kind: ir.EffectsNone})
	if accfg.EffectsOf(call) != ir.EffectsNone {
		t.Error("effects<none> annotation ignored")
	}
	store := b.Create("memref.store", nil, nil)
	if accfg.EffectsOf(store) != ir.EffectsNone {
		t.Error("plain memory traffic must not clobber accelerator CSRs")
	}
	unknown := b.Create("mystery.op", nil, nil)
	if accfg.EffectsOf(unknown) != ir.EffectsAll {
		t.Error("unregistered op must conservatively clobber")
	}
	unknown.SetAttr(accfg.AttrEffects, ir.EffectsAttr{Kind: ir.EffectsAll})
	if !accfg.ClobbersState(unknown) {
		t.Error("ClobbersState disagrees with EffectsOf")
	}
	fnc.NewReturn(b)
}

func TestInStateManipulation(t *testing.T) {
	m, b := setup(t)
	c := arith.NewConstant(b, 1, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, nil)
	s2 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	fnc.NewReturn(b)

	if s2.HasInState() {
		t.Fatal("fresh setup must not chain")
	}
	s2.SetInState(s1.State())
	if !s2.HasInState() || s2.InState() != s1.State() {
		t.Fatal("SetInState failed")
	}
	if s2.FieldValue("x") != c {
		t.Fatal("field shifted by SetInState")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Re-setting replaces rather than stacking.
	s0 := accfg.NewSetup(ir.Before(s1.Op), "acc", nil, nil)
	s2.SetInState(s0.State())
	if s2.InState() != s0.State() || s2.Op.NumOperands() != 2 {
		t.Fatal("SetInState did not replace the previous chain")
	}
	s2.ClearInState()
	if s2.HasInState() || s2.Op.NumOperands() != 1 {
		t.Fatal("ClearInState failed")
	}
	if s2.FieldValue("x") != c {
		t.Fatal("field lost by ClearInState")
	}
}

func TestRemoveAddField(t *testing.T) {
	m, b := setup(t)
	c1 := arith.NewConstant(b, 1, ir.I64)
	c2 := arith.NewConstant(b, 2, ir.I64)
	s := accfg.NewSetup(b, "acc", nil, []accfg.Field{
		{Name: "x", Value: c1}, {Name: "y", Value: c2},
	})
	fnc.NewReturn(b)

	if s.RemoveField("nope") {
		t.Error("RemoveField of absent field returned true")
	}
	if !s.RemoveField("x") {
		t.Error("RemoveField(x) failed")
	}
	if s.NumFields() != 1 || s.FieldValue("y") != c2 {
		t.Error("wrong fields after removal")
	}
	s.AddField("z", c1)
	if s.NumFields() != 2 || s.FieldValue("z") != c1 {
		t.Error("AddField failed")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}
