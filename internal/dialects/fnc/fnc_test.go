package fnc_test

import (
	"testing"

	"configwall/internal/dialects/fnc"
	"configwall/internal/ir"
)

func TestNewFuncShape(t *testing.T) {
	ft := ir.FuncType([]ir.Type{ir.I64, ir.I32}, []ir.Type{ir.I64})
	f := fnc.NewFunc("compute", ft)
	if f.Name() != "compute" {
		t.Errorf("Name = %q", f.Name())
	}
	if !f.Type().Equal(ft) {
		t.Errorf("Type = %s", f.Type())
	}
	if f.Body().NumArgs() != 2 {
		t.Errorf("entry args = %d, want 2", f.Body().NumArgs())
	}
	if !ir.TypesEqual(f.Body().Arg(1).Type(), ir.I32) {
		t.Errorf("arg 1 type = %s", f.Body().Arg(1).Type())
	}
}

func TestFuncVerifierErrors(t *testing.T) {
	t.Run("missing name", func(t *testing.T) {
		m := ir.NewModule()
		op := ir.NewOp(fnc.OpFunc, nil, nil)
		op.SetAttr("function_type", ir.TypeAttr{Type: ir.FuncType(nil, nil)})
		op.AddRegion()
		m.Append(op)
		b := ir.AtEnd(op.Region(0).Block())
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted func without sym_name")
		}
	})
	t.Run("arg count mismatch", func(t *testing.T) {
		m := ir.NewModule()
		f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I64}, nil))
		f.Body().EraseArg(0)
		m.Append(f.Op)
		fnc.NewReturn(ir.AtEnd(f.Body()))
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted signature/arg mismatch")
		}
	})
}

func TestIsolatedFromAbove(t *testing.T) {
	// A function body must not reference values defined in the module
	// scope of another function (isolation trait).
	m := ir.NewModule()
	f1 := fnc.NewFunc("a", ir.FuncType(nil, nil))
	m.Append(f1.Op)
	b1 := ir.AtEnd(f1.Body())
	c := b1.Create("arith.constant", nil, []ir.Type{ir.I64})
	c.SetAttr("value", ir.IntAttr(1))
	fnc.NewReturn(b1)

	f2 := fnc.NewFunc("b", ir.FuncType(nil, nil))
	m.Append(f2.Op)
	b2 := ir.AtEnd(f2.Body())
	leak := ir.NewOp("test.use", []*ir.Value{c.Result(0)}, nil)
	b2.Insert(leak)
	fnc.NewReturn(b2)

	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted cross-function value reference")
	}
}

func TestCallBuilder(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("caller", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	call := fnc.NewCall(b, "callee", nil, []ir.Type{ir.I64})
	if sym, ok := call.Attr("callee").(ir.SymbolRefAttr); !ok || sym.Symbol != "callee" {
		t.Error("callee symbol wrong")
	}
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}
